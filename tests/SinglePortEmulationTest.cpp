//===- tests/SinglePortEmulationTest.cpp - Theorem 2 single-port ---------===//
//
// Theorem 2 claims the IS network emulates the star with slowdown 2 under
// the SDC, single-port, AND all-port models. These tests drive the packet
// simulator: every node emulates all k-1 star dimensions at once (the
// heaviest case) and completion is compared between star and host under
// the same model.
//
//===----------------------------------------------------------------------===//

#include "comm/Simulator.h"
#include "emulation/SdcEmulation.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

/// Every node sends one packet along each emulated star dimension under
/// \p Model; returns completion time.
uint64_t emulateAllDimensions(const ExplicitScg &Net, CommModel Model) {
  NetworkSimulator Sim(Net, Model);
  for (NodeId U = 0; U != Net.numNodes(); ++U)
    for (unsigned J = 2; J <= Net.network().numSymbols(); ++J)
      Sim.injectPacket(U, starDimensionPath(Net.network(), J).hops());
  SimulationResult R = Sim.run(/*MaxSteps=*/100000);
  EXPECT_TRUE(R.Completed);
  return R.Steps;
}

} // namespace

TEST(SinglePortEmulation, StarBaseline) {
  ExplicitScg Star(SuperCayleyGraph::star(5));
  // Single-port: k-1 packets per node, one sent per step, disjoint links.
  EXPECT_EQ(emulateAllDimensions(Star, CommModel::SinglePort), 4u);
  // All-port: everything at once.
  EXPECT_EQ(emulateAllDimensions(Star, CommModel::AllPort), 1u);
}

TEST(SinglePortEmulation, Theorem2IsWithinFactorTwoSinglePort) {
  ExplicitScg Star(SuperCayleyGraph::star(5));
  ExplicitScg Is(SuperCayleyGraph::insertionSelection(5));
  uint64_t StarSteps = emulateAllDimensions(Star, CommModel::SinglePort);
  uint64_t IsSteps = emulateAllDimensions(Is, CommModel::SinglePort);
  EXPECT_LE(IsSteps, 2 * StarSteps);
}

TEST(SinglePortEmulation, Theorem2IsWithinFactorTwoAllPort) {
  ExplicitScg Star(SuperCayleyGraph::star(6));
  ExplicitScg Is(SuperCayleyGraph::insertionSelection(6));
  uint64_t StarSteps = emulateAllDimensions(Star, CommModel::AllPort);
  uint64_t IsSteps = emulateAllDimensions(Is, CommModel::AllPort);
  EXPECT_LE(IsSteps, 2 * StarSteps); // Theorem 2: slowdown 2.
  EXPECT_EQ(IsSteps, 2u);            // and the schedule is conflict-free.
}

TEST(SinglePortEmulation, Theorem4AllPortNearSchedule) {
  // The simulator queues FIFO rather than following the constructive
  // schedule, so completion can exceed the Theorem 4 makespan, but only
  // within the congestion + dilation slack.
  ExplicitScg Ms(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  uint64_t Steps = emulateAllDimensions(Ms, CommModel::AllPort);
  EXPECT_GE(Steps, 4u); // cannot beat max(2n, l+1).
  EXPECT_LE(Steps, 4u + 3u - 1); // congestion 4 + dilation 3 - 1.
}

TEST(SinglePortEmulation, MisAllPortNearTheorem5Bound) {
  ExplicitScg Mis(SuperCayleyGraph::create(NetworkKind::MacroIS, 3, 2));
  uint64_t Steps = emulateAllDimensions(Mis, CommModel::AllPort);
  EXPECT_GE(Steps, 5u); // cannot beat max(2n, l+2).
  EXPECT_LE(Steps, 4u + 4u - 1); // congestion 4 + dilation 4 - 1.
}
