//===- tests/ContainersTest.cpp - Node-disjoint container tests ----------===//

#include "graph/Containers.h"

#include "graph/Bfs.h"
#include "networks/Classic.h"
#include "networks/Explicit.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

Graph pathGraph(NodeId N) {
  Graph G(N);
  for (NodeId I = 0; I + 1 != N; ++I)
    G.addUndirectedEdge(I, I + 1);
  return G;
}

Graph cycleGraph(NodeId N) {
  Graph G(N);
  for (NodeId I = 0; I != N; ++I)
    G.addUndirectedEdge(I, (I + 1) % N);
  return G;
}

Graph completeGraph(NodeId N) {
  Graph G(N);
  for (NodeId A = 0; A != N; ++A)
    for (NodeId B = A + 1; B != N; ++B)
      G.addUndirectedEdge(A, B);
  return G;
}

/// Full container validity: every path simple in G, the set internally
/// disjoint, and the first path a shortest Src -> Dst path.
void expectValidContainer(const Graph &G, NodeId Src, NodeId Dst,
                          const std::vector<std::vector<NodeId>> &Paths) {
  EXPECT_TRUE(internallyNodeDisjoint(Paths));
  for (const std::vector<NodeId> &Path : Paths) {
    EXPECT_TRUE(isSimplePath(G, Path));
    EXPECT_EQ(Path.front(), Src);
    EXPECT_EQ(Path.back(), Dst);
  }
  ASSERT_FALSE(Paths.empty());
  EXPECT_EQ(Paths.front().size() - 1, bfs(G, Src).Distance[Dst]);
  for (size_t I = 0; I + 1 < Paths.size(); ++I)
    EXPECT_LE(Paths[I].size(), Paths[I + 1].size());
}

} // namespace

TEST(Containers, PathGraphHasOnePath) {
  Graph G = pathGraph(4);
  EXPECT_EQ(localConnectivity(G, 0, 3), 1u);
  std::vector<std::vector<NodeId>> Paths = nodeDisjointPaths(G, 0, 3);
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0], (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Containers, CycleHasTwoPaths) {
  Graph G = cycleGraph(6);
  EXPECT_EQ(localConnectivity(G, 0, 3), 2u);
  std::vector<std::vector<NodeId>> Paths = nodeDisjointPaths(G, 0, 3);
  ASSERT_EQ(Paths.size(), 2u);
  expectValidContainer(G, 0, 3, Paths);
  // Both arcs of the cycle, each of length 3.
  EXPECT_EQ(Paths[0].size(), 4u);
  EXPECT_EQ(Paths[1].size(), 4u);
}

TEST(Containers, AdjacentPairInCycle) {
  Graph G = cycleGraph(5);
  std::vector<std::vector<NodeId>> Paths = nodeDisjointPaths(G, 0, 1);
  ASSERT_EQ(Paths.size(), 2u);
  expectValidContainer(G, 0, 1, Paths);
  EXPECT_EQ(Paths[0].size(), 2u); // the direct edge.
  EXPECT_EQ(Paths[1].size(), 5u); // the long way round.
}

TEST(Containers, CompleteGraphSaturatesDegree) {
  Graph G = completeGraph(4);
  EXPECT_EQ(localConnectivity(G, 0, 3), 3u);
  std::vector<std::vector<NodeId>> Paths = nodeDisjointPaths(G, 0, 3);
  ASSERT_EQ(Paths.size(), 3u);
  expectValidContainer(G, 0, 3, Paths);
  EXPECT_EQ(Paths[0].size(), 2u); // direct edge first.
}

TEST(Containers, MaxPathsCapsTheContainer) {
  Graph G = completeGraph(5);
  std::vector<std::vector<NodeId>> Paths =
      nodeDisjointPaths(G, 0, 4, /*MaxPaths=*/2);
  ASSERT_EQ(Paths.size(), 2u);
  expectValidContainer(G, 0, 4, Paths);
}

TEST(Containers, MeshCornerPairs) {
  Graph G = mesh2D(3, 3);
  // Corners have degree 2, so corner-to-corner connectivity is 2.
  EXPECT_EQ(localConnectivity(G, 0, 8), 2u);
  expectValidContainer(G, 0, 8, nodeDisjointPaths(G, 0, 8));
  // Center-to-corner is still capped by the corner's degree.
  EXPECT_EQ(localConnectivity(G, 4, 0), 2u);
}

TEST(Containers, DirectedCycleRespectsOrientation) {
  Graph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  std::vector<std::vector<NodeId>> Forward = nodeDisjointPaths(G, 0, 2);
  ASSERT_EQ(Forward.size(), 1u);
  EXPECT_EQ(Forward[0], (std::vector<NodeId>{0, 1, 2}));
  std::vector<std::vector<NodeId>> Back = nodeDisjointPaths(G, 2, 0);
  ASSERT_EQ(Back.size(), 1u);
  EXPECT_EQ(Back[0], (std::vector<NodeId>{2, 0}));
}

TEST(Containers, DisjointnessValidatorCatchesSharedInternals) {
  // Shares internal node 1.
  std::vector<std::vector<NodeId>> Shared{{0, 1, 3}, {0, 1, 3}};
  EXPECT_FALSE(internallyNodeDisjoint(Shared));
  // An internal node of one path equal to an endpoint of the container.
  std::vector<std::vector<NodeId>> ViaSrc{{0, 2, 3}, {0, 4, 0, 3}};
  EXPECT_FALSE(internallyNodeDisjoint(ViaSrc));
  // Mismatched endpoints are not a container.
  std::vector<std::vector<NodeId>> Endpoints{{0, 2, 3}, {0, 4, 5}};
  EXPECT_FALSE(internallyNodeDisjoint(Endpoints));
  std::vector<std::vector<NodeId>> Fine{{0, 2, 3}, {0, 4, 3}, {0, 3}};
  EXPECT_TRUE(internallyNodeDisjoint(Fine));
}

TEST(Containers, ClassicCayleyFamiliesAreMaximallyConnected) {
  // Star, bubble-sort and transposition networks have vertex connectivity
  // equal to their degree (maximal fault tolerance); the container between
  // any pair must realize it.
  for (SuperCayleyGraph Spec :
       {SuperCayleyGraph::star(4), SuperCayleyGraph::bubbleSort(4),
        SuperCayleyGraph::transpositionNetwork(4)}) {
    ExplicitScg Net(Spec);
    Graph G = Net.toGraph();
    NodeId Src = 0, Dst = Net.numNodes() / 2;
    std::vector<std::vector<NodeId>> Paths = nodeDisjointPaths(G, Src, Dst);
    EXPECT_EQ(Paths.size(), Spec.degree()) << Spec.name();
    expectValidContainer(G, Src, Dst, Paths);
  }
  // The insertion-selection network is the exception: measured vertex
  // connectivity is degree - 1 (2k - 3), one below its degree 2k - 2.
  // Pin that so a max-flow regression in either direction is caught.
  for (unsigned K = 3; K <= 4; ++K) {
    SuperCayleyGraph Spec = SuperCayleyGraph::insertionSelection(K);
    ExplicitScg Net(Spec);
    Graph G = Net.toGraph();
    NodeId Src = 0, Dst = Net.numNodes() / 2;
    std::vector<std::vector<NodeId>> Paths = nodeDisjointPaths(G, Src, Dst);
    EXPECT_EQ(Paths.size(), Spec.degree() - 1) << Spec.name();
    expectValidContainer(G, Src, Dst, Paths);
  }
}

TEST(Containers, AllTenSuperCayleyClassesYieldValidContainers) {
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS}) {
    ExplicitScg Net(SuperCayleyGraph::create(Kind, 2, 2));
    Graph G = Net.toGraph();
    NodeId Src = 0, Dst = Net.numNodes() / 2;
    std::vector<std::vector<NodeId>> Paths = nodeDisjointPaths(G, Src, Dst);
    // Degree bounds the container; at least one path exists (connected).
    EXPECT_GE(Paths.size(), 1u) << networkKindName(Kind);
    EXPECT_LE(Paths.size(), Net.degree()) << networkKindName(Kind);
    expectValidContainer(G, Src, Dst, Paths);
  }
  // The plain rotator's directed connectivity is k-1 exactly.
  ExplicitScg Rotator(SuperCayleyGraph::rotator(4));
  Graph G = Rotator.toGraph();
  EXPECT_EQ(localConnectivity(G, 0, Rotator.numNodes() / 2), 3u);
}
