//===- tests/MetricsTest.cpp - Metrics and JSON writer edge cases --------===//
//
// Edge cases of the telemetry surfaces: metric names that need JSON string
// escaping, counters pushed past the exactly-representable integer range,
// empty histograms and series, and the shared JsonWriter every bench tool
// emits through.
//
//===----------------------------------------------------------------------===//

#include "comm/Workload.h"
#include "support/Format.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

using namespace scg;

//===----------------------------------------------------------------------===//
// jsonEscaped / JsonWriter.
//===----------------------------------------------------------------------===//

TEST(JsonEscapeTest, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(jsonEscaped("plain"), "plain");
  EXPECT_EQ(jsonEscaped("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(jsonEscaped("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscaped("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(jsonEscaped(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(jsonEscaped("\x01\x1f"), "\\u0001\\u001f");
}

TEST(JsonWriterTest, RendersNestedStructure) {
  JsonWriter W;
  W.beginObject()
      .field("name", "queries")
      .field("threads", 4u)
      .field("ok", true)
      .key("grid")
      .beginArray();
  W.beginObject().field("qps", 1234.5, 1).endObject();
  W.endArray().endObject();
  EXPECT_EQ(W.str(), "{\n"
                     "  \"name\": \"queries\",\n"
                     "  \"threads\": 4,\n"
                     "  \"ok\": true,\n"
                     "  \"grid\": [\n"
                     "    {\n"
                     "      \"qps\": 1234.5\n"
                     "    }\n"
                     "  ]\n"
                     "}\n");
}

TEST(JsonWriterTest, ScalarArraysStayInline) {
  JsonWriter W;
  W.beginObject().key("dims").beginArray();
  W.value(uint64_t(2)).value(uint64_t(3)).value(uint64_t(4));
  W.endArray().endObject();
  EXPECT_EQ(W.str(), "{\n  \"dims\": [2, 3, 4]\n}\n");
}

TEST(JsonWriterTest, EscapesKeysAndStringValues) {
  JsonWriter W;
  W.beginObject().field("odd \"key\"", "tab\there").endObject();
  EXPECT_EQ(W.str(), "{\n  \"odd \\\"key\\\"\": \"tab\\there\"\n}\n");
}

TEST(JsonWriterTest, CanonicalDoubleFormatting) {
  JsonWriter W;
  W.beginObject()
      .field("whole", 3.0)          // integral double -> integer form.
      .field("frac", 0.5)           // shortest round-trip form.
      .field("fixed", 1.0 / 3.0, 3) // explicit fixed precision.
      .endObject();
  EXPECT_EQ(W.str(), "{\n"
                     "  \"whole\": 3,\n"
                     "  \"frac\": 0.5,\n"
                     "  \"fixed\": 0.333\n"
                     "}\n");
}

TEST(JsonWriterTest, SplicesRawJson) {
  JsonWriter W;
  W.beginObject().key("metrics").rawValue("{\"a\": 1}").endObject();
  EXPECT_EQ(W.str(), "{\n  \"metrics\": {\"a\": 1}\n}\n");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter W;
  W.beginObject().key("arr").beginArray().endArray().key("obj").beginObject()
      .endObject().endObject();
  EXPECT_EQ(W.str(), "{\n  \"arr\": [],\n  \"obj\": {}\n}\n");
}

//===----------------------------------------------------------------------===//
// MetricsRegistry edge cases.
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, EscapesMetricNamesInJson) {
  MetricsRegistry M;
  M.counter("weird \"name\"\nwith\\stuff").add(3);
  std::string Json = M.toJson();
  // The raw quote/newline/backslash must not appear unescaped.
  EXPECT_NE(Json.find("\"weird \\\"name\\\"\\nwith\\\\stuff\""),
            std::string::npos)
      << Json;
}

TEST(MetricsRegistryTest, TrafficMetricNamesRoundTripThroughJson) {
  // Pin the traffic driver's published metric names (traffic.setup.* and
  // traffic.closedloop.* included) against silent renames: each name must
  // survive registry -> JSON verbatim, at value zero -- a closed-loop
  // counter that never fired still has to be visible in the export, and
  // the dotted names must need no escaping.
  std::vector<std::string> Names = trafficMetricNames();
  ASSERT_FALSE(Names.empty());
  MetricsRegistry M;
  for (const std::string &Name : Names)
    M.counter(Name);
  std::string Json = M.toJson();
  for (const std::string &Name : Names) {
    EXPECT_EQ(jsonEscaped(Name), Name) << Name;
    EXPECT_NE(Json.find("\"" + Name + "\""), std::string::npos) << Name;
  }
  // The canonical new names, spelled out so a rename of either subsystem
  // prefix fails here and not in a dashboard.
  for (const char *Required :
       {"traffic.setup.events", "traffic.setup.distinct_labels",
        "traffic.setup.route_hops", "traffic.setup.dedup_factor",
        "traffic.setup.batched", "traffic.closedloop.max_queue",
        "traffic.closedloop.deferred_injections",
        "traffic.closedloop.deferred_steps"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), Required), Names.end())
        << Required;
}

TEST(MetricsRegistryTest, CounterPastIntegerPrecisionStaysFinite) {
  MetricsRegistry M;
  Metric &C = M.counter("overflow");
  // Push the counter past 2^63 (and 2^53): the JSON export must not take
  // the undefined double -> int64 cast, and the value must stay a finite
  // JSON number.
  C.add(std::numeric_limits<uint64_t>::max());
  C.add(std::numeric_limits<uint64_t>::max());
  EXPECT_GT(C.value(), 9.2e18);
  std::string Json = M.toJson();
  EXPECT_EQ(Json.find("inf"), std::string::npos);
  EXPECT_EQ(Json.find("nan"), std::string::npos);
  EXPECT_NE(Json.find("\"overflow\""), std::string::npos);
  // 2 * 2^64 = 2^65 exactly; the value renders through the double path.
  EXPECT_NE(Json.find("36893488147419103232"), std::string::npos) << Json;
}

TEST(MetricsRegistryTest, EmptySeriesSummaryIsAllZeros) {
  MetricsRegistry M;
  M.gauge("idle").set(7.5);
  MetricSummary S = MetricsRegistry::summarize(*M.find("idle"));
  EXPECT_EQ(S.Points, 0u);
  EXPECT_EQ(S.Min, 0.0);
  EXPECT_EQ(S.Max, 0.0);
  EXPECT_EQ(S.Mean, 0.0);
  EXPECT_EQ(S.Last, 0.0);
  // And the export renders the empty series as [].
  EXPECT_NE(M.toJson().find("\"series\": []"), std::string::npos);
}

TEST(MetricsRegistryTest, SeriesDownsamplingKeepsEndpoints) {
  MetricsRegistry M;
  Metric &G = M.gauge("load");
  for (uint64_t Step = 0; Step != 100; ++Step) {
    G.set(double(Step));
    M.sample(Step);
  }
  std::string Json = M.toJson(/*MaxSeriesPoints=*/10);
  EXPECT_NE(Json.find("[0, 0]"), std::string::npos);
  EXPECT_NE(Json.find("[99, 99]"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Histogram edge cases.
//===----------------------------------------------------------------------===//

TEST(HistogramTest, EmptyHistogram) {
  Histogram H;
  EXPECT_EQ(H.total(), 0u);
  EXPECT_EQ(H.maxValue(), 0u);
  EXPECT_EQ(H.count(0), 0u);
  EXPECT_EQ(H.count(12345), 0u);
  EXPECT_EQ(H.render(), "(empty)\n");
}

TEST(HistogramTest, SingleZeroValue) {
  Histogram H;
  H.add(0);
  EXPECT_EQ(H.total(), 1u);
  EXPECT_EQ(H.maxValue(), 0u);
  EXPECT_EQ(H.count(0), 1u);
  EXPECT_EQ(H.render(), "0 | ########################################  1\n");
}

TEST(HistogramTest, SparseBinsSkipEmptyRows) {
  Histogram H;
  H.add(1);
  H.add(1);
  H.add(9);
  EXPECT_EQ(H.maxValue(), 9u);
  std::string R = H.render(4);
  // Only the two nonempty bins render; the bar for the smaller count still
  // gets at least one mark.
  EXPECT_NE(R.find("1 | ####  2"), std::string::npos) << R;
  EXPECT_NE(R.find("9 | ##  1"), std::string::npos) << R;
  EXPECT_EQ(R.find("2 |"), std::string::npos);
}
