//===- tests/QueryEngineTest.cpp - Query subsystem differential tests ----===//
//
// Pins the query subsystem against the ground-truth engines: table-free
// rank-space serving must reproduce ExplicitScg BFS distances and
// StarRouter/ScgRouter path lengths on every supported family, the
// TableStore must round-trip through its binary format (including a
// cross-process writer/reader split over mmap) and reject corrupt files,
// and batched parallel serving must be byte-identical to serial.
//
//===----------------------------------------------------------------------===//

#include "query/QueryEngine.h"

#include "emulation/SdcEmulation.h"
#include "graph/MsBfs.h"
#include "networks/Explicit.h"
#include "perm/Lehmer.h"
#include "routing/StarRouter.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include <sys/wait.h>
#include <unistd.h>

using namespace scg;

namespace {

struct QueryParams {
  NetworkKind Kind;
  unsigned L, N;
};

SuperCayleyGraph makeNetwork(const QueryParams &P) {
  switch (P.Kind) {
  case NetworkKind::Star:
    return SuperCayleyGraph::star(P.L * P.N + 1);
  case NetworkKind::BubbleSort:
    return SuperCayleyGraph::bubbleSort(P.L * P.N + 1);
  case NetworkKind::Transposition:
    return SuperCayleyGraph::transpositionNetwork(P.L * P.N + 1);
  case NetworkKind::Rotator:
    return SuperCayleyGraph::rotator(P.L * P.N + 1);
  case NetworkKind::InsertionSelection:
    return SuperCayleyGraph::insertionSelection(P.L * P.N + 1);
  default:
    return SuperCayleyGraph::create(P.Kind, P.L, P.N);
  }
}

std::string queryName(const testing::TestParamInfo<QueryParams> &Info) {
  std::string Name = networkKindName(Info.param.Kind) + "_" +
                     std::to_string(Info.param.L) + "_" +
                     std::to_string(Info.param.N);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

/// Walks \p Hops from \p Src and checks the endpoint is \p Dst: every reply
/// must be a real route regardless of which engine produced it.
void expectValidRoute(const SuperCayleyGraph &Net, const Permutation &Src,
                      const Permutation &Dst,
                      const std::vector<GenIndex> &Hops) {
  Permutation Cur = Src;
  for (GenIndex G : Hops) {
    ASSERT_LT(G, Net.generators().size());
    Net.neighborInto(Cur, G, Cur);
  }
  EXPECT_EQ(Cur, Dst);
}

/// Sampled destination ranks: identity, last, and a deterministic stride.
std::vector<uint64_t> sampleRanks(uint64_t Count, uint64_t Samples) {
  std::vector<uint64_t> Ranks = {0, Count - 1};
  uint64_t Stride = std::max<uint64_t>(1, Count / Samples);
  for (uint64_t R = 1; R + 1 < Count; R += Stride)
    Ranks.push_back(R);
  return Ranks;
}

std::string tempPath(const std::string &Leaf) {
  return testing::TempDir() + "/" + Leaf;
}

class QueryEngineFamilyTest : public testing::TestWithParam<QueryParams> {};

} // namespace

//===----------------------------------------------------------------------===//
// Differential: table-free serving vs BFS / StarRouter ground truth.
//===----------------------------------------------------------------------===//

TEST_P(QueryEngineFamilyTest, TableFreeMatchesBfs) {
  SuperCayleyGraph Net = makeNetwork(GetParam());
  if (!QueryEngine::supportsTableFree(Net))
    GTEST_SKIP() << Net.name() << " is table-only";
  QueryEngine Engine(Net);
  ExplicitScg Ex(Net);
  BfsResult FromId = bfsExplicit(Ex, 0);
  Permutation Id = Permutation::identity(Net.numSymbols());

  for (uint64_t R : sampleRanks(Ex.numNodes(), 120)) {
    Permutation Dst = unrankPermutation(R, Net.numSymbols());
    DistanceReply D = Engine.distance(Id, Dst);
    RouteReply Route = Engine.route(Id, Dst);
    EXPECT_FALSE(D.FromTable);
    // Every reply is a valid route whose length matches the distance
    // answer; Exact replies must equal the BFS distance, inexact ones
    // bound it from above.
    expectValidRoute(Net, Id, Dst, Route.Hops);
    EXPECT_EQ(D.Distance, Route.length());
    EXPECT_GE(D.Distance, FromId.Distance[R]);
    if (D.Exact)
      EXPECT_EQ(D.Distance, FromId.Distance[R]);
    EXPECT_EQ(D.Exact, Route.Exact);
  }
}

TEST_P(QueryEngineFamilyTest, TableFreeArbitrarySources) {
  SuperCayleyGraph Net = makeNetwork(GetParam());
  if (!QueryEngine::supportsTableFree(Net))
    GTEST_SKIP() << Net.name() << " is table-only";
  QueryEngine Engine(Net);
  ExplicitScg Ex(Net);
  // Cayley normalization: d(Src, Dst) must match a BFS rooted at Src, not
  // just at the identity.
  NodeId SrcRank = NodeId(Ex.numNodes() / 3);
  BfsResult FromSrc = bfsExplicit(Ex, SrcRank);
  Permutation Src = Ex.label(SrcRank);

  for (uint64_t R : sampleRanks(Ex.numNodes(), 60)) {
    Permutation Dst = unrankPermutation(R, Net.numSymbols());
    DistanceReply D = Engine.distance(Src, Dst);
    RouteReply Route = Engine.route(Src, Dst);
    expectValidRoute(Net, Src, Dst, Route.Hops);
    EXPECT_GE(D.Distance, FromSrc.Distance[R]);
    if (D.Exact)
      EXPECT_EQ(D.Distance, FromSrc.Distance[R]);
  }
}

//===----------------------------------------------------------------------===//
// Differential: table-backed serving is exact on EVERY family.
//===----------------------------------------------------------------------===//

TEST_P(QueryEngineFamilyTest, TableBackedIsExact) {
  SuperCayleyGraph Net = makeNetwork(GetParam());
  QueryEngine Engine(Net);
  Engine.attachTable(std::make_shared<TableStore>(TableStore::build(Net)));
  ASSERT_TRUE(Engine.tableBacked());
  ExplicitScg Ex(Net);
  NodeId SrcRank = NodeId(Ex.numNodes() / 5);
  BfsResult FromSrc = bfsExplicit(Ex, SrcRank);
  Permutation Src = Ex.label(SrcRank);

  for (uint64_t R : sampleRanks(Ex.numNodes(), 120)) {
    if (R == SrcRank)
      continue; // the identity reply is trivially exact, not table-sourced.
    Permutation Dst = unrankPermutation(R, Net.numSymbols());
    DistanceReply D = Engine.distance(Src, Dst);
    RouteReply Route = Engine.route(Src, Dst);
    EXPECT_TRUE(D.Exact);
    EXPECT_TRUE(D.FromTable);
    EXPECT_EQ(D.Distance, FromSrc.Distance[R]);
    EXPECT_TRUE(Route.Exact);
    EXPECT_TRUE(Route.FromTable);
    EXPECT_EQ(Route.length(), FromSrc.Distance[R]);
    expectValidRoute(Net, Src, Dst, Route.Hops);
  }
}

TEST(QueryEngineTest, StarSevenMatchesStarRouter) {
  // The acceptance pin: star(7) distances byte-identical to the closed form
  // and to the table, routes matching StarRouter hop counts.
  SuperCayleyGraph Net = SuperCayleyGraph::star(7);
  QueryEngine Free(Net);
  QueryEngine Tabled(Net);
  Tabled.attachTable(std::make_shared<TableStore>(TableStore::build(Net)));
  Permutation Id = Permutation::identity(7);
  for (uint64_t R : sampleRanks(factorial(7), 400)) {
    Permutation Dst = unrankPermutation(R, 7);
    unsigned Want = starDistance(Id, Dst);
    EXPECT_EQ(Free.distance(Id, Dst).Distance, Want);
    EXPECT_EQ(Tabled.distance(Id, Dst).Distance, Want);
    EXPECT_EQ(Free.route(Id, Dst).length(),
              starRouteDimensions(Id, Dst).size());
    EXPECT_EQ(Tabled.route(Id, Dst).length(), Want);
  }
}

TEST(QueryEngineTest, LiftedRouteWithinSlowdownBound) {
  // Theorems 1-3: lifted routes are at most slowdown * starDistance.
  for (QueryParams P : {QueryParams{NetworkKind::MacroStar, 2, 2},
                        QueryParams{NetworkKind::MacroIS, 2, 2},
                        QueryParams{NetworkKind::CompleteRotationStar, 2, 2}}) {
    SuperCayleyGraph Net = makeNetwork(P);
    QueryEngine Engine(Net);
    unsigned Bound = paperSdcSlowdownBound(Net);
    Permutation Id = Permutation::identity(Net.numSymbols());
    for (uint64_t R : sampleRanks(Net.numNodes(), 60)) {
      Permutation Dst = unrankPermutation(R, Net.numSymbols());
      EXPECT_LE(Engine.route(Id, Dst).length(),
                Bound * starDistance(Id, Dst));
    }
  }
}

//===----------------------------------------------------------------------===//
// Batched serving: parallel == serial, cache state never changes answers.
//===----------------------------------------------------------------------===//

namespace {

std::vector<PairQuery> makeWorkload(const SuperCayleyGraph &Net,
                                    size_t Count) {
  std::vector<PairQuery> Queries;
  uint64_t Nodes = Net.numNodes();
  for (size_t I = 0; I != Count; ++I) {
    // Deterministic spread with repeats, so the cache sees hits.
    uint64_t S = (I * 2654435761u) % Nodes;
    uint64_t D = (I * 40503u + 17) % Nodes;
    Queries.push_back({unrankPermutation(S, Net.numSymbols()),
                       unrankPermutation(D, Net.numSymbols())});
  }
  return Queries;
}

} // namespace

TEST(QueryEngineParallelTest, BatchedAnswersAreThreadCountInvariant) {
  for (QueryParams P : {QueryParams{NetworkKind::Star, 6, 1},
                        QueryParams{NetworkKind::MacroStar, 2, 2},
                        QueryParams{NetworkKind::Rotator, 5, 1}}) {
    SuperCayleyGraph Net = makeNetwork(P);
    std::vector<PairQuery> Queries = makeWorkload(Net, 600);

    setGlobalThreadCount(1);
    QueryEngine Serial(Net);
    std::vector<DistanceReply> SerialDist = Serial.distanceBatch(Queries);
    std::vector<RouteReply> SerialRoutes = Serial.routeBatch(Queries);

    for (unsigned Threads : {2u, 4u, 8u}) {
      setGlobalThreadCount(Threads);
      QueryEngine Par(Net);
      EXPECT_EQ(Par.distanceBatch(Queries), SerialDist) << Net.name();
      EXPECT_EQ(Par.routeBatch(Queries), SerialRoutes) << Net.name();
      // A warm cache must not change a single reply either.
      EXPECT_EQ(Par.routeBatch(Queries), SerialRoutes) << Net.name();
    }
    setGlobalThreadCount(0);
  }
}

TEST(QueryEngineParallelTest, TableBackedBatchThreadCountInvariant) {
  SuperCayleyGraph Net = SuperCayleyGraph::create(NetworkKind::MacroRotator,
                                                  2, 2);
  auto Table = std::make_shared<TableStore>(TableStore::build(Net));
  std::vector<PairQuery> Queries = makeWorkload(Net, 400);

  setGlobalThreadCount(1);
  QueryEngine Serial(Net);
  Serial.attachTable(Table);
  std::vector<RouteReply> Want = Serial.routeBatch(Queries);

  setGlobalThreadCount(4);
  QueryEngine Par(Net);
  Par.attachTable(Table);
  EXPECT_EQ(Par.routeBatch(Queries), Want);
  setGlobalThreadCount(0);
}

//===----------------------------------------------------------------------===//
// Cache behavior and metrics plumbing.
//===----------------------------------------------------------------------===//

TEST(QueryEngineTest, CacheHitsOnRepeatsAndNeverChangesAnswers) {
  SuperCayleyGraph Net = SuperCayleyGraph::star(6);
  QueryEngine Engine(Net);
  Permutation Id = Permutation::identity(6);
  Permutation Dst = unrankPermutation(123, 6);

  RouteReply Cold = Engine.route(Id, Dst);
  SegmentCacheStats After = Engine.cache().totals();
  EXPECT_EQ(After.Hits, 0u);
  EXPECT_EQ(After.Misses, 1u);
  EXPECT_EQ(After.Insertions, 1u);

  RouteReply Warm = Engine.route(Id, Dst);
  EXPECT_EQ(Warm, Cold);
  EXPECT_EQ(Engine.cache().totals().Hits, 1u);

  // Same relative label from a different source pair: still one cache key.
  Permutation Src2 = unrankPermutation(77, 6);
  RouteReply Shifted = Engine.route(Src2, Src2.compose(Id.inverse().compose(Dst)));
  EXPECT_EQ(Shifted.Hops, Cold.Hops);
  EXPECT_EQ(Engine.cache().totals().Hits, 2u);

  Engine.clearCache();
  EXPECT_EQ(Engine.cache().size(), 0u);
  EXPECT_EQ(Engine.route(Id, Dst), Cold);
}

TEST(QueryEngineTest, CacheEvictsAtCapacityAndDisabledCacheStillServes) {
  SuperCayleyGraph Net = SuperCayleyGraph::star(6);
  QueryEngineOptions Tiny;
  Tiny.CacheCapacity = 8;
  Tiny.CacheShards = 2;
  QueryEngine Small(Net, Tiny);
  QueryEngineOptions Off;
  Off.CacheCapacity = 0;
  QueryEngine Uncached(Net, Off);
  EXPECT_FALSE(Uncached.cache().enabled());

  Permutation Id = Permutation::identity(6);
  for (uint64_t R = 1; R <= 200; ++R) {
    Permutation Dst = unrankPermutation(R, 6);
    EXPECT_EQ(Small.route(Id, Dst).Hops, Uncached.route(Id, Dst).Hops);
  }
  EXPECT_LE(Small.cache().size(), Tiny.CacheCapacity);
  EXPECT_GT(Small.cache().totals().Evictions, 0u);
  EXPECT_EQ(Uncached.cache().size(), 0u);
}

TEST(QueryEngineTest, PublishesQueryMetrics) {
  SuperCayleyGraph Net = SuperCayleyGraph::star(5);
  QueryEngine Engine(Net);
  Permutation Id = Permutation::identity(5);
  Permutation Dst = unrankPermutation(42, 5);
  Engine.distance(Id, Dst);
  Engine.route(Id, Dst);
  Engine.route(Id, Dst);

  MetricsRegistry M;
  Engine.publishMetrics(M);
  EXPECT_EQ(M.find("query.distance.count")->value(), 1.0);
  EXPECT_EQ(M.find("query.route.count")->value(), 2.0);
  EXPECT_EQ(M.find("query.cache.hits")->value(), 1.0);
  EXPECT_EQ(M.find("query.cache.misses")->value(), 1.0);
  EXPECT_EQ(M.find("query.cache.hit_rate")->value(), 0.5);
  ASSERT_NE(M.find("query.cache.shard0.hit_rate"), nullptr);
  EXPECT_EQ(M.find("query.answers.table")->value(), 0.0);
  EXPECT_GT(M.find("query.answers.table_free")->value(), 0.0);
}

//===----------------------------------------------------------------------===//
// TableStore: format round trip, mmap sharing, corruption rejection.
//===----------------------------------------------------------------------===//

TEST(TableStoreTest, SaveLoadRoundTrip) {
  SuperCayleyGraph Net = SuperCayleyGraph::star(6);
  TableStore Built = TableStore::build(Net);
  std::string Path = tempPath("star6.scgtbl");
  Built.save(Path);

  TableStore Loaded = TableStore::load(Path);
  EXPECT_TRUE(Loaded.isMapped());
  EXPECT_FALSE(Built.isMapped());
  EXPECT_TRUE(Loaded.covers(Net));
  EXPECT_EQ(Loaded.numNodes(), factorial(6));
  for (uint64_t R = 0; R != Loaded.numNodes(); ++R)
    EXPECT_EQ(Loaded.distanceByRank(R), Built.distanceByRank(R));
  std::remove(Path.c_str());
}

TEST(TableStoreTest, CrossProcessWriterReaderSplit) {
  // The multi-process contract: one process serializes, another mmaps the
  // file read-only and serves exact answers from it.
  SuperCayleyGraph Net = SuperCayleyGraph::bubbleSort(5);
  TableStore Built = TableStore::build(Net);
  std::string Path = tempPath("bubble5.scgtbl");
  Built.save(Path);

  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    // Reader process: load, spot-check against nothing but the format.
    try {
      TableStore Loaded = TableStore::load(Path);
      bool Ok = Loaded.isMapped() && Loaded.covers(Net) &&
                Loaded.numNodes() == factorial(5) &&
                Loaded.distanceByRank(0) == 0;
      for (uint64_t R = 0; Ok && R != Loaded.numNodes(); ++R)
        Ok = Loaded.distanceByRank(R) == Built.distanceByRank(R);
      _exit(Ok ? 0 : 1);
    } catch (const TableStoreError &) {
      _exit(2);
    }
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  EXPECT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  std::remove(Path.c_str());
}

namespace {

std::vector<char> readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return {std::istreambuf_iterator<char>(In), {}};
}

void writeAll(const std::string &Path, const std::vector<char> &Bytes,
              size_t Count) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), std::streamsize(Count));
}

void expectLoadFails(const std::string &Path, const std::string &Needle) {
  try {
    TableStore T = TableStore::load(Path);
    FAIL() << "load of " << Path << " should have thrown";
  } catch (const TableStoreError &E) {
    EXPECT_NE(std::string(E.what()).find(Needle), std::string::npos)
        << "message was: " << E.what();
  }
}

} // namespace

TEST(TableStoreTest, RejectsCorruptFiles) {
  SuperCayleyGraph Net = SuperCayleyGraph::star(5);
  std::string Good = tempPath("good.scgtbl");
  TableStore::build(Net).save(Good);
  std::vector<char> Bytes = readAll(Good);
  ASSERT_EQ(Bytes.size(), 56u + factorial(5));
  std::string Bad = tempPath("bad.scgtbl");

  // Shorter than the header.
  writeAll(Bad, Bytes, 20);
  expectLoadFails(Bad, "smaller than the header");

  // Payload cut off mid-row.
  writeAll(Bad, Bytes, Bytes.size() - 10);
  expectLoadFails(Bad, "truncated payload");

  // Junk appended after the payload.
  {
    std::vector<char> Long = Bytes;
    Long.push_back('x');
    writeAll(Bad, Long, Long.size());
    expectLoadFails(Bad, "trailing garbage");
  }

  // A single flipped payload bit must fail the checksum.
  {
    std::vector<char> Flipped = Bytes;
    Flipped[56 + 40] ^= 0x10;
    writeAll(Bad, Flipped, Flipped.size());
    expectLoadFails(Bad, "checksum mismatch");
  }

  // Wrong magic: not one of our files at all.
  {
    std::vector<char> Foreign = Bytes;
    Foreign[0] = 'X';
    writeAll(Bad, Foreign, Foreign.size());
    expectLoadFails(Bad, "bad magic");
  }

  // Byte-swapped endianness probe, as a big-endian writer would produce.
  {
    std::vector<char> Swapped = Bytes;
    std::swap(Swapped[8], Swapped[11]);
    std::swap(Swapped[9], Swapped[10]);
    writeAll(Bad, Swapped, Swapped.size());
    expectLoadFails(Bad, "foreign-endian");
  }

  // Future format version.
  {
    std::vector<char> Versioned = Bytes;
    Versioned[12] = 9;
    writeAll(Bad, Versioned, Versioned.size());
    expectLoadFails(Bad, "version");
  }

  // Header k / node-count disagreement.
  {
    std::vector<char> Mismatched = Bytes;
    Mismatched[28] = 7; // claims k = 7 but count stays 5!.
    writeAll(Bad, Mismatched, Mismatched.size());
    expectLoadFails(Bad, "does not match k!");
  }

  // The untouched original still loads after all that.
  EXPECT_NO_THROW(TableStore::load(Good));
  std::remove(Good.c_str());
  std::remove(Bad.c_str());

  // A missing file is an error, not UB.
  expectLoadFails(Good, "cannot open");
}

TEST(TableStoreTest, CoversChecksKindAndParameters) {
  TableStore T = TableStore::build(SuperCayleyGraph::star(5));
  EXPECT_TRUE(T.covers(SuperCayleyGraph::star(5)));
  EXPECT_FALSE(T.covers(SuperCayleyGraph::star(6)));
  EXPECT_FALSE(T.covers(SuperCayleyGraph::bubbleSort(5)));
  EXPECT_FALSE(
      T.covers(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2)));
}

//===----------------------------------------------------------------------===//
// Faulted tables: unreachable lanes serve UnreachableDistance, routes fall
// back to the closed-form router.
//===----------------------------------------------------------------------===//

TEST(QueryEngineTest, FaultedTableFallsBackToTableFreeRoutes) {
  SuperCayleyGraph Net = SuperCayleyGraph::star(5);
  TableStore Clean = TableStore::build(Net);
  std::vector<uint8_t> Row(Clean.numNodes());
  for (uint64_t R = 0; R != Clean.numNodes(); ++R)
    Row[R] = Clean.distanceByRank(R);
  // Knock out a band of nodes, as a fault sweep's distance row would.
  for (uint64_t R = 40; R != 60; ++R)
    Row[R] = TableUnreachable;

  QueryEngine Engine(Net);
  Engine.attachTable(
      std::make_shared<TableStore>(TableStore::fromRow(Net, std::move(Row))));
  Permutation Id = Permutation::identity(5);

  Permutation Dead = unrankPermutation(45, 5);
  DistanceReply D = Engine.distance(Id, Dead);
  EXPECT_EQ(D.Distance, UnreachableDistance);
  EXPECT_TRUE(D.FromTable);
  // The route cannot descend through the hole, but the star closed form
  // still produces a valid (unfaulted-network) route.
  RouteReply Route = Engine.route(Id, Dead);
  expectValidRoute(Net, Id, Dead, Route.Hops);
  EXPECT_FALSE(Route.FromTable);

  // Lanes outside the hole still serve exact distances from the table, and
  // routes stay valid whichever engine ends up producing them.
  Permutation Alive = unrankPermutation(100, 5);
  DistanceReply DA = Engine.distance(Id, Alive);
  EXPECT_TRUE(DA.FromTable);
  EXPECT_NE(DA.Distance, UnreachableDistance);
  expectValidRoute(Net, Id, Alive, Engine.route(Id, Alive).Hops);
}

//===----------------------------------------------------------------------===//
// Family sweep instantiation.
//===----------------------------------------------------------------------===//

INSTANTIATE_TEST_SUITE_P(
    Families, QueryEngineFamilyTest,
    testing::Values(QueryParams{NetworkKind::Star, 5, 1},
                    QueryParams{NetworkKind::Star, 6, 1},
                    QueryParams{NetworkKind::BubbleSort, 5, 1},
                    QueryParams{NetworkKind::BubbleSort, 6, 1},
                    QueryParams{NetworkKind::Transposition, 5, 1},
                    QueryParams{NetworkKind::Rotator, 5, 1},
                    QueryParams{NetworkKind::Rotator, 6, 1},
                    QueryParams{NetworkKind::InsertionSelection, 5, 1},
                    QueryParams{NetworkKind::MacroStar, 2, 2},
                    QueryParams{NetworkKind::RotationStar, 2, 2},
                    QueryParams{NetworkKind::CompleteRotationStar, 2, 2},
                    QueryParams{NetworkKind::MacroIS, 2, 2},
                    QueryParams{NetworkKind::RotationIS, 2, 2},
                    QueryParams{NetworkKind::CompleteRotationIS, 2, 2},
                    QueryParams{NetworkKind::MacroRotator, 2, 2},
                    QueryParams{NetworkKind::RotationRotator, 2, 2},
                    QueryParams{NetworkKind::CompleteRotationRotator, 2, 2}),
    queryName);
