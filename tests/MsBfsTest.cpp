//===- tests/MsBfsTest.cpp - Bit-parallel multi-source BFS pins ----------===//
//
// Differential tests for the bit-parallel distance engine (graph/MsBfs.h):
//
//  * msBfs / msBfsDistances must agree with one scalar bfs() per source --
//    distances, eccentricity, reached count, and distance sum, per lane --
//    on every network family at k = 5, from both Csr builds (Graph
//    flatten and ExplicitScg::toCsr).
//  * Source lists that are not a multiple (or a divisor) of 64 lanes, in
//    arbitrary order, with duplicates.
//  * Disconnected and faulted graphs: unreached nodes, per-lane reached
//    counts, and the Connected=false sweep result.
//  * allPairsStats (now MS-BFS-backed) == scalarAllPairsStats everywhere,
//    and parallel == serial byte-identity at 1/2/8 threads (the
//    determinism contract, under the `parallel` ctest label).
//
//===----------------------------------------------------------------------===//

#include "graph/Faults.h"
#include "graph/Metrics.h"
#include "graph/MsBfs.h"
#include "networks/Classic.h"
#include "networks/Explicit.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

using namespace scg;

namespace {

/// Every network family the library implements, materialized at k = 5
/// (mirrors KernelDifferentialTest::allFamiliesK5).
std::vector<SuperCayleyGraph> allFamiliesK5() {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(5));
  Nets.push_back(SuperCayleyGraph::bubbleSort(5));
  Nets.push_back(SuperCayleyGraph::transpositionNetwork(5));
  Nets.push_back(SuperCayleyGraph::rotator(5));
  Nets.push_back(SuperCayleyGraph::insertionSelection(5));
  Nets.push_back(
      SuperCayleyGraph::transpositionTree(5, {{1, 2}, {2, 3}, {2, 4}, {4, 5}}));
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS})
    Nets.push_back(SuperCayleyGraph::create(Kind, 2, 2));
  return Nets;
}

/// Checks one batch of sources against one scalar bfs() per source:
/// distance rows byte-equal, per-lane stats equal.
void expectBatchMatchesScalar(const Graph &G, const Csr &C,
                              std::span<const NodeId> Sources,
                              const std::string &What) {
  MsBfsBatch Batch = msBfs(C, Sources);
  std::vector<std::vector<uint32_t>> Rows = msBfsDistances(C, Sources);
  ASSERT_EQ(Batch.Eccentricity.size(), Sources.size()) << What;
  ASSERT_EQ(Rows.size(), Sources.size()) << What;
  for (size_t Lane = 0; Lane != Sources.size(); ++Lane) {
    BfsResult Ref = bfs(G, Sources[Lane]);
    EXPECT_EQ(Rows[Lane], Ref.Distance)
        << What << " lane " << Lane << " source " << Sources[Lane];
    EXPECT_EQ(Batch.Eccentricity[Lane], Ref.Eccentricity) << What << " lane "
                                                          << Lane;
    EXPECT_EQ(Batch.NumReached[Lane], Ref.NumReached) << What << " lane "
                                                      << Lane;
    EXPECT_EQ(Batch.DistanceSum[Lane], Ref.DistanceSum) << What << " lane "
                                                        << Lane;
  }
}

bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

void expectSameStats(const DistanceStats &A, const DistanceStats &B,
                     const std::string &What) {
  EXPECT_EQ(A.Connected, B.Connected) << What;
  EXPECT_EQ(A.Diameter, B.Diameter) << What;
  EXPECT_TRUE(bitEqual(A.AverageDistance, B.AverageDistance)) << What;
}

template <typename Fn> auto withThreads(unsigned Threads, Fn &&F) {
  setGlobalThreadCount(Threads);
  auto Result = F();
  setGlobalThreadCount(0);
  return Result;
}

TEST(MsBfs, MatchesScalarOnEveryFamilyFullSourceSet) {
  for (const SuperCayleyGraph &Scg : allFamiliesK5()) {
    ExplicitScg Net(Scg);
    Graph G = Net.toGraph();
    Csr FromGraph(G);
    Csr FromTable = Net.toCsr();
    // All 120 nodes as sources: batches of 64 + a 56-lane tail, from both
    // CSR builds.
    std::vector<NodeId> All(Net.numNodes());
    std::iota(All.begin(), All.end(), 0);
    for (size_t Begin = 0; Begin < All.size(); Begin += MsBfsLanes) {
      size_t Count = std::min<size_t>(MsBfsLanes, All.size() - Begin);
      auto Chunk = std::span(All).subspan(Begin, Count);
      expectBatchMatchesScalar(G, FromGraph, Chunk,
                               Scg.name() + " csr(graph)");
      expectBatchMatchesScalar(G, FromTable, Chunk,
                               Scg.name() + " csr(table)");
    }
  }
}

TEST(MsBfs, OddSourceCountsAndDuplicates) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  Graph G = Net.toGraph();
  Csr C(G);
  // 1, 2, 37, 63, 64 lanes; scattered, unordered, with a duplicate node.
  std::vector<NodeId> Scattered;
  for (NodeId I = 0; I != 63; ++I)
    Scattered.push_back((I * 37 + 11) % Net.numNodes());
  Scattered[20] = Scattered[3]; // duplicated source on two lanes.
  for (size_t Count : {size_t(1), size_t(2), size_t(37), size_t(63),
                       size_t(Scattered.size())})
    expectBatchMatchesScalar(G, C, std::span(Scattered).first(Count),
                             "star5 scattered " + std::to_string(Count));
  std::vector<NodeId> Full(64, 0);
  std::iota(Full.begin(), Full.end(), NodeId(17));
  expectBatchMatchesScalar(G, C, Full, "star5 full word");
}

TEST(MsBfs, DisconnectedGraphPerLaneReach) {
  // Two components (a 4-path and a 3-cycle) plus an isolated node.
  Graph G(8);
  for (NodeId I = 0; I + 1 != 4; ++I)
    G.addUndirectedEdge(I, I + 1);
  G.addUndirectedEdge(4, 5);
  G.addUndirectedEdge(5, 6);
  G.addUndirectedEdge(6, 4);
  Csr C(G);
  std::vector<NodeId> Sources(8);
  std::iota(Sources.begin(), Sources.end(), 0);
  expectBatchMatchesScalar(G, C, Sources, "two components");
  MsBfsBatch Batch = msBfs(C, Sources);
  EXPECT_EQ(Batch.NumReached[0], 4u);
  EXPECT_EQ(Batch.NumReached[4], 3u);
  EXPECT_EQ(Batch.NumReached[7], 1u); // the isolated node reaches itself.
  EXPECT_EQ(Batch.Eccentricity[7], 0u);
  EXPECT_EQ(Batch.DistanceSum[7], 0u);
  expectSameStats(allPairsStats(G), scalarAllPairsStats(G), "disconnected");
  EXPECT_FALSE(allPairsStats(G).Connected);
}

TEST(MsBfs, FaultedGraphMatchesScalar) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  Graph G = Net.toGraph();
  FaultSet Faults;
  Faults.failNode(7);
  Faults.failNode(63);
  Faults.failLink(0, G.neighbors(0)[0]);
  Graph Surviving = applyFaults(G, Faults);
  Csr C(Surviving);
  std::vector<NodeId> Sources;
  for (NodeId Node = 0; Node != Surviving.numNodes(); ++Node)
    if (!Faults.nodeFailed(Node))
      Sources.push_back(Node);
  for (size_t Begin = 0; Begin < Sources.size(); Begin += MsBfsLanes)
    expectBatchMatchesScalar(
        Surviving, C,
        std::span(Sources).subspan(
            Begin, std::min<size_t>(MsBfsLanes, Sources.size() - Begin)),
        "faulted star5");
  expectSameStats(allPairsStats(Surviving), scalarAllPairsStats(Surviving),
                  "faulted star5 sweep");
}

TEST(MsBfs, AllPairsMatchesScalarEngineOnEveryFamily) {
  for (const SuperCayleyGraph &Scg : allFamiliesK5()) {
    Graph G = ExplicitScg(Scg).toGraph();
    expectSameStats(allPairsStats(G), scalarAllPairsStats(G), Scg.name());
  }
  // Non-vertex-transitive guests take the same engine.
  for (const Graph &G : {mesh2D(4, 5), completeBinaryTree(4), hypercube(5)})
    expectSameStats(allPairsStats(G), scalarAllPairsStats(G), "guest");
}

TEST(MsBfs, AllPairsMatchesScalarAtK6) {
  // One larger instance (720 nodes: 12 batches) per acceptance criteria.
  Graph G = ExplicitScg(SuperCayleyGraph::star(6)).toGraph();
  expectSameStats(allPairsStats(G), scalarAllPairsStats(G), "star6");
  Graph R = ExplicitScg(SuperCayleyGraph::rotator(6)).toGraph();
  expectSameStats(allPairsStats(R), scalarAllPairsStats(R),
                  "rotator6 (directed)");
}

TEST(MsBfs, ParallelSerialByteIdentity) {
  for (const SuperCayleyGraph &Scg :
       {SuperCayleyGraph::star(6),
        SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2)}) {
    Graph G = ExplicitScg(Scg).toGraph();
    DistanceStats Ref = withThreads(1, [&] { return allPairsStats(G); });
    for (unsigned Threads : {2u, 8u})
      expectSameStats(Ref, withThreads(Threads, [&] {
                        return allPairsStats(G);
                      }),
                      Scg.name() + " @" + std::to_string(Threads));
  }
}

TEST(MsBfs, LeanReachabilityAgreesWithBfs) {
  // The isConnectedFromZero fast path: counts must agree with full BFS on
  // connected, disconnected, and directed graphs.
  Graph Disconnected(6);
  Disconnected.addUndirectedEdge(0, 1);
  Disconnected.addUndirectedEdge(2, 3);
  EXPECT_EQ(bfsReachableCount(Disconnected, 0), bfs(Disconnected, 0).NumReached);
  EXPECT_FALSE(isConnectedFromZero(Disconnected));
  for (const SuperCayleyGraph &Scg : allFamiliesK5()) {
    Graph G = ExplicitScg(Scg).toGraph();
    EXPECT_EQ(bfsReachableCount(G, 0), bfs(G, 0).NumReached) << Scg.name();
    EXPECT_TRUE(isConnectedFromZero(G)) << Scg.name();
  }
}

} // namespace
