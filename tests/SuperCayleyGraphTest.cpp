//===- tests/SuperCayleyGraphTest.cpp - Network descriptor tests ---------===//

#include "core/SuperCayleyGraph.h"

#include "perm/Lehmer.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(SuperCayleyGraph, StarDegreeAndSize) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(7);
  EXPECT_EQ(Star.degree(), 6u);
  EXPECT_EQ(Star.numNodes(), factorial(7));
  EXPECT_EQ(Star.numSymbols(), 7u);
  EXPECT_TRUE(Star.isUndirected());
  EXPECT_TRUE(Star.generators().isSymmetric());
  EXPECT_EQ(Star.name(), "star(7)");
}

TEST(SuperCayleyGraph, BubbleSortDegree) {
  SuperCayleyGraph B = SuperCayleyGraph::bubbleSort(6);
  EXPECT_EQ(B.degree(), 5u);
  EXPECT_TRUE(B.generators().isSymmetric());
}

TEST(SuperCayleyGraph, TranspositionNetworkDegree) {
  // k-TN has degree k(k-1)/2 [12].
  SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(6);
  EXPECT_EQ(Tn.degree(), 15u);
  EXPECT_TRUE(Tn.generators().isSymmetric());
}

TEST(SuperCayleyGraph, InsertionSelectionDegree) {
  // IS(k) is defined by 2(k-1) generators (I_2..I_k and inverses).
  SuperCayleyGraph Is = SuperCayleyGraph::insertionSelection(6);
  EXPECT_EQ(Is.degree(), 10u);
  EXPECT_TRUE(Is.generators().isSymmetric());
  EXPECT_EQ(Is.name(), "IS(6)");
}

TEST(SuperCayleyGraph, MacroStarStructure) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 4, 3);
  EXPECT_EQ(Ms.numSymbols(), 13u);
  EXPECT_EQ(Ms.degree(), 3u + 3u); // n transpositions + l-1 swaps.
  EXPECT_EQ(Ms.numBoxes(), 4u);
  EXPECT_EQ(Ms.ballsPerBox(), 3u);
  EXPECT_TRUE(Ms.isUndirected());
  EXPECT_EQ(Ms.name(), "MS(4,3)");
}

TEST(SuperCayleyGraph, RotationStarDegrees) {
  // RS has R and R^-1 (merged when l = 2).
  EXPECT_EQ(SuperCayleyGraph::create(NetworkKind::RotationStar, 2, 3).degree(),
            3u + 1u);
  EXPECT_EQ(SuperCayleyGraph::create(NetworkKind::RotationStar, 4, 3).degree(),
            3u + 2u);
}

TEST(SuperCayleyGraph, CompleteRotationStarDegree) {
  // complete-RS has all l-1 rotations.
  SuperCayleyGraph Net =
      SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 4, 3);
  EXPECT_EQ(Net.degree(), 3u + 3u);
  EXPECT_TRUE(Net.generators().isSymmetric());
  EXPECT_EQ(Net.name(), "complete-RS(4,3)");
}

TEST(SuperCayleyGraph, RotatorClassesAreDirected) {
  for (NetworkKind Kind :
       {NetworkKind::MacroRotator, NetworkKind::RotationRotator,
        NetworkKind::CompleteRotationRotator}) {
    SuperCayleyGraph Net = SuperCayleyGraph::create(Kind, 3, 2);
    EXPECT_FALSE(Net.isUndirected()) << Net.name();
    EXPECT_FALSE(Net.generators().isSymmetric()) << Net.name();
  }
}

TEST(SuperCayleyGraph, MacroRotatorDegree) {
  // MR(l,n): n insertions + l-1 swaps.
  SuperCayleyGraph Mr =
      SuperCayleyGraph::create(NetworkKind::MacroRotator, 3, 2);
  EXPECT_EQ(Mr.degree(), 2u + 2u);
}

TEST(SuperCayleyGraph, MacroIsDegree) {
  // MIS(l,n): 2n nucleus links + l-1 swaps.
  SuperCayleyGraph Mis = SuperCayleyGraph::create(NetworkKind::MacroIS, 3, 2);
  EXPECT_EQ(Mis.degree(), 4u + 2u);
  EXPECT_TRUE(Mis.generators().isSymmetric());
}

TEST(SuperCayleyGraph, AllTenClassesConstruct) {
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS}) {
    SuperCayleyGraph Net = SuperCayleyGraph::create(Kind, 3, 2);
    EXPECT_EQ(Net.numSymbols(), 7u) << Net.name();
    EXPECT_EQ(Net.numNodes(), factorial(7)) << Net.name();
    EXPECT_GE(Net.degree(), 3u) << Net.name();
  }
}

TEST(SuperCayleyGraph, NeighborsFollowGenerators) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  Permutation U = Permutation::parseOneBased("3 1 4 5 2");
  std::vector<Permutation> Neighbors = Ms.neighbors(U);
  ASSERT_EQ(Neighbors.size(), Ms.degree());
  for (GenIndex G = 0; G != Ms.degree(); ++G)
    EXPECT_EQ(Neighbors[G], U.compose(Ms.generators()[G].Sigma));
}

TEST(SuperCayleyGraph, NeighborIsInvolutiveForUndirected) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  Permutation U = Permutation::identity(5);
  for (GenIndex G = 0; G != Ms.degree(); ++G) {
    Permutation V = Ms.neighbor(U, G);
    auto Inv = Ms.generators().inverseOf(G);
    ASSERT_TRUE(Inv);
    EXPECT_EQ(Ms.neighbor(V, *Inv), U);
  }
}

TEST(SuperCayleyGraph, KindNames) {
  EXPECT_EQ(networkKindName(NetworkKind::CompleteRotationIS),
            "complete-RIS");
  EXPECT_EQ(networkKindName(NetworkKind::RotationRotator), "RR");
  EXPECT_EQ(networkKindName(NetworkKind::InsertionSelection), "IS");
}
