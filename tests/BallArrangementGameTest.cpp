//===- tests/BallArrangementGameTest.cpp - BAG model tests ---------------===//

#include "core/BallArrangementGame.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

SuperCayleyGraph ms22() {
  return SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
}

} // namespace

TEST(BallArrangementGame, BallColors) {
  SuperCayleyGraph Net = ms22(); // k = 5, two boxes of two balls.
  BallArrangementGame Game(Net, Permutation::identity(5));
  EXPECT_EQ(Game.ballColor(1), 0u); // the outside ball.
  EXPECT_EQ(Game.ballColor(2), 1u);
  EXPECT_EQ(Game.ballColor(3), 1u);
  EXPECT_EQ(Game.ballColor(4), 2u);
  EXPECT_EQ(Game.ballColor(5), 2u);
}

TEST(BallArrangementGame, SolvedAtIdentity) {
  SuperCayleyGraph Net = ms22();
  BallArrangementGame Game(Net, Permutation::identity(5));
  EXPECT_TRUE(Game.isSolved());
  EXPECT_EQ(Game.numMisplacedBalls(), 0u);
}

TEST(BallArrangementGame, MisplacedCount) {
  SuperCayleyGraph Net = ms22();
  // 4 and 5 (color 2) sit in box 1; 2 and 3 (color 1) in box 2.
  BallArrangementGame Game(Net, Permutation::parseOneBased("1 4 5 2 3"));
  EXPECT_FALSE(Game.isSolved());
  EXPECT_EQ(Game.numMisplacedBalls(), 4u);
}

TEST(BallArrangementGame, PlayFollowsLinks) {
  SuperCayleyGraph Net = ms22();
  BallArrangementGame Game(Net, Permutation::identity(5));
  GenIndex T2 = *Net.generators().findByName("T2");
  Game.play(T2); // exchange outside ball with first ball of box 1.
  EXPECT_EQ(Game.configuration().str(), "2 1 3 4 5");
  EXPECT_EQ(Game.history().size(), 1u);
  EXPECT_FALSE(Game.isSolved());
}

TEST(BallArrangementGame, PlaySolvesSimpleInstance) {
  SuperCayleyGraph Net = ms22();
  // One move from solved: boxes exchanged.
  BallArrangementGame Game(Net, Permutation::parseOneBased("1 4 5 2 3"));
  GenIndex S2 = *Net.generators().findByName("S2");
  Game.play(S2);
  EXPECT_TRUE(Game.isSolved());
}

TEST(BallArrangementGame, UndoRestoresConfiguration) {
  SuperCayleyGraph Net = ms22();
  BallArrangementGame Game(Net, Permutation::identity(5));
  Permutation Before = Game.configuration();
  Game.play(*Net.generators().findByName("T3"));
  Game.play(*Net.generators().findByName("S2"));
  EXPECT_TRUE(Game.undo());
  EXPECT_TRUE(Game.undo());
  EXPECT_EQ(Game.configuration(), Before);
  EXPECT_FALSE(Game.undo()); // nothing left.
}

TEST(BallArrangementGame, RenderShowsBoxes) {
  SuperCayleyGraph Net = ms22();
  BallArrangementGame Game(Net, Permutation::parseOneBased("1 4 5 2 3"));
  EXPECT_EQ(Game.render(), "1 | 4 5 | 2 3");
}

TEST(BallArrangementGame, MovesMatchCayleyNeighbors) {
  SuperCayleyGraph Net =
      SuperCayleyGraph::create(NetworkKind::CompleteRotationIS, 3, 2);
  Permutation Start = Permutation::parseOneBased("4 2 6 1 7 3 5");
  BallArrangementGame Game(Net, Start);
  for (GenIndex G = 0; G != Net.degree(); ++G) {
    BallArrangementGame Fresh(Net, Start);
    Fresh.play(G);
    EXPECT_EQ(Fresh.configuration(), Net.neighbor(Start, G));
  }
}
