//===- tests/EventCoreDifferentialTest.cpp - Step vs event engine --------===//
//
// Differential harness pinning SimEngine::Event (serial and sharded) to
// the step engine byte for byte: identical SimulationResult fields,
// identical per-packet delivery steps, and identical aggregate event
// streams, for every network family at k = 4 across all three
// communication models, under permutation-routing traffic, mixed random
// multi-flit traffic, timed workload injections, MaxSteps caps, and
// stalled single-dimension schedules. A ModelInvariantChecker rides along
// on every event-engine run (any violation is a test failure), and the
// sharded runs assert byte-identity at every shard count -- which, under
// SCG_TSAN, also race-checks the two-phase parallel step.
//
//===----------------------------------------------------------------------===//

#include "comm/PermutationRouting.h"
#include "comm/SimObserver.h"
#include "comm/Workload.h"
#include "emulation/ScgRouter.h"
#include "emulation/SdcEmulation.h"

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

/// All network families at k = 4: the single-level classes plus every box
/// class at (l, n) = (3, 1) (k = l * n + 1).
std::vector<SuperCayleyGraph> familiesAtK4() {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(4));
  Nets.push_back(SuperCayleyGraph::bubbleSort(4));
  Nets.push_back(SuperCayleyGraph::transpositionNetwork(4));
  Nets.push_back(SuperCayleyGraph::rotator(4));
  Nets.push_back(SuperCayleyGraph::insertionSelection(4));
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS})
    Nets.push_back(SuperCayleyGraph::create(Kind, 3, 1));
  return Nets;
}

const std::vector<CommModel> AllModels = {
    CommModel::AllPort, CommModel::SinglePort, CommModel::SingleDimension};

/// Deterministic mixed traffic: random valid routes, every fourth packet a
/// multi-flit message, plus a few zero-hop packets.
void injectMixed(NetworkSimulator &Sim, const ExplicitScg &Net,
                 unsigned Count, uint64_t Seed, unsigned ZeroHop = 0) {
  SplitMix64 Rng(Seed);
  for (unsigned P = 0; P != Count; ++P) {
    NodeId Src = Rng.nextBelow(Net.numNodes());
    unsigned Len = 1 + Rng.nextBelow(5);
    std::vector<GenIndex> Route;
    for (unsigned H = 0; H != Len; ++H)
      Route.push_back(Rng.nextBelow(Net.degree()));
    Sim.injectPacket(Src, Route, P % 4 == 0 ? 1 + P % 3 : 1);
  }
  for (unsigned Z = 0; Z != ZeroHop; ++Z)
    Sim.injectPacket(Rng.nextBelow(Net.numNodes()), {});
}

/// The engine-identity contract: every semantic field (TouchedWork is the
/// one engine-dependent diagnostic and is deliberately excluded).
void expectSameResult(const SimulationResult &Step,
                      const SimulationResult &Event, const std::string &What) {
  EXPECT_EQ(Step.Completed, Event.Completed) << What;
  EXPECT_EQ(Step.Steps, Event.Steps) << What;
  EXPECT_EQ(Step.Delivered, Event.Delivered) << What;
  EXPECT_EQ(Step.Transmissions, Event.Transmissions) << What;
  EXPECT_EQ(Step.BusyLinkSteps, Event.BusyLinkSteps) << What;
  EXPECT_EQ(Step.MaxQueueLength, Event.MaxQueueLength) << What;
  EXPECT_EQ(Step.LinkUtilization, Event.LinkUtilization) << What;
}

/// Records per-packet delivery steps and aggregate stream counts. The
/// event engine fires onStep only for steps with scheduled work, so step
/// counts differ by design; everything that describes actual traffic
/// (transmission starts, occupancy records, arrivals, deliveries, and the
/// step each packet was delivered) must be identical.
struct StreamRecorder final : SimObserver {
  std::vector<std::pair<uint32_t, uint64_t>> DeliverySteps;
  uint64_t Started = 0, Occupancy = 0, Arrivals = 0;
  void onStep(const NetworkSimulator &, const StepEvents &E) override {
    for (const LinkActivity &A : E.Active)
      A.Started ? ++Started : ++Occupancy;
    Arrivals += E.Arrivals.size();
    for (uint32_t Id : E.Deliveries)
      DeliverySteps.push_back({Id, E.Step});
  }
};

struct RunOutcome {
  SimulationResult Result;
  StreamRecorder Stream;
  bool InvariantsClean = true;
  std::string InvariantReport;
};

/// Runs \p Fill-ed traffic on (Net, Model) with the given engine/shards,
/// collecting the result, the observer stream, and (event engine) the
/// model-invariant verdict.
template <typename FillFn>
RunOutcome runOne(const ExplicitScg &Net, CommModel Model, SimEngine Engine,
                  unsigned Shards, uint64_t MaxSteps, FillFn Fill) {
  NetworkSimulator Sim(Net, Model);
  Sim.setEngine(Engine);
  Sim.setEventShards(Shards);
  Fill(Sim);
  RunOutcome Out;
  ModelInvariantChecker Checker;
  Sim.addObserver(&Out.Stream);
  Sim.addObserver(&Checker);
  Out.Result = Sim.run(MaxSteps);
  Out.InvariantsClean = Checker.clean();
  Out.InvariantReport = Checker.report();
  return Out;
}

template <typename FillFn>
void expectEnginesAgree(const ExplicitScg &Net, CommModel Model,
                        uint64_t MaxSteps, const std::string &What,
                        FillFn Fill, unsigned EventShardsToCheck = 4) {
  RunOutcome Step =
      runOne(Net, Model, SimEngine::Step, 1, MaxSteps, Fill);
  RunOutcome Event =
      runOne(Net, Model, SimEngine::Event, 1, MaxSteps, Fill);
  expectSameResult(Step.Result, Event.Result, What + " [event serial]");
  EXPECT_EQ(Step.Stream.DeliverySteps, Event.Stream.DeliverySteps) << What;
  EXPECT_EQ(Step.Stream.Started, Event.Stream.Started) << What;
  EXPECT_EQ(Step.Stream.Occupancy, Event.Stream.Occupancy) << What;
  EXPECT_EQ(Step.Stream.Arrivals, Event.Stream.Arrivals) << What;
  // The invariant checker is part of the contract: scheduling bugs in the
  // event core must fail loudly, not land in a log line.
  EXPECT_TRUE(Step.InvariantsClean) << What << "\n" << Step.InvariantReport;
  EXPECT_TRUE(Event.InvariantsClean) << What << "\n" << Event.InvariantReport;

  RunOutcome Sharded = runOne(Net, Model, SimEngine::Event,
                              EventShardsToCheck, MaxSteps, Fill);
  expectSameResult(Step.Result, Sharded.Result, What + " [event sharded]");
  EXPECT_EQ(Step.Stream.DeliverySteps, Sharded.Stream.DeliverySteps) << What;
  EXPECT_TRUE(Sharded.InvariantsClean)
      << What << "\n" << Sharded.InvariantReport;
}

} // namespace

//===----------------------------------------------------------------------===//
// Mixed random multi-flit traffic, every family x model
//===----------------------------------------------------------------------===//

TEST(EventCoreDifferential, MixedTrafficEveryFamilyAndModel) {
  for (const SuperCayleyGraph &Family : familiesAtK4()) {
    ExplicitScg Net(Family);
    for (CommModel Model : AllModels) {
      std::string What = Family.name() + " / " + commModelName(Model);
      expectEnginesAgree(Net, Model, 4000, What, [&](NetworkSimulator &Sim) {
        injectMixed(Sim, Net, 40, 0xD1FF + Net.degree(), /*ZeroHop=*/3);
      });
    }
  }
}

//===----------------------------------------------------------------------===//
// Permutation-routing traffic (lifted optimal star routes)
//===----------------------------------------------------------------------===//

TEST(EventCoreDifferential, PermutationRoutingEveryFamilyAndModel) {
  for (const SuperCayleyGraph &Family : familiesAtK4()) {
    if (!supportsStarEmulation(Family))
      continue;
    ExplicitScg Net(Family);
    TrafficPattern Pattern = randomTraffic(Net, 7);
    // Precompute the lifted routes once; the fill re-injects them per run.
    std::vector<std::vector<GenIndex>> Routes;
    for (NodeId U = 0; U != Net.numNodes(); ++U)
      Routes.push_back(
          routeViaStarEmulation(Family, Net.label(U), Net.label(Pattern[U]))
              .hops());
    for (CommModel Model : AllModels) {
      std::string What =
          Family.name() + " / " + commModelName(Model) + " / permutation";
      expectEnginesAgree(Net, Model, 100000, What,
                         [&](NetworkSimulator &Sim) {
                           for (NodeId U = 0; U != Net.numNodes(); ++U)
                             Sim.injectPacket(U, Routes[U]);
                         });
    }
  }
}

//===----------------------------------------------------------------------===//
// Timed workload injections (the open-loop traffic path)
//===----------------------------------------------------------------------===//

TEST(EventCoreDifferential, WorkloadTraceEveryModel) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  for (WorkloadKind Kind :
       {WorkloadKind::UniformRandom, WorkloadKind::Hotspot,
        WorkloadKind::Transpose, WorkloadKind::BurstyUniform}) {
    WorkloadSpec Spec;
    Spec.Kind = Kind;
    Spec.InjectionRate = 0.05;
    Spec.Seed = 21;
    WorkloadGenerator Gen(Net, Spec);
    std::vector<TrafficEvent> Trace = Gen.generate(200);
    ASSERT_FALSE(Trace.empty());
    for (CommModel Model : AllModels) {
      std::string What =
          workloadKindName(Kind) + " / " + commModelName(Model);
      expectEnginesAgree(Net, Model, 5000, What, [&](NetworkSimulator &Sim) {
        for (const TrafficEvent &E : Trace) {
          std::vector<GenIndex> Route;
          if (E.Src != E.Dst)
            Route = routeViaStarEmulation(Net.network(), Net.label(E.Src),
                                          Net.label(E.Dst))
                        .hops();
          Sim.scheduleInjection(E.Step, E.Src, Route,
                                E.Src % 5 == 0 ? 2 : 1);
        }
      });
    }
  }
}

//===----------------------------------------------------------------------===//
// MaxSteps caps: results must agree at every truncation point
//===----------------------------------------------------------------------===//

TEST(EventCoreDifferential, CappedRunsAgreeAtEveryHorizon) {
  ExplicitScg Net(SuperCayleyGraph::bubbleSort(4));
  for (CommModel Model : AllModels)
    for (uint64_t MaxSteps : {0u, 1u, 2u, 3u, 5u, 9u, 17u, 40u}) {
      std::string What = commModelName(Model) + " / cap " +
                         std::to_string(MaxSteps);
      expectEnginesAgree(Net, Model, MaxSteps, What,
                         [&](NetworkSimulator &Sim) {
                           injectMixed(Sim, Net, 30, 99, /*ZeroHop=*/2);
                         });
    }
}

TEST(EventCoreDifferential, CapLandsMidMultiFlitMessage) {
  // An 8-flit message on an otherwise idle network: every cap inside the
  // occupancy window must yield identical BusyLinkSteps accounting (the
  // step engine counts occupancy per step, the event engine in bulk).
  ExplicitScg Net(SuperCayleyGraph::star(4));
  for (CommModel Model : AllModels)
    for (uint64_t MaxSteps = 0; MaxSteps != 12; ++MaxSteps) {
      std::string What = commModelName(Model) + " / flit-cap " +
                         std::to_string(MaxSteps);
      expectEnginesAgree(Net, Model, MaxSteps, What,
                         [&](NetworkSimulator &Sim) {
                           Sim.injectPacket(0, {0, 1}, /*FlitCount=*/8);
                           Sim.injectPacket(1, {1}, /*FlitCount=*/1);
                         });
    }
}

//===----------------------------------------------------------------------===//
// Stalled single-dimension schedules (generator absent from the cycle)
//===----------------------------------------------------------------------===//

TEST(EventCoreDifferential, StalledDimensionCycleGrindsToCap) {
  // Routes over generator 2, but the cycle only ever schedules 0 and 1:
  // the step engine grinds empty steps to MaxSteps; the event engine must
  // report the same capped, incomplete result without executing them.
  ExplicitScg Net(SuperCayleyGraph::star(4));
  auto Fill = [&](NetworkSimulator &Sim) {
    Sim.setDimensionCycle({0, 1});
    Sim.injectPacket(0, {0, 2, 1});
    Sim.injectPacket(2, {2});
  };
  RunOutcome Step = runOne(Net, CommModel::SingleDimension, SimEngine::Step,
                           1, 5000, Fill);
  RunOutcome Event = runOne(Net, CommModel::SingleDimension, SimEngine::Event,
                            1, 5000, Fill);
  EXPECT_FALSE(Step.Result.Completed);
  EXPECT_EQ(Step.Result.Steps, 5000u);
  expectSameResult(Step.Result, Event.Result, "stalled dimension cycle");
  EXPECT_EQ(Step.Stream.DeliverySteps, Event.Stream.DeliverySteps);
  // The event engine does far less work on the stalled tail -- that is the
  // point of the engine; TouchedWork is the one intentional difference.
  EXPECT_LT(Event.Result.TouchedWork, Step.Result.TouchedWork);
}

//===----------------------------------------------------------------------===//
// Shard-count sweep: byte-identity at every shard count
//===----------------------------------------------------------------------===//

TEST(EventCoreDifferential, ShardCountSweepIsByteIdentical) {
  ExplicitScg Net(SuperCayleyGraph::transpositionNetwork(4));
  for (CommModel Model : AllModels) {
    auto Fill = [&](NetworkSimulator &Sim) {
      injectMixed(Sim, Net, 60, 0xABCD, /*ZeroHop=*/1);
    };
    RunOutcome Serial =
        runOne(Net, Model, SimEngine::Event, 1, 6000, Fill);
    for (unsigned Shards : {2u, 3u, 4u, 7u, 16u, 0u /* = thread count */}) {
      RunOutcome Sharded =
          runOne(Net, Model, SimEngine::Event, Shards, 6000, Fill);
      expectSameResult(Serial.Result, Sharded.Result,
                       commModelName(Model) + " / shards " +
                           std::to_string(Shards));
      EXPECT_EQ(Serial.Stream.DeliverySteps, Sharded.Stream.DeliverySteps);
      EXPECT_EQ(Serial.Stream.Started, Sharded.Stream.Started);
      EXPECT_EQ(Serial.Stream.Occupancy, Sharded.Stream.Occupancy);
      EXPECT_TRUE(Sharded.InvariantsClean) << Sharded.InvariantReport;
    }
  }
}

//===----------------------------------------------------------------------===//
// Engine identity through the open-loop driver
//===----------------------------------------------------------------------===//

TEST(EventCoreDifferential, TrafficLoadDriverAgreesAcrossEngines) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  WorkloadSpec Spec;
  Spec.Kind = WorkloadKind::UniformRandom;
  Spec.InjectionRate = 0.08;
  Spec.Seed = 5;
  for (CommModel Model : AllModels) {
    TrafficLoadOptions StepOpts;
    StepOpts.Engine = SimEngine::Step;
    TrafficLoadOptions EventOpts;
    EventOpts.Engine = SimEngine::Event;
    TrafficLoadOptions ShardedOpts;
    ShardedOpts.Engine = SimEngine::Event;
    ShardedOpts.Shards = 4;
    TrafficLoadResult A = simulateTrafficLoad(Net, Model, Spec, 400, StepOpts);
    TrafficLoadResult B =
        simulateTrafficLoad(Net, Model, Spec, 400, EventOpts);
    TrafficLoadResult C =
        simulateTrafficLoad(Net, Model, Spec, 400, ShardedOpts);
    std::string What = "traffic load / " + commModelName(Model);
    expectSameResult(A.Sim, B.Sim, What);
    expectSameResult(A.Sim, C.Sim, What + " sharded");
    EXPECT_EQ(A.Offered, B.Offered) << What;
    EXPECT_EQ(A.MeanLatency, B.MeanLatency) << What;
    EXPECT_EQ(A.P99Latency, B.P99Latency) << What;
    EXPECT_EQ(B.MeanLatency, C.MeanLatency) << What;
  }
}
