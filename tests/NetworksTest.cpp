//===- tests/NetworksTest.cpp - Explicit network materialization ---------===//

#include "networks/Explicit.h"

#include "graph/Metrics.h"
#include "perm/Lehmer.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(ExplicitScg, RankZeroIsIdentity) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  EXPECT_TRUE(Net.label(0).isIdentity());
  EXPECT_EQ(Net.rankOf(Permutation::identity(4)), 0u);
}

TEST(ExplicitScg, NeighborsMatchDescriptor) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  ExplicitScg Net(Ms);
  for (NodeId U = 0; U < Net.numNodes(); U += 7) {
    Permutation Label = Net.label(U);
    for (GenIndex G = 0; G != Net.degree(); ++G)
      EXPECT_EQ(Net.label(Net.next(U, G)), Ms.neighbor(Label, G));
  }
}

TEST(ExplicitScg, GraphViewIsRegularAndConnected) {
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::CompleteRotationStar,
        NetworkKind::MacroIS, NetworkKind::RotationStar}) {
    SuperCayleyGraph Scg = SuperCayleyGraph::create(Kind, 2, 2);
    ExplicitScg Net(Scg);
    Graph G = Net.toGraph();
    EXPECT_TRUE(G.isRegular()) << Scg.name();
    EXPECT_TRUE(isConnectedFromZero(G)) << Scg.name();
  }
}

TEST(ExplicitScg, UndirectedKindsYieldUndirectedGraphs) {
  SuperCayleyGraph Scg = SuperCayleyGraph::create(NetworkKind::MacroIS, 3, 1);
  Graph G = ExplicitScg(Scg).toGraph();
  EXPECT_TRUE(G.isUndirected());
}

TEST(ExplicitScg, DirectedRotatorIsStillStronglyConnected) {
  SuperCayleyGraph Mr =
      SuperCayleyGraph::create(NetworkKind::MacroRotator, 2, 2);
  Graph G = ExplicitScg(Mr).toGraph();
  EXPECT_FALSE(G.isUndirected());
  EXPECT_TRUE(isConnectedFromZero(G));
}

TEST(ExplicitScg, StarDiameterMatchesKnownFormula) {
  // diameter(k-star) = floor(3(k-1)/2) [1].
  for (unsigned K = 3; K <= 7; ++K) {
    ExplicitScg Net(SuperCayleyGraph::star(K));
    DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
    EXPECT_EQ(Stats.Diameter, 3 * (K - 1) / 2) << "k=" << K;
  }
}

TEST(ExplicitScg, BubbleSortDiameterIsKChoose2) {
  for (unsigned K = 3; K <= 6; ++K) {
    ExplicitScg Net(SuperCayleyGraph::bubbleSort(K));
    DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
    EXPECT_EQ(Stats.Diameter, K * (K - 1) / 2) << "k=" << K;
  }
}

TEST(ExplicitScg, TranspositionNetworkDiameterIsKMinus1) {
  // k-TN has diameter k - 1 [12].
  for (unsigned K = 3; K <= 6; ++K) {
    ExplicitScg Net(SuperCayleyGraph::transpositionNetwork(K));
    DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
    EXPECT_EQ(Stats.Diameter, K - 1) << "k=" << K;
  }
}

TEST(ExplicitScg, VertexTransitivitySpotCheck) {
  // Eccentricity equal from several representatives (Cayley graphs are
  // vertex-transitive, Section 2.1).
  SuperCayleyGraph Scg =
      SuperCayleyGraph::create(NetworkKind::CompleteRotationIS, 2, 2);
  Graph G = ExplicitScg(Scg).toGraph();
  DistanceStats FromZero = vertexTransitiveStats(G, 0);
  for (NodeId Rep : {7u, 42u, 99u, 111u}) {
    DistanceStats Stats = vertexTransitiveStats(G, Rep);
    EXPECT_EQ(Stats.Diameter, FromZero.Diameter);
    EXPECT_DOUBLE_EQ(Stats.AverageDistance, FromZero.AverageDistance);
  }
}

TEST(ExplicitScg, AllTenClassesMaterializeAtSevenSymbols) {
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS}) {
    SuperCayleyGraph Scg = SuperCayleyGraph::create(Kind, 3, 2);
    ExplicitScg Net(Scg);
    EXPECT_EQ(Net.numNodes(), factorial(7)) << Scg.name();
    EXPECT_TRUE(isConnectedFromZero(Net.toGraph())) << Scg.name();
  }
}
