//===- tests/PermutationTest.cpp - Permutation algebra tests -------------===//

#include "perm/Permutation.h"

#include "perm/Lehmer.h"
#include "support/Format.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace scg;

TEST(Permutation, IdentityBasics) {
  Permutation Id = Permutation::identity(5);
  EXPECT_EQ(Id.size(), 5u);
  EXPECT_TRUE(Id.isIdentity());
  EXPECT_EQ(Id.numDisplaced(), 0u);
  EXPECT_TRUE(Id.nontrivialCycles().empty());
  EXPECT_EQ(Id.sign(), 1);
  for (unsigned P = 0; P != 5; ++P)
    EXPECT_EQ(Id[P], P);
}

TEST(Permutation, FromOneLine) {
  Permutation P = Permutation::fromOneLine({2, 0, 1});
  EXPECT_EQ(P.size(), 3u);
  EXPECT_EQ(P[0], 2);
  EXPECT_EQ(P[1], 0);
  EXPECT_EQ(P[2], 1);
  EXPECT_FALSE(P.isIdentity());
}

TEST(Permutation, ParseOneBasedRoundTrip) {
  Permutation P = Permutation::parseOneBased("3 1 2");
  EXPECT_EQ(P, Permutation::fromOneLine({2, 0, 1}));
  EXPECT_EQ(P.str(), "3 1 2");
}

TEST(Permutation, ParseRejectsMalformed) {
  EXPECT_EQ(Permutation::parseOneBased("1 1 2").size(), 0u);
  EXPECT_EQ(Permutation::parseOneBased("0 1 2").size(), 0u);
  EXPECT_EQ(Permutation::parseOneBased("1 2 5").size(), 0u);
}

TEST(Permutation, ComposeDefinition) {
  // (P o Q)[i] = P[Q[i]].
  Permutation P = Permutation::fromOneLine({1, 2, 0});
  Permutation Q = Permutation::fromOneLine({2, 1, 0});
  Permutation R = P.compose(Q);
  for (unsigned I = 0; I != 3; ++I)
    EXPECT_EQ(R[I], P[Q[I]]);
}

TEST(Permutation, ComposeIdentityIsNeutral) {
  Permutation P = Permutation::fromOneLine({3, 1, 0, 2});
  Permutation Id = Permutation::identity(4);
  EXPECT_EQ(P.compose(Id), P);
  EXPECT_EQ(Id.compose(P), P);
}

TEST(Permutation, InverseComposesToIdentity) {
  Permutation P = Permutation::fromOneLine({3, 0, 2, 1});
  EXPECT_TRUE(P.compose(P.inverse()).isIdentity());
  EXPECT_TRUE(P.inverse().compose(P).isIdentity());
}

TEST(Permutation, PositionOf) {
  Permutation P = Permutation::fromOneLine({3, 0, 2, 1});
  for (unsigned S = 0; S != 4; ++S)
    EXPECT_EQ(P[P.positionOf(S)], S);
}

TEST(Permutation, CyclesOfThreeCycle) {
  Permutation P = Permutation::fromOneLine({1, 2, 0, 3});
  auto Cycles = P.nontrivialCycles();
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0], (std::vector<uint8_t>{0, 1, 2}));
  EXPECT_EQ(P.numDisplaced(), 3u);
}

TEST(Permutation, CyclesOfTwoTranspositions) {
  Permutation P = Permutation::fromOneLine({1, 0, 3, 2});
  auto Cycles = P.nontrivialCycles();
  ASSERT_EQ(Cycles.size(), 2u);
  EXPECT_EQ(P.sign(), 1); // even: product of two transpositions.
}

TEST(Permutation, SignOfTransposition) {
  Permutation P = Permutation::fromOneLine({1, 0, 2});
  EXPECT_EQ(P.sign(), -1);
}

TEST(Permutation, StrBoxesLayout) {
  // k = 5 = 2*2 + 1: outside ball then two boxes of two.
  Permutation P = Permutation::fromOneLine({0, 2, 1, 4, 3});
  EXPECT_EQ(P.strBoxes(2), "1 | 3 2 | 5 4");
}

TEST(Permutation, HashSpreadsAllOfS5) {
  std::unordered_set<size_t> Hashes;
  PermutationHash Hash;
  for (uint64_t R = 0; R != factorial(5); ++R)
    Hashes.insert(Hash(unrankPermutation(R, 5)));
  // All 120 permutations hash distinctly (FNV over 5 bytes).
  EXPECT_EQ(Hashes.size(), factorial(5));
}

TEST(Permutation, LexicographicOrder) {
  EXPECT_LT(Permutation::fromOneLine({0, 1, 2}),
            Permutation::fromOneLine({0, 2, 1}));
}

// Property: composition is associative and inverse anti-distributes,
// checked over pseudo-random triples.
TEST(Permutation, PropertyAssociativityAndInverse) {
  SplitMix64 Rng(42);
  for (int Trial = 0; Trial != 200; ++Trial) {
    unsigned K = 2 + Rng.nextBelow(8);
    Permutation A = unrankPermutation(Rng.nextBelow(factorial(K)), K);
    Permutation B = unrankPermutation(Rng.nextBelow(factorial(K)), K);
    Permutation C = unrankPermutation(Rng.nextBelow(factorial(K)), K);
    EXPECT_EQ(A.compose(B).compose(C), A.compose(B.compose(C)));
    EXPECT_EQ(A.compose(B).inverse(), B.inverse().compose(A.inverse()));
    EXPECT_EQ(A.sign() * B.sign(), A.compose(B).sign());
  }
}

TEST(Permutation, PropertyCyclesPartitionDisplaced) {
  SplitMix64 Rng(7);
  for (int Trial = 0; Trial != 100; ++Trial) {
    unsigned K = 2 + Rng.nextBelow(7);
    Permutation P = unrankPermutation(Rng.nextBelow(factorial(K)), K);
    unsigned Sum = 0;
    for (const auto &Cycle : P.nontrivialCycles()) {
      EXPECT_GE(Cycle.size(), 2u);
      Sum += Cycle.size();
    }
    EXPECT_EQ(Sum, P.numDisplaced());
  }
}
