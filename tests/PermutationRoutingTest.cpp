//===- tests/PermutationRoutingTest.cpp - Permutation traffic tests ------===//

#include "comm/PermutationRouting.h"

#include <gtest/gtest.h>

#include <set>

using namespace scg;

TEST(PermutationRouting, PatternsArePermutations) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  for (const TrafficPattern &P :
       {randomTraffic(Net, 7), reversalTraffic(Net),
        translationTraffic(Net, 0)}) {
    std::set<NodeId> Seen(P.begin(), P.end());
    EXPECT_EQ(Seen.size(), Net.numNodes());
  }
}

TEST(PermutationRouting, RandomTrafficIsSeedDeterministic) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  EXPECT_EQ(randomTraffic(Net, 3), randomTraffic(Net, 3));
  EXPECT_NE(randomTraffic(Net, 3), randomTraffic(Net, 4));
}

TEST(PermutationRouting, CompletesWithinConstantOfLoad) {
  for (auto Scg : {SuperCayleyGraph::star(5),
                   SuperCayleyGraph::insertionSelection(5),
                   SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2)}) {
    ExplicitScg Net(Scg);
    PermutationRoutingResult R =
        simulatePermutationRouting(Net, randomTraffic(Net, 11));
    EXPECT_GE(R.Steps, R.LowerBound) << Scg.name();
    EXPECT_LE(R.Ratio, 4.0) << Scg.name();
  }
}

TEST(PermutationRouting, TranslationTrafficIsPerfectlyUniform) {
  // u -> u o g: every node's route is the same relative word, so the
  // packets advance in lockstep with no queueing and completion equals
  // the route length exactly -- the "traffic is uniform" property of
  // Cayley routing the paper's conclusion highlights.
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  for (GenIndex G = 0; G != Net.degree(); ++G) {
    PermutationRoutingResult R =
        simulatePermutationRouting(Net, translationTraffic(Net, G));
    EXPECT_EQ(R.Steps, uint64_t(R.AverageRouteLength + 0.5)) << "gen " << G;
    EXPECT_DOUBLE_EQ(R.Ratio, 1.0) << "gen " << G;
    EXPECT_LE(R.MaxLinkLoad, R.Steps) << "gen " << G;
  }
}

TEST(PermutationRouting, ReversalCompletes) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2));
  PermutationRoutingResult R =
      simulatePermutationRouting(Net, reversalTraffic(Net));
  EXPECT_GE(R.Steps, R.LowerBound);
  EXPECT_LE(R.Ratio, 4.0);
}

TEST(PermutationRouting, SinglePortIsSlower) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  TrafficPattern P = randomTraffic(Net, 5);
  uint64_t AllPort = simulatePermutationRouting(Net, P).Steps;
  uint64_t OnePort =
      simulatePermutationRouting(Net, P, CommModel::SinglePort).Steps;
  EXPECT_LE(AllPort, OnePort);
}
