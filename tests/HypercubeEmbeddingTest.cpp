//===- tests/HypercubeEmbeddingTest.cpp - Corollary 5 tests --------------===//

#include "embedding/HypercubeEmbedding.h"

#include "networks/Classic.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(HypercubeEmbedding, DimensionBudget) {
  EXPECT_EQ(hypercubeDimensionFor(5), 2u);
  EXPECT_EQ(hypercubeDimensionFor(7), 3u);
  EXPECT_EQ(hypercubeDimensionFor(8), 3u);
  EXPECT_EQ(hypercubeDimensionFor(9), 4u);
}

TEST(HypercubeEmbedding, DilationThreeLoadOne) {
  for (unsigned K = 5; K <= 8; ++K) {
    SuperCayleyGraph Star = SuperCayleyGraph::star(K);
    Graph Guest = hypercube(hypercubeDimensionFor(K));
    Embedding E = embedHypercubeIntoStar(Star);
    EmbeddingMetrics M = measureEmbedding(Guest, E);
    EXPECT_TRUE(M.Valid) << "k=" << K;
    EXPECT_EQ(M.Load, 1u) << "k=" << K;
    EXPECT_EQ(M.Dilation, 3u) << "k=" << K;
  }
}

TEST(HypercubeEmbedding, NodeImagesCommute) {
  // The bit transpositions are disjoint, so toggling bits in any order
  // lands on the same label: neighbors along different axes from the same
  // node agree on shared bits.
  SuperCayleyGraph Star = SuperCayleyGraph::star(7);
  Embedding E = embedHypercubeIntoStar(Star);
  // Node 5 = bits {0, 2}; applying bit 0 then 2 equals 2 then 0.
  EXPECT_EQ(E.NodeMap[5], E.NodeMap[1].compose(
      E.NodeMap[4].compose(E.NodeMap[0].inverse())));
}

TEST(HypercubeEmbedding, EvenPermutationsOnly) {
  // Every image is a product of disjoint transpositions; parity matches
  // the popcount of the node id.
  SuperCayleyGraph Star = SuperCayleyGraph::star(7);
  Embedding E = embedHypercubeIntoStar(Star);
  for (NodeId B = 0; B != E.NodeMap.size(); ++B) {
    int Expected = (__builtin_popcount(B) % 2 == 0) ? 1 : -1;
    EXPECT_EQ(E.NodeMap[B].sign(), Expected);
  }
}
