//===- tests/CorollariesTest.cpp - Corollaries 4-7 composition tests -----===//
//
// The corollaries compose a guest -> star (or guest -> TN) embedding with
// the star/TN -> super-Cayley-graph templates of Theorems 1-3 and 6-7.
// Each test builds the composition and checks the claimed dilation.
//
//===----------------------------------------------------------------------===//

#include "embedding/HypercubeEmbedding.h"
#include "embedding/MeshEmbeddings.h"
#include "embedding/PathTemplates.h"
#include "embedding/TreeEmbedding.h"

#include "networks/Classic.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(Corollary4, TreeIntoIsMsAndMis) {
  // Base: dilation-1 tree -> 5-star; composed dilations 2 / 3 / 4.
  SuperCayleyGraph Star = SuperCayleyGraph::star(5);
  ExplicitScg StarX(Star);
  TreeEmbeddingResult Base = embedTreeIntoStar(StarX, /*Height=*/3, 1);
  ASSERT_TRUE(Base.Found);
  Graph Guest = completeBinaryTree(3);

  struct Case {
    SuperCayleyGraph Host;
    unsigned Dilation;
  };
  std::vector<Case> Cases;
  Cases.push_back({SuperCayleyGraph::insertionSelection(5), 2});
  Cases.push_back({SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2), 3});
  Cases.push_back({SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2), 4});
  Cases.push_back(
      {SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 2, 2), 3});
  Cases.push_back(
      {SuperCayleyGraph::create(NetworkKind::CompleteRotationIS, 2, 2), 4});

  for (const Case &C : Cases) {
    PathTemplateMap Map = PathTemplateMap::create(Star, C.Host);
    Embedding Composed = composeEmbedding(Base.E, Map);
    EmbeddingMetrics M = measureEmbedding(Guest, Composed);
    EXPECT_TRUE(M.Valid) << C.Host.name();
    EXPECT_EQ(M.Load, 1u) << C.Host.name();
    EXPECT_LE(M.Dilation, C.Dilation) << C.Host.name();
  }
}

TEST(Corollary5, HypercubeIntoSuperCayleyGraphs) {
  // Base: dilation-3 hypercube -> 7-star; composed dilation <= 3 * bound.
  SuperCayleyGraph Star = SuperCayleyGraph::star(7);
  Embedding Base = embedHypercubeIntoStar(Star);
  Graph Guest = hypercube(hypercubeDimensionFor(7));

  for (NetworkKind Kind : {NetworkKind::MacroStar,
                           NetworkKind::CompleteRotationStar,
                           NetworkKind::MacroIS}) {
    SuperCayleyGraph Host = SuperCayleyGraph::create(Kind, 3, 2);
    PathTemplateMap Map = PathTemplateMap::create(Star, Host);
    Embedding Composed = composeEmbedding(Base, Map);
    EmbeddingMetrics M = measureEmbedding(Guest, Composed);
    EXPECT_TRUE(M.Valid) << Host.name();
    EXPECT_EQ(M.Load, 1u) << Host.name();
    EXPECT_LE(M.Dilation, 3 * Map.maxTemplateLength()) << Host.name();
  }
}

TEST(Corollary5, HypercubeIntoIs) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(7);
  SuperCayleyGraph Is = SuperCayleyGraph::insertionSelection(7);
  Embedding Base = embedHypercubeIntoStar(Star);
  PathTemplateMap Map = PathTemplateMap::create(Star, Is);
  EmbeddingMetrics M = measureEmbedding(hypercube(3),
                                        composeEmbedding(Base, Map));
  EXPECT_TRUE(M.Valid);
  EXPECT_LE(M.Dilation, 6u); // 3 star hops, each at most 2 IS hops.
}

TEST(Corollary6, SjtMeshIntoMacroStar2n) {
  // m1 x m2 mesh -> MS(2,n) with load 1, expansion 1, dilation 5:
  // dilation-1 mesh -> TN composed with the Theorem 6 dilation-5 templates.
  SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(5);
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  SjtMeshShape Shape = sjtMeshShape(5);
  Graph Guest = mesh2D(Shape.Rows, Shape.Cols);

  Embedding Base = embedSjtMeshIntoTn(Tn);
  PathTemplateMap Map = PathTemplateMap::create(Tn, Ms);
  EmbeddingMetrics M = measureEmbedding(Guest, composeEmbedding(Base, Map));
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Load, 1u);
  EXPECT_DOUBLE_EQ(M.Expansion, 1.0);
  EXPECT_LE(M.Dilation, 5u);
}

TEST(Corollary6, SjtMeshIntoMisAndCompleteRs) {
  SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(5);
  SjtMeshShape Shape = sjtMeshShape(5);
  Graph Guest = mesh2D(Shape.Rows, Shape.Cols);
  Embedding Base = embedSjtMeshIntoTn(Tn);

  for (NetworkKind Kind :
       {NetworkKind::MacroIS, NetworkKind::CompleteRotationStar}) {
    SuperCayleyGraph Host = SuperCayleyGraph::create(Kind, 2, 2);
    PathTemplateMap Map = PathTemplateMap::create(Tn, Host);
    EmbeddingMetrics M =
        measureEmbedding(Guest, composeEmbedding(Base, Map));
    EXPECT_TRUE(M.Valid) << Host.name();
    EXPECT_EQ(M.Load, 1u) << Host.name();
    EXPECT_LE(M.Dilation, Map.maxTemplateLength()) << Host.name();
  }
}

TEST(Corollary7, LehmerMeshIntoSuperCayleyGraphs) {
  // 2x3x...xk mesh -> star (dilation 3), composed into IS / MS / MIS.
  SuperCayleyGraph Star = SuperCayleyGraph::star(5);
  Graph Guest = mixedRadixMesh(lehmerMeshDims(5));
  Embedding Base = embedLehmerMeshIntoStar(Star);

  struct Case {
    SuperCayleyGraph Host;
    unsigned DilationCap;
  };
  std::vector<Case> Cases;
  Cases.push_back({SuperCayleyGraph::insertionSelection(5), 6});
  Cases.push_back({SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2), 9});
  Cases.push_back({SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2), 12});

  for (const Case &C : Cases) {
    PathTemplateMap Map = PathTemplateMap::create(Star, C.Host);
    EmbeddingMetrics M =
        measureEmbedding(Guest, composeEmbedding(Base, Map));
    EXPECT_TRUE(M.Valid) << C.Host.name();
    EXPECT_EQ(M.Load, 1u) << C.Host.name();
    EXPECT_DOUBLE_EQ(M.Expansion, 1.0) << C.Host.name();
    EXPECT_LE(M.Dilation, C.DilationCap) << C.Host.name();
  }
}
