//===- tests/SdcEmulationTest.cpp - Theorems 1-3 tests -------------------===//

#include "emulation/SdcEmulation.h"

#include "emulation/DimensionMap.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

/// Every dimension path must realize T_j exactly.
void checkPathsRealizeDimensions(const SuperCayleyGraph &Net) {
  for (unsigned J = 2; J <= Net.numSymbols(); ++J) {
    GeneratorPath Path = starDimensionPath(Net, J);
    EXPECT_EQ(Path.netEffect(Net),
              makeTransposition(Net.numSymbols(), J).Sigma)
        << Net.name() << " dim " << J;
  }
}

} // namespace

TEST(DimensionMap, DecomposeCompose) {
  for (unsigned N = 1; N <= 4; ++N)
    for (unsigned J = 2; J <= 4 * N + 1; ++J) {
      DimensionParts P = decomposeDimension(J, N);
      EXPECT_LT(P.J0, N);
      EXPECT_EQ(composeDimension(P, N), J);
    }
}

TEST(DimensionMap, PaperExample) {
  // Figure 1 caption: n = 3, j0 = (j-2) mod 3, j1 = floor((j-2)/3).
  DimensionParts P = decomposeDimension(7, 3);
  EXPECT_EQ(P.J0, 2u);
  EXPECT_EQ(P.J1, 1u);
}

TEST(SdcEmulation, Theorem1MacroStarSlowdownIs3) {
  for (auto [L, N] : {std::pair{2u, 2u}, {2u, 3u}, {3u, 2u}, {4u, 3u},
                      {5u, 3u}, {3u, 4u}, {6u, 2u}}) {
    SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, L, N);
    checkPathsRealizeDimensions(Ms);
    SdcEmulationReport Report = analyzeSdcEmulation(Ms);
    EXPECT_EQ(Report.Slowdown, 3u) << Ms.name();
    EXPECT_EQ(Report.Slowdown, paperSdcSlowdownBound(Ms));
    EXPECT_EQ(Report.DirectDimensions, N) << Ms.name();
  }
}

TEST(SdcEmulation, Theorem1CompleteRotationStarSlowdownIs3) {
  for (auto [L, N] : {std::pair{2u, 2u}, {3u, 2u}, {4u, 3u}, {5u, 3u}}) {
    SuperCayleyGraph Net =
        SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, L, N);
    checkPathsRealizeDimensions(Net);
    EXPECT_EQ(analyzeSdcEmulation(Net).Slowdown, 3u) << Net.name();
  }
}

TEST(SdcEmulation, Theorem2InsertionSelectionSlowdownIs2) {
  for (unsigned K = 3; K <= 9; ++K) {
    SuperCayleyGraph Is = SuperCayleyGraph::insertionSelection(K);
    checkPathsRealizeDimensions(Is);
    SdcEmulationReport Report = analyzeSdcEmulation(Is);
    EXPECT_EQ(Report.Slowdown, 2u) << Is.name();
    EXPECT_EQ(Report.DirectDimensions, 1u); // only T_2 = I_2.
  }
}

TEST(SdcEmulation, Theorem3MisSlowdownIs4) {
  for (auto [L, N] : {std::pair{2u, 2u}, {3u, 2u}, {4u, 3u}, {2u, 4u}}) {
    for (NetworkKind Kind :
         {NetworkKind::MacroIS, NetworkKind::CompleteRotationIS}) {
      SuperCayleyGraph Net = SuperCayleyGraph::create(Kind, L, N);
      checkPathsRealizeDimensions(Net);
      EXPECT_EQ(analyzeSdcEmulation(Net).Slowdown, 4u) << Net.name();
      EXPECT_EQ(paperSdcSlowdownBound(Net), 4u);
    }
  }
}

TEST(SdcEmulation, StarEmulatesItselfDirectly) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(6);
  checkPathsRealizeDimensions(Star);
  EXPECT_EQ(analyzeSdcEmulation(Star).Slowdown, 1u);
}

TEST(SdcEmulation, TranspositionNetworkIsDirect) {
  SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(6);
  checkPathsRealizeDimensions(Tn);
  EXPECT_EQ(analyzeSdcEmulation(Tn).Slowdown, 1u);
}

TEST(SdcEmulation, RotationStarPathsGrowWithL) {
  // Non-complete RS expands R^{j1} into single rotations; the paper claims
  // no constant bound and indeed the farthest box costs floor(l/2) hops
  // each way.
  SuperCayleyGraph Rs = SuperCayleyGraph::create(NetworkKind::RotationStar, 6, 2);
  checkPathsRealizeDimensions(Rs);
  EXPECT_EQ(analyzeSdcEmulation(Rs).Slowdown, 1u + 2 * 3) << Rs.name();
}

TEST(SdcEmulation, RotationIsPathsUseSingleRotations) {
  SuperCayleyGraph Ris = SuperCayleyGraph::create(NetworkKind::RotationIS, 5, 2);
  checkPathsRealizeDimensions(Ris);
  // Farthest box: 2 hops there + 2 back, plus a 2-hop nucleus.
  EXPECT_EQ(analyzeSdcEmulation(Ris).Slowdown, 2u + 2 + 2);
}

TEST(SdcEmulation, Theorem1ExplicitPathShape) {
  // The Theorem 1 path for j with j1 != 0 is S_{j1+1} T_{j0+2} S_{j1+1}.
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 4, 3);
  GeneratorPath Path = starDimensionPath(Ms, 7); // j0 = 2, j1 = 1.
  EXPECT_EQ(Path.str(Ms), "S2 T4 S2");
  GeneratorPath Direct = starDimensionPath(Ms, 4); // j1 = 0.
  EXPECT_EQ(Direct.str(Ms), "T4");
}

TEST(SdcEmulation, Theorem1CompleteRsPathShape) {
  // complete-RS uses R^{-j1} T_{j0+2} R^{j1}; with l = 4, R^-1 = R^3.
  SuperCayleyGraph Net =
      SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 4, 3);
  GeneratorPath Path = starDimensionPath(Net, 7); // j0 = 2, j1 = 1.
  EXPECT_EQ(Path.str(Net), "R^3 T4 R");
  // For j1 = 2, R^-2 = R^2 is an involution: the same link both ways.
  GeneratorPath Mid = starDimensionPath(Net, 10); // j0 = 2, j1 = 2.
  EXPECT_EQ(Mid.str(Net), "R^2 T4 R^2");
}

TEST(SdcEmulation, Theorem5NucleusSubstitution) {
  // MIS replaces T_{j0+2} with I_{j0+2} I_{j0+1}^-1.
  SuperCayleyGraph Mis = SuperCayleyGraph::create(NetworkKind::MacroIS, 3, 3);
  GeneratorPath Path = starDimensionPath(Mis, 7); // j0 = 2 -> I4 I3'.
  EXPECT_EQ(Path.str(Mis), "S2 I4 I3' S2");
  GeneratorPath Short = starDimensionPath(Mis, 5); // j0 = 0 -> I2 alone.
  EXPECT_EQ(Short.str(Mis), "S2 I2 S2");
}

TEST(SdcEmulation, SupportsStarEmulationClassification) {
  EXPECT_TRUE(supportsStarEmulation(SuperCayleyGraph::star(4)));
  EXPECT_TRUE(supportsStarEmulation(SuperCayleyGraph::insertionSelection(4)));
  EXPECT_FALSE(supportsStarEmulation(
      SuperCayleyGraph::create(NetworkKind::MacroRotator, 2, 2)));
  EXPECT_FALSE(supportsStarEmulation(SuperCayleyGraph::bubbleSort(4)));
}
