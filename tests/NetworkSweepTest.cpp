//===- tests/NetworkSweepTest.cpp - Parameterized class invariants -------===//
//
// Property-style sweep across every super Cayley graph class and a grid of
// (l, n) parameters: degree formulas, symmetry, generator-set structure,
// group generation (strong connectivity), and ball-arrangement-game
// consistency.
//
//===----------------------------------------------------------------------===//

#include "core/BallArrangementGame.h"
#include "perm/GroupOrder.h"
#include "perm/Lehmer.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

struct SweepParams {
  NetworkKind Kind;
  unsigned L, N;
};

std::string sweepName(const testing::TestParamInfo<SweepParams> &Info) {
  std::string Name = networkKindName(Info.param.Kind) + "_" +
                     std::to_string(Info.param.L) + "_" +
                     std::to_string(Info.param.N);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

/// The paper's degree formula per class ("the number of generators in its
/// definition").
unsigned expectedDegree(NetworkKind Kind, unsigned L, unsigned N) {
  switch (Kind) {
  case NetworkKind::MacroStar:
  case NetworkKind::MacroRotator:
    return N + (L - 1);
  case NetworkKind::RotationStar:
  case NetworkKind::RotationRotator:
    return N + (L == 2 ? 1 : 2);
  case NetworkKind::CompleteRotationStar:
  case NetworkKind::CompleteRotationRotator:
    return N + (L - 1);
  case NetworkKind::MacroIS:
    return 2 * N + (L - 1);
  case NetworkKind::RotationIS:
    return 2 * N + (L == 2 ? 1 : 2);
  case NetworkKind::CompleteRotationIS:
    return 2 * N + (L - 1);
  default:
    return 0;
  }
}

} // namespace

class NetworkSweep : public testing::TestWithParam<SweepParams> {
protected:
  SuperCayleyGraph net() const {
    return SuperCayleyGraph::create(GetParam().Kind, GetParam().L,
                                    GetParam().N);
  }
};

TEST_P(NetworkSweep, DegreeMatchesFormula) {
  SuperCayleyGraph Net = net();
  EXPECT_EQ(Net.degree(),
            expectedDegree(GetParam().Kind, GetParam().L, GetParam().N))
      << Net.name();
}

TEST_P(NetworkSweep, SymmetryMatchesDirectedness) {
  SuperCayleyGraph Net = net();
  EXPECT_EQ(Net.generators().isSymmetric(), Net.isUndirected()) << Net.name();
}

TEST_P(NetworkSweep, GeneratorsActOnKSymbols) {
  SuperCayleyGraph Net = net();
  EXPECT_EQ(Net.generators().numSymbols(), Net.numSymbols());
  EXPECT_EQ(Net.numSymbols(), GetParam().L * GetParam().N + 1);
  for (const Generator &G : Net.generators())
    EXPECT_FALSE(G.Sigma.isIdentity()) << Net.name() << " " << G.Name;
}

TEST_P(NetworkSweep, NucleusGeneratorsTouchOnlyTheFirstBox) {
  SuperCayleyGraph Net = net();
  unsigned N = Net.ballsPerBox();
  for (const Generator &G : Net.generators()) {
    if (G.Kind != GeneratorKind::Nucleus)
      continue;
    // A nucleus generator permutes only positions 1..n+1 (0-based 0..n).
    for (unsigned P = N + 1; P != Net.numSymbols(); ++P)
      EXPECT_EQ(G.Sigma[P], P) << Net.name() << " " << G.Name;
  }
}

TEST_P(NetworkSweep, SuperGeneratorsFixTheOutsideBall) {
  SuperCayleyGraph Net = net();
  for (const Generator &G : Net.generators()) {
    if (G.Kind != GeneratorKind::Super)
      continue;
    EXPECT_EQ(G.Sigma[0], 0u) << Net.name() << " " << G.Name;
  }
}

TEST_P(NetworkSweep, GeneratesTheFullSymmetricGroup) {
  SuperCayleyGraph Net = net();
  std::vector<Permutation> Actions;
  for (const Generator &G : Net.generators())
    Actions.push_back(G.Sigma);
  EXPECT_TRUE(generatesSymmetricGroup(Actions)) << Net.name();
}

TEST_P(NetworkSweep, GamePlayIsReversibleWhenUndirected) {
  SuperCayleyGraph Net = net();
  if (!Net.isUndirected())
    return;
  SplitMix64 Rng(GetParam().L * 31 + GetParam().N);
  BallArrangementGame Game(Net, Permutation::identity(Net.numSymbols()));
  for (int Move = 0; Move != 12; ++Move)
    Game.play(Rng.nextBelow(Net.degree()));
  for (int Move = 0; Move != 12; ++Move)
    EXPECT_TRUE(Game.undo());
  EXPECT_TRUE(Game.isSolved());
}

namespace {

std::vector<SweepParams> sweepGrid() {
  std::vector<SweepParams> Grid;
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS})
    for (unsigned L : {2u, 3u, 4u})
      for (unsigned N : {1u, 2u, 3u})
        Grid.push_back({Kind, L, N});
  return Grid;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllClasses, NetworkSweep,
                         testing::ValuesIn(sweepGrid()), sweepName);
