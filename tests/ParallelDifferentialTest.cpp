//===- tests/ParallelDifferentialTest.cpp - parallel == serial -----------===//
//
// Differential tests pinning the determinism contract of the parallel
// execution engine: for every network family at small k, allPairsStats,
// the single-fault sweeps, and batch permutation routing must produce
// results identical to the serial reference under 1, 2, and 8 threads and
// under SCG_THREADS=1 forced-serial mode. Doubles are compared bitwise:
// "identical" means byte-identical, not approximately equal.
//
//===----------------------------------------------------------------------===//

#include "comm/PermutationRouting.h"
#include "graph/Faults.h"
#include "graph/Metrics.h"
#include "networks/Classic.h"
#include "networks/Explicit.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

using namespace scg;

namespace {

/// Thread counts every differential case is replayed under; the first entry
/// is the serial reference.
constexpr unsigned ThreadCounts[] = {1, 2, 8};

/// Runs \p Fn with the global pool pinned to \p Threads, restoring
/// automatic sizing afterwards.
template <typename Fn> auto withThreads(unsigned Threads, Fn &&F) {
  setGlobalThreadCount(Threads);
  auto Result = F();
  setGlobalThreadCount(0);
  return Result;
}

/// Runs \p Fn under SCG_THREADS=1 (env-var forced serial, no override).
template <typename Fn> auto withForcedSerialEnv(Fn &&F) {
  const char *Old = std::getenv("SCG_THREADS");
  std::string Saved = Old ? Old : "";
  bool HadOld = Old != nullptr;
  setenv("SCG_THREADS", "1", 1);
  setGlobalThreadCount(0);
  auto Result = F();
  if (HadOld)
    setenv("SCG_THREADS", Saved.c_str(), 1);
  else
    unsetenv("SCG_THREADS");
  return Result;
}

bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

void expectSame(const DistanceStats &Ref, const DistanceStats &Got,
                const std::string &Context) {
  EXPECT_EQ(Ref.Connected, Got.Connected) << Context;
  EXPECT_EQ(Ref.Diameter, Got.Diameter) << Context;
  EXPECT_TRUE(bitEqual(Ref.AverageDistance, Got.AverageDistance)) << Context;
}

void expectSame(const SingleFaultSweep &Ref, const SingleFaultSweep &Got,
                const std::string &Context) {
  EXPECT_EQ(Ref.AlwaysConnected, Got.AlwaysConnected) << Context;
  EXPECT_EQ(Ref.WorstDiameter, Got.WorstDiameter) << Context;
  EXPECT_EQ(Ref.FaultFreeDiameter, Got.FaultFreeDiameter) << Context;
  EXPECT_EQ(Ref.ScenariosTried, Got.ScenariosTried) << Context;
}

void expectSame(const PermutationRoutingResult &Ref,
                const PermutationRoutingResult &Got,
                const std::string &Context) {
  EXPECT_EQ(Ref.Steps, Got.Steps) << Context;
  EXPECT_EQ(Ref.LowerBound, Got.LowerBound) << Context;
  EXPECT_TRUE(bitEqual(Ref.Ratio, Got.Ratio)) << Context;
  EXPECT_TRUE(bitEqual(Ref.AverageRouteLength, Got.AverageRouteLength))
      << Context;
  EXPECT_EQ(Ref.MaxLinkLoad, Got.MaxLinkLoad) << Context;
}

/// The exhaustive-small fixture set: every family at k = 5 (and the (4,1)
/// degenerate box shape), as in ExhaustiveSmallTest.
std::vector<SuperCayleyGraph> familiesAtFive() {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(5));
  Nets.push_back(SuperCayleyGraph::bubbleSort(5));
  Nets.push_back(SuperCayleyGraph::transpositionNetwork(5));
  Nets.push_back(SuperCayleyGraph::insertionSelection(5));
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS}) {
    Nets.push_back(SuperCayleyGraph::create(Kind, 2, 2));
    Nets.push_back(SuperCayleyGraph::create(Kind, 4, 1));
  }
  return Nets;
}

/// Smaller emulation-capable subset for the (more expensive) routing cases.
std::vector<SuperCayleyGraph> routableHosts() {
  return {SuperCayleyGraph::star(5),
          SuperCayleyGraph::transpositionNetwork(5),
          SuperCayleyGraph::insertionSelection(5),
          SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2),
          SuperCayleyGraph::create(NetworkKind::RotationIS, 2, 2)};
}

} // namespace

TEST(ParallelDifferential, AllPairsStatsIdenticalAcrossThreadCounts) {
  for (const SuperCayleyGraph &Scg : familiesAtFive()) {
    Graph G = ExplicitScg(Scg).toGraph();
    DistanceStats Ref = withThreads(1, [&] { return allPairsStats(G); });
    EXPECT_TRUE(Ref.Connected) << Scg.name();
    for (unsigned Threads : ThreadCounts)
      expectSame(Ref, withThreads(Threads, [&] { return allPairsStats(G); }),
                 Scg.name() + " @" + std::to_string(Threads) + "T");
    expectSame(Ref, withForcedSerialEnv([&] { return allPairsStats(G); }),
               Scg.name() + " @SCG_THREADS=1");
  }
}

TEST(ParallelDifferential, AllPairsStatsIdenticalOnDisconnectedGraph) {
  Graph G(8); // two separate squares.
  for (NodeId I = 0; I != 4; ++I) {
    G.addUndirectedEdge(I, (I + 1) % 4);
    G.addUndirectedEdge(4 + I, 4 + (I + 1) % 4);
  }
  DistanceStats Ref = withThreads(1, [&] { return allPairsStats(G); });
  EXPECT_FALSE(Ref.Connected);
  for (unsigned Threads : ThreadCounts)
    expectSame(Ref, withThreads(Threads, [&] { return allPairsStats(G); }),
               "disconnected @" + std::to_string(Threads) + "T");
}

TEST(ParallelDifferential, LinkFaultSweepIdenticalAcrossThreadCounts) {
  for (const SuperCayleyGraph &Scg : familiesAtFive()) {
    if (!Scg.isUndirected())
      continue; // link sweep is defined for undirected hosts.
    Graph G = ExplicitScg(Scg).toGraph();
    // Stride keeps every family fast while still covering dozens of
    // scenarios; determinism must hold for any stride.
    unsigned Stride = 3;
    SingleFaultSweep Ref =
        withThreads(1, [&] { return sweepSingleLinkFaults(G, Stride); });
    for (unsigned Threads : ThreadCounts)
      expectSame(
          Ref,
          withThreads(Threads,
                      [&] { return sweepSingleLinkFaults(G, Stride); }),
          Scg.name() + " links @" + std::to_string(Threads) + "T");
    expectSame(Ref,
               withForcedSerialEnv(
                   [&] { return sweepSingleLinkFaults(G, Stride); }),
               Scg.name() + " links @SCG_THREADS=1");
  }
}

TEST(ParallelDifferential, NodeFaultSweepIdenticalAcrossThreadCounts) {
  for (const SuperCayleyGraph &Scg : familiesAtFive()) {
    Graph G = ExplicitScg(Scg).toGraph();
    unsigned Stride = 7;
    SingleFaultSweep Ref =
        withThreads(1, [&] { return sweepSingleNodeFaults(G, Stride); });
    for (unsigned Threads : ThreadCounts)
      expectSame(
          Ref,
          withThreads(Threads,
                      [&] { return sweepSingleNodeFaults(G, Stride); }),
          Scg.name() + " nodes @" + std::to_string(Threads) + "T");
  }
}

TEST(ParallelDifferential, FaultSweepOnClassicGuestsIdentical) {
  for (auto [Name, G] :
       {std::pair<std::string, Graph>{"hypercube(4)", hypercube(4)},
        {"mesh2D(4,5)", mesh2D(4, 5)},
        {"bintree(4)", completeBinaryTree(4)}}) {
    SingleFaultSweep RefLinks =
        withThreads(1, [&] { return sweepSingleLinkFaults(G); });
    SingleFaultSweep RefNodes =
        withThreads(1, [&] { return sweepSingleNodeFaults(G); });
    for (unsigned Threads : ThreadCounts) {
      expectSame(RefLinks,
                 withThreads(Threads, [&] { return sweepSingleLinkFaults(G); }),
                 Name + " links @" + std::to_string(Threads) + "T");
      expectSame(RefNodes,
                 withThreads(Threads, [&] { return sweepSingleNodeFaults(G); }),
                 Name + " nodes @" + std::to_string(Threads) + "T");
    }
  }
}

TEST(ParallelDifferential, BatchRoutingIdenticalAcrossThreadCounts) {
  for (const SuperCayleyGraph &Scg : routableHosts()) {
    ExplicitScg Net(Scg);
    std::vector<TrafficPattern> Patterns = {
        randomTraffic(Net, 1), randomTraffic(Net, 2), randomTraffic(Net, 3),
        reversalTraffic(Net), translationTraffic(Net, 0)};

    // Serial reference: the batch at one thread must equal one-at-a-time
    // calls exactly.
    std::vector<PermutationRoutingResult> Ref = withThreads(1, [&] {
      return simulatePermutationRoutingBatch(Net, Patterns);
    });
    ASSERT_EQ(Ref.size(), Patterns.size());
    for (size_t I = 0; I != Patterns.size(); ++I)
      expectSame(simulatePermutationRouting(Net, Patterns[I]), Ref[I],
                 Scg.name() + " pattern " + std::to_string(I) + " vs solo");

    for (unsigned Threads : ThreadCounts) {
      std::vector<PermutationRoutingResult> Got = withThreads(Threads, [&] {
        return simulatePermutationRoutingBatch(Net, Patterns);
      });
      ASSERT_EQ(Got.size(), Ref.size());
      for (size_t I = 0; I != Ref.size(); ++I)
        expectSame(Ref[I], Got[I],
                   Scg.name() + " pattern " + std::to_string(I) + " @" +
                       std::to_string(Threads) + "T");
    }
    std::vector<PermutationRoutingResult> Forced = withForcedSerialEnv([&] {
      return simulatePermutationRoutingBatch(Net, Patterns);
    });
    for (size_t I = 0; I != Ref.size(); ++I)
      expectSame(Ref[I], Forced[I],
                 Scg.name() + " pattern " + std::to_string(I) +
                     " @SCG_THREADS=1");
  }
}
