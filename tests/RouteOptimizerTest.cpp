//===- tests/RouteOptimizerTest.cpp - Path simplification tests ----------===//

#include "routing/RouteOptimizer.h"

#include "emulation/ScgRouter.h"
#include "perm/Lehmer.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(RouteOptimizer, EmptyPathStaysEmpty) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  EXPECT_EQ(simplifyPath(Ms, GeneratorPath()).length(), 0u);
}

TEST(RouteOptimizer, CancelsAdjacentInvolutions) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  GenIndex S2 = *Ms.generators().findByName("S2");
  GenIndex T2 = *Ms.generators().findByName("T2");
  GeneratorPath Path(std::vector<GenIndex>{T2, S2, S2, T2});
  GeneratorPath Simple = simplifyPath(Ms, Path);
  EXPECT_EQ(Simple.length(), 0u); // T2 S2 S2 T2 collapses entirely.
}

TEST(RouteOptimizer, CancelsInsertionSelectionPairs) {
  SuperCayleyGraph Is = SuperCayleyGraph::insertionSelection(5);
  GenIndex I4 = *Is.generators().findByName("I4");
  GenIndex I4inv = *Is.generators().findByName("I4'");
  GeneratorPath Path(std::vector<GenIndex>{I4, I4inv});
  EXPECT_EQ(simplifyPath(Is, Path).length(), 0u);
}

TEST(RouteOptimizer, FoldsRotations) {
  // R R = R^2 on a complete-rotation network.
  SuperCayleyGraph Net =
      SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 4, 2);
  GenIndex R = *Net.generators().findByName("R");
  GeneratorPath Path(std::vector<GenIndex>{R, R});
  GeneratorPath Simple = simplifyPath(Net, Path);
  ASSERT_EQ(Simple.length(), 1u);
  EXPECT_EQ(Net.generators()[Simple.hops()[0]].Name, "R^2");
}

TEST(RouteOptimizer, FoldCascades) {
  // R R R R = identity when l = 4.
  SuperCayleyGraph Net =
      SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 4, 2);
  GenIndex R = *Net.generators().findByName("R");
  GeneratorPath Path(std::vector<GenIndex>{R, R, R, R});
  EXPECT_EQ(simplifyPath(Net, Path).length(), 0u);
}

TEST(RouteOptimizer, PreservesEndpointsOnLiftedRoutes) {
  SplitMix64 Rng(77);
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::CompleteRotationStar,
        NetworkKind::MacroIS}) {
    SuperCayleyGraph Net = SuperCayleyGraph::create(Kind, 3, 2);
    for (int Trial = 0; Trial != 60; ++Trial) {
      Permutation A = unrankPermutation(Rng.nextBelow(factorial(7)), 7);
      Permutation B = unrankPermutation(Rng.nextBelow(factorial(7)), 7);
      GeneratorPath Lifted = routeViaStarEmulation(Net, A, B);
      GeneratorPath Simple = simplifyPath(Net, Lifted);
      EXPECT_TRUE(Simple.connects(Net, A, B)) << Net.name();
      EXPECT_LE(Simple.length(), Lifted.length());
    }
  }
}

TEST(RouteOptimizer, ShortensBackToBackBoxVisits) {
  // Two consecutive star dimensions in the same box leave S2 S2 in the
  // lifted route; simplification removes both hops.
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  Permutation Id = Permutation::identity(5);
  // T_4 then T_5: lifted = S2 T2 S2 S2 T3 S2.
  Permutation Dst = Id.compose(makeTransposition(5, 4).Sigma)
                        .compose(makeTransposition(5, 5).Sigma);
  GeneratorPath Lifted = routeViaStarEmulation(Ms, Id, Dst);
  GeneratorPath Simple = simplifyPath(Ms, Lifted);
  EXPECT_LT(Simple.length(), Lifted.length());
  EXPECT_TRUE(Simple.connects(Ms, Id, Dst));
}

TEST(RouteOptimizer, IsIdempotent) {
  SuperCayleyGraph Net =
      SuperCayleyGraph::create(NetworkKind::CompleteRotationIS, 3, 2);
  SplitMix64 Rng(99);
  for (int Trial = 0; Trial != 40; ++Trial) {
    Permutation A = unrankPermutation(Rng.nextBelow(factorial(7)), 7);
    Permutation B = unrankPermutation(Rng.nextBelow(factorial(7)), 7);
    GeneratorPath Once = simplifyPath(Net, routeViaStarEmulation(Net, A, B));
    GeneratorPath Twice = simplifyPath(Net, Once);
    EXPECT_EQ(Once.hops(), Twice.hops());
  }
}
