//===- tests/PermutationKernelTest.cpp - Rank-space kernel properties ----===//
//
// Property tests for the inline-storage Permutation and the table-driven
// Lehmer kernels: algebraic laws, the hash/equality contract, round trips
// against straightforward quadratic reference implementations, spill
// behavior past the inline capacity, and the allocation-freedom guarantee
// the hot paths (compose / neighborInto / rank / unrank) rely on.
//
//===----------------------------------------------------------------------===//

#include "core/SuperCayleyGraph.h"
#include "perm/Lehmer.h"
#include "perm/Permutation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <set>

using namespace scg;

//===----------------------------------------------------------------------===//
// Global allocation counter. Replacing operator new in this TU intercepts
// every heap allocation in the test binary; the kernel tests snapshot the
// counter around hot-path loops to prove they never touch the heap.
//===----------------------------------------------------------------------===//

static std::atomic<uint64_t> GHeapAllocations{0};

void *operator new(std::size_t Size) {
  ++GHeapAllocations;
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

//===----------------------------------------------------------------------===//
// Reference implementations: the textbook quadratic forms the optimized
// kernels must agree with exactly.
//===----------------------------------------------------------------------===//

uint64_t refRank(const Permutation &P) {
  unsigned K = P.size();
  uint64_t Rank = 0;
  for (unsigned I = 0; I != K; ++I) {
    unsigned Smaller = 0;
    for (unsigned J = I + 1; J != K; ++J)
      Smaller += P[J] < P[I];
    Rank += uint64_t(Smaller) * factorial(K - 1 - I);
  }
  return Rank;
}

Permutation refUnrank(uint64_t Rank, unsigned K) {
  std::vector<uint8_t> Pool(K);
  std::iota(Pool.begin(), Pool.end(), 0);
  std::vector<uint8_t> Word;
  for (unsigned I = 0; I != K; ++I) {
    uint64_t F = factorial(K - 1 - I);
    uint64_t Digit = Rank / F;
    Rank %= F;
    Word.push_back(Pool[Digit]);
    Pool.erase(Pool.begin() + long(Digit));
  }
  return Permutation::fromOneLine(Word);
}

Permutation refCompose(const Permutation &A, const Permutation &B) {
  std::vector<uint8_t> Word(A.size());
  for (unsigned P = 0; P != A.size(); ++P)
    Word[P] = A[B[P]];
  return Permutation::fromOneLine(Word);
}

/// Deterministic sample of ranks covering [0, k!): ends, middle, and a
/// multiplicative walk.
std::vector<uint64_t> sampleRanks(unsigned K, unsigned Count) {
  uint64_t N = factorial(K);
  std::vector<uint64_t> Ranks{0, N - 1, N / 2};
  uint64_t X = 0x2545F4914F6CDD1DULL % N;
  for (unsigned I = 0; I != Count; ++I) {
    Ranks.push_back(X);
    X = (X * 6364136223846793005ULL + 1442695040888963407ULL) % N;
  }
  return Ranks;
}

PermutationHash Hash;

//===----------------------------------------------------------------------===//
// Algebraic laws on the inline representation.
//===----------------------------------------------------------------------===//

/// A deterministic K-symbol sample: the sampled word on min(K, 12) symbols
/// extended by fixed points, then rotated by \p Salt so the tail is not
/// always fixed.
Permutation samplePerm(unsigned K, uint64_t R, unsigned Salt) {
  unsigned Base = std::min(K, 12u);
  std::vector<uint8_t> Word =
      unrankPermutation(R % factorial(Base), Base).oneLineVector();
  for (unsigned S = Base; S != K; ++S)
    Word.push_back(uint8_t(S));
  std::rotate(Word.begin(), Word.begin() + (Salt % K), Word.end());
  std::vector<uint8_t> Rotated(K);
  for (unsigned I = 0; I != K; ++I) // relabel so it stays a permutation.
    Rotated[I] = uint8_t((Word[I] + Salt) % K);
  return Permutation::fromOneLine(Rotated);
}

TEST(PermutationKernel, ComposeMatchesReferenceAndLaws) {
  for (unsigned K : {1u, 2u, 5u, 9u, 12u, 16u}) {
    Permutation Id = Permutation::identity(K);
    for (uint64_t RA : sampleRanks(std::min(K, 12u), 6)) {
      Permutation A = samplePerm(K, RA, unsigned(RA % 7));
      EXPECT_EQ(A.compose(Id), A);
      EXPECT_EQ(Id.compose(A), A);
      EXPECT_EQ(A.compose(A.inverse()), Id);
      EXPECT_EQ(A.inverse().compose(A), Id);
      for (uint64_t RB : sampleRanks(std::min(K, 12u), 3)) {
        Permutation B = samplePerm(K, RB, unsigned(RB % 5));
        // Associativity and agreement with the reference composition.
        EXPECT_EQ(A.compose(B), refCompose(A, B));
        EXPECT_EQ(A.compose(B).compose(A), A.compose(B.compose(A)));
      }
    }
  }
}

TEST(PermutationKernel, ComposeIntoAliasingIsSafe) {
  Permutation A = unrankPermutation(123456, 9);
  Permutation B = unrankPermutation(7890, 9);
  Permutation Expected = A.compose(B);
  Permutation X = A;
  X.composeInto(B, X); // Out aliases Lhs.
  EXPECT_EQ(X, Expected);
  Permutation Y = B;
  A.composeInto(Y, Y); // Out aliases Rhs.
  EXPECT_EQ(Y, Expected);
}

TEST(PermutationKernel, SignMatchesInversionParity) {
  for (unsigned K : {2u, 5u, 8u}) {
    for (uint64_t R : sampleRanks(K, 10)) {
      Permutation P = unrankPermutation(R, K);
      unsigned Inversions = 0;
      for (unsigned I = 0; I != K; ++I)
        for (unsigned J = I + 1; J != K; ++J)
          Inversions += P[J] < P[I];
      EXPECT_EQ(P.sign(), Inversions % 2 == 0 ? 1 : -1) << P.str();
      EXPECT_EQ(P.sign() * P.inverse().sign(), 1);
    }
  }
}

TEST(PermutationKernel, CyclesReconstructThePermutation) {
  for (uint64_t R : sampleRanks(8, 12)) {
    Permutation P = unrankPermutation(R, 8);
    std::vector<uint8_t> Image(8);
    std::iota(Image.begin(), Image.end(), 0);
    uint8_t PrevMin = 0;
    bool First = true;
    for (const std::vector<uint8_t> &Cycle : P.nontrivialCycles()) {
      ASSERT_GE(Cycle.size(), 2u);
      // Canonical form: each cycle starts at its smallest symbol, cycles
      // ordered by that smallest symbol.
      EXPECT_EQ(Cycle.front(), *std::min_element(Cycle.begin(), Cycle.end()));
      EXPECT_TRUE(First || Cycle.front() > PrevMin);
      PrevMin = Cycle.front();
      First = false;
      for (unsigned I = 0; I != Cycle.size(); ++I)
        Image[Cycle[I]] = P[Cycle[I]];
    }
    for (unsigned S = 0; S != 8; ++S)
      EXPECT_EQ(Image[S], P[S]);
  }
}

//===----------------------------------------------------------------------===//
// Hash / equality contract.
//===----------------------------------------------------------------------===//

TEST(PermutationKernel, EqualityAndHashContract) {
  // Equal values hash equally, regardless of how the value was produced.
  Permutation A = unrankPermutation(40319, 8);
  Permutation B = Permutation::fromOneLine(A.oneLineVector());
  Permutation C = A.compose(Permutation::identity(8));
  EXPECT_EQ(A, B);
  EXPECT_EQ(A, C);
  EXPECT_EQ(Hash(A), Hash(B));
  EXPECT_EQ(Hash(A), Hash(C));

  // Same word, different sizes: distinct values.
  Permutation Id5 = Permutation::identity(5);
  Permutation Id6 = Permutation::identity(6);
  EXPECT_FALSE(Id5 == Id6);
  EXPECT_NE(Hash(Id5), Hash(Id6));

  // Over all of S_6, the word-at-a-time hash is collision-free (the 720
  // zero-padded words are distinct 64-bit values pushed through a
  // bijective-ish mix; a collision here means the mixing regressed).
  std::set<size_t> Hashes;
  for (uint64_t R = 0; R != factorial(6); ++R)
    Hashes.insert(Hash(unrankPermutation(R, 6)));
  EXPECT_EQ(Hashes.size(), factorial(6));
}

TEST(PermutationKernel, LexOrderMatchesRankOrder) {
  unsigned K = 6;
  for (uint64_t R = 1; R != factorial(K); ++R)
    EXPECT_LT(unrankPermutation(R - 1, K), unrankPermutation(R, K));
}

//===----------------------------------------------------------------------===//
// Lehmer round trips against the quadratic references.
//===----------------------------------------------------------------------===//

TEST(PermutationKernel, RankUnrankRoundTripExhaustiveSmallK) {
  for (unsigned K = 0; K <= 8; ++K) {
    for (uint64_t R = 0; R != factorial(K); ++R) {
      Permutation P = unrankPermutation(R, K);
      EXPECT_EQ(P, refUnrank(R, K));
      EXPECT_EQ(rankPermutation(P), R);
      EXPECT_EQ(refRank(P), R);
    }
  }
}

TEST(PermutationKernel, RankUnrankRoundTripSampledLargeK) {
  for (unsigned K = 9; K <= 12; ++K) {
    for (uint64_t R : sampleRanks(K, 50)) {
      Permutation P = unrankPermutation(R, K);
      EXPECT_EQ(P, refUnrank(R, K));
      EXPECT_EQ(rankPermutation(P), R);
      EXPECT_EQ(refRank(P), R);
    }
  }
}

TEST(PermutationKernel, LehmerCodeAgreesWithRank) {
  for (unsigned K : {4u, 7u, 12u}) {
    for (uint64_t R : sampleRanks(K, 10)) {
      Permutation P = unrankPermutation(R, K);
      std::vector<uint8_t> Code = lehmerCode(P);
      uint64_t Rank = 0;
      for (unsigned I = 0; I != K; ++I)
        Rank += uint64_t(Code[I]) * factorial(K - 1 - I);
      EXPECT_EQ(Rank, R);
      EXPECT_EQ(fromLehmerCode(Code), P);
    }
  }
}

//===----------------------------------------------------------------------===//
// Spill regime: k past the inline capacity still obeys the full API.
//===----------------------------------------------------------------------===//

TEST(PermutationKernel, SpilledStorageBehavesLikeInline) {
  unsigned K = 40;
  std::vector<uint8_t> Word(K);
  for (unsigned I = 0; I != K; ++I)
    Word[I] = uint8_t((I + 7) % K);
  Permutation P = Permutation::fromOneLine(Word);
  EXPECT_FALSE(P.isInline());
  EXPECT_TRUE(Permutation::identity(16).isInline());
  EXPECT_FALSE(Permutation::identity(17).isInline());

  // Copy / move / equality / hash.
  Permutation Copy = P;
  EXPECT_EQ(Copy, P);
  EXPECT_EQ(Hash(Copy), Hash(P));
  Permutation Moved = std::move(Copy);
  EXPECT_EQ(Moved, P);

  // Algebra through the slow path matches the reference.
  Permutation Id = Permutation::identity(K);
  EXPECT_EQ(P.compose(P.inverse()), Id);
  EXPECT_EQ(P.compose(Id), P);
  Permutation Q = P.compose(P);
  EXPECT_EQ(Q, refCompose(P, P));
  Permutation X = P;
  X.composeInto(P, X);
  EXPECT_EQ(X, Q);

  // A k-cycle: one nontrivial cycle of length k, sign (-1)^(k-1).
  EXPECT_EQ(P.nontrivialCycles().size(), 1u);
  EXPECT_EQ(P.nontrivialCycles()[0].size(), size_t(K));
  EXPECT_EQ(P.sign(), K % 2 == 1 ? 1 : -1);
  EXPECT_EQ(P.numDisplaced(), K);

  // Lehmer code round trip in the generic (any-k) form.
  EXPECT_EQ(fromLehmerCode(lehmerCode(P)), P);

  // Mixed-size inequality against an inline value.
  EXPECT_FALSE(P == Permutation::identity(9));
}

//===----------------------------------------------------------------------===//
// Allocation freedom: the hot kernels never touch the heap for k <= 16.
//===----------------------------------------------------------------------===//

TEST(PermutationKernel, HotKernelsAreAllocationFree) {
  unsigned K = 12;
  SuperCayleyGraph Net = SuperCayleyGraph::star(K);
  GenIndex Degree = Net.degree();
  Permutation U = unrankPermutation(478001599, K); // 12! - 1: worst digits.
  Permutation V;
  uint64_t Acc = 0;

  uint64_t Before = GHeapAllocations.load();
  for (unsigned Round = 0; Round != 1000; ++Round) {
    Net.neighborInto(U, Round % Degree, V);     // compose via generator.
    Acc += rankPermutation(V);                  // rank.
    U = unrankPermutation(Acc % factorial(K), K); // unrank + move-assign.
    U.composeInto(V, V);                        // aliased compose.
  }
  uint64_t After = GHeapAllocations.load();

  EXPECT_EQ(After, Before) << "hot kernels allocated on k = " << K;
  EXPECT_NE(Acc, 0u); // keep the loop observable.
}

TEST(PermutationKernel, CopyAndHashAreAllocationFreeInline) {
  Permutation P = unrankPermutation(362879, 9);
  uint64_t Before = GHeapAllocations.load();
  Permutation Q = P;
  Permutation R = std::move(Q);
  size_t H = Hash(R);
  bool Eq = R == P;
  uint64_t After = GHeapAllocations.load();
  EXPECT_EQ(After, Before);
  EXPECT_TRUE(Eq);
  EXPECT_NE(H, 0u);
}

} // namespace
