//===- tests/LehmerTest.cpp - Ranking and factorial system tests ---------===//

#include "perm/Lehmer.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(Factorial, SmallValues) {
  EXPECT_EQ(factorial(0), 1u);
  EXPECT_EQ(factorial(1), 1u);
  EXPECT_EQ(factorial(5), 120u);
  EXPECT_EQ(factorial(10), 3628800u);
  EXPECT_EQ(factorial(20), 2432902008176640000ULL);
}

TEST(Lehmer, CodeOfIdentityIsZero) {
  std::vector<uint8_t> Code = lehmerCode(Permutation::identity(6));
  for (uint8_t C : Code)
    EXPECT_EQ(C, 0);
}

TEST(Lehmer, CodeOfReversalIsMaximal) {
  Permutation P = Permutation::fromOneLine({3, 2, 1, 0});
  std::vector<uint8_t> Code = lehmerCode(P);
  EXPECT_EQ(Code, (std::vector<uint8_t>{3, 2, 1, 0}));
  EXPECT_EQ(rankPermutation(P), factorial(4) - 1);
}

TEST(Lehmer, KnownRank) {
  // 2 0 1 (0-based) is the 4th permutation of S_3 lexicographically.
  EXPECT_EQ(rankPermutation(Permutation::fromOneLine({2, 0, 1})), 4u);
}

TEST(Lehmer, RankIsLexicographicOrder) {
  // Ranks enumerate S_4 in lexicographic one-line order.
  Permutation Prev = unrankPermutation(0, 4);
  for (uint64_t R = 1; R != factorial(4); ++R) {
    Permutation Cur = unrankPermutation(R, 4);
    EXPECT_LT(Prev, Cur);
    Prev = Cur;
  }
}

TEST(Lehmer, RoundTripAllOfS6) {
  for (uint64_t R = 0; R != factorial(6); ++R) {
    Permutation P = unrankPermutation(R, 6);
    EXPECT_EQ(rankPermutation(P), R);
    EXPECT_EQ(fromLehmerCode(lehmerCode(P)), P);
  }
}

TEST(Lehmer, DigitsStayInRange) {
  for (uint64_t R = 0; R != factorial(5); ++R) {
    std::vector<uint8_t> Code = lehmerCode(unrankPermutation(R, 5));
    for (unsigned I = 0; I != Code.size(); ++I)
      EXPECT_LT(Code[I], Code.size() - I);
  }
}

TEST(Lehmer, IdentityHasRankZero) {
  for (unsigned K = 1; K <= 8; ++K)
    EXPECT_EQ(rankPermutation(Permutation::identity(K)), 0u);
}
