//===- tests/ClustersTest.cpp - Modular structure tests ------------------===//

#include "networks/Clusters.h"

#include "graph/Metrics.h"
#include "perm/Lehmer.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(Clusters, CountsMatchFactorials) {
  // MS(2,2): k = 5, clusters of (n+1)! = 6 nodes, 5!/3! = 20 clusters.
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  ClusterStructure C(Net);
  EXPECT_EQ(C.clusterSize(), 6u);
  EXPECT_EQ(C.numClusters(), 20u);
}

TEST(Clusters, NucleusLinksStayInside) {
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::CompleteRotationStar,
        NetworkKind::MacroIS}) {
    ExplicitScg Net(SuperCayleyGraph::create(Kind, 2, 2));
    ClusterStructure C(Net);
    for (NodeId U = 0; U != Net.numNodes(); ++U)
      for (GenIndex G = 0; G != Net.degree(); ++G) {
        bool SameCluster = C.clusterOf(U) == C.clusterOf(Net.next(U, G));
        EXPECT_EQ(SameCluster, C.isIntraCluster(G))
            << networkKindName(Kind) << " node " << U << " gen " << G;
      }
  }
}

TEST(Clusters, ClusterGraphIsConnected) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2));
  ClusterStructure C(Net);
  Graph Quotient = C.clusterGraph();
  EXPECT_EQ(Quotient.numNodes(), C.numClusters());
  EXPECT_TRUE(isConnectedFromZero(Quotient));
}

TEST(Clusters, ClusterGraphIsUndirectedForMs) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  Graph Quotient = ClusterStructure(Net).clusterGraph();
  EXPECT_TRUE(Quotient.isUndirected());
}

TEST(Clusters, EveryClusterIsANucleusNetworkCopy) {
  // Within a cluster, the induced subgraph on nucleus links has (n+1)!
  // nodes and the nucleus network's degree.
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 3));
  ClusterStructure C(Net);
  // Count intra-cluster degree of a few nodes: n transpositions.
  for (NodeId U = 0; U < Net.numNodes(); U += 101) {
    unsigned Intra = 0;
    for (GenIndex G = 0; G != Net.degree(); ++G)
      if (C.clusterOf(Net.next(U, G)) == C.clusterOf(U))
        ++Intra;
    EXPECT_EQ(Intra, Net.network().ballsPerBox());
  }
}

TEST(Clusters, RotationClassesShareTheStructure) {
  ExplicitScg Net(
      SuperCayleyGraph::create(NetworkKind::CompleteRotationIS, 3, 2));
  ClusterStructure C(Net);
  EXPECT_EQ(C.clusterSize(), factorial(3));
  EXPECT_EQ(C.numClusters(), factorial(7) / factorial(3));
}
