//===- tests/FlitMessageTest.cpp - Multi-flit message tests --------------===//
//
// Store-and-forward vs pipelined transfers: an F-flit message crossing d
// links store-and-forward takes d*F steps (the whole message is buffered
// per hop), while the pipelined (cut-through/wormhole) transfer -- F unit
// packets streaming back to back -- takes d + F - 1. This is the textbook
// comparison behind Section 3's wormhole remark.
//
//===----------------------------------------------------------------------===//

#include "comm/Simulator.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

std::vector<GenIndex> straightRoute(const ExplicitScg &Net, unsigned Hops) {
  // Alternate two involutions so the walk never backtracks to a queue
  // conflict: T2 T3 T2 T3 ... on a star graph.
  std::vector<GenIndex> Route;
  for (unsigned H = 0; H != Hops; ++H)
    Route.push_back(H % 2);
  return Route;
}

} // namespace

TEST(FlitMessage, StoreAndForwardTakesDistanceTimesFlits) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  for (unsigned Flits : {1u, 2u, 4u, 7u})
    for (unsigned Hops : {1u, 3u, 5u}) {
      NetworkSimulator Sim(Net, CommModel::AllPort);
      Sim.injectPacket(0, straightRoute(Net, Hops), Flits);
      SimulationResult R = Sim.run(1000);
      ASSERT_TRUE(R.Completed);
      EXPECT_EQ(R.Steps, uint64_t(Hops) * Flits)
          << "hops=" << Hops << " flits=" << Flits;
    }
}

TEST(FlitMessage, PipelinedBeatsStoreAndForward) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  unsigned Hops = 5, Flits = 6;

  NetworkSimulator Saf(Net, CommModel::AllPort);
  Saf.injectPacket(0, straightRoute(Net, Hops), Flits);
  uint64_t SafSteps = Saf.run(1000).Steps;

  NetworkSimulator Pipe(Net, CommModel::AllPort);
  for (unsigned F = 0; F != Flits; ++F)
    Pipe.injectPacket(0, straightRoute(Net, Hops));
  uint64_t PipeSteps = Pipe.run(1000).Steps;

  EXPECT_EQ(SafSteps, uint64_t(Hops) * Flits);
  EXPECT_EQ(PipeSteps, uint64_t(Hops) + Flits - 1);
  EXPECT_LT(PipeSteps, SafSteps);
}

TEST(FlitMessage, BusyLinkBlocksOtherMessages) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::AllPort);
  // Two 3-flit messages over the same single link serialize.
  Sim.injectPacket(0, {0}, 3);
  Sim.injectPacket(0, {0}, 3);
  SimulationResult R = Sim.run(100);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Steps, 6u); // two 3-step occupancies back to back.
}

// Regression for the single-port port violation: a node occupied by a
// multi-flit store-and-forward transmission on one link must not start a
// second transmission on another link. Pre-fix, SelectLink only checked
// the busy *link*, so the two messages below overlapped (4 steps,
// impossibly fast); the correct serialization takes 3 + 3 = 6.
TEST(FlitMessage, SinglePortSerializesMultiFlitAcrossLinks) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::SinglePort);
  Sim.injectPacket(0, {0}, 3);
  Sim.injectPacket(0, {1}, 3);
  SimulationResult R = Sim.run(100);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Steps, 6u); // two 3-step port occupancies back to back.
  EXPECT_EQ(R.BusyLinkSteps, 6u);
}

// Same rule at saturation: d multi-flit messages on the d distinct links
// of one node serialize into d * F port-busy steps under single-port,
// while all-port genuinely overlaps them (F steps).
TEST(FlitMessage, SinglePortSaturatedNodeSerializesAllLinks) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  unsigned Degree = Net.degree(), Flits = 4;
  for (CommModel Model : {CommModel::SinglePort, CommModel::AllPort}) {
    NetworkSimulator Sim(Net, Model);
    for (GenIndex G = 0; G != Degree; ++G)
      Sim.injectPacket(0, {G}, Flits);
    SimulationResult R = Sim.run(1000);
    ASSERT_TRUE(R.Completed);
    uint64_t Want =
        Model == CommModel::SinglePort ? uint64_t(Degree) * Flits : Flits;
    EXPECT_EQ(R.Steps, Want) << commModelName(Model);
    EXPECT_EQ(R.BusyLinkSteps, uint64_t(Degree) * Flits)
        << commModelName(Model);
  }
}

// A single-flit packet queued at a port mid-way through a multi-flit
// transmission waits for the occupancy to end even on an idle link.
TEST(FlitMessage, SinglePortUnitPacketWaitsForBusyPort) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::SinglePort);
  Sim.injectPacket(0, {0}, 3); // occupies the port for steps 0..2.
  Sim.injectPacket(0, {1});    // must wait until step 3.
  SimulationResult R = Sim.run(100);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Steps, 4u);
  EXPECT_EQ(R.BusyLinkSteps, 4u);
}

// BusyLinkSteps accounts a multi-flit message-hop as Flits link-steps
// while Transmissions stays one per message-hop, and utilization derives
// from occupancy, not message-hops.
TEST(FlitMessage, UtilizationCountsOccupiedLinkSteps) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::AllPort);
  Sim.injectPacket(0, {0, 1}, 3);
  SimulationResult R = Sim.run(100);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Steps, 6u);
  EXPECT_EQ(R.Transmissions, 2u); // message-hops.
  EXPECT_EQ(R.BusyLinkSteps, 6u); // 2 hops x 3 occupied steps each.
  uint64_t Links = uint64_t(Net.numNodes()) * Net.degree();
  EXPECT_DOUBLE_EQ(R.LinkUtilization, 6.0 / double(Links * R.Steps));
}

TEST(FlitMessage, MixedTrafficConserves) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  NetworkSimulator Sim(Net, CommModel::AllPort);
  unsigned Injected = 0;
  for (NodeId U = 0; U < Net.numNodes(); U += 7) {
    Sim.injectPacket(U, straightRoute(Net, 3), 1 + (U % 4));
    ++Injected;
  }
  SimulationResult R = Sim.run(10000);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Delivered, Injected);
}
