//===- tests/SjtTest.cpp - Steinhaus-Johnson-Trotter tests ---------------===//

#include "perm/SJT.h"

#include "perm/Lehmer.h"

#include <gtest/gtest.h>

#include <set>

using namespace scg;

TEST(Sjt, EnumeratesAllPermutations) {
  for (unsigned K = 1; K <= 7; ++K) {
    std::vector<Permutation> Order = sjtOrder(K);
    EXPECT_EQ(Order.size(), factorial(K));
    std::set<std::vector<uint8_t>> Seen;
    for (const Permutation &P : Order)
      Seen.insert(P.oneLineVector());
    EXPECT_EQ(Seen.size(), factorial(K)) << "duplicates at k=" << K;
  }
}

TEST(Sjt, ConsecutiveDifferByAdjacentTransposition) {
  for (unsigned K = 2; K <= 6; ++K) {
    SjtEnumerator E(K);
    Permutation Prev = E.current();
    while (E.advance()) {
      const Permutation &Cur = E.current();
      unsigned Pos = E.lastSwapPosition();
      ASSERT_LT(Pos + 1, K);
      // Equal everywhere except the two adjacent slots.
      for (unsigned P = 0; P != K; ++P) {
        if (P == Pos || P == Pos + 1)
          continue;
        EXPECT_EQ(Prev[P], Cur[P]);
      }
      EXPECT_EQ(Prev[Pos], Cur[Pos + 1]);
      EXPECT_EQ(Prev[Pos + 1], Cur[Pos]);
      Prev = Cur;
    }
  }
}

TEST(Sjt, StartsAtIdentity) {
  SjtEnumerator E(5);
  EXPECT_TRUE(E.current().isIdentity());
}

TEST(Sjt, KnownOrderForThreeSymbols) {
  // Plain changes on 3 symbols: 123, 132, 312, 321, 231, 213 (1-based).
  std::vector<Permutation> Order = sjtOrder(3);
  const char *Expected[] = {"1 2 3", "1 3 2", "3 1 2",
                            "3 2 1", "2 3 1", "2 1 3"};
  ASSERT_EQ(Order.size(), 6u);
  for (unsigned I = 0; I != 6; ++I)
    EXPECT_EQ(Order[I].str(), Expected[I]);
}

TEST(Sjt, SingleSymbolHasOnePermutation) {
  SjtEnumerator E(1);
  EXPECT_FALSE(E.advance());
}
