//===- tests/NetworkSpecTest.cpp - Spec string parsing tests -------------===//

#include "core/NetworkSpec.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(NetworkSpec, RoundTripsAllNames) {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(6));
  Nets.push_back(SuperCayleyGraph::bubbleSort(5));
  Nets.push_back(SuperCayleyGraph::transpositionNetwork(5));
  Nets.push_back(SuperCayleyGraph::rotator(6));
  Nets.push_back(SuperCayleyGraph::insertionSelection(7));
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS})
    Nets.push_back(SuperCayleyGraph::create(Kind, 3, 2));

  for (const SuperCayleyGraph &Net : Nets) {
    auto Parsed = parseNetworkSpec(Net.name());
    ASSERT_TRUE(Parsed) << Net.name();
    EXPECT_EQ(Parsed->name(), Net.name());
    EXPECT_EQ(Parsed->kind(), Net.kind());
    EXPECT_EQ(Parsed->degree(), Net.degree());
  }
}

TEST(NetworkSpec, RejectsMalformed) {
  for (const char *Bad :
       {"", "MS", "MS(", "MS)", "MS()", "MS(4)", "star(4,3)", "star(x)",
        "frob(3,2)", "MS(4,3) ", "MS(1,3)", "star(1)", "MS(4,0)",
        "T-tree(5)"})
    EXPECT_FALSE(parseNetworkSpec(Bad)) << Bad;
}

TEST(NetworkSpec, ParsesSingleLevel) {
  auto Star = parseNetworkSpec("star(7)");
  ASSERT_TRUE(Star);
  EXPECT_EQ(Star->numSymbols(), 7u);
  auto Is = parseNetworkSpec("IS(5)");
  ASSERT_TRUE(Is);
  EXPECT_EQ(Is->degree(), 8u);
}

TEST(NetworkSpec, ParsesBoxClasses) {
  auto Net = parseNetworkSpec("complete-RIS(4,3)");
  ASSERT_TRUE(Net);
  EXPECT_EQ(Net->kind(), NetworkKind::CompleteRotationIS);
  EXPECT_EQ(Net->numBoxes(), 4u);
  EXPECT_EQ(Net->ballsPerBox(), 3u);
}
