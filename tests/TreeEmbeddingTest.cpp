//===- tests/TreeEmbeddingTest.cpp - Corollary 4 tree tests --------------===//

#include "embedding/TreeEmbedding.h"

#include "networks/Classic.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(TreeEmbedding, Dilation1Height3IntoStar5) {
  ExplicitScg Star(SuperCayleyGraph::star(5));
  TreeEmbeddingResult R = embedTreeIntoStar(Star, /*Height=*/3,
                                            /*MaxDilation=*/1);
  ASSERT_TRUE(R.Found);
  Graph Guest = completeBinaryTree(3);
  EmbeddingMetrics M = measureEmbedding(Guest, R.E);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Load, 1u);
  EXPECT_EQ(M.Dilation, 1u);
}

TEST(TreeEmbedding, Dilation1Height4IntoStar5) {
  ExplicitScg Star(SuperCayleyGraph::star(5));
  TreeEmbeddingResult R = embedTreeIntoStar(Star, 4, 1);
  ASSERT_TRUE(R.Found);
  EmbeddingMetrics M = measureEmbedding(completeBinaryTree(4), R.E);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Dilation, 1u);
}

TEST(TreeEmbedding, Height5IntoStar5WithinDilation2) {
  // [5] proves height 2k-5 = 5 embeds with dilation 1 into the 5-star;
  // the budgeted search is allowed to settle for dilation 2 here.
  ExplicitScg Star(SuperCayleyGraph::star(5));
  TreeEmbeddingResult R = embedTreeIntoStar(Star, 5, 1, 4'000'000);
  if (!R.Found)
    R = embedTreeIntoStar(Star, 5, 2, 4'000'000);
  ASSERT_TRUE(R.Found);
  EmbeddingMetrics M = measureEmbedding(completeBinaryTree(5), R.E);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Load, 1u);
  EXPECT_LE(M.Dilation, 2u);
}

TEST(TreeEmbedding, TooTallTreeIsRejected) {
  ExplicitScg Star(SuperCayleyGraph::star(4));
  // 2^6 - 1 = 63 > 24 nodes: no one-to-one embedding exists.
  TreeEmbeddingResult R = embedTreeIntoStar(Star, 5, 2);
  EXPECT_FALSE(R.Found);
}

TEST(TreeEmbedding, RootSitsAtIdentity) {
  ExplicitScg Star(SuperCayleyGraph::star(5));
  TreeEmbeddingResult R = embedTreeIntoStar(Star, 2, 1);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.E.NodeMap[0].isIdentity());
}

TEST(TreeEmbedding, BudgetExhaustionReportsSteps) {
  ExplicitScg Star(SuperCayleyGraph::star(5));
  TreeEmbeddingResult R = embedTreeIntoStar(Star, 5, 1, /*StepBudget=*/50);
  if (!R.Found)
    EXPECT_GE(R.StepsUsed, 50u);
}
