//===- tests/AllPortScheduleTest.cpp - Theorems 4-5 tests ----------------===//

#include "emulation/AllPortSchedule.h"

#include "emulation/FigureOne.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

struct BoxParams {
  NetworkKind Kind;
  unsigned L, N;
};

std::string paramName(const testing::TestParamInfo<BoxParams> &Info) {
  std::string Name = networkKindName(Info.param.Kind) + "_" +
                     std::to_string(Info.param.L) + "_" +
                     std::to_string(Info.param.N);
  // gtest parameter names must be alphanumeric.
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

class AllPortBoxSchedule : public testing::TestWithParam<BoxParams> {};

TEST_P(AllPortBoxSchedule, ConstructiveMeetsPaperBound) {
  BoxParams P = GetParam();
  SuperCayleyGraph Net = SuperCayleyGraph::create(P.Kind, P.L, P.N);
  AllPortSchedule Schedule = buildAllPortSchedule(Net);
  EXPECT_TRUE(validateAllPortSchedule(Net, Schedule)) << Net.name();
  unsigned Bound = paperAllPortSlowdownBound(Net);
  unsigned Lb = allPortLowerBound(Net);
  // The MIS(2,2)-style corner where the link-demand bound exceeds the
  // paper's constant is documented in EXPERIMENTS.md; everywhere else the
  // constructive schedule meets the claimed max(2n, l+1) / max(2n, l+2).
  unsigned Expected = std::max(Bound, Lb);
  EXPECT_LE(Schedule.Makespan, Expected + 1) << Net.name();
  if (Schedule.Makespan > Bound) {
    EXPECT_TRUE(P.Kind == NetworkKind::MacroIS ||
                P.Kind == NetworkKind::CompleteRotationIS)
        << Net.name() << " exceeded the Theorem 4 bound";
  }
  EXPECT_GE(Schedule.Makespan, Lb) << Net.name();
}

TEST_P(AllPortBoxSchedule, GreedyIsValid) {
  BoxParams P = GetParam();
  SuperCayleyGraph Net = SuperCayleyGraph::create(P.Kind, P.L, P.N);
  AllPortSchedule Schedule = buildAllPortScheduleGreedy(Net);
  EXPECT_TRUE(validateAllPortSchedule(Net, Schedule)) << Net.name();
  EXPECT_GE(Schedule.Makespan, allPortLowerBound(Net));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllPortBoxSchedule,
    testing::Values(
        BoxParams{NetworkKind::MacroStar, 2, 2},
        BoxParams{NetworkKind::MacroStar, 2, 3},
        BoxParams{NetworkKind::MacroStar, 3, 2},
        BoxParams{NetworkKind::MacroStar, 4, 3},
        BoxParams{NetworkKind::MacroStar, 5, 3},
        BoxParams{NetworkKind::MacroStar, 6, 2},
        BoxParams{NetworkKind::MacroStar, 7, 3},
        BoxParams{NetworkKind::MacroStar, 3, 5},
        BoxParams{NetworkKind::MacroStar, 10, 3},
        BoxParams{NetworkKind::CompleteRotationStar, 2, 2},
        BoxParams{NetworkKind::CompleteRotationStar, 3, 3},
        BoxParams{NetworkKind::CompleteRotationStar, 4, 3},
        BoxParams{NetworkKind::CompleteRotationStar, 5, 3},
        BoxParams{NetworkKind::CompleteRotationStar, 6, 4},
        BoxParams{NetworkKind::MacroIS, 2, 2},
        BoxParams{NetworkKind::MacroIS, 3, 2},
        BoxParams{NetworkKind::MacroIS, 4, 3},
        BoxParams{NetworkKind::MacroIS, 5, 3},
        BoxParams{NetworkKind::MacroIS, 2, 4},
        BoxParams{NetworkKind::CompleteRotationIS, 2, 2},
        BoxParams{NetworkKind::CompleteRotationIS, 3, 3},
        BoxParams{NetworkKind::CompleteRotationIS, 4, 3},
        BoxParams{NetworkKind::CompleteRotationIS, 5, 2}),
    paramName);

TEST(AllPortSchedule, Figure1aMacroStar43) {
  // Figure 1a: emulating a 13-star on MS(4,3): 6 steps.
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 4, 3);
  AllPortSchedule Schedule = buildAllPortSchedule(Ms);
  ASSERT_TRUE(validateAllPortSchedule(Ms, Schedule));
  EXPECT_EQ(Schedule.Makespan, 6u);
  EXPECT_EQ(paperAllPortSlowdownBound(Ms), 6u);
  ScheduleStats Stats = computeScheduleStats(Ms, Schedule);
  // 3 direct + 9 three-hop dimensions = 30 transmissions over 6x6 slots.
  EXPECT_EQ(Stats.Transmissions, 30u);
  EXPECT_EQ(Stats.Slots, 36u);
}

TEST(AllPortSchedule, Figure1bMacroStar53) {
  // Figure 1b: emulating a 16-star on MS(5,3): 6 steps, 93% average
  // utilization, links fully used during steps 1 to 5.
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 5, 3);
  AllPortSchedule Schedule = buildAllPortSchedule(Ms);
  ASSERT_TRUE(validateAllPortSchedule(Ms, Schedule));
  EXPECT_EQ(Schedule.Makespan, 6u);
  ScheduleStats Stats = computeScheduleStats(Ms, Schedule);
  EXPECT_EQ(Stats.Transmissions, 3u + 12 * 3);
  EXPECT_EQ(Stats.Slots, 42u);
  EXPECT_NEAR(Stats.AverageUtilization, 39.0 / 42.0, 1e-9);
}

TEST(AllPortSchedule, Figure1CompleteRsVariants) {
  for (auto [L, N] : {std::pair{4u, 3u}, {5u, 3u}}) {
    SuperCayleyGraph Net =
        SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, L, N);
    AllPortSchedule Schedule = buildAllPortSchedule(Net);
    ASSERT_TRUE(validateAllPortSchedule(Net, Schedule)) << Net.name();
    EXPECT_EQ(Schedule.Makespan, 6u) << Net.name();
  }
}

TEST(AllPortSchedule, StarIsOneStep) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(7);
  AllPortSchedule Schedule = buildAllPortSchedule(Star);
  EXPECT_TRUE(validateAllPortSchedule(Star, Schedule));
  EXPECT_EQ(Schedule.Makespan, 1u);
  ScheduleStats Stats = computeScheduleStats(Star, Schedule);
  EXPECT_EQ(Stats.FullyUsedSteps, 1u);
  EXPECT_DOUBLE_EQ(Stats.AverageUtilization, 1.0);
}

TEST(AllPortSchedule, InsertionSelectionIsTwoSteps) {
  // Theorem 2 under all-port: every dimension in two steps, no conflicts.
  SuperCayleyGraph Is = SuperCayleyGraph::insertionSelection(8);
  AllPortSchedule Schedule = buildAllPortSchedule(Is);
  EXPECT_TRUE(validateAllPortSchedule(Is, Schedule));
  EXPECT_EQ(Schedule.Makespan, 2u);
  EXPECT_EQ(paperAllPortSlowdownBound(Is), 2u);
}

TEST(AllPortSchedule, GreedyHandlesRotationStar) {
  // No paper bound for RS; the greedy schedule must still be conflict-free.
  SuperCayleyGraph Rs = SuperCayleyGraph::create(NetworkKind::RotationStar, 4, 2);
  AllPortSchedule Schedule = buildAllPortScheduleGreedy(Rs);
  EXPECT_TRUE(validateAllPortSchedule(Rs, Schedule));
  EXPECT_GE(Schedule.Makespan, allPortLowerBound(Rs));
}

TEST(AllPortSchedule, LowerBoundMatchesPaperFormulaOnMs) {
  // For MS, link demand gives exactly max(2n, l+1).
  for (auto [L, N] : {std::pair{4u, 3u}, {5u, 3u}, {7u, 2u}, {2u, 4u}}) {
    SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, L, N);
    EXPECT_EQ(allPortLowerBound(Ms), std::max(2 * N, L + 1)) << Ms.name();
  }
}

TEST(FigureOne, RenderContainsScheduleGrid) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 4, 3);
  std::string Text = renderFigureOne(Ms);
  EXPECT_NE(Text.find("13-star on MS(4,3)"), std::string::npos);
  EXPECT_NE(Text.find("j=13"), std::string::npos);
  EXPECT_NE(Text.find("makespan 6"), std::string::npos);
  EXPECT_NE(Text.find("S2"), std::string::npos);
}
