//===- tests/CycleEmbeddingTest.cpp - Ring embedding tests ---------------===//

#include "embedding/CycleEmbedding.h"

#include "embedding/PathTemplates.h"
#include "perm/Lehmer.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(CycleEmbedding, RingGraphShape) {
  Graph G = ringGraph(6);
  EXPECT_EQ(G.numNodes(), 6u);
  EXPECT_EQ(G.numDirectedEdges(), 12u);
  EXPECT_TRUE(G.isRegular());
  EXPECT_TRUE(G.isUndirected());
}

TEST(CycleEmbedding, RingIntoTnIsDilationOne) {
  for (unsigned K = 3; K <= 6; ++K) {
    SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(K);
    Graph Guest = ringGraph(factorial(K));
    EmbeddingMetrics M = measureEmbedding(Guest, embedRingIntoTn(Tn));
    EXPECT_TRUE(M.Valid) << "k=" << K;
    EXPECT_EQ(M.Load, 1u) << "k=" << K;
    EXPECT_DOUBLE_EQ(M.Expansion, 1.0) << "k=" << K;
    EXPECT_EQ(M.Dilation, 1u) << "k=" << K;
    EXPECT_EQ(M.Congestion, 1u) << "k=" << K;
  }
}

TEST(CycleEmbedding, RingIntoStarIsDilationThree) {
  for (unsigned K = 3; K <= 6; ++K) {
    SuperCayleyGraph Star = SuperCayleyGraph::star(K);
    Graph Guest = ringGraph(factorial(K));
    EmbeddingMetrics M = measureEmbedding(Guest, embedRingIntoStar(Star));
    EXPECT_TRUE(M.Valid) << "k=" << K;
    EXPECT_EQ(M.Load, 1u) << "k=" << K;
    EXPECT_EQ(M.Dilation, 3u) << "k=" << K;
  }
}

TEST(CycleEmbedding, HamiltonianCycleVisitsEveryNodeOnce) {
  SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(5);
  Embedding E = embedRingIntoTn(Tn);
  std::set<std::vector<uint8_t>> Seen;
  for (const Permutation &P : E.NodeMap)
    Seen.insert(P.oneLineVector());
  EXPECT_EQ(Seen.size(), factorial(5));
}

TEST(CycleEmbedding, ComposesIntoMacroStar) {
  // Ring -> TN -> MS(2,2): O(1) dilation ring in a super Cayley graph.
  SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(5);
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  Graph Guest = ringGraph(factorial(5));
  PathTemplateMap Map = PathTemplateMap::create(Tn, Ms);
  EmbeddingMetrics M =
      measureEmbedding(Guest, composeEmbedding(embedRingIntoTn(Tn), Map));
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Load, 1u);
  EXPECT_LE(M.Dilation, 5u);
}

TEST(CycleEmbedding, ComposesIntoIs) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(5);
  SuperCayleyGraph Is = SuperCayleyGraph::insertionSelection(5);
  Graph Guest = ringGraph(factorial(5));
  PathTemplateMap Map = PathTemplateMap::create(Star, Is);
  EmbeddingMetrics M = measureEmbedding(
      Guest, composeEmbedding(embedRingIntoStar(Star), Map));
  EXPECT_TRUE(M.Valid);
  EXPECT_LE(M.Dilation, 6u);
}
