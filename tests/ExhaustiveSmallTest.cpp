//===- tests/ExhaustiveSmallTest.cpp - Exhaustive k = 5 validation -------===//
//
// Everything, everywhere, all at once -- at k = 5, where exhaustive means
// 120 nodes and 14400 ordered pairs. For every emulation-capable network
// on five symbols: every lifted route connects and respects the slowdown
// bound, every simplified route connects and never lengthens, exact
// distances are symmetric (undirected hosts), and per-dimension templates
// realize their transpositions from every source.
//
//===----------------------------------------------------------------------===//

#include "emulation/ScgRouter.h"
#include "emulation/SdcEmulation.h"
#include "graph/Bfs.h"
#include "networks/Explicit.h"
#include "routing/RouteOptimizer.h"
#include "routing/StarRouter.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

std::vector<SuperCayleyGraph> hostsAtFive() {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(5));
  Nets.push_back(SuperCayleyGraph::transpositionNetwork(5));
  Nets.push_back(SuperCayleyGraph::insertionSelection(5));
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroIS,
        NetworkKind::RotationIS, NetworkKind::CompleteRotationIS}) {
    Nets.push_back(SuperCayleyGraph::create(Kind, 2, 2));
    Nets.push_back(SuperCayleyGraph::create(Kind, 4, 1));
  }
  return Nets;
}

} // namespace

TEST(ExhaustiveSmall, LiftedRoutesFromIdentityToEveryNode) {
  for (const SuperCayleyGraph &Net : hostsAtFive()) {
    unsigned Slowdown = analyzeSdcEmulation(Net).Slowdown;
    Permutation Id = Permutation::identity(5);
    ExplicitScg X(Net);
    for (NodeId Rank = 0; Rank != X.numNodes(); ++Rank) {
      Permutation Dst = X.label(Rank);
      GeneratorPath Lifted = routeViaStarEmulation(Net, Id, Dst);
      ASSERT_TRUE(Lifted.connects(Net, Id, Dst))
          << Net.name() << " -> " << Dst.str();
      EXPECT_LE(Lifted.length(), Slowdown * starDistance(Id, Dst))
          << Net.name();
      GeneratorPath Simple = simplifyPath(Net, Lifted);
      ASSERT_TRUE(Simple.connects(Net, Id, Dst)) << Net.name();
      EXPECT_LE(Simple.length(), Lifted.length()) << Net.name();
    }
  }
}

TEST(ExhaustiveSmall, BfsDistancesAreSymmetricOnUndirectedHosts) {
  for (const SuperCayleyGraph &Net : hostsAtFive()) {
    if (!Net.isUndirected())
      continue;
    ExplicitScg X(Net);
    Graph G = X.toGraph();
    BfsResult From0 = bfs(G, 0);
    // Spot rows: distance symmetry d(0, v) = d(v, 0).
    for (NodeId V = 0; V < X.numNodes(); V += 13) {
      BfsResult FromV = bfs(G, V);
      EXPECT_EQ(From0.Distance[V], FromV.Distance[0])
          << Net.name() << " node " << V;
    }
  }
}

TEST(ExhaustiveSmall, TemplatesRealizeEveryDimensionFromEverySource) {
  for (const SuperCayleyGraph &Net : hostsAtFive()) {
    ExplicitScg X(Net);
    for (unsigned J = 2; J <= 5; ++J) {
      GeneratorPath Path = starDimensionPath(Net, J);
      Permutation Action = makeTransposition(5, J).Sigma;
      // Net effect checked at build; here walk it from several sources
      // through the explicit tables too.
      for (NodeId U = 0; U < X.numNodes(); U += 17) {
        NodeId At = U;
        for (GenIndex G : Path.hops())
          At = X.next(At, G);
        EXPECT_EQ(X.label(At), X.label(U).compose(Action))
            << Net.name() << " dim " << J;
      }
    }
  }
}

TEST(ExhaustiveSmall, LiftedWorstCaseMatchesSlowdownTimesDiameter) {
  // The worst lifted route is at most slowdown * star diameter, and at
  // least the network diameter.
  for (const SuperCayleyGraph &Net : hostsAtFive()) {
    ExplicitScg X(Net);
    BfsResult R = bfs(X.toGraph(), 0);
    unsigned WorstLifted = 0;
    Permutation Id = Permutation::identity(5);
    for (NodeId Rank = 0; Rank != X.numNodes(); ++Rank)
      WorstLifted = std::max(
          WorstLifted,
          routeViaStarEmulation(Net, Id, X.label(Rank)).length());
    EXPECT_GE(WorstLifted, R.Eccentricity) << Net.name();
    EXPECT_LE(WorstLifted, liftedRouteBound(Net)) << Net.name();
  }
}
