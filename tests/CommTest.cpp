//===- tests/CommTest.cpp - Simulator, MNB, and TE tests -----------------===//

#include "comm/Mnb.h"
#include "comm/Simulator.h"
#include "comm/TotalExchange.h"

#include "emulation/ScgRouter.h"
#include "graph/Metrics.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(Simulator, SinglePacketTravelsItsRoute) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::AllPort);
  Sim.injectPacket(0, {0, 1, 0}); // three hops.
  SimulationResult R = Sim.run(100);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Steps, 3u);
  EXPECT_EQ(R.Delivered, 1u);
  EXPECT_EQ(R.Transmissions, 3u);
}

TEST(Simulator, EmptyRouteDeliversInstantly) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::AllPort);
  Sim.injectPacket(0, {});
  SimulationResult R = Sim.run(10);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Steps, 0u);
}

TEST(Simulator, ContendingPacketsSerializeOnALink) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::AllPort);
  // Four packets from node 0 over the same first link.
  for (int I = 0; I != 4; ++I)
    Sim.injectPacket(0, {0});
  SimulationResult R = Sim.run(100);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Steps, 4u); // one per step through the single link.
  EXPECT_EQ(R.MaxQueueLength, 4u); // the initial burst, sampled pre-step.
}

TEST(Simulator, SinglePortUsesOneLinkPerNodePerStep) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::SinglePort);
  // Two packets on two different links of node 0: all-port would finish in
  // one step, single-port needs two.
  Sim.injectPacket(0, {0});
  Sim.injectPacket(0, {1});
  SimulationResult R = Sim.run(100);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Steps, 2u);
}

TEST(Simulator, SingleDimensionHonorsCycle) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::SingleDimension);
  Sim.setDimensionCycle({2, 0});
  // A packet needing link 0 must wait for step 2 of the cycle.
  Sim.injectPacket(0, {0});
  SimulationResult R = Sim.run(100);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Steps, 2u);
}

TEST(Simulator, StepCapReportsIncomplete) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::AllPort);
  for (int I = 0; I != 10; ++I)
    Sim.injectPacket(0, {0});
  SimulationResult R = Sim.run(3);
  EXPECT_FALSE(R.Completed);
  EXPECT_EQ(R.Delivered, 3u);
}

TEST(BroadcastTreeTest, CoversNetworkAtBfsDepth) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  BroadcastTree Tree(Net);
  EXPECT_EQ(Tree.numEdges(), Net.numNodes() - 1);
  DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
  EXPECT_EQ(Tree.height(), Stats.Diameter);
  EXPECT_EQ(Tree.depth(0), 0u);
}

TEST(Mnb, LowerBoundFormula) {
  EXPECT_EQ(mnbLowerBound(120, 4), 30u);
  EXPECT_EQ(mnbLowerBound(121, 4), 30u);
  EXPECT_EQ(mnbLowerBound(122, 4), 31u);
}

TEST(Mnb, CompletesOnStar5) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  BroadcastTree Tree(Net);
  MnbResult R = simulateMnb(Net, Tree);
  EXPECT_EQ(R.Deliveries, Net.numNodes() * (Net.numNodes() - 1));
  EXPECT_GE(R.Steps, R.LowerBound);
  EXPECT_LE(R.Ratio, 4.0); // within a small constant of optimal.
}

TEST(Mnb, CompletesOnMacroStar22) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  BroadcastTree Tree(Net);
  MnbResult R = simulateMnb(Net, Tree);
  EXPECT_EQ(R.Deliveries, Net.numNodes() * (Net.numNodes() - 1));
  EXPECT_LE(R.Ratio, 4.0);
}

TEST(Mnb, CompletesOnInsertionSelection5) {
  ExplicitScg Net(SuperCayleyGraph::insertionSelection(5));
  BroadcastTree Tree(Net);
  MnbResult R = simulateMnb(Net, Tree);
  EXPECT_EQ(R.Deliveries, Net.numNodes() * (Net.numNodes() - 1));
  EXPECT_LE(R.Ratio, 4.0);
}

TEST(TotalExchange, LowerBoundUsesAverageDistance) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
  uint64_t ExpectedHops = uint64_t(
      Stats.AverageDistance * (Net.numNodes() - 1) + 0.5);
  EXPECT_EQ(teLowerBound(Net), (ExpectedHops + 3) / 4);
}

TEST(TotalExchange, CompletesOnStar5) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  TeResult R = simulateTotalExchange(Net);
  EXPECT_EQ(R.Packets, Net.numNodes() * (Net.numNodes() - 1));
  EXPECT_GE(R.Steps, R.LowerBound);
  EXPECT_LE(R.Ratio, 6.0);
}

TEST(TotalExchange, CompletesOnMacroStar22) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  TeResult R = simulateTotalExchange(Net);
  EXPECT_GE(R.Steps, R.LowerBound);
  EXPECT_LE(R.Ratio, 8.0);
}

TEST(TotalExchange, CompletesOnIs5) {
  ExplicitScg Net(SuperCayleyGraph::insertionSelection(5));
  TeResult R = simulateTotalExchange(Net);
  EXPECT_GE(R.Steps, R.LowerBound);
  EXPECT_LE(R.Ratio, 6.0);
}

TEST(CommModelNames, AreStable) {
  EXPECT_EQ(commModelName(CommModel::AllPort), "all-port");
  EXPECT_EQ(commModelName(CommModel::SinglePort), "single-port");
  EXPECT_EQ(commModelName(CommModel::SingleDimension), "single-dimension");
}
