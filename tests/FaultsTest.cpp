//===- tests/FaultsTest.cpp - Fault injection tests ----------------------===//

#include "graph/Faults.h"

#include "graph/Metrics.h"
#include "networks/Classic.h"
#include "networks/Explicit.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(Faults, ApplyRemovesFailedLinks) {
  Graph G(3);
  G.addUndirectedEdge(0, 1);
  G.addUndirectedEdge(1, 2);
  FaultSet Faults;
  Faults.failLink(0, 1);
  Graph Out = applyFaults(G, Faults);
  EXPECT_FALSE(Out.hasEdge(0, 1));
  EXPECT_FALSE(Out.hasEdge(1, 0));
  EXPECT_TRUE(Out.hasEdge(1, 2));
}

TEST(Faults, NodeFaultKillsAllIncidentLinks) {
  Graph G = mesh2D(2, 2);
  FaultSet Faults;
  Faults.failNode(0);
  Graph Out = applyFaults(G, Faults);
  EXPECT_EQ(Out.outDegree(0), 0u);
  EXPECT_FALSE(Out.hasEdge(1, 0));
}

TEST(Faults, PathGraphDisconnectsOnAnyLinkFault) {
  Graph G(4);
  for (NodeId I = 0; I + 1 != 4; ++I)
    G.addUndirectedEdge(I, I + 1);
  SingleFaultSweep Sweep = sweepSingleLinkFaults(G);
  EXPECT_FALSE(Sweep.AlwaysConnected);
  EXPECT_EQ(Sweep.ScenariosTried, 3u);
}

TEST(Faults, CycleSurvivesAnySingleLinkFault) {
  Graph G(6);
  for (NodeId I = 0; I != 6; ++I)
    G.addUndirectedEdge(I, (I + 1) % 6);
  SingleFaultSweep Sweep = sweepSingleLinkFaults(G);
  EXPECT_TRUE(Sweep.AlwaysConnected);
  EXPECT_EQ(Sweep.FaultFreeDiameter, 3u);
  EXPECT_EQ(Sweep.WorstDiameter, 5u); // broken ring becomes a path.
}

TEST(Faults, StarGraphSurvivesSingleLinkFaults) {
  // The k-star is (k-1)-connected; one dead link cannot disconnect it and
  // the diameter grows by at most a small constant.
  ExplicitScg Net(SuperCayleyGraph::star(5));
  Graph G = Net.toGraph();
  SingleFaultSweep Sweep = sweepSingleLinkFaults(G, /*Stride=*/5);
  EXPECT_TRUE(Sweep.AlwaysConnected);
  EXPECT_EQ(Sweep.FaultFreeDiameter, 6u);
  EXPECT_LE(Sweep.WorstDiameter, 8u);
}

TEST(Faults, MacroStarSurvivesSingleLinkFaults) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  Graph G = Net.toGraph();
  SingleFaultSweep Sweep = sweepSingleLinkFaults(G, /*Stride=*/3);
  EXPECT_TRUE(Sweep.AlwaysConnected);
  EXPECT_LE(Sweep.WorstDiameter, Sweep.FaultFreeDiameter + 4);
}

TEST(Faults, InsertionSelectionSurvivesNodeFaults) {
  ExplicitScg Net(SuperCayleyGraph::insertionSelection(5));
  Graph G = Net.toGraph();
  SingleFaultSweep Sweep = sweepSingleNodeFaults(G, /*Stride=*/7);
  EXPECT_TRUE(Sweep.AlwaysConnected);
  EXPECT_LE(Sweep.WorstDiameter, Sweep.FaultFreeDiameter + 2);
}

TEST(Faults, AnalysisCountsHealthyNodes) {
  Graph G = mesh2D(3, 3);
  FaultSet Faults;
  Faults.failNode(4); // the center.
  FaultAnalysis Analysis = analyzeUnderFaults(G, Faults);
  EXPECT_EQ(Analysis.HealthyNodes, 8u);
  EXPECT_TRUE(Analysis.Connected); // ring around the center survives.
  EXPECT_EQ(Analysis.Diameter, 4u);
}

TEST(Faults, TwoFaultsCanDisconnectDegreeTwoNode) {
  Graph G = mesh2D(2, 2); // corners have degree 2.
  FaultSet Faults;
  Faults.failLink(0, 1);
  Faults.failLink(0, 2);
  FaultAnalysis Analysis = analyzeUnderFaults(G, Faults);
  EXPECT_FALSE(Analysis.Connected);
}

// Regression: numFailedLinks used to return the directed entry count, so
// one failLink (both directions) reported as two faults.
TEST(Faults, NumFailedLinksCountsUndirectedPairs) {
  FaultSet Faults;
  Faults.failLink(0, 1);
  EXPECT_EQ(Faults.numFailedLinks(), 1u);
  EXPECT_EQ(Faults.numFailedDirectedLinks(), 2u);
  Faults.failLink(1, 0); // duplicate of the same unordered pair.
  EXPECT_EQ(Faults.numFailedLinks(), 1u);
  EXPECT_EQ(Faults.numFailedDirectedLinks(), 2u);
  // A one-direction fault is its own (single) undirected pair.
  Faults.failDirectedLink(5, 2);
  EXPECT_EQ(Faults.numFailedLinks(), 2u);
  EXPECT_EQ(Faults.numFailedDirectedLinks(), 3u);
  // Completing the mirror direction must not double-count the pair, and
  // counting must interleave cleanly with mutation and queries.
  EXPECT_TRUE(Faults.linkFailed(5, 2));
  Faults.failDirectedLink(2, 5);
  EXPECT_EQ(Faults.numFailedLinks(), 2u);
  EXPECT_EQ(Faults.numFailedDirectedLinks(), 4u);
  Faults.failLink(3, 4);
  EXPECT_TRUE(Faults.linkFailed(4, 3));
  EXPECT_EQ(Faults.numFailedLinks(), 3u);
}

// Regression: the early exit on the first disconnected source used to
// return the diameter accumulated from earlier (connected) sources.
TEST(Faults, DisconnectedAnalysisReportsZeroDiameter) {
  Graph G(3);
  G.addUndirectedEdge(0, 1);
  G.addUndirectedEdge(1, 2);
  FaultSet Faults;
  // Kill only 2 -> 1: sources 0 and 1 still reach everyone (accumulating
  // eccentricity 2) before source 2, which reaches nobody.
  Faults.failDirectedLink(2, 1);
  FaultAnalysis Analysis = analyzeUnderFaults(G, Faults);
  EXPECT_FALSE(Analysis.Connected);
  EXPECT_EQ(Analysis.Diameter, 0u);
  ReachabilityAnalysis Reach = analyzeReachabilityUnderFaults(G, Faults);
  EXPECT_FALSE(Reach.Connected);
  EXPECT_EQ(Reach.Diameter, 0u);
  // 0 and 1 see two nodes each; 2 sees nobody.
  EXPECT_EQ(Reach.ReachableOrderedPairs, 4u);
}

// Regression: a sweep with zero scenarios used to report AlwaysConnected
// = true -- a vacuous robustness certificate.
TEST(Faults, ZeroScenarioSweepIsNotARobustnessCertificate) {
  Graph Edgeless(3);
  SingleFaultSweep Links = sweepSingleLinkFaults(Edgeless);
  EXPECT_EQ(Links.ScenariosTried, 0u);
  EXPECT_FALSE(Links.AlwaysConnected);
  Graph Empty(0);
  SingleFaultSweep Nodes = sweepSingleNodeFaults(Empty);
  EXPECT_EQ(Nodes.ScenariosTried, 0u);
  EXPECT_FALSE(Nodes.AlwaysConnected);
}

TEST(Faults, StridedSweepAgreesWithExhaustive) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  Graph G = Net.toGraph();
  SingleFaultSweep Exhaustive = sweepSingleLinkFaults(G, /*Stride=*/1);
  SingleFaultSweep Strided = sweepSingleLinkFaults(G, /*Stride=*/3);
  EXPECT_EQ(Exhaustive.ScenariosTried, G.numDirectedEdges() / 2);
  EXPECT_EQ(Strided.ScenariosTried, (Exhaustive.ScenariosTried + 2) / 3);
  EXPECT_EQ(Exhaustive.FaultFreeDiameter, Strided.FaultFreeDiameter);
  // star(4) survives any single link fault, so both sweeps agree exactly;
  // in general a strided sweep sees a subset of the scenarios.
  EXPECT_TRUE(Exhaustive.AlwaysConnected);
  EXPECT_TRUE(Strided.AlwaysConnected);
  EXPECT_LE(Strided.WorstDiameter, Exhaustive.WorstDiameter);
}

TEST(Faults, HubNodeFaultIsolatesLeaves) {
  // A star *topology* (one hub): killing the hub strands every leaf.
  Graph G(5);
  for (NodeId Leaf = 1; Leaf != 5; ++Leaf)
    G.addUndirectedEdge(0, Leaf);
  FaultSet Faults;
  Faults.failNode(0);
  FaultAnalysis Analysis = analyzeUnderFaults(G, Faults);
  EXPECT_EQ(Analysis.HealthyNodes, 4u);
  EXPECT_FALSE(Analysis.Connected);
  EXPECT_EQ(Analysis.Diameter, 0u);
  ReachabilityAnalysis Reach = analyzeReachabilityUnderFaults(G, Faults);
  EXPECT_EQ(Reach.ReachableOrderedPairs, 0u);
  SingleFaultSweep Sweep = sweepSingleNodeFaults(G);
  EXPECT_FALSE(Sweep.AlwaysConnected);
}

TEST(Faults, SweepsAreThreadCountInvariant) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  Graph G = Net.toGraph();
  setGlobalThreadCount(1);
  SingleFaultSweep SerialLinks = sweepSingleLinkFaults(G);
  SingleFaultSweep SerialNodes = sweepSingleNodeFaults(G);
  for (unsigned Threads : {2u, 8u}) {
    setGlobalThreadCount(Threads);
    SingleFaultSweep Links = sweepSingleLinkFaults(G);
    EXPECT_EQ(Links.AlwaysConnected, SerialLinks.AlwaysConnected);
    EXPECT_EQ(Links.WorstDiameter, SerialLinks.WorstDiameter);
    EXPECT_EQ(Links.FaultFreeDiameter, SerialLinks.FaultFreeDiameter);
    EXPECT_EQ(Links.ScenariosTried, SerialLinks.ScenariosTried);
    SingleFaultSweep Nodes = sweepSingleNodeFaults(G);
    EXPECT_EQ(Nodes.AlwaysConnected, SerialNodes.AlwaysConnected);
    EXPECT_EQ(Nodes.WorstDiameter, SerialNodes.WorstDiameter);
    EXPECT_EQ(Nodes.ScenariosTried, SerialNodes.ScenariosTried);
  }
  setGlobalThreadCount(0);
}

TEST(Faults, ReachabilityMatchesAllPairsOnHealthyGraph) {
  Graph G = mesh2D(3, 3);
  ReachabilityAnalysis Reach = analyzeReachabilityUnderFaults(G, FaultSet());
  DistanceStats Stats = allPairsStats(G);
  EXPECT_TRUE(Reach.Connected);
  EXPECT_EQ(Reach.HealthyNodes, 9u);
  EXPECT_EQ(Reach.ReachableOrderedPairs, 9u * 8u);
  EXPECT_EQ(Reach.Diameter, Stats.Diameter);
}
