//===- tests/FaultsTest.cpp - Fault injection tests ----------------------===//

#include "graph/Faults.h"

#include "graph/Metrics.h"
#include "networks/Classic.h"
#include "networks/Explicit.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(Faults, ApplyRemovesFailedLinks) {
  Graph G(3);
  G.addUndirectedEdge(0, 1);
  G.addUndirectedEdge(1, 2);
  FaultSet Faults;
  Faults.failLink(0, 1);
  Graph Out = applyFaults(G, Faults);
  EXPECT_FALSE(Out.hasEdge(0, 1));
  EXPECT_FALSE(Out.hasEdge(1, 0));
  EXPECT_TRUE(Out.hasEdge(1, 2));
}

TEST(Faults, NodeFaultKillsAllIncidentLinks) {
  Graph G = mesh2D(2, 2);
  FaultSet Faults;
  Faults.failNode(0);
  Graph Out = applyFaults(G, Faults);
  EXPECT_EQ(Out.outDegree(0), 0u);
  EXPECT_FALSE(Out.hasEdge(1, 0));
}

TEST(Faults, PathGraphDisconnectsOnAnyLinkFault) {
  Graph G(4);
  for (NodeId I = 0; I + 1 != 4; ++I)
    G.addUndirectedEdge(I, I + 1);
  SingleFaultSweep Sweep = sweepSingleLinkFaults(G);
  EXPECT_FALSE(Sweep.AlwaysConnected);
  EXPECT_EQ(Sweep.ScenariosTried, 3u);
}

TEST(Faults, CycleSurvivesAnySingleLinkFault) {
  Graph G(6);
  for (NodeId I = 0; I != 6; ++I)
    G.addUndirectedEdge(I, (I + 1) % 6);
  SingleFaultSweep Sweep = sweepSingleLinkFaults(G);
  EXPECT_TRUE(Sweep.AlwaysConnected);
  EXPECT_EQ(Sweep.FaultFreeDiameter, 3u);
  EXPECT_EQ(Sweep.WorstDiameter, 5u); // broken ring becomes a path.
}

TEST(Faults, StarGraphSurvivesSingleLinkFaults) {
  // The k-star is (k-1)-connected; one dead link cannot disconnect it and
  // the diameter grows by at most a small constant.
  ExplicitScg Net(SuperCayleyGraph::star(5));
  Graph G = Net.toGraph();
  SingleFaultSweep Sweep = sweepSingleLinkFaults(G, /*Stride=*/5);
  EXPECT_TRUE(Sweep.AlwaysConnected);
  EXPECT_EQ(Sweep.FaultFreeDiameter, 6u);
  EXPECT_LE(Sweep.WorstDiameter, 8u);
}

TEST(Faults, MacroStarSurvivesSingleLinkFaults) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  Graph G = Net.toGraph();
  SingleFaultSweep Sweep = sweepSingleLinkFaults(G, /*Stride=*/3);
  EXPECT_TRUE(Sweep.AlwaysConnected);
  EXPECT_LE(Sweep.WorstDiameter, Sweep.FaultFreeDiameter + 4);
}

TEST(Faults, InsertionSelectionSurvivesNodeFaults) {
  ExplicitScg Net(SuperCayleyGraph::insertionSelection(5));
  Graph G = Net.toGraph();
  SingleFaultSweep Sweep = sweepSingleNodeFaults(G, /*Stride=*/7);
  EXPECT_TRUE(Sweep.AlwaysConnected);
  EXPECT_LE(Sweep.WorstDiameter, Sweep.FaultFreeDiameter + 2);
}

TEST(Faults, AnalysisCountsHealthyNodes) {
  Graph G = mesh2D(3, 3);
  FaultSet Faults;
  Faults.failNode(4); // the center.
  FaultAnalysis Analysis = analyzeUnderFaults(G, Faults);
  EXPECT_EQ(Analysis.HealthyNodes, 8u);
  EXPECT_TRUE(Analysis.Connected); // ring around the center survives.
  EXPECT_EQ(Analysis.Diameter, 4u);
}

TEST(Faults, TwoFaultsCanDisconnectDegreeTwoNode) {
  Graph G = mesh2D(2, 2); // corners have degree 2.
  FaultSet Faults;
  Faults.failLink(0, 1);
  Faults.failLink(0, 2);
  FaultAnalysis Analysis = analyzeUnderFaults(G, Faults);
  EXPECT_FALSE(Analysis.Connected);
}
