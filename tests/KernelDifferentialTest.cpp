//===- tests/KernelDifferentialTest.cpp - Kernel differential pins -------===//
//
// Differential tests for the rank-space kernels:
//
//  * The parallel ExplicitScg build must produce a Next table byte-identical
//    to the forced-serial build at every thread count (each slot is a pure
//    function of its rank, written exactly once -- see Explicit.cpp).
//  * The devirtualized BFS (bfsCore / bfsExplicit / bfs / bfsImplicit) must
//    agree with a straightforward reference BFS written the way the legacy
//    engine was: std::deque frontier, std::function neighbor dispatch.
//
// Both are pinned across every network family at k = 5.
//
//===----------------------------------------------------------------------===//

#include "networks/Explicit.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <deque>
#include <functional>

using namespace scg;

namespace {

/// Every network family the library implements, materialized at k = 5:
/// the four classic single-level networks, a transposition tree between the
/// star/bubble-sort extremes, and all ten super Cayley graph classes
/// ((l, n) = (2, 2); the rotator-nucleus classes also at (4, 1) where the
/// n = 1 degeneracy makes them undirected).
std::vector<SuperCayleyGraph> allFamiliesK5() {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(5));
  Nets.push_back(SuperCayleyGraph::bubbleSort(5));
  Nets.push_back(SuperCayleyGraph::transpositionNetwork(5));
  Nets.push_back(SuperCayleyGraph::rotator(5));
  Nets.push_back(SuperCayleyGraph::insertionSelection(5));
  Nets.push_back(
      SuperCayleyGraph::transpositionTree(5, {{1, 2}, {2, 3}, {2, 4}, {4, 5}}));
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS})
    Nets.push_back(SuperCayleyGraph::create(Kind, 2, 2));
  for (NetworkKind Kind : {NetworkKind::MacroRotator,
                           NetworkKind::RotationRotator, NetworkKind::MacroIS})
    Nets.push_back(SuperCayleyGraph::create(Kind, 4, 1));
  return Nets;
}

/// Reference BFS, written the way the pre-devirtualization engine was:
/// std::deque frontier and type-erased per-edge dispatch. Deliberately kept
/// naive -- it is the spec the optimized traversals are pinned against.
BfsResult referenceBfs(uint64_t NumNodes, NodeId Source,
                       const NeighborFn &Neighbors) {
  BfsResult Result;
  Result.Distance.assign(NumNodes, UnreachableDistance);
  Result.Parent.assign(NumNodes, 0);
  Result.Distance[Source] = 0;
  Result.Parent[Source] = Source;
  Result.NumReached = 1;
  std::deque<NodeId> Queue{Source};
  while (!Queue.empty()) {
    NodeId Node = Queue.front();
    Queue.pop_front();
    uint32_t NextDist = Result.Distance[Node] + 1;
    Neighbors(Node, [&](NodeId Next) {
      if (Result.Distance[Next] != UnreachableDistance)
        return;
      Result.Distance[Next] = NextDist;
      Result.Parent[Next] = Node;
      Result.Eccentricity = NextDist;
      Result.DistanceSum += NextDist;
      ++Result.NumReached;
      Queue.push_back(Next);
    });
  }
  return Result;
}

void expectSameBfs(const BfsResult &A, const BfsResult &B,
                   const std::string &What) {
  EXPECT_EQ(A.Distance, B.Distance) << What;
  EXPECT_EQ(A.Parent, B.Parent) << What;
  EXPECT_EQ(A.Eccentricity, B.Eccentricity) << What;
  EXPECT_EQ(A.NumReached, B.NumReached) << What;
  EXPECT_EQ(A.DistanceSum, B.DistanceSum) << What;
}

TEST(KernelDifferential, ParallelBuildMatchesSerialByteForByte) {
  for (const SuperCayleyGraph &Scg : allFamiliesK5()) {
    setGlobalThreadCount(1);
    ExplicitScg Serial(Scg);
    for (unsigned Threads : {2u, 3u, 8u}) {
      setGlobalThreadCount(Threads);
      ExplicitScg Parallel(Scg);
      EXPECT_EQ(Serial.nextTable(), Parallel.nextTable())
          << Scg.name() << " at " << Threads << " threads";
    }
    setGlobalThreadCount(0);
  }
}

TEST(KernelDifferential, ParallelBuildMatchesSerialStar8) {
  // One larger instance so chunking actually splits (40320 ranks).
  SuperCayleyGraph Star = SuperCayleyGraph::star(8);
  setGlobalThreadCount(1);
  ExplicitScg Serial(Star);
  setGlobalThreadCount(4);
  ExplicitScg Parallel(Star);
  setGlobalThreadCount(0);
  EXPECT_EQ(Serial.nextTable(), Parallel.nextTable());
}

TEST(KernelDifferential, BfsAgreesWithReferenceOnEveryFamily) {
  for (const SuperCayleyGraph &Scg : allFamiliesK5()) {
    ExplicitScg Net(Scg);
    NeighborFn Walk = [&](NodeId Node, const std::function<void(NodeId)> &S) {
      for (GenIndex G = 0; G != Net.degree(); ++G)
        S(Net.next(Node, G));
    };
    for (NodeId Source : {NodeId(0), NodeId(Net.numNodes() - 1)}) {
      BfsResult Ref = referenceBfs(Net.numNodes(), Source, Walk);
      expectSameBfs(bfsExplicit(Net, Source), Ref,
                    Scg.name() + " bfsExplicit");
      expectSameBfs(bfsImplicit(Net.numNodes(), Source, Walk), Ref,
                    Scg.name() + " bfsImplicit");
      expectSameBfs(bfs(Net.toGraph(), Source), Ref, Scg.name() + " bfs");
      // Sanity on the result itself: Cayley graphs on S_k with a generating
      // set reach all k! nodes, and parents sit one level up.
      EXPECT_EQ(Ref.NumReached, Net.numNodes()) << Scg.name();
      for (NodeId V = 0; V != Net.numNodes(); ++V)
        if (V != Source)
          EXPECT_EQ(Ref.Distance[Ref.Parent[V]] + 1, Ref.Distance[V]);
    }
  }
}

} // namespace
