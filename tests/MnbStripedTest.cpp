//===- tests/MnbStripedTest.cpp - Multi-tree MNB tests -------------------===//

#include "comm/Mnb.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

std::vector<BroadcastTree> rotatedTrees(const ExplicitScg &Net,
                                        unsigned Count) {
  std::vector<BroadcastTree> Trees;
  for (unsigned T = 0; T != Count; ++T)
    Trees.emplace_back(Net, T);
  return Trees;
}

} // namespace

TEST(MnbStriped, SingleTreeMatchesPlainMnb) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  BroadcastTree Tree(Net);
  MnbResult Plain = simulateMnb(Net, Tree);
  MnbResult Striped = simulateMnbStriped(Net, rotatedTrees(Net, 1));
  EXPECT_EQ(Plain.Steps, Striped.Steps);
  EXPECT_EQ(Plain.Deliveries, Striped.Deliveries);
}

TEST(MnbStriped, DeliversEverythingWithManyTrees) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  MnbResult R = simulateMnbStriped(Net, rotatedTrees(Net, Net.degree()));
  EXPECT_EQ(R.Deliveries, Net.numNodes() * (Net.numNodes() - 1));
  EXPECT_GE(R.Steps, R.LowerBound);
}

TEST(MnbStriped, StripingDoesNotHurtMuch) {
  // Striping should be at least as good as single-tree within a small
  // tolerance (it strictly helps when the single tree is label-skewed).
  for (auto Scg : {SuperCayleyGraph::star(5),
                   SuperCayleyGraph::insertionSelection(5)}) {
    ExplicitScg Net(Scg);
    BroadcastTree Tree(Net);
    MnbResult Plain = simulateMnb(Net, Tree);
    MnbResult Striped =
        simulateMnbStriped(Net, rotatedTrees(Net, Net.degree()));
    EXPECT_LE(Striped.Steps, Plain.Steps + Plain.Steps / 4 + 2)
        << Scg.name();
  }
}

TEST(MnbStriped, RotatedTreesDiffer) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  BroadcastTree A(Net, 0), B(Net, 1);
  bool Different = false;
  for (NodeId W = 0; W != Net.numNodes() && !Different; ++W)
    Different = (A.children(W) != B.children(W));
  EXPECT_TRUE(Different);
  // Both are complete spanning trees regardless.
  EXPECT_EQ(A.numEdges(), Net.numNodes() - 1);
  EXPECT_EQ(B.numEdges(), Net.numNodes() - 1);
}
