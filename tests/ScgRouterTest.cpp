//===- tests/ScgRouterTest.cpp - Lifted routing tests --------------------===//

#include "emulation/ScgRouter.h"

#include "emulation/SdcEmulation.h"
#include "perm/Lehmer.h"
#include "routing/BagSolver.h"
#include "routing/StarRouter.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

std::vector<SuperCayleyGraph> hosts() {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(5));
  Nets.push_back(SuperCayleyGraph::insertionSelection(5));
  Nets.push_back(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  Nets.push_back(
      SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 2, 2));
  Nets.push_back(SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2));
  Nets.push_back(SuperCayleyGraph::create(NetworkKind::RotationIS, 2, 2));
  return Nets;
}

} // namespace

TEST(ScgRouter, RoutesConnectEndpoints) {
  SplitMix64 Rng(3);
  for (const SuperCayleyGraph &Net : hosts()) {
    for (int Trial = 0; Trial != 50; ++Trial) {
      Permutation A = unrankPermutation(Rng.nextBelow(factorial(5)), 5);
      Permutation B = unrankPermutation(Rng.nextBelow(factorial(5)), 5);
      GeneratorPath Path = routeViaStarEmulation(Net, A, B);
      EXPECT_TRUE(Path.connects(Net, A, B)) << Net.name();
    }
  }
}

TEST(ScgRouter, LengthBoundedBySlowdownTimesStarDistance) {
  SplitMix64 Rng(17);
  for (const SuperCayleyGraph &Net : hosts()) {
    unsigned Slowdown = analyzeSdcEmulation(Net).Slowdown;
    for (int Trial = 0; Trial != 50; ++Trial) {
      Permutation A = unrankPermutation(Rng.nextBelow(factorial(5)), 5);
      Permutation B = unrankPermutation(Rng.nextBelow(factorial(5)), 5);
      GeneratorPath Path = routeViaStarEmulation(Net, A, B);
      EXPECT_LE(Path.length(), Slowdown * starDistance(A, B)) << Net.name();
    }
  }
}

TEST(ScgRouter, NeverBeatsOptimalAndStaysBounded) {
  // The lifted route can be longer than the exact shortest path (hosts
  // have super links that shortcut many star hops at once) but can never
  // be shorter, and is always within the global emulation bound.
  SplitMix64 Rng(29);
  for (const SuperCayleyGraph &Net : hosts()) {
    unsigned Bound = liftedRouteBound(Net);
    for (int Trial = 0; Trial != 12; ++Trial) {
      Permutation A = unrankPermutation(Rng.nextBelow(factorial(5)), 5);
      Permutation B = unrankPermutation(Rng.nextBelow(factorial(5)), 5);
      GeneratorPath Lifted = routeViaStarEmulation(Net, A, B);
      std::optional<GeneratorPath> Optimal = solveBag(Net, A, B);
      ASSERT_TRUE(Optimal);
      EXPECT_GE(Lifted.length(), Optimal->length()) << Net.name();
      EXPECT_LE(Lifted.length(), Bound) << Net.name();
    }
  }
}

TEST(ScgRouter, StarHostGivesOptimalRoutes) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(6);
  SplitMix64 Rng(31);
  for (int Trial = 0; Trial != 50; ++Trial) {
    Permutation A = unrankPermutation(Rng.nextBelow(factorial(6)), 6);
    Permutation B = unrankPermutation(Rng.nextBelow(factorial(6)), 6);
    GeneratorPath Path = routeViaStarEmulation(Star, A, B);
    EXPECT_EQ(Path.length(), starDistance(A, B));
  }
}

TEST(ScgRouter, LiftedRouteBoundFormula) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  // slowdown 3 * star diameter 6 = 18.
  EXPECT_EQ(liftedRouteBound(Ms), 18u);
}

TEST(ScgRouter, PathRendering) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  Permutation Id = Permutation::identity(5);
  Permutation Dst = Id.compose(makeTransposition(5, 4).Sigma);
  GeneratorPath Path = routeViaStarEmulation(Ms, Id, Dst);
  EXPECT_EQ(Path.str(Ms), "S2 T2 S2");
}
