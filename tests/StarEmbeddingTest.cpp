//===- tests/StarEmbeddingTest.cpp - Section 3 star embeddings -----------===//

#include "embedding/StarEmbeddings.h"

#include "networks/Explicit.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

/// Measures the star embedding into a freshly built host.
EmbeddingMetrics measureInto(const SuperCayleyGraph &Host) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(Host.numSymbols());
  Graph Guest = ExplicitScg(Star).toGraph();
  Embedding E = embedStarInto(Star, Host);
  return measureEmbedding(Guest, E);
}

} // namespace

TEST(StarEmbedding, IntoMacroStar22) {
  SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  EmbeddingMetrics M = measureInto(Host);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Load, 1u);
  EXPECT_DOUBLE_EQ(M.Expansion, 1.0);
  EXPECT_EQ(M.Dilation, paperStarDilationBound(Host)); // 3.
  EXPECT_EQ(M.Congestion, paperStarCongestionBound(Host)); // max(2n,l) = 4.
}

TEST(StarEmbedding, IntoMacroStar32) {
  SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2);
  EmbeddingMetrics M = measureInto(Host);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Dilation, 3u);
  EXPECT_EQ(M.Congestion, 4u); // max(2*2, 3).
}

TEST(StarEmbedding, IntoCompleteRotationStar32) {
  SuperCayleyGraph Host =
      SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 3, 2);
  EmbeddingMetrics M = measureInto(Host);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Load, 1u);
  EXPECT_EQ(M.Dilation, 3u);
  EXPECT_EQ(M.Congestion, paperStarCongestionBound(Host));
}

TEST(StarEmbedding, IntoInsertionSelection) {
  SuperCayleyGraph Host = SuperCayleyGraph::insertionSelection(6);
  EmbeddingMetrics M = measureInto(Host);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Load, 1u);
  EXPECT_EQ(M.Dilation, 2u);     // Theorem 2.
  EXPECT_EQ(M.Congestion, 1u);   // Section 3: congestion 1.
}

TEST(StarEmbedding, IntoMacroIs22) {
  SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2);
  EmbeddingMetrics M = measureInto(Host);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Dilation, 4u); // Theorem 3.
  EXPECT_EQ(M.Congestion, paperStarCongestionBound(Host));
}

TEST(StarEmbedding, IntoCompleteRotationIs32) {
  SuperCayleyGraph Host =
      SuperCayleyGraph::create(NetworkKind::CompleteRotationIS, 3, 2);
  EmbeddingMetrics M = measureInto(Host);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Dilation, 4u);
  EXPECT_LE(M.Congestion, paperStarCongestionBound(Host));
}

TEST(StarEmbedding, PerDimensionCongestionClaim) {
  // Section 3: per-dimension congestion is 2 for j > n+1 and 1 otherwise.
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::CompleteRotationStar,
        NetworkKind::MacroIS}) {
    SuperCayleyGraph Host = SuperCayleyGraph::create(Kind, 2, 2);
    unsigned N = Host.ballsPerBox();
    for (unsigned Dim = 2; Dim <= Host.numSymbols(); ++Dim) {
      uint64_t C = starDimensionCongestion(Host, Dim);
      EXPECT_EQ(C, Dim > N + 1 ? 2u : 1u)
          << Host.name() << " dim " << Dim;
    }
  }
}

TEST(StarEmbedding, PerDimensionCongestionOnIs) {
  SuperCayleyGraph Host = SuperCayleyGraph::insertionSelection(5);
  for (unsigned Dim = 2; Dim <= 5; ++Dim)
    EXPECT_EQ(starDimensionCongestion(Host, Dim), 1u) << "dim " << Dim;
}
