//===- tests/GeneratorTest.cpp - Generator definition tests --------------===//
//
// Checks every generator against the verbatim formulas of Section 2.2:
//   I_i(U)    = u_{2:i} u_1 u_{i+1:k}          (Definition 1)
//   I_i^-1(U) = u_i u_{1:i-1} u_{i+1:k}        (Definition 2)
//   R^i(U)    = u_1 u_{k-in+1:k} u_{2:k-in}    (Definition 3)
//
//===----------------------------------------------------------------------===//

#include "core/Generator.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

/// The paper's example labels: U = u_1 ... u_k with u_p = p (so the label
/// IS the identity and applying a generator reveals its action directly).
Permutation ident(unsigned K) { return Permutation::identity(K); }

std::string applyToIdentity(const Generator &G, unsigned K) {
  return ident(K).applyGenerator(G.Sigma).str();
}

} // namespace

TEST(Generator, TranspositionSwapsFirstAndIth) {
  EXPECT_EQ(applyToIdentity(makeTransposition(5, 3), 5), "3 2 1 4 5");
  EXPECT_EQ(applyToIdentity(makeTransposition(5, 5), 5), "5 2 3 4 1");
  EXPECT_EQ(makeTransposition(5, 3).Name, "T3");
  EXPECT_EQ(makeTransposition(5, 3).Kind, GeneratorKind::Nucleus);
}

TEST(Generator, TranspositionIsInvolution) {
  for (unsigned I = 2; I <= 6; ++I)
    EXPECT_TRUE(makeTransposition(6, I).isInvolution());
}

TEST(Generator, PairTransposition) {
  EXPECT_EQ(applyToIdentity(makePairTransposition(5, 2, 4), 5), "1 4 3 2 5");
  EXPECT_EQ(makePairTransposition(5, 2, 4).Name, "T2,4");
  EXPECT_TRUE(makePairTransposition(6, 3, 6).isInvolution());
}

TEST(Generator, AdjacentTransposition) {
  EXPECT_EQ(applyToIdentity(makeAdjacentTransposition(4, 2), 4), "1 3 2 4");
}

TEST(Generator, InsertionMatchesDefinitionOne) {
  // I_i cyclically shifts the leftmost i symbols left by one:
  // I_4(1 2 3 4 5) = 2 3 4 1 5.
  EXPECT_EQ(applyToIdentity(makeInsertion(5, 4), 5), "2 3 4 1 5");
  EXPECT_EQ(applyToIdentity(makeInsertion(5, 2), 5), "2 1 3 4 5");
  EXPECT_EQ(applyToIdentity(makeInsertion(5, 5), 5), "2 3 4 5 1");
}

TEST(Generator, SelectionMatchesDefinitionTwo) {
  // I_i^-1 cyclically shifts the leftmost i symbols right by one:
  // I_4^-1(1 2 3 4 5) = 4 1 2 3 5.
  EXPECT_EQ(applyToIdentity(makeSelection(5, 4), 5), "4 1 2 3 5");
  EXPECT_EQ(applyToIdentity(makeSelection(5, 2), 5), "2 1 3 4 5");
}

TEST(Generator, SelectionInvertsInsertion) {
  for (unsigned K = 2; K <= 7; ++K)
    for (unsigned I = 2; I <= K; ++I) {
      Permutation Product =
          makeInsertion(K, I).Sigma.compose(makeSelection(K, I).Sigma);
      EXPECT_TRUE(Product.isIdentity()) << "I" << I << " on k=" << K;
    }
}

TEST(Generator, InsertionTwoIsAnInvolution) {
  EXPECT_TRUE(makeInsertion(6, 2).isInvolution());
  EXPECT_EQ(makeInsertion(6, 2).Sigma, makeSelection(6, 2).Sigma);
  EXPECT_FALSE(makeInsertion(6, 3).isInvolution());
}

TEST(Generator, SwapExchangesSuperSymbols) {
  // k = 7 = 3*2 + 1, boxes of n = 2: S_3 swaps positions 2-3 with 6-7.
  EXPECT_EQ(applyToIdentity(makeSwap(7, 2, 3), 7), "1 6 7 4 5 2 3");
  EXPECT_EQ(makeSwap(7, 2, 3).Kind, GeneratorKind::Super);
  EXPECT_TRUE(makeSwap(7, 2, 3).isInvolution());
}

TEST(Generator, RotationMatchesDefinitionThree) {
  // k = 7, n = 2, l = 3. R^1 shifts the rightmost 6 symbols right by 2:
  // 1 | 2 3 | 4 5 | 6 7  ->  1 | 6 7 | 2 3 | 4 5.
  EXPECT_EQ(applyToIdentity(makeRotation(7, 2, 1), 7), "1 6 7 2 3 4 5");
  // R^2 shifts by 4: 1 | 4 5 | 6 7 | 2 3.
  EXPECT_EQ(applyToIdentity(makeRotation(7, 2, 2), 7), "1 4 5 6 7 2 3");
}

TEST(Generator, RotationExponentsNormalizeModL) {
  EXPECT_EQ(makeRotation(7, 2, -1).Sigma, makeRotation(7, 2, 2).Sigma);
  EXPECT_EQ(makeRotation(7, 2, 4).Sigma, makeRotation(7, 2, 1).Sigma);
  EXPECT_EQ(makeRotation(7, 2, 1).Name, "R");
  EXPECT_EQ(makeRotation(7, 2, 2).Name, "R^2");
}

TEST(Generator, RotationInverseComposesToIdentity) {
  for (int I = 1; I <= 3; ++I) {
    Permutation Product = makeRotation(9, 2, I).Sigma.compose(
        makeRotation(9, 2, -I).Sigma);
    EXPECT_TRUE(Product.isIdentity());
  }
}

TEST(Generator, RotationIsRepeatedR) {
  // R^i = R composed i times (Section 2.2).
  Permutation R = makeRotation(9, 2, 1).Sigma;
  Permutation Acc = R;
  for (int I = 2; I <= 3; ++I) {
    Acc = Acc.compose(R);
    EXPECT_EQ(Acc, makeRotation(9, 2, I).Sigma) << "R^" << I;
  }
}

TEST(Generator, BringBoxMovesBoxToFront) {
  // After B_i, the i-th super-symbol occupies positions 2..n+1.
  for (unsigned Box = 2; Box <= 4; ++Box) {
    Permutation Swapped = ident(9).applyGenerator(
        makeBringBoxSwap(9, 2, Box).Sigma);
    Permutation Rotated = ident(9).applyGenerator(
        makeBringBoxRotation(9, 2, Box).Sigma);
    for (unsigned Q = 0; Q != 2; ++Q) {
      uint8_t Expected = (Box - 1) * 2 + 1 + Q; // box contents (0-based).
      EXPECT_EQ(Swapped[1 + Q], Expected) << "S bring box " << Box;
      EXPECT_EQ(Rotated[1 + Q], Expected) << "R bring box " << Box;
    }
  }
}

TEST(Generator, InvertedNameConvention) {
  Generator G = makeInsertion(5, 4);
  Generator Inv = G.inverted();
  EXPECT_EQ(Inv.Name, "I4'");
  EXPECT_EQ(Inv.Sigma, makeSelection(5, 4).Sigma);
  EXPECT_EQ(Inv.inverted().Name, "I4");
}
