//===- tests/SupportTest.cpp - Support utility tests ---------------------===//

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(Format, Join) {
  std::vector<int> V{1, 2, 3};
  EXPECT_EQ(join(V, ", "), "1, 2, 3");
  EXPECT_EQ(join(std::vector<int>{}, ", "), "");
  EXPECT_EQ(join(std::vector<std::string>{"x"}, "-"), "x");
}

TEST(Format, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
  EXPECT_EQ(padRight("abcd", 2), "abcd");
}

TEST(Format, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
  EXPECT_EQ(formatDouble(0.5, 3), "0.500");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable Table;
  Table.setHeader({"name", "value"});
  Table.addRow({"alpha", "1"});
  Table.addRow({"b", "22"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("name   value"), std::string::npos);
  EXPECT_NE(Out.find("alpha  1"), std::string::npos);
  EXPECT_NE(Out.find("b      22"), std::string::npos);
  EXPECT_NE(Out.find("-----"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable Table;
  Table.setHeader({"a"});
  Table.addRow({"1", "2", "3"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("1  2  3"), std::string::npos);
}

TEST(TextTable, EmptyHeaderSkipsRule) {
  TextTable Table;
  Table.addRow({"only"});
  EXPECT_EQ(Table.render(), "only\n");
}

TEST(SplitMix, IsDeterministic) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix, DiffersAcrossSeeds) {
  SplitMix64 A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(SplitMix, NextBelowStaysInRange) {
  SplitMix64 Rng(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
}
