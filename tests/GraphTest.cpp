//===- tests/GraphTest.cpp - Graph container and algorithm tests ---------===//

#include "graph/Graph.h"

#include "graph/Bfs.h"
#include "graph/Metrics.h"
#include "networks/Classic.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(Graph, EdgesAndDegrees) {
  Graph G(4);
  G.addUndirectedEdge(0, 1);
  G.addEdge(2, 3);
  EXPECT_EQ(G.numDirectedEdges(), 3u);
  EXPECT_EQ(G.outDegree(0), 1u);
  EXPECT_TRUE(G.hasEdge(2, 3));
  EXPECT_FALSE(G.hasEdge(3, 2));
  EXPECT_FALSE(G.isUndirected());
  EXPECT_FALSE(G.isRegular());
}

TEST(Graph, UndirectedDetection) {
  Graph G(3);
  G.addUndirectedEdge(0, 1);
  G.addUndirectedEdge(1, 2);
  EXPECT_TRUE(G.isUndirected());
}

TEST(Bfs, PathGraphDistances) {
  Graph G(5);
  for (NodeId I = 0; I + 1 != 5; ++I)
    G.addUndirectedEdge(I, I + 1);
  BfsResult R = bfs(G, 0);
  for (NodeId I = 0; I != 5; ++I)
    EXPECT_EQ(R.Distance[I], I);
  EXPECT_EQ(R.Eccentricity, 4u);
  EXPECT_EQ(R.NumReached, 5u);
  EXPECT_EQ(R.DistanceSum, 1u + 2 + 3 + 4);
}

TEST(Bfs, ParentsFormShortestPathTree) {
  Graph G = mesh2D(3, 3);
  BfsResult R = bfs(G, 0);
  for (NodeId V = 1; V != G.numNodes(); ++V)
    EXPECT_EQ(R.Distance[V], R.Distance[R.Parent[V]] + 1);
}

TEST(Bfs, DisconnectedMarksUnreachable) {
  Graph G(4);
  G.addUndirectedEdge(0, 1);
  G.addUndirectedEdge(2, 3);
  BfsResult R = bfs(G, 0);
  EXPECT_EQ(R.Distance[2], UnreachableDistance);
  EXPECT_EQ(R.NumReached, 2u);
  EXPECT_FALSE(isConnectedFromZero(G));
}

TEST(Metrics, HypercubeDiameterEqualsDimension) {
  for (unsigned D = 1; D <= 6; ++D) {
    Graph G = hypercube(D);
    DistanceStats Stats = vertexTransitiveStats(G);
    EXPECT_TRUE(Stats.Connected);
    EXPECT_EQ(Stats.Diameter, D);
  }
}

TEST(Metrics, AllPairsMatchesTransitiveOnHypercube) {
  Graph G = hypercube(4);
  DistanceStats All = allPairsStats(G);
  DistanceStats One = vertexTransitiveStats(G);
  EXPECT_EQ(All.Diameter, One.Diameter);
  EXPECT_DOUBLE_EQ(All.AverageDistance, One.AverageDistance);
}

TEST(Metrics, MeshDiameter) {
  DistanceStats Stats = allPairsStats(mesh2D(3, 4));
  EXPECT_TRUE(Stats.Connected);
  EXPECT_EQ(Stats.Diameter, 2u + 3u);
}

TEST(Classic, HypercubeCounts) {
  Graph G = hypercube(5);
  EXPECT_EQ(G.numNodes(), 32u);
  EXPECT_EQ(G.numDirectedEdges(), 2u * 80);
  EXPECT_TRUE(G.isRegular());
  EXPECT_TRUE(G.isUndirected());
}

TEST(Classic, Mesh2DCounts) {
  Graph G = mesh2D(4, 6);
  EXPECT_EQ(G.numNodes(), 24u);
  // Edges: 4*5 horizontal + 3*6 vertical.
  EXPECT_EQ(G.numDirectedEdges(), 2u * (20 + 18));
}

TEST(Classic, MixedRadixMeshMatches2D) {
  Graph A = mixedRadixMesh({4, 6});
  Graph B = mesh2D(4, 6);
  ASSERT_EQ(A.numNodes(), B.numNodes());
  EXPECT_EQ(A.numDirectedEdges(), B.numDirectedEdges());
  for (NodeId U = 0; U != A.numNodes(); ++U)
    for (NodeId V : A.neighbors(U))
      EXPECT_TRUE(B.hasEdge(U, V));
}

TEST(Classic, MixedRadixCoordsRoundTrip) {
  std::vector<unsigned> Dims{2, 3, 4};
  for (uint64_t Id = 0; Id != 24; ++Id)
    EXPECT_EQ(mixedRadixId(mixedRadixCoords(Id, Dims), Dims), Id);
}

TEST(Classic, CompleteBinaryTreeShape) {
  Graph G = completeBinaryTree(4);
  EXPECT_EQ(G.numNodes(), 31u);
  EXPECT_EQ(G.numDirectedEdges(), 2u * 30);
  DistanceStats Stats = allPairsStats(G);
  EXPECT_EQ(Stats.Diameter, 8u); // leaf to leaf across the root.
}
