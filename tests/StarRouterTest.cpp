//===- tests/StarRouterTest.cpp - Star routing optimality ----------------===//

#include "routing/StarRouter.h"

#include "core/Generator.h"
#include "graph/Bfs.h"
#include "support/Format.h"

#include "graph/Metrics.h"
#include "networks/Explicit.h"
#include "perm/Lehmer.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(StarRouter, IdentityNeedsNoMoves) {
  EXPECT_TRUE(starWordForPermutation(Permutation::identity(5)).empty());
  EXPECT_EQ(starDistance(Permutation::identity(5)), 0u);
}

TEST(StarRouter, SingleTransposition) {
  // T_3 itself: one hop.
  Permutation P = Permutation::parseOneBased("3 2 1 4");
  EXPECT_EQ(starDistance(P), 1u);
  EXPECT_EQ(starWordForPermutation(P), (std::vector<unsigned>{3}));
}

TEST(StarRouter, WordRealizesThePermutation) {
  SplitMix64 Rng(11);
  for (int Trial = 0; Trial != 300; ++Trial) {
    unsigned K = 3 + Rng.nextBelow(6);
    Permutation P = unrankPermutation(Rng.nextBelow(factorial(K)), K);
    Permutation Product = Permutation::identity(K);
    for (unsigned Dim : starWordForPermutation(P)) {
      ASSERT_GE(Dim, 2u);
      ASSERT_LE(Dim, K);
      Product = Product.compose(makeTransposition(K, Dim).Sigma);
    }
    EXPECT_EQ(Product, P);
  }
}

TEST(StarRouter, DistanceMatchesBfsOnAllOfS5) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  Graph G = Net.toGraph();
  BfsResult R = bfs(G, 0); // distances from the identity.
  for (uint64_t Rank = 0; Rank != factorial(5); ++Rank) {
    Permutation P = unrankPermutation(Rank, 5);
    // Route identity -> P: word for identity^-1 o P = P.
    EXPECT_EQ(starDistance(P), R.Distance[Rank]) << P.str();
    EXPECT_EQ(starWordForPermutation(P).size(), R.Distance[Rank]) << P.str();
  }
}

TEST(StarRouter, DistanceMatchesBfsOnAllOfS6) {
  ExplicitScg Net(SuperCayleyGraph::star(6));
  Graph G = Net.toGraph();
  BfsResult R = bfs(G, 0);
  for (uint64_t Rank = 0; Rank != factorial(6); ++Rank) {
    Permutation P = unrankPermutation(Rank, 6);
    EXPECT_EQ(starDistance(P), R.Distance[Rank]);
  }
}

TEST(StarRouter, RouteBetweenArbitraryLabels) {
  Permutation Src = Permutation::parseOneBased("2 3 1 5 4");
  Permutation Dst = Permutation::parseOneBased("5 1 4 2 3");
  std::vector<unsigned> Dims = starRouteDimensions(Src, Dst);
  Permutation Cur = Src;
  for (unsigned Dim : Dims)
    Cur = Cur.compose(makeTransposition(5, Dim).Sigma);
  EXPECT_EQ(Cur, Dst);
  EXPECT_EQ(Dims.size(), starDistance(Src, Dst));
}

TEST(StarRouter, DistanceIsSymmetric) {
  SplitMix64 Rng(23);
  for (int Trial = 0; Trial != 200; ++Trial) {
    unsigned K = 4 + Rng.nextBelow(4);
    Permutation A = unrankPermutation(Rng.nextBelow(factorial(K)), K);
    Permutation B = unrankPermutation(Rng.nextBelow(factorial(K)), K);
    EXPECT_EQ(starDistance(A, B), starDistance(B, A));
  }
}

TEST(StarRouter, MaxDistanceEqualsDiameterFormula) {
  for (unsigned K = 3; K <= 7; ++K) {
    unsigned Max = 0;
    for (uint64_t Rank = 0; Rank != factorial(K); ++Rank)
      Max = std::max(Max, starDistance(unrankPermutation(Rank, K)));
    EXPECT_EQ(Max, 3 * (K - 1) / 2) << "k=" << K;
  }
}
