//===- tests/GroupOrderTest.cpp - Schreier-Sims tests --------------------===//
//
// The stabilizer chain certifies that every super Cayley graph generator
// set generates the full symmetric group -- i.e. the network really has
// k! nodes and is strongly connected -- including at paper-scale
// parameters far beyond what BFS can enumerate.
//
//===----------------------------------------------------------------------===//

#include "perm/GroupOrder.h"

#include "core/SuperCayleyGraph.h"
#include "perm/Lehmer.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

std::vector<Permutation> actionsOf(const SuperCayleyGraph &Net) {
  std::vector<Permutation> Actions;
  for (const Generator &G : Net.generators())
    Actions.push_back(G.Sigma);
  return Actions;
}

} // namespace

TEST(GroupOrder, TrivialGroup) {
  EXPECT_EQ(permutationGroupOrder({}), 1u);
}

TEST(GroupOrder, SingleTransposition) {
  EXPECT_EQ(permutationGroupOrder({makeTransposition(5, 2).Sigma}), 2u);
}

TEST(GroupOrder, CyclicRotationGroup) {
  // R alone generates the cyclic group of box rotations: order l.
  for (unsigned L : {3u, 4u, 5u}) {
    Permutation R = makeRotation(2 * L + 1, 2, 1).Sigma;
    EXPECT_EQ(permutationGroupOrder({R}), L) << "l=" << L;
  }
}

TEST(GroupOrder, SwapsAloneGenerateBoxSymmetries) {
  // S_2..S_l generate S_{l-1}... acting on boxes 2..l with box 1 swappable:
  // the swaps generate the full symmetric group on the l boxes: order l!.
  unsigned L = 4, N = 2, K = L * N + 1;
  std::vector<Permutation> Swaps;
  for (unsigned I = 2; I <= L; ++I)
    Swaps.push_back(makeSwap(K, N, I).Sigma);
  EXPECT_EQ(permutationGroupOrder(Swaps), factorial(L));
}

TEST(GroupOrder, StarGeneratorsGiveFullSymmetricGroup) {
  for (unsigned K = 3; K <= 9; ++K) {
    SuperCayleyGraph Star = SuperCayleyGraph::star(K);
    EXPECT_EQ(permutationGroupOrder(actionsOf(Star)), factorial(K));
    EXPECT_TRUE(generatesSymmetricGroup(actionsOf(Star)));
  }
}

TEST(GroupOrder, AdjacentTranspositionsGenerateSk) {
  EXPECT_TRUE(
      generatesSymmetricGroup(actionsOf(SuperCayleyGraph::bubbleSort(7))));
}

TEST(GroupOrder, EvenSubgroupHasHalfOrder) {
  // Two disjoint 3-cycles generate only even permutations.
  Permutation A = Permutation::fromOneLine({1, 2, 0, 3, 4, 5});
  Permutation B = Permutation::fromOneLine({0, 1, 2, 4, 5, 3});
  uint64_t Order = permutationGroupOrder({A, B});
  EXPECT_LE(Order, factorial(6) / 2);
  EXPECT_FALSE(generatesSymmetricGroup({A, B}));
}

TEST(GroupOrder, ContainsMembershipQueries) {
  StabilizerChain Chain(actionsOf(SuperCayleyGraph::star(5)));
  EXPECT_TRUE(Chain.contains(Permutation::parseOneBased("5 4 3 2 1")));
  StabilizerChain Cyclic({makeRotation(7, 2, 1).Sigma});
  EXPECT_TRUE(Cyclic.contains(makeRotation(7, 2, 2).Sigma));
  EXPECT_FALSE(Cyclic.contains(makeTransposition(7, 2).Sigma));
}

TEST(GroupOrder, AllNetworkClassesGenerateSk) {
  // Every class at (l,n) = (3,2): connectivity certificate for k = 7.
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS}) {
    SuperCayleyGraph Net = SuperCayleyGraph::create(Kind, 3, 2);
    EXPECT_TRUE(generatesSymmetricGroup(actionsOf(Net))) << Net.name();
  }
}

TEST(GroupOrder, PaperScaleConnectivityCertificates) {
  // Far beyond BFS reach: MS(4,3) on 13 symbols (Figure 1a), MS(5,3) on
  // 16 symbols (Figure 1b), and a 31-symbol complete-RIS.
  EXPECT_TRUE(generatesSymmetricGroup(
      actionsOf(SuperCayleyGraph::create(NetworkKind::MacroStar, 4, 3))));
  EXPECT_TRUE(generatesSymmetricGroup(
      actionsOf(SuperCayleyGraph::create(NetworkKind::MacroStar, 5, 3))));
  EXPECT_TRUE(generatesSymmetricGroup(actionsOf(
      SuperCayleyGraph::create(NetworkKind::CompleteRotationIS, 6, 5))));
}

TEST(GroupOrder, OrderMatchesBfsReachability) {
  // Cross-check the chain order against explicit enumeration for a
  // non-obvious subgroup: rotations + one swap.
  unsigned K = 7, N = 2;
  std::vector<Permutation> Gens{makeRotation(K, N, 1).Sigma,
                                makeSwap(K, N, 2).Sigma};
  // BFS closure over composition.
  std::vector<Permutation> Frontier{Permutation::identity(K)};
  std::unordered_map<Permutation, bool, PermutationHash> Seen;
  Seen.emplace(Frontier[0], true);
  while (!Frontier.empty()) {
    std::vector<Permutation> Next;
    for (const Permutation &P : Frontier)
      for (const Permutation &G : Gens) {
        Permutation Q = P.compose(G);
        if (Seen.emplace(Q, true).second)
          Next.push_back(std::move(Q));
      }
    Frontier = std::move(Next);
  }
  EXPECT_EQ(permutationGroupOrder(Gens), Seen.size());
}
