//===- tests/CollectivesTest.cpp - Broadcast/scatter/gather tests --------===//

#include "comm/Collectives.h"

#include "graph/Metrics.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

struct Fixture {
  ExplicitScg Net;
  BroadcastTree Tree;
  explicit Fixture(SuperCayleyGraph Scg) : Net(std::move(Scg)), Tree(Net) {}
};

} // namespace

TEST(Collectives, AllPortBroadcastFinishesAtTreeHeight) {
  for (auto Scg : {SuperCayleyGraph::star(5),
                   SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2)}) {
    Fixture F(Scg);
    CollectiveResult R = simulateBroadcast(F.Net, F.Tree);
    EXPECT_EQ(R.Steps, F.Tree.height()) << Scg.name();
    EXPECT_DOUBLE_EQ(R.Ratio, 1.0) << Scg.name();
  }
}

TEST(Collectives, BroadcastHeightEqualsDiameter) {
  Fixture F(SuperCayleyGraph::insertionSelection(5));
  DistanceStats Stats = vertexTransitiveStats(F.Net.toGraph());
  CollectiveResult R = simulateBroadcast(F.Net, F.Tree);
  EXPECT_EQ(R.Steps, Stats.Diameter);
}

TEST(Collectives, SinglePortBroadcastIsSlowerButBounded) {
  Fixture F(SuperCayleyGraph::star(5));
  CollectiveResult AllPort = simulateBroadcast(F.Net, F.Tree);
  CollectiveResult OnePort =
      simulateBroadcast(F.Net, F.Tree, CommModel::SinglePort);
  EXPECT_GE(OnePort.Steps, AllPort.Steps);
  // A node forwards its <= degree children sequentially: at most a
  // degree-factor slowdown.
  EXPECT_LE(OnePort.Steps, AllPort.Steps * F.Net.degree());
}

TEST(Collectives, TreePathsReachTheirNodes) {
  Fixture F(SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2));
  for (NodeId W = 0; W < F.Net.numNodes(); W += 11) {
    NodeId At = 0;
    for (GenIndex G : F.Tree.pathFromRoot(W))
      At = F.Net.next(At, G);
    EXPECT_EQ(At, W);
  }
}

TEST(Collectives, ScatterMeetsSendBoundWithinConstant) {
  for (auto Scg : {SuperCayleyGraph::star(5),
                   SuperCayleyGraph::insertionSelection(5),
                   SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2)}) {
    Fixture F(Scg);
    CollectiveResult R = simulateScatter(F.Net, F.Tree);
    EXPECT_GE(R.Steps, R.LowerBound) << Scg.name();
    EXPECT_LE(R.Ratio, 3.0) << Scg.name();
  }
}

TEST(Collectives, GatherMeetsReceiveBoundWithinConstant) {
  for (auto Scg : {SuperCayleyGraph::star(5),
                   SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2)}) {
    Fixture F(Scg);
    CollectiveResult R = simulateGather(F.Net, F.Tree);
    EXPECT_GE(R.Steps, R.LowerBound) << Scg.name();
    EXPECT_LE(R.Ratio, 3.5) << Scg.name();
  }
}

TEST(Collectives, AllReduceSumsPhases) {
  Fixture F(SuperCayleyGraph::star(5));
  CollectiveResult Gather = simulateGather(F.Net, F.Tree);
  CollectiveResult Broadcast = simulateBroadcast(F.Net, F.Tree);
  CollectiveResult AllReduce = simulateAllReduce(F.Net, F.Tree);
  EXPECT_EQ(AllReduce.Steps, Gather.Steps + Broadcast.Steps);
  EXPECT_GE(AllReduce.Steps, AllReduce.LowerBound);
  EXPECT_LE(AllReduce.Ratio, 3.5);
}

TEST(Collectives, SinglePortScatterBoundIsNMinusOne) {
  Fixture F(SuperCayleyGraph::star(4));
  CollectiveResult R =
      simulateScatter(F.Net, F.Tree, CommModel::SinglePort);
  EXPECT_EQ(R.LowerBound, F.Net.numNodes() - 1);
  EXPECT_GE(R.Steps, R.LowerBound);
}
