//===- tests/EmbeddingTest.cpp - Embedding framework tests ---------------===//

#include "embedding/Embedding.h"

#include "embedding/PathTemplates.h"
#include "perm/Lehmer.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

/// A 2-node guest mapped onto a star edge.
Embedding edgeEmbedding(const SuperCayleyGraph &Star) {
  Embedding E;
  E.Host = &Star;
  Permutation Id = Permutation::identity(Star.numSymbols());
  E.NodeMap = {Id, Id.compose(Star.generators()[0].Sigma)};
  const SuperCayleyGraph *Host = &Star;
  E.Route = [Host](NodeId U, NodeId) {
    GeneratorPath Path;
    (void)Host;
    (void)U;
    Path.append(0); // T_2 is an involution: works in both directions.
    return Path;
  };
  return E;
}

} // namespace

TEST(Embedding, SingleEdgeMetrics) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(4);
  Graph Guest(2);
  Guest.addUndirectedEdge(0, 1);
  EmbeddingMetrics M = measureEmbedding(Guest, edgeEmbedding(Star));
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Load, 1u);
  EXPECT_EQ(M.Dilation, 1u);
  EXPECT_EQ(M.Congestion, 1u);
  EXPECT_DOUBLE_EQ(M.Expansion, 12.0);
  EXPECT_DOUBLE_EQ(M.AverageRouteLength, 1.0);
}

TEST(Embedding, DetectsBrokenRoutes) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(4);
  Embedding E = edgeEmbedding(Star);
  E.Route = [](NodeId, NodeId) {
    GeneratorPath Path;
    Path.append(1); // T_3 does not connect the mapped endpoints.
    return Path;
  };
  Graph Guest(2);
  Guest.addUndirectedEdge(0, 1);
  EXPECT_FALSE(measureEmbedding(Guest, E).Valid);
}

TEST(Embedding, LoadCountsCollisions) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(4);
  Embedding E;
  E.Host = &Star;
  Permutation Id = Permutation::identity(4);
  E.NodeMap = {Id, Id, Id};
  E.Route = [](NodeId, NodeId) { return GeneratorPath(); };
  Graph Guest(3); // no edges.
  EmbeddingMetrics M = measureEmbedding(Guest, E);
  EXPECT_EQ(M.Load, 3u);
  EXPECT_EQ(M.Dilation, 0u);
}

TEST(Embedding, CongestionAccumulatesOnSharedLinks) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(4);
  // Three guest nodes all routed through the identity's T_2 link.
  Embedding E;
  E.Host = &Star;
  Permutation Id = Permutation::identity(4);
  Permutation V = Id.compose(Star.generators()[0].Sigma);
  E.NodeMap = {Id, V, Id, V};
  E.Route = [](NodeId U, NodeId) {
    GeneratorPath Path;
    (void)U;
    Path.append(0);
    return Path;
  };
  Graph Guest(4);
  Guest.addEdge(0, 1);
  Guest.addEdge(2, 3);
  EmbeddingMetrics M = measureEmbedding(Guest, E);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Congestion, 2u); // both directed edges share (Id, T_2).
}

TEST(Embedding, IdentityNodeMapEnumeratesByRank) {
  std::vector<Permutation> Map = identityNodeMap(4);
  ASSERT_EQ(Map.size(), factorial(4));
  for (uint64_t R = 0; R != Map.size(); ++R)
    EXPECT_EQ(rankPermutation(Map[R]), R);
}
