//===- tests/SimulatorPropertyTest.cpp - Conservation properties ---------===//
//
// Randomized invariants of the packet simulator across networks and
// models: packets are conserved, transmissions equal total hop counts,
// completion dominates the longest route and the per-link load, and the
// all-port model is never slower than single-port.
//
//===----------------------------------------------------------------------===//

#include "comm/Simulator.h"

#include "perm/Lehmer.h"
#include "routing/BagSolver.h"
#include "support/Format.h"

#include <gtest/gtest.h>

#include <map>

using namespace scg;

namespace {

struct Workload {
  std::vector<std::pair<NodeId, std::vector<GenIndex>>> Packets;
  uint64_t TotalHops = 0;
  unsigned LongestRoute = 0;
  uint64_t MaxLinkLoad = 0;
};

/// Random valid routes (random generator words) from random sources.
Workload makeWorkload(const ExplicitScg &Net, unsigned Count,
                      uint64_t Seed) {
  SplitMix64 Rng(Seed);
  Workload W;
  std::map<std::pair<NodeId, GenIndex>, uint64_t> Load;
  for (unsigned P = 0; P != Count; ++P) {
    NodeId Src = Rng.nextBelow(Net.numNodes());
    unsigned Len = 1 + Rng.nextBelow(6);
    std::vector<GenIndex> Route;
    NodeId At = Src;
    for (unsigned H = 0; H != Len; ++H) {
      GenIndex G = Rng.nextBelow(Net.degree());
      Route.push_back(G);
      W.MaxLinkLoad = std::max(W.MaxLinkLoad, ++Load[{At, G}]);
      At = Net.next(At, G);
    }
    W.TotalHops += Len;
    W.LongestRoute = std::max(W.LongestRoute, Len);
    W.Packets.push_back({Src, std::move(Route)});
  }
  return W;
}

SimulationResult runWorkload(const ExplicitScg &Net, const Workload &W,
                             CommModel Model) {
  NetworkSimulator Sim(Net, Model);
  for (const auto &[Src, Route] : W.Packets)
    Sim.injectPacket(Src, Route);
  return Sim.run(/*MaxSteps=*/1000000);
}

} // namespace

TEST(SimulatorProperty, ConservationAcrossModels) {
  for (auto Scg : {SuperCayleyGraph::star(5),
                   SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2),
                   SuperCayleyGraph::create(NetworkKind::MacroRotator, 2, 2)}) {
    ExplicitScg Net(Scg);
    for (uint64_t Seed : {1ull, 2ull, 3ull}) {
      Workload W = makeWorkload(Net, 300, Seed);
      for (CommModel Model :
           {CommModel::AllPort, CommModel::SinglePort,
            CommModel::SingleDimension}) {
        SimulationResult R = runWorkload(Net, W, Model);
        ASSERT_TRUE(R.Completed) << Scg.name();
        EXPECT_EQ(R.Delivered, W.Packets.size()) << Scg.name();
        EXPECT_EQ(R.Transmissions, W.TotalHops) << Scg.name();
        EXPECT_GE(R.Steps, W.LongestRoute) << Scg.name();
      }
    }
  }
}

TEST(SimulatorProperty, AllPortDominatesSinglePort) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  for (uint64_t Seed : {11ull, 12ull, 13ull, 14ull}) {
    Workload W = makeWorkload(Net, 500, Seed);
    uint64_t AllPort = runWorkload(Net, W, CommModel::AllPort).Steps;
    uint64_t OnePort = runWorkload(Net, W, CommModel::SinglePort).Steps;
    EXPECT_LE(AllPort, OnePort);
  }
}

TEST(SimulatorProperty, CompletionDominatesLinkLoad) {
  ExplicitScg Net(SuperCayleyGraph::insertionSelection(5));
  for (uint64_t Seed : {21ull, 22ull}) {
    Workload W = makeWorkload(Net, 400, Seed);
    SimulationResult R = runWorkload(Net, W, CommModel::AllPort);
    EXPECT_GE(R.Steps, W.MaxLinkLoad);
  }
}

TEST(SimulatorProperty, SdcNeverBeatsDegreeTimesFewerSteps) {
  // Under SDC only one generator fires per step, so completion is at
  // least the total per-generator demand.
  ExplicitScg Net(SuperCayleyGraph::star(4));
  Workload W = makeWorkload(Net, 100, 31);
  SimulationResult Sdc = runWorkload(Net, W, CommModel::SingleDimension);
  SimulationResult All = runWorkload(Net, W, CommModel::AllPort);
  EXPECT_GE(Sdc.Steps, All.Steps);
}
