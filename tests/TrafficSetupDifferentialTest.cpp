//===- tests/TrafficSetupDifferentialTest.cpp - Batched == legacy --------===//
//
// The batched, label-deduped, arena-backed route setup is a pure
// optimization: simulateTrafficLoad with BatchedSetup must produce the
// SAME TrafficLoadResult -- every field except the wall-clock
// SetupSeconds -- as the legacy serial per-pair loop, across families,
// communication models, engines, and thread counts. The closed-loop
// source rides the same harness: step and event engines must agree on
// every deferral, and results must be byte-identical at 1, 2, and 8
// threads (the parallel batch chunking is a function of the batch length
// only, never the thread count).
//
//===----------------------------------------------------------------------===//

#include "comm/Workload.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

WorkloadSpec uniformAt(double Rate, uint64_t Seed = 31) {
  WorkloadSpec Spec;
  Spec.Kind = WorkloadKind::UniformRandom;
  Spec.InjectionRate = Rate;
  Spec.Seed = Seed;
  return Spec;
}

/// Every deterministic field of the driver result (SetupSeconds is wall
/// clock and explicitly outside the contract).
void expectSameLoad(const TrafficLoadResult &A, const TrafficLoadResult &B,
                    const char *What) {
  EXPECT_EQ(A.Sim.Steps, B.Sim.Steps) << What;
  EXPECT_EQ(A.Sim.Delivered, B.Sim.Delivered) << What;
  EXPECT_EQ(A.Sim.Transmissions, B.Sim.Transmissions) << What;
  EXPECT_EQ(A.Sim.BusyLinkSteps, B.Sim.BusyLinkSteps) << What;
  EXPECT_EQ(A.Sim.MaxQueueLength, B.Sim.MaxQueueLength) << What;
  EXPECT_EQ(A.Sim.Completed, B.Sim.Completed) << What;
  EXPECT_EQ(A.Sim.DeferredInjections, B.Sim.DeferredInjections) << What;
  EXPECT_EQ(A.Sim.DeferredSteps, B.Sim.DeferredSteps) << What;
  EXPECT_EQ(A.Sim.LinkUtilization, B.Sim.LinkUtilization) << What;
  EXPECT_EQ(A.Offered, B.Offered) << What;
  EXPECT_EQ(A.OfferedRate, B.OfferedRate) << What;
  EXPECT_EQ(A.DeliveredRate, B.DeliveredRate) << What;
  EXPECT_EQ(A.MeanHops, B.MeanHops) << What;
  EXPECT_EQ(A.MeanLatency, B.MeanLatency) << What;
  EXPECT_EQ(A.P50Latency, B.P50Latency) << What;
  EXPECT_EQ(A.P99Latency, B.P99Latency) << What;
  EXPECT_EQ(A.MeanQueued, B.MeanQueued) << What;
  EXPECT_EQ(A.DistinctLabels, B.DistinctLabels) << What;
  EXPECT_EQ(A.DedupFactor, B.DedupFactor) << What;
}

struct NetCase {
  SuperCayleyGraph Family;
  double Rate;
  uint64_t Steps;
};

std::vector<NetCase> diffCases() {
  return {{SuperCayleyGraph::star(4), 0.15, 200},
          {SuperCayleyGraph::transpositionNetwork(4), 0.15, 200},
          {SuperCayleyGraph::insertionSelection(4), 0.15, 200},
          {SuperCayleyGraph::star(5), 0.20, 100},
          {SuperCayleyGraph::star(6), 0.20, 40}};
}

} // namespace

TEST(TrafficSetupDifferential, BatchedMatchesLegacyAcrossFamiliesModels) {
  for (const NetCase &C : diffCases()) {
    ExplicitScg Net(C.Family);
    for (CommModel Model :
         {CommModel::AllPort, CommModel::SinglePort,
          CommModel::SingleDimension}) {
      TrafficLoadOptions Batched;
      TrafficLoadOptions Legacy;
      Legacy.BatchedSetup = false;
      TrafficLoadResult A = simulateTrafficLoad(Net, Model, uniformAt(C.Rate),
                                                C.Steps, Batched);
      TrafficLoadResult B = simulateTrafficLoad(Net, Model, uniformAt(C.Rate),
                                                C.Steps, Legacy);
      std::string What = C.Family.name() + "/" + commModelName(Model);
      expectSameLoad(A, B, What.c_str());
      // The dedup bookkeeping is shared by both paths and must be sane:
      // at most one distinct label per node (Cayley symmetry), at most
      // one per offered message.
      EXPECT_LE(A.DistinctLabels, uint64_t(Net.numNodes()));
      EXPECT_LE(A.DistinctLabels, A.Offered);
      if (A.DistinctLabels)
        EXPECT_DOUBLE_EQ(A.DedupFactor,
                         double(A.Offered) / double(A.DistinctLabels));
    }
  }
}

TEST(TrafficSetupDifferential, BatchedMatchesLegacyOnStepEngine) {
  // The batched arena feeds scheduleInjectionShared; the step engine walks
  // the same flat route pool through a different loop. Pin the pair that
  // the model sweep above does not cover: batched-vs-legacy under the
  // step engine.
  ExplicitScg Net(SuperCayleyGraph::star(5));
  TrafficLoadOptions Batched;
  Batched.Engine = SimEngine::Step;
  TrafficLoadOptions Legacy;
  Legacy.Engine = SimEngine::Step;
  Legacy.BatchedSetup = false;
  TrafficLoadResult A = simulateTrafficLoad(Net, CommModel::SinglePort,
                                            uniformAt(0.3), 150, Batched);
  TrafficLoadResult B = simulateTrafficLoad(Net, CommModel::SinglePort,
                                            uniformAt(0.3), 150, Legacy);
  expectSameLoad(A, B, "step engine");
}

TEST(TrafficSetupDifferential, BatchedSetupThreadCountInvariant) {
  // routeBatchRelative chunks by batch length only; the composed driver
  // result must be byte-identical at every thread count.
  ExplicitScg Net(SuperCayleyGraph::star(5));
  TrafficLoadOptions Opts;
  Opts.Shards = 4;
  setGlobalThreadCount(1);
  TrafficLoadResult Base = simulateTrafficLoad(Net, CommModel::SinglePort,
                                               uniformAt(0.25), 120, Opts);
  for (unsigned Threads : {2u, 8u}) {
    setGlobalThreadCount(Threads);
    TrafficLoadResult R = simulateTrafficLoad(Net, CommModel::SinglePort,
                                              uniformAt(0.25), 120, Opts);
    expectSameLoad(Base, R,
                   (std::to_string(Threads) + " threads").c_str());
  }
  setGlobalThreadCount(0);
}

TEST(TrafficSetupDifferential, ClosedLoopEngineAndThreadIdentity) {
  // Closed-loop admission (deferral, retry, depth accounting) must agree
  // between the step and event engines and across thread counts, in a
  // regime where throttling actually engages.
  ExplicitScg Net(SuperCayleyGraph::star(4));
  WorkloadSpec Spec = uniformAt(0.5);
  TrafficLoadOptions Step;
  Step.Engine = SimEngine::Step;
  Step.ClosedLoopMaxQueue = 2;
  TrafficLoadOptions Event;
  Event.ClosedLoopMaxQueue = 2;
  Event.Shards = 4;
  for (CommModel Model :
       {CommModel::AllPort, CommModel::SinglePort,
        CommModel::SingleDimension}) {
    setGlobalThreadCount(1);
    TrafficLoadResult A = simulateTrafficLoad(Net, Model, Spec, 200, Step);
    TrafficLoadResult B = simulateTrafficLoad(Net, Model, Spec, 200, Event);
    // Throttling must have engaged, or this test pins nothing.
    EXPECT_GT(A.Sim.DeferredInjections, 0u) << commModelName(Model);
    // Engines agree on everything except MeanQueued, whose "over active
    // steps" denominator is the engine's processed-step count by
    // definition (the event engine skips empty steps).
    EXPECT_EQ(A.Sim.Delivered, B.Sim.Delivered) << commModelName(Model);
    EXPECT_EQ(A.Sim.Transmissions, B.Sim.Transmissions)
        << commModelName(Model);
    EXPECT_EQ(A.Sim.MaxQueueLength, B.Sim.MaxQueueLength)
        << commModelName(Model);
    EXPECT_EQ(A.Sim.DeferredInjections, B.Sim.DeferredInjections)
        << commModelName(Model);
    EXPECT_EQ(A.Sim.DeferredSteps, B.Sim.DeferredSteps)
        << commModelName(Model);
    EXPECT_EQ(A.MeanLatency, B.MeanLatency) << commModelName(Model);
    EXPECT_EQ(A.P99Latency, B.P99Latency) << commModelName(Model);
    // And the event engine is thread-count invariant under closed loop.
    for (unsigned Threads : {2u, 8u}) {
      setGlobalThreadCount(Threads);
      TrafficLoadResult C = simulateTrafficLoad(Net, Model, Spec, 200, Event);
      expectSameLoad(B, C,
                     (commModelName(Model) + " @" + std::to_string(Threads))
                         .c_str());
    }
  }
  setGlobalThreadCount(0);
}
