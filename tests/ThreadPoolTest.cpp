//===- tests/ThreadPoolTest.cpp - Thread-pool property tests -------------===//
//
// Property-based coverage of the deterministic chunked parallel engine:
// randomized task counts and chunk sizes (deterministic SplitMix64),
// exactly-once execution, exception propagation, nested and empty
// submissions without deadlock, and parallelMapReduce == serial fold --
// byte-identical, including for floating-point reductions.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/BatchRunner.h"
#include "support/Format.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>

using namespace scg;

namespace {

/// Temporarily forces a SCG_THREADS value; restores the old state on exit.
class ScopedEnvThreads {
public:
  explicit ScopedEnvThreads(const char *Value) {
    const char *Old = std::getenv("SCG_THREADS");
    HadOld = Old != nullptr;
    if (HadOld)
      OldValue = Old;
    if (Value)
      setenv("SCG_THREADS", Value, /*overwrite=*/1);
    else
      unsetenv("SCG_THREADS");
  }
  ~ScopedEnvThreads() {
    if (HadOld)
      setenv("SCG_THREADS", OldValue.c_str(), 1);
    else
      unsetenv("SCG_THREADS");
  }

private:
  bool HadOld = false;
  std::string OldValue;
};

} // namespace

TEST(ThreadPool, RandomizedForExecutesEveryIndexExactlyOnce) {
  SplitMix64 Rng(0xC0FFEE);
  for (unsigned Trial = 0; Trial != 24; ++Trial) {
    uint64_t N = Rng.nextBelow(400);
    uint64_t Chunk = Rng.nextBelow(17); // 0 = default chunking.
    unsigned Threads = 1 + unsigned(Rng.nextBelow(8));
    ThreadPool Pool(Threads);
    ASSERT_EQ(Pool.numThreads(), Threads);

    std::vector<uint32_t> Hits(N, 0); // one writer per index.
    std::atomic<uint64_t> Total{0};
    Pool.parallelFor(
        0, N,
        [&](uint64_t I) {
          ++Hits[I];
          Total.fetch_add(1, std::memory_order_relaxed);
        },
        Chunk);
    EXPECT_EQ(Total.load(), N) << "trial " << Trial;
    for (uint64_t I = 0; I != N; ++I)
      ASSERT_EQ(Hits[I], 1u) << "trial " << Trial << " index " << I;
  }
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  SplitMix64 Rng(42);
  for (unsigned Trial = 0; Trial != 16; ++Trial) {
    uint64_t Begin = Rng.nextBelow(50);
    uint64_t N = Rng.nextBelow(300);
    uint64_t Chunk = 1 + Rng.nextBelow(31);
    ThreadPool Pool(1 + unsigned(Rng.nextBelow(6)));
    std::vector<uint32_t> Hits(N, 0);
    Pool.parallelForChunks(Begin, Begin + N, Chunk,
                           [&](uint64_t B, uint64_t E) {
                             ASSERT_LT(B, E);
                             ASSERT_LE(E - B, Chunk);
                             ASSERT_EQ((B - Begin) % Chunk, 0u);
                             for (uint64_t I = B; I != E; ++I)
                               ++Hits[I - Begin];
                           });
    for (uint64_t I = 0; I != N; ++I)
      ASSERT_EQ(Hits[I], 1u);
  }
}

TEST(ThreadPool, EmptySubmissionsAreNoOps) {
  ThreadPool Pool(4);
  unsigned Calls = 0;
  Pool.parallelFor(5, 5, [&](uint64_t) { ++Calls; });
  Pool.parallelFor(7, 3, [&](uint64_t) { ++Calls; });
  Pool.parallelForChunks(0, 0, 8, [&](uint64_t, uint64_t) { ++Calls; });
  EXPECT_EQ(Calls, 0u);
  // And the pool still works afterwards.
  std::atomic<unsigned> Ran{0};
  Pool.parallelFor(0, 10, [&](uint64_t) { ++Ran; });
  EXPECT_EQ(Ran.load(), 10u);
}

TEST(ThreadPool, NestedSubmissionsRunInlineWithoutDeadlock) {
  ThreadPool Pool(4);
  std::atomic<uint64_t> Inner{0};
  Pool.parallelFor(0, 8, [&](uint64_t) {
    // Nested region on the same pool: must run inline, not deadlock.
    Pool.parallelFor(0, 5, [&](uint64_t) {
      Inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(Inner.load(), 8u * 5u);
}

TEST(ThreadPool, DoublyNestedOnGlobalPool) {
  setGlobalThreadCount(3);
  std::atomic<uint64_t> Count{0};
  ThreadPool::global().parallelFor(0, 4, [&](uint64_t) {
    ThreadPool::global().parallelFor(0, 3, [&](uint64_t) {
      ThreadPool::global().parallelFor(0, 2, [&](uint64_t) {
        Count.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  setGlobalThreadCount(0);
  EXPECT_EQ(Count.load(), 4u * 3u * 2u);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  for (unsigned Threads : {1u, 2u, 8u}) {
    ThreadPool Pool(Threads);
    EXPECT_THROW(Pool.parallelFor(0, 100,
                                  [&](uint64_t I) {
                                    if (I == 37)
                                      throw std::runtime_error("boom");
                                  },
                                  /*ChunkSize=*/4),
                 std::runtime_error)
        << Threads << " threads";
    // The pool is reusable after a failed region.
    std::atomic<unsigned> Ran{0};
    Pool.parallelFor(0, 50, [&](uint64_t) {
      Ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(Ran.load(), 50u);
  }
}

TEST(ThreadPool, MapReduceMatchesSerialFold) {
  SplitMix64 Rng(2026);
  for (unsigned Trial = 0; Trial != 12; ++Trial) {
    uint64_t N = 1 + Rng.nextBelow(700);
    std::vector<uint64_t> Values(N);
    for (uint64_t &V : Values)
      V = Rng.nextBelow(1000000);
    uint64_t Expected = std::accumulate(Values.begin(), Values.end(),
                                        uint64_t(0));
    for (unsigned Threads : {1u, 2u, 5u}) {
      ThreadPool Pool(Threads);
      uint64_t Got = Pool.parallelMapReduce<uint64_t>(
          0, N, 0, [&](uint64_t I) { return Values[I]; },
          [](uint64_t A, uint64_t B) { return A + B; },
          Rng.nextBelow(2) ? 0 : 1 + Rng.nextBelow(64));
      EXPECT_EQ(Got, Expected) << "trial " << Trial;
    }
  }
}

TEST(ThreadPool, FloatingPointReductionIsByteIdenticalAcrossThreadCounts) {
  // The determinism contract: with the chunk size held fixed (here the
  // default, a function of N only), even a non-associative double sum must
  // come out bit-for-bit equal at every thread count.
  SplitMix64 Rng(7);
  uint64_t N = 1000;
  std::vector<double> Values(N);
  for (double &V : Values)
    V = double(Rng.next() % 100000) / 7.0;
  auto SumWith = [&](unsigned Threads) {
    ThreadPool Pool(Threads);
    return Pool.parallelMapReduce<double>(
        0, N, 0.0, [&](uint64_t I) { return Values[I]; },
        [](double A, double B) { return A + B; });
  };
  double Serial = SumWith(1);
  for (unsigned Threads : {2u, 3u, 8u}) {
    double Parallel = SumWith(Threads);
    EXPECT_EQ(std::memcmp(&Serial, &Parallel, sizeof(double)), 0)
        << Threads << " threads";
  }
}

TEST(ThreadPool, DefaultChunkSizeDependsOnlyOnRangeLength) {
  EXPECT_EQ(ThreadPool::defaultChunkSize(1), 1u);
  EXPECT_EQ(ThreadPool::defaultChunkSize(63), 1u);
  EXPECT_EQ(ThreadPool::defaultChunkSize(640), 10u);
  EXPECT_EQ(ThreadPool::defaultChunkSize(1u << 30), 1024u);
}

TEST(ThreadPool, ScgThreadsEnvControlsGlobalPool) {
  setGlobalThreadCount(0);
  {
    ScopedEnvThreads Env("1"); // forced serial mode.
    EXPECT_EQ(effectiveThreadCount(), 1u);
    EXPECT_EQ(ThreadPool::global().numThreads(), 1u);
  }
  {
    ScopedEnvThreads Env("3");
    EXPECT_EQ(threadCountFromEnv(), 3u);
    EXPECT_EQ(ThreadPool::global().numThreads(), 3u);
  }
  {
    ScopedEnvThreads Env("not-a-number");
    EXPECT_EQ(threadCountFromEnv(), 0u);
  }
  // Explicit override beats the environment.
  {
    ScopedEnvThreads Env("3");
    setGlobalThreadCount(2);
    EXPECT_EQ(effectiveThreadCount(), 2u);
    EXPECT_EQ(ThreadPool::global().numThreads(), 2u);
    setGlobalThreadCount(0);
  }
}

TEST(BatchRunner, ResultsComeBackInSubmissionOrder) {
  ThreadPool Pool(4);
  BatchRunner<uint64_t> Batch(Pool);
  for (uint64_t I = 0; I != 100; ++I)
    Batch.add([I] { return I * I; });
  EXPECT_EQ(Batch.size(), 100u);
  std::vector<uint64_t> Results = Batch.run();
  ASSERT_EQ(Results.size(), 100u);
  for (uint64_t I = 0; I != 100; ++I)
    EXPECT_EQ(Results[I], I * I);
  EXPECT_EQ(Batch.size(), 0u); // queue cleared; reusable.
  Batch.add([] { return uint64_t(7); });
  EXPECT_EQ(Batch.run().at(0), 7u);
}
