//===- tests/MsBfsHybridTest.cpp - Direction-optimizing engine pins ------===//
//
// The hybrid (direction-optimizing) MS-BFS engine is pinned against the
// push reference, which MsBfsTest.cpp pins against scalar bfs() -- so the
// chain scalar == push == hybrid closes over every family:
//
//  * msBfsHybrid / msBfsDistancesHybrid byte-identical to the push
//    engine's batches and rows on every network family at k = 5, star /
//    rotator at k = 6 (rotator is directed: the transpose really
//    differs), faulted and disconnected graphs, odd lane counts and
//    duplicated sources.
//  * msAllPairsStats: hybrid == push == byte-identical at SCG_THREADS
//    1/2/8 (the `parallel` label's determinism contract).
//  * distance.* counters: pinned values on star(6), byte-identical at
//    every thread count, and the pull pass must actually run.
//  * Engine-level allocation reuse: with a warm per-thread scratch, a
//    whole sweep's worth of batches performs zero heap allocations (the
//    operator-new interposer below counts every allocation in this
//    binary, same pattern as PermutationKernelTest).
//
//===----------------------------------------------------------------------===//

#include "graph/Faults.h"
#include "graph/Metrics.h"
#include "graph/MsBfs.h"
#include "networks/Classic.h"
#include "networks/Explicit.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <numeric>

using namespace scg;

//===----------------------------------------------------------------------===//
// Global allocation counter (see PermutationKernelTest.cpp): replacing
// operator new in this TU intercepts every heap allocation in the test
// binary, so snapshotting the counter around a batch loop proves the
// engines reuse warm scratch instead of reallocating per batch.
//===----------------------------------------------------------------------===//

static std::atomic<uint64_t> GHeapAllocations{0};

void *operator new(std::size_t Size) {
  ++GHeapAllocations;
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

/// Every network family the library implements, materialized at k = 5
/// (mirrors MsBfsTest::allFamiliesK5).
std::vector<SuperCayleyGraph> allFamiliesK5() {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(5));
  Nets.push_back(SuperCayleyGraph::bubbleSort(5));
  Nets.push_back(SuperCayleyGraph::transpositionNetwork(5));
  Nets.push_back(SuperCayleyGraph::rotator(5));
  Nets.push_back(SuperCayleyGraph::insertionSelection(5));
  Nets.push_back(
      SuperCayleyGraph::transpositionTree(5, {{1, 2}, {2, 3}, {2, 4}, {4, 5}}));
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS})
    Nets.push_back(SuperCayleyGraph::create(Kind, 2, 2));
  return Nets;
}

/// One batch, both engines: per-lane stats and full distance rows must be
/// byte-identical (not merely equal as graphs -- the acceptance bar).
void expectHybridMatchesPush(const Csr &C, const Csr &CT,
                             std::span<const NodeId> Sources,
                             const std::string &What) {
  MsBfsBatch Push = msBfs(C, Sources);
  MsBfsBatch Hybrid = msBfsHybrid(C, CT, Sources);
  EXPECT_EQ(Push.Eccentricity, Hybrid.Eccentricity) << What;
  EXPECT_EQ(Push.NumReached, Hybrid.NumReached) << What;
  EXPECT_EQ(Push.DistanceSum, Hybrid.DistanceSum) << What;
  EXPECT_EQ(msBfsDistances(C, Sources), msBfsDistancesHybrid(C, CT, Sources))
      << What;
}

/// All nodes of \p C as sources, chunked into 64-lane batches.
void expectAllSourcesMatch(const Csr &C, const std::string &What) {
  Csr CT = C.transpose();
  std::vector<NodeId> All(C.numNodes());
  std::iota(All.begin(), All.end(), 0);
  for (size_t Begin = 0; Begin < All.size(); Begin += MsBfsLanes) {
    size_t Count = std::min<size_t>(MsBfsLanes, All.size() - Begin);
    expectHybridMatchesPush(C, CT, std::span(All).subspan(Begin, Count),
                            What + " @" + std::to_string(Begin));
  }
}

bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

void expectSameStats(const DistanceStats &A, const DistanceStats &B,
                     const std::string &What) {
  EXPECT_EQ(A.Connected, B.Connected) << What;
  EXPECT_EQ(A.Diameter, B.Diameter) << What;
  EXPECT_TRUE(bitEqual(A.AverageDistance, B.AverageDistance)) << What;
}

template <typename Fn> auto withThreads(unsigned Threads, Fn &&F) {
  setGlobalThreadCount(Threads);
  auto Result = F();
  setGlobalThreadCount(0);
  return Result;
}

uint64_t counterValue(const MetricsRegistry &M, const std::string &Name) {
  const Metric *C = M.find(Name);
  return C ? uint64_t(C->value()) : 0;
}

TEST(MsBfsHybrid, MatchesPushOnEveryFamilyFullSourceSet) {
  for (const SuperCayleyGraph &Scg : allFamiliesK5())
    expectAllSourcesMatch(ExplicitScg(Scg).toCsr(), Scg.name());
}

TEST(MsBfsHybrid, MatchesPushAtK6) {
  // Larger undirected instance (720 nodes, 12 batches) and the directed
  // rotator, where the transpose genuinely differs from the forward CSR.
  expectAllSourcesMatch(ExplicitScg(SuperCayleyGraph::star(6)).toCsr(),
                        "star6");
  expectAllSourcesMatch(ExplicitScg(SuperCayleyGraph::rotator(6)).toCsr(),
                        "rotator6 (directed)");
}

TEST(MsBfsHybrid, OddSourceCountsAndDuplicates) {
  Csr C = ExplicitScg(SuperCayleyGraph::star(5)).toCsr();
  Csr CT = C.transpose();
  std::vector<NodeId> Scattered;
  for (NodeId I = 0; I != 63; ++I)
    Scattered.push_back((I * 37 + 11) % C.numNodes());
  Scattered[20] = Scattered[3]; // duplicated source on two lanes.
  for (size_t Count : {size_t(1), size_t(2), size_t(37), size_t(63),
                       size_t(Scattered.size())})
    expectHybridMatchesPush(C, CT, std::span(Scattered).first(Count),
                            "star5 scattered " + std::to_string(Count));
}

TEST(MsBfsHybrid, FaultedAndDisconnectedGraphs) {
  // Faulted star(5): node + link failures leave an irregular survivor.
  ExplicitScg Net(SuperCayleyGraph::star(5));
  Graph G = Net.toGraph();
  FaultSet Faults;
  Faults.failNode(7);
  Faults.failNode(63);
  Faults.failLink(0, G.neighbors(0)[0]);
  Graph Surviving = applyFaults(G, Faults);
  expectAllSourcesMatch(Csr(Surviving), "faulted star5");
  MsSweepOptions PushOpts{MsBfsEngine::Push, nullptr};
  Csr C(Surviving);
  expectSameStats(msAllPairsStats(C), msAllPairsStats(C, PushOpts),
                  "faulted star5 sweep");

  // Two components plus an isolated node: unreached lanes stay
  // unreachable and the sweep reports Connected = false on both engines.
  Graph Two(8);
  for (NodeId I = 0; I + 1 != 4; ++I)
    Two.addUndirectedEdge(I, I + 1);
  Two.addUndirectedEdge(4, 5);
  Two.addUndirectedEdge(5, 6);
  Two.addUndirectedEdge(6, 4);
  Csr TwoCsr(Two);
  expectAllSourcesMatch(TwoCsr, "two components");
  EXPECT_FALSE(msAllPairsStats(TwoCsr).Connected);
  EXPECT_FALSE(msAllPairsStats(TwoCsr, PushOpts).Connected);
}

TEST(MsBfsHybrid, SweepEnginesByteIdenticalAcrossThreadCounts) {
  for (const SuperCayleyGraph &Scg :
       {SuperCayleyGraph::star(6), SuperCayleyGraph::rotator(6),
        SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2)}) {
    Csr C = ExplicitScg(Scg).toCsr();
    MsSweepOptions PushOpts{MsBfsEngine::Push, nullptr};
    DistanceStats Ref =
        withThreads(1, [&] { return msAllPairsStats(C, PushOpts); });
    for (unsigned Threads : {1u, 2u, 8u}) {
      expectSameStats(Ref, withThreads(Threads, [&] {
                        return msAllPairsStats(C, PushOpts);
                      }),
                      Scg.name() + " push @" + std::to_string(Threads));
      expectSameStats(Ref, withThreads(Threads, [&] {
                        return msAllPairsStats(C);
                      }),
                      Scg.name() + " hybrid @" + std::to_string(Threads));
    }
  }
}

TEST(MsBfsHybrid, SweepCountersPinnedAndThreadInvariant) {
  // star(6): 720 nodes = one full 512-lane fused group + a 208-lane tail,
  // i.e. 8 + 4 64-lane batch equivalents. The mid-sweep frontier covers
  // most of the graph, so the heuristic must actually pull and switch.
  Csr C = ExplicitScg(SuperCayleyGraph::star(6)).toCsr();
  auto Run = [&](unsigned Threads) {
    MetricsRegistry Registry;
    MsSweepOptions Opts{MsBfsEngine::Hybrid, &Registry};
    withThreads(Threads, [&] { return msAllPairsStats(C, Opts); });
    MsBfsCounters Counters;
    Counters.Batches = counterValue(Registry, "distance.batches");
    Counters.PushLevels = counterValue(Registry, "distance.push_levels");
    Counters.PullLevels = counterValue(Registry, "distance.pull_levels");
    Counters.PushWords = counterValue(Registry, "distance.push_words");
    Counters.PullWords = counterValue(Registry, "distance.pull_words");
    Counters.DirectionSwitches =
        counterValue(Registry, "distance.direction_switches");
    return Counters;
  };
  MsBfsCounters Serial = Run(1);
  EXPECT_EQ(Serial.Batches, 12u);
  EXPECT_GT(Serial.PushLevels, 0u);
  EXPECT_GT(Serial.PullLevels, 0u);
  EXPECT_GE(Serial.DirectionSwitches, 1u);
  EXPECT_GT(Serial.PushWords, 0u);
  EXPECT_GT(Serial.PullWords, 0u);
  for (unsigned Threads : {2u, 8u}) {
    MsBfsCounters Parallel = Run(Threads);
    EXPECT_EQ(Serial.Batches, Parallel.Batches) << Threads;
    EXPECT_EQ(Serial.PushLevels, Parallel.PushLevels) << Threads;
    EXPECT_EQ(Serial.PullLevels, Parallel.PullLevels) << Threads;
    EXPECT_EQ(Serial.PushWords, Parallel.PushWords) << Threads;
    EXPECT_EQ(Serial.PullWords, Parallel.PullWords) << Threads;
    EXPECT_EQ(Serial.DirectionSwitches, Parallel.DirectionSwitches)
        << Threads;
  }
}

TEST(MsBfsHybrid, WarmBatchesAreAllocationFree) {
  // A sweep runs tens of thousands of batches through one warm scratch
  // per worker; per-batch heap growth would reintroduce the malloc storm
  // support/Scratch.h exists to prevent. One cold batch per engine warms
  // the buffers (and proves warm results match cold ones), then a full
  // all-sources pass must not allocate at all. Sinks accumulate into
  // locals, so any allocation counted here is engine-internal.
  Csr C = ExplicitScg(SuperCayleyGraph::star(5)).toCsr();
  Csr CT = C.transpose();
  const NodeId N = C.numNodes();
  std::vector<NodeId> All(N);
  std::iota(All.begin(), All.end(), 0);
  MsBfsScratch PushScratch, HybridScratch;
  uint64_t ColdSum = 0, ColdVisits = 0;
  auto RunAll = [&](uint64_t &Sum, uint64_t &VisitCount) {
    for (size_t Begin = 0; Begin < All.size(); Begin += MsBfsLanes) {
      size_t Count = std::min<size_t>(MsBfsLanes, All.size() - Begin);
      auto Chunk = std::span(All).subspan(Begin, Count);
      auto Tally = [&](NodeId, uint64_t Mask, uint32_t Level) {
        Sum += uint64_t(Level) * uint64_t(std::popcount(Mask));
        VisitCount += uint64_t(std::popcount(Mask));
      };
      msBfsCore(C, Chunk, Tally, &PushScratch);
      msBfsHybridCore(C, CT, Chunk, Tally, nullptr, &HybridScratch);
    }
  };
  RunAll(ColdSum, ColdVisits); // cold: buffers grow once.
  uint64_t WarmSum = 0, WarmVisits = 0;
  uint64_t Before = GHeapAllocations.load();
  RunAll(WarmSum, WarmVisits);
  uint64_t After = GHeapAllocations.load();
  EXPECT_EQ(After, Before) << "warm MS-BFS batches touched the heap";
  EXPECT_EQ(ColdSum, WarmSum);
  EXPECT_EQ(ColdVisits, WarmVisits);
  EXPECT_EQ(WarmVisits, uint64_t(N) * N * 2); // both engines, connected.
}

} // namespace
