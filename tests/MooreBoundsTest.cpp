//===- tests/MooreBoundsTest.cpp - Degree-diameter bound tests -----------===//

#include "graph/MooreBounds.h"

#include "graph/Metrics.h"
#include "networks/Explicit.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(MooreBounds, BallSizes) {
  // Undirected degree 3: 1, 1+3, 1+3+6, 1+3+6+12.
  EXPECT_EQ(mooreBallSize(3, 0, false), 1u);
  EXPECT_EQ(mooreBallSize(3, 1, false), 4u);
  EXPECT_EQ(mooreBallSize(3, 2, false), 10u);
  EXPECT_EQ(mooreBallSize(3, 3, false), 22u);
  // Directed degree 2: 1, 3, 7, 15.
  EXPECT_EQ(mooreBallSize(2, 3, true), 15u);
}

TEST(MooreBounds, DegreeOneIsAPath) {
  // Undirected degree 1: ball never exceeds 2.
  EXPECT_EQ(mooreBallSize(1, 5, false), 2u);
}

TEST(MooreBounds, DiameterBoundOnKnownGraphs) {
  // The Petersen graph meets the Moore bound: 10 nodes, degree 3,
  // diameter 2.
  EXPECT_EQ(mooreDiameterLowerBound(3, 10, false), 2u);
  // Complete graph: diameter 1.
  EXPECT_EQ(mooreDiameterLowerBound(4, 5, false), 1u);
  // Single node: 0.
  EXPECT_EQ(mooreDiameterLowerBound(3, 1, false), 0u);
}

TEST(MooreBounds, DiameterBoundIsValidOnAllClasses) {
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroIS}) {
    SuperCayleyGraph Scg = SuperCayleyGraph::create(Kind, 3, 2);
    ExplicitScg Net(Scg);
    DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
    unsigned Bound = mooreDiameterLowerBound(Scg.degree(), Net.numNodes(),
                                             !Scg.isUndirected());
    EXPECT_LE(Bound, Stats.Diameter) << Scg.name();
  }
}

TEST(MooreBounds, StarDiameterWithinSmallFactorOfBound) {
  // The star graph's diameter floor(3(k-1)/2) is within a small factor of
  // DL(k-1, k!) -- the "optimal diameter given degree" claim.
  for (unsigned K = 4; K <= 7; ++K) {
    SuperCayleyGraph Star = SuperCayleyGraph::star(K);
    unsigned Diameter = 3 * (K - 1) / 2;
    unsigned Bound =
        mooreDiameterLowerBound(Star.degree(), Star.numNodes(), false);
    EXPECT_GE(Bound, 1u);
    EXPECT_LE(Diameter, 3 * Bound) << "k=" << K;
  }
}

TEST(MooreBounds, MeanDistanceBoundIsValid) {
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::CompleteRotationIS}) {
    SuperCayleyGraph Scg = SuperCayleyGraph::create(Kind, 3, 2);
    ExplicitScg Net(Scg);
    DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
    double Bound = mooreMeanDistanceLowerBound(
        Scg.degree(), Net.numNodes(), !Scg.isUndirected());
    EXPECT_LE(Bound, Stats.AverageDistance + 1e-9) << Scg.name();
    EXPECT_GT(Bound, 1.0) << Scg.name();
  }
}

TEST(MooreBounds, MeanDistanceMonotoneInSize) {
  double Small = mooreMeanDistanceLowerBound(4, 100, false);
  double Large = mooreMeanDistanceLowerBound(4, 10000, false);
  EXPECT_LT(Small, Large);
}

TEST(MooreBounds, SaturationOnHugeRadii) {
  EXPECT_EQ(mooreBallSize(10, 64, true),
            std::numeric_limits<uint64_t>::max());
}
