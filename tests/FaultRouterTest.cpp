//===- tests/FaultRouterTest.cpp - Container router tests ----------------===//

#include "routing/FaultRouter.h"

#include "graph/Bfs.h"
#include "graph/Containers.h"
#include "routing/StarRouter.h"
#include "support/Format.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace scg;

namespace {

/// True when U and V are star-adjacent: one-line words equal except
/// positions 1 and j (1-based) swapped, for some j >= 2.
bool starAdjacent(const Permutation &U, const Permutation &V) {
  if (U.size() != V.size() || U[0] == V[0])
    return false;
  unsigned Mismatches = 0, Swapped = 0;
  for (unsigned P = 1; P != U.size(); ++P)
    if (U[P] != V[P]) {
      ++Mismatches;
      if (U[P] == V[0] && V[P] == U[0])
        ++Swapped;
    }
  return Mismatches == 1 && Swapped == 1;
}

/// Label-space container validity: k-1 paths, star-adjacent consecutive
/// hops, internal disjointness, shortest path first.
void expectValidStarContainer(const Permutation &Src, const Permutation &Dst,
                              const StarContainer &Container) {
  ASSERT_TRUE(Container.Complete);
  ASSERT_EQ(Container.Paths.size(), Src.size() - 1);
  unsigned Dist = starDistance(Src, Dst);
  std::unordered_set<Permutation, PermutationHash> Internals;
  for (const std::vector<Permutation> &Path : Container.Paths) {
    ASSERT_GE(Path.size(), 2u);
    EXPECT_EQ(Path.front(), Src);
    EXPECT_EQ(Path.back(), Dst);
    EXPECT_LE(Path.size() - 1, Dist + 8u);
    for (size_t I = 0; I + 1 < Path.size(); ++I)
      EXPECT_TRUE(starAdjacent(Path[I], Path[I + 1]));
    for (size_t I = 1; I + 1 < Path.size(); ++I) {
      EXPECT_NE(Path[I], Src);
      EXPECT_NE(Path[I], Dst);
      EXPECT_TRUE(Internals.insert(Path[I]).second)
          << "internal node shared between container paths";
    }
  }
  EXPECT_EQ(Container.Paths.front().size() - 1, Dist)
      << "first container path must be a shortest route";
  for (size_t I = 0; I + 1 < Container.Paths.size(); ++I)
    EXPECT_LE(Container.Paths[I].size(), Container.Paths[I + 1].size());
}

Permutation randomPermutation(SplitMix64 &Rng, unsigned K) {
  std::vector<uint8_t> Word(K);
  for (unsigned I = 0; I != K; ++I)
    Word[I] = uint8_t(I);
  for (unsigned I = K; I > 1; --I)
    std::swap(Word[I - 1], Word[Rng.nextBelow(I)]);
  return Permutation::fromOneLine(std::move(Word));
}

} // namespace

TEST(StarContainer, ExhaustiveAllPairsK4) {
  // Every ordered pair of star(4): generator construction completes, is a
  // valid maximum container, and matches the max-flow width (Menger).
  ExplicitScg Net(SuperCayleyGraph::star(4));
  Graph G = Net.toGraph();
  for (NodeId Src = 0; Src != Net.numNodes(); ++Src)
    for (NodeId Dst = 0; Dst != Net.numNodes(); ++Dst) {
      if (Src == Dst)
        continue;
      StarContainer Container =
          buildStarContainer(Net.label(Src), Net.label(Dst));
      expectValidStarContainer(Net.label(Src), Net.label(Dst), Container);
      // Cross-validate in NodeId space against the graph and the oracle.
      std::vector<std::vector<NodeId>> Ranked;
      for (const std::vector<Permutation> &Path : Container.Paths) {
        std::vector<NodeId> Ids;
        for (const Permutation &Label : Path)
          Ids.push_back(Net.rankOf(Label));
        Ranked.push_back(std::move(Ids));
      }
      EXPECT_TRUE(internallyNodeDisjoint(Ranked));
      for (const std::vector<NodeId> &Path : Ranked)
        EXPECT_TRUE(isSimplePath(G, Path));
      EXPECT_EQ(Ranked.size(), localConnectivity(G, Src, Dst));
    }
}

TEST(StarContainer, SampledPairsK5AndK6) {
  SplitMix64 Rng(0xC0FFEE);
  for (unsigned K : {5u, 6u}) {
    for (unsigned Trial = 0; Trial != (K == 5 ? 40u : 12u); ++Trial) {
      Permutation Src = randomPermutation(Rng, K);
      Permutation Dst = randomPermutation(Rng, K);
      if (Src == Dst)
        continue;
      expectValidStarContainer(Src, Dst, buildStarContainer(Src, Dst));
    }
  }
}

TEST(StarContainer, GraphFreeAtK12) {
  // 12! nodes -- hopeless to materialize, trivial for the generator
  // construction. 11 disjoint paths between a random far pair.
  SplitMix64 Rng(7);
  Permutation Src = Permutation::identity(12);
  Permutation Dst = randomPermutation(Rng, 12);
  ASSERT_NE(Src, Dst);
  expectValidStarContainer(Src, Dst, buildStarContainer(Src, Dst));
}

TEST(FaultRouter, DispatchesPerFamily) {
  ExplicitScg Star(SuperCayleyGraph::star(5));
  FaultRouter OnStar(Star);
  PathContainer C = OnStar.buildContainer(1, Star.numNodes() - 1);
  EXPECT_EQ(C.Construction, PathContainer::Method::StarGenerator);
  EXPECT_EQ(C.width(), 4u);

  ExplicitScg Bubble(SuperCayleyGraph::bubbleSort(4));
  FaultRouter BubbleRouter(Bubble);
  PathContainer B = BubbleRouter.buildContainer(0, Bubble.numNodes() / 2);
  EXPECT_EQ(B.Construction, PathContainer::Method::MaxFlow);
  EXPECT_EQ(B.width(), 3u);
}

TEST(FaultRouter, DeliversIffSomePathSurvives) {
  // Kill the middle link of every subset of container paths: delivery
  // exactly when the subset is proper, via the shortest surviving path.
  ExplicitScg Net(SuperCayleyGraph::star(4));
  FaultRouter Router(Net);
  PathContainer C = Router.buildContainer(2, 17);
  ASSERT_EQ(C.width(), 3u);
  for (unsigned Mask = 0; Mask != 8; ++Mask) {
    FaultSet Faults;
    for (unsigned P = 0; P != 3; ++P)
      if (Mask & (1u << P)) {
        const std::vector<NodeId> &Path = C.Paths[P];
        size_t Mid = Path.size() / 2;
        Faults.failLink(Path[Mid - 1], Path[Mid]);
      }
    FaultRouteResult Result = Router.route(C, Faults);
    EXPECT_EQ(Result.Delivered, Mask != 7u) << "mask " << Mask;
    EXPECT_EQ(Result.FaultFreeHops, C.shortestLength());
    if (Result.Delivered) {
      unsigned FirstSurvivor = 0;
      while (Mask & (1u << FirstSurvivor))
        ++FirstSurvivor;
      EXPECT_EQ(Result.PathsTried, FirstSurvivor + 1);
      EXPECT_EQ(Result.RouteLength, C.Paths[FirstSurvivor].size() - 1);
    } else {
      EXPECT_EQ(Result.PathsTried, 3u);
      EXPECT_EQ(Result.RouteLength, 0u);
    }
  }
}

TEST(FaultRouter, HopAccountingChargesBacktracks) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  FaultRouter Router(Net);
  PathContainer C = Router.buildContainer(0, Net.numNodes() - 1);
  ASSERT_GE(C.width(), 2u);
  ASSERT_GE(C.Paths[0].size(), 3u);

  // Fault-free: exactly the shortest path, one try, no overhead.
  FaultRouteResult Clean = Router.route(C, FaultSet());
  EXPECT_TRUE(Clean.Delivered);
  EXPECT_EQ(Clean.PathsTried, 1u);
  EXPECT_EQ(Clean.HopsTraversed, C.shortestLength());
  EXPECT_EQ(Clean.RouteLength, C.shortestLength());

  // Break path 0 after its first hop: the probe walks 1 hop out, 1 back,
  // then delivers over path 1.
  FaultSet Faults;
  Faults.failLink(C.Paths[0][1], C.Paths[0][2]);
  FaultRouteResult Result = Router.route(C, Faults);
  EXPECT_TRUE(Result.Delivered);
  EXPECT_EQ(Result.PathsTried, 2u);
  EXPECT_EQ(Result.RouteLength, C.Paths[1].size() - 1);
  EXPECT_EQ(Result.HopsTraversed, 2u + unsigned(C.Paths[1].size() - 1));
}

TEST(FaultRouter, DeadEndpointIsNotRoutable) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  FaultRouter Router(Net);
  PathContainer C = Router.buildContainer(3, 11);
  FaultSet SrcDead, DstDead;
  SrcDead.failNode(3);
  DstDead.failNode(11);
  for (const FaultSet *Faults : {&SrcDead, &DstDead}) {
    FaultRouteResult Result = Router.route(C, *Faults);
    EXPECT_FALSE(Result.Delivered);
    EXPECT_EQ(Result.PathsTried, 0u);
    EXPECT_EQ(Result.HopsTraversed, 0u);
  }
}

TEST(FaultRouter, RandomizedDeliveryMatchesSurvivorEnumeration) {
  // 200 random fault sets on star(5): the router's verdict must equal the
  // brute-force "does any container path fully survive" check, and a
  // delivered route is never cheaper than the fault-free one.
  ExplicitScg Net(SuperCayleyGraph::star(5));
  FaultRouter Router(Net);
  const Graph &G = Router.graph();
  SplitMix64 Rng(0xFA157);
  PathContainer C = Router.buildContainer(5, Net.numNodes() - 7);
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    FaultSet Faults;
    unsigned NumLinkFaults = 1 + unsigned(Rng.nextBelow(24));
    for (unsigned F = 0; F != NumLinkFaults; ++F) {
      NodeId From = NodeId(Rng.nextBelow(G.numNodes()));
      NodeId To = G.neighbors(From)[Rng.nextBelow(G.outDegree(From))];
      Faults.failLink(From, To);
    }
    if (Rng.nextBelow(4) == 0)
      Faults.failNode(NodeId(Rng.nextBelow(G.numNodes())));

    bool AnySurvivor = false;
    if (!Faults.nodeFailed(C.Src) && !Faults.nodeFailed(C.Dst))
      for (const std::vector<NodeId> &Path : C.Paths) {
        bool Intact = true;
        for (size_t I = 0; I + 1 < Path.size() && Intact; ++I)
          Intact = !Faults.linkFailed(Path[I], Path[I + 1]) &&
                   !Faults.nodeFailed(Path[I + 1]);
        AnySurvivor = AnySurvivor || Intact;
      }
    FaultRouteResult Result = Router.route(C, Faults);
    EXPECT_EQ(Result.Delivered, AnySurvivor);
    if (Result.Delivered)
      EXPECT_GE(Result.HopsTraversed, Result.FaultFreeHops);
  }
}
