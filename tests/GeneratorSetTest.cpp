//===- tests/GeneratorSetTest.cpp - Generator set semantics --------------===//

#include "core/GeneratorSet.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(GeneratorSet, AddDeduplicatesSameActionAndName) {
  GeneratorSet Set;
  GenIndex A = Set.add(makeTransposition(5, 3));
  GenIndex B = Set.add(makeTransposition(5, 3));
  EXPECT_EQ(A, B);
  EXPECT_EQ(Set.size(), 1u);
}

TEST(GeneratorSet, ParallelLinksKeepDistinctNames) {
  // I_2 and I_2^-1 share the action but are distinct physical links (the
  // paper counts degree as the number of generators in the definition).
  GeneratorSet Set;
  GenIndex Ins = Set.add(makeInsertion(5, 2));
  GenIndex Sel = Set.add(makeSelection(5, 2));
  EXPECT_NE(Ins, Sel);
  EXPECT_EQ(Set.size(), 2u);
  EXPECT_EQ(Set[Ins].Sigma, Set[Sel].Sigma);
}

TEST(GeneratorSet, RotationNormalizationDeduplicates) {
  // In RS(2,n), R^-1 normalizes to R: same action, same name.
  GeneratorSet Set;
  GenIndex A = Set.add(makeRotation(5, 2, 1));
  GenIndex B = Set.add(makeRotation(5, 2, -1));
  EXPECT_EQ(A, B);
}

TEST(GeneratorSet, FindByName) {
  GeneratorSet Set;
  Set.add(makeTransposition(5, 2));
  Set.add(makeTransposition(5, 3));
  ASSERT_TRUE(Set.findByName("T3"));
  EXPECT_EQ(*Set.findByName("T3"), 1u);
  EXPECT_FALSE(Set.findByName("T9"));
}

TEST(GeneratorSet, FindByActionPrefersEarliest) {
  GeneratorSet Set;
  GenIndex Ins = Set.add(makeInsertion(5, 2));
  Set.add(makeSelection(5, 2));
  auto Found = Set.findByAction(makeInsertion(5, 2).Sigma);
  ASSERT_TRUE(Found);
  EXPECT_EQ(*Found, Ins);
}

TEST(GeneratorSet, FindLinkMatchesNameFirst) {
  GeneratorSet Set;
  Set.add(makeInsertion(5, 2));
  GenIndex Sel = Set.add(makeSelection(5, 2));
  auto Found = Set.findLink(makeSelection(5, 2));
  ASSERT_TRUE(Found);
  EXPECT_EQ(*Found, Sel);
}

TEST(GeneratorSet, FindLinkFallsBackToAction) {
  GeneratorSet Set;
  GenIndex Ins = Set.add(makeInsertion(5, 2));
  // No "I2'" in the set: the selection request resolves to the involution.
  auto Found = Set.findLink(makeSelection(5, 2));
  ASSERT_TRUE(Found);
  EXPECT_EQ(*Found, Ins);
}

TEST(GeneratorSet, InverseOf) {
  GeneratorSet Set;
  GenIndex Ins = Set.add(makeInsertion(5, 4));
  EXPECT_FALSE(Set.inverseOf(Ins));
  GenIndex Sel = Set.add(makeSelection(5, 4));
  ASSERT_TRUE(Set.inverseOf(Ins));
  EXPECT_EQ(*Set.inverseOf(Ins), Sel);
  EXPECT_EQ(*Set.inverseOf(Sel), Ins);
}

TEST(GeneratorSet, SymmetryDetection) {
  GeneratorSet Sym;
  Sym.add(makeTransposition(5, 2));
  Sym.add(makeTransposition(5, 4));
  EXPECT_TRUE(Sym.isSymmetric()); // involutions are self-inverse.

  GeneratorSet Asym;
  Asym.add(makeInsertion(5, 4));
  EXPECT_FALSE(Asym.isSymmetric());
}

TEST(GeneratorSet, NumSymbols) {
  GeneratorSet Set;
  EXPECT_EQ(Set.numSymbols(), 0u);
  Set.add(makeTransposition(6, 2));
  EXPECT_EQ(Set.numSymbols(), 6u);
}
