//===- tests/StarEmbeddingSweepTest.cpp - E14 parameter sweep ------------===//
//
// Parameterized sweep of the Section 3 star-embedding numbers across the
// four box classes and several (l, n): exact dilation and congestion
// measured against the paper's constants on every host small enough to
// enumerate.
//
//===----------------------------------------------------------------------===//

#include "embedding/StarEmbeddings.h"

#include "networks/Explicit.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

struct SweepParams {
  NetworkKind Kind;
  unsigned L, N;
};

std::string sweepName(const testing::TestParamInfo<SweepParams> &Info) {
  std::string Name = networkKindName(Info.param.Kind) + "_" +
                     std::to_string(Info.param.L) + "_" +
                     std::to_string(Info.param.N);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

std::vector<SweepParams> grid() {
  std::vector<SweepParams> Grid;
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::CompleteRotationStar,
        NetworkKind::MacroIS, NetworkKind::CompleteRotationIS})
    for (auto [L, N] : {std::pair{2u, 2u}, {3u, 2u}, {2u, 3u}, {6u, 1u}})
      Grid.push_back({Kind, L, N});
  return Grid;
}

} // namespace

class StarEmbeddingSweep : public testing::TestWithParam<SweepParams> {};

TEST_P(StarEmbeddingSweep, MeasuredMetricsMatchSection3) {
  auto [Kind, L, N] = GetParam();
  SuperCayleyGraph Host = SuperCayleyGraph::create(Kind, L, N);
  SuperCayleyGraph Star = SuperCayleyGraph::star(Host.numSymbols());
  Graph Guest = ExplicitScg(Star).toGraph();
  EmbeddingMetrics M = measureEmbedding(Guest, embedStarInto(Star, Host));
  ASSERT_TRUE(M.Valid) << Host.name();
  EXPECT_EQ(M.Load, 1u) << Host.name();
  EXPECT_DOUBLE_EQ(M.Expansion, 1.0) << Host.name();
  // Dilation: the paper constant, except that hosts with n = 1 have a
  // single-hop nucleus (no selection needed), trimming IS-nucleus paths.
  unsigned Dilation = paperStarDilationBound(Host);
  if (N == 1 && (Kind == NetworkKind::MacroIS ||
                 Kind == NetworkKind::CompleteRotationIS))
    Dilation -= 1;
  EXPECT_EQ(M.Dilation, Dilation) << Host.name();
  EXPECT_EQ(M.Congestion, paperStarCongestionBound(Host)) << Host.name();
}

TEST_P(StarEmbeddingSweep, PerDimensionCongestionIsTwoOrOne) {
  auto [Kind, L, N] = GetParam();
  SuperCayleyGraph Host = SuperCayleyGraph::create(Kind, L, N);
  bool SwapHost =
      Kind == NetworkKind::MacroStar || Kind == NetworkKind::MacroIS;
  for (unsigned Dim = 2; Dim <= Host.numSymbols(); ++Dim) {
    uint64_t C = starDimensionCongestion(Host, Dim);
    if (Dim <= N + 1) {
      EXPECT_EQ(C, 1u) << Host.name() << " dim " << Dim;
      continue;
    }
    // The paper's "only 2": exact on swap hosts, where the bring and
    // return share the involution S_b; complete-rotation hosts split
    // those two uses over R^{-j1} and R^{j1} and do one better (1)
    // whenever the two rotations are distinct links.
    EXPECT_LE(C, 2u) << Host.name() << " dim " << Dim;
    if (SwapHost)
      EXPECT_EQ(C, 2u) << Host.name() << " dim " << Dim;
  }
}

INSTANTIATE_TEST_SUITE_P(Section3, StarEmbeddingSweep,
                         testing::ValuesIn(grid()), sweepName);
