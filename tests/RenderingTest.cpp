//===- tests/RenderingTest.cpp - Output rendering coverage ---------------===//
//
// Pins the human-facing renderings: path strings, BAG box views, the
// Figure 1 grid, and path tracing -- the outputs the examples and benches
// present to users.
//
//===----------------------------------------------------------------------===//

#include "emulation/FigureOne.h"
#include "emulation/ScgRouter.h"
#include "routing/Path.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(Rendering, PathStringUsesGeneratorNames) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  GeneratorPath Path(std::vector<GenIndex>{
      *Ms.generators().findByName("S2"), *Ms.generators().findByName("T3"),
      *Ms.generators().findByName("S2")});
  EXPECT_EQ(Path.str(Ms), "S2 T3 S2");
  EXPECT_EQ(GeneratorPath().str(Ms), "");
}

TEST(Rendering, TraceListsEveryVisitedNode) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  Permutation Start = Permutation::identity(5);
  GeneratorPath Path(std::vector<GenIndex>{0, 1, 0});
  std::vector<Permutation> Nodes = Ms.neighbors(Start); // force build.
  (void)Nodes;
  std::vector<Permutation> Trace = Path.trace(Ms, Start);
  ASSERT_EQ(Trace.size(), 4u);
  EXPECT_EQ(Trace.front(), Start);
  EXPECT_EQ(Trace.back(), Path.endpoint(Ms, Start));
  for (unsigned I = 0; I + 1 != Trace.size(); ++I)
    EXPECT_EQ(Trace[I + 1], Ms.neighbor(Trace[I], Path.hops()[I]));
}

TEST(Rendering, NetEffectOfEmptyPathIsIdentity) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(4);
  EXPECT_TRUE(GeneratorPath().netEffect(Star).isIdentity());
}

TEST(Rendering, BoxViewSeparatesBoxes) {
  Permutation P = Permutation::parseOneBased("7 2 3 4 5 6 1");
  EXPECT_EQ(P.strBoxes(3), "7 | 2 3 4 | 5 6 1");
  EXPECT_EQ(P.strBoxes(2), "7 | 2 3 | 4 5 | 6 1");
}

TEST(Rendering, ScheduleGridHasOneRowPerStep) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  AllPortSchedule Schedule = buildAllPortSchedule(Ms);
  std::string Grid = renderSchedule(Ms, Schedule);
  // Header + rule + one row per step.
  size_t Lines = std::count(Grid.begin(), Grid.end(), '\n');
  EXPECT_EQ(Lines, 2 + Schedule.Makespan);
  EXPECT_NE(Grid.find("j=5"), std::string::npos);
  EXPECT_NE(Grid.find("step"), std::string::npos);
}

TEST(Rendering, FigureOneMentionsPaperBound) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2);
  std::string Text = renderFigureOne(Ms);
  EXPECT_NE(Text.find("paper bound 4"), std::string::npos);
  EXPECT_NE(Text.find("average utilization"), std::string::npos);
}

TEST(Rendering, FigureOneUtilizationIsConsistent) {
  // Transmissions / slots must match the printed percentage's inputs.
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 5, 3);
  AllPortSchedule Schedule = buildAllPortSchedule(Ms);
  ScheduleStats Stats = computeScheduleStats(Ms, Schedule);
  EXPECT_EQ(Stats.Slots, uint64_t(Ms.degree()) * Schedule.Makespan);
  EXPECT_NEAR(Stats.AverageUtilization,
              double(Stats.Transmissions) / double(Stats.Slots), 1e-12);
}
