//===- tests/TrafficLoadTest.cpp - Open-loop saturation sanity -----------===//
//
// The open-loop driver against ground truth on star(4):
//
//   near-zero load    every delivered packet's latency equals its greedy
//                     (lifted optimal star) route hop count -- no queueing,
//                     so simulateTrafficLoad ties exactly to the router's
//                     distances
//   past saturation   delivered throughput plateaus at network capacity
//                     instead of collapsing as offered load keeps rising,
//                     and latency rises steeply -- the defining shape of a
//                     saturation curve
//
// Plus the closed-loop source (injection throttled by source-node queue
// depth): at near-zero load it degenerates to the open-loop result
// exactly, and at overload it bounds queue occupancy by deferring
// injections. Plus MetricsRegistry plumbing for the traffic.* metrics.
//
//===----------------------------------------------------------------------===//

#include "comm/Workload.h"

#include "support/Metrics.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

WorkloadSpec uniformAt(double Rate, uint64_t Seed = 12) {
  WorkloadSpec Spec;
  Spec.Kind = WorkloadKind::UniformRandom;
  Spec.InjectionRate = Rate;
  Spec.Seed = Seed;
  return Spec;
}

} // namespace

TEST(TrafficLoad, NearZeroRateLatencyEqualsGreedyHopCount) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  // ~0.002 packets/node/step: queues are essentially always empty, so
  // every packet walks its route uncontended and latency == hop count,
  // packet by packet (means equal exactly, not approximately).
  TrafficLoadResult R = simulateTrafficLoad(Net, CommModel::AllPort,
                                            uniformAt(0.002), 4000);
  ASSERT_GT(R.Offered, 50u);
  EXPECT_GT(R.Sim.Delivered, 0u);
  EXPECT_DOUBLE_EQ(R.MeanLatency, R.MeanHops);
  EXPECT_GE(R.P99Latency, R.P50Latency);
}

TEST(TrafficLoad, SinglePortNearZeroRateStillUncontended) {
  // Single-port serializes a node's ports, but at near-zero load a node
  // almost never holds two packets at once, so latency still equals hops.
  ExplicitScg Net(SuperCayleyGraph::star(4));
  TrafficLoadResult R = simulateTrafficLoad(Net, CommModel::SinglePort,
                                            uniformAt(0.0004), 12000);
  ASSERT_GT(R.Offered, 50u);
  EXPECT_DOUBLE_EQ(R.MeanLatency, R.MeanHops);
}

TEST(TrafficLoad, ThroughputPlateausPastSaturation) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  // Offered load far past saturation must not deliver less than moderate
  // overload: delivered throughput plateaus at capacity (a collapsing
  // simulator would show the 2x curve dropping).
  TrafficLoadResult Low = simulateTrafficLoad(Net, CommModel::SinglePort,
                                              uniformAt(0.05), 1500);
  TrafficLoadResult High = simulateTrafficLoad(Net, CommModel::SinglePort,
                                               uniformAt(0.40), 1500);
  TrafficLoadResult Extreme = simulateTrafficLoad(
      Net, CommModel::SinglePort, uniformAt(0.80), 1500);

  // Past saturation the network accepts less than offered...
  EXPECT_LT(High.DeliveredRate, High.OfferedRate * 0.95);
  // ...but keeps delivering near its plateau: doubling offered load again
  // must not collapse throughput. (A mild decline is real physics: under
  // FIFO round-robin, overload shifts service toward first-hop packets
  // that end the run as mid-flight inventory instead of deliveries.)
  EXPECT_GT(Extreme.DeliveredRate, High.DeliveredRate * 0.70);
  // And the plateau sits far above the uncongested delivered rate.
  EXPECT_GT(High.DeliveredRate, Low.DeliveredRate * 3.0);
  // Latency tells the same story from the other side.
  EXPECT_GT(High.MeanLatency, 2.0 * Low.MeanLatency);
  EXPECT_GT(High.MeanQueued, Low.MeanQueued);
}

TEST(TrafficLoad, ClosedLoopAtNearZeroLoadIsOpenLoop) {
  // With queues essentially always empty, the depth test never fires:
  // the closed-loop driver must reproduce the open-loop result exactly,
  // field for field, with zero deferrals.
  ExplicitScg Net(SuperCayleyGraph::star(4));
  TrafficLoadResult Open = simulateTrafficLoad(Net, CommModel::AllPort,
                                               uniformAt(0.002), 4000);
  TrafficLoadOptions Closed;
  Closed.ClosedLoopMaxQueue = 2;
  TrafficLoadResult R = simulateTrafficLoad(Net, CommModel::AllPort,
                                            uniformAt(0.002), 4000, Closed);
  EXPECT_EQ(R.Sim.DeferredInjections, 0u);
  EXPECT_EQ(R.Sim.DeferredSteps, 0u);
  EXPECT_EQ(R.Sim.Delivered, Open.Sim.Delivered);
  EXPECT_EQ(R.Sim.Transmissions, Open.Sim.Transmissions);
  EXPECT_EQ(R.Sim.Steps, Open.Sim.Steps);
  EXPECT_EQ(R.Sim.MaxQueueLength, Open.Sim.MaxQueueLength);
  EXPECT_EQ(R.MeanLatency, Open.MeanLatency);
  EXPECT_EQ(R.MeanQueued, Open.MeanQueued);
}

TEST(TrafficLoad, ClosedLoopBoundsQueueOccupancyAtOverload) {
  // Far past saturation the open-loop source piles queues without bound;
  // the closed-loop source must defer injections instead, keeping mean
  // occupancy well below open loop while actually exercising deferral.
  ExplicitScg Net(SuperCayleyGraph::star(4));
  TrafficLoadResult Open = simulateTrafficLoad(Net, CommModel::SinglePort,
                                               uniformAt(0.8), 1000);
  TrafficLoadOptions Closed;
  Closed.ClosedLoopMaxQueue = 3;
  TrafficLoadResult R = simulateTrafficLoad(Net, CommModel::SinglePort,
                                            uniformAt(0.8), 1000, Closed);
  EXPECT_GT(R.Sim.DeferredInjections, 0u);
  EXPECT_GT(R.Sim.DeferredSteps, R.Sim.DeferredInjections);
  EXPECT_LE(R.Sim.MaxQueueLength, Open.Sim.MaxQueueLength);
  EXPECT_LT(R.MeanQueued, Open.MeanQueued * 0.5);
  // Deferred traffic is offered but possibly never admitted: delivered
  // can only drop relative to open loop's everything-enters policy by
  // the amount still waiting, never grow past offered.
  EXPECT_LE(R.Sim.Delivered, R.Offered);
}

TEST(TrafficLoad, DedupStatisticsAreConsistent) {
  // Cayley symmetry: at most numNodes distinct relative labels however
  // long the trace runs, and the dedup factor is their ratio.
  ExplicitScg Net(SuperCayleyGraph::star(4));
  TrafficLoadResult R = simulateTrafficLoad(Net, CommModel::AllPort,
                                            uniformAt(0.4), 1500);
  ASSERT_GT(R.Offered, uint64_t(Net.numNodes()));
  EXPECT_GT(R.DistinctLabels, 0u);
  EXPECT_LE(R.DistinctLabels, uint64_t(Net.numNodes()));
  EXPECT_DOUBLE_EQ(R.DedupFactor,
                   double(R.Offered) / double(R.DistinctLabels));
  // A long uniform trace on 24 nodes revisits labels many times over.
  EXPECT_GT(R.DedupFactor, 5.0);
  EXPECT_GE(R.SetupSeconds, 0.0);
}

TEST(TrafficLoad, MetricsRegistryReceivesTrafficSeries) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  MetricsRegistry Reg;
  TrafficLoadOptions Options;
  Options.Registry = &Reg;
  TrafficLoadResult R = simulateTrafficLoad(Net, CommModel::AllPort,
                                            uniformAt(0.05), 500, Options);
  ASSERT_NE(Reg.find("traffic.offered"), nullptr);
  EXPECT_EQ(Reg.find("traffic.offered")->value(), double(R.Offered));
  EXPECT_EQ(Reg.find("traffic.delivered")->value(),
            double(R.Sim.Delivered));
  EXPECT_EQ(Reg.find("traffic.mean_latency")->value(), R.MeanLatency);
  EXPECT_EQ(Reg.find("traffic.p99_latency")->value(),
            double(R.P99Latency));
  EXPECT_EQ(Reg.find("traffic.max_queue_length")->value(),
            double(R.Sim.MaxQueueLength));
  // Setup and closed-loop telemetry flow through the same registry.
  ASSERT_NE(Reg.find("traffic.setup.distinct_labels"), nullptr);
  EXPECT_EQ(Reg.find("traffic.setup.distinct_labels")->value(),
            double(R.DistinctLabels));
  EXPECT_EQ(Reg.find("traffic.setup.events")->value(), double(R.Offered));
  EXPECT_EQ(Reg.find("traffic.setup.dedup_factor")->value(), R.DedupFactor);
  EXPECT_EQ(Reg.find("traffic.setup.batched")->value(), 1.0);
  // Open-loop run: the closed-loop series exist and sit at zero.
  ASSERT_NE(Reg.find("traffic.closedloop.deferred_injections"), nullptr);
  EXPECT_EQ(Reg.find("traffic.closedloop.deferred_injections")->value(), 0.0);
  EXPECT_EQ(Reg.find("traffic.closedloop.max_queue")->value(), 0.0);
}
