//===- tests/TrafficLoadTest.cpp - Open-loop saturation sanity -----------===//
//
// The open-loop driver against ground truth on star(4):
//
//   near-zero load    every delivered packet's latency equals its greedy
//                     (lifted optimal star) route hop count -- no queueing,
//                     so simulateTrafficLoad ties exactly to the router's
//                     distances
//   past saturation   delivered throughput plateaus at network capacity
//                     instead of collapsing as offered load keeps rising,
//                     and latency rises steeply -- the defining shape of a
//                     saturation curve
//
// Plus MetricsRegistry plumbing for the traffic.* metrics.
//
//===----------------------------------------------------------------------===//

#include "comm/Workload.h"

#include "support/Metrics.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

WorkloadSpec uniformAt(double Rate, uint64_t Seed = 12) {
  WorkloadSpec Spec;
  Spec.Kind = WorkloadKind::UniformRandom;
  Spec.InjectionRate = Rate;
  Spec.Seed = Seed;
  return Spec;
}

} // namespace

TEST(TrafficLoad, NearZeroRateLatencyEqualsGreedyHopCount) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  // ~0.002 packets/node/step: queues are essentially always empty, so
  // every packet walks its route uncontended and latency == hop count,
  // packet by packet (means equal exactly, not approximately).
  TrafficLoadResult R = simulateTrafficLoad(Net, CommModel::AllPort,
                                            uniformAt(0.002), 4000);
  ASSERT_GT(R.Offered, 50u);
  EXPECT_GT(R.Sim.Delivered, 0u);
  EXPECT_DOUBLE_EQ(R.MeanLatency, R.MeanHops);
  EXPECT_GE(R.P99Latency, R.P50Latency);
}

TEST(TrafficLoad, SinglePortNearZeroRateStillUncontended) {
  // Single-port serializes a node's ports, but at near-zero load a node
  // almost never holds two packets at once, so latency still equals hops.
  ExplicitScg Net(SuperCayleyGraph::star(4));
  TrafficLoadResult R = simulateTrafficLoad(Net, CommModel::SinglePort,
                                            uniformAt(0.0004), 12000);
  ASSERT_GT(R.Offered, 50u);
  EXPECT_DOUBLE_EQ(R.MeanLatency, R.MeanHops);
}

TEST(TrafficLoad, ThroughputPlateausPastSaturation) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  // Offered load far past saturation must not deliver less than moderate
  // overload: delivered throughput plateaus at capacity (a collapsing
  // simulator would show the 2x curve dropping).
  TrafficLoadResult Low = simulateTrafficLoad(Net, CommModel::SinglePort,
                                              uniformAt(0.05), 1500);
  TrafficLoadResult High = simulateTrafficLoad(Net, CommModel::SinglePort,
                                               uniformAt(0.40), 1500);
  TrafficLoadResult Extreme = simulateTrafficLoad(
      Net, CommModel::SinglePort, uniformAt(0.80), 1500);

  // Past saturation the network accepts less than offered...
  EXPECT_LT(High.DeliveredRate, High.OfferedRate * 0.95);
  // ...but keeps delivering near its plateau: doubling offered load again
  // must not collapse throughput. (A mild decline is real physics: under
  // FIFO round-robin, overload shifts service toward first-hop packets
  // that end the run as mid-flight inventory instead of deliveries.)
  EXPECT_GT(Extreme.DeliveredRate, High.DeliveredRate * 0.70);
  // And the plateau sits far above the uncongested delivered rate.
  EXPECT_GT(High.DeliveredRate, Low.DeliveredRate * 3.0);
  // Latency tells the same story from the other side.
  EXPECT_GT(High.MeanLatency, 2.0 * Low.MeanLatency);
  EXPECT_GT(High.MeanQueued, Low.MeanQueued);
}

TEST(TrafficLoad, MetricsRegistryReceivesTrafficSeries) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  MetricsRegistry Reg;
  TrafficLoadOptions Options;
  Options.Registry = &Reg;
  TrafficLoadResult R = simulateTrafficLoad(Net, CommModel::AllPort,
                                            uniformAt(0.05), 500, Options);
  ASSERT_NE(Reg.find("traffic.offered"), nullptr);
  EXPECT_EQ(Reg.find("traffic.offered")->value(), double(R.Offered));
  EXPECT_EQ(Reg.find("traffic.delivered")->value(),
            double(R.Sim.Delivered));
  EXPECT_EQ(Reg.find("traffic.mean_latency")->value(), R.MeanLatency);
  EXPECT_EQ(Reg.find("traffic.p99_latency")->value(),
            double(R.P99Latency));
  EXPECT_EQ(Reg.find("traffic.max_queue_length")->value(),
            double(R.Sim.MaxQueueLength));
}
