//===- tests/FaultCampaignTest.cpp - Monte Carlo campaign tests ----------===//

#include "routing/FaultCampaign.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

FaultCampaignOptions smallOptions() {
  FaultCampaignOptions Opts;
  Opts.Rates = {0.0, 0.02, 0.05, 0.10, 0.30};
  Opts.Trials = 64;
  Opts.Seed = 42;
  Opts.RouterPairs = 4;
  return Opts;
}

void expectPointsEqual(const FaultRatePoint &A, const FaultRatePoint &B) {
  EXPECT_EQ(A.Rate, B.Rate);
  EXPECT_EQ(A.Trials, B.Trials);
  EXPECT_EQ(A.MeanFaultsInjected, B.MeanFaultsInjected);
  EXPECT_EQ(A.ConnectedTrials, B.ConnectedTrials);
  EXPECT_EQ(A.ConnectedFraction, B.ConnectedFraction);
  EXPECT_EQ(A.MeanReachability, B.MeanReachability);
  EXPECT_EQ(A.MeanDiameterInflation, B.MeanDiameterInflation);
  EXPECT_EQ(A.WorstDiameter, B.WorstDiameter);
  EXPECT_EQ(A.RoutesAttempted, B.RoutesAttempted);
  EXPECT_EQ(A.RoutesDelivered, B.RoutesDelivered);
  EXPECT_EQ(A.DeliveryFraction, B.DeliveryFraction);
  EXPECT_EQ(A.MeanHopOverhead, B.MeanHopOverhead);
  EXPECT_EQ(A.MeanPathsTried, B.MeanPathsTried);
}

} // namespace

TEST(FaultCampaign, ByteIdenticalAtEveryThreadCount) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  FaultCampaignOptions Opts = smallOptions();
  setGlobalThreadCount(1);
  FaultCampaignResult Serial = runFaultCampaign(Net, Opts);
  for (unsigned Threads : {2u, 8u}) {
    setGlobalThreadCount(Threads);
    FaultCampaignResult Parallel = runFaultCampaign(Net, Opts);
    EXPECT_EQ(Serial.FaultFreeDiameter, Parallel.FaultFreeDiameter);
    EXPECT_EQ(Serial.MeanContainerWidth, Parallel.MeanContainerWidth);
    ASSERT_EQ(Serial.Points.size(), Parallel.Points.size());
    for (size_t P = 0; P != Serial.Points.size(); ++P)
      expectPointsEqual(Serial.Points[P], Parallel.Points[P]);
  }
  setGlobalThreadCount(0);
}

TEST(FaultCampaign, ZeroRateIsFaultFree) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  FaultCampaignResult Result = runFaultCampaign(Net, smallOptions());
  const FaultRatePoint &Clean = Result.Points.front();
  EXPECT_EQ(Clean.Rate, 0.0);
  EXPECT_EQ(Clean.MeanFaultsInjected, 0.0);
  EXPECT_EQ(Clean.ConnectedFraction, 1.0);
  EXPECT_EQ(Clean.MeanReachability, 1.0);
  EXPECT_EQ(Clean.MeanDiameterInflation, 1.0);
  EXPECT_EQ(Clean.WorstDiameter, Result.FaultFreeDiameter);
  EXPECT_EQ(Clean.DeliveryFraction, 1.0);
  EXPECT_EQ(Clean.MeanHopOverhead, 0.0);
  EXPECT_EQ(Clean.MeanPathsTried, 1.0);
  // star(4) containers come from the generator construction, all width 3.
  EXPECT_EQ(Result.StarGeneratorContainers, 4u);
  EXPECT_EQ(Result.MaxFlowContainers, 0u);
  EXPECT_EQ(Result.MeanContainerWidth, 3.0);
}

TEST(FaultCampaign, CoupledSamplingMakesCurvesMonotone) {
  // Common random numbers nest the fault sets along the rate ladder, so
  // every survival metric is monotone per trial, hence in the mean.
  ExplicitScg Net(SuperCayleyGraph::star(4));
  FaultCampaignResult Result = runFaultCampaign(Net, smallOptions());
  for (size_t P = 0; P + 1 < Result.Points.size(); ++P) {
    const FaultRatePoint &Lo = Result.Points[P], &Hi = Result.Points[P + 1];
    EXPECT_LE(Lo.MeanFaultsInjected, Hi.MeanFaultsInjected);
    EXPECT_GE(Lo.ConnectedFraction, Hi.ConnectedFraction);
    EXPECT_GE(Lo.MeanReachability, Hi.MeanReachability);
    // Link faults never kill endpoints, so attempts are constant and
    // delivery is monotone trial by trial.
    EXPECT_EQ(Lo.RoutesAttempted, Hi.RoutesAttempted);
    EXPECT_GE(Lo.RoutesDelivered, Hi.RoutesDelivered);
  }
}

TEST(FaultCampaign, SaturationRateKillsEverything) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  FaultCampaignOptions Opts = smallOptions();
  Opts.Rates = {1.0};
  FaultCampaignResult Result = runFaultCampaign(Net, Opts);
  const FaultRatePoint &Point = Result.Points.front();
  EXPECT_EQ(Point.MeanFaultsInjected, double(Result.Components));
  EXPECT_EQ(Point.ConnectedFraction, 0.0);
  EXPECT_EQ(Point.MeanReachability, 0.0);
  EXPECT_EQ(Point.DeliveryFraction, 0.0);
  // Every path of every container was probed and failed on hop one.
  EXPECT_EQ(Point.MeanPathsTried, 3.0);
}

TEST(FaultCampaign, NodeFaultCampaignSkipsDeadEndpoints) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  FaultCampaignOptions Opts = smallOptions();
  Opts.NodeFaults = true;
  Opts.Rates = {0.0, 0.2, 1.0};
  FaultCampaignResult Result = runFaultCampaign(Net, Opts);
  EXPECT_EQ(Result.Components, Result.Nodes);
  const FaultRatePoint &Clean = Result.Points[0];
  EXPECT_EQ(Clean.RoutesAttempted,
            uint64_t(Opts.Trials) * Opts.RouterPairs);
  EXPECT_EQ(Clean.DeliveryFraction, 1.0);
  // Dead endpoints shrink the attempt pool rather than scoring misses.
  const FaultRatePoint &Mid = Result.Points[1];
  EXPECT_LT(Mid.RoutesAttempted, Clean.RoutesAttempted);
  const FaultRatePoint &Dead = Result.Points[2];
  EXPECT_EQ(Dead.RoutesAttempted, 0u);
  EXPECT_EQ(Dead.MeanReachability, 0.0);
  EXPECT_EQ(Dead.ConnectedFraction, 0.0);
}

TEST(FaultCampaign, DirectedFamilyFailsArcs) {
  ExplicitScg Net(SuperCayleyGraph::rotator(4));
  FaultCampaignOptions Opts = smallOptions();
  Opts.Rates = {0.05};
  Opts.Trials = 16;
  FaultCampaignResult Result = runFaultCampaign(Net, Opts);
  // 24 nodes x degree 3 directed arcs, each failable independently.
  EXPECT_EQ(Result.Components, 72u);
  EXPECT_EQ(Result.StarGeneratorContainers, 0u);
  EXPECT_EQ(Result.MaxFlowContainers, 4u);
}
