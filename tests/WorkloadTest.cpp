//===- tests/WorkloadTest.cpp - Synthetic workload generators ------------===//
//
// Statistical and exactness properties of every WorkloadGenerator kind:
// uniform traffic hits all destinations within chi-square tolerance,
// hotspot traffic concentrates the configured fraction on the hot node,
// transpose and bit-reversal match their closed-form maps exactly, bursty
// arrivals realize the configured duty cycle and long-run rate, and
// identical seeds reproduce identical traces (while different seeds do
// not). All bounds are deterministic: the generators are seeded SplitMix64
// streams, so these are exact assertions on fixed traces, not flaky
// statistical tests.
//
//===----------------------------------------------------------------------===//

#include "comm/Workload.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <map>

using namespace scg;

namespace {

ExplicitScg star4() { return ExplicitScg(SuperCayleyGraph::star(4)); }

std::vector<TrafficEvent> generate(const ExplicitScg &Net,
                                   const WorkloadSpec &Spec, uint64_t Steps) {
  return WorkloadGenerator(Net, Spec).generate(Steps);
}

} // namespace

TEST(Workload, TraceIsSortedAndInRange) {
  ExplicitScg Net = star4();
  WorkloadSpec Spec;
  Spec.InjectionRate = 0.2;
  Spec.Seed = 3;
  std::vector<TrafficEvent> Trace = generate(Net, Spec, 100);
  ASSERT_FALSE(Trace.empty());
  for (size_t I = 0; I != Trace.size(); ++I) {
    EXPECT_LT(Trace[I].Step, 100u);
    EXPECT_LT(Trace[I].Src, Net.numNodes());
    EXPECT_LT(Trace[I].Dst, Net.numNodes());
    EXPECT_NE(Trace[I].Src, Trace[I].Dst) << "uniform excludes self";
    if (I)
      EXPECT_TRUE(Trace[I - 1].Step < Trace[I].Step ||
                  (Trace[I - 1].Step == Trace[I].Step &&
                   Trace[I - 1].Src < Trace[I].Src));
  }
}

TEST(Workload, UniformDestinationsPassChiSquare) {
  ExplicitScg Net = star4();
  WorkloadSpec Spec;
  Spec.InjectionRate = 0.5;
  Spec.Seed = 11;
  std::vector<TrafficEvent> Trace = generate(Net, Spec, 2000);

  // Destinations of one source are uniform over the other N-1 nodes.
  // Chi-square with 22 degrees of freedom: the 99.9% critical value is
  // ~48.3; a healthy uniform sample sits far below it.
  std::map<NodeId, std::vector<uint64_t>> PerSource;
  for (const TrafficEvent &E : Trace) {
    auto &Counts = PerSource[E.Src];
    Counts.resize(Net.numNodes());
    ++Counts[E.Dst];
  }
  ASSERT_EQ(PerSource.size(), Net.numNodes()) << "every node injects";
  for (auto &[Src, Counts] : PerSource) {
    uint64_t Total = 0;
    for (uint64_t C : Counts)
      Total += C;
    ASSERT_GE(Total, 500u);
    double Expected = double(Total) / (Net.numNodes() - 1);
    double Chi2 = 0.0;
    for (NodeId D = 0; D != Net.numNodes(); ++D) {
      if (D == Src) {
        EXPECT_EQ(Counts[D], 0u);
        continue;
      }
      double Diff = double(Counts[D]) - Expected;
      Chi2 += Diff * Diff / Expected;
    }
    EXPECT_LT(Chi2, 48.3) << "source " << Src;
  }
}

TEST(Workload, InjectionRateIsRealized) {
  ExplicitScg Net = star4();
  WorkloadSpec Spec;
  Spec.InjectionRate = 0.1;
  Spec.Seed = 17;
  uint64_t Steps = 5000;
  std::vector<TrafficEvent> Trace = generate(Net, Spec, Steps);
  double Rate = double(Trace.size()) / (double(Net.numNodes()) * Steps);
  EXPECT_NEAR(Rate, Spec.InjectionRate, 0.01);
}

TEST(Workload, HotspotConcentratesConfiguredFraction) {
  ExplicitScg Net = star4();
  WorkloadSpec Spec;
  Spec.Kind = WorkloadKind::Hotspot;
  Spec.InjectionRate = 0.5;
  Spec.Seed = 23;
  Spec.HotspotFraction = 0.6;
  Spec.HotspotNode = 5;
  std::vector<TrafficEvent> Trace = generate(Net, Spec, 2000);
  ASSERT_GT(Trace.size(), 10000u);
  uint64_t Hot = 0;
  for (const TrafficEvent &E : Trace)
    Hot += E.Dst == Spec.HotspotNode;
  double Fraction = double(Hot) / double(Trace.size());
  // The hot node also receives its share of the uniform remainder:
  // expected fraction f + (1-f)/(N-1), minus the hot node's own traffic
  // (it never targets itself). Allow generous slack around that.
  double ExpectedLow = Spec.HotspotFraction * 0.9 *
                       (1.0 - 1.0 / Net.numNodes());
  EXPECT_GT(Fraction, ExpectedLow);
  EXPECT_LT(Fraction, 0.75);
}

TEST(Workload, TransposeMatchesClosedForm) {
  ExplicitScg Net = star4();
  WorkloadSpec Spec;
  Spec.Kind = WorkloadKind::Transpose;
  Spec.InjectionRate = 0.3;
  Spec.Seed = 29;
  for (const TrafficEvent &E : generate(Net, Spec, 300))
    EXPECT_EQ(E.Dst, WorkloadGenerator::transposeDestination(Net, E.Src));
  // The map itself is the involution u -> rank(label(u)^-1).
  for (NodeId U = 0; U != Net.numNodes(); ++U) {
    NodeId D = WorkloadGenerator::transposeDestination(Net, U);
    EXPECT_EQ(Net.label(D), Net.label(U).inverse());
    EXPECT_EQ(WorkloadGenerator::transposeDestination(Net, D), U)
        << "transpose is an involution";
  }
}

TEST(Workload, BitReversalMatchesClosedForm) {
  // 24 nodes -> 5 low bits reversed, reduced mod 24.
  EXPECT_EQ(WorkloadGenerator::bitReversalDestination(0, 24), 0u);
  EXPECT_EQ(WorkloadGenerator::bitReversalDestination(1, 24), 16u);
  EXPECT_EQ(WorkloadGenerator::bitReversalDestination(3, 24),
            NodeId(0b11000 % 24));
  // On a power-of-two population the map is the classical involution.
  for (NodeId U = 0; U != 32; ++U)
    EXPECT_EQ(WorkloadGenerator::bitReversalDestination(
                  WorkloadGenerator::bitReversalDestination(U, 32), 32),
              U);
  ExplicitScg Net = star4();
  WorkloadSpec Spec;
  Spec.Kind = WorkloadKind::BitReversal;
  Spec.InjectionRate = 0.3;
  Spec.Seed = 31;
  for (const TrafficEvent &E : generate(Net, Spec, 300))
    EXPECT_EQ(E.Dst, WorkloadGenerator::bitReversalDestination(
                         E.Src, Net.numNodes()));
}

TEST(Workload, BurstyRealizesDutyCycleAndLongRunRate) {
  ExplicitScg Net = star4();
  WorkloadSpec Spec;
  Spec.Kind = WorkloadKind::BurstyUniform;
  Spec.InjectionRate = 0.05;
  Spec.Seed = 37;
  Spec.BurstDutyCycle = 0.25;
  Spec.MeanBurstLength = 8.0;
  uint64_t Steps = 20000;
  std::vector<TrafficEvent> Trace = generate(Net, Spec, Steps);

  // Long-run offered rate still equals InjectionRate.
  double Rate = double(Trace.size()) / (double(Net.numNodes()) * Steps);
  EXPECT_NEAR(Rate, Spec.InjectionRate, 0.005);

  // Burstiness: while on, nodes inject at rate/duty = 0.2, so consecutive
  // injections of one node cluster within bursts. Compare the fraction of
  // short inter-injection gaps against a memoryless (uniform) source at
  // the same long-run rate: the on/off structure must produce markedly
  // more short gaps -- this is exactly what the duty cycle controls.
  auto ShortGapFraction = [](const std::vector<TrafficEvent> &T) {
    uint64_t Short = 0, Gaps = 0;
    std::map<NodeId, uint64_t> LastStep;
    for (const TrafficEvent &E : T) {
      auto It = LastStep.find(E.Src);
      if (It != LastStep.end()) {
        ++Gaps;
        Short += E.Step - It->second <= 8;
      }
      LastStep[E.Src] = E.Step;
    }
    return Gaps ? double(Short) / double(Gaps) : 0.0;
  };
  WorkloadSpec Memoryless = Spec;
  Memoryless.Kind = WorkloadKind::UniformRandom;
  double BurstyShort = ShortGapFraction(Trace);
  double UniformShort = ShortGapFraction(generate(Net, Memoryless, Steps));
  EXPECT_GT(BurstyShort, UniformShort + 0.15);
}

TEST(Workload, SeedsReproduceAndDistinguishTraces) {
  ExplicitScg Net = star4();
  for (WorkloadKind Kind :
       {WorkloadKind::UniformRandom, WorkloadKind::Hotspot,
        WorkloadKind::Transpose, WorkloadKind::BitReversal,
        WorkloadKind::BurstyUniform}) {
    WorkloadSpec Spec;
    Spec.Kind = Kind;
    Spec.InjectionRate = 0.1;
    Spec.Seed = 41;
    std::vector<TrafficEvent> A = generate(Net, Spec, 500);
    std::vector<TrafficEvent> B = generate(Net, Spec, 500);
    ASSERT_EQ(A.size(), B.size()) << workloadKindName(Kind);
    for (size_t I = 0; I != A.size(); ++I) {
      EXPECT_EQ(A[I].Step, B[I].Step);
      EXPECT_EQ(A[I].Src, B[I].Src);
      EXPECT_EQ(A[I].Dst, B[I].Dst);
    }
    Spec.Seed = 42;
    std::vector<TrafficEvent> C = generate(Net, Spec, 500);
    bool Differs = C.size() != A.size();
    for (size_t I = 0; !Differs && I != A.size(); ++I)
      Differs = A[I].Step != C[I].Step || A[I].Src != C[I].Src ||
                A[I].Dst != C[I].Dst;
    EXPECT_TRUE(Differs) << workloadKindName(Kind)
                         << ": different seeds, same trace";
  }
}
