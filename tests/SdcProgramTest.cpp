//===- tests/SdcProgramTest.cpp - Algorithm-level emulation tests --------===//

#include "comm/SdcProgram.h"

#include "emulation/SdcEmulation.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(SdcProgram, EffectComposesTranspositions) {
  SdcStarProgram Program{{2, 3, 2}};
  Permutation Effect = sdcProgramEffect(4, Program);
  // T2 T3 T2 = T_{2,3}: swap of positions 2 and 3.
  EXPECT_EQ(Effect, makePairTransposition(4, 2, 3).Sigma);
}

TEST(SdcProgram, EmptyProgramIsIdentity) {
  EXPECT_TRUE(sdcProgramEffect(5, SdcStarProgram{}).isIdentity());
}

TEST(SdcProgram, RandomProgramsAreInRange) {
  SdcStarProgram Program = makeRandomSdcProgram(7, 50, 123);
  ASSERT_EQ(Program.Dims.size(), 50u);
  for (unsigned Dim : Program.Dims) {
    EXPECT_GE(Dim, 2u);
    EXPECT_LE(Dim, 7u);
  }
}

TEST(SdcProgram, TranslationPreservesEffect) {
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::CompleteRotationStar,
        NetworkKind::MacroIS}) {
    SuperCayleyGraph Host = SuperCayleyGraph::create(Kind, 3, 2);
    SdcStarProgram Program = makeRandomSdcProgram(7, 30, 7);
    std::vector<GenIndex> Seq = translateSdcProgram(Host, Program);
    GeneratorPath Path{Seq};
    EXPECT_EQ(Path.netEffect(Host), sdcProgramEffect(7, Program))
        << Host.name();
  }
}

TEST(SdcProgram, StarRunsItselfLockStep) {
  ExplicitScg Star(SuperCayleyGraph::star(5));
  SdcStarProgram Program = makeRandomSdcProgram(5, 12, 99);
  SdcProgramRun Run = runSdcProgram(Star, Program);
  EXPECT_TRUE(Run.LockStep);
  EXPECT_TRUE(Run.PlacementOk);
  EXPECT_EQ(Run.HostSteps, Run.StarSteps);
  EXPECT_DOUBLE_EQ(Run.Slowdown, 1.0);
}

TEST(SdcProgram, Theorem1SlowdownOnMacroStar) {
  ExplicitScg Host(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  SdcStarProgram Program = makeRandomSdcProgram(5, 20, 4);
  SdcProgramRun Run = runSdcProgram(Host, Program);
  EXPECT_TRUE(Run.LockStep);
  EXPECT_TRUE(Run.PlacementOk);
  EXPECT_LE(Run.Slowdown, 3.0); // Theorem 1.
  EXPECT_GE(Run.Slowdown, 1.0);
}

TEST(SdcProgram, Theorem2SlowdownOnIs) {
  ExplicitScg Host(SuperCayleyGraph::insertionSelection(5));
  SdcStarProgram Program = makeRandomSdcProgram(5, 20, 5);
  SdcProgramRun Run = runSdcProgram(Host, Program);
  EXPECT_TRUE(Run.LockStep);
  EXPECT_TRUE(Run.PlacementOk);
  EXPECT_LE(Run.Slowdown, 2.0); // Theorem 2.
}

TEST(SdcProgram, Theorem3SlowdownOnMis) {
  ExplicitScg Host(SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2));
  SdcStarProgram Program = makeRandomSdcProgram(5, 20, 6);
  SdcProgramRun Run = runSdcProgram(Host, Program);
  EXPECT_TRUE(Run.LockStep);
  EXPECT_TRUE(Run.PlacementOk);
  EXPECT_LE(Run.Slowdown, 4.0); // Theorem 3.
}

TEST(SdcProgram, SlowdownIsExactPathAverage) {
  // HostSteps equals the sum of per-dimension path lengths exactly.
  SuperCayleyGraph Net = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  ExplicitScg Host(Net);
  SdcStarProgram Program{{2, 4, 5, 3}};
  uint64_t Expected = 0;
  for (unsigned Dim : Program.Dims)
    Expected += starDimensionPath(Net, Dim).length();
  SdcProgramRun Run = runSdcProgram(Host, Program);
  EXPECT_EQ(Run.HostSteps, Expected);
}
