//===- tests/SimObserverTest.cpp - Observability + invariant layer -------===//
//
// The simulator observability layer: MetricsRegistry semantics (counters,
// gauges, sampling, summaries, JSON), observer event streams, byte-equal
// results with and without observers attached, the on-inject Delivered
// accounting for zero-hop packets, and the ModelInvariantChecker run clean
// across all three communication models on every network family at k = 4.
//
//===----------------------------------------------------------------------===//

#include "comm/SimObserver.h"

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

/// All network families at k = 4: the single-level classes plus every box
/// class at (l, n) = (3, 1) (k = l * n + 1).
std::vector<SuperCayleyGraph> familiesAtK4() {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(4));
  Nets.push_back(SuperCayleyGraph::bubbleSort(4));
  Nets.push_back(SuperCayleyGraph::transpositionNetwork(4));
  Nets.push_back(SuperCayleyGraph::rotator(4));
  Nets.push_back(SuperCayleyGraph::insertionSelection(4));
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::RotationStar,
        NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
        NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
        NetworkKind::MacroIS, NetworkKind::RotationIS,
        NetworkKind::CompleteRotationIS})
    Nets.push_back(SuperCayleyGraph::create(Kind, 3, 1));
  return Nets;
}

/// Deterministic mixed workload: random valid routes, every fourth packet
/// a multi-flit message, plus a few zero-hop packets.
void injectMixed(NetworkSimulator &Sim, const ExplicitScg &Net,
                 unsigned Count, uint64_t Seed, unsigned ZeroHop = 0) {
  SplitMix64 Rng(Seed);
  for (unsigned P = 0; P != Count; ++P) {
    NodeId Src = Rng.nextBelow(Net.numNodes());
    unsigned Len = 1 + Rng.nextBelow(5);
    std::vector<GenIndex> Route;
    for (unsigned H = 0; H != Len; ++H)
      Route.push_back(Rng.nextBelow(Net.degree()));
    Sim.injectPacket(Src, Route, P % 4 == 0 ? 1 + P % 3 : 1);
  }
  for (unsigned Z = 0; Z != ZeroHop; ++Z)
    Sim.injectPacket(Rng.nextBelow(Net.numNodes()), {});
}

bool sameResult(const SimulationResult &A, const SimulationResult &B) {
  return A.Completed == B.Completed && A.Steps == B.Steps &&
         A.Delivered == B.Delivered && A.Transmissions == B.Transmissions &&
         A.BusyLinkSteps == B.BusyLinkSteps &&
         A.MaxQueueLength == B.MaxQueueLength &&
         A.LinkUtilization == B.LinkUtilization;
}

/// Counts hook firings and re-derives result fields from the event stream.
struct RecordingObserver final : SimObserver {
  unsigned Begins = 0, Ends = 0;
  uint64_t Steps = 0, Started = 0, Arrivals = 0, Deliveries = 0;
  uint64_t ActiveLinkSteps = 0;
  void onRunBegin(const NetworkSimulator &) override { ++Begins; }
  void onStep(const NetworkSimulator &, const StepEvents &E) override {
    ++Steps;
    for (const LinkActivity &A : E.Active)
      Started += A.Started;
    ActiveLinkSteps += E.Active.size();
    Arrivals += E.Arrivals.size();
    Deliveries += E.Deliveries.size();
  }
  void onRunEnd(const NetworkSimulator &, const SimulationResult &) override {
    ++Ends;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(Metrics, CountersAndGaugesSampleIntoSeries) {
  MetricsRegistry Reg;
  Metric &Hops = Reg.counter("hops");
  Metric &Depth = Reg.gauge("depth");
  Hops.add(3);
  Depth.set(2.5);
  Reg.sample(0);
  Hops.add();
  Depth.set(1.0);
  Reg.sample(1);

  EXPECT_TRUE(Hops.isCounter());
  EXPECT_FALSE(Depth.isCounter());
  EXPECT_EQ(Hops.value(), 4.0);
  ASSERT_EQ(Hops.series().size(), 2u);
  EXPECT_EQ(Hops.series()[0], (std::pair<uint64_t, double>{0, 3.0}));
  EXPECT_EQ(Hops.series()[1], (std::pair<uint64_t, double>{1, 4.0}));

  MetricSummary S = MetricsRegistry::summarize(Depth);
  EXPECT_EQ(S.Points, 2u);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 2.5);
  EXPECT_DOUBLE_EQ(S.Mean, 1.75);
  EXPECT_DOUBLE_EQ(S.Last, 1.0);

  EXPECT_EQ(Reg.names(), (std::vector<std::string>{"depth", "hops"}));
  EXPECT_NE(Reg.find("hops"), nullptr);
  EXPECT_EQ(Reg.find("nope"), nullptr);
}

TEST(Metrics, SameNameReturnsSameMetric) {
  MetricsRegistry Reg;
  Metric &A = Reg.counter("x");
  A.add(7);
  EXPECT_EQ(&Reg.counter("x"), &A);
  EXPECT_EQ(Reg.counter("x").value(), 7.0);
}

TEST(Metrics, JsonIsDeterministicAndDownsampled) {
  MetricsRegistry Reg;
  Metric &C = Reg.counter("c");
  for (uint64_t S = 0; S != 100; ++S) {
    C.add();
    Reg.sample(S);
  }
  std::string Json = Reg.toJson(/*MaxSeriesPoints=*/10);
  EXPECT_NE(Json.find("\"c\": {\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(Json.find("\"points\": 100"), std::string::npos);
  // The final point survives downsampling.
  EXPECT_NE(Json.find("[99, 100]"), std::string::npos);
  // Deterministic: a second render is identical.
  EXPECT_EQ(Json, Reg.toJson(10));
}

TEST(Metrics, HistogramCountsAndRenders) {
  Histogram H;
  EXPECT_EQ(H.render(), "(empty)\n");
  H.add(0);
  H.add(2);
  H.add(2);
  EXPECT_EQ(H.total(), 3u);
  EXPECT_EQ(H.maxValue(), 2u);
  EXPECT_EQ(H.count(2), 2u);
  EXPECT_EQ(H.count(5), 0u);
  std::string R = H.render(10);
  EXPECT_NE(R.find("0 | "), std::string::npos);
  EXPECT_NE(R.find("2 | "), std::string::npos);
  EXPECT_EQ(R.find("1 | "), std::string::npos); // empty bins are skipped.
}

//===----------------------------------------------------------------------===//
// Observer wiring
//===----------------------------------------------------------------------===//

TEST(SimObserver, EventStreamMatchesResult) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  NetworkSimulator Sim(Net, CommModel::AllPort);
  injectMixed(Sim, Net, 200, 42, /*ZeroHop=*/3);
  RecordingObserver Rec;
  Sim.addObserver(&Rec);
  SimulationResult R = Sim.run(100000);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(Rec.Begins, 1u);
  EXPECT_EQ(Rec.Ends, 1u);
  EXPECT_EQ(Rec.Steps, R.Steps);
  EXPECT_EQ(Rec.Started, R.Transmissions);
  EXPECT_EQ(Rec.Arrivals, R.Transmissions);
  EXPECT_EQ(Rec.ActiveLinkSteps, R.BusyLinkSteps);
  // Zero-hop packets are delivered on inject, not through the step loop.
  EXPECT_EQ(Rec.Deliveries + 3, R.Delivered);
}

TEST(SimObserver, ResultsIdenticalWithAndWithoutObservers) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  for (CommModel Model : {CommModel::AllPort, CommModel::SinglePort,
                          CommModel::SingleDimension}) {
    NetworkSimulator Plain(Net, Model);
    injectMixed(Plain, Net, 150, 7, /*ZeroHop=*/2);
    SimulationResult Bare = Plain.run(100000);

    NetworkSimulator Observed(Net, Model);
    injectMixed(Observed, Net, 150, 7, /*ZeroHop=*/2);
    MetricsRegistry Reg;
    MetricsObserver Metrics(Reg);
    ModelInvariantChecker Checker;
    Observed.addObserver(&Metrics);
    Observed.addObserver(&Checker);
    SimulationResult Instrumented = Observed.run(100000);

    NetworkSimulator Forced(Net, Model);
    injectMixed(Forced, Net, 150, 7, /*ZeroHop=*/2);
    Forced.forceInstrumentation(true);
    SimulationResult ForcedRun = Forced.run(100000);

    ASSERT_TRUE(Bare.Completed) << commModelName(Model);
    EXPECT_TRUE(sameResult(Bare, Instrumented)) << commModelName(Model);
    EXPECT_TRUE(sameResult(Bare, ForcedRun)) << commModelName(Model);
    EXPECT_TRUE(Checker.clean()) << commModelName(Model) << "\n"
                                 << Checker.report();
    // The metrics recomputed the same totals from the event stream.
    EXPECT_EQ(Reg.find("sim.transmissions")->value(),
              double(Bare.Transmissions))
        << commModelName(Model);
    EXPECT_EQ(Reg.find("sim.busy_link_steps")->value(),
              double(Bare.BusyLinkSteps))
        << commModelName(Model);
    EXPECT_EQ(Reg.find("sim.deliveries")->series().size(), Bare.Steps)
        << commModelName(Model);
  }
}

TEST(SimObserver, ZeroHopPacketsCountAsDelivered) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::AllPort);
  Sim.injectPacket(0, {});
  Sim.injectPacket(1, {});
  Sim.injectPacket(0, {0});
  SimulationResult R = Sim.run(100);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Delivered, 3u); // two zero-hop + one routed.
  EXPECT_EQ(R.Steps, 1u);

  // All-zero-hop traffic: delivered without a single step.
  NetworkSimulator Idle(Net, CommModel::SinglePort);
  Idle.injectPacket(2, {});
  SimulationResult R2 = Idle.run(100);
  EXPECT_TRUE(R2.Completed);
  EXPECT_EQ(R2.Delivered, 1u);
  EXPECT_EQ(R2.Steps, 0u);
}

//===----------------------------------------------------------------------===//
// ModelInvariantChecker
//===----------------------------------------------------------------------===//

TEST(ModelInvariantChecker, CleanOnEveryFamilyAndModelAtK4) {
  for (const SuperCayleyGraph &Scg : familiesAtK4()) {
    ExplicitScg Net(Scg);
    for (CommModel Model : {CommModel::AllPort, CommModel::SinglePort,
                            CommModel::SingleDimension}) {
      NetworkSimulator Sim(Net, Model);
      injectMixed(Sim, Net, 120, 0xBEEF);
      ModelInvariantChecker Checker;
      Sim.addObserver(&Checker);
      SimulationResult R = Sim.run(1000000);
      ASSERT_TRUE(R.Completed) << Scg.name() << " " << commModelName(Model);
      EXPECT_TRUE(Checker.clean())
          << Scg.name() << " " << commModelName(Model) << "\n"
          << Checker.report();
    }
  }
}

TEST(ModelInvariantChecker, FlagsViolationsInForgedEvents) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  NetworkSimulator Sim(Net, CommModel::SinglePort);
  ModelInvariantChecker Checker;
  Checker.onRunBegin(Sim);

  // Forge a step where node 0 is active on two distinct links at once:
  // exactly the single-port node rule (one of them a continuing
  // multi-flit occupancy, which must count as active).
  StepEvents Events;
  Events.Step = 0;
  Events.Model = CommModel::SinglePort;
  Events.Active.push_back({0, 0, 0, 3, true});
  Events.Active.push_back({0, 1, 1, 3, false});
  Checker.onStep(Sim, Events);
  ASSERT_FALSE(Checker.clean());
  EXPECT_EQ(Checker.violations().size(), 1u);
  EXPECT_NE(Checker.violations()[0].What.find("single-port"),
            std::string::npos);
  EXPECT_NE(Checker.report().find("step 0"), std::string::npos);

  // A doubly-occupied directed link is flagged under any model.
  ModelInvariantChecker LinkChecker;
  NetworkSimulator AllPort(Net, CommModel::AllPort);
  LinkChecker.onRunBegin(AllPort);
  StepEvents Dup;
  Dup.Step = 3;
  Dup.Model = CommModel::AllPort;
  Dup.Active.push_back({2, 1, 0, 1, true});
  Dup.Active.push_back({2, 1, 1, 1, true});
  LinkChecker.onStep(AllPort, Dup);
  ASSERT_EQ(LinkChecker.violations().size(), 1u);
  EXPECT_NE(LinkChecker.violations()[0].What.find("carries 2 messages"),
            std::string::npos);

  // A transmission starting off-schedule is flagged under single-dimension.
  ModelInvariantChecker SdChecker;
  NetworkSimulator Sd(Net, CommModel::SingleDimension);
  SdChecker.onRunBegin(Sd);
  StepEvents Off;
  Off.Step = 1;
  Off.Model = CommModel::SingleDimension;
  Off.ScheduledLink = 2;
  Off.HasScheduledLink = true;
  Off.Active.push_back({0, 1, 0, 1, true});
  SdChecker.onStep(Sd, Off);
  ASSERT_EQ(SdChecker.violations().size(), 1u);
  EXPECT_NE(SdChecker.violations()[0].What.find("schedule"),
            std::string::npos);

  // A *continuing* multi-flit occupancy off-dimension is legal (its
  // transmission started when its generator was scheduled).
  StepEvents Cont;
  Cont.Step = 2;
  Cont.Model = CommModel::SingleDimension;
  Cont.ScheduledLink = 0;
  Cont.HasScheduledLink = true;
  Cont.Active.push_back({0, 1, 0, 3, false});
  SdChecker.onStep(Sd, Cont);
  EXPECT_EQ(SdChecker.violations().size(), 1u); // unchanged.
}

TEST(ModelInvariantChecker, CleanOnMultiFlitSinglePortTraffic) {
  // The exact workload class the pre-fix simulator violated: multi-flit
  // store-and-forward messages under single-port.
  for (const SuperCayleyGraph &Scg :
       {SuperCayleyGraph::star(4), SuperCayleyGraph::rotator(4)}) {
    ExplicitScg Net(Scg);
    NetworkSimulator Sim(Net, CommModel::SinglePort);
    SplitMix64 Rng(99);
    for (unsigned P = 0; P != 60; ++P) {
      NodeId Src = Rng.nextBelow(Net.numNodes());
      std::vector<GenIndex> Route;
      for (unsigned H = 0, L = 1 + Rng.nextBelow(4); H != L; ++H)
        Route.push_back(Rng.nextBelow(Net.degree()));
      Sim.injectPacket(Src, Route, 2 + P % 4);
    }
    ModelInvariantChecker Checker;
    Sim.addObserver(&Checker);
    SimulationResult R = Sim.run(1000000);
    ASSERT_TRUE(R.Completed) << Scg.name();
    EXPECT_TRUE(Checker.clean()) << Scg.name() << "\n" << Checker.report();
  }
}
