//===- tests/MeshEmbeddingTest.cpp - Corollaries 6-7 mesh tests ----------===//

#include "embedding/MeshEmbeddings.h"

#include "networks/Classic.h"
#include "perm/Lehmer.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(SjtMesh, ShapeMultipliesToKFactorial) {
  for (unsigned K = 2; K <= 8; ++K) {
    SjtMeshShape Shape = sjtMeshShape(K);
    EXPECT_EQ(Shape.Rows * Shape.Cols, factorial(K));
  }
}

TEST(SjtMesh, DilationOneIntoTn) {
  // Corollary 6 via [12]: load 1, expansion 1, dilation 1.
  for (unsigned K = 3; K <= 6; ++K) {
    SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(K);
    SjtMeshShape Shape = sjtMeshShape(K);
    Graph Guest = mesh2D(Shape.Rows, Shape.Cols);
    Embedding E = embedSjtMeshIntoTn(Tn);
    EmbeddingMetrics M = measureEmbedding(Guest, E);
    EXPECT_TRUE(M.Valid) << "k=" << K;
    EXPECT_EQ(M.Load, 1u) << "k=" << K;
    EXPECT_DOUBLE_EQ(M.Expansion, 1.0) << "k=" << K;
    EXPECT_EQ(M.Dilation, 1u) << "k=" << K;
  }
}

TEST(SjtMesh, CongestionOneIntoTn) {
  // Dilation-1 one-to-one embeddings have congestion at most 1 per
  // directed link (each mesh edge is its own host link).
  SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(5);
  SjtMeshShape Shape = sjtMeshShape(5);
  Graph Guest = mesh2D(Shape.Rows, Shape.Cols);
  EmbeddingMetrics M = measureEmbedding(Guest, embedSjtMeshIntoTn(Tn));
  EXPECT_EQ(M.Congestion, 1u);
}

TEST(LehmerMesh, DimsAreTwoThroughK) {
  EXPECT_EQ(lehmerMeshDims(5), (std::vector<unsigned>{2, 3, 4, 5}));
}

TEST(LehmerMesh, MeshSizeIsKFactorial) {
  std::vector<unsigned> Dims = lehmerMeshDims(6);
  uint64_t N = 1;
  for (unsigned D : Dims)
    N *= D;
  EXPECT_EQ(N, factorial(6));
}

TEST(LehmerMesh, DilationThreeIntoStar) {
  // Corollary 7 via [11]: load 1, expansion 1, dilation 3.
  for (unsigned K = 3; K <= 6; ++K) {
    SuperCayleyGraph Star = SuperCayleyGraph::star(K);
    Graph Guest = mixedRadixMesh(lehmerMeshDims(K));
    Embedding E = embedLehmerMeshIntoStar(Star);
    EmbeddingMetrics M = measureEmbedding(Guest, E);
    EXPECT_TRUE(M.Valid) << "k=" << K;
    EXPECT_EQ(M.Load, 1u) << "k=" << K;
    EXPECT_DOUBLE_EQ(M.Expansion, 1.0) << "k=" << K;
    EXPECT_EQ(M.Dilation, 3u) << "k=" << K;
  }
}

TEST(LehmerMesh, EdgeStepsAreSingleTranspositions) {
  // A +-1 Lehmer-digit step transposes exactly two symbols, so the star
  // route has length 1 (position 1 involved) or 3.
  SuperCayleyGraph Star = SuperCayleyGraph::star(5);
  Graph Guest = mixedRadixMesh(lehmerMeshDims(5));
  Embedding E = embedLehmerMeshIntoStar(Star);
  for (NodeId U = 0; U != Guest.numNodes(); ++U)
    for (NodeId V : Guest.neighbors(U)) {
      unsigned Len = E.Route(U, V).length();
      EXPECT_TRUE(Len == 1 || Len == 3) << U << "->" << V;
    }
}
