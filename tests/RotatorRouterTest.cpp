//===- tests/RotatorRouterTest.cpp - Rotator routing tests ---------------===//

#include "routing/RotatorRouter.h"

#include "core/Generator.h"
#include "perm/Lehmer.h"
#include "routing/BagSolver.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(RotatorRouter, IdentityNeedsNoMoves) {
  EXPECT_TRUE(rotatorWordForPermutation(Permutation::identity(5)).empty());
}

TEST(RotatorRouter, SingleInsertionIsOneHop) {
  Permutation P = Permutation::identity(6).compose(makeInsertion(6, 4).Sigma);
  std::vector<unsigned> Word = rotatorWordForPermutation(P);
  Permutation Product = Permutation::identity(6);
  for (unsigned Dim : Word)
    Product = Product.compose(makeInsertion(6, Dim).Sigma);
  EXPECT_EQ(Product, P);
}

TEST(RotatorRouter, WordRealizesEveryPermutationOfS5) {
  for (uint64_t Rank = 0; Rank != factorial(5); ++Rank) {
    Permutation P = unrankPermutation(Rank, 5);
    Permutation Product = Permutation::identity(5);
    for (unsigned Dim : rotatorWordForPermutation(P)) {
      ASSERT_GE(Dim, 2u);
      ASSERT_LE(Dim, 5u);
      Product = Product.compose(makeInsertion(5, Dim).Sigma);
    }
    EXPECT_EQ(Product, P) << P.str();
  }
}

TEST(RotatorRouter, LengthWithinBound) {
  for (unsigned K = 3; K <= 7; ++K) {
    SplitMix64 Rng(K);
    for (int Trial = 0; Trial != 100; ++Trial) {
      Permutation P = unrankPermutation(Rng.nextBelow(factorial(K)), K);
      EXPECT_LE(rotatorWordForPermutation(P).size(), rotatorRouteBound(K));
    }
  }
}

TEST(RotatorRouter, RoutesConnectInTheNetwork) {
  SuperCayleyGraph Rot = SuperCayleyGraph::rotator(5);
  SplitMix64 Rng(9);
  for (int Trial = 0; Trial != 60; ++Trial) {
    Permutation A = unrankPermutation(Rng.nextBelow(factorial(5)), 5);
    Permutation B = unrankPermutation(Rng.nextBelow(factorial(5)), 5);
    GeneratorPath Path = routeInRotator(Rot, A, B);
    EXPECT_TRUE(Path.connects(Rot, A, B));
    // Never shorter than the exact shortest path.
    EXPECT_GE(Path.length(), solveBag(Rot, A, B)->length());
  }
}

TEST(RotatorRouter, RotatorGraphShape) {
  SuperCayleyGraph Rot = SuperCayleyGraph::rotator(6);
  EXPECT_EQ(Rot.degree(), 5u);
  EXPECT_FALSE(Rot.isUndirected());
  EXPECT_EQ(Rot.name(), "rotator(6)");
}

TEST(RotatorRouter, BoundFormula) {
  EXPECT_EQ(rotatorRouteBound(5), 10u + 4u);
}
