//===- tests/TnEmbeddingTest.cpp - Theorems 6-7 tests --------------------===//

#include "embedding/TnEmbeddings.h"

#include "embedding/PathTemplates.h"
#include "networks/Explicit.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

/// All templates realize their pair transpositions and respect the bound.
void checkTemplates(const SuperCayleyGraph &Host) {
  unsigned K = Host.numSymbols();
  unsigned MaxLen = 0;
  for (unsigned I = 1; I != K; ++I)
    for (unsigned J = I + 1; J <= K; ++J) {
      GeneratorPath Path = tnPairPath(Host, I, J);
      EXPECT_EQ(Path.netEffect(Host),
                makePairTransposition(K, I, J).Sigma)
          << Host.name() << " T_{" << I << "," << J << "}";
      MaxLen = std::max(MaxLen, Path.length());
    }
  EXPECT_EQ(MaxLen, paperTnDilationBound(Host)) << Host.name();
}

EmbeddingMetrics measureTnInto(const SuperCayleyGraph &Host) {
  SuperCayleyGraph Tn =
      SuperCayleyGraph::transpositionNetwork(Host.numSymbols());
  Graph Guest = ExplicitScg(Tn).toGraph();
  PathTemplateMap Map = PathTemplateMap::create(Tn, Host);
  Embedding E = templateEmbedding(Map);
  return measureEmbedding(Guest, E);
}

} // namespace

TEST(TnEmbedding, Theorem6DilationFiveWhenLIsTwo) {
  for (auto [L, N] : {std::pair{2u, 2u}, {2u, 3u}, {2u, 4u}}) {
    checkTemplates(SuperCayleyGraph::create(NetworkKind::MacroStar, L, N));
    checkTemplates(
        SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, L, N));
  }
}

TEST(TnEmbedding, Theorem6DilationSevenWhenLAtLeastThree) {
  for (auto [L, N] : {std::pair{3u, 2u}, {4u, 3u}, {3u, 4u}, {5u, 2u}}) {
    checkTemplates(SuperCayleyGraph::create(NetworkKind::MacroStar, L, N));
    checkTemplates(
        SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, L, N));
  }
}

TEST(TnEmbedding, Theorem7DilationSixIntoIs) {
  for (unsigned K = 4; K <= 9; ++K)
    checkTemplates(SuperCayleyGraph::insertionSelection(K));
}

TEST(TnEmbedding, Theorem7ConstantDilationIntoMis) {
  for (auto [L, N] : {std::pair{3u, 3u}, {4u, 3u}}) {
    SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroIS, L, N);
    unsigned K = Host.numSymbols();
    for (unsigned I = 1; I != K; ++I)
      for (unsigned J = I + 1; J <= K; ++J) {
        GeneratorPath Path = tnPairPath(Host, I, J);
        EXPECT_EQ(Path.netEffect(Host), makePairTransposition(K, I, J).Sigma);
        EXPECT_LE(Path.length(), paperTnDilationBound(Host));
      }
  }
}

TEST(TnEmbedding, StarHostHasDilationThree) {
  checkTemplates(SuperCayleyGraph::star(7));
}

TEST(TnEmbedding, MeasuredMetricsIntoMacroStar22) {
  SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  EmbeddingMetrics M = measureTnInto(Host);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Load, 1u);          // one-to-one (Theorem 6).
  EXPECT_DOUBLE_EQ(M.Expansion, 1.0);
  EXPECT_EQ(M.Dilation, 5u);
}

TEST(TnEmbedding, MeasuredMetricsIntoMacroStar32) {
  SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2);
  EmbeddingMetrics M = measureTnInto(Host);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Load, 1u);
  EXPECT_EQ(M.Dilation, 7u);
}

TEST(TnEmbedding, MeasuredMetricsIntoIs6) {
  SuperCayleyGraph Host = SuperCayleyGraph::insertionSelection(6);
  EmbeddingMetrics M = measureTnInto(Host);
  EXPECT_TRUE(M.Valid);
  EXPECT_EQ(M.Dilation, 6u);
}

TEST(TnEmbedding, BubbleSortIsTnSubgraph) {
  // Section 5: the bubble-sort graph is a subgraph of the TN, so its edges
  // embed with the same templates; adjacent transpositions are pairs.
  SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  unsigned K = Host.numSymbols();
  for (unsigned I = 1; I + 1 <= K; ++I) {
    GeneratorPath Path = tnPairPath(Host, I, I + 1);
    EXPECT_EQ(Path.netEffect(Host),
              makeAdjacentTransposition(K, I).Sigma);
  }
}
