//===- tests/DotTest.cpp - Graphviz export tests -------------------------===//

#include "graph/Dot.h"

#include "networks/Classic.h"

#include <gtest/gtest.h>

using namespace scg;

TEST(Dot, UndirectedEmitsEachEdgeOnce) {
  Graph G(3);
  G.addUndirectedEdge(0, 1);
  G.addUndirectedEdge(1, 2);
  std::string Out = renderDot(G);
  EXPECT_NE(Out.find("graph g {"), std::string::npos);
  EXPECT_NE(Out.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(Out.find("n1 -- n2;"), std::string::npos);
  EXPECT_EQ(Out.find("n1 -- n0"), std::string::npos);
}

TEST(Dot, DirectedKeepsBothDirections) {
  Graph G(2);
  G.addEdge(0, 1);
  G.addEdge(1, 0);
  DotOptions Options;
  Options.Directed = true;
  std::string Out = renderDot(G, Options);
  EXPECT_NE(Out.find("digraph"), std::string::npos);
  EXPECT_NE(Out.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(Out.find("n1 -> n0;"), std::string::npos);
}

TEST(Dot, LabelsAppear) {
  Graph G(2);
  G.addUndirectedEdge(0, 1);
  DotOptions Options;
  Options.NodeLabel = [](NodeId N) { return "v" + std::to_string(N); };
  Options.EdgeLabel = [](NodeId, NodeId) { return std::string("e"); };
  std::string Out = renderDot(G, Options);
  EXPECT_NE(Out.find("[label=\"v0\"]"), std::string::npos);
  EXPECT_NE(Out.find("[label=\"e\"]"), std::string::npos);
}

TEST(Dot, MeshExportsAllEdges) {
  Graph G = mesh2D(2, 3);
  std::string Out = renderDot(G);
  // 7 undirected edges -> 7 "--" occurrences.
  size_t Count = 0, Pos = 0;
  while ((Pos = Out.find("--", Pos)) != std::string::npos) {
    ++Count;
    Pos += 2;
  }
  EXPECT_EQ(Count, 7u);
}
