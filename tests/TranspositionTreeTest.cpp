//===- tests/TranspositionTreeTest.cpp - Transposition-tree tests --------===//
//
// The Akers-Krishnamurthy transposition-tree model [2]: the star graph
// and the bubble-sort graph are the two extreme trees, and every tree
// gives a connected k!-node Cayley graph. Exercises the general factory
// against the special-cased networks and against known diameter ordering
// (the star tree minimizes diameter among trees; the path maximizes it).
//
//===----------------------------------------------------------------------===//

#include "core/SuperCayleyGraph.h"

#include "graph/Metrics.h"
#include "networks/Explicit.h"
#include "perm/GroupOrder.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

std::vector<std::pair<unsigned, unsigned>> starTree(unsigned K) {
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned I = 2; I <= K; ++I)
    Edges.push_back({1, I});
  return Edges;
}

std::vector<std::pair<unsigned, unsigned>> pathTree(unsigned K) {
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned I = 1; I + 1 <= K; ++I)
    Edges.push_back({I, I + 1});
  return Edges;
}

/// A "broom": a path 1-2-3 with leaves 4..k attached to 3.
std::vector<std::pair<unsigned, unsigned>> broomTree(unsigned K) {
  std::vector<std::pair<unsigned, unsigned>> Edges{{1, 2}, {2, 3}};
  for (unsigned I = 4; I <= K; ++I)
    Edges.push_back({3, I});
  return Edges;
}

uint32_t diameterOf(const SuperCayleyGraph &Net) {
  return vertexTransitiveStats(ExplicitScg(Net).toGraph()).Diameter;
}

} // namespace

TEST(TranspositionTree, StarTreeMatchesStarGraph) {
  SuperCayleyGraph Tree = SuperCayleyGraph::transpositionTree(5, starTree(5));
  SuperCayleyGraph Star = SuperCayleyGraph::star(5);
  ASSERT_EQ(Tree.degree(), Star.degree());
  for (GenIndex G = 0; G != Tree.degree(); ++G)
    EXPECT_TRUE(Star.generators().findByAction(Tree.generators()[G].Sigma))
        << Tree.generators()[G].Name;
  EXPECT_EQ(diameterOf(Tree), diameterOf(Star));
}

TEST(TranspositionTree, PathTreeMatchesBubbleSort) {
  SuperCayleyGraph Tree = SuperCayleyGraph::transpositionTree(5, pathTree(5));
  SuperCayleyGraph Bubble = SuperCayleyGraph::bubbleSort(5);
  ASSERT_EQ(Tree.degree(), Bubble.degree());
  EXPECT_EQ(diameterOf(Tree), diameterOf(Bubble));
}

TEST(TranspositionTree, EveryTreeGeneratesSk) {
  for (auto &Edges : {starTree(6), pathTree(6), broomTree(6)}) {
    SuperCayleyGraph Net = SuperCayleyGraph::transpositionTree(6, Edges);
    std::vector<Permutation> Actions;
    for (const Generator &G : Net.generators())
      Actions.push_back(G.Sigma);
    EXPECT_TRUE(generatesSymmetricGroup(Actions));
  }
}

TEST(TranspositionTree, DiameterOrderingStarBroomPath) {
  uint32_t Star = diameterOf(SuperCayleyGraph::transpositionTree(5, starTree(5)));
  uint32_t Broom = diameterOf(SuperCayleyGraph::transpositionTree(5, broomTree(5)));
  uint32_t Path = diameterOf(SuperCayleyGraph::transpositionTree(5, pathTree(5)));
  EXPECT_LE(Star, Broom);
  EXPECT_LE(Broom, Path);
}

TEST(TranspositionTree, NameAndSymmetry) {
  SuperCayleyGraph Net = SuperCayleyGraph::transpositionTree(5, broomTree(5));
  EXPECT_EQ(Net.name(), "T-tree(5)");
  EXPECT_TRUE(Net.isUndirected());
  EXPECT_EQ(Net.degree(), 4u);
}

TEST(TranspositionTree, ConnectedAtSevenSymbols) {
  SuperCayleyGraph Net = SuperCayleyGraph::transpositionTree(7, broomTree(7));
  EXPECT_TRUE(isConnectedFromZero(ExplicitScg(Net).toGraph()));
}
