//===- tests/BagSolverTest.cpp - Generic BAG solver tests ----------------===//

#include "routing/BagSolver.h"

#include "graph/Bfs.h"
#include "networks/Explicit.h"
#include "perm/Lehmer.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace scg;

namespace {

/// Exhaustively checks solveBag against BFS distances from the identity.
void checkAgainstBfs(const SuperCayleyGraph &Scg, unsigned Stride) {
  ExplicitScg Net(Scg);
  BfsResult R = bfs(Net.toGraph(), 0);
  Permutation Id = Permutation::identity(Scg.numSymbols());
  for (uint64_t Rank = 0; Rank < Net.numNodes(); Rank += Stride) {
    Permutation Dst = Net.label(Rank);
    std::optional<GeneratorPath> Path = solveBag(Scg, Id, Dst);
    ASSERT_TRUE(Path) << Scg.name() << " rank " << Rank;
    EXPECT_EQ(Path->length(), R.Distance[Rank])
        << Scg.name() << " to " << Dst.str();
    EXPECT_TRUE(Path->connects(Scg, Id, Dst));
  }
}

} // namespace

TEST(BagSolver, TrivialInstance) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(4);
  Permutation Id = Permutation::identity(4);
  std::optional<GeneratorPath> Path = solveBag(Star, Id, Id);
  ASSERT_TRUE(Path);
  EXPECT_EQ(Path->length(), 0u);
}

TEST(BagSolver, MatchesBfsOnStar5) {
  checkAgainstBfs(SuperCayleyGraph::star(5), 1);
}

TEST(BagSolver, MatchesBfsOnMacroStar22) {
  checkAgainstBfs(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2), 1);
}

TEST(BagSolver, MatchesBfsOnInsertionSelection5) {
  checkAgainstBfs(SuperCayleyGraph::insertionSelection(5), 1);
}

TEST(BagSolver, MatchesBfsOnCompleteRotationStar32) {
  checkAgainstBfs(
      SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 3, 2), 11);
}

TEST(BagSolver, MatchesBfsOnDirectedMacroRotator) {
  // Directed network: backward search uses inverse actions that are not
  // links; the path itself must still use only forward links.
  checkAgainstBfs(SuperCayleyGraph::create(NetworkKind::MacroRotator, 2, 2),
                  1);
}

TEST(BagSolver, MatchesBfsOnRotationRotator) {
  checkAgainstBfs(
      SuperCayleyGraph::create(NetworkKind::RotationRotator, 3, 2), 13);
}

TEST(BagSolver, RespectsMaxDepth) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(6);
  Permutation Id = Permutation::identity(6);
  // Reversal-ish permutation at distance >= 4.
  Permutation Far = Permutation::parseOneBased("6 5 4 3 2 1");
  EXPECT_FALSE(solveBag(Star, Id, Far, /*MaxDepth=*/2));
  EXPECT_TRUE(solveBag(Star, Id, Far, /*MaxDepth=*/20));
}

TEST(BagSolver, ArbitraryEndpoints) {
  SuperCayleyGraph Mis = SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2);
  SplitMix64 Rng(5);
  for (int Trial = 0; Trial != 40; ++Trial) {
    Permutation A = unrankPermutation(Rng.nextBelow(factorial(5)), 5);
    Permutation B = unrankPermutation(Rng.nextBelow(factorial(5)), 5);
    std::optional<GeneratorPath> Path = solveBag(Mis, A, B);
    ASSERT_TRUE(Path);
    EXPECT_TRUE(Path->connects(Mis, A, B));
  }
}

TEST(BagSolver, DistanceHelperAgrees) {
  SuperCayleyGraph Is = SuperCayleyGraph::insertionSelection(5);
  Permutation Id = Permutation::identity(5);
  Permutation Dst = Permutation::parseOneBased("2 3 4 5 1");
  std::optional<unsigned> Dist = bagDistance(Is, Id, Dst);
  ASSERT_TRUE(Dist);
  EXPECT_EQ(*Dist, 1u); // I_5 in one hop.
}
