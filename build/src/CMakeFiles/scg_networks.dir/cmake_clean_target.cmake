file(REMOVE_RECURSE
  "libscg_networks.a"
)
