
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/networks/Classic.cpp" "src/CMakeFiles/scg_networks.dir/networks/Classic.cpp.o" "gcc" "src/CMakeFiles/scg_networks.dir/networks/Classic.cpp.o.d"
  "/root/repo/src/networks/Clusters.cpp" "src/CMakeFiles/scg_networks.dir/networks/Clusters.cpp.o" "gcc" "src/CMakeFiles/scg_networks.dir/networks/Clusters.cpp.o.d"
  "/root/repo/src/networks/Explicit.cpp" "src/CMakeFiles/scg_networks.dir/networks/Explicit.cpp.o" "gcc" "src/CMakeFiles/scg_networks.dir/networks/Explicit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
