# Empty compiler generated dependencies file for scg_networks.
# This may be replaced when dependencies are built.
