file(REMOVE_RECURSE
  "CMakeFiles/scg_networks.dir/networks/Classic.cpp.o"
  "CMakeFiles/scg_networks.dir/networks/Classic.cpp.o.d"
  "CMakeFiles/scg_networks.dir/networks/Clusters.cpp.o"
  "CMakeFiles/scg_networks.dir/networks/Clusters.cpp.o.d"
  "CMakeFiles/scg_networks.dir/networks/Explicit.cpp.o"
  "CMakeFiles/scg_networks.dir/networks/Explicit.cpp.o.d"
  "libscg_networks.a"
  "libscg_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scg_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
