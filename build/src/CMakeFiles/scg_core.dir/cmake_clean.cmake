file(REMOVE_RECURSE
  "CMakeFiles/scg_core.dir/core/BallArrangementGame.cpp.o"
  "CMakeFiles/scg_core.dir/core/BallArrangementGame.cpp.o.d"
  "CMakeFiles/scg_core.dir/core/Generator.cpp.o"
  "CMakeFiles/scg_core.dir/core/Generator.cpp.o.d"
  "CMakeFiles/scg_core.dir/core/GeneratorSet.cpp.o"
  "CMakeFiles/scg_core.dir/core/GeneratorSet.cpp.o.d"
  "CMakeFiles/scg_core.dir/core/NetworkSpec.cpp.o"
  "CMakeFiles/scg_core.dir/core/NetworkSpec.cpp.o.d"
  "CMakeFiles/scg_core.dir/core/SuperCayleyGraph.cpp.o"
  "CMakeFiles/scg_core.dir/core/SuperCayleyGraph.cpp.o.d"
  "libscg_core.a"
  "libscg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
