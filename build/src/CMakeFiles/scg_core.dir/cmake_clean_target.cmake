file(REMOVE_RECURSE
  "libscg_core.a"
)
