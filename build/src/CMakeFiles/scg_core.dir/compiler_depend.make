# Empty compiler generated dependencies file for scg_core.
# This may be replaced when dependencies are built.
