
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/BallArrangementGame.cpp" "src/CMakeFiles/scg_core.dir/core/BallArrangementGame.cpp.o" "gcc" "src/CMakeFiles/scg_core.dir/core/BallArrangementGame.cpp.o.d"
  "/root/repo/src/core/Generator.cpp" "src/CMakeFiles/scg_core.dir/core/Generator.cpp.o" "gcc" "src/CMakeFiles/scg_core.dir/core/Generator.cpp.o.d"
  "/root/repo/src/core/GeneratorSet.cpp" "src/CMakeFiles/scg_core.dir/core/GeneratorSet.cpp.o" "gcc" "src/CMakeFiles/scg_core.dir/core/GeneratorSet.cpp.o.d"
  "/root/repo/src/core/NetworkSpec.cpp" "src/CMakeFiles/scg_core.dir/core/NetworkSpec.cpp.o" "gcc" "src/CMakeFiles/scg_core.dir/core/NetworkSpec.cpp.o.d"
  "/root/repo/src/core/SuperCayleyGraph.cpp" "src/CMakeFiles/scg_core.dir/core/SuperCayleyGraph.cpp.o" "gcc" "src/CMakeFiles/scg_core.dir/core/SuperCayleyGraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scg_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
