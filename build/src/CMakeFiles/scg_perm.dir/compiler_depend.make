# Empty compiler generated dependencies file for scg_perm.
# This may be replaced when dependencies are built.
