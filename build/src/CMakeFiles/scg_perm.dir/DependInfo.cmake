
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perm/GroupOrder.cpp" "src/CMakeFiles/scg_perm.dir/perm/GroupOrder.cpp.o" "gcc" "src/CMakeFiles/scg_perm.dir/perm/GroupOrder.cpp.o.d"
  "/root/repo/src/perm/Lehmer.cpp" "src/CMakeFiles/scg_perm.dir/perm/Lehmer.cpp.o" "gcc" "src/CMakeFiles/scg_perm.dir/perm/Lehmer.cpp.o.d"
  "/root/repo/src/perm/Permutation.cpp" "src/CMakeFiles/scg_perm.dir/perm/Permutation.cpp.o" "gcc" "src/CMakeFiles/scg_perm.dir/perm/Permutation.cpp.o.d"
  "/root/repo/src/perm/SJT.cpp" "src/CMakeFiles/scg_perm.dir/perm/SJT.cpp.o" "gcc" "src/CMakeFiles/scg_perm.dir/perm/SJT.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
