file(REMOVE_RECURSE
  "CMakeFiles/scg_perm.dir/perm/GroupOrder.cpp.o"
  "CMakeFiles/scg_perm.dir/perm/GroupOrder.cpp.o.d"
  "CMakeFiles/scg_perm.dir/perm/Lehmer.cpp.o"
  "CMakeFiles/scg_perm.dir/perm/Lehmer.cpp.o.d"
  "CMakeFiles/scg_perm.dir/perm/Permutation.cpp.o"
  "CMakeFiles/scg_perm.dir/perm/Permutation.cpp.o.d"
  "CMakeFiles/scg_perm.dir/perm/SJT.cpp.o"
  "CMakeFiles/scg_perm.dir/perm/SJT.cpp.o.d"
  "libscg_perm.a"
  "libscg_perm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scg_perm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
