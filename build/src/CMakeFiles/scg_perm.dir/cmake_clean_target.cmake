file(REMOVE_RECURSE
  "libscg_perm.a"
)
