# Empty compiler generated dependencies file for scg_comm.
# This may be replaced when dependencies are built.
