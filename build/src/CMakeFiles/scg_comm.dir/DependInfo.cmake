
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/BroadcastTree.cpp" "src/CMakeFiles/scg_comm.dir/comm/BroadcastTree.cpp.o" "gcc" "src/CMakeFiles/scg_comm.dir/comm/BroadcastTree.cpp.o.d"
  "/root/repo/src/comm/Collectives.cpp" "src/CMakeFiles/scg_comm.dir/comm/Collectives.cpp.o" "gcc" "src/CMakeFiles/scg_comm.dir/comm/Collectives.cpp.o.d"
  "/root/repo/src/comm/Mnb.cpp" "src/CMakeFiles/scg_comm.dir/comm/Mnb.cpp.o" "gcc" "src/CMakeFiles/scg_comm.dir/comm/Mnb.cpp.o.d"
  "/root/repo/src/comm/PermutationRouting.cpp" "src/CMakeFiles/scg_comm.dir/comm/PermutationRouting.cpp.o" "gcc" "src/CMakeFiles/scg_comm.dir/comm/PermutationRouting.cpp.o.d"
  "/root/repo/src/comm/SdcProgram.cpp" "src/CMakeFiles/scg_comm.dir/comm/SdcProgram.cpp.o" "gcc" "src/CMakeFiles/scg_comm.dir/comm/SdcProgram.cpp.o.d"
  "/root/repo/src/comm/Simulator.cpp" "src/CMakeFiles/scg_comm.dir/comm/Simulator.cpp.o" "gcc" "src/CMakeFiles/scg_comm.dir/comm/Simulator.cpp.o.d"
  "/root/repo/src/comm/TotalExchange.cpp" "src/CMakeFiles/scg_comm.dir/comm/TotalExchange.cpp.o" "gcc" "src/CMakeFiles/scg_comm.dir/comm/TotalExchange.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scg_emulation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_networks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
