file(REMOVE_RECURSE
  "libscg_comm.a"
)
