file(REMOVE_RECURSE
  "CMakeFiles/scg_comm.dir/comm/BroadcastTree.cpp.o"
  "CMakeFiles/scg_comm.dir/comm/BroadcastTree.cpp.o.d"
  "CMakeFiles/scg_comm.dir/comm/Collectives.cpp.o"
  "CMakeFiles/scg_comm.dir/comm/Collectives.cpp.o.d"
  "CMakeFiles/scg_comm.dir/comm/Mnb.cpp.o"
  "CMakeFiles/scg_comm.dir/comm/Mnb.cpp.o.d"
  "CMakeFiles/scg_comm.dir/comm/PermutationRouting.cpp.o"
  "CMakeFiles/scg_comm.dir/comm/PermutationRouting.cpp.o.d"
  "CMakeFiles/scg_comm.dir/comm/SdcProgram.cpp.o"
  "CMakeFiles/scg_comm.dir/comm/SdcProgram.cpp.o.d"
  "CMakeFiles/scg_comm.dir/comm/Simulator.cpp.o"
  "CMakeFiles/scg_comm.dir/comm/Simulator.cpp.o.d"
  "CMakeFiles/scg_comm.dir/comm/TotalExchange.cpp.o"
  "CMakeFiles/scg_comm.dir/comm/TotalExchange.cpp.o.d"
  "libscg_comm.a"
  "libscg_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scg_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
