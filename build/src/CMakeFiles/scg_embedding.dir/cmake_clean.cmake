file(REMOVE_RECURSE
  "CMakeFiles/scg_embedding.dir/embedding/CycleEmbedding.cpp.o"
  "CMakeFiles/scg_embedding.dir/embedding/CycleEmbedding.cpp.o.d"
  "CMakeFiles/scg_embedding.dir/embedding/Embedding.cpp.o"
  "CMakeFiles/scg_embedding.dir/embedding/Embedding.cpp.o.d"
  "CMakeFiles/scg_embedding.dir/embedding/HypercubeEmbedding.cpp.o"
  "CMakeFiles/scg_embedding.dir/embedding/HypercubeEmbedding.cpp.o.d"
  "CMakeFiles/scg_embedding.dir/embedding/MeshEmbeddings.cpp.o"
  "CMakeFiles/scg_embedding.dir/embedding/MeshEmbeddings.cpp.o.d"
  "CMakeFiles/scg_embedding.dir/embedding/PathTemplates.cpp.o"
  "CMakeFiles/scg_embedding.dir/embedding/PathTemplates.cpp.o.d"
  "CMakeFiles/scg_embedding.dir/embedding/StarEmbeddings.cpp.o"
  "CMakeFiles/scg_embedding.dir/embedding/StarEmbeddings.cpp.o.d"
  "CMakeFiles/scg_embedding.dir/embedding/TnEmbeddings.cpp.o"
  "CMakeFiles/scg_embedding.dir/embedding/TnEmbeddings.cpp.o.d"
  "CMakeFiles/scg_embedding.dir/embedding/TreeEmbedding.cpp.o"
  "CMakeFiles/scg_embedding.dir/embedding/TreeEmbedding.cpp.o.d"
  "libscg_embedding.a"
  "libscg_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scg_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
