file(REMOVE_RECURSE
  "libscg_embedding.a"
)
