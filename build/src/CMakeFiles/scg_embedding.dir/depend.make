# Empty dependencies file for scg_embedding.
# This may be replaced when dependencies are built.
