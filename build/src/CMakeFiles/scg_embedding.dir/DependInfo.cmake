
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embedding/CycleEmbedding.cpp" "src/CMakeFiles/scg_embedding.dir/embedding/CycleEmbedding.cpp.o" "gcc" "src/CMakeFiles/scg_embedding.dir/embedding/CycleEmbedding.cpp.o.d"
  "/root/repo/src/embedding/Embedding.cpp" "src/CMakeFiles/scg_embedding.dir/embedding/Embedding.cpp.o" "gcc" "src/CMakeFiles/scg_embedding.dir/embedding/Embedding.cpp.o.d"
  "/root/repo/src/embedding/HypercubeEmbedding.cpp" "src/CMakeFiles/scg_embedding.dir/embedding/HypercubeEmbedding.cpp.o" "gcc" "src/CMakeFiles/scg_embedding.dir/embedding/HypercubeEmbedding.cpp.o.d"
  "/root/repo/src/embedding/MeshEmbeddings.cpp" "src/CMakeFiles/scg_embedding.dir/embedding/MeshEmbeddings.cpp.o" "gcc" "src/CMakeFiles/scg_embedding.dir/embedding/MeshEmbeddings.cpp.o.d"
  "/root/repo/src/embedding/PathTemplates.cpp" "src/CMakeFiles/scg_embedding.dir/embedding/PathTemplates.cpp.o" "gcc" "src/CMakeFiles/scg_embedding.dir/embedding/PathTemplates.cpp.o.d"
  "/root/repo/src/embedding/StarEmbeddings.cpp" "src/CMakeFiles/scg_embedding.dir/embedding/StarEmbeddings.cpp.o" "gcc" "src/CMakeFiles/scg_embedding.dir/embedding/StarEmbeddings.cpp.o.d"
  "/root/repo/src/embedding/TnEmbeddings.cpp" "src/CMakeFiles/scg_embedding.dir/embedding/TnEmbeddings.cpp.o" "gcc" "src/CMakeFiles/scg_embedding.dir/embedding/TnEmbeddings.cpp.o.d"
  "/root/repo/src/embedding/TreeEmbedding.cpp" "src/CMakeFiles/scg_embedding.dir/embedding/TreeEmbedding.cpp.o" "gcc" "src/CMakeFiles/scg_embedding.dir/embedding/TreeEmbedding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scg_emulation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_networks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
