file(REMOVE_RECURSE
  "libscg_support.a"
)
