# Empty dependencies file for scg_support.
# This may be replaced when dependencies are built.
