file(REMOVE_RECURSE
  "CMakeFiles/scg_support.dir/support/Format.cpp.o"
  "CMakeFiles/scg_support.dir/support/Format.cpp.o.d"
  "libscg_support.a"
  "libscg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
