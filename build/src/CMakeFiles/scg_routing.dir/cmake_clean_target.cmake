file(REMOVE_RECURSE
  "libscg_routing.a"
)
