# Empty compiler generated dependencies file for scg_routing.
# This may be replaced when dependencies are built.
