file(REMOVE_RECURSE
  "CMakeFiles/scg_routing.dir/routing/BagSolver.cpp.o"
  "CMakeFiles/scg_routing.dir/routing/BagSolver.cpp.o.d"
  "CMakeFiles/scg_routing.dir/routing/Path.cpp.o"
  "CMakeFiles/scg_routing.dir/routing/Path.cpp.o.d"
  "CMakeFiles/scg_routing.dir/routing/RotatorRouter.cpp.o"
  "CMakeFiles/scg_routing.dir/routing/RotatorRouter.cpp.o.d"
  "CMakeFiles/scg_routing.dir/routing/RouteOptimizer.cpp.o"
  "CMakeFiles/scg_routing.dir/routing/RouteOptimizer.cpp.o.d"
  "CMakeFiles/scg_routing.dir/routing/StarRouter.cpp.o"
  "CMakeFiles/scg_routing.dir/routing/StarRouter.cpp.o.d"
  "libscg_routing.a"
  "libscg_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scg_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
