# Empty dependencies file for scg_routing.
# This may be replaced when dependencies are built.
