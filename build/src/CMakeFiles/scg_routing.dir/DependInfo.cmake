
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/BagSolver.cpp" "src/CMakeFiles/scg_routing.dir/routing/BagSolver.cpp.o" "gcc" "src/CMakeFiles/scg_routing.dir/routing/BagSolver.cpp.o.d"
  "/root/repo/src/routing/Path.cpp" "src/CMakeFiles/scg_routing.dir/routing/Path.cpp.o" "gcc" "src/CMakeFiles/scg_routing.dir/routing/Path.cpp.o.d"
  "/root/repo/src/routing/RotatorRouter.cpp" "src/CMakeFiles/scg_routing.dir/routing/RotatorRouter.cpp.o" "gcc" "src/CMakeFiles/scg_routing.dir/routing/RotatorRouter.cpp.o.d"
  "/root/repo/src/routing/RouteOptimizer.cpp" "src/CMakeFiles/scg_routing.dir/routing/RouteOptimizer.cpp.o" "gcc" "src/CMakeFiles/scg_routing.dir/routing/RouteOptimizer.cpp.o.d"
  "/root/repo/src/routing/StarRouter.cpp" "src/CMakeFiles/scg_routing.dir/routing/StarRouter.cpp.o" "gcc" "src/CMakeFiles/scg_routing.dir/routing/StarRouter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scg_networks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
