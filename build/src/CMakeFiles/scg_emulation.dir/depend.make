# Empty dependencies file for scg_emulation.
# This may be replaced when dependencies are built.
