
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emulation/AllPortSchedule.cpp" "src/CMakeFiles/scg_emulation.dir/emulation/AllPortSchedule.cpp.o" "gcc" "src/CMakeFiles/scg_emulation.dir/emulation/AllPortSchedule.cpp.o.d"
  "/root/repo/src/emulation/DimensionMap.cpp" "src/CMakeFiles/scg_emulation.dir/emulation/DimensionMap.cpp.o" "gcc" "src/CMakeFiles/scg_emulation.dir/emulation/DimensionMap.cpp.o.d"
  "/root/repo/src/emulation/FigureOne.cpp" "src/CMakeFiles/scg_emulation.dir/emulation/FigureOne.cpp.o" "gcc" "src/CMakeFiles/scg_emulation.dir/emulation/FigureOne.cpp.o.d"
  "/root/repo/src/emulation/ScgRouter.cpp" "src/CMakeFiles/scg_emulation.dir/emulation/ScgRouter.cpp.o" "gcc" "src/CMakeFiles/scg_emulation.dir/emulation/ScgRouter.cpp.o.d"
  "/root/repo/src/emulation/SdcEmulation.cpp" "src/CMakeFiles/scg_emulation.dir/emulation/SdcEmulation.cpp.o" "gcc" "src/CMakeFiles/scg_emulation.dir/emulation/SdcEmulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scg_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_networks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
