file(REMOVE_RECURSE
  "libscg_emulation.a"
)
