file(REMOVE_RECURSE
  "CMakeFiles/scg_emulation.dir/emulation/AllPortSchedule.cpp.o"
  "CMakeFiles/scg_emulation.dir/emulation/AllPortSchedule.cpp.o.d"
  "CMakeFiles/scg_emulation.dir/emulation/DimensionMap.cpp.o"
  "CMakeFiles/scg_emulation.dir/emulation/DimensionMap.cpp.o.d"
  "CMakeFiles/scg_emulation.dir/emulation/FigureOne.cpp.o"
  "CMakeFiles/scg_emulation.dir/emulation/FigureOne.cpp.o.d"
  "CMakeFiles/scg_emulation.dir/emulation/ScgRouter.cpp.o"
  "CMakeFiles/scg_emulation.dir/emulation/ScgRouter.cpp.o.d"
  "CMakeFiles/scg_emulation.dir/emulation/SdcEmulation.cpp.o"
  "CMakeFiles/scg_emulation.dir/emulation/SdcEmulation.cpp.o.d"
  "libscg_emulation.a"
  "libscg_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scg_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
