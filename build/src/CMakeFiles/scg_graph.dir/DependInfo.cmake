
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/Bfs.cpp" "src/CMakeFiles/scg_graph.dir/graph/Bfs.cpp.o" "gcc" "src/CMakeFiles/scg_graph.dir/graph/Bfs.cpp.o.d"
  "/root/repo/src/graph/Dot.cpp" "src/CMakeFiles/scg_graph.dir/graph/Dot.cpp.o" "gcc" "src/CMakeFiles/scg_graph.dir/graph/Dot.cpp.o.d"
  "/root/repo/src/graph/Faults.cpp" "src/CMakeFiles/scg_graph.dir/graph/Faults.cpp.o" "gcc" "src/CMakeFiles/scg_graph.dir/graph/Faults.cpp.o.d"
  "/root/repo/src/graph/Graph.cpp" "src/CMakeFiles/scg_graph.dir/graph/Graph.cpp.o" "gcc" "src/CMakeFiles/scg_graph.dir/graph/Graph.cpp.o.d"
  "/root/repo/src/graph/Metrics.cpp" "src/CMakeFiles/scg_graph.dir/graph/Metrics.cpp.o" "gcc" "src/CMakeFiles/scg_graph.dir/graph/Metrics.cpp.o.d"
  "/root/repo/src/graph/MooreBounds.cpp" "src/CMakeFiles/scg_graph.dir/graph/MooreBounds.cpp.o" "gcc" "src/CMakeFiles/scg_graph.dir/graph/MooreBounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
