# Empty dependencies file for scg_graph.
# This may be replaced when dependencies are built.
