file(REMOVE_RECURSE
  "libscg_graph.a"
)
