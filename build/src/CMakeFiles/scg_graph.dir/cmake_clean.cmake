file(REMOVE_RECURSE
  "CMakeFiles/scg_graph.dir/graph/Bfs.cpp.o"
  "CMakeFiles/scg_graph.dir/graph/Bfs.cpp.o.d"
  "CMakeFiles/scg_graph.dir/graph/Dot.cpp.o"
  "CMakeFiles/scg_graph.dir/graph/Dot.cpp.o.d"
  "CMakeFiles/scg_graph.dir/graph/Faults.cpp.o"
  "CMakeFiles/scg_graph.dir/graph/Faults.cpp.o.d"
  "CMakeFiles/scg_graph.dir/graph/Graph.cpp.o"
  "CMakeFiles/scg_graph.dir/graph/Graph.cpp.o.d"
  "CMakeFiles/scg_graph.dir/graph/Metrics.cpp.o"
  "CMakeFiles/scg_graph.dir/graph/Metrics.cpp.o.d"
  "CMakeFiles/scg_graph.dir/graph/MooreBounds.cpp.o"
  "CMakeFiles/scg_graph.dir/graph/MooreBounds.cpp.o.d"
  "libscg_graph.a"
  "libscg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
