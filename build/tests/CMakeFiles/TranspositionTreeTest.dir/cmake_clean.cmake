file(REMOVE_RECURSE
  "CMakeFiles/TranspositionTreeTest.dir/TranspositionTreeTest.cpp.o"
  "CMakeFiles/TranspositionTreeTest.dir/TranspositionTreeTest.cpp.o.d"
  "TranspositionTreeTest"
  "TranspositionTreeTest.pdb"
  "TranspositionTreeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TranspositionTreeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
