# Empty dependencies file for TranspositionTreeTest.
# This may be replaced when dependencies are built.
