file(REMOVE_RECURSE
  "CMakeFiles/CollectivesTest.dir/CollectivesTest.cpp.o"
  "CMakeFiles/CollectivesTest.dir/CollectivesTest.cpp.o.d"
  "CollectivesTest"
  "CollectivesTest.pdb"
  "CollectivesTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CollectivesTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
