# Empty dependencies file for CollectivesTest.
# This may be replaced when dependencies are built.
