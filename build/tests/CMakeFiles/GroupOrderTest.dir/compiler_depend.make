# Empty compiler generated dependencies file for GroupOrderTest.
# This may be replaced when dependencies are built.
