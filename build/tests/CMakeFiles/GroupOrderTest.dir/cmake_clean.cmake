file(REMOVE_RECURSE
  "CMakeFiles/GroupOrderTest.dir/GroupOrderTest.cpp.o"
  "CMakeFiles/GroupOrderTest.dir/GroupOrderTest.cpp.o.d"
  "GroupOrderTest"
  "GroupOrderTest.pdb"
  "GroupOrderTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GroupOrderTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
