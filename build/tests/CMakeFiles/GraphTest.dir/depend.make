# Empty dependencies file for GraphTest.
# This may be replaced when dependencies are built.
