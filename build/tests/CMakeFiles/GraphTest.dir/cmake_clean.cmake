file(REMOVE_RECURSE
  "CMakeFiles/GraphTest.dir/GraphTest.cpp.o"
  "CMakeFiles/GraphTest.dir/GraphTest.cpp.o.d"
  "GraphTest"
  "GraphTest.pdb"
  "GraphTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GraphTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
