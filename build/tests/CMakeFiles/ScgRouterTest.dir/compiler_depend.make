# Empty compiler generated dependencies file for ScgRouterTest.
# This may be replaced when dependencies are built.
