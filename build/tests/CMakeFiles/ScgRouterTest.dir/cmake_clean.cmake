file(REMOVE_RECURSE
  "CMakeFiles/ScgRouterTest.dir/ScgRouterTest.cpp.o"
  "CMakeFiles/ScgRouterTest.dir/ScgRouterTest.cpp.o.d"
  "ScgRouterTest"
  "ScgRouterTest.pdb"
  "ScgRouterTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ScgRouterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
