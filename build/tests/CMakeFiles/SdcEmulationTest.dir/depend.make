# Empty dependencies file for SdcEmulationTest.
# This may be replaced when dependencies are built.
