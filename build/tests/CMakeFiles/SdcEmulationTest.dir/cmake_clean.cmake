file(REMOVE_RECURSE
  "CMakeFiles/SdcEmulationTest.dir/SdcEmulationTest.cpp.o"
  "CMakeFiles/SdcEmulationTest.dir/SdcEmulationTest.cpp.o.d"
  "SdcEmulationTest"
  "SdcEmulationTest.pdb"
  "SdcEmulationTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SdcEmulationTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
