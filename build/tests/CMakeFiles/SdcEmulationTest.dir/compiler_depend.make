# Empty compiler generated dependencies file for SdcEmulationTest.
# This may be replaced when dependencies are built.
