file(REMOVE_RECURSE
  "CMakeFiles/SdcProgramTest.dir/SdcProgramTest.cpp.o"
  "CMakeFiles/SdcProgramTest.dir/SdcProgramTest.cpp.o.d"
  "SdcProgramTest"
  "SdcProgramTest.pdb"
  "SdcProgramTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SdcProgramTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
