# Empty compiler generated dependencies file for SdcProgramTest.
# This may be replaced when dependencies are built.
