# Empty dependencies file for ClustersTest.
# This may be replaced when dependencies are built.
