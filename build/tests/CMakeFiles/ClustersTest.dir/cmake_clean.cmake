file(REMOVE_RECURSE
  "CMakeFiles/ClustersTest.dir/ClustersTest.cpp.o"
  "CMakeFiles/ClustersTest.dir/ClustersTest.cpp.o.d"
  "ClustersTest"
  "ClustersTest.pdb"
  "ClustersTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ClustersTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
