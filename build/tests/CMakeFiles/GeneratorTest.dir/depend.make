# Empty dependencies file for GeneratorTest.
# This may be replaced when dependencies are built.
