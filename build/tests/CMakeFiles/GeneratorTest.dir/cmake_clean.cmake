file(REMOVE_RECURSE
  "CMakeFiles/GeneratorTest.dir/GeneratorTest.cpp.o"
  "CMakeFiles/GeneratorTest.dir/GeneratorTest.cpp.o.d"
  "GeneratorTest"
  "GeneratorTest.pdb"
  "GeneratorTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GeneratorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
