# Empty dependencies file for StarEmbeddingSweepTest.
# This may be replaced when dependencies are built.
