file(REMOVE_RECURSE
  "CMakeFiles/StarEmbeddingSweepTest.dir/StarEmbeddingSweepTest.cpp.o"
  "CMakeFiles/StarEmbeddingSweepTest.dir/StarEmbeddingSweepTest.cpp.o.d"
  "StarEmbeddingSweepTest"
  "StarEmbeddingSweepTest.pdb"
  "StarEmbeddingSweepTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StarEmbeddingSweepTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
