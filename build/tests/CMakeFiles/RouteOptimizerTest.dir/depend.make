# Empty dependencies file for RouteOptimizerTest.
# This may be replaced when dependencies are built.
