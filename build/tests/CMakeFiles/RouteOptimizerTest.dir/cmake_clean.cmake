file(REMOVE_RECURSE
  "CMakeFiles/RouteOptimizerTest.dir/RouteOptimizerTest.cpp.o"
  "CMakeFiles/RouteOptimizerTest.dir/RouteOptimizerTest.cpp.o.d"
  "RouteOptimizerTest"
  "RouteOptimizerTest.pdb"
  "RouteOptimizerTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RouteOptimizerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
