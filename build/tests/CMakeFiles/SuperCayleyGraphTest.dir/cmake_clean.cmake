file(REMOVE_RECURSE
  "CMakeFiles/SuperCayleyGraphTest.dir/SuperCayleyGraphTest.cpp.o"
  "CMakeFiles/SuperCayleyGraphTest.dir/SuperCayleyGraphTest.cpp.o.d"
  "SuperCayleyGraphTest"
  "SuperCayleyGraphTest.pdb"
  "SuperCayleyGraphTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SuperCayleyGraphTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
