# Empty dependencies file for SuperCayleyGraphTest.
# This may be replaced when dependencies are built.
