# Empty dependencies file for MeshEmbeddingTest.
# This may be replaced when dependencies are built.
