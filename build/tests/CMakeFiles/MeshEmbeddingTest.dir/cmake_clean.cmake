file(REMOVE_RECURSE
  "CMakeFiles/MeshEmbeddingTest.dir/MeshEmbeddingTest.cpp.o"
  "CMakeFiles/MeshEmbeddingTest.dir/MeshEmbeddingTest.cpp.o.d"
  "MeshEmbeddingTest"
  "MeshEmbeddingTest.pdb"
  "MeshEmbeddingTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MeshEmbeddingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
