file(REMOVE_RECURSE
  "CMakeFiles/CorollariesTest.dir/CorollariesTest.cpp.o"
  "CMakeFiles/CorollariesTest.dir/CorollariesTest.cpp.o.d"
  "CorollariesTest"
  "CorollariesTest.pdb"
  "CorollariesTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CorollariesTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
