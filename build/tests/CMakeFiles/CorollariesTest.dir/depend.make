# Empty dependencies file for CorollariesTest.
# This may be replaced when dependencies are built.
