# Empty dependencies file for BagSolverTest.
# This may be replaced when dependencies are built.
