file(REMOVE_RECURSE
  "BagSolverTest"
  "BagSolverTest.pdb"
  "BagSolverTest[1]_tests.cmake"
  "CMakeFiles/BagSolverTest.dir/BagSolverTest.cpp.o"
  "CMakeFiles/BagSolverTest.dir/BagSolverTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BagSolverTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
