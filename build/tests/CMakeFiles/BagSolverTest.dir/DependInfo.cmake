
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/BagSolverTest.cpp" "tests/CMakeFiles/BagSolverTest.dir/BagSolverTest.cpp.o" "gcc" "tests/CMakeFiles/BagSolverTest.dir/BagSolverTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scg_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_emulation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_networks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
