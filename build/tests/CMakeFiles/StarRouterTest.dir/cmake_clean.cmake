file(REMOVE_RECURSE
  "CMakeFiles/StarRouterTest.dir/StarRouterTest.cpp.o"
  "CMakeFiles/StarRouterTest.dir/StarRouterTest.cpp.o.d"
  "StarRouterTest"
  "StarRouterTest.pdb"
  "StarRouterTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StarRouterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
