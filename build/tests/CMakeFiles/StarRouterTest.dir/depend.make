# Empty dependencies file for StarRouterTest.
# This may be replaced when dependencies are built.
