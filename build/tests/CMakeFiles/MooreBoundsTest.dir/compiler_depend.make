# Empty compiler generated dependencies file for MooreBoundsTest.
# This may be replaced when dependencies are built.
