file(REMOVE_RECURSE
  "CMakeFiles/MooreBoundsTest.dir/MooreBoundsTest.cpp.o"
  "CMakeFiles/MooreBoundsTest.dir/MooreBoundsTest.cpp.o.d"
  "MooreBoundsTest"
  "MooreBoundsTest.pdb"
  "MooreBoundsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MooreBoundsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
