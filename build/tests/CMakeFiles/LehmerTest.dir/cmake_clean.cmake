file(REMOVE_RECURSE
  "CMakeFiles/LehmerTest.dir/LehmerTest.cpp.o"
  "CMakeFiles/LehmerTest.dir/LehmerTest.cpp.o.d"
  "LehmerTest"
  "LehmerTest.pdb"
  "LehmerTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LehmerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
