# Empty dependencies file for LehmerTest.
# This may be replaced when dependencies are built.
