file(REMOVE_RECURSE
  "CMakeFiles/HypercubeEmbeddingTest.dir/HypercubeEmbeddingTest.cpp.o"
  "CMakeFiles/HypercubeEmbeddingTest.dir/HypercubeEmbeddingTest.cpp.o.d"
  "HypercubeEmbeddingTest"
  "HypercubeEmbeddingTest.pdb"
  "HypercubeEmbeddingTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/HypercubeEmbeddingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
