# Empty dependencies file for HypercubeEmbeddingTest.
# This may be replaced when dependencies are built.
