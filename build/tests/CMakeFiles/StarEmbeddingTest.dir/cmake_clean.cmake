file(REMOVE_RECURSE
  "CMakeFiles/StarEmbeddingTest.dir/StarEmbeddingTest.cpp.o"
  "CMakeFiles/StarEmbeddingTest.dir/StarEmbeddingTest.cpp.o.d"
  "StarEmbeddingTest"
  "StarEmbeddingTest.pdb"
  "StarEmbeddingTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StarEmbeddingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
