# Empty dependencies file for StarEmbeddingTest.
# This may be replaced when dependencies are built.
