# Empty compiler generated dependencies file for SjtTest.
# This may be replaced when dependencies are built.
