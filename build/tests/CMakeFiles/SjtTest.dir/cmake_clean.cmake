file(REMOVE_RECURSE
  "CMakeFiles/SjtTest.dir/SjtTest.cpp.o"
  "CMakeFiles/SjtTest.dir/SjtTest.cpp.o.d"
  "SjtTest"
  "SjtTest.pdb"
  "SjtTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SjtTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
