# Empty compiler generated dependencies file for DotTest.
# This may be replaced when dependencies are built.
