file(REMOVE_RECURSE
  "CMakeFiles/DotTest.dir/DotTest.cpp.o"
  "CMakeFiles/DotTest.dir/DotTest.cpp.o.d"
  "DotTest"
  "DotTest.pdb"
  "DotTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DotTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
