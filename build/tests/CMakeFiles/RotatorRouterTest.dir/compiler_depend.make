# Empty compiler generated dependencies file for RotatorRouterTest.
# This may be replaced when dependencies are built.
