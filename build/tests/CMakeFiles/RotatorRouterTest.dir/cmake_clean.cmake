file(REMOVE_RECURSE
  "CMakeFiles/RotatorRouterTest.dir/RotatorRouterTest.cpp.o"
  "CMakeFiles/RotatorRouterTest.dir/RotatorRouterTest.cpp.o.d"
  "RotatorRouterTest"
  "RotatorRouterTest.pdb"
  "RotatorRouterTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RotatorRouterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
