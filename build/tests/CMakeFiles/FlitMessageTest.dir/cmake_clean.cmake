file(REMOVE_RECURSE
  "CMakeFiles/FlitMessageTest.dir/FlitMessageTest.cpp.o"
  "CMakeFiles/FlitMessageTest.dir/FlitMessageTest.cpp.o.d"
  "FlitMessageTest"
  "FlitMessageTest.pdb"
  "FlitMessageTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FlitMessageTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
