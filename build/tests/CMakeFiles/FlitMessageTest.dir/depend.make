# Empty dependencies file for FlitMessageTest.
# This may be replaced when dependencies are built.
