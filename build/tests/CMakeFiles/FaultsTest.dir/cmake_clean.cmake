file(REMOVE_RECURSE
  "CMakeFiles/FaultsTest.dir/FaultsTest.cpp.o"
  "CMakeFiles/FaultsTest.dir/FaultsTest.cpp.o.d"
  "FaultsTest"
  "FaultsTest.pdb"
  "FaultsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FaultsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
