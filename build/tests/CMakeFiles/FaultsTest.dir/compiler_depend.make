# Empty compiler generated dependencies file for FaultsTest.
# This may be replaced when dependencies are built.
