# Empty compiler generated dependencies file for MnbStripedTest.
# This may be replaced when dependencies are built.
