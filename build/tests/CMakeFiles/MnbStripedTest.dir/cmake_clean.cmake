file(REMOVE_RECURSE
  "CMakeFiles/MnbStripedTest.dir/MnbStripedTest.cpp.o"
  "CMakeFiles/MnbStripedTest.dir/MnbStripedTest.cpp.o.d"
  "MnbStripedTest"
  "MnbStripedTest.pdb"
  "MnbStripedTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MnbStripedTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
