file(REMOVE_RECURSE
  "CMakeFiles/SimulatorPropertyTest.dir/SimulatorPropertyTest.cpp.o"
  "CMakeFiles/SimulatorPropertyTest.dir/SimulatorPropertyTest.cpp.o.d"
  "SimulatorPropertyTest"
  "SimulatorPropertyTest.pdb"
  "SimulatorPropertyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SimulatorPropertyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
