# Empty compiler generated dependencies file for SimulatorPropertyTest.
# This may be replaced when dependencies are built.
