file(REMOVE_RECURSE
  "CMakeFiles/EmbeddingTest.dir/EmbeddingTest.cpp.o"
  "CMakeFiles/EmbeddingTest.dir/EmbeddingTest.cpp.o.d"
  "EmbeddingTest"
  "EmbeddingTest.pdb"
  "EmbeddingTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EmbeddingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
