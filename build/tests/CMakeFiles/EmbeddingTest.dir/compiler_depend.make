# Empty compiler generated dependencies file for EmbeddingTest.
# This may be replaced when dependencies are built.
