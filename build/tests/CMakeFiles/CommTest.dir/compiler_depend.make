# Empty compiler generated dependencies file for CommTest.
# This may be replaced when dependencies are built.
