file(REMOVE_RECURSE
  "CMakeFiles/ExhaustiveSmallTest.dir/ExhaustiveSmallTest.cpp.o"
  "CMakeFiles/ExhaustiveSmallTest.dir/ExhaustiveSmallTest.cpp.o.d"
  "ExhaustiveSmallTest"
  "ExhaustiveSmallTest.pdb"
  "ExhaustiveSmallTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExhaustiveSmallTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
