# Empty dependencies file for ExhaustiveSmallTest.
# This may be replaced when dependencies are built.
