# Empty dependencies file for TnEmbeddingTest.
# This may be replaced when dependencies are built.
