file(REMOVE_RECURSE
  "CMakeFiles/TnEmbeddingTest.dir/TnEmbeddingTest.cpp.o"
  "CMakeFiles/TnEmbeddingTest.dir/TnEmbeddingTest.cpp.o.d"
  "TnEmbeddingTest"
  "TnEmbeddingTest.pdb"
  "TnEmbeddingTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TnEmbeddingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
