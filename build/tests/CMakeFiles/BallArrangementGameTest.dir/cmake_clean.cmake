file(REMOVE_RECURSE
  "BallArrangementGameTest"
  "BallArrangementGameTest.pdb"
  "BallArrangementGameTest[1]_tests.cmake"
  "CMakeFiles/BallArrangementGameTest.dir/BallArrangementGameTest.cpp.o"
  "CMakeFiles/BallArrangementGameTest.dir/BallArrangementGameTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BallArrangementGameTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
