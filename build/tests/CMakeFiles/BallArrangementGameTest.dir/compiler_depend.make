# Empty compiler generated dependencies file for BallArrangementGameTest.
# This may be replaced when dependencies are built.
