file(REMOVE_RECURSE
  "CMakeFiles/PermutationTest.dir/PermutationTest.cpp.o"
  "CMakeFiles/PermutationTest.dir/PermutationTest.cpp.o.d"
  "PermutationTest"
  "PermutationTest.pdb"
  "PermutationTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PermutationTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
