# Empty dependencies file for PermutationTest.
# This may be replaced when dependencies are built.
