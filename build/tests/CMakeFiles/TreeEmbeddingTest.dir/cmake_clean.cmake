file(REMOVE_RECURSE
  "CMakeFiles/TreeEmbeddingTest.dir/TreeEmbeddingTest.cpp.o"
  "CMakeFiles/TreeEmbeddingTest.dir/TreeEmbeddingTest.cpp.o.d"
  "TreeEmbeddingTest"
  "TreeEmbeddingTest.pdb"
  "TreeEmbeddingTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TreeEmbeddingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
