# Empty dependencies file for TreeEmbeddingTest.
# This may be replaced when dependencies are built.
