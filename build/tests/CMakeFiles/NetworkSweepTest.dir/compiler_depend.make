# Empty compiler generated dependencies file for NetworkSweepTest.
# This may be replaced when dependencies are built.
