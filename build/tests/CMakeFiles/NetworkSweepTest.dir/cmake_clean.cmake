file(REMOVE_RECURSE
  "CMakeFiles/NetworkSweepTest.dir/NetworkSweepTest.cpp.o"
  "CMakeFiles/NetworkSweepTest.dir/NetworkSweepTest.cpp.o.d"
  "NetworkSweepTest"
  "NetworkSweepTest.pdb"
  "NetworkSweepTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/NetworkSweepTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
