# Empty dependencies file for GeneratorSetTest.
# This may be replaced when dependencies are built.
