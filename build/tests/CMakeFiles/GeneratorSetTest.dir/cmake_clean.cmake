file(REMOVE_RECURSE
  "CMakeFiles/GeneratorSetTest.dir/GeneratorSetTest.cpp.o"
  "CMakeFiles/GeneratorSetTest.dir/GeneratorSetTest.cpp.o.d"
  "GeneratorSetTest"
  "GeneratorSetTest.pdb"
  "GeneratorSetTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GeneratorSetTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
