# Empty compiler generated dependencies file for NetworksTest.
# This may be replaced when dependencies are built.
