file(REMOVE_RECURSE
  "CMakeFiles/NetworksTest.dir/NetworksTest.cpp.o"
  "CMakeFiles/NetworksTest.dir/NetworksTest.cpp.o.d"
  "NetworksTest"
  "NetworksTest.pdb"
  "NetworksTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/NetworksTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
