# Empty dependencies file for PermutationRoutingTest.
# This may be replaced when dependencies are built.
