file(REMOVE_RECURSE
  "CMakeFiles/PermutationRoutingTest.dir/PermutationRoutingTest.cpp.o"
  "CMakeFiles/PermutationRoutingTest.dir/PermutationRoutingTest.cpp.o.d"
  "PermutationRoutingTest"
  "PermutationRoutingTest.pdb"
  "PermutationRoutingTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PermutationRoutingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
