file(REMOVE_RECURSE
  "CMakeFiles/CycleEmbeddingTest.dir/CycleEmbeddingTest.cpp.o"
  "CMakeFiles/CycleEmbeddingTest.dir/CycleEmbeddingTest.cpp.o.d"
  "CycleEmbeddingTest"
  "CycleEmbeddingTest.pdb"
  "CycleEmbeddingTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CycleEmbeddingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
