# Empty compiler generated dependencies file for CycleEmbeddingTest.
# This may be replaced when dependencies are built.
