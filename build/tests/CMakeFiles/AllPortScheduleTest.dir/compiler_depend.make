# Empty compiler generated dependencies file for AllPortScheduleTest.
# This may be replaced when dependencies are built.
