file(REMOVE_RECURSE
  "AllPortScheduleTest"
  "AllPortScheduleTest.pdb"
  "AllPortScheduleTest[1]_tests.cmake"
  "CMakeFiles/AllPortScheduleTest.dir/AllPortScheduleTest.cpp.o"
  "CMakeFiles/AllPortScheduleTest.dir/AllPortScheduleTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AllPortScheduleTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
