file(REMOVE_RECURSE
  "CMakeFiles/RenderingTest.dir/RenderingTest.cpp.o"
  "CMakeFiles/RenderingTest.dir/RenderingTest.cpp.o.d"
  "RenderingTest"
  "RenderingTest.pdb"
  "RenderingTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RenderingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
