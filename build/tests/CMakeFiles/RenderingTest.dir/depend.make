# Empty dependencies file for RenderingTest.
# This may be replaced when dependencies are built.
