file(REMOVE_RECURSE
  "CMakeFiles/NetworkSpecTest.dir/NetworkSpecTest.cpp.o"
  "CMakeFiles/NetworkSpecTest.dir/NetworkSpecTest.cpp.o.d"
  "NetworkSpecTest"
  "NetworkSpecTest.pdb"
  "NetworkSpecTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/NetworkSpecTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
