# Empty dependencies file for NetworkSpecTest.
# This may be replaced when dependencies are built.
