# Empty dependencies file for SinglePortEmulationTest.
# This may be replaced when dependencies are built.
