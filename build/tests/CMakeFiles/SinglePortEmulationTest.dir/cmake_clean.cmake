file(REMOVE_RECURSE
  "CMakeFiles/SinglePortEmulationTest.dir/SinglePortEmulationTest.cpp.o"
  "CMakeFiles/SinglePortEmulationTest.dir/SinglePortEmulationTest.cpp.o.d"
  "SinglePortEmulationTest"
  "SinglePortEmulationTest.pdb"
  "SinglePortEmulationTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SinglePortEmulationTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
