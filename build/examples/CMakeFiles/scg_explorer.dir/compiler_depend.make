# Empty compiler generated dependencies file for scg_explorer.
# This may be replaced when dependencies are built.
