# Empty dependencies file for scg_explorer.
# This may be replaced when dependencies are built.
