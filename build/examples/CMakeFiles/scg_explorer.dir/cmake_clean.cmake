file(REMOVE_RECURSE
  "CMakeFiles/scg_explorer.dir/scg_explorer.cpp.o"
  "CMakeFiles/scg_explorer.dir/scg_explorer.cpp.o.d"
  "scg_explorer"
  "scg_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scg_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
