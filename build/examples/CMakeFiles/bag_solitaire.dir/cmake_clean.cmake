file(REMOVE_RECURSE
  "CMakeFiles/bag_solitaire.dir/bag_solitaire.cpp.o"
  "CMakeFiles/bag_solitaire.dir/bag_solitaire.cpp.o.d"
  "bag_solitaire"
  "bag_solitaire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bag_solitaire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
