# Empty dependencies file for bag_solitaire.
# This may be replaced when dependencies are built.
