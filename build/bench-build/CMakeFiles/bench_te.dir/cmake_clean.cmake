file(REMOVE_RECURSE
  "../bench/bench_te"
  "../bench/bench_te.pdb"
  "CMakeFiles/bench_te.dir/bench_te.cpp.o"
  "CMakeFiles/bench_te.dir/bench_te.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
