file(REMOVE_RECURSE
  "../bench/bench_mnb"
  "../bench/bench_mnb.pdb"
  "CMakeFiles/bench_mnb.dir/bench_mnb.cpp.o"
  "CMakeFiles/bench_mnb.dir/bench_mnb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mnb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
