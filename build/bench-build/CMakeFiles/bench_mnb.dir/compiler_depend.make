# Empty compiler generated dependencies file for bench_mnb.
# This may be replaced when dependencies are built.
