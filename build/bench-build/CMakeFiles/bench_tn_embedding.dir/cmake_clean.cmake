file(REMOVE_RECURSE
  "../bench/bench_tn_embedding"
  "../bench/bench_tn_embedding.pdb"
  "CMakeFiles/bench_tn_embedding.dir/bench_tn_embedding.cpp.o"
  "CMakeFiles/bench_tn_embedding.dir/bench_tn_embedding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tn_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
