# Empty dependencies file for bench_tn_embedding.
# This may be replaced when dependencies are built.
