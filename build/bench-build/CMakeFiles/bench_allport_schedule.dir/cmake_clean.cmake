file(REMOVE_RECURSE
  "../bench/bench_allport_schedule"
  "../bench/bench_allport_schedule.pdb"
  "CMakeFiles/bench_allport_schedule.dir/bench_allport_schedule.cpp.o"
  "CMakeFiles/bench_allport_schedule.dir/bench_allport_schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allport_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
