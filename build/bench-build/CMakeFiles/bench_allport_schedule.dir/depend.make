# Empty dependencies file for bench_allport_schedule.
# This may be replaced when dependencies are built.
