file(REMOVE_RECURSE
  "../bench/bench_pipelining"
  "../bench/bench_pipelining.pdb"
  "CMakeFiles/bench_pipelining.dir/bench_pipelining.cpp.o"
  "CMakeFiles/bench_pipelining.dir/bench_pipelining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
