file(REMOVE_RECURSE
  "../bench/bench_star_embedding"
  "../bench/bench_star_embedding.pdb"
  "CMakeFiles/bench_star_embedding.dir/bench_star_embedding.cpp.o"
  "CMakeFiles/bench_star_embedding.dir/bench_star_embedding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
