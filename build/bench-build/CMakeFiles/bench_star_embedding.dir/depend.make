# Empty dependencies file for bench_star_embedding.
# This may be replaced when dependencies are built.
