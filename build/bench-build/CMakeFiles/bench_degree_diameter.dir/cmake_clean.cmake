file(REMOVE_RECURSE
  "../bench/bench_degree_diameter"
  "../bench/bench_degree_diameter.pdb"
  "CMakeFiles/bench_degree_diameter.dir/bench_degree_diameter.cpp.o"
  "CMakeFiles/bench_degree_diameter.dir/bench_degree_diameter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degree_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
