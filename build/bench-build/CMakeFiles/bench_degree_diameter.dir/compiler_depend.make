# Empty compiler generated dependencies file for bench_degree_diameter.
# This may be replaced when dependencies are built.
