# Empty dependencies file for bench_classic_embeddings.
# This may be replaced when dependencies are built.
