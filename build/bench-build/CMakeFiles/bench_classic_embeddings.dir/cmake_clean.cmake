file(REMOVE_RECURSE
  "../bench/bench_classic_embeddings"
  "../bench/bench_classic_embeddings.pdb"
  "CMakeFiles/bench_classic_embeddings.dir/bench_classic_embeddings.cpp.o"
  "CMakeFiles/bench_classic_embeddings.dir/bench_classic_embeddings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classic_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
