# Empty dependencies file for bench_network_properties.
# This may be replaced when dependencies are built.
