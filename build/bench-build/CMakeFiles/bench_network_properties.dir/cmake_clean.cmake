file(REMOVE_RECURSE
  "../bench/bench_network_properties"
  "../bench/bench_network_properties.pdb"
  "CMakeFiles/bench_network_properties.dir/bench_network_properties.cpp.o"
  "CMakeFiles/bench_network_properties.dir/bench_network_properties.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
