file(REMOVE_RECURSE
  "../bench/bench_sdc_emulation"
  "../bench/bench_sdc_emulation.pdb"
  "CMakeFiles/bench_sdc_emulation.dir/bench_sdc_emulation.cpp.o"
  "CMakeFiles/bench_sdc_emulation.dir/bench_sdc_emulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdc_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
