# Empty compiler generated dependencies file for bench_sdc_emulation.
# This may be replaced when dependencies are built.
