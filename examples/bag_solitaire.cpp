//===- examples/bag_solitaire.cpp - Watch the BAG being solved -----------===//
//
// Scrambles the ball-arrangement game of a chosen super Cayley graph with
// random moves, then replays an optimal solution move by move, printing
// the box view after every action. Demonstrates the paper's Section 2
// correspondence: solving the game IS routing in the network.
//
// Usage:  build/examples/bag_solitaire [kind] [l] [n] [scramble-moves]
//   kind: MS | RS | complete-RS | MIS | RIS | complete-RIS (default MS)
//
//===----------------------------------------------------------------------===//

#include "core/BallArrangementGame.h"
#include "routing/BagSolver.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace scg;

static NetworkKind parseKind(const char *Name) {
  if (!std::strcmp(Name, "RS"))
    return NetworkKind::RotationStar;
  if (!std::strcmp(Name, "complete-RS"))
    return NetworkKind::CompleteRotationStar;
  if (!std::strcmp(Name, "MIS"))
    return NetworkKind::MacroIS;
  if (!std::strcmp(Name, "RIS"))
    return NetworkKind::RotationIS;
  if (!std::strcmp(Name, "complete-RIS"))
    return NetworkKind::CompleteRotationIS;
  return NetworkKind::MacroStar;
}

int main(int Argc, char **Argv) {
  NetworkKind Kind = Argc > 1 ? parseKind(Argv[1]) : NetworkKind::MacroStar;
  unsigned L = Argc > 2 ? std::atoi(Argv[2]) : 3;
  unsigned N = Argc > 3 ? std::atoi(Argv[3]) : 2;
  unsigned Scramble = Argc > 4 ? std::atoi(Argv[4]) : 9;

  SuperCayleyGraph Net = SuperCayleyGraph::create(Kind, L, N);
  std::printf("playing the ball-arrangement game on %s\n\n",
              Net.name().c_str());

  // Scramble with random moves.
  BallArrangementGame Game(Net, Permutation::identity(Net.numSymbols()));
  SplitMix64 Rng(0xBA6BA6);
  for (unsigned I = 0; I != Scramble; ++I)
    Game.play(Rng.nextBelow(Net.degree()));
  Permutation Start = Game.configuration();
  std::printf("scrambled with %u moves:  %s\n", Scramble,
              Game.render().c_str());
  std::printf("misplaced balls: %u\n\n", Game.numMisplacedBalls());

  // Solve optimally and replay.
  auto Solution = solveBag(Net, Start, Permutation::identity(Net.numSymbols()));
  if (!Solution) {
    std::printf("no solution found\n");
    return 1;
  }
  std::printf("optimal solution has %u moves:\n", Solution->length());
  BallArrangementGame Replay(Net, Start);
  std::printf("  %-6s %s\n", "", Replay.render().c_str());
  for (GenIndex G : Solution->hops()) {
    Replay.play(G);
    std::printf("  %-6s %s\n", Net.generators()[G].Name.c_str(),
                Replay.render().c_str());
  }
  std::printf("\nsolved: %s\n", Replay.isSolved() ? "yes" : "NO (bug!)");
  return Replay.isSolved() ? 0 : 1;
}
