//===- examples/embedding_atlas.cpp - Section 5 embeddings tour ----------===//
//
// Builds every guest topology of Section 5 (tree, hypercube, SJT mesh,
// Lehmer mesh, transposition network, star graph) and embeds it into a
// chosen super Cayley graph, printing the measured load / expansion /
// dilation / congestion for each.
//
// Usage:  build/examples/embedding_atlas [k]   (default 5, max 7)
//
//===----------------------------------------------------------------------===//

#include "embedding/HypercubeEmbedding.h"
#include "embedding/MeshEmbeddings.h"
#include "embedding/StarEmbeddings.h"
#include "embedding/TreeEmbedding.h"
#include "networks/Classic.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>

using namespace scg;

namespace {

void report(TextTable &Table, const std::string &Guest,
            const std::string &Host, const Graph &G, const Embedding &E) {
  EmbeddingMetrics M = measureEmbedding(G, E);
  Table.addRow({Guest, Host, M.Valid ? "yes" : "NO",
                std::to_string(M.Load), formatDouble(M.Expansion, 2),
                std::to_string(M.Dilation), std::to_string(M.Congestion)});
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned K = Argc > 1 ? std::atoi(Argv[1]) : 5;
  if (K < 4 || K > 7) {
    std::printf("k must be in 4..7\n");
    return 1;
  }

  SuperCayleyGraph Star = SuperCayleyGraph::star(K);
  SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(K);
  TextTable Table;
  Table.setHeader({"guest", "host", "valid", "load", "expansion",
                   "dilation", "congestion"});

  // Star graph into super Cayley graphs of the same size (Section 3).
  if ((K - 1) % 2 == 0) {
    SuperCayleyGraph Ms =
        SuperCayleyGraph::create(NetworkKind::MacroStar, (K - 1) / 2, 2);
    Graph Guest = ExplicitScg(Star).toGraph();
    report(Table, Star.name(), Ms.name(), Guest, embedStarInto(Star, Ms));
  }
  SuperCayleyGraph Is = SuperCayleyGraph::insertionSelection(K);
  {
    Graph Guest = ExplicitScg(Star).toGraph();
    report(Table, Star.name(), Is.name(), Guest, embedStarInto(Star, Is));
  }

  // Complete binary tree into the star graph (Corollary 4 base case).
  {
    ExplicitScg StarX(Star);
    unsigned Height = K >= 6 ? 4 : 3;
    TreeEmbeddingResult R = embedTreeIntoStar(StarX, Height, 1);
    if (R.Found)
      report(Table, "CBT(h=" + std::to_string(Height) + ")", Star.name(),
             completeBinaryTree(Height), R.E);
  }

  // Hypercube into the star graph (Corollary 5 substitute construction).
  report(Table, "Q" + std::to_string(hypercubeDimensionFor(K)), Star.name(),
         hypercube(hypercubeDimensionFor(K)), embedHypercubeIntoStar(Star));

  // SJT mesh into the transposition network (Corollary 6).
  {
    SjtMeshShape Shape = sjtMeshShape(K);
    report(Table,
           std::to_string(Shape.Rows) + "x" + std::to_string(Shape.Cols) +
               " mesh",
           Tn.name(), mesh2D(Shape.Rows, Shape.Cols),
           embedSjtMeshIntoTn(Tn));
  }

  // Lehmer mesh into the star graph (Corollary 7).
  report(Table, "2x3x...x" + std::to_string(K) + " mesh", Star.name(),
         mixedRadixMesh(lehmerMeshDims(K)), embedLehmerMeshIntoStar(Star));

  std::printf("embedding atlas at k = %u\n\n%s", K, Table.render().c_str());
  return 0;
}
