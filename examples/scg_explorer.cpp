//===- examples/scg_explorer.cpp - Command-line network explorer ---------===//
//
// A small CLI over the library:
//
//   scg_explorer info <kind> <l> <n>       properties + generator list
//   scg_explorer route <kind> <l> <n> "<src>" "<dst>"
//                                          lifted + optimal routes
//   scg_explorer schedule <kind> <l> <n>   the Theorem 4/5 all-port grid
//   scg_explorer dot <kind> <l> <n>        Graphviz DOT of the network
//   scg_explorer certify <kind> <l> <n>    Schreier-Sims connectivity
//
// <kind>: MS | RS | complete-RS | MR | RR | complete-RR | MIS | RIS |
//         complete-RIS; labels are 1-based one-line permutations like
//         "3 1 2 5 4".
//
//===----------------------------------------------------------------------===//

#include "emulation/FigureOne.h"
#include "emulation/ScgRouter.h"
#include "emulation/SdcEmulation.h"
#include "graph/Dot.h"
#include "graph/Metrics.h"
#include "networks/Explicit.h"
#include "perm/GroupOrder.h"
#include "routing/BagSolver.h"
#include "routing/RouteOptimizer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace scg;

namespace {

NetworkKind parseKind(const char *Name) {
  struct Entry {
    const char *Name;
    NetworkKind Kind;
  };
  static const Entry Table[] = {
      {"MS", NetworkKind::MacroStar},
      {"RS", NetworkKind::RotationStar},
      {"complete-RS", NetworkKind::CompleteRotationStar},
      {"MR", NetworkKind::MacroRotator},
      {"RR", NetworkKind::RotationRotator},
      {"complete-RR", NetworkKind::CompleteRotationRotator},
      {"MIS", NetworkKind::MacroIS},
      {"RIS", NetworkKind::RotationIS},
      {"complete-RIS", NetworkKind::CompleteRotationIS},
  };
  for (const Entry &E : Table)
    if (!std::strcmp(Name, E.Name))
      return E.Kind;
  std::fprintf(stderr, "unknown network kind '%s'\n", Name);
  std::exit(2);
}

int cmdInfo(const SuperCayleyGraph &Net) {
  std::printf("network   %s\n", Net.name().c_str());
  std::printf("symbols   %u (l = %u boxes of n = %u balls + 1)\n",
              Net.numSymbols(), Net.numBoxes(), Net.ballsPerBox());
  std::printf("nodes     %llu\n", (unsigned long long)Net.numNodes());
  std::printf("degree    %u (%s)\n", Net.degree(),
              Net.isUndirected() ? "undirected" : "directed");
  std::printf("links     ");
  for (const Generator &G : Net.generators())
    std::printf("%s%s ", G.Name.c_str(),
                G.Kind == GeneratorKind::Super ? "*" : "");
  std::printf("  (* = super generator)\n");
  if (Net.numSymbols() <= 8) {
    DistanceStats Stats =
        vertexTransitiveStats(ExplicitScg(Net).toGraph());
    std::printf("diameter  %u, average distance %.3f\n", Stats.Diameter,
                Stats.AverageDistance);
  }
  if (supportsStarEmulation(Net))
    std::printf("SDC star-emulation slowdown: %u\n",
                analyzeSdcEmulation(Net).Slowdown);
  return 0;
}

int cmdRoute(const SuperCayleyGraph &Net, const char *SrcText,
             const char *DstText) {
  Permutation Src = Permutation::parseOneBased(SrcText);
  Permutation Dst = Permutation::parseOneBased(DstText);
  if (Src.size() != Net.numSymbols() || Dst.size() != Net.numSymbols()) {
    std::fprintf(stderr, "labels must be permutations of 1..%u\n",
                 Net.numSymbols());
    return 2;
  }
  std::printf("from  %s\n", Src.strBoxes(Net.ballsPerBox()).c_str());
  std::printf("to    %s\n", Dst.strBoxes(Net.ballsPerBox()).c_str());
  if (supportsStarEmulation(Net)) {
    GeneratorPath Lifted = routeViaStarEmulation(Net, Src, Dst);
    GeneratorPath Simple = simplifyPath(Net, Lifted);
    std::printf("lifted     (%2u hops)  %s\n", Lifted.length(),
                Lifted.str(Net).c_str());
    std::printf("simplified (%2u hops)  %s\n", Simple.length(),
                Simple.str(Net).c_str());
  }
  if (Net.numSymbols() <= 9) {
    if (auto Optimal = solveBag(Net, Src, Dst))
      std::printf("optimal    (%2u hops)  %s\n", Optimal->length(),
                  Optimal->str(Net).c_str());
  }
  return 0;
}

int cmdSchedule(const SuperCayleyGraph &Net) {
  if (!supportsStarEmulation(Net)) {
    std::fprintf(stderr, "%s cannot emulate star dimensions directly\n",
                 Net.name().c_str());
    return 2;
  }
  std::printf("%s", renderFigureOne(Net).c_str());
  return 0;
}

int cmdDot(const SuperCayleyGraph &Net) {
  if (Net.numSymbols() > 6) {
    std::fprintf(stderr, "DOT export limited to k <= 6 (%llu nodes)\n",
                 (unsigned long long)Net.numNodes());
    return 2;
  }
  ExplicitScg Explicit(Net);
  DotOptions Options;
  Options.Directed = !Net.isUndirected();
  Options.GraphName = "scg";
  Options.NodeLabel = [&Explicit](NodeId U) {
    return Explicit.label(U).str();
  };
  Options.EdgeLabel = [&](NodeId U, NodeId V) {
    std::optional<GenIndex> G =
        linkBetween(Net, Explicit.label(U), Explicit.label(V));
    return G ? Net.generators()[*G].Name : std::string();
  };
  std::printf("%s", renderDot(Explicit.toGraph(), Options).c_str());
  return 0;
}

int cmdCertify(const SuperCayleyGraph &Net) {
  std::vector<Permutation> Actions;
  for (const Generator &G : Net.generators())
    Actions.push_back(G.Sigma);
  bool Full = generatesSymmetricGroup(Actions);
  std::printf("%s: generators %s S_%u  =>  %s\n", Net.name().c_str(),
              Full ? "generate" : "do NOT generate", Net.numSymbols(),
              Full ? "strongly connected with k! nodes" : "NOT connected");
  return Full ? 0 : 1;
}

void usage() {
  std::fprintf(stderr,
               "usage: scg_explorer info|route|schedule|dot|certify "
               "<kind> <l> <n> [args...]\n");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 5) {
    usage();
    return 2;
  }
  SuperCayleyGraph Net = SuperCayleyGraph::create(
      parseKind(Argv[2]), std::atoi(Argv[3]), std::atoi(Argv[4]));
  if (!std::strcmp(Argv[1], "info"))
    return cmdInfo(Net);
  if (!std::strcmp(Argv[1], "route") && Argc >= 7)
    return cmdRoute(Net, Argv[5], Argv[6]);
  if (!std::strcmp(Argv[1], "schedule"))
    return cmdSchedule(Net);
  if (!std::strcmp(Argv[1], "dot"))
    return cmdDot(Net);
  if (!std::strcmp(Argv[1], "certify"))
    return cmdCertify(Net);
  usage();
  return 2;
}
