//===- examples/broadcast_demo.cpp - MNB and TE on SCGs ------------------===//
//
// Runs the two collective-communication prototypes of Section 4 (multinode
// broadcast, total exchange) on a star graph and on super Cayley graphs of
// the same size, printing completion times against the universal lower
// bounds used in Corollaries 2 and 3.
//
// Run:  build/examples/broadcast_demo
//
//===----------------------------------------------------------------------===//

#include "comm/Mnb.h"
#include "comm/TotalExchange.h"
#include "support/Format.h"

#include <cstdio>

using namespace scg;

int main() {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(6));
  Nets.push_back(SuperCayleyGraph::insertionSelection(6));
  Nets.push_back(SuperCayleyGraph::create(NetworkKind::MacroStar, 5, 1));
  Nets.push_back(
      SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 5, 1));

  std::printf("multinode broadcast (all-port), N = 720\n\n");
  TextTable Mnb;
  Mnb.setHeader({"network", "degree", "steps", "lower bound", "ratio"});
  for (const SuperCayleyGraph &Scg : Nets) {
    ExplicitScg Net(Scg);
    BroadcastTree Tree(Net);
    MnbResult R = simulateMnb(Net, Tree);
    Mnb.addRow({Scg.name(), std::to_string(Scg.degree()),
                std::to_string(R.Steps), std::to_string(R.LowerBound),
                formatDouble(R.Ratio, 2)});
  }
  std::printf("%s\n", Mnb.render().c_str());

  std::printf("total exchange (all-port), N = 720\n\n");
  TextTable Te;
  Te.setHeader({"network", "degree", "steps", "lower bound", "ratio"});
  for (const SuperCayleyGraph &Scg : Nets) {
    ExplicitScg Net(Scg);
    TeResult R = simulateTotalExchange(Net);
    Te.addRow({Scg.name(), std::to_string(Scg.degree()),
               std::to_string(R.Steps), std::to_string(R.LowerBound),
               formatDouble(R.Ratio, 2)});
  }
  std::printf("%s", Te.render().c_str());
  return 0;
}
