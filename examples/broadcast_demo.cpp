//===- examples/broadcast_demo.cpp - MNB and TE on SCGs ------------------===//
//
// Runs the two collective-communication prototypes of Section 4 (multinode
// broadcast, total exchange) on a star graph and on super Cayley graphs of
// the same size, printing completion times against the universal lower
// bounds used in Corollaries 2 and 3 -- then an instrumented permutation-
// traffic run on the star, showing the observer machinery: a per-step
// delivery histogram and the metric summaries a MetricsObserver collects.
//
// Run:  build/examples/broadcast_demo
//
//===----------------------------------------------------------------------===//

#include "comm/Mnb.h"
#include "comm/PermutationRouting.h"
#include "comm/SimObserver.h"
#include "comm/TotalExchange.h"
#include "support/Format.h"
#include "support/Metrics.h"

#include <cstdio>

using namespace scg;

int main() {
  std::vector<SuperCayleyGraph> Nets;
  Nets.push_back(SuperCayleyGraph::star(6));
  Nets.push_back(SuperCayleyGraph::insertionSelection(6));
  Nets.push_back(SuperCayleyGraph::create(NetworkKind::MacroStar, 5, 1));
  Nets.push_back(
      SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 5, 1));

  std::printf("multinode broadcast (all-port), N = 720\n\n");
  TextTable Mnb;
  Mnb.setHeader({"network", "degree", "steps", "lower bound", "ratio"});
  for (const SuperCayleyGraph &Scg : Nets) {
    ExplicitScg Net(Scg);
    BroadcastTree Tree(Net);
    MnbResult R = simulateMnb(Net, Tree);
    Mnb.addRow({Scg.name(), std::to_string(Scg.degree()),
                std::to_string(R.Steps), std::to_string(R.LowerBound),
                formatDouble(R.Ratio, 2)});
  }
  std::printf("%s\n", Mnb.render().c_str());

  std::printf("total exchange (all-port), N = 720\n\n");
  TextTable Te;
  Te.setHeader({"network", "degree", "steps", "lower bound", "ratio"});
  for (const SuperCayleyGraph &Scg : Nets) {
    ExplicitScg Net(Scg);
    TeResult R = simulateTotalExchange(Net);
    Te.addRow({Scg.name(), std::to_string(Scg.degree()),
               std::to_string(R.Steps), std::to_string(R.LowerBound),
               formatDouble(R.Ratio, 2)});
  }
  std::printf("%s\n", Te.render().c_str());

  // Instrumented run: random permutation traffic on star(6), observed by a
  // MetricsObserver (named counters/gauges sampled per step) and a local
  // histogram observer binning deliveries per step.
  struct DeliveryProfile final : SimObserver {
    Histogram PerStep;
    void onStep(const NetworkSimulator &, const StepEvents &E) override {
      PerStep.add(E.Deliveries.size());
    }
  };
  ExplicitScg Star(Nets[0]);
  MetricsRegistry Registry;
  MetricsObserver Metrics(Registry);
  DeliveryProfile Profile;
  simulatePermutationRouting(Star, randomTraffic(Star, 0xF00D),
                             CommModel::AllPort, {&Metrics, &Profile});

  std::printf("instrumented permutation traffic on %s (random, all-port)\n\n",
              Nets[0].name().c_str());
  std::printf("deliveries per step (bin = deliveries, bar = steps):\n%s\n",
              Profile.PerStep.render().c_str());
  TextTable Summary;
  Summary.setHeader({"metric", "kind", "min", "max", "mean", "last"});
  for (const std::string &Name : Registry.names()) {
    const Metric *M = Registry.find(Name);
    MetricSummary S = MetricsRegistry::summarize(*M);
    Summary.addRow({Name, M->isCounter() ? "counter" : "gauge",
                    formatDouble(S.Min, 0), formatDouble(S.Max, 0),
                    formatDouble(S.Mean, 1), formatDouble(S.Last, 0)});
  }
  std::printf("%s", Summary.render().c_str());
  return 0;
}
