//===- examples/quickstart.cpp - First steps with the library ------------===//
//
// Builds a macro-star network MS(2,3), inspects it, routes a packet by
// solving the ball-arrangement game, and prints the all-port emulation
// schedule of Theorem 4 (the Figure 1 construction).
//
// Run:  build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/SuperCayleyGraph.h"
#include "emulation/FigureOne.h"
#include "emulation/ScgRouter.h"
#include "routing/BagSolver.h"

#include <cstdio>

using namespace scg;

int main() {
  // 1. Build a super Cayley graph: 2 boxes of 3 balls, k = 7 symbols.
  SuperCayleyGraph Net = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 3);
  std::printf("network    %s\n", Net.name().c_str());
  std::printf("nodes      %llu\n", (unsigned long long)Net.numNodes());
  std::printf("degree     %u\n", Net.degree());
  std::printf("links      ");
  for (const Generator &G : Net.generators())
    std::printf("%s ", G.Name.c_str());
  std::printf("\n\n");

  // 2. Route between two configurations of the ball-arrangement game.
  Permutation Src = Permutation::parseOneBased("4 2 6 1 7 3 5");
  Permutation Dst = Permutation::identity(7);
  std::printf("solving the ball-arrangement game\n");
  std::printf("  from  %s\n", Src.strBoxes(3).c_str());
  std::printf("  to    %s\n", Dst.strBoxes(3).c_str());

  GeneratorPath Lifted = routeViaStarEmulation(Net, Src, Dst);
  std::printf("  lifted star route (%u hops):  %s\n", Lifted.length(),
              Lifted.str(Net).c_str());

  if (auto Optimal = solveBag(Net, Src, Dst))
    std::printf("  optimal route     (%u hops):  %s\n\n", Optimal->length(),
                Optimal->str(Net).c_str());

  // 3. The Theorem 4 all-port emulation schedule.
  std::printf("%s\n", renderFigureOne(Net).c_str());
  return 0;
}
