//===- bench/bench_classic_embeddings.cpp - Experiments E10-E12 ----------===//
//
// Reproduces Corollaries 4-7: trees, hypercubes, and meshes into super
// Cayley graphs, each built as a base embedding into the star graph (or
// transposition network) composed with the Theorem 1-3 / 6-7 templates:
//
//   E10 (Cor 4): complete binary tree -> star (searched), then IS/MS/MIS.
//   E11 (Cor 5): hypercube -> star (commuting transpositions), composed.
//   E12 (Cor 6/7): SJT mesh -> TN (dilation 1) and Lehmer mesh -> star
//                  (dilation 3), composed.
//
//===----------------------------------------------------------------------===//

#include "embedding/HypercubeEmbedding.h"
#include "embedding/MeshEmbeddings.h"
#include "embedding/PathTemplates.h"
#include "embedding/TreeEmbedding.h"
#include "networks/Classic.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

void addComposedRows(TextTable &Table, const std::string &GuestName,
                     const Graph &Guest, const SuperCayleyGraph &Base,
                     const Embedding &BaseEmbedding, unsigned BaseDilation) {
  unsigned K = Base.numSymbols();
  struct HostSpec {
    SuperCayleyGraph Net;
    const char *Claim;
  };
  std::vector<HostSpec> Hosts;
  if (Base.kind() == NetworkKind::Star) {
    Hosts.push_back({SuperCayleyGraph::insertionSelection(K), "2x base"});
    if ((K - 1) % 2 == 0) {
      Hosts.push_back({SuperCayleyGraph::create(NetworkKind::MacroStar,
                                                (K - 1) / 2, 2),
                       "3x base"});
      Hosts.push_back({SuperCayleyGraph::create(NetworkKind::MacroIS,
                                                (K - 1) / 2, 2),
                       "4x base"});
    }
  } else {
    Hosts.push_back({SuperCayleyGraph::create(NetworkKind::MacroStar,
                                              (K - 1) / 2, 2),
                     "Thm 6"});
    Hosts.push_back({SuperCayleyGraph::create(NetworkKind::MacroIS,
                                              (K - 1) / 2, 2),
                     "Thm 7"});
  }

  // The base itself.
  EmbeddingMetrics BaseMetrics = measureEmbedding(Guest, BaseEmbedding);
  Table.addRow({GuestName, Base.name(), std::to_string(BaseMetrics.Load),
                std::to_string(BaseMetrics.Dilation),
                std::to_string(BaseDilation),
                BaseMetrics.Valid ? "yes" : "NO"});

  for (const HostSpec &Spec : Hosts) {
    PathTemplateMap Map = PathTemplateMap::create(Base, Spec.Net);
    EmbeddingMetrics M =
        measureEmbedding(Guest, composeEmbedding(BaseEmbedding, Map));
    Table.addRow({GuestName, Spec.Net.name() + " (" + Spec.Claim + ")",
                  std::to_string(M.Load), std::to_string(M.Dilation),
                  std::to_string(BaseDilation * Map.maxTemplateLength()),
                  M.Valid ? "yes" : "NO"});
  }
}

void printTreeRows(TextTable &Table) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(5);
  ExplicitScg StarX(Star);
  for (unsigned Height : {3u, 4u}) {
    TreeEmbeddingResult R = embedTreeIntoStar(StarX, Height, 1);
    if (!R.Found)
      continue;
    Graph Guest = completeBinaryTree(Height);
    addComposedRows(Table, "CBT(h=" + std::to_string(Height) + ")", Guest,
                    Star, R.E, 1);
  }
}

void printHypercubeRows(TextTable &Table) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(7);
  Embedding Base = embedHypercubeIntoStar(Star);
  Graph Guest = hypercube(hypercubeDimensionFor(7));
  addComposedRows(Table, "Q3", Guest, Star, Base, 3);
}

void printMeshRows(TextTable &Table) {
  {
    SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(5);
    SjtMeshShape Shape = sjtMeshShape(5);
    Graph Guest = mesh2D(Shape.Rows, Shape.Cols);
    addComposedRows(Table, "24x5 mesh (SJT)", Guest, Tn,
                    embedSjtMeshIntoTn(Tn), 1);
  }
  {
    SuperCayleyGraph Star = SuperCayleyGraph::star(5);
    Graph Guest = mixedRadixMesh(lehmerMeshDims(5));
    addComposedRows(Table, "2x3x4x5 mesh", Guest, Star,
                    embedLehmerMeshIntoStar(Star), 3);
  }
}

void printClassicTable() {
  std::printf("E10-E12: tree, hypercube, and mesh embeddings "
              "(Corollaries 4-7)\n\n");
  TextTable Table;
  Table.setHeader({"guest", "host", "load", "dilation", "claim cap",
                   "valid"});
  printTreeRows(Table);
  printHypercubeRows(Table);
  printMeshRows(Table);
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: every composed dilation stays within base "
              "dilation x template length, with load 1 throughout -- the "
              "O(1)-dilation structure of Corollaries 4-7. The hypercube "
              "base uses the commuting-transposition substitute of "
              "DESIGN.md (d = floor((k-1)/2), dilation 3).\n\n");
}

void BM_TreeSearchHeight4(benchmark::State &State) {
  ExplicitScg Star(SuperCayleyGraph::star(5));
  for (auto _ : State)
    benchmark::DoNotOptimize(embedTreeIntoStar(Star, 4, 1).Found);
}
BENCHMARK(BM_TreeSearchHeight4)->Unit(benchmark::kMillisecond);

void BM_SjtMeshEmbedding(benchmark::State &State) {
  SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(6);
  SjtMeshShape Shape = sjtMeshShape(6);
  Graph Guest = mesh2D(Shape.Rows, Shape.Cols);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        measureEmbedding(Guest, embedSjtMeshIntoTn(Tn)).Dilation);
}
BENCHMARK(BM_SjtMeshEmbedding)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printClassicTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
