//===- bench/bench_fault_tolerance.cpp - Experiment E17 ------------------===//
//
// Robustness of the super Cayley graph classes under single faults. The
// paper inherits the fault-tolerance motivation from the transposition
// network [12]; Cayley-graph regularity suggests every class here should
// survive any single link or node failure with modest diameter inflation.
// The table sweeps single-fault scenarios (exhaustive at k = 5) and
// reports worst-case connectivity and diameter.
//
// Modes (consistent with bench_kernels / bench_degree_diameter):
//   (default)  human-readable table + google-benchmark timings
//   --json     one-object JSON of every row on the shared JsonWriter
//   --smoke    bounded subset with invariants checked (every class
//              survives single faults, worst diameter >= fault-free,
//              nonzero scenario counts -- the vacuous-certificate
//              regression -- and undirected fault accounting), non-zero
//              exit on any violation; wired into ctest under perf-smoke.
//
//===----------------------------------------------------------------------===//

#include "graph/Faults.h"
#include "networks/Explicit.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace scg;

namespace {

struct Row {
  std::string Name;
  uint64_t Nodes;
  unsigned Degree;
  uint64_t LinkScenarios, NodeScenarios;
  SingleFaultSweep Links, Nodes_;
};

Row makeRow(const SuperCayleyGraph &Scg, unsigned NodeStride) {
  ExplicitScg Net(Scg);
  Graph G = Net.toGraph();
  Row R;
  R.Name = Scg.name();
  R.Nodes = Net.numNodes();
  R.Degree = Scg.degree();
  R.Links = sweepSingleLinkFaults(G);
  R.Nodes_ = sweepSingleNodeFaults(G, NodeStride);
  R.LinkScenarios = R.Links.ScenariosTried;
  R.NodeScenarios = R.Nodes_.ScenariosTried;
  return R;
}

std::vector<SuperCayleyGraph> fullSet() {
  return {SuperCayleyGraph::star(5),
          SuperCayleyGraph::bubbleSort(5),
          SuperCayleyGraph::transpositionNetwork(5),
          SuperCayleyGraph::insertionSelection(5),
          SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2),
          SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 2, 2),
          SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2),
          SuperCayleyGraph::create(NetworkKind::RotationIS, 2, 2)};
}

/// Bounded subset for the smoke lane.
std::vector<SuperCayleyGraph> smokeSet() {
  return {SuperCayleyGraph::star(5), SuperCayleyGraph::insertionSelection(5),
          SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2)};
}

void printFaultTable() {
  std::printf("E17: single-fault robustness (exhaustive link faults, "
              "sampled node faults, k = 5)\n\n");
  TextTable Table;
  Table.setHeader({"network", "degree", "diameter", "link-conn",
                   "worst diam", "node-conn", "worst diam"});
  for (const SuperCayleyGraph &Scg : fullSet()) {
    Row R = makeRow(Scg, /*NodeStride=*/5);
    Table.addRow({R.Name, std::to_string(R.Degree),
                  std::to_string(R.Links.FaultFreeDiameter),
                  R.Links.AlwaysConnected ? "yes" : "NO",
                  std::to_string(R.Links.WorstDiameter),
                  R.Nodes_.AlwaysConnected ? "yes" : "NO",
                  std::to_string(R.Nodes_.WorstDiameter)});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: every class survives every single link fault "
              "and all sampled node faults with diameter inflation of at "
              "most a few hops -- consistent with the Cayley-graph "
              "connectivity the paper's fault-tolerance motivation [12] "
              "relies on.\n\n");
}

void printJson() {
  JsonWriter W;
  W.beginObject();
  for (const SuperCayleyGraph &Scg : fullSet()) {
    Row R = makeRow(Scg, /*NodeStride=*/5);
    W.key(R.Name)
        .beginObject()
        .field("nodes", R.Nodes)
        .field("degree", R.Degree)
        .field("fault_free_diameter", R.Links.FaultFreeDiameter)
        .field("link_scenarios", R.LinkScenarios)
        .field("link_always_connected", R.Links.AlwaysConnected)
        .field("link_worst_diameter", R.Links.WorstDiameter)
        .field("node_scenarios", R.NodeScenarios)
        .field("node_always_connected", R.Nodes_.AlwaysConnected)
        .field("node_worst_diameter", R.Nodes_.WorstDiameter)
        .endObject();
  }
  W.endObject();
  std::fputs(W.str().c_str(), stdout);
}

int runSmoke() {
  int Failures = 0;
  for (const SuperCayleyGraph &Scg : smokeSet()) {
    Row R = makeRow(Scg, /*NodeStride=*/7);
    bool ConnOk = R.Links.AlwaysConnected && R.Nodes_.AlwaysConnected;
    // A robustness certificate must rest on actual scenarios (the
    // zero-scenario sweeps regression) ...
    bool TriedOk = R.LinkScenarios > 0 && R.NodeScenarios > 0;
    // ... and the worst case can never beat the fault-free baseline.
    bool DiamOk = R.Links.WorstDiameter >= R.Links.FaultFreeDiameter &&
                  R.Nodes_.WorstDiameter > 0;
    std::printf("%-18s links %llu worst %u | nodes %llu worst %u %s%s%s\n",
                R.Name.c_str(), (unsigned long long)R.LinkScenarios,
                R.Links.WorstDiameter, (unsigned long long)R.NodeScenarios,
                R.Nodes_.WorstDiameter, ConnOk ? "conn-ok " : "DISCONNECTED ",
                TriedOk ? "tried-ok " : "VACUOUS-SWEEP ",
                DiamOk ? "diam-ok" : "DIAMETER-REGRESSION");
    Failures += !ConnOk + !TriedOk + !DiamOk;
  }
  // Undirected fault accounting (the double-count regression): one
  // undirected link fault is one fault, not two.
  FaultSet Faults;
  Faults.failLink(1, 2);
  Faults.failLink(2, 1);
  bool CountOk =
      Faults.numFailedLinks() == 1 && Faults.numFailedDirectedLinks() == 2;
  std::printf("undirected accounting: %s\n",
              CountOk ? "count-ok" : "DOUBLE-COUNTED");
  Failures += !CountOk;
  return Failures ? 1 : 0;
}

void BM_SingleLinkSweepStar5(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  Graph G = Net.toGraph();
  for (auto _ : State)
    benchmark::DoNotOptimize(sweepSingleLinkFaults(G, 17).WorstDiameter);
}
BENCHMARK(BM_SingleLinkSweepStar5)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  bool Json = false, Smoke = false;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;
  }
  if (Smoke) {
    setGlobalThreadCount(1);
    return runSmoke();
  }
  if (Json) {
    setGlobalThreadCount(1);
    printJson();
    return 0;
  }
  printFaultTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
