//===- bench/bench_fault_tolerance.cpp - Experiment E17 ------------------===//
//
// Robustness of the super Cayley graph classes under single faults. The
// paper inherits the fault-tolerance motivation from the transposition
// network [12]; Cayley-graph regularity suggests every class here should
// survive any single link or node failure with modest diameter inflation.
// The table sweeps single-fault scenarios (exhaustive at k = 5) and
// reports worst-case connectivity and diameter.
//
//===----------------------------------------------------------------------===//

#include "graph/Faults.h"
#include "networks/Explicit.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

void addRow(TextTable &Table, const SuperCayleyGraph &Scg) {
  ExplicitScg Net(Scg);
  Graph G = Net.toGraph();
  SingleFaultSweep Links = sweepSingleLinkFaults(G);
  SingleFaultSweep Nodes = sweepSingleNodeFaults(G, /*Stride=*/5);
  Table.addRow({Scg.name(), std::to_string(Scg.degree()),
                std::to_string(Links.FaultFreeDiameter),
                Links.AlwaysConnected ? "yes" : "NO",
                std::to_string(Links.WorstDiameter),
                Nodes.AlwaysConnected ? "yes" : "NO",
                std::to_string(Nodes.WorstDiameter)});
}

void printFaultTable() {
  std::printf("E17: single-fault robustness (exhaustive link faults, "
              "sampled node faults, k = 5)\n\n");
  TextTable Table;
  Table.setHeader({"network", "degree", "diameter", "link-conn",
                   "worst diam", "node-conn", "worst diam"});
  addRow(Table, SuperCayleyGraph::star(5));
  addRow(Table, SuperCayleyGraph::bubbleSort(5));
  addRow(Table, SuperCayleyGraph::transpositionNetwork(5));
  addRow(Table, SuperCayleyGraph::insertionSelection(5));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  addRow(Table,
         SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 2, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::RotationIS, 2, 2));
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: every class survives every single link fault "
              "and all sampled node faults with diameter inflation of at "
              "most a few hops -- consistent with the Cayley-graph "
              "connectivity the paper's fault-tolerance motivation [12] "
              "relies on.\n\n");
}

void BM_SingleLinkSweepStar5(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  Graph G = Net.toGraph();
  for (auto _ : State)
    benchmark::DoNotOptimize(sweepSingleLinkFaults(G, 17).WorstDiameter);
}
BENCHMARK(BM_SingleLinkSweepStar5)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printFaultTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
