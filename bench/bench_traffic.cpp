//===- bench/bench_traffic.cpp - Experiments E23 + E27 -------------------===//
//
// Steady-state saturation curves: synthetic workloads (comm/Workload.h)
// offered to each family x communication model over a sweep of injection
// rates, reporting delivered throughput and latency percentiles per
// offered load -- the standard interconnect-evaluation methodology the
// paper itself stops short of (it evaluates one-shot permutation traffic
// only). The sweeps run on the event engine; the step engine would spend
// O(nodes * degree) per step on the long sparse tails these curves
// produce, which is exactly the regime the calendar-queue core removes.
//
// E27 extends E23 past the scalar-setup wall: route setup dedupes the
// trace to distinct relative labels (Cayley symmetry) and batch-routes
// them through the query engine, which is what makes star(7) (5,040
// nodes) and star(8) (40,320 nodes) curves affordable; closed-loop
// variants throttle injection by source-node queue depth and report the
// deferral counters next to each open-loop twin.
//
// Modes:
//   (default)    human-readable E23/E27 table + google-benchmark timings
//   --json       machine-readable one-object JSON on stdout: the full
//                curve sweep with per-point throughput/latency/occupancy,
//                dedup factor, and the step-vs-event engine work ratio
//                (committed as BENCH_traffic.json in the repo root; fully
//                deterministic, no wall times)
//   --maxk <k>   largest star dimension swept, in [4, 8] (default 6; the
//                committed JSON is generated with --maxk 8)
//   --smoke      bounded checks: engine identity through the driver on
//                every model (open and closed loop), batched == legacy
//                setup result identity, >= 5x batched-setup speedup over
//                the old pair-keyed serial loop at k = 6, closed-loop
//                thread-count invariance, >= 2x step/event work ratio on
//                the sparse-tail regime, wall-clock event <= step on
//                sparse traffic (min-of-7), and --json determinism;
//                non-zero exit on any failure. Wired into ctest under
//                perf-smoke.
//
//===----------------------------------------------------------------------===//

#include "comm/Workload.h"
#include "emulation/ScgRouter.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

using namespace scg;

namespace {

const char *modelName(CommModel Model) {
  switch (Model) {
  case CommModel::AllPort:
    return "all_port";
  case CommModel::SinglePort:
    return "single_port";
  case CommModel::SingleDimension:
    return "single_dimension";
  }
  return "?";
}

/// One saturation curve: a family x model at one k, swept over rates.
/// ClosedLoopMaxQueue zero is the open-loop source; nonzero throttles
/// injection at that per-source-node queue depth.
struct CurveSpec {
  SuperCayleyGraph Family;
  CommModel Model;
  std::vector<double> Rates;
  uint64_t Steps;
  uint64_t ClosedLoopMaxQueue = 0;
};

/// The per-node queue-depth limit of every closed-loop curve: small enough
/// to bite well before saturation at the swept rates.
constexpr uint64_t ClosedLoopLimit = 4;

/// The committed sweep: every family class at k = 4 is covered by the
/// differential tests; the curves track star / transposition /
/// insertion-selection at k = 4 (the single-level classes with lifted
/// star routes) and star up to k = \p MaxK, each under all three models
/// through k = 6 and under single-port at k = 7, 8 (where one model keeps
/// the 40,320-node sweep bounded). Closed-loop twins ride along from
/// k = 5 up. Horizons shrink as k grows; rates bracket saturation.
std::vector<CurveSpec> curveSpecs(unsigned MaxK) {
  std::vector<double> FullSweep = {0.02, 0.05, 0.10, 0.20, 0.40};
  std::vector<double> ShortSweep = {0.02, 0.10, 0.40};
  std::vector<CurveSpec> Specs;
  for (CommModel Model :
       {CommModel::AllPort, CommModel::SinglePort,
        CommModel::SingleDimension}) {
    Specs.push_back({SuperCayleyGraph::star(4), Model, FullSweep, 400});
    Specs.push_back(
        {SuperCayleyGraph::transpositionNetwork(4), Model, FullSweep, 400});
    Specs.push_back(
        {SuperCayleyGraph::insertionSelection(4), Model, FullSweep, 400});
    if (MaxK >= 5)
      Specs.push_back({SuperCayleyGraph::star(5), Model, FullSweep, 300});
    if (MaxK >= 6)
      Specs.push_back({SuperCayleyGraph::star(6), Model, ShortSweep, 120});
  }
  if (MaxK >= 5)
    Specs.push_back({SuperCayleyGraph::star(5), CommModel::SinglePort,
                     ShortSweep, 300, ClosedLoopLimit});
  if (MaxK >= 6)
    Specs.push_back({SuperCayleyGraph::star(6), CommModel::SinglePort,
                     ShortSweep, 120, ClosedLoopLimit});
  if (MaxK >= 7)
    for (CommModel Model : {CommModel::AllPort, CommModel::SinglePort})
      for (uint64_t Limit : {uint64_t(0), ClosedLoopLimit})
        Specs.push_back(
            {SuperCayleyGraph::star(7), Model, ShortSweep, 100, Limit});
  if (MaxK >= 8)
    for (uint64_t Limit : {uint64_t(0), ClosedLoopLimit})
      Specs.push_back({SuperCayleyGraph::star(8), CommModel::SinglePort,
                       ShortSweep, 50, Limit});
  return Specs;
}

WorkloadSpec uniformAt(double Rate) {
  WorkloadSpec Spec;
  Spec.Kind = WorkloadKind::UniformRandom;
  Spec.InjectionRate = Rate;
  Spec.Seed = 23;
  return Spec;
}

/// The step engine's analytic per-run work (see runImpl): every step scans
/// all queues and in-flight slots plus the selection sweep. Computing it
/// from the event run's step count avoids re-simulating (results are
/// engine-identical, pinned by EventCoreDifferentialTest).
uint64_t stepEngineWork(const ExplicitScg &Net, CommModel Model,
                        uint64_t Steps) {
  uint64_t QCount = uint64_t(Net.numNodes()) * Net.degree();
  return Steps * (2 * QCount + (Model == CommModel::AllPort
                                    ? QCount
                                    : uint64_t(Net.numNodes())));
}

struct CurvePoint {
  TrafficLoadResult R;
  double WorkRatio; ///< step-engine work / event-engine work.
};

CurvePoint runPoint(const ExplicitScg &Net, const CurveSpec &Spec,
                    double Rate) {
  TrafficLoadOptions Options; // event engine, serial shards: the committed
                              // numbers are thread-count-independent.
  Options.ClosedLoopMaxQueue = Spec.ClosedLoopMaxQueue;
  CurvePoint P;
  P.R = simulateTrafficLoad(Net, Spec.Model, uniformAt(Rate), Spec.Steps,
                            Options);
  uint64_t StepWork = stepEngineWork(Net, Spec.Model, P.R.Sim.Steps);
  P.WorkRatio = P.R.Sim.TouchedWork
                    ? double(StepWork) / double(P.R.Sim.TouchedWork)
                    : 0.0;
  return P;
}

//===----------------------------------------------------------------------===//
// --json: the committed saturation curves
//===----------------------------------------------------------------------===//

/// Deterministic (fixed seeds, no wall times -- SetupSeconds is measured
/// but never printed): the committed BENCH_traffic.json can be diffed
/// byte-for-byte.
std::string jsonReport(unsigned MaxK) {
  JsonWriter W;
  W.beginObject().key("curves").beginArray();
  for (const CurveSpec &Spec : curveSpecs(MaxK)) {
    const bool Closed = Spec.ClosedLoopMaxQueue != 0;
    ExplicitScg Net(Spec.Family);
    W.beginObject()
        .field("family", Spec.Family.name())
        .field("model", modelName(Spec.Model))
        .field("loop", Closed ? "closed" : "open")
        .field("max_queue", Spec.ClosedLoopMaxQueue)
        .field("nodes", Net.numNodes())
        .field("steps", Spec.Steps)
        .key("points")
        .beginArray();
    for (double Rate : Spec.Rates) {
      CurvePoint P = runPoint(Net, Spec, Rate);
      W.beginObject()
          .field("offered", P.R.OfferedRate, 6)
          .field("delivered", P.R.DeliveredRate, 6)
          .field("mean_latency", P.R.MeanLatency, 4)
          .field("p50", P.R.P50Latency)
          .field("p99", P.R.P99Latency)
          .field("mean_queued", P.R.MeanQueued, 4)
          .field("work_ratio", P.WorkRatio, 2)
          .field("dedup", P.R.DedupFactor, 2);
      if (Closed)
        W.field("deferred_injections", P.R.Sim.DeferredInjections)
            .field("deferred_steps", P.R.Sim.DeferredSteps);
      W.endObject();
    }
    W.endArray().endObject();
  }
  W.endArray().endObject();
  return W.str();
}

//===----------------------------------------------------------------------===//
// Default mode: the human-readable E23 table
//===----------------------------------------------------------------------===//

void printCurves(unsigned MaxK) {
  std::printf("E23/E27: saturation curves under uniform random traffic "
              "(event engine, batched label-deduped setup)\n\n");
  TextTable Table;
  Table.setHeader({"network", "model", "loop", "offered", "delivered",
                   "mean lat", "p99 lat", "mean queued", "dedup",
                   "work ratio"});
  for (const CurveSpec &Spec : curveSpecs(MaxK)) {
    ExplicitScg Net(Spec.Family);
    for (double Rate : Spec.Rates) {
      CurvePoint P = runPoint(Net, Spec, Rate);
      Table.addRow({Spec.Family.name(), modelName(Spec.Model),
                    Spec.ClosedLoopMaxQueue ? "closed" : "open",
                    formatDouble(P.R.OfferedRate, 3),
                    formatDouble(P.R.DeliveredRate, 3),
                    formatDouble(P.R.MeanLatency, 2),
                    std::to_string(P.R.P99Latency),
                    formatDouble(P.R.MeanQueued, 1),
                    formatDouble(P.R.DedupFactor, 1),
                    formatDouble(P.WorkRatio, 1)});
    }
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: delivered tracks offered until saturation then "
              "plateaus while p99 latency climbs; closed-loop rows bound "
              "mean queued at the depth limit by deferring injections; "
              "dedup is offered messages per distinct relative label "
              "(the route computations batched setup saves); work ratio is "
              "the step-engine slot scans the event engine skipped.\n\n");
}

//===----------------------------------------------------------------------===//
// --smoke
//===----------------------------------------------------------------------===//

using Clock = std::chrono::steady_clock;

bool sameResult(const SimulationResult &A, const SimulationResult &B) {
  return A.Completed == B.Completed && A.Steps == B.Steps &&
         A.Delivered == B.Delivered && A.Transmissions == B.Transmissions &&
         A.BusyLinkSteps == B.BusyLinkSteps &&
         A.MaxQueueLength == B.MaxQueueLength &&
         A.LinkUtilization == B.LinkUtilization &&
         A.DeferredInjections == B.DeferredInjections &&
         A.DeferredSteps == B.DeferredSteps;
}

/// Full driver-result identity: every field except SetupSeconds (wall
/// clock, the one field outside the determinism contract). MeanQueued is
/// averaged "over active steps", which the event engine defines as its
/// processed steps -- identical within an engine at any thread count but
/// not across engines, so cross-engine checks pass SameEngine = false.
bool sameLoad(const TrafficLoadResult &A, const TrafficLoadResult &B,
              bool SameEngine = true) {
  return sameResult(A.Sim, B.Sim) && A.Offered == B.Offered &&
         A.OfferedRate == B.OfferedRate &&
         A.DeliveredRate == B.DeliveredRate && A.MeanHops == B.MeanHops &&
         A.MeanLatency == B.MeanLatency && A.P50Latency == B.P50Latency &&
         A.P99Latency == B.P99Latency &&
         (!SameEngine || A.MeanQueued == B.MeanQueued) &&
         A.DistinctLabels == B.DistinctLabels &&
         A.DedupFactor == B.DedupFactor;
}

/// The retired pair-keyed serial setup loop, replicated verbatim as the
/// speedup baseline: one unordered_map probe per event, one scalar
/// routeViaStarEmulation call per distinct (src, dst) pair.
double legacyPairSetupMs(const ExplicitScg &Net,
                         const std::vector<TrafficEvent> &Trace) {
  auto Start = Clock::now();
  std::unordered_map<uint64_t, std::vector<GenIndex>> RouteCache;
  const SuperCayleyGraph &Host = Net.network();
  uint64_t HopSum = 0;
  for (const TrafficEvent &E : Trace) {
    uint64_t Key = uint64_t(E.Src) * Net.numNodes() + E.Dst;
    auto It = RouteCache.find(Key);
    if (It == RouteCache.end()) {
      std::vector<GenIndex> Route;
      if (E.Src != E.Dst)
        Route =
            routeViaStarEmulation(Host, Net.label(E.Src), Net.label(E.Dst))
                .hops();
      It = RouteCache.emplace(Key, std::move(Route)).first;
    }
    HopSum += It->second.size();
  }
  benchmark::DoNotOptimize(HopSum);
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Sparse-tail wall-clock workload: a handful of packets staggered over a
/// long horizon on star(6) -- 4320 queues, almost all idle at any step.
/// Returns milliseconds for one run under \p Engine.
double timedSparseMs(const ExplicitScg &Net, SimEngine Engine) {
  NetworkSimulator Sim(Net, CommModel::SinglePort);
  Sim.setEngine(Engine);
  SplitMix64 Rng(9);
  for (unsigned P = 0; P != 50; ++P) {
    std::vector<GenIndex> Route;
    for (unsigned H = 0; H != 4; ++H)
      Route.push_back(Rng.nextBelow(Net.degree()));
    Sim.scheduleInjection(P * 40, NodeId(Rng.nextBelow(Net.numNodes())),
                          Route);
  }
  auto Start = Clock::now();
  SimulationResult R = Sim.run(/*MaxSteps=*/4000);
  double Ms =
      std::chrono::duration<double, std::milli>(Clock::now() - Start).count();
  benchmark::DoNotOptimize(R);
  return Ms;
}

int runSmoke(bool Json, unsigned MaxK) {
  int Failures = 0;
  auto Check = [&](const char *Name, bool Ok) {
    std::printf("%-44s %s\n", Name, Ok ? "ok" : "FAIL");
    Failures += !Ok;
  };

  // Engine identity through the driver, every model, open and closed loop.
  for (uint64_t MaxQueue : {uint64_t(0), ClosedLoopLimit}) {
    for (CommModel Model :
         {CommModel::AllPort, CommModel::SinglePort,
          CommModel::SingleDimension}) {
      ExplicitScg Net(SuperCayleyGraph::star(4));
      TrafficLoadOptions StepOpts;
      StepOpts.Engine = SimEngine::Step;
      StepOpts.ClosedLoopMaxQueue = MaxQueue;
      TrafficLoadOptions EventOpts;
      EventOpts.Engine = SimEngine::Event;
      EventOpts.ClosedLoopMaxQueue = MaxQueue;
      TrafficLoadResult A =
          simulateTrafficLoad(Net, Model, uniformAt(0.1), 300, StepOpts);
      TrafficLoadResult B =
          simulateTrafficLoad(Net, Model, uniformAt(0.1), 300, EventOpts);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "%s %s event == step via driver",
                    modelName(Model), MaxQueue ? "closed" : "open");
      Check(Name, sameLoad(A, B, /*SameEngine=*/false));
    }
  }

  // Batched setup is a pure optimization: byte-identical driver results
  // to the legacy serial path, across models.
  for (CommModel Model :
       {CommModel::AllPort, CommModel::SinglePort,
        CommModel::SingleDimension}) {
    ExplicitScg Net(SuperCayleyGraph::star(5));
    TrafficLoadOptions Batched;
    TrafficLoadOptions Legacy;
    Legacy.BatchedSetup = false;
    TrafficLoadResult A =
        simulateTrafficLoad(Net, Model, uniformAt(0.2), 200, Batched);
    TrafficLoadResult B =
        simulateTrafficLoad(Net, Model, uniformAt(0.2), 200, Legacy);
    char Name[64];
    std::snprintf(Name, sizeof(Name), "%s batched == legacy setup",
                  modelName(Model));
    Check(Name, sameLoad(A, B));
  }

  // The E27 setup claim: at k = 6 the batched, label-deduped setup beats
  // the retired pair-keyed serial loop by >= 5x (in practice the dedup
  // factor alone is ~50x there; 5x is the floor). Min-of-3 on both sides
  // to shed scheduler noise.
  {
    ExplicitScg Net(SuperCayleyGraph::star(6));
    WorkloadSpec Spec = uniformAt(0.4);
    std::vector<TrafficEvent> Trace =
        WorkloadGenerator(Net, Spec).generate(120);
    double LegacyMs = 1e100, BatchedMs = 1e100;
    for (int I = 0; I != 3; ++I) {
      LegacyMs = std::min(LegacyMs, legacyPairSetupMs(Net, Trace));
      TrafficLoadResult R = simulateTrafficLoad(
          Net, CommModel::SinglePort, Spec, 120, TrafficLoadOptions());
      BatchedMs = std::min(BatchedMs, R.SetupSeconds * 1e3);
    }
    bool Ok = BatchedMs * 5.0 <= LegacyMs;
    std::printf("%-44s %s  (legacy %.2f ms, batched %.2f ms, %.1fx)\n",
                "batched setup >= 5x over pair-keyed serial",
                Ok ? "ok" : "FAIL", LegacyMs, BatchedMs,
                BatchedMs > 0.0 ? LegacyMs / BatchedMs : 0.0);
    Failures += !Ok;
  }

  // Closed-loop results are thread-count invariant: 1 thread vs 2 threads
  // (sharded event core + batched parallel setup) must agree on every
  // deterministic field.
  {
    ExplicitScg Net(SuperCayleyGraph::star(5));
    TrafficLoadOptions Opts;
    Opts.ClosedLoopMaxQueue = ClosedLoopLimit;
    Opts.Shards = 2;
    setGlobalThreadCount(1);
    TrafficLoadResult A =
        simulateTrafficLoad(Net, CommModel::SinglePort, uniformAt(0.4), 200,
                            Opts);
    setGlobalThreadCount(2);
    TrafficLoadResult B =
        simulateTrafficLoad(Net, CommModel::SinglePort, uniformAt(0.4), 200,
                            Opts);
    setGlobalThreadCount(1);
    Check("closed loop 1-thread == 2-thread", sameLoad(A, B));
  }

  // The sparse-tail work claim of the acceptance criteria: on a low-rate
  // sweep point the step engine scans >= 2x the slots the event engine
  // touches (in practice far more; 2x is the floor the JSON must show).
  {
    ExplicitScg Net(SuperCayleyGraph::star(5));
    CurveSpec Spec{SuperCayleyGraph::star(5), CommModel::SinglePort,
                   {0.02}, 300};
    CurvePoint P = runPoint(Net, Spec, 0.02);
    std::printf("%-44s %s  (ratio %.1f)\n", "sparse-tail work ratio >= 2x",
                P.WorkRatio >= 2.0 ? "ok" : "FAIL", P.WorkRatio);
    Failures += P.WorkRatio < 2.0;
  }

  // Wall-clock: the event core must not be slower than the step core on
  // sparse traffic (min-of-7 to shed scheduler noise, small absolute
  // allowance for timer granularity).
  {
    ExplicitScg Net(SuperCayleyGraph::star(6));
    double Step = 1e100, Event = 1e100;
    for (int I = 0; I != 7; ++I) {
      Step = std::min(Step, timedSparseMs(Net, SimEngine::Step));
      Event = std::min(Event, timedSparseMs(Net, SimEngine::Event));
    }
    bool Ok = Event <= Step * 1.02 + 0.05;
    std::printf("%-44s %s  (step %.3f ms, event %.3f ms)\n",
                "event <= step wall-clock on sparse traffic",
                Ok ? "ok" : "FAIL", Step, Event);
    Failures += !Ok;
  }

  // With --json as well, pin the report's determinism: two full
  // generations must render byte-identically, or the committed
  // BENCH_traffic.json would churn.
  if (Json) {
    std::string A = jsonReport(MaxK);
    Check("json report deterministic", !A.empty() && A == jsonReport(MaxK));
  }

  return Failures ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// google-benchmark timings
//===----------------------------------------------------------------------===//

void BM_SparseTrafficStepEngine(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(6));
  for (auto _ : State)
    benchmark::DoNotOptimize(timedSparseMs(Net, SimEngine::Step));
}
BENCHMARK(BM_SparseTrafficStepEngine)->Unit(benchmark::kMillisecond);

void BM_SparseTrafficEventEngine(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(6));
  for (auto _ : State)
    benchmark::DoNotOptimize(timedSparseMs(Net, SimEngine::Event));
}
BENCHMARK(BM_SparseTrafficEventEngine)->Unit(benchmark::kMillisecond);

void BM_SaturatedLoadEventEngine(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  for (auto _ : State) {
    TrafficLoadResult R = simulateTrafficLoad(
        Net, CommModel::SinglePort, uniformAt(0.4), 200);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SaturatedLoadEventEngine)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  bool Json = false, Smoke = false;
  unsigned MaxK = 6;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;
    if (std::strcmp(argv[I], "--maxk") == 0) {
      const char *Arg = I + 1 != argc ? argv[++I] : nullptr;
      char *End = nullptr;
      long V = Arg ? std::strtol(Arg, &End, 10) : 0;
      if (!Arg || *End != '\0' || V < 4 || V > 8) {
        std::fprintf(stderr,
                     "error: --maxk requires an integer in [4, 8], got '%s'\n",
                     Arg ? Arg : "(nothing)");
        return 2;
      }
      MaxK = unsigned(V);
    }
  }
  if (Smoke)
    return runSmoke(Json, MaxK);
  if (Json) {
    std::printf("%s", jsonReport(MaxK).c_str());
    return 0;
  }
  printCurves(MaxK);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
