//===- bench/bench_traffic.cpp - Experiment E23 --------------------------===//
//
// Steady-state saturation curves: synthetic workloads (comm/Workload.h)
// offered to each family x communication model at k = 4..6 over a sweep of
// injection rates, reporting delivered throughput and latency percentiles
// per offered load -- the standard interconnect-evaluation methodology the
// paper itself stops short of (it evaluates one-shot permutation traffic
// only). The sweeps run on the event engine; the step engine would spend
// O(nodes * degree) per step on the long sparse tails these curves
// produce, which is exactly the regime the calendar-queue core removes.
//
// Modes:
//   (default)  human-readable E23 table + google-benchmark timings
//   --json     machine-readable one-object JSON on stdout: the full curve
//              sweep with per-point throughput/latency/occupancy and the
//              step-vs-event engine work ratio (committed as
//              BENCH_traffic.json in the repo root; fully deterministic,
//              no wall times)
//   --smoke    bounded checks: engine identity through the open-loop
//              driver on every model, >= 2x step/event work ratio on the
//              sparse-tail regime, wall-clock event <= step on sparse
//              traffic (min-of-7), and --json determinism; non-zero exit
//              on any failure. Wired into ctest under perf-smoke.
//
//===----------------------------------------------------------------------===//

#include "comm/Workload.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace scg;

namespace {

const char *modelName(CommModel Model) {
  switch (Model) {
  case CommModel::AllPort:
    return "all_port";
  case CommModel::SinglePort:
    return "single_port";
  case CommModel::SingleDimension:
    return "single_dimension";
  }
  return "?";
}

/// One saturation curve: a family x model at one k, swept over rates.
struct CurveSpec {
  SuperCayleyGraph Family;
  CommModel Model;
  std::vector<double> Rates;
  uint64_t Steps;
};

/// The committed sweep: every family class at k = 4 is covered by the
/// differential tests; the curves track star / transposition /
/// insertion-selection at k = 4 (the single-level classes with lifted
/// star routes) and star at k = 5, 6 (720 nodes), each under all three
/// models. Horizons shrink as k grows to keep the bench bounded; rates
/// bracket saturation for every model.
std::vector<CurveSpec> curveSpecs() {
  std::vector<double> FullSweep = {0.02, 0.05, 0.10, 0.20, 0.40};
  std::vector<double> ShortSweep = {0.02, 0.10, 0.40};
  std::vector<CurveSpec> Specs;
  for (CommModel Model :
       {CommModel::AllPort, CommModel::SinglePort,
        CommModel::SingleDimension}) {
    Specs.push_back({SuperCayleyGraph::star(4), Model, FullSweep, 400});
    Specs.push_back(
        {SuperCayleyGraph::transpositionNetwork(4), Model, FullSweep, 400});
    Specs.push_back(
        {SuperCayleyGraph::insertionSelection(4), Model, FullSweep, 400});
    Specs.push_back({SuperCayleyGraph::star(5), Model, FullSweep, 300});
    Specs.push_back({SuperCayleyGraph::star(6), Model, ShortSweep, 120});
  }
  return Specs;
}

WorkloadSpec uniformAt(double Rate) {
  WorkloadSpec Spec;
  Spec.Kind = WorkloadKind::UniformRandom;
  Spec.InjectionRate = Rate;
  Spec.Seed = 23;
  return Spec;
}

/// The step engine's analytic per-run work (see runImpl): every step scans
/// all queues and in-flight slots plus the selection sweep. Computing it
/// from the event run's step count avoids re-simulating (results are
/// engine-identical, pinned by EventCoreDifferentialTest).
uint64_t stepEngineWork(const ExplicitScg &Net, CommModel Model,
                        uint64_t Steps) {
  uint64_t QCount = uint64_t(Net.numNodes()) * Net.degree();
  return Steps * (2 * QCount + (Model == CommModel::AllPort
                                    ? QCount
                                    : uint64_t(Net.numNodes())));
}

struct CurvePoint {
  TrafficLoadResult R;
  double WorkRatio; ///< step-engine work / event-engine work.
};

CurvePoint runPoint(const ExplicitScg &Net, const CurveSpec &Spec,
                    double Rate) {
  TrafficLoadOptions Options; // event engine, serial shards: the committed
                              // numbers are thread-count-independent.
  CurvePoint P;
  P.R = simulateTrafficLoad(Net, Spec.Model, uniformAt(Rate), Spec.Steps,
                            Options);
  uint64_t StepWork = stepEngineWork(Net, Spec.Model, P.R.Sim.Steps);
  P.WorkRatio = P.R.Sim.TouchedWork
                    ? double(StepWork) / double(P.R.Sim.TouchedWork)
                    : 0.0;
  return P;
}

//===----------------------------------------------------------------------===//
// --json: the committed saturation curves
//===----------------------------------------------------------------------===//

/// Deterministic (fixed seeds, no wall times): the committed
/// BENCH_traffic.json can be diffed byte-for-byte.
std::string jsonReport() {
  JsonWriter W;
  W.beginObject().key("curves").beginArray();
  for (const CurveSpec &Spec : curveSpecs()) {
    ExplicitScg Net(Spec.Family);
    W.beginObject()
        .field("family", Spec.Family.name())
        .field("model", modelName(Spec.Model))
        .field("nodes", Net.numNodes())
        .field("steps", Spec.Steps)
        .key("points")
        .beginArray();
    for (double Rate : Spec.Rates) {
      CurvePoint P = runPoint(Net, Spec, Rate);
      W.beginObject()
          .field("offered", P.R.OfferedRate, 6)
          .field("delivered", P.R.DeliveredRate, 6)
          .field("mean_latency", P.R.MeanLatency, 4)
          .field("p50", P.R.P50Latency)
          .field("p99", P.R.P99Latency)
          .field("mean_queued", P.R.MeanQueued, 4)
          .field("work_ratio", P.WorkRatio, 2)
          .endObject();
    }
    W.endArray().endObject();
  }
  W.endArray().endObject();
  return W.str();
}

//===----------------------------------------------------------------------===//
// Default mode: the human-readable E23 table
//===----------------------------------------------------------------------===//

void printCurves() {
  std::printf("E23: saturation curves under uniform random traffic "
              "(event engine)\n\n");
  TextTable Table;
  Table.setHeader({"network", "model", "offered", "delivered", "mean lat",
                   "p99 lat", "mean queued", "work ratio"});
  for (const CurveSpec &Spec : curveSpecs()) {
    ExplicitScg Net(Spec.Family);
    for (double Rate : Spec.Rates) {
      CurvePoint P = runPoint(Net, Spec, Rate);
      Table.addRow({Spec.Family.name(), modelName(Spec.Model),
                    formatDouble(P.R.OfferedRate, 3),
                    formatDouble(P.R.DeliveredRate, 3),
                    formatDouble(P.R.MeanLatency, 2),
                    std::to_string(P.R.P99Latency),
                    formatDouble(P.R.MeanQueued, 1),
                    formatDouble(P.WorkRatio, 1)});
    }
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: delivered tracks offered until saturation then "
              "plateaus while p99 latency climbs; work ratio is the "
              "step-engine slot scans the event engine skipped (largest on "
              "sparse, low-rate traffic).\n\n");
}

//===----------------------------------------------------------------------===//
// --smoke
//===----------------------------------------------------------------------===//

using Clock = std::chrono::steady_clock;

bool sameResult(const SimulationResult &A, const SimulationResult &B) {
  return A.Completed == B.Completed && A.Steps == B.Steps &&
         A.Delivered == B.Delivered && A.Transmissions == B.Transmissions &&
         A.BusyLinkSteps == B.BusyLinkSteps &&
         A.MaxQueueLength == B.MaxQueueLength &&
         A.LinkUtilization == B.LinkUtilization;
}

/// Sparse-tail wall-clock workload: a handful of packets staggered over a
/// long horizon on star(6) -- 4320 queues, almost all idle at any step.
/// Returns milliseconds for one run under \p Engine.
double timedSparseMs(const ExplicitScg &Net, SimEngine Engine) {
  NetworkSimulator Sim(Net, CommModel::SinglePort);
  Sim.setEngine(Engine);
  SplitMix64 Rng(9);
  for (unsigned P = 0; P != 50; ++P) {
    std::vector<GenIndex> Route;
    for (unsigned H = 0; H != 4; ++H)
      Route.push_back(Rng.nextBelow(Net.degree()));
    Sim.scheduleInjection(P * 40, NodeId(Rng.nextBelow(Net.numNodes())),
                          Route);
  }
  auto Start = Clock::now();
  SimulationResult R = Sim.run(/*MaxSteps=*/4000);
  double Ms =
      std::chrono::duration<double, std::milli>(Clock::now() - Start).count();
  benchmark::DoNotOptimize(R);
  return Ms;
}

int runSmoke(bool Json) {
  int Failures = 0;
  auto Check = [&](const char *Name, bool Ok) {
    std::printf("%-44s %s\n", Name, Ok ? "ok" : "FAIL");
    Failures += !Ok;
  };

  // Engine identity through the open-loop driver, every model.
  for (CommModel Model :
       {CommModel::AllPort, CommModel::SinglePort,
        CommModel::SingleDimension}) {
    ExplicitScg Net(SuperCayleyGraph::star(4));
    TrafficLoadOptions StepOpts;
    StepOpts.Engine = SimEngine::Step;
    TrafficLoadOptions EventOpts;
    EventOpts.Engine = SimEngine::Event;
    TrafficLoadResult A =
        simulateTrafficLoad(Net, Model, uniformAt(0.1), 300, StepOpts);
    TrafficLoadResult B =
        simulateTrafficLoad(Net, Model, uniformAt(0.1), 300, EventOpts);
    char Name[64];
    std::snprintf(Name, sizeof(Name), "%s event == step via driver",
                  modelName(Model));
    Check(Name, sameResult(A.Sim, B.Sim) && A.MeanLatency == B.MeanLatency &&
                    A.P99Latency == B.P99Latency);
  }

  // The sparse-tail work claim of the acceptance criteria: on a low-rate
  // sweep point the step engine scans >= 2x the slots the event engine
  // touches (in practice far more; 2x is the floor the JSON must show).
  {
    ExplicitScg Net(SuperCayleyGraph::star(5));
    CurveSpec Spec{SuperCayleyGraph::star(5), CommModel::SinglePort,
                   {0.02}, 300};
    CurvePoint P = runPoint(Net, Spec, 0.02);
    std::printf("%-44s %s  (ratio %.1f)\n", "sparse-tail work ratio >= 2x",
                P.WorkRatio >= 2.0 ? "ok" : "FAIL", P.WorkRatio);
    Failures += P.WorkRatio < 2.0;
  }

  // Wall-clock: the event core must not be slower than the step core on
  // sparse traffic (min-of-7 to shed scheduler noise, small absolute
  // allowance for timer granularity).
  {
    ExplicitScg Net(SuperCayleyGraph::star(6));
    double Step = 1e100, Event = 1e100;
    for (int I = 0; I != 7; ++I) {
      Step = std::min(Step, timedSparseMs(Net, SimEngine::Step));
      Event = std::min(Event, timedSparseMs(Net, SimEngine::Event));
    }
    bool Ok = Event <= Step * 1.02 + 0.05;
    std::printf("%-44s %s  (step %.3f ms, event %.3f ms)\n",
                "event <= step wall-clock on sparse traffic",
                Ok ? "ok" : "FAIL", Step, Event);
    Failures += !Ok;
  }

  // With --json as well, pin the report's determinism: two full
  // generations must render byte-identically, or the committed
  // BENCH_traffic.json would churn.
  if (Json) {
    std::string A = jsonReport();
    Check("json report deterministic", !A.empty() && A == jsonReport());
  }

  return Failures ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// google-benchmark timings
//===----------------------------------------------------------------------===//

void BM_SparseTrafficStepEngine(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(6));
  for (auto _ : State)
    benchmark::DoNotOptimize(timedSparseMs(Net, SimEngine::Step));
}
BENCHMARK(BM_SparseTrafficStepEngine)->Unit(benchmark::kMillisecond);

void BM_SparseTrafficEventEngine(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(6));
  for (auto _ : State)
    benchmark::DoNotOptimize(timedSparseMs(Net, SimEngine::Event));
}
BENCHMARK(BM_SparseTrafficEventEngine)->Unit(benchmark::kMillisecond);

void BM_SaturatedLoadEventEngine(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  for (auto _ : State) {
    TrafficLoadResult R = simulateTrafficLoad(
        Net, CommModel::SinglePort, uniformAt(0.4), 200);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SaturatedLoadEventEngine)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  bool Json = false, Smoke = false;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;
  }
  if (Smoke)
    return runSmoke(Json);
  if (Json) {
    std::printf("%s", jsonReport().c_str());
    return 0;
  }
  printCurves();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
