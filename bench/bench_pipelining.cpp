//===- bench/bench_pipelining.cpp - Experiment E15 -----------------------===//
//
// Reproduces the wormhole/pipelining remark of Section 3: because the
// per-dimension congestion of the star embedding is 2 (dimensions beyond
// the first box) or 1, a node streaming B packets along one emulated star
// dimension completes in about congestion * B + dilation steps, so the
// *streaming* slowdown of MS/complete-RS/MIS over the star approaches 2
// (and IS approaches 1) as B grows -- not the worst-case 3 or 4 of
// Theorems 1 and 3. Every node injects B copies of its dimension-j path
// into the all-port simulator; the table reports steps/B against the
// per-dimension congestion.
//
//===----------------------------------------------------------------------===//

#include "comm/Simulator.h"
#include "embedding/StarEmbeddings.h"
#include "emulation/SdcEmulation.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

uint64_t streamSteps(const ExplicitScg &Net, unsigned Dim, unsigned Burst) {
  std::vector<GenIndex> Route = starDimensionPath(Net.network(), Dim).hops();
  NetworkSimulator Sim(Net, CommModel::AllPort);
  for (NodeId U = 0; U != Net.numNodes(); ++U)
    for (unsigned B = 0; B != Burst; ++B)
      Sim.injectPacket(U, Route);
  SimulationResult R = Sim.run(/*MaxSteps=*/uint64_t(Burst) * 16 + 64);
  assert(R.Completed && "stream did not drain");
  return R.Steps;
}

void addRows(TextTable &Table, const SuperCayleyGraph &Scg, unsigned Dim) {
  ExplicitScg Net(Scg);
  uint64_t Congestion = starDimensionCongestion(Scg, Dim);
  for (unsigned Burst : {1u, 4u, 16u, 64u}) {
    uint64_t Steps = streamSteps(Net, Dim, Burst);
    Table.addRow({Scg.name(), std::to_string(Dim),
                  std::to_string(Congestion), std::to_string(Burst),
                  std::to_string(Steps),
                  formatDouble(double(Steps) / Burst, 2)});
  }
}

void printPipelining() {
  std::printf("E15: streaming (wormhole-style) emulation slowdown "
              "(Section 3)\n\n");
  TextTable Table;
  Table.setHeader({"network", "dim j", "per-dim cong", "burst B", "steps",
                   "steps/B"});
  addRows(Table, SuperCayleyGraph::star(5), 5);
  addRows(Table, SuperCayleyGraph::insertionSelection(5), 5);
  addRows(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2), 3);
  addRows(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2), 5);
  addRows(Table,
          SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 2, 2),
          5);
  addRows(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2), 5);
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: steps/B converges to the per-dimension "
              "congestion (1 within the first box or on IS/star, 2 "
              "beyond it), reproducing the 'slowdown approximately 2 "
              "with wormhole or cut-through routing' remark.\n\n");
}

void BM_StreamBurst16(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  for (auto _ : State)
    benchmark::DoNotOptimize(streamSteps(Net, 5, 16));
}
BENCHMARK(BM_StreamBurst16)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printPipelining();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
