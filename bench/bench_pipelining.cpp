//===- bench/bench_pipelining.cpp - Experiment E15 -----------------------===//
//
// Reproduces the wormhole/pipelining remark of Section 3: because the
// per-dimension congestion of the star embedding is 2 (dimensions beyond
// the first box) or 1, a node streaming B packets along one emulated star
// dimension completes in about congestion * B + dilation steps, so the
// *streaming* slowdown of MS/complete-RS/MIS over the star approaches 2
// (and IS approaches 1) as B grows -- not the worst-case 3 or 4 of
// Theorems 1 and 3. Every node injects B copies of its dimension-j path
// into the all-port simulator; the table reports steps/B against the
// per-dimension congestion.
//
// Modes:
//   (default)  human-readable E15 table + google-benchmark timings
//   --json     machine-readable one-object JSON on stdout: deterministic
//              simulator workloads across all three communication models
//              with per-step time series from a MetricsObserver (committed
//              as BENCH_simulator.json in the repo root)
//   --smoke    bounded, invariant-checked simulator run: pinned step/
//              occupancy counts across all three models (including the
//              single-port multi-flit serialization fix), observed-vs-
//              unobserved result identity, ModelInvariantChecker clean,
//              and the <= 2% disabled-hook overhead budget; non-zero exit
//              on any failure. Wired into ctest under perf-smoke.
//
//===----------------------------------------------------------------------===//

#include "comm/SimObserver.h"
#include "embedding/StarEmbeddings.h"
#include "emulation/SdcEmulation.h"
#include "support/Format.h"
#include "support/Metrics.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

using namespace scg;

namespace {

uint64_t streamSteps(const ExplicitScg &Net, unsigned Dim, unsigned Burst) {
  std::vector<GenIndex> Route = starDimensionPath(Net.network(), Dim).hops();
  NetworkSimulator Sim(Net, CommModel::AllPort);
  for (NodeId U = 0; U != Net.numNodes(); ++U)
    for (unsigned B = 0; B != Burst; ++B)
      Sim.injectPacket(U, Route);
  SimulationResult R = Sim.run(/*MaxSteps=*/uint64_t(Burst) * 16 + 64);
  assert(R.Completed && "stream did not drain");
  return R.Steps;
}

void addRows(TextTable &Table, const SuperCayleyGraph &Scg, unsigned Dim) {
  ExplicitScg Net(Scg);
  uint64_t Congestion = starDimensionCongestion(Scg, Dim);
  for (unsigned Burst : {1u, 4u, 16u, 64u}) {
    uint64_t Steps = streamSteps(Net, Dim, Burst);
    Table.addRow({Scg.name(), std::to_string(Dim),
                  std::to_string(Congestion), std::to_string(Burst),
                  std::to_string(Steps),
                  formatDouble(double(Steps) / Burst, 2)});
  }
}

void printPipelining() {
  std::printf("E15: streaming (wormhole-style) emulation slowdown "
              "(Section 3)\n\n");
  TextTable Table;
  Table.setHeader({"network", "dim j", "per-dim cong", "burst B", "steps",
                   "steps/B"});
  addRows(Table, SuperCayleyGraph::star(5), 5);
  addRows(Table, SuperCayleyGraph::insertionSelection(5), 5);
  addRows(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2), 3);
  addRows(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2), 5);
  addRows(Table,
          SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 2, 2),
          5);
  addRows(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2), 5);
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: steps/B converges to the per-dimension "
              "congestion (1 within the first box or on IS/star, 2 "
              "beyond it), reproducing the 'slowdown approximately 2 "
              "with wormhole or cut-through routing' remark.\n\n");
}

void BM_StreamBurst16(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  for (auto _ : State)
    benchmark::DoNotOptimize(streamSteps(Net, 5, 16));
}
BENCHMARK(BM_StreamBurst16)->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// --json / --smoke: instrumented simulator workloads
//===----------------------------------------------------------------------===//

/// Mixed random traffic with every fourth packet multi-flit; the standing
/// deterministic workload of tests/SimObserverTest.cpp and EXPERIMENTS E21.
void injectMixed(NetworkSimulator &Sim, const ExplicitScg &Net,
                 unsigned Count, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (unsigned P = 0; P != Count; ++P) {
    NodeId Src = Rng.nextBelow(Net.numNodes());
    unsigned Len = 1 + Rng.nextBelow(5);
    std::vector<GenIndex> Route;
    for (unsigned H = 0; H != Len; ++H)
      Route.push_back(Rng.nextBelow(Net.degree()));
    Sim.injectPacket(Src, Route, P % 4 == 0 ? 1 + P % 3 : 1);
  }
}

const char *modelName(CommModel Model) {
  switch (Model) {
  case CommModel::AllPort:
    return "all_port";
  case CommModel::SinglePort:
    return "single_port";
  case CommModel::SingleDimension:
    return "single_dimension";
  }
  return "?";
}

/// One instrumented run of the mixed star(5) workload under \p Model,
/// appended to \p W as a JSON member: result scalars plus the sampled
/// time series.
void jsonWorkload(JsonWriter &W, CommModel Model) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  NetworkSimulator Sim(Net, Model);
  injectMixed(Sim, Net, 150, 7);
  MetricsRegistry Registry;
  MetricsObserver Metrics(Registry);
  ModelInvariantChecker Checker;
  Sim.addObserver(&Metrics);
  Sim.addObserver(&Checker);
  SimulationResult R = Sim.run(100000);
  W.key(std::string("star5_mixed_seed7_") + modelName(Model))
      .beginObject()
      .field("steps", R.Steps)
      .field("delivered", R.Delivered)
      .field("transmissions", R.Transmissions)
      .field("busy_link_steps", R.BusyLinkSteps)
      .field("max_queue_length", R.MaxQueueLength)
      .field("link_utilization", R.LinkUtilization, 6)
      .field("invariants", Checker.clean() ? "clean" : "VIOLATED")
      .key("metrics")
      .rawValue(Registry.toJson(64))
      .endObject();
}

/// The full --json report; deterministic (fixed seeds, no wall times), so
/// the committed BENCH_simulator.json can be diffed byte-for-byte.
std::string jsonReport() {
  JsonWriter W;
  W.beginObject();
  for (CommModel Model : {CommModel::AllPort, CommModel::SinglePort,
                          CommModel::SingleDimension})
    jsonWorkload(W, Model);
  W.endObject();
  return W.str();
}

using Clock = std::chrono::steady_clock;

/// Wall time of one uninstrumented mixed run; \p Forced measures the
/// disabled-hook path (instrumented loop, no observers attached).
double timedRunMs(const ExplicitScg &Net, bool Forced) {
  NetworkSimulator Sim(Net, CommModel::AllPort);
  Sim.forceInstrumentation(Forced);
  injectMixed(Sim, Net, 4000, 21);
  auto Start = Clock::now();
  SimulationResult R = Sim.run(100000);
  double Ms =
      std::chrono::duration<double, std::milli>(Clock::now() - Start).count();
  benchmark::DoNotOptimize(R);
  return Ms;
}

bool sameResult(const SimulationResult &A, const SimulationResult &B) {
  return A.Completed == B.Completed && A.Steps == B.Steps &&
         A.Delivered == B.Delivered && A.Transmissions == B.Transmissions &&
         A.BusyLinkSteps == B.BusyLinkSteps &&
         A.MaxQueueLength == B.MaxQueueLength &&
         A.LinkUtilization == B.LinkUtilization;
}

int runSmoke(bool Json) {
  int Failures = 0;
  auto Check = [&](const char *Name, bool Ok) {
    std::printf("%-44s %s\n", Name, Ok ? "ok" : "FAIL");
    Failures += !Ok;
  };

  // The single-port serialization fix, pinned: a node with two queued
  // 3-flit messages on distinct links must stream them back to back
  // (6 steps, 6 busy link-steps), not in parallel (the buggy 4).
  {
    ExplicitScg Net(SuperCayleyGraph::star(4));
    NetworkSimulator Sim(Net, CommModel::SinglePort);
    Sim.injectPacket(0, {0}, 3);
    Sim.injectPacket(0, {1}, 3);
    SimulationResult R = Sim.run(100);
    Check("single-port 2x3-flit serializes (6 steps)",
          R.Completed && R.Steps == 6 && R.BusyLinkSteps == 6);
  }

  // Pinned mixed-workload numbers per model, with a clean invariant
  // checker and observed == unobserved results.
  struct Pin {
    CommModel Model;
    uint64_t Steps;
  };
  for (Pin P : {Pin{CommModel::AllPort, 15}, Pin{CommModel::SinglePort, 17},
                Pin{CommModel::SingleDimension, 25}}) {
    ExplicitScg Net(SuperCayleyGraph::star(5));
    NetworkSimulator Bare(Net, P.Model);
    injectMixed(Bare, Net, 150, 7);
    SimulationResult RB = Bare.run(100000);

    NetworkSimulator Observed(Net, P.Model);
    injectMixed(Observed, Net, 150, 7);
    MetricsRegistry Registry;
    MetricsObserver Metrics(Registry);
    ModelInvariantChecker Checker;
    Observed.addObserver(&Metrics);
    Observed.addObserver(&Checker);
    SimulationResult RO = Observed.run(100000);

    char Name[64];
    std::snprintf(Name, sizeof(Name), "%s pinned (%llu steps)",
                  modelName(P.Model), (unsigned long long)P.Steps);
    Check(Name, RB.Completed && RB.Steps == P.Steps && RB.Delivered == 150 &&
                    RB.Transmissions == 442);
    std::snprintf(Name, sizeof(Name), "%s observed == unobserved",
                  modelName(P.Model));
    Check(Name, sameResult(RB, RO));
    std::snprintf(Name, sizeof(Name), "%s invariants clean",
                  modelName(P.Model));
    Check(Name, Checker.clean());
    if (!Checker.clean())
      std::printf("%s", Checker.report().c_str());
  }

  // With --json as well, pin the report's determinism: two full
  // generations (fresh simulators, observers, registries) must render
  // byte-identically, or the committed BENCH_simulator.json would churn.
  if (Json) {
    std::string A = jsonReport();
    Check("json report deterministic", !A.empty() && A == jsonReport());
  }

  // Disabled-hook overhead budget: with no observer attached the
  // instrumented loop (forceInstrumentation) must stay within 2% of the
  // uninstrumented dispatch, min-of-7 to shed scheduler noise plus a
  // small absolute allowance for timer granularity on short runs.
  {
    ExplicitScg Net(SuperCayleyGraph::star(6));
    double Plain = 1e100, Forced = 1e100;
    for (int I = 0; I != 7; ++I) {
      Plain = std::min(Plain, timedRunMs(Net, false));
      Forced = std::min(Forced, timedRunMs(Net, true));
    }
    bool Ok = Forced <= Plain * 1.02 + 0.05;
    std::printf("%-44s %s  (plain %.3f ms, forced %.3f ms)\n",
                "disabled-hook overhead <= 2%", Ok ? "ok" : "FAIL", Plain,
                Forced);
    Failures += !Ok;
  }

  return Failures ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Json = false, Smoke = false;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;
  }
  if (Smoke)
    return runSmoke(Json);
  if (Json) {
    std::printf("%s", jsonReport().c_str());
    return 0;
  }
  printPipelining();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
