//===- bench/bench_star_embedding.cpp - Experiment E14 -------------------===//
//
// Reproduces the Section 3 embedding numbers for the star graph into super
// Cayley graphs: dilation 2/3/4, total congestion max(2n, l) (1 for IS),
// and the per-dimension congestion claim (2 for dimensions j > n+1, 1
// otherwise) that underlies the "slowdown approximately 2 with wormhole
// routing" remark.
//
//===----------------------------------------------------------------------===//

#include "embedding/StarEmbeddings.h"
#include "networks/Explicit.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

void addRow(TextTable &Table, const SuperCayleyGraph &Host) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(Host.numSymbols());
  Graph Guest = ExplicitScg(Star).toGraph();
  EmbeddingMetrics M = measureEmbedding(Guest, embedStarInto(Star, Host));
  Table.addRow({Star.name() + " -> " + Host.name(), std::to_string(M.Load),
                std::to_string(M.Dilation),
                std::to_string(paperStarDilationBound(Host)),
                std::to_string(M.Congestion),
                std::to_string(paperStarCongestionBound(Host)),
                M.Valid ? "yes" : "NO"});
}

void printStarTable() {
  std::printf("E14: star-graph embeddings into super Cayley graphs "
              "(Section 3)\n\n");
  TextTable Table;
  Table.setHeader({"embedding", "load", "dilation", "paper dil",
                   "congestion", "paper cong", "valid"});
  addRow(Table, SuperCayleyGraph::insertionSelection(6));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 3));
  addRow(Table,
         SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 3, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2));
  addRow(Table,
         SuperCayleyGraph::create(NetworkKind::CompleteRotationIS, 3, 2));
  std::printf("%s\n", Table.render().c_str());

  std::printf("per-dimension congestion (Section 3: 2 when j > n+1, else "
              "1)\n\n");
  TextTable PerDim;
  PerDim.setHeader({"host", "dimension j", "congestion", "paper"});
  for (NetworkKind Kind :
       {NetworkKind::MacroStar, NetworkKind::CompleteRotationStar,
        NetworkKind::MacroIS}) {
    SuperCayleyGraph Host = SuperCayleyGraph::create(Kind, 2, 3);
    for (unsigned J = 2; J <= Host.numSymbols(); ++J)
      PerDim.addRow({Host.name(), std::to_string(J),
                     std::to_string(starDimensionCongestion(Host, J)),
                     J > Host.ballsPerBox() + 1 ? "2" : "1"});
  }
  std::printf("%s\n", PerDim.render().c_str());
}

void BM_StarEmbeddingMeasurement(benchmark::State &State) {
  SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  SuperCayleyGraph Star = SuperCayleyGraph::star(5);
  Graph Guest = ExplicitScg(Star).toGraph();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        measureEmbedding(Guest, embedStarInto(Star, Host)).Congestion);
}
BENCHMARK(BM_StarEmbeddingMeasurement)->Unit(benchmark::kMillisecond);

void BM_PerDimensionCongestion(benchmark::State &State) {
  SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2);
  for (auto _ : State)
    benchmark::DoNotOptimize(starDimensionCongestion(Host, 7));
}
BENCHMARK(BM_PerDimensionCongestion)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printStarTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
