//===- bench/bench_sdc_emulation.cpp - Experiments E1-E3 -----------------===//
//
// Reproduces Theorems 1-3: the single-dimension-communication slowdown of
// emulating the (ln+1)-star on each super Cayley graph class. The paper's
// claimed constants (3 for MS/complete-RS, 2 for IS, 4 for MIS/
// complete-RIS) are printed next to the measured maximum path length; the
// non-complete rotation classes, for which the paper claims no constant,
// show the expected growth with l.
//
//===----------------------------------------------------------------------===//

#include "emulation/SdcEmulation.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

void addRow(TextTable &Table, const SuperCayleyGraph &Net,
            const char *Claim) {
  SdcEmulationReport R = analyzeSdcEmulation(Net);
  Table.addRow({Net.name(), std::to_string(Net.numSymbols()),
                std::to_string(Net.degree()), std::to_string(R.Slowdown),
                Claim, std::to_string(R.DirectDimensions),
                formatDouble(R.AveragePathLength, 2)});
}

void printSdcTable() {
  std::printf("E1-E3: SDC emulation of the (ln+1)-star (Theorems 1-3)\n\n");
  TextTable Table;
  Table.setHeader({"network", "k", "degree", "slowdown", "paper", "direct",
                   "avg path"});

  for (auto [L, N] :
       {std::pair{2u, 2u}, {3u, 2u}, {2u, 3u}, {4u, 3u}, {5u, 3u},
        {8u, 4u}, {10u, 10u}}) {
    addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, L, N),
           "3");
    addRow(Table,
           SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, L, N),
           "3");
    addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, L, N), "4");
    addRow(Table,
           SuperCayleyGraph::create(NetworkKind::CompleteRotationIS, L, N),
           "4");
  }
  for (unsigned K : {5u, 9u, 17u, 101u})
    addRow(Table, SuperCayleyGraph::insertionSelection(K), "2");
  for (auto [L, N] : {std::pair{4u, 2u}, {6u, 2u}, {10u, 3u}}) {
    addRow(Table, SuperCayleyGraph::create(NetworkKind::RotationStar, L, N),
           "-");
    addRow(Table, SuperCayleyGraph::create(NetworkKind::RotationIS, L, N),
           "-");
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: MS/complete-RS hold slowdown 3 and IS holds 2 "
              "at every size (including k = 101); RS/RIS grow like l/2 as "
              "the paper's definitions predict.\n\n");
}

void BM_DimensionPathMacroStar(benchmark::State &State) {
  SuperCayleyGraph Ms =
      SuperCayleyGraph::create(NetworkKind::MacroStar, State.range(0), 3);
  unsigned K = Ms.numSymbols();
  unsigned J = 2;
  for (auto _ : State) {
    benchmark::DoNotOptimize(starDimensionPath(Ms, J));
    J = (J == K) ? 2 : J + 1;
  }
}
BENCHMARK(BM_DimensionPathMacroStar)->Arg(4)->Arg(16)->Arg(64);

void BM_AnalyzeSdcIs(benchmark::State &State) {
  SuperCayleyGraph Is = SuperCayleyGraph::insertionSelection(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeSdcEmulation(Is).Slowdown);
}
BENCHMARK(BM_AnalyzeSdcIs)->Arg(8)->Arg(32)->Arg(128);

} // namespace

int main(int argc, char **argv) {
  printSdcTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
