//===- bench/bench_degree_diameter.cpp - Experiment E18 ------------------===//
//
// Reproduces the introduction's "optimal diameters (given their node
// degree)" claim and the mean-distance lower bound step in the proof of
// Corollary 3: every class's measured diameter and average internodal
// distance against the universal Moore bounds DL(degree, N). A bounded
// ratio column is the reproduced result; the star family and the super
// Cayley graphs all sit within a small factor of the universal bound,
// which is what "asymptotically optimal given degree" means here. The
// rotation-exchange network of [23] appears as RS(l,1) (nucleus T_2 plus
// R, R^-1: the trivalent variant).
//
// The diameter/average columns come from the vertex-transitivity shortcut
// (one BFS); an `exact` column recomputes them with the bit-parallel
// MS-BFS all-pairs engine, so the table itself certifies the shortcut on
// every row -- that exact sweep is also what any non-vertex-transitive
// comparison graph would take.
//
// Modes (consistent with bench_kernels / bench_pipelining):
//   (default)  human-readable table + google-benchmark timings
//   --json     one-object JSON of every row (diameter, Moore bounds,
//              ratios, exact-sweep agreement)
//   --smoke    bounded subset with invariants checked (exact == shortcut,
//              push engine == hybrid engine byte-identical, diameter >= DL,
//              mean >= Moore mean bound), non-zero exit on any violation;
//              wired into ctest under perf-smoke.
//
//===----------------------------------------------------------------------===//

#include "graph/Metrics.h"
#include "graph/MooreBounds.h"
#include "graph/MsBfs.h"
#include "networks/Explicit.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace scg;

namespace {

/// One comparison row: measured distances (shortcut + exact bit-parallel
/// sweep) against the universal degree bounds.
struct Row {
  std::string Name;
  uint64_t Nodes;
  unsigned Degree;
  uint32_t Diameter;      ///< vertex-transitive shortcut (one BFS).
  uint32_t ExactDiameter; ///< MS-BFS all-pairs sweep.
  unsigned Dl;            ///< Moore diameter lower bound.
  double AvgDist;
  double ExactAvgDist;
  double MeanLb;          ///< Moore mean-distance lower bound.
};

Row makeRow(const SuperCayleyGraph &Scg) {
  ExplicitScg Net(Scg);
  DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
  DistanceStats Exact = msAllPairsStats(Net.toCsr());
  bool Directed = !Scg.isUndirected();
  Row R;
  R.Name = Scg.name();
  R.Nodes = Net.numNodes();
  R.Degree = Scg.degree();
  R.Diameter = Stats.Diameter;
  R.ExactDiameter = Exact.Diameter;
  R.Dl = mooreDiameterLowerBound(Scg.degree(), Net.numNodes(), Directed);
  R.AvgDist = Stats.AverageDistance;
  R.ExactAvgDist = Exact.AverageDistance;
  R.MeanLb = mooreMeanDistanceLowerBound(Scg.degree(), Net.numNodes(),
                                         Directed);
  return R;
}

std::vector<SuperCayleyGraph> fullSet() {
  std::vector<SuperCayleyGraph> Nets;
  for (unsigned K : {6u, 7u}) {
    Nets.push_back(SuperCayleyGraph::star(K));
    Nets.push_back(SuperCayleyGraph::insertionSelection(K));
  }
  Nets.push_back(SuperCayleyGraph::bubbleSort(6));
  Nets.push_back(SuperCayleyGraph::transpositionNetwork(6));
  Nets.push_back(SuperCayleyGraph::rotator(6));
  Nets.push_back(SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2));
  Nets.push_back(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 3));
  Nets.push_back(
      SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 3, 2));
  Nets.push_back(SuperCayleyGraph::create(NetworkKind::MacroIS, 3, 2));
  // Rotation-exchange network [23]: RS(l, 1), the trivalent variant.
  Nets.push_back(SuperCayleyGraph::create(NetworkKind::RotationStar, 6, 1));
  Nets.push_back(SuperCayleyGraph::create(NetworkKind::RotationStar, 5, 1));
  return Nets;
}

/// Bounded subset for the smoke lane (largest graph: 720 nodes).
std::vector<SuperCayleyGraph> smokeSet() {
  return {SuperCayleyGraph::star(6), SuperCayleyGraph::insertionSelection(6),
          SuperCayleyGraph::rotator(6),
          SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2),
          SuperCayleyGraph::create(NetworkKind::RotationStar, 5, 1)};
}

void printTable() {
  std::printf("E18: diameters and mean distances vs the universal "
              "degree bounds DL(d, N)\n\n");
  TextTable Table;
  Table.setHeader({"network", "N", "deg", "diam", "exact", "DL", "ratio",
                   "avg dist", "mean LB", "ratio"});
  for (const SuperCayleyGraph &Scg : fullSet()) {
    Row R = makeRow(Scg);
    Table.addRow({R.Name, std::to_string(R.Nodes), std::to_string(R.Degree),
                  std::to_string(R.Diameter), std::to_string(R.ExactDiameter),
                  std::to_string(R.Dl),
                  formatDouble(double(R.Diameter) / double(R.Dl), 2),
                  formatDouble(R.AvgDist, 2), formatDouble(R.MeanLb, 2),
                  formatDouble(R.AvgDist / R.MeanLb, 2)});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: diameter ratios stay within ~3x of the Moore "
              "bound across classes (the bubble-sort graph, which the "
              "paper does not call degree-optimal, is visibly worse), "
              "measured mean distances dominate the Corollary 3 "
              "mean-distance bound as required by its proof, and the "
              "`exact` (MS-BFS all-pairs) column certifies the "
              "vertex-transitivity shortcut on every row.\n\n");
}

void printJson() {
  JsonWriter W;
  W.beginObject();
  for (const SuperCayleyGraph &Net : fullSet()) {
    Row R = makeRow(Net);
    W.key(R.Name)
        .beginObject()
        .field("nodes", R.Nodes)
        .field("degree", R.Degree)
        .field("diam", R.Diameter)
        .field("exact_diam", R.ExactDiameter)
        .field("dl", R.Dl)
        .field("avg", R.AvgDist, 6)
        .field("exact_avg", R.ExactAvgDist, 6)
        .field("mean_lb", R.MeanLb, 6)
        .endObject();
  }
  W.endObject();
  std::fputs(W.str().c_str(), stdout);
}

int runSmoke() {
  int Failures = 0;
  for (const SuperCayleyGraph &Scg : smokeSet()) {
    Row R = makeRow(Scg);
    // The `exact` column above ran the default (hybrid) engine; rerun the
    // sweep on the push reference and require byte-identical statistics.
    MsSweepOptions PushOpts;
    PushOpts.Engine = MsBfsEngine::Push;
    DistanceStats Push = msAllPairsStats(ExplicitScg(Scg).toCsr(), PushOpts);
    bool ExactOk = R.Diameter == R.ExactDiameter &&
                   std::fabs(R.AvgDist - R.ExactAvgDist) < 1e-9;
    bool EnginesOk = Push.Diameter == R.ExactDiameter &&
                     Push.AverageDistance == R.ExactAvgDist;
    bool DlOk = R.Diameter >= R.Dl;
    bool MeanOk = R.AvgDist >= R.MeanLb;
    std::printf("%-12s N=%-5llu diam %u exact %u DL %u avg %.4f LB %.4f "
                "%s%s%s%s\n",
                R.Name.c_str(), (unsigned long long)R.Nodes, R.Diameter,
                R.ExactDiameter, R.Dl, R.AvgDist, R.MeanLb,
                ExactOk ? "exact-ok " : "EXACT-MISMATCH ",
                EnginesOk ? "engines-ok " : "PUSH-HYBRID-MISMATCH ",
                DlOk ? "dl-ok " : "BELOW-MOORE-DL ",
                MeanOk ? "mean-ok" : "BELOW-MOORE-MEAN");
    Failures += !ExactOk + !EnginesOk + !DlOk + !MeanOk;
  }
  return Failures ? 1 : 0;
}

void BM_MooreDiameterBound(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(
        mooreDiameterLowerBound(12, 479001600ull, false));
}
BENCHMARK(BM_MooreDiameterBound);

void BM_MooreMeanBound(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(
        mooreMeanDistanceLowerBound(12, 479001600ull, false));
}
BENCHMARK(BM_MooreMeanBound);

} // namespace

int main(int argc, char **argv) {
  bool Json = false, Smoke = false;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;
  }
  if (Smoke) {
    setGlobalThreadCount(1);
    return runSmoke();
  }
  if (Json) {
    setGlobalThreadCount(1);
    printJson();
    return 0;
  }
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
