//===- bench/bench_degree_diameter.cpp - Experiment E18 ------------------===//
//
// Reproduces the introduction's "optimal diameters (given their node
// degree)" claim and the mean-distance lower bound step in the proof of
// Corollary 3: every class's measured diameter and average internodal
// distance against the universal Moore bounds DL(degree, N). A bounded
// ratio column is the reproduced result; the star family and the super
// Cayley graphs all sit within a small factor of the universal bound,
// which is what "asymptotically optimal given degree" means here. The
// rotation-exchange network of [23] appears as RS(l,1) (nucleus T_2 plus
// R, R^-1: the trivalent variant).
//
//===----------------------------------------------------------------------===//

#include "graph/Metrics.h"
#include "graph/MooreBounds.h"
#include "networks/Explicit.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

void addRow(TextTable &Table, const SuperCayleyGraph &Scg) {
  ExplicitScg Net(Scg);
  DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
  bool Directed = !Scg.isUndirected();
  unsigned Dl = mooreDiameterLowerBound(Scg.degree(), Net.numNodes(),
                                        Directed);
  double MeanLb = mooreMeanDistanceLowerBound(Scg.degree(), Net.numNodes(),
                                              Directed);
  Table.addRow({Scg.name(), std::to_string(Net.numNodes()),
                std::to_string(Scg.degree()),
                std::to_string(Stats.Diameter), std::to_string(Dl),
                formatDouble(double(Stats.Diameter) / double(Dl), 2),
                formatDouble(Stats.AverageDistance, 2),
                formatDouble(MeanLb, 2),
                formatDouble(Stats.AverageDistance / MeanLb, 2)});
}

void printTable() {
  std::printf("E18: diameters and mean distances vs the universal "
              "degree bounds DL(d, N)\n\n");
  TextTable Table;
  Table.setHeader({"network", "N", "deg", "diam", "DL", "ratio",
                   "avg dist", "mean LB", "ratio"});
  for (unsigned K : {6u, 7u}) {
    addRow(Table, SuperCayleyGraph::star(K));
    addRow(Table, SuperCayleyGraph::insertionSelection(K));
  }
  addRow(Table, SuperCayleyGraph::bubbleSort(6));
  addRow(Table, SuperCayleyGraph::transpositionNetwork(6));
  addRow(Table, SuperCayleyGraph::rotator(6));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 3));
  addRow(Table,
         SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 3, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, 3, 2));
  // Rotation-exchange network [23]: RS(l, 1), the trivalent variant.
  addRow(Table, SuperCayleyGraph::create(NetworkKind::RotationStar, 6, 1));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::RotationStar, 5, 1));
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: diameter ratios stay within ~3x of the Moore "
              "bound across classes (the bubble-sort graph, which the "
              "paper does not call degree-optimal, is visibly worse), and "
              "measured mean distances dominate the Corollary 3 "
              "mean-distance bound as required by its proof.\n\n");
}

void BM_MooreDiameterBound(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(
        mooreDiameterLowerBound(12, 479001600ull, false));
}
BENCHMARK(BM_MooreDiameterBound);

void BM_MooreMeanBound(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(
        mooreMeanDistanceLowerBound(12, 479001600ull, false));
}
BENCHMARK(BM_MooreMeanBound);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
