//===- bench/bench_network_properties.cpp - Experiments E13 / E22 / E24 --===//
//
// Reproduces the Section 2 network inventory: every super Cayley graph
// class (plus the classic comparison networks) with its size, degree,
// diameter, and average internodal distance. The paper quotes "optimal
// diameters (given their node degree) and small node degrees"; the table
// makes the degree/diameter trade-off concrete.
//
// Also carries the exact-distance engine curve (E22/E24): scalar vs
// top-down (push) vs direction-optimizing (hybrid) all-pairs sweeps on
// the star family, plus the hybrid's 1/2/4/8-thread scaling table.
//
// Modes (consistent with bench_kernels / bench_pipelining):
//   (default)  inventory table + scaling + google-benchmark timings
//   --json     machine-readable distance-engine curve on stdout. Every
//              entry records engine + thread-count metadata; hybrid
//              entries add the distance.* counters (push/pull words,
//              direction switches) that explain the win. Regenerates the
//              committed BENCH_distance.json up to star(9); pass
//              "--maxk 10" to append the exact star(10) sweep (3.6M
//              nodes -- an hours-scale single-machine run, which is the
//              point of that row).
//   --threads  just the hybrid thread-scaling table (human-readable).
//   --smoke    bounded pinned workload (star 6/7), non-zero exit unless
//              push >= scalar throughput at both sizes, hybrid >= push at
//              star(7) on tuned -march=native builds / hybrid within
//              1.25x of push on portable ones (star(6) is sub-millisecond
//              and setup-dominated, so it only feeds the agreement
//              checks), AND all three engines agree on diameter / average
//              distance bit for bit; wired into ctest under the
//              perf-smoke label.
//
// --json and --smoke force a single thread (except the explicit scaling
// entries) so numbers are comparable across machines.
//
//===----------------------------------------------------------------------===//

#include "graph/Metrics.h"
#include "graph/MsBfs.h"
#include "networks/Clusters.h"
#include "networks/Explicit.h"
#include "perm/GroupOrder.h"
#include "support/BatchRunner.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

using namespace scg;

namespace {

std::vector<std::string> networkRow(const SuperCayleyGraph &Scg) {
  ExplicitScg Net(Scg);
  DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
  // Connectivity certificate (Schreier-Sims) and modular structure.
  std::vector<Permutation> Actions;
  for (const Generator &G : Scg.generators())
    Actions.push_back(G.Sigma);
  std::string Clusters = "-";
  if (Scg.numBoxes() >= 2) {
    ClusterStructure C(Net);
    Clusters = std::to_string(C.numClusters()) + "x" +
               std::to_string(C.clusterSize());
  }
  return {Scg.name(), std::to_string(Scg.numSymbols()),
          std::to_string(Scg.numNodes()),
          std::to_string(Scg.degree()),
          Scg.isUndirected() ? "no" : "yes",
          std::to_string(Stats.Diameter),
          formatDouble(Stats.AverageDistance, 3),
          generatesSymmetricGroup(Actions) ? "yes" : "NO", Clusters};
}

void printInventory() {
  std::printf("E13: network properties of the super Cayley graph classes "
              "(Section 2)\n\n");
  TextTable Table;
  Table.setHeader({"network", "k", "nodes", "degree", "directed", "diameter",
                   "avg dist", "S_k cert", "clusters"});

  // Every inventory row is independent; build them as a parallel batch and
  // print in submission order.
  BatchRunner<std::vector<std::string>> Rows;
  auto Queue = [&](SuperCayleyGraph Scg) {
    Rows.add([Scg = std::move(Scg)] { return networkRow(Scg); });
  };
  for (unsigned K : {5u, 6u, 7u}) {
    Queue(SuperCayleyGraph::star(K));
    Queue(SuperCayleyGraph::bubbleSort(K));
    Queue(SuperCayleyGraph::transpositionNetwork(K));
    Queue(SuperCayleyGraph::insertionSelection(K));
  }
  for (auto [L, N] : {std::pair{2u, 2u}, {3u, 2u}, {2u, 3u}, {4u, 2u}}) {
    for (NetworkKind Kind :
         {NetworkKind::MacroStar, NetworkKind::RotationStar,
          NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
          NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
          NetworkKind::MacroIS, NetworkKind::RotationIS,
          NetworkKind::CompleteRotationIS})
      if (L * N + 1 <= 9)
        Queue(SuperCayleyGraph::create(Kind, L, N));
  }
  for (std::vector<std::string> &Row : Rows.run())
    Table.addRow(std::move(Row));
  std::printf("%s\n", Table.render().c_str());
  std::printf("note: the paper's headline trade-off is visible in the "
              "degree column: MS/RS/complete-RS reach star-graph-like "
              "diameters with ~n + l links instead of k - 1.\n\n");
}

//===----------------------------------------------------------------------===//
// E22/E24: the distance-engine curve (scalar vs push vs hybrid MS-BFS)
// and the hybrid thread-scaling table.
//===----------------------------------------------------------------------===//

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

struct Measurement {
  std::string Name;
  double Ms;
  uint64_t Check; ///< diameter of the swept graph, pinning correctness.
  const char *Engine;
  unsigned Threads = 1;
  /// Exact average internodal distance, full precision -- the committed
  /// JSON doubles as the certificate of the swept value (engines and
  /// thread counts must reproduce it bit for bit).
  double AvgDistance = 0.0;
  /// Hybrid-only telemetry (distance.* counters) explaining the win.
  std::optional<MsBfsCounters> Counters;
};

uint64_t counterValue(const MetricsRegistry &M, const std::string &Name) {
  const Metric *C = M.find(Name);
  return C ? uint64_t(C->value()) : 0;
}

/// Sub-second sweeps (k <= 7) are dominated by first-touch noise (cold
/// scratch, hugepage setup, frequency ramp) on a single cold shot, so
/// the committed curve reports best-of-3 there; the k >= 8 sweeps run
/// seconds to hours and are stable single-shot.
int curveReps(unsigned K) { return K <= 7 ? 3 : 1; }

/// Scalar all-pairs (one BFS per source) on star(k).
Measurement scalarSweep(unsigned K) {
  Graph G = ExplicitScg(SuperCayleyGraph::star(K)).toGraph();
  double BestMs = 1e300;
  DistanceStats S;
  for (int Rep = 0, Reps = curveReps(K); Rep != Reps; ++Rep) {
    auto Start = Clock::now();
    S = scalarAllPairsStats(G);
    BestMs = std::min(BestMs, msSince(Start));
  }
  return {"all_pairs_scalar_star" + std::to_string(K), BestMs, S.Diameter,
          "scalar", 1, S.AverageDistance, std::nullopt};
}

/// MS-BFS all-pairs on star(k), fed straight from the Next table (no
/// Graph intermediary), on the chosen engine at \p Threads threads. The
/// hybrid run carries its work counters into the measurement.
Measurement msbfsSweep(unsigned K, MsBfsEngine Engine, unsigned Threads = 1) {
  Csr C = ExplicitScg(SuperCayleyGraph::star(K)).toCsr();
  const char *Name = Engine == MsBfsEngine::Push ? "push" : "hybrid";
  // One extra rep at k = 8 relative to curveReps: the first ~29 MB-scale
  // scratch allocation of a process pays hugepage compaction on first
  // touch, which lands entirely on whichever star(8) entry runs first
  // and fakes a thread-scaling "speedup" on a single-core host. Best-of-2
  // keeps every star(8) entry warm-measured for ~1.5 s apiece.
  const int Reps = K <= 7 ? 3 : K == 8 ? 2 : 1;
  MetricsRegistry Registry;
  MsSweepOptions Opts;
  Opts.Engine = Engine;
  // Counters must describe exactly one sweep. Where the curve reps for
  // best-of (k <= 7) the timed reps run uncounted and one extra untimed
  // counted run follows; the single-shot k >= 8 sweeps are counted
  // directly -- counter accounting is per-node arithmetic that does not
  // measurably perturb a seconds-to-hours sweep, and re-running star(10)
  // just to keep the timed shot uncounted would double an hours run.
  if (Engine == MsBfsEngine::Hybrid && Reps == 1)
    Opts.Metrics = &Registry;
  setGlobalThreadCount(Threads);
  double Ms = 1e300;
  DistanceStats S;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    auto Start = Clock::now();
    S = msAllPairsStats(C, Opts);
    Ms = std::min(Ms, msSince(Start));
  }
  if (Engine == MsBfsEngine::Hybrid && Reps > 1) {
    Opts.Metrics = &Registry;
    msAllPairsStats(C, Opts);
  }
  setGlobalThreadCount(1);
  Measurement M{"all_pairs_" + std::string(Name) + "_star" +
                    std::to_string(K) +
                    (Threads == 1 ? "" : "_t" + std::to_string(Threads)),
                Ms, S.Diameter, Name, Threads, S.AverageDistance,
                std::nullopt};
  if (Engine == MsBfsEngine::Hybrid) {
    MsBfsCounters Counters;
    Counters.Batches = counterValue(Registry, "distance.batches");
    Counters.PushLevels = counterValue(Registry, "distance.push_levels");
    Counters.PullLevels = counterValue(Registry, "distance.pull_levels");
    Counters.PushWords = counterValue(Registry, "distance.push_words");
    Counters.PullWords = counterValue(Registry, "distance.pull_words");
    Counters.DirectionSwitches =
        counterValue(Registry, "distance.direction_switches");
    M.Counters = Counters;
  }
  return M;
}

/// The committed BENCH_distance.json curve: all three engines at
/// k = 6/7/8, push + hybrid at k = 9 (the scalar engine needs ~half an
/// hour there), hybrid alone at k = 10 (3.6M nodes; only the hybrid
/// completes it in hours rather than days), plus the hybrid's
/// 1/2/4/8-thread scaling points on the k = 8 sweep.
std::vector<Measurement> distanceCurve(unsigned MaxK) {
  std::vector<Measurement> Ms;
  // The k >= 9 sweeps run for minutes to hours; narrate each completed
  // measurement on stderr so a redirected --json run stays observable.
  auto Log = [&Ms] {
    const Measurement &M = Ms.back();
    std::fprintf(stderr,
                 "[distance-curve] %-28s %12.2f ms  diam %llu  avg %.6f\n",
                 M.Name.c_str(), M.Ms, (unsigned long long)M.Check,
                 M.AvgDistance);
  };
  for (unsigned K : {6u, 7u, 8u}) {
    Ms.push_back(scalarSweep(K));
    Log();
    Ms.push_back(msbfsSweep(K, MsBfsEngine::Push));
    Log();
    Ms.push_back(msbfsSweep(K, MsBfsEngine::Hybrid));
    Log();
  }
  for (unsigned Threads : {2u, 4u, 8u}) {
    Ms.push_back(msbfsSweep(8, MsBfsEngine::Hybrid, Threads));
    Log();
  }
  if (MaxK >= 9) {
    Ms.push_back(msbfsSweep(9, MsBfsEngine::Push));
    Log();
    Ms.push_back(msbfsSweep(9, MsBfsEngine::Hybrid));
    Log();
  }
  if (MaxK >= 10) {
    Ms.push_back(msbfsSweep(10, MsBfsEngine::Hybrid));
    Log();
  }
  return Ms;
}

void printJson(const std::vector<Measurement> &Ms) {
  JsonWriter W;
  W.beginObject();
  for (const Measurement &M : Ms) {
    W.key(M.Name)
        .beginObject()
        .field("ms", M.Ms, 2)
        .field("check", M.Check)
        .field("engine", M.Engine)
        .field("threads", M.Threads)
        .field("avg_distance", M.AvgDistance);
    if (M.Counters)
      W.field("push_words", M.Counters->PushWords)
          .field("pull_words", M.Counters->PullWords)
          .field("push_levels", M.Counters->PushLevels)
          .field("pull_levels", M.Counters->PullLevels)
          .field("direction_switches", M.Counters->DirectionSwitches);
    W.endObject();
  }
  W.endObject();
  std::fputs(W.str().c_str(), stdout);
}

/// Human-readable hybrid scaling table: the k = 8 sweep at 1/2/4/8
/// threads with byte-identity asserted against the single-thread run.
void printThreadScaling() {
  std::printf("hybrid engine thread scaling: msAllPairsStats on star(8) "
              "(40,320 nodes, 630 batches) at 1/2/4/8 threads\n");
  std::printf("(hardware concurrency here: %u; SCG_THREADS overrides; on a "
              "1-core host wall-clock parity is the ceiling and the table "
              "verifies determinism, not speedup)\n\n",
              defaultThreadCount());
  Csr C = ExplicitScg(SuperCayleyGraph::star(8)).toCsr();
  TextTable Table;
  Table.setHeader({"threads", "wall ms", "speedup", "diameter", "avg dist"});
  double BaselineMs = 0.0;
  DistanceStats Reference;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    setGlobalThreadCount(Threads);
    auto Start = Clock::now();
    DistanceStats Stats = msAllPairsStats(C);
    double Ms = msSince(Start);
    benchmark::DoNotOptimize(Stats);
    if (Threads == 1) {
      BaselineMs = Ms;
      Reference = Stats;
    } else if (Stats.Diameter != Reference.Diameter ||
               Stats.AverageDistance != Reference.AverageDistance) {
      std::printf("ERROR: parallel result diverged from serial!\n");
    }
    Table.addRow({std::to_string(Threads), formatDouble(Ms, 1),
                  formatDouble(BaselineMs / Ms, 2),
                  std::to_string(Stats.Diameter),
                  formatDouble(Stats.AverageDistance, 3)});
  }
  setGlobalThreadCount(0);
  std::printf("%s\n\n", Table.render().c_str());
}

bool bitEqualDouble(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

/// Pinned workload for the perf-smoke lane: at star(6) and star(7) -- the
/// latter the dense-diameter family instance (5040 nodes, diameter 9,
/// frontier covering >1/3 of the graph at mid-levels) -- the engines must
/// order hybrid >= push >= scalar on throughput, and all three must agree
/// on the diameter and bit for bit on the average distance (with the
/// vertex-transitivity shortcut as a fourth witness). The hybrid run must
/// also report pull work: a hybrid that never switches direction is a
/// misconfigured heuristic, not a faster engine.
///
/// Timing discipline: every timed run is uncounted (the counters for the
/// pull-work check come from one extra untimed run), and each engine
/// takes the best of three reps -- ctest runs this lane alongside other
/// tests, and a single descheduled rep must not fail the ordering check.
int runSmoke() {
  constexpr int Reps = 3;
  int Failures = 0;
  for (unsigned K : {6u, 7u}) {
    ExplicitScg Net(SuperCayleyGraph::star(K));
    Graph G = Net.toGraph();
    Csr C = Net.toCsr();
    DistanceStats Scalar, Push, Hybrid;
    double ScalarMs = 1e300, PushMs = 1e300, HybridMs = 1e300;
    for (int Rep = 0; Rep != Reps; ++Rep) {
      auto StartScalar = Clock::now();
      Scalar = scalarAllPairsStats(G);
      ScalarMs = std::min(ScalarMs, msSince(StartScalar));
      auto StartPush = Clock::now();
      Push = msAllPairsStats(C, {MsBfsEngine::Push, nullptr});
      PushMs = std::min(PushMs, msSince(StartPush));
      auto StartHybrid = Clock::now();
      Hybrid = msAllPairsStats(C, {MsBfsEngine::Hybrid, nullptr});
      HybridMs = std::min(HybridMs, msSince(StartHybrid));
    }
    MetricsRegistry Registry;
    msAllPairsStats(C, {MsBfsEngine::Hybrid, &Registry});
    DistanceStats Vt = vertexTransitiveStats(G);
    double NodesPerSec =
        HybridMs > 0.0 ? Net.numNodes() / (HybridMs / 1e3) : 0;

    bool Agree = Scalar.Connected && Push.Connected && Hybrid.Connected &&
                 Scalar.Diameter == Push.Diameter &&
                 Push.Diameter == Hybrid.Diameter &&
                 bitEqualDouble(Scalar.AverageDistance, Push.AverageDistance) &&
                 bitEqualDouble(Push.AverageDistance, Hybrid.AverageDistance);
    bool VtAgree = Vt.Diameter == Hybrid.Diameter;
    // The hybrid >= push ordering is only asserted once the sweep is big
    // enough to dominate the hybrid's fixed transpose/worklist setup. On
    // star(6) the whole workload is ~0.4 ms, the setup is a third of it,
    // and the ordering genuinely inverts (hybrid ~0.8x push on portable
    // builds) -- star(6) stays in the gate for the engine-agreement, VT,
    // and pull-work checks only. At star(7), the dense-diameter instance
    // the gate exists for, the margin is ISA-dependent: the pull pass
    // leans on POPCNT/wide OR-reduce, so tuned (-march=native) builds see
    // a stable ~1.5x hybrid win and assert the ordering strictly, while
    // portable baseline-ISA builds see hybrid ~= push (0.9-1.1x run to
    // run) and assert a deterministic 1.25x regression bound instead of a
    // coin-flip strict comparison.
#ifdef SCG_NATIVE_BUILD
    const double HybridBudgetMs = PushMs;
#else
    const double HybridBudgetMs = 1.25 * PushMs;
#endif
    bool Faster = PushMs <= ScalarMs && (K < 7 || HybridMs <= HybridBudgetMs);
    bool Pulled = counterValue(Registry, "distance.pull_levels") > 0 &&
                  counterValue(Registry, "distance.direction_switches") > 0;
    std::printf("star(%u): scalar %8.2f ms | push %8.2f ms | hybrid %8.2f ms "
                "(%.1fx vs push, %.0f sources/s) | diam %u avg %.6f | pull "
                "%.0f%% of words | %s%s%s%s\n",
                K, ScalarMs, PushMs, HybridMs, PushMs / HybridMs, NodesPerSec,
                Hybrid.Diameter, Hybrid.AverageDistance,
                100.0 * counterValue(Registry, "distance.pull_words") /
                    double(counterValue(Registry, "distance.pull_words") +
                           counterValue(Registry, "distance.push_words")),
                Agree ? "agree " : "ENGINE-MISMATCH ",
                VtAgree ? "vt-ok " : "VT-MISMATCH ",
                Faster ? "fast-ok " : "SLOWER-THAN-BASELINE ",
                Pulled ? "pull-ok" : "NEVER-PULLED");
    Failures += !Agree + !VtAgree + !Faster + !Pulled;
  }
  return Failures ? 1 : 0;
}

void BM_BuildExplicitStar7(benchmark::State &State) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(7);
  for (auto _ : State) {
    ExplicitScg Net(Star);
    benchmark::DoNotOptimize(Net.numNodes());
  }
}
BENCHMARK(BM_BuildExplicitStar7)->Unit(benchmark::kMillisecond);

void BM_DiameterMacroStar32(benchmark::State &State) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2);
  ExplicitScg Net(Ms);
  Graph G = Net.toGraph();
  for (auto _ : State)
    benchmark::DoNotOptimize(vertexTransitiveStats(G).Diameter);
}
BENCHMARK(BM_DiameterMacroStar32)->Unit(benchmark::kMillisecond);

void BM_AllPairsStatsStar7(benchmark::State &State) {
  // Arg = thread count for the global pool (the tentpole's hot kernel).
  static ExplicitScg Net(SuperCayleyGraph::star(7));
  static Graph G = Net.toGraph();
  setGlobalThreadCount(unsigned(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(allPairsStats(G).Diameter);
  setGlobalThreadCount(0);
}
BENCHMARK(BM_AllPairsStatsStar7)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_AllPairsPushVsHybridStar7(benchmark::State &State) {
  // Arg = engine (0 push, 1 hybrid), single thread: the algorithmic gap.
  static Csr C = ExplicitScg(SuperCayleyGraph::star(7)).toCsr();
  MsSweepOptions Opts;
  Opts.Engine = State.range(0) ? MsBfsEngine::Hybrid : MsBfsEngine::Push;
  setGlobalThreadCount(1);
  for (auto _ : State)
    benchmark::DoNotOptimize(msAllPairsStats(C, Opts).Diameter);
  setGlobalThreadCount(0);
}
BENCHMARK(BM_AllPairsPushVsHybridStar7)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  bool Json = false, Smoke = false, Threads = false;
  unsigned MaxK = 9;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;
    Threads |= std::strcmp(argv[I], "--threads") == 0;
    if (std::strcmp(argv[I], "--maxk") == 0) {
      const char *Arg = I + 1 != argc ? argv[++I] : nullptr;
      char *End = nullptr;
      long V = Arg ? std::strtol(Arg, &End, 10) : 0;
      if (!Arg || *End != '\0' || V < 6 || V > 12) {
        std::fprintf(stderr,
                     "error: --maxk requires an integer in [6, 12], got '%s'\n",
                     Arg ? Arg : "(nothing)");
        return 2;
      }
      MaxK = unsigned(V);
    }
  }
  if (Smoke) {
    setGlobalThreadCount(1);
    return runSmoke();
  }
  if (Json) {
    setGlobalThreadCount(1);
    printJson(distanceCurve(MaxK));
    return 0;
  }
  if (Threads) {
    printThreadScaling();
    return 0;
  }
  printInventory();
  printThreadScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
