//===- bench/bench_network_properties.cpp - Experiments E13 / E22 --------===//
//
// Reproduces the Section 2 network inventory: every super Cayley graph
// class (plus the classic comparison networks) with its size, degree,
// diameter, and average internodal distance. The paper quotes "optimal
// diameters (given their node degree) and small node degrees"; the table
// makes the degree/diameter trade-off concrete.
//
// Also reports the parallel execution engine's scaling: allPairsStats on
// the largest inventory graph (star(7), 5040 nodes) timed serially and at
// 2/4/8 threads, with the byte-identity of the results asserted.
//
// Modes (consistent with bench_kernels / bench_pipelining):
//   (default)  inventory table + scaling + google-benchmark timings
//   --json     machine-readable distance-engine curve on stdout: scalar
//              vs bit-parallel MS-BFS all-pairs at k = 6/7/8 plus the
//              MS-BFS-only k = 9 point. Regenerates the committed
//              BENCH_distance.json (the k >= 8 points take minutes of
//              single-thread time; that is the point of the curve).
//   --smoke    bounded pinned workload (star 6/7), non-zero exit unless
//              MS-BFS throughput >= scalar AND both engines agree on
//              diameter / average distance bit for bit; wired into ctest
//              under the perf-smoke label.
//
// --json and --smoke force a single thread so numbers are comparable
// across machines and unaffected by the pool size.
//
//===----------------------------------------------------------------------===//

#include "graph/Metrics.h"
#include "graph/MsBfs.h"
#include "networks/Clusters.h"
#include "networks/Explicit.h"
#include "perm/GroupOrder.h"
#include "support/BatchRunner.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

using namespace scg;

namespace {

std::vector<std::string> networkRow(const SuperCayleyGraph &Scg) {
  ExplicitScg Net(Scg);
  DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
  // Connectivity certificate (Schreier-Sims) and modular structure.
  std::vector<Permutation> Actions;
  for (const Generator &G : Scg.generators())
    Actions.push_back(G.Sigma);
  std::string Clusters = "-";
  if (Scg.numBoxes() >= 2) {
    ClusterStructure C(Net);
    Clusters = std::to_string(C.numClusters()) + "x" +
               std::to_string(C.clusterSize());
  }
  return {Scg.name(), std::to_string(Scg.numSymbols()),
          std::to_string(Scg.numNodes()),
          std::to_string(Scg.degree()),
          Scg.isUndirected() ? "no" : "yes",
          std::to_string(Stats.Diameter),
          formatDouble(Stats.AverageDistance, 3),
          generatesSymmetricGroup(Actions) ? "yes" : "NO", Clusters};
}

void printInventory() {
  std::printf("E13: network properties of the super Cayley graph classes "
              "(Section 2)\n\n");
  TextTable Table;
  Table.setHeader({"network", "k", "nodes", "degree", "directed", "diameter",
                   "avg dist", "S_k cert", "clusters"});

  // Every inventory row is independent; build them as a parallel batch and
  // print in submission order.
  BatchRunner<std::vector<std::string>> Rows;
  auto Queue = [&](SuperCayleyGraph Scg) {
    Rows.add([Scg = std::move(Scg)] { return networkRow(Scg); });
  };
  for (unsigned K : {5u, 6u, 7u}) {
    Queue(SuperCayleyGraph::star(K));
    Queue(SuperCayleyGraph::bubbleSort(K));
    Queue(SuperCayleyGraph::transpositionNetwork(K));
    Queue(SuperCayleyGraph::insertionSelection(K));
  }
  for (auto [L, N] : {std::pair{2u, 2u}, {3u, 2u}, {2u, 3u}, {4u, 2u}}) {
    for (NetworkKind Kind :
         {NetworkKind::MacroStar, NetworkKind::RotationStar,
          NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
          NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
          NetworkKind::MacroIS, NetworkKind::RotationIS,
          NetworkKind::CompleteRotationIS})
      if (L * N + 1 <= 9)
        Queue(SuperCayleyGraph::create(Kind, L, N));
  }
  for (std::vector<std::string> &Row : Rows.run())
    Table.addRow(std::move(Row));
  std::printf("%s\n", Table.render().c_str());
  std::printf("note: the paper's headline trade-off is visible in the "
              "degree column: MS/RS/complete-RS reach star-graph-like "
              "diameters with ~n + l links instead of k - 1.\n\n");
}

void printParallelScaling() {
  std::printf("parallel engine: allPairsStats on star(7) (5040 nodes, one "
              "BFS per node) at 1/2/4/8 threads\n");
  std::printf("(hardware concurrency here: %u; SCG_THREADS overrides)\n\n",
              defaultThreadCount());
  ExplicitScg Net(SuperCayleyGraph::star(7));
  Graph G = Net.toGraph();

  TextTable Table;
  Table.setHeader({"threads", "wall ms", "speedup", "diameter", "avg dist"});
  double BaselineMs = 0.0;
  DistanceStats Reference;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    setGlobalThreadCount(Threads);
    auto Start = std::chrono::steady_clock::now();
    DistanceStats Stats = allPairsStats(G);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    benchmark::DoNotOptimize(Stats);
    if (Threads == 1) {
      BaselineMs = Ms;
      Reference = Stats;
    } else if (Stats.Diameter != Reference.Diameter ||
               Stats.AverageDistance != Reference.AverageDistance) {
      std::printf("ERROR: parallel result diverged from serial!\n");
    }
    Table.addRow({std::to_string(Threads), formatDouble(Ms, 1),
                  formatDouble(BaselineMs / Ms, 2),
                  std::to_string(Stats.Diameter),
                  formatDouble(Stats.AverageDistance, 3)});
  }
  setGlobalThreadCount(0);
  std::printf("%s\n\n", Table.render().c_str());
}

//===----------------------------------------------------------------------===//
// E22: the distance-engine speedup curve (scalar vs bit-parallel MS-BFS).
//===----------------------------------------------------------------------===//

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

struct Measurement {
  std::string Name;
  double Ms;
  uint64_t Check; ///< diameter of the swept graph, pinning correctness.
};

/// Scalar all-pairs (one BFS per source) on star(k).
Measurement scalarSweep(unsigned K) {
  Graph G = ExplicitScg(SuperCayleyGraph::star(K)).toGraph();
  auto Start = Clock::now();
  DistanceStats S = scalarAllPairsStats(G);
  return {"all_pairs_scalar_star" + std::to_string(K), msSince(Start),
          S.Diameter};
}

/// Bit-parallel MS-BFS all-pairs (64 sources per word) on star(k), fed
/// straight from the Next table (no Graph intermediary).
Measurement msbfsSweep(unsigned K) {
  Csr C = ExplicitScg(SuperCayleyGraph::star(K)).toCsr();
  auto Start = Clock::now();
  DistanceStats S = msAllPairsStats(C);
  return {"all_pairs_msbfs_star" + std::to_string(K), msSince(Start),
          S.Diameter};
}

/// The committed BENCH_distance.json curve: both engines at k = 6/7/8,
/// MS-BFS alone at k = 9 (the scalar engine needs ~half an hour there,
/// which is precisely the regime the bit-parallel engine opens up).
std::vector<Measurement> distanceCurve() {
  std::vector<Measurement> Ms;
  for (unsigned K : {6u, 7u, 8u}) {
    Ms.push_back(scalarSweep(K));
    Ms.push_back(msbfsSweep(K));
  }
  Ms.push_back(msbfsSweep(9));
  return Ms;
}

void printJson(const std::vector<Measurement> &Ms) {
  std::printf("{\n");
  for (size_t I = 0; I != Ms.size(); ++I)
    std::printf("  \"%s\": {\"ms\": %.2f, \"check\": %llu}%s\n",
                Ms[I].Name.c_str(), Ms[I].Ms,
                (unsigned long long)Ms[I].Check,
                I + 1 == Ms.size() ? "" : ",");
  std::printf("}\n");
}

bool bitEqualDouble(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

/// Pinned workload for the perf-smoke lane: at star(6) and star(7), the
/// bit-parallel engine must (a) be at least as fast as the scalar engine
/// and (b) agree with it -- and with the vertex-transitivity shortcut --
/// on the diameter, and bit for bit on the average distance.
int runSmoke() {
  int Failures = 0;
  for (unsigned K : {6u, 7u}) {
    ExplicitScg Net(SuperCayleyGraph::star(K));
    Graph G = Net.toGraph();
    auto StartScalar = Clock::now();
    DistanceStats Scalar = scalarAllPairsStats(G);
    double ScalarMs = msSince(StartScalar);
    auto StartMs = Clock::now();
    DistanceStats MsBfs = msAllPairsStats(Net.toCsr());
    double MsbfsMs = msSince(StartMs);
    DistanceStats Vt = vertexTransitiveStats(G);
    double NodesPerSec = MsbfsMs > 0.0 ? Net.numNodes() / (MsbfsMs / 1e3) : 0;

    bool Agree = Scalar.Connected && MsBfs.Connected &&
                 Scalar.Diameter == MsBfs.Diameter &&
                 bitEqualDouble(Scalar.AverageDistance, MsBfs.AverageDistance);
    bool VtAgree = Vt.Diameter == MsBfs.Diameter;
    bool Faster = MsbfsMs <= ScalarMs;
    std::printf("star(%u): scalar %8.2f ms | msbfs %8.2f ms (%.1fx, %.0f "
                "sources/s) | diam %u avg %.6f %s%s%s\n",
                K, ScalarMs, MsbfsMs, ScalarMs / MsbfsMs, NodesPerSec,
                MsBfs.Diameter, MsBfs.AverageDistance,
                Agree ? "agree " : "ENGINE-MISMATCH ",
                VtAgree ? "vt-ok " : "VT-MISMATCH ",
                Faster ? "fast-ok" : "SLOWER-THAN-SCALAR");
    Failures += !Agree + !VtAgree + !Faster;
  }
  return Failures ? 1 : 0;
}

void BM_BuildExplicitStar7(benchmark::State &State) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(7);
  for (auto _ : State) {
    ExplicitScg Net(Star);
    benchmark::DoNotOptimize(Net.numNodes());
  }
}
BENCHMARK(BM_BuildExplicitStar7)->Unit(benchmark::kMillisecond);

void BM_DiameterMacroStar32(benchmark::State &State) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2);
  ExplicitScg Net(Ms);
  Graph G = Net.toGraph();
  for (auto _ : State)
    benchmark::DoNotOptimize(vertexTransitiveStats(G).Diameter);
}
BENCHMARK(BM_DiameterMacroStar32)->Unit(benchmark::kMillisecond);

void BM_AllPairsStatsStar7(benchmark::State &State) {
  // Arg = thread count for the global pool (the tentpole's hot kernel).
  static ExplicitScg Net(SuperCayleyGraph::star(7));
  static Graph G = Net.toGraph();
  setGlobalThreadCount(unsigned(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(allPairsStats(G).Diameter);
  setGlobalThreadCount(0);
}
BENCHMARK(BM_AllPairsStatsStar7)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  bool Json = false, Smoke = false;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;
  }
  if (Smoke) {
    setGlobalThreadCount(1);
    return runSmoke();
  }
  if (Json) {
    setGlobalThreadCount(1);
    printJson(distanceCurve());
    return 0;
  }
  printInventory();
  printParallelScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
