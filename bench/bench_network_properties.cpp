//===- bench/bench_network_properties.cpp - Experiment E13 ---------------===//
//
// Reproduces the Section 2 network inventory: every super Cayley graph
// class (plus the classic comparison networks) with its size, degree,
// diameter, and average internodal distance. The paper quotes "optimal
// diameters (given their node degree) and small node degrees"; the table
// makes the degree/diameter trade-off concrete.
//
//===----------------------------------------------------------------------===//

#include "graph/Metrics.h"
#include "networks/Clusters.h"
#include "networks/Explicit.h"
#include "perm/GroupOrder.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

void addNetworkRow(TextTable &Table, const SuperCayleyGraph &Scg) {
  ExplicitScg Net(Scg);
  DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
  // Connectivity certificate (Schreier-Sims) and modular structure.
  std::vector<Permutation> Actions;
  for (const Generator &G : Scg.generators())
    Actions.push_back(G.Sigma);
  std::string Clusters = "-";
  if (Scg.numBoxes() >= 2) {
    ClusterStructure C(Net);
    Clusters = std::to_string(C.numClusters()) + "x" +
               std::to_string(C.clusterSize());
  }
  Table.addRow({Scg.name(), std::to_string(Scg.numSymbols()),
                std::to_string(Scg.numNodes()),
                std::to_string(Scg.degree()),
                Scg.isUndirected() ? "no" : "yes",
                std::to_string(Stats.Diameter),
                formatDouble(Stats.AverageDistance, 3),
                generatesSymmetricGroup(Actions) ? "yes" : "NO", Clusters});
}

void printInventory() {
  std::printf("E13: network properties of the super Cayley graph classes "
              "(Section 2)\n\n");
  TextTable Table;
  Table.setHeader({"network", "k", "nodes", "degree", "directed", "diameter",
                   "avg dist", "S_k cert", "clusters"});

  for (unsigned K : {5u, 6u, 7u}) {
    addNetworkRow(Table, SuperCayleyGraph::star(K));
    addNetworkRow(Table, SuperCayleyGraph::bubbleSort(K));
    addNetworkRow(Table, SuperCayleyGraph::transpositionNetwork(K));
    addNetworkRow(Table, SuperCayleyGraph::insertionSelection(K));
  }
  for (auto [L, N] : {std::pair{2u, 2u}, {3u, 2u}, {2u, 3u}, {4u, 2u}}) {
    for (NetworkKind Kind :
         {NetworkKind::MacroStar, NetworkKind::RotationStar,
          NetworkKind::CompleteRotationStar, NetworkKind::MacroRotator,
          NetworkKind::RotationRotator, NetworkKind::CompleteRotationRotator,
          NetworkKind::MacroIS, NetworkKind::RotationIS,
          NetworkKind::CompleteRotationIS})
      if (L * N + 1 <= 9)
        addNetworkRow(Table, SuperCayleyGraph::create(Kind, L, N));
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("note: the paper's headline trade-off is visible in the "
              "degree column: MS/RS/complete-RS reach star-graph-like "
              "diameters with ~n + l links instead of k - 1.\n\n");
}

void BM_BuildExplicitStar7(benchmark::State &State) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(7);
  for (auto _ : State) {
    ExplicitScg Net(Star);
    benchmark::DoNotOptimize(Net.numNodes());
  }
}
BENCHMARK(BM_BuildExplicitStar7)->Unit(benchmark::kMillisecond);

void BM_DiameterMacroStar32(benchmark::State &State) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2);
  ExplicitScg Net(Ms);
  Graph G = Net.toGraph();
  for (auto _ : State)
    benchmark::DoNotOptimize(vertexTransitiveStats(G).Diameter);
}
BENCHMARK(BM_DiameterMacroStar32)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printInventory();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
