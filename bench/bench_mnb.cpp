//===- bench/bench_mnb.cpp - Experiment E6 (Corollary 2) -----------------===//
//
// Reproduces Corollary 2: multinode broadcast under the all-port model.
// The claim is asymptotic optimality against the degree (receive-bound)
// lower bound: Theta(N loglogN/logN) on the IS network (degree ~ k) and
// Theta(N sqrt(loglogN/logN)) on the MS family (degree ~ n + l). The
// table reports simulated completion vs ceil((N-1)/degree): a bounded
// ratio across sizes is the reproduced result (DESIGN.md substitution 1
// replaces the strictly optimal schedules of [15]/[8] with spanning-tree
// pipelining).
//
//===----------------------------------------------------------------------===//

#include "comm/Mnb.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

void addRow(TextTable &Table, const SuperCayleyGraph &Scg) {
  ExplicitScg Net(Scg);
  BroadcastTree Tree(Net);
  MnbResult R = simulateMnb(Net, Tree);
  Table.addRow({Scg.name(), std::to_string(Net.numNodes()),
                std::to_string(Scg.degree()), std::to_string(R.Steps),
                std::to_string(R.LowerBound), formatDouble(R.Ratio, 2),
                formatDouble(100.0 * R.LinkUtilization, 1) + "%"});
}

void printMnbTable() {
  std::printf("E6: multinode broadcast, all-port model (Corollary 2)\n\n");
  TextTable Table;
  Table.setHeader({"network", "N", "degree", "steps", "lower bd", "ratio",
                   "util"});
  for (unsigned K : {5u, 6u, 7u}) {
    addRow(Table, SuperCayleyGraph::star(K));
    addRow(Table, SuperCayleyGraph::insertionSelection(K));
  }
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 3));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2));
  addRow(Table,
         SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 3, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, 3, 2));
  addRow(Table,
         SuperCayleyGraph::create(NetworkKind::CompleteRotationIS, 2, 3));
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: every class completes within a small constant "
              "of its degree lower bound, so the lower-degree MS family "
              "pays exactly the degree factor the Theta bounds predict -- "
              "who wins and by what factor matches Corollary 2.\n\n");

  // Section 3: SDC-model MNB ([15] achieves the k!-1 receive bound on the
  // star; the tree-based schedule lands within a small constant of N-1).
  std::printf("E6b: multinode broadcast, single-dimension model "
              "(Section 3 / [15])\n\n");
  TextTable Sdc;
  Sdc.setHeader({"network", "N", "steps", "N-1 bound", "ratio"});
  for (unsigned K : {5u, 6u}) {
    for (auto Scg : {SuperCayleyGraph::star(K),
                     SuperCayleyGraph::insertionSelection(K)}) {
      ExplicitScg Net(Scg);
      BroadcastTree Tree(Net);
      MnbResult R = simulateMnbSdc(Net, Tree);
      Sdc.addRow({Scg.name(), std::to_string(Net.numNodes()),
                  std::to_string(R.Steps), std::to_string(R.LowerBound),
                  formatDouble(R.Ratio, 2)});
    }
  }
  for (auto Scg :
       {SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2),
        SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2),
        SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 3, 2)}) {
    ExplicitScg Net(Scg);
    BroadcastTree Tree(Net);
    MnbResult R = simulateMnbSdc(Net, Tree);
    Sdc.addRow({Scg.name(), std::to_string(Net.numNodes()),
                std::to_string(R.Steps), std::to_string(R.LowerBound),
                formatDouble(R.Ratio, 2)});
  }
  std::printf("%s\n", Sdc.render().c_str());

  // Ablation: one tree vs degree-many rotated trees (the multi-tree idea
  // of [8]); striping flattens per-link load and improves the ratio.
  std::printf("E6c: single-tree vs striped multi-tree MNB (all-port)\n\n");
  TextTable Striped;
  Striped.setHeader({"network", "N", "1-tree ratio", "striped ratio",
                     "trees"});
  for (auto Scg :
       {SuperCayleyGraph::star(6), SuperCayleyGraph::insertionSelection(6),
        SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2),
        SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 3, 2)}) {
    ExplicitScg Net(Scg);
    BroadcastTree Single(Net);
    MnbResult One = simulateMnb(Net, Single);
    std::vector<BroadcastTree> Trees;
    for (unsigned T = 0; T != Scg.degree(); ++T)
      Trees.emplace_back(Net, T);
    MnbResult Many = simulateMnbStriped(Net, Trees);
    Striped.addRow({Scg.name(), std::to_string(Net.numNodes()),
                    formatDouble(One.Ratio, 2), formatDouble(Many.Ratio, 2),
                    std::to_string(Trees.size())});
  }
  std::printf("%s\n", Striped.render().c_str());
}

void BM_MnbStar(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(State.range(0)));
  BroadcastTree Tree(Net);
  for (auto _ : State)
    benchmark::DoNotOptimize(simulateMnb(Net, Tree).Steps);
}
BENCHMARK(BM_MnbStar)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_BroadcastTreeStar7(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(7));
  for (auto _ : State) {
    BroadcastTree Tree(Net);
    benchmark::DoNotOptimize(Tree.height());
  }
}
BENCHMARK(BM_BroadcastTreeStar7)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printMnbTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
