//===- bench/bench_faults.cpp - Experiment E26 ---------------------------===//
//
// Monte Carlo reliability campaigns: random link/node fault sets at a
// ladder of fault rates on every network class, measuring connectivity
// survival, pairwise reachability, diameter inflation, and the adaptive
// container router's delivery rate and failover overhead
// (routing/FaultCampaign.h). This is the quantitative form of the paper's
// "fault-tolerant robust network" motivation [12]: the classes hold a
// reliability plateau far past the single-fault guarantee, and the k-1
// disjoint-path containers keep delivering while the fault rate is well
// below saturation. Also demos the graph-free generator-based star
// container at k = 12 (479M nodes, never materialized).
//
// Modes (consistent with the other bench harnesses):
//   (default)  human-readable curve tables + google-benchmark timings
//   --json     the full campaign document (committed as BENCH_faults.json)
//   --smoke    bounded run with invariants checked: thread-count
//              determinism, coupled-sampling monotonicity, exact zero-rate
//              point, container validity vs the max-flow oracle, and the
//              generator-vs-max-flow construction perf gate; non-zero exit
//              on any violation (ctest: perf-smoke).
//
//===----------------------------------------------------------------------===//

#include "graph/Containers.h"
#include "routing/FaultCampaign.h"
#include "routing/StarRouter.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace scg;

namespace {

FaultCampaignOptions campaignOptions(unsigned Trials) {
  FaultCampaignOptions Opts;
  Opts.Rates = {0.01, 0.02, 0.05, 0.10, 0.20, 0.40};
  Opts.Trials = Trials;
  Opts.Seed = 2026;
  Opts.RouterPairs = 8;
  return Opts;
}

/// The campaign set: the classic families plus the two-level classes at
/// (l, n) = (2, 2), all 120 nodes, and star(6) at 720 for scale.
std::vector<std::pair<SuperCayleyGraph, unsigned>> fullSet() {
  std::vector<std::pair<SuperCayleyGraph, unsigned>> Set;
  for (SuperCayleyGraph Scg :
       {SuperCayleyGraph::star(5), SuperCayleyGraph::bubbleSort(5),
        SuperCayleyGraph::transpositionNetwork(5),
        SuperCayleyGraph::insertionSelection(5), SuperCayleyGraph::rotator(5),
        SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2),
        SuperCayleyGraph::create(NetworkKind::RotationStar, 2, 2),
        SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 2, 2),
        SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2),
        SuperCayleyGraph::create(NetworkKind::RotationIS, 2, 2)})
    Set.push_back({Scg, 300});
  Set.push_back({SuperCayleyGraph::star(6), 120});
  return Set;
}

void writeCampaign(JsonWriter &W, const FaultCampaignResult &Result) {
  W.beginObject()
      .field("nodes", Result.Nodes)
      .field("components", Result.Components)
      .field("fault_free_diameter", Result.FaultFreeDiameter)
      .key("container")
      .beginObject()
      .field("mean_width", Result.MeanContainerWidth, 4)
      .field("star_generator", Result.StarGeneratorContainers)
      .field("max_flow", Result.MaxFlowContainers)
      .endObject()
      .key("curve")
      .beginArray();
  for (const FaultRatePoint &P : Result.Points) {
    W.beginObject()
        .field("rate", P.Rate, 4)
        .field("trials", P.Trials)
        .field("mean_faults", P.MeanFaultsInjected, 4)
        .field("connected_fraction", P.ConnectedFraction, 6)
        .field("mean_reachability", P.MeanReachability, 6)
        .field("mean_diameter_inflation", P.MeanDiameterInflation, 6)
        .field("worst_diameter", P.WorstDiameter)
        .field("routes_attempted", P.RoutesAttempted)
        .field("delivery_fraction", P.DeliveryFraction, 6)
        .field("mean_hop_overhead", P.MeanHopOverhead, 6)
        .field("mean_paths_tried", P.MeanPathsTried, 6)
        .endObject();
  }
  W.endArray().endObject();
}

void printCurveTable(const FaultCampaignResult &Result) {
  std::printf("%s: N=%llu, %llu faultable components, fault-free diameter "
              "%u, container width %.1f (%llu generator / %llu max-flow)\n",
              Result.Network.c_str(), (unsigned long long)Result.Nodes,
              (unsigned long long)Result.Components, Result.FaultFreeDiameter,
              Result.MeanContainerWidth,
              (unsigned long long)Result.StarGeneratorContainers,
              (unsigned long long)Result.MaxFlowContainers);
  TextTable Table;
  Table.setHeader({"rate", "faults", "connected", "reach", "diam infl",
                   "worst", "delivered", "hop ovhd", "paths tried"});
  for (const FaultRatePoint &P : Result.Points)
    Table.addRow({formatDouble(P.Rate, 2), formatDouble(P.MeanFaultsInjected, 1),
                  formatDouble(P.ConnectedFraction, 3),
                  formatDouble(P.MeanReachability, 4),
                  formatDouble(P.MeanDiameterInflation, 3),
                  std::to_string(P.WorstDiameter),
                  formatDouble(P.DeliveryFraction, 3),
                  formatDouble(P.MeanHopOverhead, 2),
                  formatDouble(P.MeanPathsTried, 2)});
  std::printf("%s\n", Table.render().c_str());
}

void graphFreeDemo(JsonWriter *W) {
  // star(12): 479,001,600 nodes. The generator construction never touches
  // a graph, so the full 11-wide container is immediate.
  Permutation Src = Permutation::identity(12);
  std::vector<uint8_t> Word;
  for (unsigned I = 12; I != 0; --I)
    Word.push_back(uint8_t(I - 1));
  Permutation Dst = Permutation::fromOneLine(std::move(Word));
  auto Start = std::chrono::steady_clock::now();
  StarContainer Container = buildStarContainer(Src, Dst);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  size_t Shortest = Container.Paths.front().size() - 1;
  size_t Longest = Container.Paths.back().size() - 1;
  if (W) {
    // No timing fields in the JSON: the committed document must be
    // deterministic.
    W->key("graph_free_container")
        .beginObject()
        .field("k", 12)
        .field("nodes", uint64_t(479001600))
        .field("complete", Container.Complete)
        .field("width", uint64_t(Container.Paths.size()))
        .field("distance", starDistance(Src, Dst))
        .field("shortest_path", uint64_t(Shortest))
        .field("longest_path", uint64_t(Longest))
        .endObject();
  } else {
    std::printf("graph-free container, star(12) identity -> reversal: "
                "width %zu (complete=%d), paths %zu..%zu hops vs distance "
                "%u, built in %.3f ms without materializing 479M nodes\n\n",
                Container.Paths.size(), int(Container.Complete), Shortest,
                Longest, starDistance(Src, Dst), Ms);
  }
}

void printTables() {
  std::printf("E26: Monte Carlo fault campaigns (coupled sampling, link "
              "faults; adaptive container routing over 8 sampled pairs)\n\n");
  for (const auto &[Scg, Trials] : fullSet())
    printCurveTable(runFaultCampaign(ExplicitScg(Scg),
                                     campaignOptions(Trials)));
  std::printf("node-fault campaign, star(5):\n");
  FaultCampaignOptions NodeOpts = campaignOptions(300);
  NodeOpts.NodeFaults = true;
  printCurveTable(runFaultCampaign(ExplicitScg(SuperCayleyGraph::star(5)),
                                   NodeOpts));
  graphFreeDemo(nullptr);
  std::printf("shape check: reliability plateaus near 1.0 far past the "
              "single-fault regime, reachability degrades smoothly, and "
              "the container router keeps delivery near the reliability "
              "curve with a hop overhead of a few hops -- the operational "
              "content of the fault-tolerance claim.\n\n");
}

void printJson() {
  JsonWriter W;
  W.beginObject().key("link_fault_campaigns").beginObject();
  for (const auto &[Scg, Trials] : fullSet()) {
    FaultCampaignResult Result =
        runFaultCampaign(ExplicitScg(Scg), campaignOptions(Trials));
    W.key(Result.Network);
    writeCampaign(W, Result);
  }
  W.endObject().key("node_fault_campaigns").beginObject();
  FaultCampaignOptions NodeOpts = campaignOptions(300);
  NodeOpts.NodeFaults = true;
  FaultCampaignResult NodeResult =
      runFaultCampaign(ExplicitScg(SuperCayleyGraph::star(5)), NodeOpts);
  W.key(NodeResult.Network);
  writeCampaign(W, NodeResult);
  W.endObject();
  graphFreeDemo(&W);
  W.endObject();
  std::fputs(W.str().c_str(), stdout);
}

bool pointsEqual(const FaultRatePoint &A, const FaultRatePoint &B) {
  return A.Rate == B.Rate && A.MeanFaultsInjected == B.MeanFaultsInjected &&
         A.ConnectedFraction == B.ConnectedFraction &&
         A.MeanReachability == B.MeanReachability &&
         A.MeanDiameterInflation == B.MeanDiameterInflation &&
         A.WorstDiameter == B.WorstDiameter &&
         A.RoutesAttempted == B.RoutesAttempted &&
         A.RoutesDelivered == B.RoutesDelivered &&
         A.MeanHopOverhead == B.MeanHopOverhead &&
         A.MeanPathsTried == B.MeanPathsTried;
}

int runSmoke() {
  int Failures = 0;

  // 1. Thread-count determinism: the campaign is byte-identical serial vs
  //    two threads.
  ExplicitScg Star5(SuperCayleyGraph::star(5));
  FaultCampaignOptions Opts = campaignOptions(64);
  Opts.Rates = {0.0, 0.05, 0.20};
  setGlobalThreadCount(1);
  FaultCampaignResult Serial = runFaultCampaign(Star5, Opts);
  setGlobalThreadCount(2);
  FaultCampaignResult Parallel = runFaultCampaign(Star5, Opts);
  setGlobalThreadCount(1);
  bool DetOk = Serial.Points.size() == Parallel.Points.size();
  for (size_t P = 0; DetOk && P != Serial.Points.size(); ++P)
    DetOk = pointsEqual(Serial.Points[P], Parallel.Points[P]);
  std::printf("determinism 1 vs 2 threads: %s\n",
              DetOk ? "det-ok" : "THREAD-DIVERGENCE");
  Failures += !DetOk;

  // 2. Exact zero-rate point and coupled monotone curves.
  const FaultRatePoint &Clean = Serial.Points.front();
  bool CleanOk = Clean.ConnectedFraction == 1.0 &&
                 Clean.MeanReachability == 1.0 &&
                 Clean.DeliveryFraction == 1.0 && Clean.MeanHopOverhead == 0.0;
  bool MonoOk = true;
  for (size_t P = 0; P + 1 < Serial.Points.size(); ++P) {
    const FaultRatePoint &Lo = Serial.Points[P], &Hi = Serial.Points[P + 1];
    MonoOk = MonoOk && Lo.ConnectedFraction >= Hi.ConnectedFraction &&
             Lo.MeanReachability >= Hi.MeanReachability &&
             Lo.RoutesDelivered >= Hi.RoutesDelivered;
  }
  std::printf("zero-rate point: %s, coupled monotonicity: %s\n",
              CleanOk ? "clean-ok" : "ZERO-RATE-BROKEN",
              MonoOk ? "monotone-ok" : "NON-MONOTONE-CURVE");
  Failures += !CleanOk + !MonoOk;

  // 3. Generator containers vs the max-flow oracle on sampled star(5)
  //    pairs: same width (= k-1 = local connectivity), valid and disjoint.
  FaultRouter Router(Star5);
  const Graph &G = Router.graph();
  bool ContainerOk = true;
  for (NodeId Dst : {NodeId(1), NodeId(37), NodeId(59), NodeId(119)}) {
    PathContainer C = Router.buildContainer(0, Dst);
    ContainerOk = ContainerOk &&
                  C.Construction == PathContainer::Method::StarGenerator &&
                  C.width() == 4 && internallyNodeDisjoint(C.Paths) &&
                  C.width() == localConnectivity(G, 0, Dst);
    for (const std::vector<NodeId> &Path : C.Paths)
      ContainerOk = ContainerOk && isSimplePath(G, Path);
  }
  std::printf("generator containers vs max-flow oracle: %s\n",
              ContainerOk ? "container-ok" : "CONTAINER-INVALID");
  Failures += !ContainerOk;

  // 4. Perf gate: the graph-free generator construction must beat the
  //    explicit max-flow construction on star(6) pairs (best of 5) -- the
  //    point of having it -- and stay under a generous absolute bound.
  ExplicitScg Star6(SuperCayleyGraph::star(6));
  Graph G6 = Star6.toGraph();
  NodeId Far = Star6.numNodes() - 1;
  double GenBest = 1e9, FlowBest = 1e9;
  bool WidthOk = true;
  for (int Rep = 0; Rep != 5; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    StarContainer SC = buildStarContainer(Star6.label(0), Star6.label(Far));
    auto T1 = std::chrono::steady_clock::now();
    std::vector<std::vector<NodeId>> MF = nodeDisjointPaths(G6, 0, Far);
    auto T2 = std::chrono::steady_clock::now();
    WidthOk = WidthOk && SC.Complete && SC.Paths.size() == MF.size();
    GenBest = std::min(
        GenBest, std::chrono::duration<double, std::milli>(T1 - T0).count());
    FlowBest = std::min(
        FlowBest, std::chrono::duration<double, std::milli>(T2 - T1).count());
  }
  bool PerfOk = GenBest <= FlowBest && GenBest < 250.0;
  std::printf("star(6) container build: generator %.3f ms vs max-flow "
              "%.3f ms (best of 5), width agreement %s: %s\n",
              GenBest, FlowBest, WidthOk ? "ok" : "MISMATCH",
              PerfOk ? "perf-ok" : "GENERATOR-SLOWER");
  Failures += !PerfOk + !WidthOk;

  return Failures ? 1 : 0;
}

void BM_StarContainerK12(benchmark::State &State) {
  Permutation Src = Permutation::identity(12);
  std::vector<uint8_t> Word;
  for (unsigned I = 12; I != 0; --I)
    Word.push_back(uint8_t(I - 1));
  Permutation Dst = Permutation::fromOneLine(std::move(Word));
  for (auto _ : State)
    benchmark::DoNotOptimize(buildStarContainer(Src, Dst).Paths.size());
}
BENCHMARK(BM_StarContainerK12)->Unit(benchmark::kMicrosecond);

void BM_CampaignStar4(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(4));
  FaultCampaignOptions Opts = campaignOptions(64);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runFaultCampaign(Net, Opts).Points.back().MeanReachability);
}
BENCHMARK(BM_CampaignStar4)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  bool Json = false, Smoke = false;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;
  }
  if (Smoke) {
    setGlobalThreadCount(1);
    return runSmoke();
  }
  if (Json) {
    setGlobalThreadCount(1);
    printJson();
    return 0;
  }
  printTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
