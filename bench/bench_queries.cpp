//===- bench/bench_queries.cpp - Query-serving throughput ----------------===//
//
// Experiment E25: routing-as-a-service throughput. The QueryEngine answers
// route and distance queries from the permutation labels alone -- no
// materialized graph -- so the measurements sweep the serving grid the
// subsystem exists for: {1, 2, 4, 8} threads x {cold, warm} segment cache
// x {table-backed, table-free} engines on star(8), plus the table-free
// scaling story at k = 10 and k = 12, where the graph (3.6M and 479M
// nodes) never exists in memory. BENCH_queries.json in the repo root
// records the committed snapshot.
//
// Modes:
//   (default)  human-readable table of all measurements
//   --json     machine-readable one-object JSON on stdout (for
//              BENCH_queries.json)
//   --smoke    bounded sizes + invariant gates, non-zero exit on failure;
//              wired into ctest under the perf-smoke and query labels:
//                * replies differentially pinned against ExplicitScg BFS
//                  distances at k = 7 (table-backed and table-free),
//                * warm-cache throughput >= cold-cache throughput,
//                * table-backed distance throughput >= table-free,
//                * batched parallel replies identical to serial ones.
//
// Thread counts are set explicitly per grid cell (the pool is rebuilt), so
// the same binary measures serial and parallel serving; every other bench
// convention (deterministic workloads, checksum columns) applies. On a
// single-core host the thread rows measure determinism and contention, not
// speedup.
//
//===----------------------------------------------------------------------===//

#include "query/QueryEngine.h"

#include "networks/Explicit.h"
#include "perm/Lehmer.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace scg;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// A deterministic uniform pair workload over S_k.
std::vector<PairQuery> makePairs(unsigned K, size_t Count, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  uint64_t N = factorial(K);
  std::vector<PairQuery> Queries;
  Queries.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Queries.push_back({unrankPermutation(Rng.nextBelow(N), K),
                       unrankPermutation(Rng.nextBelow(N), K)});
  return Queries;
}

struct RunResult {
  double Ms = 0.0;
  uint64_t Check = 0; ///< sum of route lengths / distances (deterministic).
};

RunResult timeRoutes(const QueryEngine &Engine,
                     const std::vector<PairQuery> &Queries) {
  auto Start = Clock::now();
  std::vector<RouteReply> Replies = Engine.routeBatch(Queries);
  RunResult R;
  R.Ms = msSince(Start);
  for (const RouteReply &Reply : Replies)
    R.Check += Reply.length();
  return R;
}

RunResult timeDistances(const QueryEngine &Engine,
                        const std::vector<PairQuery> &Queries) {
  auto Start = Clock::now();
  std::vector<DistanceReply> Replies = Engine.distanceBatch(Queries);
  RunResult R;
  R.Ms = msSince(Start);
  for (const DistanceReply &Reply : Replies)
    R.Check += Reply.Distance;
  return R;
}

double qps(size_t Queries, double Ms) {
  return Ms > 0.0 ? double(Queries) * 1000.0 / Ms : 0.0;
}

/// One cell of the serving grid.
struct GridCell {
  unsigned Threads;
  bool Tabled;
  bool Warm;
  double Ms;
  double Qps;
  uint64_t Check;
};

/// Sweeps {threads} x {cold, warm} for one engine configuration. Cold runs
/// start from a cleared cache; the warm run reuses the cache the cold run
/// just filled.
void sweepGrid(const QueryEngine &Engine, bool Tabled,
               const std::vector<PairQuery> &Queries,
               const std::vector<unsigned> &ThreadCounts,
               std::vector<GridCell> &Out) {
  for (unsigned Threads : ThreadCounts) {
    setGlobalThreadCount(Threads);
    Engine.clearCache();
    RunResult Cold = timeRoutes(Engine, Queries);
    RunResult Warm = timeRoutes(Engine, Queries);
    Out.push_back({Threads, Tabled, false, Cold.Ms,
                   qps(Queries.size(), Cold.Ms), Cold.Check});
    Out.push_back({Threads, Tabled, true, Warm.Ms,
                   qps(Queries.size(), Warm.Ms), Warm.Check});
  }
  setGlobalThreadCount(0);
}

//===----------------------------------------------------------------------===//
// Smoke gates.
//===----------------------------------------------------------------------===//

int fail(const char *What) {
  std::fprintf(stderr, "SMOKE FAIL: %s\n", What);
  return 1;
}

/// Differential pin: both engines reproduce ExplicitScg BFS distances at
/// k = 7 (Cayley-normalized to an arbitrary source).
int smokeDifferential() {
  SuperCayleyGraph Net = SuperCayleyGraph::star(7);
  QueryEngine Free(Net);
  QueryEngine Tabled(Net);
  Tabled.attachTable(std::make_shared<TableStore>(TableStore::build(Net)));
  ExplicitScg Ex(Net);
  NodeId Src = NodeId(Ex.numNodes() / 3);
  BfsResult Truth = bfsExplicit(Ex, Src);
  Permutation SrcLabel = Ex.label(Src);
  for (uint64_t R = 0; R < Ex.numNodes(); R += 11) {
    Permutation Dst = unrankPermutation(R, 7);
    uint32_t Want = Truth.Distance[R];
    if (Free.distance(SrcLabel, Dst).Distance != Want)
      return fail("table-free star distance diverges from BFS at k=7");
    if (Tabled.distance(SrcLabel, Dst).Distance != Want)
      return fail("table-backed distance diverges from BFS at k=7");
    if (Tabled.route(SrcLabel, Dst).length() != Want)
      return fail("table-backed route length is not the exact distance");
  }
  return 0;
}

/// Throughput gates, best-of-N to shed scheduler noise: a warm cache must
/// not be slower than a cold one, and the table must not be slower than
/// the closed form it replaces.
int smokeThroughput() {
  SuperCayleyGraph Net = SuperCayleyGraph::star(7);
  std::vector<PairQuery> Queries = makePairs(7, 6000, /*Seed=*/11);
  QueryEngine Tabled(Net);
  Tabled.attachTable(std::make_shared<TableStore>(TableStore::build(Net)));
  setGlobalThreadCount(1);

  double ColdMs = 1e300, WarmMs = 1e300;
  for (int Rep = 0; Rep != 5; ++Rep) {
    Tabled.clearCache();
    ColdMs = std::min(ColdMs, timeRoutes(Tabled, Queries).Ms);
    WarmMs = std::min(WarmMs, timeRoutes(Tabled, Queries).Ms);
  }
  if (WarmMs > ColdMs)
    return fail("warm-cache route serving slower than cold-cache");

  QueryEngine Free(Net);
  double TableMs = 1e300, FreeMs = 1e300;
  for (int Rep = 0; Rep != 5; ++Rep) {
    TableMs = std::min(TableMs, timeDistances(Tabled, Queries).Ms);
    FreeMs = std::min(FreeMs, timeDistances(Free, Queries).Ms);
  }
  setGlobalThreadCount(0);
  if (TableMs > FreeMs)
    return fail("table-backed distance serving slower than table-free");
  return 0;
}

/// Parallel batches must answer byte-identically to serial ones.
int smokeParallelIdentity() {
  for (bool UseTable : {false, true}) {
    SuperCayleyGraph Net = SuperCayleyGraph::star(6);
    QueryEngine Engine(Net);
    if (UseTable)
      Engine.attachTable(
          std::make_shared<TableStore>(TableStore::build(Net)));
    std::vector<PairQuery> Queries = makePairs(6, 2000, /*Seed=*/23);

    setGlobalThreadCount(1);
    std::vector<RouteReply> Serial = Engine.routeBatch(Queries);
    std::vector<DistanceReply> SerialDist = Engine.distanceBatch(Queries);
    for (unsigned Threads : {2u, 4u, 8u}) {
      setGlobalThreadCount(Threads);
      if (Engine.routeBatch(Queries) != Serial)
        return fail("parallel route batch diverges from serial");
      if (Engine.distanceBatch(Queries) != SerialDist)
        return fail("parallel distance batch diverges from serial");
    }
    setGlobalThreadCount(0);
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Reporting.
//===----------------------------------------------------------------------===//

const char *engineName(bool Tabled) {
  return Tabled ? "table" : "table_free";
}

void printHuman(const std::string &Network, size_t NumQueries,
                const std::vector<GridCell> &Grid,
                const std::vector<GridCell> &Scale) {
  std::printf("query serving on %s, %zu route queries per cell\n\n",
              Network.c_str(), NumQueries);
  TextTable T;
  T.setHeader({"engine", "cache", "threads", "ms", "qps", "check"});
  for (const GridCell &C : Grid)
    T.addRow({engineName(C.Tabled), C.Warm ? "warm" : "cold",
              std::to_string(C.Threads), formatDouble(C.Ms, 2),
              formatDouble(C.Qps, 0), std::to_string(C.Check)});
  std::printf("%s\n", T.render().c_str());

  if (!Scale.empty()) {
    std::printf("table-free scaling (graph never materialized)\n\n");
    TextTable S;
    S.setHeader({"k", "threads", "ms", "qps", "check"});
    for (const GridCell &C : Scale)
      S.addRow({std::to_string(C.Threads >> 8),
                std::to_string(C.Threads & 0xFF), formatDouble(C.Ms, 2),
                formatDouble(C.Qps, 0), std::to_string(C.Check)});
    std::printf("%s\n", S.render().c_str());
  }
}

} // namespace

int main(int argc, char **argv) {
  bool Json = false, Smoke = false;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;
  }

  if (Smoke) {
    if (int Rc = smokeDifferential())
      return Rc;
    if (int Rc = smokeParallelIdentity())
      return Rc;
    if (int Rc = smokeThroughput())
      return Rc;
  }

  // The serving grid: star(8) so the table build stays fast while routes
  // are long enough to time. Smoke mode bounds the workload.
  unsigned K = Smoke ? 7 : 8;
  size_t NumQueries = Smoke ? 6000 : 30000;
  SuperCayleyGraph Net = SuperCayleyGraph::star(K);
  std::vector<PairQuery> Queries = makePairs(K, NumQueries, /*Seed=*/7);
  std::vector<unsigned> ThreadCounts = {1, 2, 4, 8};

  std::vector<GridCell> Grid;
  QueryEngine Free(Net);
  sweepGrid(Free, /*Tabled=*/false, Queries, ThreadCounts, Grid);
  QueryEngine Tabled(Net);
  Tabled.attachTable(std::make_shared<TableStore>(TableStore::build(Net)));
  sweepGrid(Tabled, /*Tabled=*/true, Queries, ThreadCounts, Grid);

  // Every cell answers the same workload; star serving is exact in both
  // engines, so all checksums must agree.
  for (const GridCell &C : Grid)
    if (C.Check != Grid.front().Check) {
      std::fprintf(stderr, "CHECK FAIL: grid cell disagrees on answers\n");
      return 1;
    }

  // Table-free scaling: route serving where the graph cannot exist. The
  // Threads field packs (k << 8 | threads) for the human printer.
  std::vector<GridCell> Scale;
  if (!Smoke) {
    for (unsigned BigK : {10u, 12u}) {
      std::vector<PairQuery> Big = makePairs(BigK, 20000, /*Seed=*/13);
      QueryEngine Engine(SuperCayleyGraph::star(BigK));
      for (unsigned Threads : {1u, 8u}) {
        setGlobalThreadCount(Threads);
        Engine.clearCache();
        RunResult R = timeRoutes(Engine, Big);
        Scale.push_back({(BigK << 8) | Threads, false, false, R.Ms,
                         qps(Big.size(), R.Ms), R.Check});
      }
      setGlobalThreadCount(0);
    }
  }

  MetricsRegistry Metrics;
  Tabled.publishMetrics(Metrics);

  if (Json) {
    JsonWriter W;
    W.beginObject()
        .field("bench", "queries")
        .field("network", Net.name())
        .field("route_queries", uint64_t(NumQueries))
        .field("smoke", Smoke);
    W.key("grid").beginArray();
    for (const GridCell &C : Grid) {
      W.beginObject()
          .field("engine", engineName(C.Tabled))
          .field("cache", C.Warm ? "warm" : "cold")
          .field("threads", C.Threads)
          .field("ms", C.Ms, 2)
          .field("qps", C.Qps, 0)
          .field("check", C.Check)
          .endObject();
    }
    W.endArray();
    W.key("table_free_scale").beginArray();
    for (const GridCell &C : Scale) {
      W.beginObject()
          .field("k", C.Threads >> 8)
          .field("threads", C.Threads & 0xFF)
          .field("ms", C.Ms, 2)
          .field("qps", C.Qps, 0)
          .field("check", C.Check)
          .endObject();
    }
    W.endArray();
    W.key("metrics").rawValue(Metrics.toJson());
    W.endObject();
    std::fputs(W.str().c_str(), stdout);
  } else {
    printHuman(Net.name(), NumQueries, Grid, Scale);
  }
  return 0;
}
