//===- bench/bench_te.cpp - Experiment E7 (Corollary 3) ------------------===//
//
// Reproduces Corollary 3: total exchange under the all-port model. The
// claim is asymptotic optimality against the bandwidth lower bound
// N * avgDistance / (N * degree): Theta(N) on the IS network and
// Theta(N sqrt(logN/loglogN)) on the MS family. Simulated completion over
// the lifted optimal star routes is reported against that bound.
//
//===----------------------------------------------------------------------===//

#include "comm/TotalExchange.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

void addRow(TextTable &Table, const SuperCayleyGraph &Scg) {
  ExplicitScg Net(Scg);
  TeResult R = simulateTotalExchange(Net);
  Table.addRow({Scg.name(), std::to_string(Net.numNodes()),
                std::to_string(Scg.degree()), std::to_string(R.Steps),
                std::to_string(R.LowerBound), formatDouble(R.Ratio, 2),
                formatDouble(R.AverageRouteLength, 2),
                formatDouble(100.0 * R.LinkUtilization, 1) + "%"});
}

void printTeTable() {
  std::printf("E7: total exchange, all-port model (Corollary 3)\n\n");
  TextTable Table;
  Table.setHeader({"network", "N", "degree", "steps", "lower bd", "ratio",
                   "avg route", "util"});
  for (unsigned K : {5u, 6u}) {
    addRow(Table, SuperCayleyGraph::star(K));
    addRow(Table, SuperCayleyGraph::insertionSelection(K));
  }
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  addRow(Table,
         SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 2, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2));
  addRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 5, 1));
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: completion stays within a small constant of "
              "the bandwidth bound on every class; the lower-degree MS "
              "family pays the sqrt(log/loglog) degree factor of "
              "Corollary 3 through its larger lower bound, not through a "
              "worse ratio.\n\n");
}

void BM_TeStar5(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::star(5));
  for (auto _ : State)
    benchmark::DoNotOptimize(simulateTotalExchange(Net).Steps);
}
BENCHMARK(BM_TeStar5)->Unit(benchmark::kMillisecond);

void BM_TeMacroStar22(benchmark::State &State) {
  ExplicitScg Net(SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  for (auto _ : State)
    benchmark::DoNotOptimize(simulateTotalExchange(Net).Steps);
}
BENCHMARK(BM_TeMacroStar22)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
