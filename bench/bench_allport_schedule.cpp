//===- bench/bench_allport_schedule.cpp - Experiments E4-E5 --------------===//
//
// Reproduces Figure 1 and Theorems 4-5: the all-port emulation schedules.
// Prints the Figure 1a/1b grids (13-star on MS(4,3), 16-star on MS(5,3)
// and their complete-RS variants), then sweeps (l, n) comparing the
// constructive makespan against the paper bound max(2n, l+1) (MS/cRS) or
// max(2n, l+2) (MIS/cRIS), the generic lower bound, and the greedy list
// scheduler (ablation: the Latin-square construction vs plain greedy).
//
//===----------------------------------------------------------------------===//

#include "emulation/FigureOne.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

void printFigures() {
  std::printf("E4: Figure 1 schedules\n\n");
  std::printf("--- Figure 1a ---\n%s\n",
              renderFigureOne(
                  SuperCayleyGraph::create(NetworkKind::MacroStar, 4, 3))
                  .c_str());
  std::printf("--- Figure 1b ---\n%s\n",
              renderFigureOne(
                  SuperCayleyGraph::create(NetworkKind::MacroStar, 5, 3))
                  .c_str());
  std::printf("--- Figure 1a, complete-RS variant ---\n%s\n",
              renderFigureOne(SuperCayleyGraph::create(
                                  NetworkKind::CompleteRotationStar, 4, 3))
                  .c_str());
  std::printf("--- Figure 1b, complete-RS variant ---\n%s\n",
              renderFigureOne(SuperCayleyGraph::create(
                                  NetworkKind::CompleteRotationStar, 5, 3))
                  .c_str());
}

void sweepKind(TextTable &Table, NetworkKind Kind) {
  for (auto [L, N] :
       {std::pair{2u, 2u}, {3u, 2u}, {2u, 3u}, {4u, 3u}, {5u, 3u}, {6u, 2u},
        {7u, 3u}, {3u, 5u}, {9u, 4u}, {12u, 3u}}) {
    SuperCayleyGraph Net = SuperCayleyGraph::create(Kind, L, N);
    AllPortSchedule Constructive = buildAllPortSchedule(Net);
    AllPortSchedule Greedy = buildAllPortScheduleGreedy(Net);
    bool Valid = validateAllPortSchedule(Net, Constructive) &&
                 validateAllPortSchedule(Net, Greedy);
    ScheduleStats Stats = computeScheduleStats(Net, Constructive);
    Table.addRow({Net.name(), std::to_string(Constructive.Makespan),
                  std::to_string(paperAllPortSlowdownBound(Net)),
                  std::to_string(allPortLowerBound(Net)),
                  std::to_string(Greedy.Makespan),
                  formatDouble(100.0 * Stats.AverageUtilization, 1) + "%",
                  Valid ? "yes" : "NO"});
  }
}

void printSweep() {
  std::printf("E4-E5: all-port emulation slowdown sweep (Theorems 4-5)\n\n");
  TextTable Table;
  Table.setHeader({"network", "makespan", "paper", "lower bd", "greedy",
                   "util", "valid"});
  sweepKind(Table, NetworkKind::MacroStar);
  sweepKind(Table, NetworkKind::CompleteRotationStar);
  sweepKind(Table, NetworkKind::MacroIS);
  sweepKind(Table, NetworkKind::CompleteRotationIS);
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: the constructive makespan equals the paper "
              "bound everywhere except the tiny MIS/complete-RIS corner "
              "(l,n)=(2,2), where a case analysis (EXPERIMENTS.md) shows "
              "the claimed max(2n, l+2) = 4 is infeasible and 5 is "
              "optimal.\n\n");
}

void BM_ConstructiveSchedule(benchmark::State &State) {
  SuperCayleyGraph Net = SuperCayleyGraph::create(NetworkKind::MacroStar,
                                                  State.range(0), 3);
  for (auto _ : State)
    benchmark::DoNotOptimize(buildAllPortSchedule(Net).Makespan);
}
BENCHMARK(BM_ConstructiveSchedule)->Arg(4)->Arg(8)->Arg(16);

void BM_GreedySchedule(benchmark::State &State) {
  SuperCayleyGraph Net = SuperCayleyGraph::create(NetworkKind::MacroStar,
                                                  State.range(0), 3);
  for (auto _ : State)
    benchmark::DoNotOptimize(buildAllPortScheduleGreedy(Net).Makespan);
}
BENCHMARK(BM_GreedySchedule)->Arg(4)->Arg(8)->Arg(16);

} // namespace

int main(int argc, char **argv) {
  printFigures();
  printSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
