//===- bench/bench_tn_embedding.cpp - Experiments E8-E9 ------------------===//
//
// Reproduces Theorems 6 and 7: embedding the k-dimensional transposition
// network into super Cayley graphs with load 1, expansion 1, and dilation
// 5 (l = 2) / 7 (l >= 3) on MS and complete-RS, 6 on IS, O(1) on MIS and
// complete-RIS. Small hosts are measured exactly (every one of the
// k! * k(k-1) directed TN edges routed); larger hosts report the template
// dilation, which is source-independent by vertex symmetry.
//
//===----------------------------------------------------------------------===//

#include "embedding/PathTemplates.h"
#include "embedding/TnEmbeddings.h"
#include "networks/Explicit.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace scg;

namespace {

void addMeasuredRow(TextTable &Table, const SuperCayleyGraph &Host) {
  SuperCayleyGraph Tn =
      SuperCayleyGraph::transpositionNetwork(Host.numSymbols());
  Graph Guest = ExplicitScg(Tn).toGraph();
  PathTemplateMap Map = PathTemplateMap::create(Tn, Host);
  EmbeddingMetrics M = measureEmbedding(Guest, templateEmbedding(Map));
  Table.addRow({Tn.name() + " -> " + Host.name(), "exact",
                std::to_string(M.Load), formatDouble(M.Expansion, 1),
                std::to_string(M.Dilation),
                std::to_string(paperTnDilationBound(Host)),
                std::to_string(M.Congestion), M.Valid ? "yes" : "NO"});
}

void addTemplateRow(TextTable &Table, const SuperCayleyGraph &Host) {
  unsigned K = Host.numSymbols();
  unsigned MaxLen = 0;
  for (unsigned I = 1; I != K; ++I)
    for (unsigned J = I + 1; J <= K; ++J)
      MaxLen = std::max(MaxLen, tnPairPath(Host, I, J).length());
  Table.addRow({"TN(" + std::to_string(K) + ") -> " + Host.name(),
                "template", "1", "1.0", std::to_string(MaxLen),
                std::to_string(paperTnDilationBound(Host)), "-", "yes"});
}

void printTnTable() {
  std::printf("E8-E9: transposition-network embeddings (Theorems 6-7)\n\n");
  TextTable Table;
  Table.setHeader({"embedding", "mode", "load", "expansion", "dilation",
                   "paper", "congestion", "valid"});
  addMeasuredRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2));
  addMeasuredRow(Table,
                 SuperCayleyGraph::create(NetworkKind::CompleteRotationStar,
                                          2, 2));
  addMeasuredRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 3, 2));
  addMeasuredRow(Table, SuperCayleyGraph::insertionSelection(6));
  addMeasuredRow(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, 2, 2));
  addMeasuredRow(Table, SuperCayleyGraph::star(6));

  addTemplateRow(Table,
                 SuperCayleyGraph::create(NetworkKind::MacroStar, 4, 3));
  addTemplateRow(Table,
                 SuperCayleyGraph::create(NetworkKind::MacroStar, 8, 8));
  addTemplateRow(Table, SuperCayleyGraph::create(
                            NetworkKind::CompleteRotationStar, 10, 5));
  addTemplateRow(Table, SuperCayleyGraph::insertionSelection(40));
  addTemplateRow(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, 7, 6));
  addTemplateRow(Table, SuperCayleyGraph::create(
                            NetworkKind::CompleteRotationIS, 9, 4));
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: dilation 5 at l = 2 and 7 at l >= 3 for "
              "MS/complete-RS at every size; 6 into IS; bounded constant "
              "(<= 10) into MIS/complete-RIS. Load and expansion are 1 "
              "(the node map is the identity on S_k).\n\n");
}

void BM_TnTemplateConstruction(benchmark::State &State) {
  SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroStar,
                                                   State.range(0), 4);
  unsigned K = Host.numSymbols();
  for (auto _ : State) {
    unsigned Total = 0;
    for (unsigned I = 1; I != K; ++I)
      for (unsigned J = I + 1; J <= K; ++J)
        Total += tnPairPath(Host, I, J).length();
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_TnTemplateConstruction)->Arg(3)->Arg(6)->Arg(12);

void BM_MeasureTnIntoMs22(benchmark::State &State) {
  SuperCayleyGraph Host = SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2);
  SuperCayleyGraph Tn = SuperCayleyGraph::transpositionNetwork(5);
  Graph Guest = ExplicitScg(Tn).toGraph();
  for (auto _ : State) {
    PathTemplateMap Map = PathTemplateMap::create(Tn, Host);
    benchmark::DoNotOptimize(
        measureEmbedding(Guest, templateEmbedding(Map)).Dilation);
  }
}
BENCHMARK(BM_MeasureTnIntoMs22)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTnTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
