//===- bench/bench_routing.cpp - Experiment E16 (Section 2 routing) ------===//
//
// Quantifies "routing = solving the ball-arrangement game" (Section 2):
// for each network class, average/maximum unicast route lengths of the
// lifted star router (Theorems 1-3) before and after peephole
// simplification, against the exact shortest paths (BagSolver) and the
// network diameter. Also reports the insertion-sort rotator router for
// the rotator graph, where star lifting does not apply.
//
// With --json, prints the permutation-traffic section as one JSON object
// instead: per network/pattern completion numbers plus the per-step time
// series a MetricsObserver collects through simulatePermutationRouting's
// observer hook. Deterministic (fixed seeds, no wall times).
//
//===----------------------------------------------------------------------===//

#include "comm/PermutationRouting.h"
#include "comm/SimObserver.h"
#include "emulation/ScgRouter.h"
#include "emulation/SdcEmulation.h"
#include "graph/Metrics.h"
#include "networks/Explicit.h"
#include "perm/Lehmer.h"
#include "routing/BagSolver.h"
#include "routing/RotatorRouter.h"
#include "routing/RouteOptimizer.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

using namespace scg;

namespace {

void addLiftedRow(TextTable &Table, const SuperCayleyGraph &Scg,
                  unsigned Samples) {
  ExplicitScg Net(Scg);
  DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
  SplitMix64 Rng(0x5C6);
  uint64_t LiftedSum = 0, SimplifiedSum = 0, OptimalSum = 0;
  unsigned LiftedMax = 0, SimplifiedMax = 0;
  unsigned K = Scg.numSymbols();
  Permutation Id = Permutation::identity(K);
  for (unsigned S = 0; S != Samples; ++S) {
    Permutation Dst = unrankPermutation(Rng.nextBelow(factorial(K)), K);
    GeneratorPath Lifted = routeViaStarEmulation(Scg, Id, Dst);
    GeneratorPath Simplified = simplifyPath(Scg, Lifted);
    std::optional<GeneratorPath> Optimal = solveBag(Scg, Id, Dst);
    LiftedSum += Lifted.length();
    SimplifiedSum += Simplified.length();
    OptimalSum += Optimal->length();
    LiftedMax = std::max(LiftedMax, Lifted.length());
    SimplifiedMax = std::max(SimplifiedMax, Simplified.length());
  }
  double Inv = 1.0 / Samples;
  Table.addRow({Scg.name(), std::to_string(Stats.Diameter),
                formatDouble(LiftedSum * Inv, 2),
                formatDouble(SimplifiedSum * Inv, 2),
                formatDouble(OptimalSum * Inv, 2),
                std::to_string(LiftedMax), std::to_string(SimplifiedMax)});
}

void printRoutingTable() {
  std::printf("E16: unicast routing quality (Section 2 / Theorems 1-3)\n\n");
  TextTable Table;
  Table.setHeader({"network", "diameter", "avg lifted", "avg simplified",
                   "avg optimal", "max lifted", "max simplified"});
  addLiftedRow(Table, SuperCayleyGraph::star(6), 300);
  addLiftedRow(Table, SuperCayleyGraph::insertionSelection(6), 300);
  addLiftedRow(Table, SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 3),
               300);
  addLiftedRow(Table,
               SuperCayleyGraph::create(NetworkKind::CompleteRotationStar, 3,
                                        2),
               300);
  addLiftedRow(Table, SuperCayleyGraph::create(NetworkKind::MacroIS, 3, 2),
               200);
  std::printf("%s\n", Table.render().c_str());

  std::printf("rotator-graph routing (insertion-sort router vs exact)\n\n");
  TextTable Rot;
  Rot.setHeader({"network", "diameter", "avg router", "avg optimal",
                 "max router", "bound"});
  for (unsigned K : {4u, 5u, 6u}) {
    SuperCayleyGraph Scg = SuperCayleyGraph::rotator(K);
    ExplicitScg Net(Scg);
    DistanceStats Stats = vertexTransitiveStats(Net.toGraph());
    SplitMix64 Rng(0x707);
    uint64_t RouteSum = 0, OptSum = 0;
    unsigned RouteMax = 0;
    unsigned Samples = 200;
    Permutation Id = Permutation::identity(K);
    for (unsigned S = 0; S != Samples; ++S) {
      Permutation Dst = unrankPermutation(Rng.nextBelow(factorial(K)), K);
      GeneratorPath Route = routeInRotator(Scg, Id, Dst);
      RouteSum += Route.length();
      RouteMax = std::max(RouteMax, Route.length());
      OptSum += solveBag(Scg, Id, Dst)->length();
    }
    Rot.addRow({Scg.name(), std::to_string(Stats.Diameter),
                formatDouble(double(RouteSum) / Samples, 2),
                formatDouble(double(OptSum) / Samples, 2),
                std::to_string(RouteMax),
                std::to_string(rotatorRouteBound(K))});
  }
  std::printf("%s\n", Rot.render().c_str());

  // Permutation traffic: the uniform-load claim of the conclusion
  // ("the expected traffic is balanced on all links") and contention
  // behavior under adversarial and random permutations.
  std::printf("permutation traffic (all-port, lifted routes)\n\n");
  TextTable Perm;
  Perm.setHeader({"network", "pattern", "steps", "lower bd", "ratio",
                  "max link load"});
  for (auto Scg : {SuperCayleyGraph::star(6),
                   SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2),
                   SuperCayleyGraph::insertionSelection(5)}) {
    ExplicitScg Net(Scg);
    struct Case {
      const char *Name;
      TrafficPattern Pattern;
    };
    std::vector<Case> Cases;
    Cases.push_back({"random", randomTraffic(Net, 0xF00D)});
    Cases.push_back({"reversal", reversalTraffic(Net)});
    Cases.push_back({"translate", translationTraffic(Net, 0)});
    for (const Case &C : Cases) {
      PermutationRoutingResult R =
          simulatePermutationRouting(Net, C.Pattern);
      Perm.addRow({Scg.name(), C.Name, std::to_string(R.Steps),
                   std::to_string(R.LowerBound), formatDouble(R.Ratio, 2),
                   std::to_string(R.MaxLinkLoad)});
    }
  }
  std::printf("%s\n", Perm.render().c_str());
}

/// --json: the permutation-traffic experiment with instrumented runs.
void printPermutationJson() {
  struct Case {
    const char *Name;
    TrafficPattern Pattern;
  };
  JsonWriter W;
  W.beginObject();
  for (auto Scg : {SuperCayleyGraph::star(6),
                   SuperCayleyGraph::create(NetworkKind::MacroStar, 2, 2),
                   SuperCayleyGraph::insertionSelection(5)}) {
    ExplicitScg Net(Scg);
    std::vector<Case> Cases;
    Cases.push_back({"random", randomTraffic(Net, 0xF00D)});
    Cases.push_back({"reversal", reversalTraffic(Net)});
    Cases.push_back({"translate", translationTraffic(Net, 0)});
    for (size_t I = 0; I != Cases.size(); ++I) {
      MetricsRegistry Registry;
      MetricsObserver Metrics(Registry);
      ModelInvariantChecker Checker;
      PermutationRoutingResult R = simulatePermutationRouting(
          Net, Cases[I].Pattern, CommModel::AllPort, {&Metrics, &Checker});
      W.key(Scg.name() + "/" + Cases[I].Name)
          .beginObject()
          .field("steps", R.Steps)
          .field("lower_bound", R.LowerBound)
          .field("ratio", R.Ratio, 4)
          .field("max_link_load", R.MaxLinkLoad)
          .field("invariants", Checker.clean() ? "clean" : "VIOLATED")
          .key("metrics")
          .rawValue(Registry.toJson(64))
          .endObject();
    }
  }
  W.endObject();
  std::fputs(W.str().c_str(), stdout);
}

void BM_LiftedRoute(benchmark::State &State) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 4, 3);
  SplitMix64 Rng(1);
  Permutation Id = Permutation::identity(13);
  for (auto _ : State) {
    Permutation Dst = unrankPermutation(Rng.nextBelow(factorial(13)), 13);
    benchmark::DoNotOptimize(routeViaStarEmulation(Ms, Id, Dst).length());
  }
}
BENCHMARK(BM_LiftedRoute);

void BM_SimplifyRoute(benchmark::State &State) {
  SuperCayleyGraph Ms = SuperCayleyGraph::create(NetworkKind::MacroStar, 4, 3);
  SplitMix64 Rng(2);
  Permutation Id = Permutation::identity(13);
  Permutation Dst = unrankPermutation(Rng.nextBelow(factorial(13)), 13);
  GeneratorPath Route = routeViaStarEmulation(Ms, Id, Dst);
  for (auto _ : State)
    benchmark::DoNotOptimize(simplifyPath(Ms, Route).length());
}
BENCHMARK(BM_SimplifyRoute);

void BM_RotatorRoute(benchmark::State &State) {
  SuperCayleyGraph Rot = SuperCayleyGraph::rotator(State.range(0));
  unsigned K = Rot.numSymbols();
  SplitMix64 Rng(3);
  Permutation Id = Permutation::identity(K);
  for (auto _ : State) {
    Permutation Dst = unrankPermutation(Rng.nextBelow(factorial(K)), K);
    benchmark::DoNotOptimize(routeInRotator(Rot, Id, Dst).length());
  }
}
BENCHMARK(BM_RotatorRoute)->Arg(8)->Arg(12);

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I != argc; ++I)
    if (std::strcmp(argv[I], "--json") == 0) {
      printPermutationJson();
      return 0;
    }
  printRoutingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
