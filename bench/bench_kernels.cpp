//===- bench/bench_kernels.cpp - Rank-space kernel microbenchmarks -------===//
//
// Experiment E20: the hot permutation kernels the whole library sits on --
// Lehmer rank/unrank, generator composition, the ExplicitScg neighbor-table
// build, and the BFS-based distance sweeps. These are the numbers the
// rank-space optimization pass (inline labels, table-driven Lehmer,
// devirtualized BFS) is measured by; BENCH_kernels.json in the repo root
// records the committed baseline.
//
// Modes:
//   (default)  human-readable table of all measurements
//   --json     machine-readable one-object JSON on stdout (for diffing
//              against BENCH_kernels.json)
//   --smoke    bounded sizes + result invariants, non-zero exit on any
//              mismatch; wired into ctest under the perf-smoke label
//
// All measurements force a single thread so numbers are comparable across
// machines and unaffected by the pool size.
//
//===----------------------------------------------------------------------===//

#include "graph/Metrics.h"
#include "networks/Explicit.h"
#include "perm/Lehmer.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace scg;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

struct Measurement {
  std::string Name;
  double Ms;
  uint64_t Check; ///< result value pinning correctness of the timed work.
};

/// Rank/unrank round trip over all of S_k; Check is the rank sum, which
/// must equal k! (k! - 1) / 2 when both kernels are exact inverses.
Measurement lehmerRoundTrip(unsigned K) {
  uint64_t N = factorial(K);
  auto Start = Clock::now();
  uint64_t Acc = 0;
  for (uint64_t R = 0; R != N; ++R)
    Acc += rankPermutation(unrankPermutation(R, K));
  return {"lehmer_roundtrip_k" + std::to_string(K), msSince(Start), Acc};
}

/// Repeated right composition by a fixed generator-like permutation.
Measurement composeChain(unsigned K, uint64_t Iterations) {
  Permutation P = unrankPermutation(factorial(K) / 3, K);
  Permutation G = unrankPermutation(factorial(K) / 7 + 1, K);
  auto Start = Clock::now();
  for (uint64_t I = 0; I != Iterations; ++I)
    P.composeInto(G, P);
  benchmark::DoNotOptimize(P);
  double Ms = msSince(Start);
  std::string Count = Iterations >= 1000000
                          ? std::to_string(Iterations / 1000000) + "M"
                          : std::to_string(Iterations / 1000) + "k";
  return {"compose_" + Count + "_k" + std::to_string(K), Ms,
          rankPermutation(P)};
}

/// Full neighbor-table build of star(k); Check is the table checksum so the
/// build cannot be optimized away and stays byte-stable.
Measurement explicitBuild(unsigned K) {
  SuperCayleyGraph Star = SuperCayleyGraph::star(K);
  auto Start = Clock::now();
  ExplicitScg Net(Star);
  double Ms = msSince(Start);
  uint64_t Sum = 0;
  for (NodeId V : Net.nextTable())
    Sum += V;
  return {"explicit_build_star" + std::to_string(K), Ms, Sum};
}

/// Single-source distance stats (one devirtualized BFS) on star(k).
Measurement vtStats(unsigned K) {
  ExplicitScg Net(SuperCayleyGraph::star(K));
  auto Start = Clock::now();
  BfsResult R = bfsExplicit(Net, 0);
  return {"vt_stats_star" + std::to_string(K), msSince(Start),
          R.Eccentricity};
}

/// All-pairs distance stats (k! BFS sweeps) on star(k).
Measurement allPairs(unsigned K) {
  ExplicitScg Net(SuperCayleyGraph::star(K));
  Graph G = Net.toGraph();
  auto Start = Clock::now();
  DistanceStats S = allPairsStats(G);
  return {"all_pairs_star" + std::to_string(K), msSince(Start), S.Diameter};
}

std::vector<Measurement> runFull() {
  return {lehmerRoundTrip(8), lehmerRoundTrip(9), composeChain(9, 5000000),
          explicitBuild(8),   explicitBuild(9),   vtStats(8),
          vtStats(9),         allPairs(7)};
}

void printTable(const std::vector<Measurement> &Ms) {
  std::printf("E20: rank-space kernel microbenchmarks (single thread)\n\n");
  TextTable Table;
  Table.setHeader({"kernel", "wall ms", "check"});
  for (const Measurement &M : Ms)
    Table.addRow({M.Name, formatDouble(M.Ms, 2), std::to_string(M.Check)});
  std::printf("%s\n", Table.render().c_str());
}

void printJson(const std::vector<Measurement> &Ms) {
  JsonWriter W;
  W.beginObject();
  for (const Measurement &M : Ms)
    W.key(M.Name)
        .beginObject()
        .field("ms", M.Ms, 2)
        .field("check", M.Check)
        .endObject();
  W.endObject();
  std::fputs(W.str().c_str(), stdout);
}

/// Bounded sizes, invariant-checked: the perf-smoke ctest entry. Exercises
/// every kernel the full run does, at sizes that finish in about a second.
int runSmoke() {
  int Failures = 0;
  auto Expect = [&](const Measurement &M, uint64_t Want) {
    bool Ok = M.Check == Want;
    std::printf("%-24s %8.2f ms  check %llu %s\n", M.Name.c_str(), M.Ms,
                (unsigned long long)M.Check, Ok ? "ok" : "MISMATCH");
    Failures += !Ok;
  };
  uint64_t N8 = factorial(8);
  Expect(lehmerRoundTrip(8), N8 * (N8 - 1) / 2);
  // Pinned endpoint rank of the deterministic 100k-hop chain.
  Expect(composeChain(9, 100000), 5040);
  // star(7): 5040 nodes; table checksum = sum over all (u, g) of next(u, g).
  // Every node appears as a neighbor exactly degree times (the generator
  // action is a bijection per g), so the sum is degree * sum(node ids).
  uint64_t N7 = factorial(7);
  Expect(explicitBuild(7), 6 * (N7 * (N7 - 1) / 2));
  Expect(vtStats(7), 9);  // star(7) diameter, vertex-transitive.
  Expect(allPairs(6), 7); // star(6) diameter (paper: floor(3(k-1)/2)).
  return Failures ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  setGlobalThreadCount(1);
  bool Json = false, Smoke = false;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;
  }
  if (Smoke)
    return runSmoke();
  std::vector<Measurement> Ms = runFull();
  if (Json)
    printJson(Ms);
  else
    printTable(Ms);
  return 0;
}
