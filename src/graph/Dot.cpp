//===- graph/Dot.cpp - Graphviz export ------------------------------------===//

#include "graph/Dot.h"

#include <sstream>

using namespace scg;

std::string scg::renderDot(const Graph &G, const DotOptions &Options) {
  std::ostringstream OS;
  const char *Kind = Options.Directed ? "digraph" : "graph";
  const char *Arrow = Options.Directed ? " -> " : " -- ";
  OS << Kind << " " << Options.GraphName << " {\n";
  for (NodeId Node = 0; Node != G.numNodes(); ++Node) {
    OS << "  n" << Node;
    if (Options.NodeLabel)
      OS << " [label=\"" << Options.NodeLabel(Node) << "\"]";
    OS << ";\n";
  }
  for (NodeId From = 0; From != G.numNodes(); ++From)
    for (NodeId To : G.neighbors(From)) {
      if (!Options.Directed && From > To)
        continue; // emit each undirected edge once.
      OS << "  n" << From << Arrow << "n" << To;
      if (Options.EdgeLabel) {
        std::string Label = Options.EdgeLabel(From, To);
        if (!Label.empty())
          OS << " [label=\"" << Label << "\"]";
      }
      OS << ";\n";
    }
  OS << "}\n";
  return OS.str();
}
