//===- graph/Graph.cpp - Explicit directed graph container ---------------===//

#include "graph/Graph.h"

#include <algorithm>

using namespace scg;

bool Graph::isRegular() const {
  if (numNodes() == 0)
    return true;
  unsigned Degree = outDegree(0);
  for (NodeId Node = 1; Node != numNodes(); ++Node)
    if (outDegree(Node) != Degree)
      return false;
  return true;
}

bool Graph::isUndirected() const {
  for (NodeId From = 0; From != numNodes(); ++From)
    for (NodeId To : neighbors(From))
      if (!hasEdge(To, From))
        return false;
  return true;
}

bool Graph::hasEdge(NodeId From, NodeId To) const {
  auto Span = neighbors(From);
  return std::find(Span.begin(), Span.end(), To) != Span.end();
}

void Graph::sortAdjacency() {
  for (auto &List : Adjacency)
    std::sort(List.begin(), List.end());
}
