//===- graph/Csr.cpp - Compressed sparse row adjacency -------------------===//

#include "graph/Csr.h"

#include <cassert>

using namespace scg;

Csr::Csr(const Graph &G) {
  Offsets.resize(uint64_t(G.numNodes()) + 1);
  Adjacency.resize(G.numDirectedEdges());
  uint64_t Cursor = 0;
  for (NodeId Node = 0; Node != G.numNodes(); ++Node) {
    Offsets[Node] = Cursor;
    for (NodeId Next : G.neighbors(Node))
      Adjacency[Cursor++] = Next;
  }
  Offsets[G.numNodes()] = Cursor;
  assert(Cursor == G.numDirectedEdges() && "edge count mismatch");
}

Csr::Csr(NodeId NumNodes, unsigned Degree, std::vector<NodeId> Flat)
    : Adjacency(std::move(Flat)) {
  assert(Adjacency.size() == uint64_t(NumNodes) * Degree &&
         "flat table size must be NumNodes * Degree");
  Offsets.resize(uint64_t(NumNodes) + 1);
  for (uint64_t Node = 0; Node <= NumNodes; ++Node)
    Offsets[Node] = Node * Degree;
}
