//===- graph/Csr.cpp - Compressed sparse row adjacency -------------------===//

#include "graph/Csr.h"

#include <cassert>

using namespace scg;

Csr::Csr(const Graph &G) {
  Offsets.resize(uint64_t(G.numNodes()) + 1);
  Adjacency.resize(G.numDirectedEdges());
  uint64_t Cursor = 0;
  for (NodeId Node = 0; Node != G.numNodes(); ++Node) {
    Offsets[Node] = Cursor;
    for (NodeId Next : G.neighbors(Node))
      Adjacency[Cursor++] = Next;
  }
  Offsets[G.numNodes()] = Cursor;
  assert(Cursor == G.numDirectedEdges() && "edge count mismatch");
}

Csr::Csr(NodeId NumNodes, unsigned Degree, std::vector<NodeId> Flat)
    : Adjacency(std::move(Flat)) {
  assert(Adjacency.size() == uint64_t(NumNodes) * Degree &&
         "flat table size must be NumNodes * Degree");
  Offsets.resize(uint64_t(NumNodes) + 1);
  for (uint64_t Node = 0; Node <= NumNodes; ++Node)
    Offsets[Node] = Node * Degree;
}

Csr Csr::transpose() const {
  const NodeId N = numNodes();
  Csr T;
  // Counting sort: in-degree histogram, prefix sums, then one scatter
  // pass in ascending source order, so each reverse row lists its
  // in-neighbors ascending -- a deterministic order independent of the
  // forward row order.
  T.Offsets.assign(uint64_t(N) + 1, 0);
  for (NodeId To : Adjacency) {
    assert(To < N && "neighbor id out of range");
    ++T.Offsets[uint64_t(To) + 1];
  }
  for (uint64_t Node = 0; Node != N; ++Node)
    T.Offsets[Node + 1] += T.Offsets[Node];
  T.Adjacency.resize(Adjacency.size());
  std::vector<uint64_t> Cursor(T.Offsets.begin(), T.Offsets.end() - 1);
  for (NodeId From = 0; From != N; ++From)
    for (NodeId To : neighbors(From))
      T.Adjacency[Cursor[To]++] = From;
  return T;
}
