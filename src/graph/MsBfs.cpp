//===- graph/MsBfs.cpp - Bit-parallel multi-source BFS -------------------===//

#include "graph/MsBfs.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <numeric>

using namespace scg;

namespace {

/// Shared per-lane statistics sink for msBfs / msBfsHybrid.
struct BatchSink {
  MsBfsBatch &Batch;
  void operator()(NodeId, uint64_t NewMask, uint32_t Level) const {
    // Peel the newly arrived lanes; levels are ascending, so assigning the
    // eccentricity each time leaves the per-lane maximum behind.
    do {
      unsigned Lane = unsigned(std::countr_zero(NewMask));
      Batch.Eccentricity[Lane] = Level;
      ++Batch.NumReached[Lane];
      Batch.DistanceSum[Lane] += Level;
      NewMask &= NewMask - 1;
    } while (NewMask);
  }
};

MsBfsBatch makeBatch(size_t Lanes) {
  MsBfsBatch Batch;
  Batch.Eccentricity.assign(Lanes, 0);
  Batch.NumReached.assign(Lanes, 0);
  Batch.DistanceSum.assign(Lanes, 0);
  return Batch;
}

/// Shared distance-matrix sink for msBfsDistances{,Hybrid}.
struct RowsSink {
  std::vector<std::vector<uint32_t>> &Rows;
  void operator()(NodeId Node, uint64_t NewMask, uint32_t Level) const {
    do {
      Rows[unsigned(std::countr_zero(NewMask))][Node] = Level;
      NewMask &= NewMask - 1;
    } while (NewMask);
  }
};

} // namespace

MsBfsBatch scg::msBfs(const Csr &G, std::span<const NodeId> Sources) {
  MsBfsBatch Batch = makeBatch(Sources.size());
  msBfsCore(G, Sources, BatchSink{Batch});
  return Batch;
}

MsBfsBatch scg::msBfsHybrid(const Csr &G, const Csr &GT,
                            std::span<const NodeId> Sources) {
  MsBfsBatch Batch = makeBatch(Sources.size());
  msBfsHybridCore(G, GT, Sources, BatchSink{Batch});
  return Batch;
}

std::vector<std::vector<uint32_t>>
scg::msBfsDistances(const Csr &G, std::span<const NodeId> Sources) {
  std::vector<std::vector<uint32_t>> Rows(
      Sources.size(),
      std::vector<uint32_t>(G.numNodes(), UnreachableDistance));
  msBfsCore(G, Sources, RowsSink{Rows});
  return Rows;
}

std::vector<std::vector<uint32_t>>
scg::msBfsDistancesHybrid(const Csr &G, const Csr &GT,
                          std::span<const NodeId> Sources) {
  std::vector<std::vector<uint32_t>> Rows(
      Sources.size(),
      std::vector<uint32_t>(G.numNodes(), UnreachableDistance));
  msBfsHybridCore(G, GT, Sources, RowsSink{Rows});
  return Rows;
}

std::vector<uint8_t> scg::msBfsDistanceRow(const Csr &G, NodeId Source) {
  std::vector<uint8_t> Row(G.numNodes(), MsBfsUnreachableByte);
  NodeId Sources[1] = {Source};
  msBfsCore(G, Sources,
            [&Row](NodeId Node, uint64_t /*NewMask*/, uint32_t Level) {
              assert(Level < MsBfsUnreachableByte &&
                     "distance does not fit a table byte");
              Row[Node] = uint8_t(Level);
            });
  return Row;
}

namespace {

/// Order-independent batch partial (AND / max / exact sums), identical in
/// shape to the scalar sweep's accumulator so the two engines fold the
/// same integers into the same double at the end. Counters ride along as
/// more exact sums.
struct SweepAccum {
  bool AllConnected = true;
  uint32_t Diameter = 0;
  uint64_t DistanceSum = 0;
  MsBfsCounters Counters;
};

SweepAccum mergeSweep(SweepAccum A, const SweepAccum &B) {
  A.AllConnected = A.AllConnected && B.AllConnected;
  A.Diameter = std::max(A.Diameter, B.Diameter);
  A.DistanceSum += B.DistanceSum;
  A.Counters += B.Counters;
  return A;
}

} // namespace

DistanceStats scg::msAllPairsStats(const Csr &G, const MsSweepOptions &Opts) {
  DistanceStats Stats;
  const uint64_t N = G.numNodes();
  if (N == 0)
    return Stats;
  const bool Hybrid = Opts.Engine == MsBfsEngine::Hybrid;
  const bool Counted = Hybrid && Opts.Metrics != nullptr;
  // The pull pass needs the reverse graph; identical to G (up to row
  // order) for the undirected families, but built generically so directed
  // graphs pull from true in-neighbors. One O(V + E) build per sweep.
  const Csr GT = Hybrid ? G.transpose() : Csr(Graph(0));
  // The hybrid sweep fuses 8 batches per task (512 sources, one lane
  // cache line per node); the push reference keeps plain 64-lane batches.
  // Sweep statistics are per-(source, node) sums / maxima, so the
  // grouping cannot change any result bit.
  const uint64_t GroupLanes =
      Hybrid ? uint64_t(MsBfsLanes) * MsBfsFusedWords : MsBfsLanes;
  const uint64_t NumGroups = (N + GroupLanes - 1) / GroupLanes;
  // Group g owns sources [g * GroupLanes, ...); groups are independent
  // (each worker thread reuses its own scratch), and the early-out flag
  // can only make a doomed sweep cheaper, never change its result.
  std::atomic<bool> Disconnected{false};
  SweepAccum Acc = ThreadPool::global().parallelMapReduce<SweepAccum>(
      0, NumGroups, SweepAccum{},
      [&](uint64_t Group) {
        SweepAccum One;
        if (Disconnected.load(std::memory_order_relaxed)) {
          One.AllConnected = false;
          return One;
        }
        NodeId Begin = NodeId(Group * GroupLanes);
        NodeId End = NodeId(std::min<uint64_t>(N, Begin + GroupLanes));
        MsBfsScratch &Scratch = threadScratch<MsBfsScratch>();
        Scratch.Sources.resize(End - Begin);
        std::iota(Scratch.Sources.begin(), Scratch.Sources.end(), Begin);
        // The whole-sweep statistics need no per-lane bookkeeping: the
        // number of lanes arriving per level gives visits / distance sum /
        // diameter, and the group is fully connected iff lane-visits total
        // N per lane. The fused engine detects the level() member and
        // tallies popcounts branchlessly inside its commit loops.
        uint64_t Visits = 0;
        struct LevelTally {
          SweepAccum &One;
          uint64_t &Visits;
          void level(uint32_t Level, uint64_t NewVisits) {
            Visits += NewVisits;
            One.DistanceSum += uint64_t(Level) * NewVisits;
            One.Diameter = Level; // ascending levels, only fired when
                                  // NewVisits > 0: max wins.
          }
        } Sink{One, Visits};
        if (Hybrid) {
          if (Counted)
            detail::msBfsFusedImpl<MsBfsFusedWords, true>(
                G, GT, Scratch.Sources, Sink, &One.Counters, Scratch);
          else
            detail::msBfsFusedImpl<MsBfsFusedWords, false>(
                G, GT, Scratch.Sources, Sink, nullptr, Scratch);
        } else {
          msBfsCore(
              G, Scratch.Sources,
              [&](NodeId, uint64_t NewMask, uint32_t Level) {
                unsigned Count = unsigned(std::popcount(NewMask));
                Visits += Count;
                One.DistanceSum += uint64_t(Level) * Count;
                One.Diameter = Level; // ascending levels: max wins.
              },
              &Scratch);
        }
        if (Visits != N * Scratch.Sources.size()) {
          Disconnected.store(true, std::memory_order_relaxed);
          One = SweepAccum{};
          One.AllConnected = false;
        }
        return One;
      },
      mergeSweep);
  if (Counted) {
    // One publication per sweep, after the deterministic fold; on a
    // connected graph the totals are a pure function of (graph, engine).
    MetricsRegistry &M = *Opts.Metrics;
    M.counter("distance.batches").add(Acc.Counters.Batches);
    M.counter("distance.push_levels").add(Acc.Counters.PushLevels);
    M.counter("distance.pull_levels").add(Acc.Counters.PullLevels);
    M.counter("distance.push_words").add(Acc.Counters.PushWords);
    M.counter("distance.pull_words").add(Acc.Counters.PullWords);
    M.counter("distance.direction_switches")
        .add(Acc.Counters.DirectionSwitches);
  }
  if (!Acc.AllConnected)
    return Stats; // Connected=false, zeroed metrics.
  Stats.Connected = true;
  Stats.Diameter = Acc.Diameter;
  uint64_t Pairs = N * (N - 1);
  Stats.AverageDistance = Pairs ? double(Acc.DistanceSum) / double(Pairs) : 0.0;
  return Stats;
}

DistanceStats scg::msAllPairsStats(const Csr &G) {
  return msAllPairsStats(G, MsSweepOptions{});
}
