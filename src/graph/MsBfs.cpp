//===- graph/MsBfs.cpp - Bit-parallel multi-source BFS -------------------===//

#include "graph/MsBfs.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <numeric>

using namespace scg;

MsBfsBatch scg::msBfs(const Csr &G, std::span<const NodeId> Sources) {
  MsBfsBatch Batch;
  Batch.Eccentricity.assign(Sources.size(), 0);
  Batch.NumReached.assign(Sources.size(), 0);
  Batch.DistanceSum.assign(Sources.size(), 0);
  msBfsCore(G, Sources, [&](NodeId, uint64_t NewMask, uint32_t Level) {
    // Peel the newly arrived lanes; levels are ascending, so assigning the
    // eccentricity each time leaves the per-lane maximum behind.
    do {
      unsigned Lane = unsigned(std::countr_zero(NewMask));
      Batch.Eccentricity[Lane] = Level;
      ++Batch.NumReached[Lane];
      Batch.DistanceSum[Lane] += Level;
      NewMask &= NewMask - 1;
    } while (NewMask);
  });
  return Batch;
}

std::vector<std::vector<uint32_t>>
scg::msBfsDistances(const Csr &G, std::span<const NodeId> Sources) {
  std::vector<std::vector<uint32_t>> Rows(
      Sources.size(),
      std::vector<uint32_t>(G.numNodes(), UnreachableDistance));
  msBfsCore(G, Sources, [&](NodeId Node, uint64_t NewMask, uint32_t Level) {
    do {
      Rows[unsigned(std::countr_zero(NewMask))][Node] = Level;
      NewMask &= NewMask - 1;
    } while (NewMask);
  });
  return Rows;
}

namespace {

/// Order-independent batch partial (AND / max / exact sum), identical in
/// shape to the scalar sweep's accumulator so the two engines fold the
/// same integers into the same double at the end.
struct SweepAccum {
  bool AllConnected = true;
  uint32_t Diameter = 0;
  uint64_t DistanceSum = 0;
};

SweepAccum mergeSweep(SweepAccum A, const SweepAccum &B) {
  A.AllConnected = A.AllConnected && B.AllConnected;
  A.Diameter = std::max(A.Diameter, B.Diameter);
  A.DistanceSum += B.DistanceSum;
  return A;
}

} // namespace

DistanceStats scg::msAllPairsStats(const Csr &G) {
  DistanceStats Stats;
  const uint64_t N = G.numNodes();
  if (N == 0)
    return Stats;
  const uint64_t NumBatches = (N + MsBfsLanes - 1) / MsBfsLanes;
  // Batch b owns sources [64b, min(64(b+1), N)); batches are independent
  // (each owns its three bitmap arrays), and the early-out flag can only
  // make a doomed sweep cheaper, never change its result.
  std::atomic<bool> Disconnected{false};
  SweepAccum Acc = ThreadPool::global().parallelMapReduce<SweepAccum>(
      0, NumBatches, SweepAccum{},
      [&](uint64_t Batch) {
        SweepAccum One;
        if (Disconnected.load(std::memory_order_relaxed)) {
          One.AllConnected = false;
          return One;
        }
        NodeId Begin = NodeId(Batch * MsBfsLanes);
        NodeId End = NodeId(std::min<uint64_t>(N, Begin + MsBfsLanes));
        std::vector<NodeId> Sources(End - Begin);
        std::iota(Sources.begin(), Sources.end(), Begin);
        // The whole-sweep statistics need no per-lane bookkeeping: a
        // popcount per newly-reached word counts lane-visits, the level of
        // the last visit is the batch's max eccentricity, and the batch is
        // fully connected iff lane-visits total N per lane.
        uint64_t Visits = 0;
        msBfsCore(G, Sources,
                  [&](NodeId, uint64_t NewMask, uint32_t Level) {
                    unsigned Count = unsigned(std::popcount(NewMask));
                    Visits += Count;
                    One.DistanceSum += uint64_t(Level) * Count;
                    One.Diameter = Level; // ascending levels: max wins.
                  });
        if (Visits != N * Sources.size()) {
          Disconnected.store(true, std::memory_order_relaxed);
          One = SweepAccum{};
          One.AllConnected = false;
        }
        return One;
      },
      mergeSweep);
  if (!Acc.AllConnected)
    return Stats; // Connected=false, zeroed metrics.
  Stats.Connected = true;
  Stats.Diameter = Acc.Diameter;
  uint64_t Pairs = N * (N - 1);
  Stats.AverageDistance = Pairs ? double(Acc.DistanceSum) / double(Pairs) : 0.0;
  return Stats;
}
