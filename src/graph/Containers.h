//===- graph/Containers.h - Node-disjoint path containers ------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Containers: sets of internally node-disjoint parallel paths between a
/// node pair. By Menger's theorem the maximum container size equals the
/// local (vertex) connectivity, and for the maximally fault-tolerant
/// networks of the paper -- Cayley graphs of connectivity degree-many --
/// a container between any pair has degree-many paths, so any
/// fewer-than-degree faults leave at least one path intact. That is the
/// combinatorial backbone of the fault-tolerant router
/// (routing/FaultRouter.h) and the reliability campaigns
/// (routing/FaultCampaign.h); the literature grounding is Li & Xu's super
/// spanning connectivity of arrangement graphs and Knill's Cayley coset
/// connectivity notes (PAPERS.md).
///
/// This module is the explicit-graph workhorse: a unit-vertex-capacity
/// max-flow (node splitting + BFS augmentation, i.e. Even-Tarjan style)
/// that produces a maximum container between arbitrary NodeId pairs on
/// any materialized Graph, directed or undirected. It is exact on every
/// family, which makes it both the universal fallback and the
/// cross-validation oracle for the generator-based star construction in
/// routing/FaultRouter.h that needs no graph at all.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_CONTAINERS_H
#define SCG_GRAPH_CONTAINERS_H

#include "graph/Graph.h"

#include <span>
#include <vector>

namespace scg {

/// Returns a maximum set of internally node-disjoint \p Src -> \p Dst
/// paths (a container): unit capacities on nodes (via in/out splitting)
/// and arcs, shortest-augmenting-path max flow. Each returned path is a
/// simple node sequence starting at \p Src and ending at \p Dst; paths
/// share no node except the endpoints. \p MaxPaths caps the container
/// size (0 = no cap, i.e. the full local connectivity). Deterministic:
/// augmentation follows adjacency order, and paths are returned sorted by
/// (length, discovery order) so Paths[0] is a shortest Src -> Dst path.
/// Requires Src != Dst; correct on directed graphs (arc capacities bound
/// each direction independently).
std::vector<std::vector<NodeId>> nodeDisjointPaths(const Graph &G,
                                                   NodeId Src, NodeId Dst,
                                                   unsigned MaxPaths = 0);

/// The local vertex connectivity kappa(Src, Dst): the size of a maximum
/// container, equivalently (Menger) the minimum number of internal nodes
/// whose removal separates \p Dst from \p Src.
unsigned localConnectivity(const Graph &G, NodeId Src, NodeId Dst);

/// True when \p Paths form a container: every path runs between the same
/// two endpoints, and no node other than those endpoints appears in more
/// than one path (or twice in one). Vacuously true for an empty set.
bool internallyNodeDisjoint(std::span<const std::vector<NodeId>> Paths);

/// True when \p Path is a simple walk in \p G: at least two nodes, every
/// consecutive pair an arc of \p G, and no node repeated.
bool isSimplePath(const Graph &G, std::span<const NodeId> Path);

} // namespace scg

#endif // SCG_GRAPH_CONTAINERS_H
