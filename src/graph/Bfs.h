//===- graph/Bfs.h - Breadth-first search over graphs ----------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BFS over explicit graphs and over implicit neighbor functions. The
/// implicit form is how distances are computed in super Cayley graphs
/// without materializing adjacency: the caller supplies a neighbor callback
/// over dense node ids (typically Lehmer ranks).
///
/// The engine is bfsCore, a neighbor-functor template: the enumeration
/// callback and the visit sink are inlined at the call site (no
/// std::function dispatch per edge), and the FIFO is a flat vector with a
/// head cursor -- every node is enqueued at most once, so the queue never
/// wraps and one reservation serves the whole traversal. bfs() and the
/// legacy bfsImplicit() are thin adapters over it; hot paths that know
/// their neighbor structure statically (Metrics via bfs, ExplicitScg via
/// bfsExplicit) get fully devirtualized loops.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_BFS_H
#define SCG_GRAPH_BFS_H

#include "graph/Graph.h"

#include <functional>
#include <limits>

namespace scg {

/// Distance value for unreachable nodes.
constexpr uint32_t UnreachableDistance =
    std::numeric_limits<uint32_t>::max();

/// Result of a single-source BFS.
struct BfsResult {
  /// Distance from the source per node; UnreachableDistance if unreachable.
  std::vector<uint32_t> Distance;
  /// Parent node per node (source's parent is itself); undefined when
  /// unreachable.
  std::vector<NodeId> Parent;
  /// Largest finite distance found.
  uint32_t Eccentricity = 0;
  /// Number of reachable nodes (including the source).
  uint64_t NumReached = 0;
  /// Sum of finite distances (for average-distance computations).
  uint64_t DistanceSum = 0;
};

/// BFS from \p Source over an implicit graph on \p NumNodes nodes whose
/// adjacency is enumerated by \p Neighbors(Node, Sink): any callable that
/// invokes Sink(NeighborId) for each out-neighbor of Node. Both the
/// enumerator and the sink are statically typed, so the whole visit loop
/// inlines; there is no per-edge virtual or std::function dispatch.
template <typename NeighborForEach>
BfsResult bfsCore(uint64_t NumNodes, NodeId Source,
                  NeighborForEach &&Neighbors) {
  assert(Source < NumNodes && "source out of range");
  BfsResult Result;
  Result.Distance.assign(NumNodes, UnreachableDistance);
  Result.Parent.assign(NumNodes, 0);
  Result.Distance[Source] = 0;
  Result.Parent[Source] = Source;
  Result.NumReached = 1;

  // Flat FIFO: nodes are enqueued exactly once, so a vector with a head
  // cursor is a ring that never wraps.
  std::vector<NodeId> Queue;
  Queue.reserve(NumNodes);
  Queue.push_back(Source);
  for (size_t Head = 0; Head != Queue.size(); ++Head) {
    NodeId Node = Queue[Head];
    uint32_t NextDist = Result.Distance[Node] + 1;
    Neighbors(Node, [&](NodeId Next) {
      assert(Next < NumNodes && "neighbor out of range");
      if (Result.Distance[Next] != UnreachableDistance)
        return;
      Result.Distance[Next] = NextDist;
      Result.Parent[Next] = Node;
      Result.Eccentricity = NextDist;
      Result.DistanceSum += NextDist;
      ++Result.NumReached;
      Queue.push_back(Next);
    });
  }
  return Result;
}

/// BFS from \p Source over the explicit graph \p G.
BfsResult bfs(const Graph &G, NodeId Source);

/// Number of nodes reachable from \p Source (including it), with none of
/// BfsResult's bookkeeping: no parent tree, no distances, no sums -- just a
/// visited bitmap and a flat queue -- and an early exit the moment every
/// node has been reached. This is the path connectivity probes
/// (isConnectedFromZero, sweep guards) should take; a full bfs() for a
/// reachability answer pays for state nobody reads.
uint64_t bfsReachableCount(const Graph &G, NodeId Source);

/// Callback enumerating out-neighbors of a node: invoked with the node id,
/// must call the sink for each neighbor.
///
/// COMPATIBILITY SHIM. This type-erased form predates the bfsCore template
/// and survives only as an API for out-of-tree callers and as the shape of
/// the reference BFS in tests/KernelDifferentialTest.cpp; an audit (PR 5)
/// found no remaining in-tree hot-path users. New code should hand bfsCore
/// a concrete functor (or use bfs/bfsExplicit), and multi-source sweeps
/// should batch through graph/MsBfs.h instead of looping single sources.
using NeighborFn =
    std::function<void(NodeId, const std::function<void(NodeId)> &)>;

/// BFS from \p Source over an implicit graph on \p NumNodes nodes.
/// Adapter over bfsCore for callers holding a type-erased NeighborFn; pays
/// a std::function dispatch per edge. See the NeighborFn note: this is a
/// compatibility shim, not a hot-path entry point.
BfsResult bfsImplicit(uint64_t NumNodes, NodeId Source,
                      const NeighborFn &Neighbors);

} // namespace scg

#endif // SCG_GRAPH_BFS_H
