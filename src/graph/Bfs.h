//===- graph/Bfs.h - Breadth-first search over graphs ----------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BFS over explicit graphs and over implicit neighbor functions. The
/// implicit form is how distances are computed in super Cayley graphs
/// without materializing adjacency: the caller supplies a neighbor callback
/// over dense node ids (typically Lehmer ranks).
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_BFS_H
#define SCG_GRAPH_BFS_H

#include "graph/Graph.h"

#include <functional>
#include <limits>

namespace scg {

/// Distance value for unreachable nodes.
constexpr uint32_t UnreachableDistance =
    std::numeric_limits<uint32_t>::max();

/// Result of a single-source BFS.
struct BfsResult {
  /// Distance from the source per node; UnreachableDistance if unreachable.
  std::vector<uint32_t> Distance;
  /// Parent node per node (source's parent is itself); undefined when
  /// unreachable.
  std::vector<NodeId> Parent;
  /// Largest finite distance found.
  uint32_t Eccentricity = 0;
  /// Number of reachable nodes (including the source).
  uint64_t NumReached = 0;
  /// Sum of finite distances (for average-distance computations).
  uint64_t DistanceSum = 0;
};

/// BFS from \p Source over the explicit graph \p G.
BfsResult bfs(const Graph &G, NodeId Source);

/// Callback enumerating out-neighbors of a node: invoked with the node id,
/// must call the sink for each neighbor.
using NeighborFn =
    std::function<void(NodeId, const std::function<void(NodeId)> &)>;

/// BFS from \p Source over an implicit graph on \p NumNodes nodes.
BfsResult bfsImplicit(uint64_t NumNodes, NodeId Source,
                      const NeighborFn &Neighbors);

} // namespace scg

#endif // SCG_GRAPH_BFS_H
