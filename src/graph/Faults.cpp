//===- graph/Faults.cpp - Fault injection and robustness -----------------===//

#include "graph/Faults.h"

#include "graph/MsBfs.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace scg;

Graph scg::applyFaults(const Graph &G, const FaultSet &Faults) {
  Graph Out(G.numNodes());
  for (NodeId From = 0; From != G.numNodes(); ++From)
    for (NodeId To : G.neighbors(From))
      if (!Faults.linkFailed(From, To))
        Out.addEdge(From, To);
  return Out;
}

FaultAnalysis scg::analyzeUnderFaults(const Graph &G,
                                      const FaultSet &Faults) {
  FaultAnalysis Analysis;
  std::vector<NodeId> Healthy;
  Healthy.reserve(G.numNodes());
  for (NodeId Node = 0; Node != G.numNodes(); ++Node)
    if (!Faults.nodeFailed(Node))
      Healthy.push_back(Node);
  Analysis.HealthyNodes = Healthy.size();
  if (Healthy.empty())
    return Analysis;

  // Healthy sources advance 64 per word through the bit-parallel BFS over
  // the surviving graph (failed nodes keep their ids but have no links, so
  // they are simply never reached). Batches run serially here: this whole
  // analysis is already one scenario of a parallel sweep, and the early
  // exit wants the node-order semantics of the scalar loop anyway.
  Csr Surviving(applyFaults(G, Faults));
  Analysis.Connected = true;
  for (size_t Begin = 0; Begin < Healthy.size(); Begin += MsBfsLanes) {
    size_t Count = std::min<size_t>(MsBfsLanes, Healthy.size() - Begin);
    MsBfsBatch Batch =
        msBfs(Surviving, std::span(Healthy).subspan(Begin, Count));
    for (size_t Lane = 0; Lane != Count; ++Lane) {
      if (Batch.NumReached[Lane] != Analysis.HealthyNodes) {
        Analysis.Connected = false;
        // Earlier lanes may have accumulated a nonzero maximum; the field
        // is meaningless for a disconnected survivor, so zero it rather
        // than leak a partial measurement.
        Analysis.Diameter = 0;
        return Analysis;
      }
      Analysis.Diameter =
          std::max(Analysis.Diameter, Batch.Eccentricity[Lane]);
    }
  }
  return Analysis;
}

ReachabilityAnalysis
scg::analyzeReachabilityUnderFaults(const Graph &G, const FaultSet &Faults) {
  ReachabilityAnalysis Analysis;
  std::vector<NodeId> Healthy;
  Healthy.reserve(G.numNodes());
  for (NodeId Node = 0; Node != G.numNodes(); ++Node)
    if (!Faults.nodeFailed(Node))
      Healthy.push_back(Node);
  Analysis.HealthyNodes = Healthy.size();
  if (Healthy.empty())
    return Analysis;

  // Same batching as analyzeUnderFaults, but every lane is consumed: a
  // disconnected scenario contributes its partial reachability instead of
  // aborting the sweep. NumReached counts the source itself, so each lane
  // adds NumReached - 1 ordered pairs; failed nodes are linkless and are
  // never reached.
  Csr Surviving(applyFaults(G, Faults));
  Analysis.Connected = true;
  uint32_t MaxEccentricity = 0;
  for (size_t Begin = 0; Begin < Healthy.size(); Begin += MsBfsLanes) {
    size_t Count = std::min<size_t>(MsBfsLanes, Healthy.size() - Begin);
    MsBfsBatch Batch =
        msBfs(Surviving, std::span(Healthy).subspan(Begin, Count));
    for (size_t Lane = 0; Lane != Count; ++Lane) {
      Analysis.ReachableOrderedPairs += Batch.NumReached[Lane] - 1;
      if (Batch.NumReached[Lane] != Analysis.HealthyNodes)
        Analysis.Connected = false;
      MaxEccentricity = std::max(MaxEccentricity, Batch.Eccentricity[Lane]);
    }
  }
  // Same contract as FaultAnalysis: the diameter is a measurement only
  // when the survivors are mutually connected.
  Analysis.Diameter = Analysis.Connected ? MaxEccentricity : 0;
  return Analysis;
}

namespace {

/// Order-independent reduction over fault scenarios (AND / max), so the
/// parallel sweep matches the serial one byte for byte. Disconnected
/// scenarios do not contribute to WorstDiameter, mirroring the serial loop.
struct SweepOutcome {
  bool AlwaysConnected = true;
  uint32_t WorstDiameter = 0;
};

/// Evaluates NumScenarios single-fault scenarios in parallel on the global
/// pool; each scenario runs one full analyzeUnderFaults (its own surviving
/// graph and BFS buffers), so scenarios share nothing but G.
SweepOutcome evaluateScenarios(const Graph &G, uint64_t NumScenarios,
                               const std::function<FaultSet(uint64_t)> &Make) {
  return ThreadPool::global().parallelMapReduce<SweepOutcome>(
      0, NumScenarios, SweepOutcome{},
      [&](uint64_t I) {
        FaultAnalysis Analysis = analyzeUnderFaults(G, Make(I));
        SweepOutcome One;
        if (!Analysis.Connected)
          One.AlwaysConnected = false;
        else
          One.WorstDiameter = Analysis.Diameter;
        return One;
      },
      [](SweepOutcome A, const SweepOutcome &B) {
        A.AlwaysConnected = A.AlwaysConnected && B.AlwaysConnected;
        A.WorstDiameter = std::max(A.WorstDiameter, B.WorstDiameter);
        return A;
      });
}

} // namespace

SingleFaultSweep scg::sweepSingleLinkFaults(const Graph &G,
                                            unsigned Stride) {
  assert(Stride >= 1 && "stride must be positive");
  SingleFaultSweep Sweep;
  Sweep.FaultFreeDiameter = analyzeUnderFaults(G, FaultSet()).Diameter;

  // Enumerate the strided scenario list deterministically up front, then
  // evaluate scenarios in parallel.
  std::vector<std::pair<NodeId, NodeId>> Links;
  uint64_t Index = 0;
  for (NodeId From = 0; From != G.numNodes(); ++From)
    for (NodeId To : G.neighbors(From)) {
      if (From > To)
        continue; // one scenario per undirected link.
      if (Index++ % Stride != 0)
        continue;
      Links.push_back({From, To});
    }

  SweepOutcome Outcome =
      evaluateScenarios(G, Links.size(), [&](uint64_t I) {
        FaultSet Faults;
        Faults.failLink(Links[I].first, Links[I].second);
        return Faults;
      });
  // The reduction identity is AlwaysConnected = true, so an empty scenario
  // list (edgeless graph) would otherwise certify robustness vacuously.
  Sweep.AlwaysConnected = !Links.empty() && Outcome.AlwaysConnected;
  Sweep.WorstDiameter = Outcome.WorstDiameter;
  Sweep.ScenariosTried = Links.size();
  return Sweep;
}

SingleFaultSweep scg::sweepSingleNodeFaults(const Graph &G,
                                            unsigned Stride) {
  assert(Stride >= 1 && "stride must be positive");
  SingleFaultSweep Sweep;
  Sweep.FaultFreeDiameter = analyzeUnderFaults(G, FaultSet()).Diameter;

  std::vector<NodeId> Nodes;
  for (NodeId Node = 0; Node < G.numNodes(); Node += Stride)
    Nodes.push_back(Node);

  SweepOutcome Outcome =
      evaluateScenarios(G, Nodes.size(), [&](uint64_t I) {
        FaultSet Faults;
        Faults.failNode(Nodes[I]);
        return Faults;
      });
  // Zero scenarios (empty graph) must not read as always-connected.
  Sweep.AlwaysConnected = !Nodes.empty() && Outcome.AlwaysConnected;
  Sweep.WorstDiameter = Outcome.WorstDiameter;
  Sweep.ScenariosTried = Nodes.size();
  return Sweep;
}
