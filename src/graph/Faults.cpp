//===- graph/Faults.cpp - Fault injection and robustness -----------------===//

#include "graph/Faults.h"

#include "graph/Bfs.h"

#include <algorithm>
#include <cassert>

using namespace scg;

Graph scg::applyFaults(const Graph &G, const FaultSet &Faults) {
  Graph Out(G.numNodes());
  for (NodeId From = 0; From != G.numNodes(); ++From)
    for (NodeId To : G.neighbors(From))
      if (!Faults.linkFailed(From, To))
        Out.addEdge(From, To);
  return Out;
}

FaultAnalysis scg::analyzeUnderFaults(const Graph &G,
                                      const FaultSet &Faults) {
  Graph Surviving = applyFaults(G, Faults);
  FaultAnalysis Analysis;
  for (NodeId Node = 0; Node != G.numNodes(); ++Node)
    if (!Faults.nodeFailed(Node))
      ++Analysis.HealthyNodes;
  if (Analysis.HealthyNodes == 0)
    return Analysis;

  Analysis.Connected = true;
  for (NodeId Source = 0; Source != G.numNodes(); ++Source) {
    if (Faults.nodeFailed(Source))
      continue;
    BfsResult R = bfs(Surviving, Source);
    if (R.NumReached != Analysis.HealthyNodes) {
      Analysis.Connected = false;
      return Analysis;
    }
    Analysis.Diameter = std::max(Analysis.Diameter, R.Eccentricity);
  }
  return Analysis;
}

SingleFaultSweep scg::sweepSingleLinkFaults(const Graph &G,
                                            unsigned Stride) {
  assert(Stride >= 1 && "stride must be positive");
  SingleFaultSweep Sweep;
  Sweep.AlwaysConnected = true;
  Sweep.FaultFreeDiameter =
      analyzeUnderFaults(G, FaultSet()).Diameter;

  uint64_t Index = 0;
  for (NodeId From = 0; From != G.numNodes(); ++From)
    for (NodeId To : G.neighbors(From)) {
      if (From > To)
        continue; // one scenario per undirected link.
      if (Index++ % Stride != 0)
        continue;
      FaultSet Faults;
      Faults.failLink(From, To);
      FaultAnalysis Analysis = analyzeUnderFaults(G, Faults);
      ++Sweep.ScenariosTried;
      if (!Analysis.Connected) {
        Sweep.AlwaysConnected = false;
        continue;
      }
      Sweep.WorstDiameter = std::max(Sweep.WorstDiameter, Analysis.Diameter);
    }
  return Sweep;
}

SingleFaultSweep scg::sweepSingleNodeFaults(const Graph &G,
                                            unsigned Stride) {
  assert(Stride >= 1 && "stride must be positive");
  SingleFaultSweep Sweep;
  Sweep.AlwaysConnected = true;
  Sweep.FaultFreeDiameter =
      analyzeUnderFaults(G, FaultSet()).Diameter;

  for (NodeId Node = 0; Node < G.numNodes(); Node += Stride) {
    FaultSet Faults;
    Faults.failNode(Node);
    FaultAnalysis Analysis = analyzeUnderFaults(G, Faults);
    ++Sweep.ScenariosTried;
    if (!Analysis.Connected) {
      Sweep.AlwaysConnected = false;
      continue;
    }
    Sweep.WorstDiameter = std::max(Sweep.WorstDiameter, Analysis.Diameter);
  }
  return Sweep;
}
