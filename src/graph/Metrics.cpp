//===- graph/Metrics.cpp - Diameter and distance statistics --------------===//

#include "graph/Metrics.h"

#include "graph/Bfs.h"

#include <algorithm>

using namespace scg;

DistanceStats scg::allPairsStats(const Graph &G) {
  DistanceStats Stats;
  if (G.numNodes() == 0)
    return Stats;
  Stats.Connected = true;
  uint64_t TotalSum = 0;
  for (NodeId Source = 0; Source != G.numNodes(); ++Source) {
    BfsResult R = bfs(G, Source);
    if (R.NumReached != G.numNodes()) {
      Stats.Connected = false;
      return Stats;
    }
    Stats.Diameter = std::max(Stats.Diameter, R.Eccentricity);
    TotalSum += R.DistanceSum;
  }
  uint64_t Pairs = uint64_t(G.numNodes()) * (G.numNodes() - 1);
  Stats.AverageDistance = Pairs ? double(TotalSum) / double(Pairs) : 0.0;
  return Stats;
}

DistanceStats scg::vertexTransitiveStats(const Graph &G,
                                         NodeId Representative) {
  DistanceStats Stats;
  if (G.numNodes() == 0)
    return Stats;
  BfsResult R = bfs(G, Representative);
  Stats.Connected = (R.NumReached == G.numNodes());
  Stats.Diameter = R.Eccentricity;
  Stats.AverageDistance = G.numNodes() > 1
                              ? double(R.DistanceSum) / (G.numNodes() - 1)
                              : 0.0;
  return Stats;
}

bool scg::isConnectedFromZero(const Graph &G) {
  if (G.numNodes() == 0)
    return true;
  return bfs(G, 0).NumReached == G.numNodes();
}
