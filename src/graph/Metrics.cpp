//===- graph/Metrics.cpp - Diameter and distance statistics --------------===//

#include "graph/Metrics.h"

#include "graph/Bfs.h"
#include "graph/MsBfs.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>

using namespace scg;

namespace {

/// Partial result of an all-pairs sweep: order-independent (AND / max / sum
/// over exact integers), so the parallel fold is byte-identical to serial.
struct SweepAccum {
  bool AllConnected = true;
  uint32_t Diameter = 0;
  uint64_t DistanceSum = 0;
};

SweepAccum mergeSweep(SweepAccum A, const SweepAccum &B) {
  A.AllConnected = A.AllConnected && B.AllConnected;
  A.Diameter = std::max(A.Diameter, B.Diameter);
  A.DistanceSum += B.DistanceSum;
  return A;
}

} // namespace

DistanceStats scg::allPairsStats(const Graph &G) {
  // Flattening to CSR is O(V + E), noise next to the sweep itself; the
  // bit-parallel engine then advances 64 sources per word.
  return msAllPairsStats(Csr(G));
}

DistanceStats scg::scalarAllPairsStats(const Graph &G) {
  DistanceStats Stats;
  if (G.numNodes() == 0)
    return Stats;
  // One BFS per source, spread over the global pool. Each BFS owns its
  // distance buffers, so sources are fully independent; the only shared
  // state is the early-out flag, which can only turn a doomed sweep cheaper,
  // never change its result.
  std::atomic<bool> Disconnected{false};
  SweepAccum Acc = ThreadPool::global().parallelMapReduce<SweepAccum>(
      0, G.numNodes(), SweepAccum{},
      [&](uint64_t Source) {
        SweepAccum One;
        if (Disconnected.load(std::memory_order_relaxed)) {
          One.AllConnected = false;
          return One;
        }
        BfsResult R = bfs(G, NodeId(Source));
        if (R.NumReached != G.numNodes()) {
          Disconnected.store(true, std::memory_order_relaxed);
          One.AllConnected = false;
          return One;
        }
        One.Diameter = R.Eccentricity;
        One.DistanceSum = R.DistanceSum;
        return One;
      },
      mergeSweep);
  if (!Acc.AllConnected)
    return Stats; // Connected=false, zeroed metrics.
  Stats.Connected = true;
  Stats.Diameter = Acc.Diameter;
  uint64_t Pairs = uint64_t(G.numNodes()) * (G.numNodes() - 1);
  Stats.AverageDistance = Pairs ? double(Acc.DistanceSum) / double(Pairs) : 0.0;
  return Stats;
}

DistanceStats scg::vertexTransitiveStats(const Graph &G,
                                         NodeId Representative) {
  DistanceStats Stats;
  if (G.numNodes() == 0)
    return Stats;
  BfsResult R = bfs(G, Representative);
  Stats.Connected = (R.NumReached == G.numNodes());
  Stats.Diameter = R.Eccentricity;
  Stats.AverageDistance = G.numNodes() > 1
                              ? double(R.DistanceSum) / (G.numNodes() - 1)
                              : 0.0;
  return Stats;
}

bool scg::isConnectedFromZero(const Graph &G) {
  if (G.numNodes() == 0)
    return true;
  return bfsReachableCount(G, 0) == G.numNodes();
}
