//===- graph/MsBfs.h - Bit-parallel multi-source BFS -----------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-parallel multi-source BFS over CSR adjacency: up to 64 sources
/// advance together, one bit lane per source. Each node carries three
/// 64-bit words (seen / current frontier / next frontier); a level step is
/// one pass ORing every frontier word into its out-neighbors' next words
/// and one pass committing next & ~seen. A node's word update does the
/// work of up to 64 scalar BFS visits, which is what pushes exact
/// all-pairs and fault sweeps from k = 7 to k = 8/9 territory.
///
/// The engine is msBfsCore, a visit-sink template in the bfsCore idiom:
/// the sink fires once per (node, level) with the exact lane mask reaching
/// the node at that level, and everything downstream -- per-source
/// statistics (msBfs), distance matrices (msBfsDistances), whole-graph
/// sweeps (msAllPairsStats) -- is a small inlined sink over it.
///
/// Determinism: the traversal is branch-free bit algebra over a fixed
/// node order, so a batch's results are a pure function of (graph, source
/// list). msAllPairsStats reduces batches with AND / max / exact integer
/// sums through the ThreadPool's order-independent fold, so parallel runs
/// are byte-identical to serial ones (pinned by tests/MsBfsTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_MSBFS_H
#define SCG_GRAPH_MSBFS_H

#include "graph/Bfs.h"
#include "graph/Csr.h"
#include "graph/Metrics.h"

#include <bit>
#include <cassert>
#include <span>
#include <vector>

namespace scg {

/// Number of BFS sources a single batch advances in bit-parallel: one per
/// bit of the per-node frontier word.
constexpr unsigned MsBfsLanes = 64;

/// Level-synchronous bit-parallel BFS from \p Sources (at most MsBfsLanes)
/// over \p G. Lane i is the BFS from Sources[i]. \p Visit is invoked as
/// Visit(Node, LaneMask, Level) exactly once for every node some lane
/// reaches, per level at which new lanes reach it: LaneMask holds exactly
/// the lanes whose BFS first reaches Node at distance Level. Level 0 calls
/// cover the sources themselves (duplicated sources share one call with
/// both lanes set). Calls are emitted in ascending (Level, Node) order,
/// so any fold over them is deterministic.
template <typename OnVisit>
void msBfsCore(const Csr &G, std::span<const NodeId> Sources,
               OnVisit &&Visit) {
  assert(Sources.size() <= MsBfsLanes && "at most 64 lanes per batch");
  const NodeId N = G.numNodes();
  if (Sources.empty() || N == 0)
    return;
  std::vector<uint64_t> Seen(N, 0), Frontier(N, 0), Next(N, 0);
  for (size_t Lane = 0; Lane != Sources.size(); ++Lane) {
    assert(Sources[Lane] < N && "source out of range");
    Frontier[Sources[Lane]] |= uint64_t(1) << Lane;
  }
  // Level-0 visits: one call per distinct source node, in node order.
  // Seen doubles as the "already emitted" marker here.
  for (NodeId S : Sources) {
    if (Seen[S])
      continue;
    Seen[S] = Frontier[S];
    Visit(S, Frontier[S], uint32_t(0));
  }

  for (uint32_t Level = 1;; ++Level) {
    // Push: every frontier word flows into the out-neighbors' next words.
    for (NodeId Node = 0; Node != N; ++Node) {
      uint64_t F = Frontier[Node];
      if (!F)
        continue;
      for (NodeId To : G.neighbors(Node))
        Next[To] |= F;
    }
    // Commit: lanes not yet seen become the new frontier; visit them.
    uint64_t AnyNew = 0;
    for (NodeId Node = 0; Node != N; ++Node) {
      uint64_t New = Next[Node] & ~Seen[Node];
      Next[Node] = 0;
      Frontier[Node] = New;
      if (New) {
        Seen[Node] |= New;
        AnyNew |= New;
        Visit(Node, New, Level);
      }
    }
    if (!AnyNew)
      return;
  }
}

/// Per-source results of one bit-parallel batch, indexed like \p Sources.
/// Field semantics match BfsResult (eccentricity = largest finite
/// distance, reached count includes the source, distance sum over finite
/// distances) so scalar and bit-parallel engines are directly comparable.
struct MsBfsBatch {
  std::vector<uint32_t> Eccentricity;
  std::vector<uint64_t> NumReached;
  std::vector<uint64_t> DistanceSum;
};

/// Runs one batch and accumulates the per-source statistics.
MsBfsBatch msBfs(const Csr &G, std::span<const NodeId> Sources);

/// Full distance vectors per source (UnreachableDistance where a lane
/// never arrives). Row i is the distance vector of Sources[i]; byte-equal
/// to bfs(G, Sources[i]).Distance. Mainly for differential tests and
/// dilation-style consumers that need the whole matrix slice.
std::vector<std::vector<uint32_t>> msBfsDistances(const Csr &G,
                                                  std::span<const NodeId>
                                                      Sources);

/// All-pairs distance statistics over \p G: sources batched 64 per word,
/// batches spread over the global ThreadPool (SCG_THREADS=1 forces
/// serial), results byte-identical at every thread count. This is the
/// engine behind allPairsStats(const Graph &); call it directly when a
/// Csr is already at hand (e.g. ExplicitScg::toCsr()).
DistanceStats msAllPairsStats(const Csr &G);

} // namespace scg

#endif // SCG_GRAPH_MSBFS_H
