//===- graph/MsBfs.h - Bit-parallel multi-source BFS -----------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-parallel multi-source BFS over CSR adjacency: up to 64 sources
/// advance together, one bit lane per source. Each node carries 64-bit
/// seen / frontier words; a word update does the work of up to 64 scalar
/// BFS visits, which is what pushes exact all-pairs and fault sweeps from
/// k = 7 into k = 9/10 territory.
///
/// Two engines share the visit-sink idiom (the sink fires once per
/// (node, level) with the exact lane mask first reaching the node then):
///
///  * msBfsCore -- the top-down (push) reference engine: every level
///    scans all N frontier words and ORs each live word into its
///    out-neighbors' next words. Simple, allocation-reusing, and the
///    baseline the hybrid is differentially pinned against.
///
///  * msBfsHybridCore -- the direction-optimizing production engine
///    (Beamer-style). Sparse levels run the push pass over an explicit
///    frontier worklist (no O(N) scans); dense levels run a pull pass
///    over the transpose: each not-yet-saturated node ORs its
///    in-neighbors' frontier words, early-exiting the moment every lane
///    it still lacks has been found, and nodes whose seen word fills up
///    are compacted out of the active list for the rest of the batch. A
///    frontier-density heuristic (pure function of worklist sizes, so
///    fully deterministic) switches direction per level.
///
/// The hybrid is a thin adapter over a W-lane-word fused implementation
/// (detail::msBfsFusedImpl): each node carries W consecutive 64-bit lane
/// words, so one task advances 64*W sources and every random bitmap
/// access touches W*8 contiguous bytes. msAllPairsStats instantiates
/// W = MsBfsFusedWords = 8 -- one full cache line per node per bitmap --
/// which is where most of the engine's memory-bandwidth win comes from.
/// Sinks exposing a `level(Level, NewVisits)` member get one per-level
/// popcount tally instead of hundreds of millions of per-word callbacks.
///
/// Both engines draw their bitmap arrays and worklists from per-thread
/// reusable scratch (support/Scratch.h) -- a 56k-batch sweep at k = 10
/// would otherwise malloc three multi-megabyte arrays per batch.
///
/// Determinism: traversal is bit algebra over fixed node orders, so a
/// batch's visit sequence is a pure function of (graph, source list,
/// engine). Levels ascend; within a level the push reference emits in
/// ascending node order, the hybrid in a deterministic engine-specific
/// order -- all in-tree sinks fold with order-independent operations
/// (integer sums / max / OR), so the two engines produce byte-identical
/// statistics and distance rows (push vs scalar pinned by
/// tests/MsBfsTest.cpp, hybrid vs push by tests/MsBfsHybridTest.cpp).
/// msAllPairsStats reduces batches through the ThreadPool's
/// order-independent fold, so parallel runs are byte-identical to serial.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_MSBFS_H
#define SCG_GRAPH_MSBFS_H

#include "graph/Bfs.h"
#include "graph/Csr.h"
#include "graph/Metrics.h"
#include "support/Scratch.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>
#include <span>
#include <vector>

namespace scg {

class MetricsRegistry;

/// Number of BFS sources a single batch advances in bit-parallel: one per
/// bit of the per-node frontier word.
constexpr unsigned MsBfsLanes = 64;

/// Lane words per node in the fused all-pairs sweep: 8 words = 512
/// sources per task = one full 64-byte cache line per node, so every
/// random bitmap access during push scatter / pull gather uses the whole
/// line it faults in instead of one eighth of it. Sweep statistics are
/// sums / maxima over (source, node) pairs, so regrouping 64-lane batches
/// into 512-lane tasks cannot change any result bit.
constexpr unsigned MsBfsFusedWords = 8;

/// Which multi-source engine a sweep runs on.
enum class MsBfsEngine {
  Push,  ///< top-down reference: full word scan per level.
  Hybrid ///< direction-optimizing push/pull with frontier worklists.
};

/// Reusable per-batch state. One batch needs three N-word bitmap arrays
/// plus up-to-N-entry worklists; engines assign()/clear() every field
/// they use, so a warm scratch object is observationally identical to a
/// fresh one (support/Scratch.h contract). msAllPairsStats keeps one per
/// worker thread; callers invoking an engine directly may pass their own
/// or let the engine use the calling thread's.
struct MsBfsScratch {
  std::vector<uint64_t> Seen, Frontier, Next;
  std::vector<NodeId> CurList;  ///< nodes with a nonzero frontier word.
  std::vector<NodeId> NextList; ///< nodes touched while building the next level.
  std::vector<NodeId> Unseen;   ///< hybrid: nodes whose seen word is not full.
  std::vector<NodeId> Sources;  ///< sweep drivers' batch source staging.
  /// True when the last engine run completed, which leaves Frontier and
  /// Next all-zero (every dead word is zeroed on commit and the final
  /// level has no live ones) -- the next same-size run then skips two
  /// large memsets. Engines clear the flag on entry and set it on exit.
  bool LaneWordsClean = false;
};

/// Work counters a hybrid traversal can report, one increment per word
/// read or written in a level pass. Order-independent integer sums, so
/// sweep-level aggregates are byte-identical at every thread count (on
/// connected graphs; the disconnected early-out may skip batches). These
/// are what the `distance.*` metrics and bench JSON expose to explain
/// *why* the hybrid wins: pull words saved per switched level.
struct MsBfsCounters {
  uint64_t Batches = 0;           ///< engine invocations folded in.
  uint64_t PushLevels = 0;        ///< levels run top-down.
  uint64_t PullLevels = 0;        ///< levels run bottom-up.
  uint64_t PushWords = 0;         ///< words touched by push passes.
  uint64_t PullWords = 0;         ///< words touched by pull passes.
  uint64_t DirectionSwitches = 0; ///< level-to-level direction changes.

  MsBfsCounters &operator+=(const MsBfsCounters &O) {
    Batches += O.Batches;
    PushLevels += O.PushLevels;
    PullLevels += O.PullLevels;
    PushWords += O.PushWords;
    PullWords += O.PullWords;
    DirectionSwitches += O.DirectionSwitches;
    return *this;
  }
};

namespace detail {

/// Resets a lane-word array for a new run. Seen must be wiped, but
/// Frontier / Next are all-zero whenever an engine ran to completion on
/// them (the commit loops zero every dead word and the final level leaves
/// no live ones), so a correctly-sized warm buffer skips the memset --
/// worth ~20% of a small-k group. A resize from another graph size can
/// expose stale words, so only the size-match fast path may skip. First
/// growth of a buffer advises huge pages before the touching assign: the
/// big-k bitmaps are exactly the randomly-accessed multi-megabyte arrays
/// reserveHugePages is for.
inline void resetLaneWords(std::vector<uint64_t> &Buf, size_t Size,
                           bool KnownZero) {
  if (KnownZero && Buf.size() == Size) {
    // Asserts stay live in this project; a full verify loop would cost
    // what the fast path saves, so spot-check the invariant instead (the
    // differential tests exercise warm reuse exhaustively).
    assert((Buf.empty() ||
            (Buf.front() == 0 && Buf[Size / 2] == 0 && Buf.back() == 0)) &&
           "warm lane buffer must be all-zero");
    return;
  }
  reserveHugePages(Buf, Size);
  Buf.assign(Size, 0);
}

} // namespace detail

/// Level-synchronous bit-parallel BFS from \p Sources (at most MsBfsLanes)
/// over \p G -- the top-down reference engine. Lane i is the BFS from
/// Sources[i]. \p Visit is invoked as Visit(Node, LaneMask, Level) exactly
/// once for every node some lane reaches, per level at which new lanes
/// reach it: LaneMask holds exactly the lanes whose BFS first reaches Node
/// at distance Level. Level 0 calls cover the sources themselves
/// (duplicated sources share one call with both lanes set). Calls are
/// emitted in ascending (Level, Node) order. Bitmaps come from \p Scratch
/// (the calling thread's shared scratch when null).
template <typename OnVisit>
void msBfsCore(const Csr &G, std::span<const NodeId> Sources, OnVisit &&Visit,
               MsBfsScratch *Scratch = nullptr) {
  assert(Sources.size() <= MsBfsLanes && "at most 64 lanes per batch");
  const NodeId N = G.numNodes();
  if (Sources.empty() || N == 0)
    return;
  MsBfsScratch &S = Scratch ? *Scratch : threadScratch<MsBfsScratch>();
  detail::resetLaneWords(S.Seen, N, /*KnownZero=*/false);
  detail::resetLaneWords(S.Frontier, N, S.LaneWordsClean);
  detail::resetLaneWords(S.Next, N, S.LaneWordsClean);
  S.LaneWordsClean = false;
  uint64_t *Seen = S.Seen.data(), *Frontier = S.Frontier.data(),
           *Next = S.Next.data();
  for (size_t Lane = 0; Lane != Sources.size(); ++Lane) {
    assert(Sources[Lane] < N && "source out of range");
    Frontier[Sources[Lane]] |= uint64_t(1) << Lane;
  }
  // Level-0 visits: one call per distinct source node, in node order.
  // Seen doubles as the "already emitted" marker here.
  for (NodeId Src : Sources) {
    if (Seen[Src])
      continue;
    Seen[Src] = Frontier[Src];
    Visit(Src, Frontier[Src], uint32_t(0));
  }

  const NodeId *Adj = G.adjacencyData();
  const uint64_t *Off = G.offsetsData();
  for (uint32_t Level = 1;; ++Level) {
    // Push: every frontier word flows into the out-neighbors' next words.
    for (NodeId Node = 0; Node != N; ++Node) {
      uint64_t F = Frontier[Node];
      if (!F)
        continue;
      for (uint64_t E = Off[Node], End = Off[Node + 1]; E != End; ++E)
        Next[Adj[E]] |= F;
    }
    // Commit: lanes not yet seen become the new frontier; visit them.
    uint64_t AnyNew = 0;
    for (NodeId Node = 0; Node != N; ++Node) {
      uint64_t New = Next[Node] & ~Seen[Node];
      Next[Node] = 0;
      Frontier[Node] = New;
      if (New) {
        Seen[Node] |= New;
        AnyNew |= New;
        Visit(Node, New, Level);
      }
    }
    if (!AnyNew) {
      // Next is fully re-zeroed and the dead frontier words above are all
      // zero too: record the clean-buffer invariant for the next run.
      S.LaneWordsClean = true;
      return;
    }
  }
}

namespace detail {

/// Direction heuristic. Unlike single-source BFS (where one found parent
/// ends a bottom-up row), a pull row only early-exits once *every* lane
/// the node still lacks has been gathered, so pulling pays off late: when
/// the frontier worklist has caught up with the shrinking unsaturated
/// list (measured profile on star(7): frontier reaches ~98% of nodes two
/// levels before saturation starts collapsing Unseen). A level therefore
/// pulls when |frontier| >= |unseen|, and otherwise pushes -- over a
/// worklist while the frontier is sparse (< 1/MsBfsDenseFraction of the
/// graph), with plain full-array scans once it is dense and the per-edge
/// worklist bookkeeping costs more than the scan it avoids. Both choices
/// are pure functions of worklist sizes: deterministic at every thread
/// count.
constexpr uint64_t MsBfsDenseFraction = 16;

/// Worklist lookahead (in nodes) for software prefetch of lane lines.
/// Dense levels chase random cache lines through L3 / DRAM; prefetching a
/// few nodes ahead keeps several misses in flight instead of serializing
/// on each one. Pure hint: no effect on results.
constexpr size_t MsBfsPrefetchAhead = 8;

/// The direction-optimizing engine, generalized over the number of
/// 64-bit lane words each node carries. W = 1 is the public 64-lane
/// engine; the all-pairs sweep instantiates W = MsBfsFusedWords so one
/// task advances 512 sources and every random bitmap access works on a
/// full cache line instead of one word of it (batch fusion, the key
/// memory-efficiency trick from the MS-BFS literature). \p Visit fires as
/// Visit(Node, WordIdx, NewMask, Level) once per (node, word) with newly
/// arrived lanes; lane WordIdx * 64 + bit is Sources[same index].
template <unsigned W, bool WithCounters, typename OnVisit>
void msBfsFusedImpl(const Csr &G, const Csr &GT,
                    std::span<const NodeId> Sources, OnVisit &&Visit,
                    MsBfsCounters *Counters, MsBfsScratch &S) {
  static_assert(W >= 1 && W <= 16, "at most two cache lines per node");
  const NodeId N = G.numNodes();
  assert(GT.numNodes() == N && GT.numEdges() == G.numEdges() &&
         "transpose must match the forward graph");
  assert(Sources.size() <= size_t(W) * 64 && "too many lanes for W words");
  if (Sources.empty() || N == 0)
    return;
  // Per-word full masks; a short tail group leaves trailing words zero,
  // which makes their Remain vacuously empty everywhere below.
  uint64_t Full[W];
  for (unsigned Word = 0; Word != W; ++Word) {
    size_t Lanes = Sources.size() > size_t(Word) * 64
                       ? std::min<size_t>(64, Sources.size() - size_t(Word) * 64)
                       : 0;
    Full[Word] = Lanes == 64 ? ~uint64_t(0) : (uint64_t(1) << Lanes) - 1;
  }
  detail::resetLaneWords(S.Seen, size_t(N) * W, /*KnownZero=*/false);
  detail::resetLaneWords(S.Frontier, size_t(N) * W, S.LaneWordsClean);
  detail::resetLaneWords(S.Next, size_t(N) * W, S.LaneWordsClean);
  S.LaneWordsClean = false;
  S.CurList.clear();
  S.NextList.clear();
  S.Unseen.resize(N);
  std::iota(S.Unseen.begin(), S.Unseen.end(), NodeId(0));
  uint64_t *Seen = S.Seen.data();
  for (size_t Lane = 0; Lane != Sources.size(); ++Lane) {
    assert(Sources[Lane] < N && "source out of range");
    S.Frontier[size_t(Sources[Lane]) * W + Lane / 64] |= uint64_t(1)
                                                         << (Lane % 64);
  }
  // Statistics sinks only need the number of lanes arriving per level,
  // not which ones: when the sink exposes level(Level, NewVisits), the
  // commit loops accumulate branchless popcounts (one vector op per node
  // at W = 8) and fire the sink once per level instead of once per
  // nonzero (node, word). Pure sum regrouping -- results are identical.
  constexpr bool PerLevel =
      requires { Visit.level(uint32_t(0), uint64_t(0)); };
  uint64_t LevelPop = 0;
  for (NodeId Src : Sources) {
    uint64_t Already = 0;
    for (unsigned Word = 0; Word != W; ++Word)
      Already |= Seen[size_t(Src) * W + Word];
    if (Already)
      continue; // duplicate source: lanes shared the first node's visits.
    S.CurList.push_back(Src);
    for (unsigned Word = 0; Word != W; ++Word) {
      uint64_t F = S.Frontier[size_t(Src) * W + Word];
      Seen[size_t(Src) * W + Word] = F;
      if constexpr (PerLevel)
        LevelPop += uint64_t(std::popcount(F));
      else if (F)
        Visit(Src, Word, F, uint32_t(0));
    }
  }
  if constexpr (PerLevel) {
    if (LevelPop)
      Visit.level(uint32_t(0), LevelPop);
    LevelPop = 0;
  }

  if constexpr (WithCounters)
    Counters->Batches += (Sources.size() + 63) / 64; // 64-lane equivalents.
  const NodeId *Adj = G.adjacencyData();
  const uint64_t *Off = G.offsetsData();
  const NodeId *RevAdj = GT.adjacencyData();
  const uint64_t *RevOff = GT.offsetsData();
  bool PrevPull = false;
  for (uint32_t Level = 1;; ++Level) {
    // Frontier / Next are double buffers: at the top of every level Next
    // is all-zero, Frontier's nonzero words are exactly CurList, and
    // Unseen (ascending, possibly stale-saturated between pull levels)
    // covers every node whose seen word might still grow.
    const bool Pull = S.CurList.size() >= S.Unseen.size();
    const bool Dense =
        !Pull && S.CurList.size() * MsBfsDenseFraction >= uint64_t(N);
    if constexpr (WithCounters) {
      if (Level > 1 && Pull != PrevPull)
        ++Counters->DirectionSwitches;
      ++(Pull ? Counters->PullLevels : Counters->PushLevels);
    }
    PrevPull = Pull;
    uint64_t Words = 0;
    const uint64_t *Frontier = S.Frontier.data();
    uint64_t *Next = S.Next.data();
    if (Pull) {
      // Bottom-up: each unsaturated node gathers its in-neighbors'
      // frontier words, stopping as soon as the lanes it still lacks are
      // all found; saturated nodes drop out of Unseen for good.
      size_t Live = 0;
      const NodeId *UnseenArr = S.Unseen.data();
      const size_t UnseenSize = S.Unseen.size();
      for (size_t I = 0; I != UnseenSize; ++I) {
        // The gather chases random lane lines through L3 / DRAM; issuing
        // the next few nodes' lines ahead keeps several misses in flight
        // instead of serializing on each one.
        if (I + MsBfsPrefetchAhead < UnseenSize) {
          NodeId VP = UnseenArr[I + MsBfsPrefetchAhead];
          __builtin_prefetch(Seen + size_t(VP) * W, 1);
          for (uint64_t E = RevOff[VP], End = RevOff[VP + 1]; E != End; ++E)
            __builtin_prefetch(Frontier + size_t(RevAdj[E]) * W, 0);
        }
        NodeId V = UnseenArr[I];
        uint64_t *SeenV = Seen + size_t(V) * W;
        uint64_t Remain[W], AnyRemain = 0;
        for (unsigned Word = 0; Word != W; ++Word) {
          Remain[Word] = Full[Word] & ~SeenV[Word];
          AnyRemain |= Remain[Word];
        }
        if (!AnyRemain) {
          if constexpr (WithCounters)
            Words += W;
          continue; // saturated since the last pull level: compact away.
        }
        uint64_t New[W] = {};
        uint64_t E = RevOff[V];
        for (uint64_t End = RevOff[V + 1]; E != End; ++E) {
          const uint64_t *FU = Frontier + size_t(RevAdj[E]) * W;
          uint64_t Missing = 0;
          for (unsigned Word = 0; Word != W; ++Word) {
            New[Word] |= FU[Word];
            Missing |= Remain[Word] & ~New[Word];
          }
          if (!Missing) {
            ++E; // count the line just read, then stop scanning:
            break; // every missing lane found; the rest can add nothing.
          }
        }
        if constexpr (WithCounters)
          Words += W * (1 + (E - RevOff[V]));
        uint64_t AnyNew = 0, Unsaturated = 0;
        for (unsigned Word = 0; Word != W; ++Word) {
          New[Word] &= Remain[Word];
          AnyNew |= New[Word];
          Unsaturated |= Remain[Word] & ~New[Word];
        }
        if (AnyNew) {
          uint64_t *NextV = Next + size_t(V) * W;
          for (unsigned Word = 0; Word != W; ++Word) {
            SeenV[Word] |= New[Word];
            NextV[Word] = New[Word];
            if constexpr (PerLevel)
              LevelPop += uint64_t(std::popcount(New[Word]));
            else if (New[Word])
              Visit(V, Word, New[Word], Level);
          }
          S.NextList.push_back(V);
          if (!Unsaturated)
            continue; // just saturated: compact away.
        }
        S.Unseen[Live++] = V;
      }
      S.Unseen.resize(Live);
    } else if (Dense) {
      // Dense top-down: scatter without per-edge worklist bookkeeping (the
      // next frontier will cover most of the graph anyway), then commit
      // with one ascending full-array scan that rebuilds the worklist.
      const NodeId *CurArr = S.CurList.data();
      const size_t CurSize = S.CurList.size();
      for (size_t I = 0; I != CurSize; ++I) {
        if (I + MsBfsPrefetchAhead < CurSize) {
          NodeId VP = CurArr[I + MsBfsPrefetchAhead];
          __builtin_prefetch(Frontier + size_t(VP) * W, 0);
          for (uint64_t E = Off[VP], End = Off[VP + 1]; E != End; ++E)
            __builtin_prefetch(Next + size_t(Adj[E]) * W, 1);
        }
        NodeId V = CurArr[I];
        const uint64_t *F = Frontier + size_t(V) * W;
        for (uint64_t E = Off[V], End = Off[V + 1]; E != End; ++E) {
          uint64_t *NextTo = Next + size_t(Adj[E]) * W;
          for (unsigned Word = 0; Word != W; ++Word)
            NextTo[Word] |= F[Word];
        }
        if constexpr (WithCounters)
          Words += W * (1 + (Off[V + 1] - Off[V]));
      }
      for (NodeId V = 0; V != N; ++V) {
        uint64_t *NextV = Next + size_t(V) * W;
        uint64_t *SeenV = Seen + size_t(V) * W;
        uint64_t New[W], AnyNew = 0;
        for (unsigned Word = 0; Word != W; ++Word) {
          New[Word] = NextV[Word] & ~SeenV[Word];
          AnyNew |= New[Word];
        }
        if (AnyNew) {
          for (unsigned Word = 0; Word != W; ++Word) {
            NextV[Word] = New[Word];
            SeenV[Word] |= New[Word];
            if constexpr (PerLevel)
              LevelPop += uint64_t(std::popcount(New[Word]));
            else if (New[Word])
              Visit(V, Word, New[Word], Level);
          }
          S.NextList.push_back(V);
        } else {
          for (unsigned Word = 0; Word != W; ++Word)
            NextV[Word] = 0;
        }
      }
      if constexpr (WithCounters)
        Words += 2 * uint64_t(N) * W;
    } else {
      // Sparse top-down over the worklist: never touches the other
      // N - |frontier| words.
      for (NodeId V : S.CurList) {
        const uint64_t *F = Frontier + size_t(V) * W;
        for (uint64_t E = Off[V], End = Off[V + 1]; E != End; ++E) {
          NodeId To = Adj[E];
          uint64_t *NextTo = Next + size_t(To) * W;
          uint64_t Old = 0;
          for (unsigned Word = 0; Word != W; ++Word)
            Old |= NextTo[Word];
          if (!Old)
            S.NextList.push_back(To);
          for (unsigned Word = 0; Word != W; ++Word)
            NextTo[Word] |= F[Word];
        }
        if constexpr (WithCounters)
          Words += W * (1 + (Off[V + 1] - Off[V]));
      }
      // Commit in place: survivors keep their masked word and stay on the
      // list (in discovery order -- deterministic), dead entries zero out.
      size_t Live = 0;
      for (NodeId To : S.NextList) {
        uint64_t *NextTo = Next + size_t(To) * W;
        uint64_t *SeenTo = Seen + size_t(To) * W;
        uint64_t New[W], AnyNew = 0;
        for (unsigned Word = 0; Word != W; ++Word) {
          New[Word] = NextTo[Word] & ~SeenTo[Word];
          AnyNew |= New[Word];
        }
        if constexpr (WithCounters)
          Words += 2 * W;
        if (AnyNew) {
          for (unsigned Word = 0; Word != W; ++Word) {
            NextTo[Word] = New[Word];
            SeenTo[Word] |= New[Word];
            if constexpr (PerLevel)
              LevelPop += uint64_t(std::popcount(New[Word]));
            else if (New[Word])
              Visit(To, Word, New[Word], Level);
          }
          S.NextList[Live++] = To;
        } else {
          for (unsigned Word = 0; Word != W; ++Word)
            NextTo[Word] = 0;
        }
      }
      S.NextList.resize(Live);
    }
    if constexpr (WithCounters)
      (Pull ? Counters->PullWords : Counters->PushWords) += Words;
    if constexpr (PerLevel) {
      if (LevelPop) {
        Visit.level(Level, LevelPop);
        LevelPop = 0;
      }
    }
    // Swap buffers: zero the old frontier words, then Next becomes
    // Frontier and NextList becomes CurList. CurList is exactly the
    // nonzero set; when it covers most of the graph a straight-line fill
    // beats the scattered stores.
    if (S.CurList.size() * 4 >= uint64_t(N)) {
      std::fill(S.Frontier.begin(), S.Frontier.end(), uint64_t(0));
    } else {
      for (NodeId V : S.CurList)
        for (unsigned Word = 0; Word != W; ++Word)
          S.Frontier[size_t(V) * W + Word] = 0;
    }
    S.Frontier.swap(S.Next);
    S.CurList.swap(S.NextList);
    S.NextList.clear();
    if (S.CurList.empty()) {
      S.LaneWordsClean = true;
      return;
    }
  }
}

} // namespace detail

/// Direction-optimizing bit-parallel BFS (see file comment): push over an
/// explicit frontier worklist on sparse levels, pull over the transpose
/// \p GT with per-node early exit and saturation compaction on dense
/// levels. Visit contract matches msBfsCore except within-level order,
/// which is deterministic but engine-specific; per-(node, level) lane
/// masks are identical to the push engine's. \p Counters, when non-null,
/// accumulates word-touch telemetry (the counted run executes the same
/// traversal; counting is compiled out otherwise).
template <typename OnVisit>
void msBfsHybridCore(const Csr &G, const Csr &GT,
                     std::span<const NodeId> Sources, OnVisit &&Visit,
                     MsBfsCounters *Counters = nullptr,
                     MsBfsScratch *Scratch = nullptr) {
  assert(Sources.size() <= MsBfsLanes && "at most 64 lanes per batch");
  MsBfsScratch &S = Scratch ? *Scratch : threadScratch<MsBfsScratch>();
  // Adapt the single-word impl sink (word index is always 0 at W = 1) to
  // the public 64-lane signature.
  auto Sink = [&Visit](NodeId Node, unsigned, uint64_t Mask, uint32_t Level) {
    Visit(Node, Mask, Level);
  };
  if (Counters)
    detail::msBfsFusedImpl<1, true>(G, GT, Sources, Sink, Counters, S);
  else
    detail::msBfsFusedImpl<1, false>(G, GT, Sources, Sink, nullptr, S);
}

/// Per-source results of one bit-parallel batch, indexed like \p Sources.
/// Field semantics match BfsResult (eccentricity = largest finite
/// distance, reached count includes the source, distance sum over finite
/// distances) so scalar and bit-parallel engines are directly comparable.
struct MsBfsBatch {
  std::vector<uint32_t> Eccentricity;
  std::vector<uint64_t> NumReached;
  std::vector<uint64_t> DistanceSum;
};

/// Runs one push-engine batch and accumulates the per-source statistics.
MsBfsBatch msBfs(const Csr &G, std::span<const NodeId> Sources);

/// msBfs on the hybrid engine; byte-identical to msBfs (differential pin
/// in tests/MsBfsTest.cpp). \p GT must be G.transpose().
MsBfsBatch msBfsHybrid(const Csr &G, const Csr &GT,
                       std::span<const NodeId> Sources);

/// Full distance vectors per source (UnreachableDistance where a lane
/// never arrives). Row i is the distance vector of Sources[i]; byte-equal
/// to bfs(G, Sources[i]).Distance. Mainly for differential tests and
/// dilation-style consumers that need the whole matrix slice.
std::vector<std::vector<uint32_t>> msBfsDistances(const Csr &G,
                                                  std::span<const NodeId>
                                                      Sources);

/// msBfsDistances on the hybrid engine; rows byte-equal to the push
/// engine's. \p GT must be G.transpose().
std::vector<std::vector<uint32_t>>
msBfsDistancesHybrid(const Csr &G, const Csr &GT,
                     std::span<const NodeId> Sources);

/// Sentinel byte for "no path" in compact one-byte distance rows.
constexpr uint8_t MsBfsUnreachableByte = 0xFF;

/// Compact single-source distance row: entry v is d(\p Source, v) as one
/// byte, MsBfsUnreachableByte where no path exists. Asserts every finite
/// distance stays below the sentinel (SCG diameters at enumerable k are
/// two digits). This is the export the query layer's TableStore
/// serializes -- one byte per node keeps a k = 10 table at 3.6 MB, and
/// a row is all a vertex-transitive network needs for exact all-pairs
/// service (d(U, V) = d(id, U^-1 o V)).
std::vector<uint8_t> msBfsDistanceRow(const Csr &G, NodeId Source);

/// Sweep configuration for msAllPairsStats.
struct MsSweepOptions {
  /// Engine selection; Hybrid is the production default, Push the
  /// differential / bench baseline.
  MsBfsEngine Engine = MsBfsEngine::Hybrid;
  /// When non-null, the sweep publishes `distance.*` counters here
  /// (hybrid engine only): words touched per direction, direction
  /// switches, level and batch totals. On connected graphs the published
  /// values are byte-identical at every thread count.
  MetricsRegistry *Metrics = nullptr;
};

/// All-pairs distance statistics over \p G: sources batched 64 per word,
/// batches spread over the global ThreadPool (SCG_THREADS=1 forces
/// serial), results byte-identical at every thread count and across
/// engines. This is the engine behind allPairsStats(const Graph &); call
/// it directly when a Csr is already at hand (e.g. ExplicitScg::toCsr()).
/// The hybrid engine builds the transpose once per sweep (O(V + E), noise
/// next to the sweep).
DistanceStats msAllPairsStats(const Csr &G, const MsSweepOptions &Opts);
DistanceStats msAllPairsStats(const Csr &G);

} // namespace scg

#endif // SCG_GRAPH_MSBFS_H
