//===- graph/Containers.cpp - Node-disjoint path containers --------------===//

#include "graph/Containers.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace scg;

namespace {

/// Residual arc of the unit-capacity flow network. Orig distinguishes the
/// forward arcs (capacity 1) from their zero-capacity residual twins, and
/// doubles as the "already consumed by path extraction" marker.
struct Arc {
  uint32_t To;   ///< head, in split-node ids.
  uint32_t Rev;  ///< index of the twin arc in Net[To].
  uint8_t Cap;   ///< residual capacity (0 or 1).
  uint8_t Orig;  ///< original capacity (0 for residual twins).
};

/// The split-node flow network: node v of G becomes v_in = 2v (all
/// in-arcs) and v_out = 2v + 1 (all out-arcs), joined by a capacity-1
/// split arc -- the unit vertex capacity that makes flow paths
/// node-disjoint, not just arc-disjoint (Menger via Even-Tarjan). The
/// source's and sink's split arcs are omitted: Src_out is the flow source
/// and Dst_in the sink, so neither endpoint consumes vertex capacity and
/// the endpoints may be shared by every path.
class SplitFlowNet {
public:
  SplitFlowNet(const Graph &G, NodeId Src, NodeId Dst)
      : Net(2 * size_t(G.numNodes())), Source(out(Src)), Sink(in(Dst)) {
    for (NodeId V = 0; V != G.numNodes(); ++V) {
      if (V != Src && V != Dst)
        addArc(in(V), out(V));
      for (NodeId W : G.neighbors(V))
        addArc(out(V), in(W));
    }
  }

  static uint32_t in(NodeId V) { return 2 * V; }
  static uint32_t out(NodeId V) { return 2 * V + 1; }

  /// One shortest-augmenting-path step: BFS the residual network from the
  /// source and push one unit along the first Sink-reaching path found.
  /// Deterministic (adjacency order). Returns false when the flow is
  /// maximum.
  bool augment() {
    Parent.assign(Net.size(), NoParent);
    Queue.clear();
    Queue.push_back(Source);
    Parent[Source] = ArrivalPending; // any non-sentinel: never walked back.
    for (size_t Head = 0; Head != Queue.size(); ++Head) {
      uint32_t Node = Queue[Head];
      if (Node == Sink)
        break;
      for (uint32_t A = 0; A != Net[Node].size(); ++A) {
        const Arc &Edge = Net[Node][A];
        if (Edge.Cap == 0 || Parent[Edge.To] != NoParent)
          continue;
        Parent[Edge.To] = encode(Node, A);
        Queue.push_back(Edge.To);
      }
    }
    if (Parent[Sink] == NoParent)
      return false;
    for (uint32_t Node = Sink; Node != Source;) {
      auto [Prev, A] = decode(Parent[Node]);
      Arc &Edge = Net[Prev][A];
      --Edge.Cap;
      ++Net[Edge.To][Edge.Rev].Cap;
      Node = Prev;
    }
    return true;
  }

  /// Decomposes the integral flow into node sequences Src..Dst. Each
  /// internal node carries at most one unit (its split arc), so following
  /// the unique saturated forward arc out of every visited node is a
  /// deterministic walk that must end at the sink; flow cycles (possible
  /// after residual cancellation) are node-disjoint from these walks and
  /// are simply never entered.
  std::vector<std::vector<NodeId>> extractPaths(NodeId Src, NodeId Dst) {
    std::vector<std::vector<NodeId>> Paths;
    for (Arc &First : Net[Source]) {
      if (First.Orig == 0 || First.Cap != 0)
        continue; // residual twin, or a fault-free forward arc.
      First.Orig = 0; // consume.
      std::vector<NodeId> Path{Src};
      NodeId Cur = NodeId(First.To / 2);
      Path.push_back(Cur);
      while (Cur != Dst) {
        bool Advanced = false;
        for (Arc &Edge : Net[out(Cur)]) {
          if (Edge.Orig == 0 || Edge.Cap != 0)
            continue;
          Edge.Orig = 0;
          Cur = NodeId(Edge.To / 2);
          Path.push_back(Cur);
          Advanced = true;
          break;
        }
        assert(Advanced && "flow conservation violated in decomposition");
        if (!Advanced)
          break; // defensive: drop the malformed path.
      }
      if (Cur == Dst)
        Paths.push_back(std::move(Path));
    }
    return Paths;
  }

private:
  static constexpr uint64_t NoParent = ~uint64_t(0);
  static constexpr uint64_t ArrivalPending = NoParent - 1;

  static uint64_t encode(uint32_t Node, uint32_t A) {
    return (uint64_t(Node) << 32) | A;
  }
  static std::pair<uint32_t, uint32_t> decode(uint64_t P) {
    return {uint32_t(P >> 32), uint32_t(P)};
  }

  void addArc(uint32_t From, uint32_t To) {
    Net[From].push_back({To, uint32_t(Net[To].size()), 1, 1});
    Net[To].push_back({From, uint32_t(Net[From].size() - 1), 0, 0});
  }

  std::vector<std::vector<Arc>> Net;
  uint32_t Source, Sink;
  std::vector<uint64_t> Parent;
  std::vector<uint32_t> Queue;
};

} // namespace

std::vector<std::vector<NodeId>>
scg::nodeDisjointPaths(const Graph &G, NodeId Src, NodeId Dst,
                       unsigned MaxPaths) {
  assert(Src < G.numNodes() && Dst < G.numNodes() && "node out of range");
  assert(Src != Dst && "container endpoints must differ");
  SplitFlowNet Flow(G, Src, Dst);
  unsigned Units = 0;
  while ((MaxPaths == 0 || Units < MaxPaths) && Flow.augment())
    ++Units;
  std::vector<std::vector<NodeId>> Paths = Flow.extractPaths(Src, Dst);
  assert(Paths.size() == Units && "decomposition lost flow units");
  // Shortest path first, ties in discovery order (both deterministic), so
  // Paths[0] is the fault-free route the router measures overhead against.
  std::stable_sort(Paths.begin(), Paths.end(),
                   [](const std::vector<NodeId> &A,
                      const std::vector<NodeId> &B) {
                     return A.size() < B.size();
                   });
  return Paths;
}

unsigned scg::localConnectivity(const Graph &G, NodeId Src, NodeId Dst) {
  SplitFlowNet Flow(G, Src, Dst);
  unsigned Units = 0;
  while (Flow.augment())
    ++Units;
  return Units;
}

bool scg::internallyNodeDisjoint(
    std::span<const std::vector<NodeId>> Paths) {
  if (Paths.empty())
    return true;
  if (Paths.front().size() < 2)
    return false;
  NodeId Src = Paths.front().front(), Dst = Paths.front().back();
  std::unordered_set<NodeId> Internal;
  for (const std::vector<NodeId> &Path : Paths) {
    if (Path.size() < 2 || Path.front() != Src || Path.back() != Dst)
      return false;
    for (size_t I = 1; I + 1 < Path.size(); ++I)
      // An internal node may appear in no other path (including this one)
      // and may not be an endpoint.
      if (Path[I] == Src || Path[I] == Dst ||
          !Internal.insert(Path[I]).second)
        return false;
  }
  return true;
}

bool scg::isSimplePath(const Graph &G, std::span<const NodeId> Path) {
  if (Path.size() < 2)
    return false;
  std::unordered_set<NodeId> Seen;
  for (NodeId Node : Path)
    if (Node >= G.numNodes() || !Seen.insert(Node).second)
      return false;
  for (size_t I = 0; I + 1 < Path.size(); ++I)
    if (!G.hasEdge(Path[I], Path[I + 1]))
      return false;
  return true;
}
