//===- graph/Bfs.cpp - Breadth-first search over graphs ------------------===//

#include "graph/Bfs.h"

#include <cassert>

using namespace scg;

BfsResult scg::bfs(const Graph &G, NodeId Source) {
  // Concrete functor: the adjacency-span walk inlines into the core loop.
  return bfsCore(G.numNodes(), Source, [&G](NodeId Node, auto &&Sink) {
    for (NodeId Next : G.neighbors(Node))
      Sink(Next);
  });
}

uint64_t scg::bfsReachableCount(const Graph &G, NodeId Source) {
  const uint64_t NumNodes = G.numNodes();
  assert(Source < NumNodes && "source out of range");
  std::vector<bool> Visited(NumNodes, false);
  Visited[Source] = true;
  uint64_t Reached = 1;
  std::vector<NodeId> Queue;
  Queue.reserve(NumNodes);
  Queue.push_back(Source);
  for (size_t Head = 0; Head != Queue.size(); ++Head) {
    for (NodeId Next : G.neighbors(Queue[Head])) {
      if (Visited[Next])
        continue;
      Visited[Next] = true;
      if (++Reached == NumNodes)
        return Reached; // everything reached; the rest of the walk is moot.
      Queue.push_back(Next);
    }
  }
  return Reached;
}

BfsResult scg::bfsImplicit(uint64_t NumNodes, NodeId Source,
                           const NeighborFn &Neighbors) {
  // The legacy type-erased form: the enumerator stays a std::function, but
  // the sink handed to it must also be type-erased to match NeighborFn.
  return bfsCore(NumNodes, Source,
                 [&Neighbors](NodeId Node, auto &&Sink) {
                   std::function<void(NodeId)> ErasedSink = Sink;
                   Neighbors(Node, ErasedSink);
                 });
}
