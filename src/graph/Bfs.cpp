//===- graph/Bfs.cpp - Breadth-first search over graphs ------------------===//

#include "graph/Bfs.h"

#include <cassert>

using namespace scg;

BfsResult scg::bfs(const Graph &G, NodeId Source) {
  // Concrete functor: the adjacency-span walk inlines into the core loop.
  return bfsCore(G.numNodes(), Source, [&G](NodeId Node, auto &&Sink) {
    for (NodeId Next : G.neighbors(Node))
      Sink(Next);
  });
}

BfsResult scg::bfsImplicit(uint64_t NumNodes, NodeId Source,
                           const NeighborFn &Neighbors) {
  // The legacy type-erased form: the enumerator stays a std::function, but
  // the sink handed to it must also be type-erased to match NeighborFn.
  return bfsCore(NumNodes, Source,
                 [&Neighbors](NodeId Node, auto &&Sink) {
                   std::function<void(NodeId)> ErasedSink = Sink;
                   Neighbors(Node, ErasedSink);
                 });
}
