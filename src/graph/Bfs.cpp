//===- graph/Bfs.cpp - Breadth-first search over graphs ------------------===//

#include "graph/Bfs.h"

#include <cassert>
#include <deque>

using namespace scg;

BfsResult scg::bfs(const Graph &G, NodeId Source) {
  return bfsImplicit(G.numNodes(), Source,
                     [&G](NodeId Node, const std::function<void(NodeId)> &Sink) {
                       for (NodeId Next : G.neighbors(Node))
                         Sink(Next);
                     });
}

BfsResult scg::bfsImplicit(uint64_t NumNodes, NodeId Source,
                           const NeighborFn &Neighbors) {
  assert(Source < NumNodes && "source out of range");
  BfsResult Result;
  Result.Distance.assign(NumNodes, UnreachableDistance);
  Result.Parent.assign(NumNodes, 0);
  Result.Distance[Source] = 0;
  Result.Parent[Source] = Source;
  Result.NumReached = 1;

  std::deque<NodeId> Queue;
  Queue.push_back(Source);
  while (!Queue.empty()) {
    NodeId Node = Queue.front();
    Queue.pop_front();
    uint32_t NextDist = Result.Distance[Node] + 1;
    Neighbors(Node, [&](NodeId Next) {
      assert(Next < NumNodes && "neighbor out of range");
      if (Result.Distance[Next] != UnreachableDistance)
        return;
      Result.Distance[Next] = NextDist;
      Result.Parent[Next] = Node;
      Result.Eccentricity = NextDist;
      Result.DistanceSum += NextDist;
      ++Result.NumReached;
      Queue.push_back(Next);
    });
  }
  return Result;
}
