//===- graph/Graph.h - Explicit directed graph container -------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact explicit directed graph with dense node ids. Used for the
/// materialized form of small super Cayley graphs (node id = Lehmer rank of
/// the label) and for the classic guest topologies (trees, meshes,
/// hypercubes) of Section 5.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_GRAPH_H
#define SCG_GRAPH_GRAPH_H

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace scg {

/// Dense node identifier.
using NodeId = uint32_t;

/// A directed graph in CSR-buildable adjacency-list form. Undirected graphs
/// are represented by storing both directions of every edge.
class Graph {
public:
  /// Creates a graph with \p NumNodes nodes and no edges.
  explicit Graph(NodeId NumNodes) : Adjacency(NumNodes) {}

  NodeId numNodes() const { return Adjacency.size(); }

  /// Total number of directed edges.
  uint64_t numDirectedEdges() const { return EdgeCount; }

  /// Adds the directed edge \p From -> \p To.
  void addEdge(NodeId From, NodeId To) {
    assert(From < numNodes() && To < numNodes() && "node id out of range");
    assert(From != To && "self loops are not allowed");
    Adjacency[From].push_back(To);
    ++EdgeCount;
  }

  /// Adds both directions of the edge {\p A, \p B}.
  void addUndirectedEdge(NodeId A, NodeId B) {
    addEdge(A, B);
    addEdge(B, A);
  }

  /// Out-neighbors of \p Node.
  std::span<const NodeId> neighbors(NodeId Node) const {
    assert(Node < numNodes() && "node id out of range");
    return Adjacency[Node];
  }

  unsigned outDegree(NodeId Node) const { return neighbors(Node).size(); }

  /// True if every node has the same out-degree.
  bool isRegular() const;

  /// True if for every directed edge u->v the edge v->u is present.
  bool isUndirected() const;

  /// True if \p From -> \p To is an edge (linear scan of From's list).
  bool hasEdge(NodeId From, NodeId To) const;

  /// Sorts every adjacency list (for deterministic iteration and binary
  /// search in hasEdge-heavy algorithms).
  void sortAdjacency();

private:
  std::vector<std::vector<NodeId>> Adjacency;
  uint64_t EdgeCount = 0;
};

} // namespace scg

#endif // SCG_GRAPH_GRAPH_H
