//===- graph/Metrics.h - Diameter and distance statistics ------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph-level metrics: connectivity, diameter, average internodal distance.
/// For vertex-transitive graphs (every Cayley graph is), the eccentricity
/// and distance distribution of a single node are those of every node, so
/// one BFS suffices; the general all-pairs form is provided for the guest
/// topologies and for cross-checking the transitivity shortcut in tests.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_METRICS_H
#define SCG_GRAPH_METRICS_H

#include "graph/Graph.h"

namespace scg {

/// Summary distance statistics of a graph.
struct DistanceStats {
  bool Connected = false;
  uint32_t Diameter = 0;
  double AverageDistance = 0.0; ///< Over ordered pairs of distinct nodes.
};

/// All-pairs statistics via one BFS per node (O(V * E)), parallel over
/// source nodes on the global ThreadPool (SCG_THREADS=1 forces serial).
/// Results are byte-identical at every thread count. For a disconnected
/// graph, returns Connected=false with zeroed Diameter/AverageDistance.
DistanceStats allPairsStats(const Graph &G);

/// Single-BFS statistics from \p Representative, valid for vertex-transitive
/// graphs; \p Representative defaults to node 0.
DistanceStats vertexTransitiveStats(const Graph &G, NodeId Representative = 0);

/// True if all nodes are reachable from node 0 (for undirected or strongly
/// regular directed graphs this implies connectivity of interest here).
bool isConnectedFromZero(const Graph &G);

} // namespace scg

#endif // SCG_GRAPH_METRICS_H
