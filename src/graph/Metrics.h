//===- graph/Metrics.h - Diameter and distance statistics ------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph-level metrics: connectivity, diameter, average internodal distance.
/// For vertex-transitive graphs (every Cayley graph is), the eccentricity
/// and distance distribution of a single node are those of every node, so
/// one BFS suffices; the general all-pairs form is provided for the guest
/// topologies (meshes, trees -- not vertex-transitive) and for
/// cross-checking the transitivity shortcut in tests and benches.
///
/// allPairsStats runs on the direction-optimizing bit-parallel multi-source
/// BFS engine (graph/MsBfs.h): 512 sources per fused task over CSR
/// adjacency, push/pull switched per level, batches spread across the
/// ThreadPool -- which is what makes exact sweeps at k = 9 (362,880
/// nodes) routine and k = 10 (3.6M nodes) an hours-scale run. The scalar
/// one-BFS-per-source engine survives as scalarAllPairsStats, the
/// reference the bit-parallel results are pinned against.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_METRICS_H
#define SCG_GRAPH_METRICS_H

#include "graph/Graph.h"

namespace scg {

/// Summary distance statistics of a graph.
struct DistanceStats {
  bool Connected = false;
  uint32_t Diameter = 0;
  double AverageDistance = 0.0; ///< Over ordered pairs of distinct nodes.
};

/// All-pairs statistics via bit-parallel multi-source BFS (64 sources per
/// batch), parallel over batches on the global ThreadPool (SCG_THREADS=1
/// forces serial). Results are byte-identical at every thread count and
/// to scalarAllPairsStats. For a disconnected graph, returns
/// Connected=false with zeroed Diameter/AverageDistance.
DistanceStats allPairsStats(const Graph &G);

/// The scalar reference engine: one BFS per source, parallel over source
/// nodes. Kept as the differential baseline for the bit-parallel engine
/// (tests/MsBfsTest.cpp, bench_network_properties); prefer allPairsStats
/// everywhere else.
DistanceStats scalarAllPairsStats(const Graph &G);

/// Single-BFS statistics from \p Representative, valid for vertex-transitive
/// graphs; \p Representative defaults to node 0.
DistanceStats vertexTransitiveStats(const Graph &G, NodeId Representative = 0);

/// True if all nodes are reachable from node 0 (for undirected or strongly
/// regular directed graphs this implies connectivity of interest here).
/// Runs the lean reachability-only BFS (no parent/distance bookkeeping,
/// early exit once every node is reached), so connectivity probes inside
/// sweeps cost a fraction of a full BFS.
bool isConnectedFromZero(const Graph &G);

} // namespace scg

#endif // SCG_GRAPH_METRICS_H
