//===- graph/Csr.h - Compressed sparse row adjacency -----------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compressed-sparse-row adjacency: one flat neighbor array plus an
/// offsets array, the layout the bit-parallel multi-source BFS engine
/// (graph/MsBfs.h) streams over. A Csr is buildable from any Graph and --
/// via ExplicitScg::toCsr() -- directly from a super Cayley graph's
/// Next table, whose row-major Count x degree layout *is* already CSR
/// with uniform row length.
///
/// The container is immutable after construction: the distance sweeps
/// hand one Csr to many concurrent BFS batches, so there must be nothing
/// to mutate.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_CSR_H
#define SCG_GRAPH_CSR_H

#include "graph/Graph.h"

#include <span>
#include <vector>

namespace scg {

/// Immutable CSR adjacency. Neighbor order within a row matches the
/// source container (Graph insertion order / Next-table generator order);
/// the distance engines are order-insensitive, so the two builds are
/// interchangeable.
class Csr {
public:
  /// Flattens \p G (O(V + E), one pass).
  explicit Csr(const Graph &G);

  /// Adopts a uniform-degree flat table: node V's neighbors are
  /// \p Flat[V * Degree .. (V + 1) * Degree). This is the ExplicitScg
  /// Next-table layout; the vector is moved, not copied, when the caller
  /// passes an rvalue.
  Csr(NodeId NumNodes, unsigned Degree, std::vector<NodeId> Flat);

  NodeId numNodes() const { return NodeId(Offsets.size() - 1); }
  uint64_t numEdges() const { return Adjacency.size(); }

  std::span<const NodeId> neighbors(NodeId Node) const {
    assert(Node < numNodes() && "node id out of range");
    return {Adjacency.data() + Offsets[Node],
            Adjacency.data() + Offsets[Node + 1]};
  }

  /// The reverse graph: T.neighbors(V) enumerates the in-neighbors of V,
  /// in ascending source-node order (counting sort, O(V + E),
  /// deterministic). For the undirected families the transpose equals the
  /// original up to row order, but it is built generically so the
  /// direction-optimizing BFS pull pass is correct on directed graphs
  /// (rotator networks) too.
  Csr transpose() const;

  /// Raw row storage for hot engine loops that hoist the per-row
  /// assert/span construction out of their inner loops: node V's row is
  /// adjacencyData()[offsetsData()[V] .. offsetsData()[V + 1]). Prefer
  /// neighbors() everywhere a traversal is not measurably hot.
  const NodeId *adjacencyData() const { return Adjacency.data(); }
  const uint64_t *offsetsData() const { return Offsets.data(); }

private:
  Csr() = default; ///< for transpose(), which fills the arrays itself.

  std::vector<uint64_t> Offsets;  ///< size numNodes() + 1, Offsets[0] == 0.
  std::vector<NodeId> Adjacency;  ///< all rows back to back.
};

} // namespace scg

#endif // SCG_GRAPH_CSR_H
