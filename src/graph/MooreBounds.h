//===- graph/MooreBounds.h - Universal degree-diameter bounds --*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The universal lower bounds the paper's optimality arguments invoke: a
/// degree-d network can reach at most d(d-1)^{r-1} new nodes at distance r
/// (d^r when directed), so N nodes force diameter >= DL(d, N) and mean
/// internodal distance >= the Moore-ball average. The proof of
/// Corollary 3 uses exactly this mean-distance bound
/// ("... the mean internodal distance of an N-node graph with degree
/// Theta(sqrt(log N / log log N)) is at least Omega(log N / log log N)"),
/// and the "optimal diameters given their node degree" claim of the
/// introduction is DL-relative.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_MOOREBOUNDS_H
#define SCG_GRAPH_MOOREBOUNDS_H

#include <cstdint>

namespace scg {

/// Maximum number of nodes within distance \p Radius of a node in a
/// degree-\p Degree graph (inclusive of the node itself); saturates at
/// UINT64_MAX on overflow.
uint64_t mooreBallSize(unsigned Degree, unsigned Radius, bool Directed);

/// DL(d, N): the smallest diameter any \p Directed? directed : undirected
/// degree-\p Degree graph on \p NumNodes nodes can have.
unsigned mooreDiameterLowerBound(unsigned Degree, uint64_t NumNodes,
                                 bool Directed);

/// Lower bound on the mean internodal distance (average over ordered
/// pairs of distinct nodes): pack nodes greedily into the closest layers.
double mooreMeanDistanceLowerBound(unsigned Degree, uint64_t NumNodes,
                                   bool Directed);

} // namespace scg

#endif // SCG_GRAPH_MOOREBOUNDS_H
