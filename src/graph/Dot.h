//===- graph/Dot.h - Graphviz export ---------------------------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz DOT export for explicit graphs, with optional node and edge
/// labels. Small super Cayley graphs render nicely with generator-colored
/// links (the classic way the star graph and its relatives are drawn).
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_DOT_H
#define SCG_GRAPH_DOT_H

#include "graph/Graph.h"

#include <functional>
#include <string>

namespace scg {

/// Options for renderDot.
struct DotOptions {
  bool Directed = false;      ///< digraph vs graph (dedups reverse edges).
  std::string GraphName = "g";
  /// Node label; defaults to the id.
  std::function<std::string(NodeId)> NodeLabel;
  /// Edge label (e.g. generator name); empty = unlabeled.
  std::function<std::string(NodeId, NodeId)> EdgeLabel;
};

/// Renders \p G in DOT syntax.
std::string renderDot(const Graph &G, const DotOptions &Options = {});

} // namespace scg

#endif // SCG_GRAPH_DOT_H
