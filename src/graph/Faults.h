//===- graph/Faults.h - Fault injection and robustness ---------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault injection for robustness studies: the paper leans on the
/// transposition network's reputation as a "fault-tolerant robust
/// network" [12], and Cayley-graph regularity gives all the classes here
/// nontrivial connectivity. This module removes links/nodes from an
/// explicit graph and measures what survives: connectivity of the healthy
/// part, diameter inflation, and exhaustive or sampled sweeps over all
/// single-fault scenarios.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_FAULTS_H
#define SCG_GRAPH_FAULTS_H

#include "graph/Graph.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace scg {

/// A set of failed components. Node faults kill all incident links.
///
/// Storage is a pair of sorted vectors, not std::set: linkFailed runs once
/// per directed edge per scenario in exhaustive single-fault sweeps, and a
/// branchless binary search over a flat array beats pointer-chasing a
/// red-black tree there by a measurable constant factor. Mutation appends
/// and marks the vector dirty; the first query after a mutation
/// sort+uniques it (queries on an already-sorted set pay nothing). Build
/// and query phases must not interleave across threads -- the sweeps give
/// every scenario its own FaultSet, so they never do.
class FaultSet {
public:
  /// Fails the directed link From -> To.
  void failDirectedLink(NodeId From, NodeId To) {
    Links.push_back({From, To});
    LinksSorted = false;
  }

  /// Fails both directions of {A, B}.
  void failLink(NodeId A, NodeId B) {
    failDirectedLink(A, B);
    failDirectedLink(B, A);
  }

  /// Fails a node (its links in both directions).
  void failNode(NodeId Node) {
    Nodes.push_back(Node);
    NodesSorted = false;
  }

  bool linkFailed(NodeId From, NodeId To) const {
    if (nodeFailed(From) || nodeFailed(To))
      return true;
    if (Links.empty())
      return false;
    ensureLinksSorted();
    return std::binary_search(Links.begin(), Links.end(),
                              std::pair<NodeId, NodeId>{From, To});
  }

  bool nodeFailed(NodeId Node) const {
    if (Nodes.empty())
      return false;
    ensureNodesSorted();
    return std::binary_search(Nodes.begin(), Nodes.end(), Node);
  }

  /// Distinct failed nodes (duplicates collapse, matching the historical
  /// std::set semantics).
  size_t numFailedNodes() const {
    ensureNodesSorted();
    return Nodes.size();
  }

  /// Distinct failed *undirected* links: the number of unordered pairs
  /// {A, B} with at least one failed direction, so one failLink(A, B)
  /// counts as exactly one fault. (An old version returned the directed
  /// entry count, silently doubling every undirected fault; callers that
  /// really want directed entries use numFailedDirectedLinks().) Does not
  /// count links implied by node faults.
  size_t numFailedLinks() const {
    ensureLinksSorted();
    size_t Count = 0;
    for (const auto &[From, To] : Links)
      // Count each unordered pair once: at its From < To entry, or at the
      // From > To entry when the mirror direction is absent.
      if (From < To ||
          !std::binary_search(Links.begin(), Links.end(),
                              std::pair<NodeId, NodeId>{To, From}))
        ++Count;
    return Count;
  }

  /// Distinct failed directed links (both directions of a failLink count).
  size_t numFailedDirectedLinks() const {
    ensureLinksSorted();
    return Links.size();
  }

private:
  void ensureLinksSorted() const {
    if (LinksSorted)
      return;
    std::sort(Links.begin(), Links.end());
    Links.erase(std::unique(Links.begin(), Links.end()), Links.end());
    LinksSorted = true;
  }
  void ensureNodesSorted() const {
    if (NodesSorted)
      return;
    std::sort(Nodes.begin(), Nodes.end());
    Nodes.erase(std::unique(Nodes.begin(), Nodes.end()), Nodes.end());
    NodesSorted = true;
  }

  mutable std::vector<std::pair<NodeId, NodeId>> Links;
  mutable std::vector<NodeId> Nodes;
  mutable bool LinksSorted = true;
  mutable bool NodesSorted = true;
};

/// Returns \p G with every failed link removed (failed nodes keep their id
/// but lose all links).
Graph applyFaults(const Graph &G, const FaultSet &Faults);

/// Health of the surviving network: connectivity and distances among the
/// healthy nodes.
struct FaultAnalysis {
  bool Connected = false;   ///< all healthy nodes mutually reachable.
  uint32_t Diameter = 0;    ///< over healthy pairs; meaningless if not
                            ///< connected.
  uint64_t HealthyNodes = 0;
};

/// Analyzes \p G under \p Faults: healthy sources are batched 64 at a time
/// through the bit-parallel multi-source BFS (graph/MsBfs.h), with an
/// early exit on the first disconnected source. Disconnected results carry
/// Diameter == 0 (never a partial accumulation).
FaultAnalysis analyzeUnderFaults(const Graph &G, const FaultSet &Faults);

/// Pairwise reachability of the surviving network -- the per-trial
/// measurement of the Monte Carlo campaigns (routing/FaultCampaign.h).
/// Unlike analyzeUnderFaults this never exits early: a disconnected
/// scenario still reports how much of the network each healthy node can
/// see, which is what reliability/reachability curves integrate.
struct ReachabilityAnalysis {
  uint64_t HealthyNodes = 0;
  /// Ordered healthy pairs (S, T), S != T, with a surviving S -> T path.
  uint64_t ReachableOrderedPairs = 0;
  bool Connected = false; ///< every healthy ordered pair reachable.
  uint32_t Diameter = 0;  ///< over healthy pairs; 0 when not connected.
};

/// Full (no early exit) reachability sweep of \p G under \p Faults via the
/// bit-parallel multi-source BFS.
ReachabilityAnalysis analyzeReachabilityUnderFaults(const Graph &G,
                                                    const FaultSet &Faults);

/// Worst case over single-fault scenarios. A sweep with zero scenarios
/// (edgeless graph, empty graph) reports AlwaysConnected = false: "no
/// scenario disconnected" must never read as a robustness certificate
/// when nothing was tried (check ScenariosTried to distinguish the cases).
struct SingleFaultSweep {
  bool AlwaysConnected = false;
  uint32_t WorstDiameter = 0;
  uint32_t FaultFreeDiameter = 0;
  uint64_t ScenariosTried = 0;
};

/// Removes every \p Stride-th undirected link in turn (Stride 1 =
/// exhaustive) and reports the worst outcome. \p G must be undirected.
/// Scenarios are evaluated in parallel on the global ThreadPool; results
/// are byte-identical at every thread count (SCG_THREADS=1 forces serial).
SingleFaultSweep sweepSingleLinkFaults(const Graph &G, unsigned Stride = 1);

/// Removes every \p Stride-th node in turn and reports the worst outcome
/// among the survivors. Parallel over scenarios like the link sweep.
SingleFaultSweep sweepSingleNodeFaults(const Graph &G, unsigned Stride = 1);

} // namespace scg

#endif // SCG_GRAPH_FAULTS_H
