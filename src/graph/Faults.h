//===- graph/Faults.h - Fault injection and robustness ---------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault injection for robustness studies: the paper leans on the
/// transposition network's reputation as a "fault-tolerant robust
/// network" [12], and Cayley-graph regularity gives all the classes here
/// nontrivial connectivity. This module removes links/nodes from an
/// explicit graph and measures what survives: connectivity of the healthy
/// part, diameter inflation, and exhaustive or sampled sweeps over all
/// single-fault scenarios.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_GRAPH_FAULTS_H
#define SCG_GRAPH_FAULTS_H

#include "graph/Graph.h"

#include <set>

namespace scg {

/// A set of failed components. Node faults kill all incident links.
class FaultSet {
public:
  /// Fails the directed link From -> To.
  void failDirectedLink(NodeId From, NodeId To) {
    Links.insert({From, To});
  }

  /// Fails both directions of {A, B}.
  void failLink(NodeId A, NodeId B) {
    failDirectedLink(A, B);
    failDirectedLink(B, A);
  }

  /// Fails a node (its links in both directions).
  void failNode(NodeId Node) { Nodes.insert(Node); }

  bool linkFailed(NodeId From, NodeId To) const {
    return Nodes.count(From) || Nodes.count(To) ||
           Links.count({From, To});
  }

  bool nodeFailed(NodeId Node) const { return Nodes.count(Node); }

  size_t numFailedNodes() const { return Nodes.size(); }
  size_t numFailedLinks() const { return Links.size(); }

private:
  std::set<std::pair<NodeId, NodeId>> Links;
  std::set<NodeId> Nodes;
};

/// Returns \p G with every failed link removed (failed nodes keep their id
/// but lose all links).
Graph applyFaults(const Graph &G, const FaultSet &Faults);

/// Health of the surviving network: connectivity and distances among the
/// healthy nodes.
struct FaultAnalysis {
  bool Connected = false;   ///< all healthy nodes mutually reachable.
  uint32_t Diameter = 0;    ///< over healthy pairs; meaningless if not
                            ///< connected.
  uint64_t HealthyNodes = 0;
};

/// Analyzes \p G under \p Faults via BFS over all healthy sources.
FaultAnalysis analyzeUnderFaults(const Graph &G, const FaultSet &Faults);

/// Worst case over single-fault scenarios.
struct SingleFaultSweep {
  bool AlwaysConnected = false;
  uint32_t WorstDiameter = 0;
  uint32_t FaultFreeDiameter = 0;
  uint64_t ScenariosTried = 0;
};

/// Removes every \p Stride-th undirected link in turn (Stride 1 =
/// exhaustive) and reports the worst outcome. \p G must be undirected.
/// Scenarios are evaluated in parallel on the global ThreadPool; results
/// are byte-identical at every thread count (SCG_THREADS=1 forces serial).
SingleFaultSweep sweepSingleLinkFaults(const Graph &G, unsigned Stride = 1);

/// Removes every \p Stride-th node in turn and reports the worst outcome
/// among the survivors. Parallel over scenarios like the link sweep.
SingleFaultSweep sweepSingleNodeFaults(const Graph &G, unsigned Stride = 1);

} // namespace scg

#endif // SCG_GRAPH_FAULTS_H
