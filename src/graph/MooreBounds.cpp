//===- graph/MooreBounds.cpp - Universal degree-diameter bounds ----------===//

#include "graph/MooreBounds.h"

#include <cassert>
#include <limits>

using namespace scg;

namespace {

constexpr uint64_t Saturated = std::numeric_limits<uint64_t>::max();

/// Nodes at exactly distance \p Radius >= 1 in the best case:
/// d * (d-1)^{r-1} undirected, d^r directed. Saturates.
uint64_t layerSize(unsigned Degree, unsigned Radius, bool Directed) {
  assert(Radius >= 1);
  uint64_t Size = Degree;
  uint64_t Factor = Directed ? Degree : (Degree > 1 ? Degree - 1 : 0);
  for (unsigned R = 1; R != Radius; ++R) {
    if (Factor != 0 && Size > Saturated / Factor)
      return Saturated;
    Size *= Factor;
    if (Size == 0)
      return 0;
  }
  return Size;
}

} // namespace

uint64_t scg::mooreBallSize(unsigned Degree, unsigned Radius,
                            bool Directed) {
  uint64_t Total = 1;
  for (unsigned R = 1; R <= Radius; ++R) {
    uint64_t Layer = layerSize(Degree, R, Directed);
    if (Layer >= Saturated - Total)
      return Saturated;
    Total += Layer;
    if (Layer == 0)
      break;
  }
  return Total;
}

unsigned scg::mooreDiameterLowerBound(unsigned Degree, uint64_t NumNodes,
                                      bool Directed) {
  assert(Degree >= 1 && "degenerate network");
  if (NumNodes <= 1)
    return 0;
  unsigned Radius = 0;
  while (mooreBallSize(Degree, Radius, Directed) < NumNodes) {
    ++Radius;
    assert(Radius < 10000 && "diameter bound runaway (degree 1?)");
  }
  return Radius;
}

double scg::mooreMeanDistanceLowerBound(unsigned Degree, uint64_t NumNodes,
                                        bool Directed) {
  assert(Degree >= 1 && "degenerate network");
  if (NumNodes <= 1)
    return 0.0;
  // Fill layers greedily: layer r holds at most layerSize(r) nodes.
  uint64_t Remaining = NumNodes - 1;
  double WeightedSum = 0.0;
  unsigned Radius = 1;
  while (Remaining != 0) {
    uint64_t Layer = layerSize(Degree, Radius, Directed);
    uint64_t Here = Layer < Remaining ? Layer : Remaining;
    WeightedSum += double(Radius) * double(Here);
    Remaining -= Here;
    ++Radius;
    assert(Radius < 10000 && "mean-distance bound runaway");
  }
  return WeightedSum / double(NumNodes - 1);
}
