//===- routing/RouteOptimizer.cpp - Peephole path simplification ---------===//

#include "routing/RouteOptimizer.h"

using namespace scg;

GeneratorPath scg::simplifyPath(const SuperCayleyGraph &Net,
                                const GeneratorPath &Path) {
  const GeneratorSet &Gens = Net.generators();
  // Stack-based cancellation: whenever the incoming hop composes with the
  // top of the stack to the identity (or to another single link), replace.
  std::vector<GenIndex> Stack;
  for (GenIndex Hop : Path.hops()) {
    GenIndex Cur = Hop;
    bool Consumed = false;
    while (!Stack.empty()) {
      GenIndex Top = Stack.back();
      Permutation Product = Gens[Top].Sigma.compose(Gens[Cur].Sigma);
      if (Product.isIdentity()) {
        Stack.pop_back(); // Inverse pair: both hops vanish.
        Consumed = true;
        break;
      }
      // Fold two adjacent hops into one when their product is itself a
      // link (e.g. R^a R^b = R^{a+b} on complete-rotation networks), then
      // retry against the new stack top so cascades collapse fully.
      // Restricted to super generators so nucleus algebra stays
      // recognizable.
      if (Gens[Top].Kind != GeneratorKind::Super ||
          Gens[Cur].Kind != GeneratorKind::Super)
        break;
      std::optional<GenIndex> Folded = Gens.findByAction(Product);
      if (!Folded)
        break;
      Stack.pop_back();
      Cur = *Folded;
    }
    if (!Consumed)
      Stack.push_back(Cur);
  }

  GeneratorPath Result(std::move(Stack));
  assert(Result.netEffect(Net) == Path.netEffect(Net) &&
         "simplification changed the path's effect");
  return Result;
}
