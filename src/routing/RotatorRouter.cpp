//===- routing/RotatorRouter.cpp - Rotator-graph routing -----------------===//

#include "routing/RotatorRouter.h"

#include <cassert>

using namespace scg;

namespace {

/// Right-multiplies the one-line word by I_i: the front symbol moves to
/// (0-based) position i-1 and the symbols in between shift left.
void applyInsertion(std::vector<uint8_t> &Word, unsigned I) {
  assert(I >= 2 && I <= Word.size() && "insertion dimension out of range");
  uint8_t Front = Word[0];
  for (unsigned P = 0; P + 1 != I; ++P)
    Word[P] = Word[P + 1];
  Word[I - 1] = Front;
}

} // namespace

std::vector<unsigned>
scg::rotatorWordForPermutation(const Permutation &P) {
  // Sorting C = P^-1 to the identity by right multiplication yields a word
  // whose product is P.
  unsigned K = P.size();
  std::vector<uint8_t> Word = P.inverse().oneLineVector();
  std::vector<unsigned> Dims;

  // Fix positions from the right; positions > Pos never move again because
  // every insertion below touches only a prefix.
  for (unsigned Pos = K; Pos-- > 1;) {
    if (Word[Pos] == Pos)
      continue;
    // Locate the symbol that belongs at Pos; it sits strictly left of Pos.
    unsigned Q = 0;
    while (Word[Q] != Pos)
      ++Q;
    assert(Q < Pos && "suffix was already sorted");
    // Walk it to the front: each insertion parks the current front symbol
    // just behind it, shifting the target one slot left.
    while (Q > 0) {
      Dims.push_back(Q + 1);
      applyInsertion(Word, Q + 1);
      --Q;
    }
    // Insert it home.
    Dims.push_back(Pos + 1);
    applyInsertion(Word, Pos + 1);
  }
  assert(Permutation::fromOneLine(Word).isIdentity() && "sort incomplete");
  return Dims;
}

GeneratorPath scg::routeInRotator(const SuperCayleyGraph &Net,
                                  const Permutation &Src,
                                  const Permutation &Dst) {
  assert(Net.kind() == NetworkKind::Rotator && "network must be a rotator");
  GeneratorPath Path;
  Permutation Rel = Src.inverse().compose(Dst);
  for (unsigned Dim : rotatorWordForPermutation(Rel))
    Path.append(Dim - 2); // generators were added as I_2..I_k in order.
  assert(Path.connects(Net, Src, Dst) && "rotator route is broken");
  return Path;
}

unsigned scg::rotatorRouteBound(unsigned K) {
  // Each of the k-1 fixed positions costs at most its walk (<= k-1 steps)
  // plus the final insertion; the walks telescope to k(k-1)/2 total.
  return K * (K - 1) / 2 + (K - 1);
}
