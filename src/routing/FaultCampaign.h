//===- routing/FaultCampaign.h - Monte Carlo reliability campaigns -*-C++-*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monte Carlo fault campaigns: sample random link (or node) fault sets at
/// a ladder of fault rates, measure what survives, and drive the adaptive
/// container router through the wreckage. Produces the
/// reliability/reachability/diameter-inflation curves of BENCH_faults.json
/// (bench/bench_faults.cpp) -- the quantitative version of the paper's
/// qualitative "fault-tolerant robust network" claim.
///
/// Sampling uses common random numbers (coupling): trial t draws one
/// SplitMix64 value per link, fixed order, and at rate r fails exactly the
/// links whose draw falls below r * 2^64. The *same* draws serve every
/// rate, so a trial's fault sets are nested along the rate ladder and
/// every survival metric is monotone in the rate per trial -- a structural
/// invariant the tests check, and a big variance reduction for the curves.
///
/// Trials run in parallel on the global ThreadPool via the chunk-ordered
/// parallelMapReduce, so a campaign is byte-identical at every thread
/// count (SCG_THREADS=1 forces serial); tests pin this.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_ROUTING_FAULTCAMPAIGN_H
#define SCG_ROUTING_FAULTCAMPAIGN_H

#include "routing/FaultRouter.h"

#include <string>
#include <vector>

namespace scg {

struct FaultCampaignOptions {
  /// Fault-rate ladder (each in [0, 1]); curves get one point per rate.
  std::vector<double> Rates = {0.01, 0.02, 0.05, 0.10, 0.20};
  /// Monte Carlo trials per rate (coupled across rates, see file comment).
  unsigned Trials = 256;
  uint64_t Seed = 0x5C6FA171ULL;
  /// Fail nodes instead of links (a node takes all its links down).
  bool NodeFaults = false;
  /// Distinct (src, dst) pairs whose containers are built fault-free once
  /// and routed in every trial; 0 disables the routing leg.
  unsigned RouterPairs = 8;
};

/// One point of the reliability curves: all means are over the trials at
/// this rate (or the stated subset).
struct FaultRatePoint {
  double Rate = 0.0;
  uint64_t Trials = 0;
  /// Mean injected faults per trial (links or nodes, per NodeFaults).
  double MeanFaultsInjected = 0.0;
  uint64_t ConnectedTrials = 0;
  double ConnectedFraction = 0.0; ///< survivors mutually connected.
  /// Mean over trials of (reachable ordered healthy pairs) / (all ordered
  /// healthy pairs); 1.0 for a trial with <= 1 healthy node left... except
  /// 0 healthy, which scores 0.
  double MeanReachability = 0.0;
  /// Mean of Diameter / fault-free diameter over *connected* trials
  /// (0 when none connected).
  double MeanDiameterInflation = 0.0;
  uint32_t WorstDiameter = 0; ///< max over connected trials.
  /// Adaptive-router outcomes over the sampled pairs, all trials pooled.
  /// A route is attempted unless an endpoint node has failed.
  uint64_t RoutesAttempted = 0;
  uint64_t RoutesDelivered = 0;
  double DeliveryFraction = 0.0; ///< delivered / attempted (0 if none).
  /// Mean of (hops traversed - fault-free hops) over delivered routes:
  /// the price of failover, in hops.
  double MeanHopOverhead = 0.0;
  double MeanPathsTried = 0.0; ///< over attempted routes.
};

struct FaultCampaignResult {
  std::string Network;
  uint64_t Nodes = 0;
  /// Faultable components: undirected links, directed arcs (for the
  /// rotator-style classes, which fail per arc), or nodes, per options.
  uint64_t Components = 0;
  uint32_t FaultFreeDiameter = 0;
  /// Container stats over the sampled router pairs (fault-free build).
  double MeanContainerWidth = 0.0;
  uint64_t StarGeneratorContainers = 0; ///< built graph-free.
  uint64_t MaxFlowContainers = 0;
  std::vector<FaultRatePoint> Points;
};

/// Runs the campaign described by \p Opts against \p Net. Deterministic
/// for a fixed (network, options) at every thread count.
FaultCampaignResult runFaultCampaign(const ExplicitScg &Net,
                                     const FaultCampaignOptions &Opts);

} // namespace scg

#endif // SCG_ROUTING_FAULTCAMPAIGN_H
