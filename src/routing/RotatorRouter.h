//===- routing/RotatorRouter.h - Rotator-graph routing ---------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic routing in the k-rotator graph (Corbett [6], the nucleus
/// of the MR/RR/complete-RR classes): only the insertions I_2..I_k are
/// links, so a route is an insertion-sort of the relative permutation.
/// The selection-sort strategy fixes positions k, k-1, ..., 2 in turn,
/// walking the wanted symbol to the front (each walk step is one
/// insertion) and then inserting it home; the route length is at most
/// k(k-1)/2 + (k-1). Not length-optimal -- the exact solver (BagSolver)
/// is the optimality reference in tests -- but valid at any k and linear
/// to compute.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_ROUTING_ROTATORROUTER_H
#define SCG_ROUTING_ROTATORROUTER_H

#include "routing/Path.h"

namespace scg {

/// Returns the insertion dimensions (values i in 2..k, meaning generator
/// I_i) of a route realizing the relative permutation \p P:
/// I_{i1} o I_{i2} o ... = P.
std::vector<unsigned> rotatorWordForPermutation(const Permutation &P);

/// Routes \p Src -> \p Dst in \p Net, which must be a rotator graph.
GeneratorPath routeInRotator(const SuperCayleyGraph &Net,
                             const Permutation &Src, const Permutation &Dst);

/// Upper bound on rotatorWordForPermutation route length for k symbols.
unsigned rotatorRouteBound(unsigned K);

} // namespace scg

#endif // SCG_ROUTING_ROTATORROUTER_H
