//===- routing/BagSolver.h - Generic shortest-path BAG solver --*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic solver for the ball-arrangement game: finds a shortest
/// generator word between two configurations of any super Cayley graph by
/// bidirectional breadth-first search over the implicit Cayley graph. This
/// is exact unicast routing for any of the ten network classes and is used
/// as the ground truth the structured routers (StarRouter, ScgRouter) are
/// validated against. Exponential in the distance, so intended for
/// small k (<= 9) or short distances.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_ROUTING_BAGSOLVER_H
#define SCG_ROUTING_BAGSOLVER_H

#include "routing/Path.h"

#include <optional>

namespace scg {

/// Finds a shortest path from \p Src to \p Dst in \p Net, or nullopt if
/// unreachable within \p MaxDepth hops (0 = unlimited). Works on directed
/// networks too: the backward frontier expands along inverse actions even
/// when those are not links.
std::optional<GeneratorPath> solveBag(const SuperCayleyGraph &Net,
                                      const Permutation &Src,
                                      const Permutation &Dst,
                                      unsigned MaxDepth = 0);

/// Shortest-path distance, or nullopt if unreachable within \p MaxDepth.
std::optional<unsigned> bagDistance(const SuperCayleyGraph &Net,
                                    const Permutation &Src,
                                    const Permutation &Dst,
                                    unsigned MaxDepth = 0);

} // namespace scg

#endif // SCG_ROUTING_BAGSOLVER_H
