//===- routing/FaultCampaign.cpp - Monte Carlo reliability campaigns ------===//

#include "routing/FaultCampaign.h"

#include "graph/Metrics.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace scg;

namespace {

/// Per-rate running sums; summed elementwise across trials by the
/// chunk-ordered reduction, then normalized into FaultRatePoint. Integer
/// sums where possible so the fold is exact; the double sums
/// (reachability, inflation) are deterministic by the chunk-order
/// contract.
struct PointAccum {
  uint64_t FaultsInjected = 0;
  uint64_t ConnectedTrials = 0;
  double SumReachability = 0.0;
  double SumDiameterInflation = 0.0; ///< over connected trials.
  uint32_t WorstDiameter = 0;        ///< over connected trials.
  uint64_t RoutesAttempted = 0;
  uint64_t RoutesDelivered = 0;
  uint64_t SumHopOverhead = 0; ///< over delivered routes.
  uint64_t SumPathsTried = 0;  ///< over attempted routes.

  void fold(const PointAccum &Rhs) {
    FaultsInjected += Rhs.FaultsInjected;
    ConnectedTrials += Rhs.ConnectedTrials;
    SumReachability += Rhs.SumReachability;
    SumDiameterInflation += Rhs.SumDiameterInflation;
    WorstDiameter = std::max(WorstDiameter, Rhs.WorstDiameter);
    RoutesAttempted += Rhs.RoutesAttempted;
    RoutesDelivered += Rhs.RoutesDelivered;
    SumHopOverhead += Rhs.SumHopOverhead;
    SumPathsTried += Rhs.SumPathsTried;
  }
};

/// The coupling threshold: a component fails at rate R iff its 64-bit draw
/// is below R * 2^64, so one draw decides the component at every rate and
/// the fault sets are nested along the ladder.
uint64_t rateThreshold(double Rate) {
  if (Rate <= 0.0)
    return 0;
  if (Rate >= 1.0)
    return ~uint64_t(0);
  double Scaled = std::ldexp(Rate, 64);
  // 2^64 - 1 is the largest representable threshold; Rate < 1 keeps
  // Scaled strictly below 2^64 but guard the cast anyway.
  return Scaled >= 18446744073709551615.0 ? ~uint64_t(0) : uint64_t(Scaled);
}

/// Per-trial generator state: decorrelate trials by running the base seed
/// through one SplitMix64 step per trial index (outputs as seeds, the
/// Workload.cpp discipline).
uint64_t trialSeed(uint64_t Base, uint64_t Trial) {
  SplitMix64 Mix(Base ^ (0x9E3779B97F4A7C15ULL * (Trial + 1)));
  return Mix.next();
}

} // namespace

FaultCampaignResult scg::runFaultCampaign(const ExplicitScg &Net,
                                          const FaultCampaignOptions &Opts) {
  FaultCampaignResult Result;
  Result.Network = Net.network().name();
  Result.Nodes = Net.numNodes();

  FaultRouter Router(Net);
  const Graph &G = Router.graph();
  Result.FaultFreeDiameter = vertexTransitiveStats(G).Diameter;

  // The faultable component list, in a fixed deterministic order that the
  // per-trial draw stream walks. Undirected families fail links as
  // unordered pairs (both directions at once); the rotator-style directed
  // families fail individual arcs.
  bool Undirected = Net.network().isUndirected();
  std::vector<std::pair<NodeId, NodeId>> Links;
  if (!Opts.NodeFaults)
    for (NodeId From = 0; From != G.numNodes(); ++From)
      for (NodeId To : G.neighbors(From))
        if (!Undirected || From < To)
          Links.push_back({From, To});
  Result.Components = Opts.NodeFaults ? Result.Nodes : Links.size();

  // Sample the router pairs and build their containers once -- containers
  // are a property of the fault-free topology, not of any fault set.
  std::vector<PathContainer> Containers;
  if (Opts.RouterPairs > 0 && Net.numNodes() >= 2) {
    SplitMix64 PairRng(trialSeed(Opts.Seed, ~uint64_t(0)));
    for (unsigned P = 0; P != Opts.RouterPairs; ++P) {
      NodeId Src = NodeId(PairRng.nextBelow(Net.numNodes()));
      NodeId Dst = Src;
      while (Dst == Src)
        Dst = NodeId(PairRng.nextBelow(Net.numNodes()));
      Containers.push_back(Router.buildContainer(Src, Dst));
    }
  }
  for (const PathContainer &C : Containers) {
    Result.MeanContainerWidth += C.width();
    if (C.Construction == PathContainer::Method::StarGenerator)
      ++Result.StarGeneratorContainers;
    else
      ++Result.MaxFlowContainers;
  }
  if (!Containers.empty())
    Result.MeanContainerWidth /= double(Containers.size());

  size_t NumRates = Opts.Rates.size();
  std::vector<uint64_t> Thresholds(NumRates);
  for (size_t R = 0; R != NumRates; ++R)
    Thresholds[R] = rateThreshold(Opts.Rates[R]);

  // One trial = one draw stream = one nested family of fault sets, all
  // rates evaluated against it. Trials are independent, so the parallel
  // map is over trials and the fold is exact elementwise summation.
  using Accum = std::vector<PointAccum>;
  Accum Totals = ThreadPool::global().parallelMapReduce<Accum>(
      0, Opts.Trials, Accum(NumRates),
      [&](uint64_t Trial) {
        Accum Local(NumRates);
        for (size_t R = 0; R != NumRates; ++R) {
          PointAccum &Acc = Local[R];
          // Re-run the trial's stream from the top for each rate: same
          // draws, lower threshold = subset of the faults (coupling).
          SplitMix64 Rng(trialSeed(Opts.Seed, Trial));
          FaultSet Faults;
          if (Opts.NodeFaults) {
            for (NodeId Node = 0; Node != G.numNodes(); ++Node)
              if (Rng.next() < Thresholds[R])
                Faults.failNode(Node);
            Acc.FaultsInjected = Faults.numFailedNodes();
          } else {
            for (const auto &[From, To] : Links)
              if (Rng.next() < Thresholds[R]) {
                if (Undirected)
                  Faults.failLink(From, To);
                else
                  Faults.failDirectedLink(From, To);
              }
            Acc.FaultsInjected = Undirected ? Faults.numFailedLinks()
                                            : Faults.numFailedDirectedLinks();
          }

          ReachabilityAnalysis Health =
              analyzeReachabilityUnderFaults(G, Faults);
          if (Health.HealthyNodes == 0)
            ; // reachability 0, disconnected: defaults already say so.
          else if (Health.HealthyNodes == 1)
            Acc.SumReachability += 1.0;
          else
            Acc.SumReachability +=
                double(Health.ReachableOrderedPairs) /
                (double(Health.HealthyNodes) *
                 double(Health.HealthyNodes - 1));
          if (Health.Connected && Health.HealthyNodes > 0) {
            ++Acc.ConnectedTrials;
            Acc.WorstDiameter = std::max(Acc.WorstDiameter, Health.Diameter);
            Acc.SumDiameterInflation +=
                Result.FaultFreeDiameter == 0
                    ? 1.0
                    : double(Health.Diameter) /
                          double(Result.FaultFreeDiameter);
          }

          for (const PathContainer &C : Containers) {
            if (Faults.nodeFailed(C.Src) || Faults.nodeFailed(C.Dst))
              continue; // a dead endpoint is not a routing failure.
            ++Acc.RoutesAttempted;
            FaultRouteResult Route = Router.route(C, Faults);
            Acc.SumPathsTried += Route.PathsTried;
            if (Route.Delivered) {
              ++Acc.RoutesDelivered;
              assert(Route.HopsTraversed >= Route.FaultFreeHops &&
                     "failover can only add hops");
              Acc.SumHopOverhead += Route.HopsTraversed - Route.FaultFreeHops;
            }
          }
        }
        return Local;
      },
      [](Accum A, const Accum &B) {
        for (size_t R = 0; R != A.size(); ++R)
          A[R].fold(B[R]);
        return A;
      });

  Result.Points.reserve(NumRates);
  for (size_t R = 0; R != NumRates; ++R) {
    const PointAccum &Acc = Totals[R];
    FaultRatePoint Point;
    Point.Rate = Opts.Rates[R];
    Point.Trials = Opts.Trials;
    Point.ConnectedTrials = Acc.ConnectedTrials;
    if (Opts.Trials > 0) {
      Point.MeanFaultsInjected = double(Acc.FaultsInjected) / Opts.Trials;
      Point.ConnectedFraction = double(Acc.ConnectedTrials) / Opts.Trials;
      Point.MeanReachability = Acc.SumReachability / Opts.Trials;
    }
    Point.MeanDiameterInflation =
        Acc.ConnectedTrials == 0
            ? 0.0
            : Acc.SumDiameterInflation / double(Acc.ConnectedTrials);
    Point.WorstDiameter = Acc.WorstDiameter;
    Point.RoutesAttempted = Acc.RoutesAttempted;
    Point.RoutesDelivered = Acc.RoutesDelivered;
    Point.DeliveryFraction =
        Acc.RoutesAttempted == 0
            ? 0.0
            : double(Acc.RoutesDelivered) / double(Acc.RoutesAttempted);
    Point.MeanHopOverhead =
        Acc.RoutesDelivered == 0
            ? 0.0
            : double(Acc.SumHopOverhead) / double(Acc.RoutesDelivered);
    Point.MeanPathsTried =
        Acc.RoutesAttempted == 0
            ? 0.0
            : double(Acc.SumPathsTried) / double(Acc.RoutesAttempted);
    Result.Points.push_back(Point);
  }
  return Result;
}
