//===- routing/Path.cpp - Generator-labeled paths ------------------------===//

#include "routing/Path.h"

#include "support/Format.h"

using namespace scg;

Permutation GeneratorPath::netEffect(const SuperCayleyGraph &Net) const {
  Permutation Product = Permutation::identity(Net.numSymbols());
  for (GenIndex G : Hops)
    Product = Product.compose(Net.generators()[G].Sigma);
  return Product;
}

Permutation GeneratorPath::endpoint(const SuperCayleyGraph &Net,
                                    const Permutation &Start) const {
  Permutation Cur = Start;
  for (GenIndex G : Hops)
    Cur = Net.neighbor(Cur, G);
  return Cur;
}

std::vector<Permutation>
GeneratorPath::trace(const SuperCayleyGraph &Net,
                     const Permutation &Start) const {
  std::vector<Permutation> Nodes;
  Nodes.reserve(Hops.size() + 1);
  Nodes.push_back(Start);
  for (GenIndex G : Hops)
    Nodes.push_back(Net.neighbor(Nodes.back(), G));
  return Nodes;
}

bool GeneratorPath::connects(const SuperCayleyGraph &Net,
                             const Permutation &Start,
                             const Permutation &End) const {
  return endpoint(Net, Start) == End;
}

std::string GeneratorPath::str(const SuperCayleyGraph &Net) const {
  std::vector<std::string> Names;
  Names.reserve(Hops.size());
  for (GenIndex G : Hops)
    Names.push_back(Net.generators()[G].Name);
  return join(Names, " ");
}
