//===- routing/BagSolver.cpp - Generic shortest-path BAG solver ----------===//

#include "routing/BagSolver.h"

#include <unordered_map>

using namespace scg;

namespace {

/// Discovery record: the generator taken from/toward the neighbor permutation
/// recorded in Via (forward: Via o gen = this; backward: this o gen = Via).
struct Mark {
  Permutation Via;
  GenIndex Gen = 0;
  unsigned Depth = 0;
  bool IsRoot = false;
};

using MarkMap = std::unordered_map<Permutation, Mark, PermutationHash>;

/// Follows forward marks from \p Node back to the source, producing the hop
/// list source -> Node.
std::vector<GenIndex> forwardHops(const MarkMap &Fwd, Permutation Node) {
  std::vector<GenIndex> Rev;
  while (true) {
    const Mark &M = Fwd.at(Node);
    if (M.IsRoot)
      break;
    Rev.push_back(M.Gen);
    Node = M.Via;
  }
  return {Rev.rbegin(), Rev.rend()};
}

/// Follows backward marks from \p Node to the destination, producing the
/// hop list Node -> destination.
std::vector<GenIndex> backwardHops(const MarkMap &Bwd, Permutation Node) {
  std::vector<GenIndex> Hops;
  while (true) {
    const Mark &M = Bwd.at(Node);
    if (M.IsRoot)
      break;
    Hops.push_back(M.Gen);
    Node = M.Via;
  }
  return Hops;
}

} // namespace

std::optional<GeneratorPath> scg::solveBag(const SuperCayleyGraph &Net,
                                           const Permutation &Src,
                                           const Permutation &Dst,
                                           unsigned MaxDepth) {
  assert(Src.size() == Net.numSymbols() && Dst.size() == Net.numSymbols() &&
         "label size mismatch");
  if (Src == Dst)
    return GeneratorPath();

  const GeneratorSet &Gens = Net.generators();
  // Precompute actions and inverse actions once.
  std::vector<Permutation> Fw, Bw;
  for (GenIndex G = 0; G != Gens.size(); ++G) {
    Fw.push_back(Gens[G].Sigma);
    Bw.push_back(Gens[G].Sigma.inverse());
  }

  MarkMap FwdSeen, BwdSeen;
  std::vector<Permutation> FwdFrontier{Src}, BwdFrontier{Dst};
  FwdSeen.emplace(Src, Mark{{}, 0, 0, true});
  BwdSeen.emplace(Dst, Mark{{}, 0, 0, true});
  unsigned FwdDepth = 0, BwdDepth = 0;

  while (!FwdFrontier.empty() && !BwdFrontier.empty()) {
    if (MaxDepth && FwdDepth + BwdDepth >= MaxDepth)
      return std::nullopt;

    bool ExpandFwd = FwdFrontier.size() <= BwdFrontier.size();
    std::vector<Permutation> &Frontier = ExpandFwd ? FwdFrontier : BwdFrontier;
    MarkMap &Seen = ExpandFwd ? FwdSeen : BwdSeen;
    MarkMap &Other = ExpandFwd ? BwdSeen : FwdSeen;
    const std::vector<Permutation> &Actions = ExpandFwd ? Fw : Bw;
    unsigned Depth = 1 + (ExpandFwd ? FwdDepth++ : BwdDepth++);

    // Expand the whole level; among the meets found, the shortest total is
    // Depth + (other side's depth of the meet node), which varies per meet,
    // so pick the minimum rather than stopping at the first one.
    std::vector<Permutation> NextFrontier;
    std::optional<Permutation> Meet;
    unsigned MeetTotal = 0;
    for (const Permutation &Node : Frontier) {
      for (GenIndex G = 0; G != Actions.size(); ++G) {
        Permutation Neighbor = Node.compose(Actions[G]);
        if (!Seen.emplace(Neighbor, Mark{Node, G, Depth, false}).second)
          continue;
        auto It = Other.find(Neighbor);
        if (It != Other.end()) {
          unsigned Total = Depth + It->second.Depth;
          if (!Meet || Total < MeetTotal) {
            Meet = Neighbor;
            MeetTotal = Total;
          }
        }
        NextFrontier.push_back(std::move(Neighbor));
      }
    }
    if (Meet) {
      std::vector<GenIndex> Hops = forwardHops(FwdSeen, *Meet);
      for (GenIndex G : backwardHops(BwdSeen, *Meet))
        Hops.push_back(G);
      GeneratorPath Path(std::move(Hops));
      assert(Path.connects(Net, Src, Dst) && "reconstructed path is broken");
      return Path;
    }
    Frontier = std::move(NextFrontier);
  }
  return std::nullopt;
}

std::optional<unsigned> scg::bagDistance(const SuperCayleyGraph &Net,
                                         const Permutation &Src,
                                         const Permutation &Dst,
                                         unsigned MaxDepth) {
  std::optional<GeneratorPath> Path = solveBag(Net, Src, Dst, MaxDepth);
  if (!Path)
    return std::nullopt;
  return Path->length();
}
