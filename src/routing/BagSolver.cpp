//===- routing/BagSolver.cpp - Generic shortest-path BAG solver ----------===//

#include "routing/BagSolver.h"

#include "perm/Lehmer.h"

#include <unordered_map>

using namespace scg;

namespace {

/// Discovery record, keyed by Lehmer rank: the generator taken from/toward
/// the neighbor whose rank is Via (forward: Via o gen = this; backward:
/// this o gen = Via).
struct Mark {
  uint64_t Via = 0;
  uint16_t Depth = 0;
  uint8_t Gen = 0;
  uint8_t State = 0; ///< 0 = unvisited, 1 = visited, 2 = root.
};

/// Full-domain mark table: one slot per element of S_k, indexed by rank.
/// No hashing, no rehash churn; the whole frontier bookkeeping is O(1)
/// array probes. Used when k! is small enough to afford the flat table.
class DenseMarks {
public:
  explicit DenseMarks(uint64_t NumNodes) : Table(NumNodes) {}

  bool insert(uint64_t Rank, const Mark &M) {
    if (Table[Rank].State)
      return false;
    Table[Rank] = M;
    return true;
  }
  const Mark *find(uint64_t Rank) const {
    return Table[Rank].State ? &Table[Rank] : nullptr;
  }
  const Mark &at(uint64_t Rank) const {
    assert(Table[Rank].State && "rank was never marked");
    return Table[Rank];
  }

private:
  std::vector<Mark> Table;
};

/// Sparse fallback for k where a flat k!-slot table would not fit in
/// memory (the bidirectional search only ever visits a thin shell then).
class HashMarks {
public:
  explicit HashMarks(uint64_t /*NumNodes*/) {}

  bool insert(uint64_t Rank, const Mark &M) {
    return Table.emplace(Rank, M).second;
  }
  const Mark *find(uint64_t Rank) const {
    auto It = Table.find(Rank);
    return It == Table.end() ? nullptr : &It->second;
  }
  const Mark &at(uint64_t Rank) const {
    auto It = Table.find(Rank);
    assert(It != Table.end() && "rank was never marked");
    return It->second;
  }

private:
  std::unordered_map<uint64_t, Mark> Table;
};

/// Follows forward marks from \p Rank back to the source, producing the hop
/// list source -> node.
template <typename Marks>
std::vector<GenIndex> forwardHops(const Marks &Fwd, uint64_t Rank) {
  std::vector<GenIndex> Rev;
  while (true) {
    const Mark &M = Fwd.at(Rank);
    if (M.State == 2)
      break;
    Rev.push_back(M.Gen);
    Rank = M.Via;
  }
  return {Rev.rbegin(), Rev.rend()};
}

/// Follows backward marks from \p Rank to the destination, producing the
/// hop list node -> destination.
template <typename Marks>
std::vector<GenIndex> backwardHops(const Marks &Bwd, uint64_t Rank) {
  std::vector<GenIndex> Hops;
  while (true) {
    const Mark &M = Bwd.at(Rank);
    if (M.State == 2)
      break;
    Hops.push_back(M.Gen);
    Rank = M.Via;
  }
  return Hops;
}

/// A frontier node: the label (needed to compose hops) plus its rank (the
/// mark-table key), so neither is recomputed on expansion.
struct FrontierNode {
  Permutation Label;
  uint64_t Rank;
};

template <typename Marks>
std::optional<GeneratorPath> solveBagImpl(const SuperCayleyGraph &Net,
                                          const Permutation &Src,
                                          const Permutation &Dst,
                                          unsigned MaxDepth) {
  const GeneratorSet &Gens = Net.generators();
  // Precompute actions and inverse actions once.
  std::vector<Permutation> Fw, Bw;
  for (GenIndex G = 0; G != Gens.size(); ++G) {
    Fw.push_back(Gens[G].Sigma);
    Bw.push_back(Gens[G].Sigma.inverse());
  }

  uint64_t NumNodes = factorial(Net.numSymbols());
  Marks FwdSeen(NumNodes), BwdSeen(NumNodes);
  uint64_t SrcRank = rankPermutation(Src), DstRank = rankPermutation(Dst);
  std::vector<FrontierNode> FwdFrontier{{Src, SrcRank}};
  std::vector<FrontierNode> BwdFrontier{{Dst, DstRank}};
  FwdSeen.insert(SrcRank, Mark{0, 0, 0, 2});
  BwdSeen.insert(DstRank, Mark{0, 0, 0, 2});
  unsigned FwdDepth = 0, BwdDepth = 0;

  while (!FwdFrontier.empty() && !BwdFrontier.empty()) {
    if (MaxDepth && FwdDepth + BwdDepth >= MaxDepth)
      return std::nullopt;

    bool ExpandFwd = FwdFrontier.size() <= BwdFrontier.size();
    std::vector<FrontierNode> &Frontier =
        ExpandFwd ? FwdFrontier : BwdFrontier;
    Marks &Seen = ExpandFwd ? FwdSeen : BwdSeen;
    Marks &Other = ExpandFwd ? BwdSeen : FwdSeen;
    const std::vector<Permutation> &Actions = ExpandFwd ? Fw : Bw;
    unsigned Depth = 1 + (ExpandFwd ? FwdDepth++ : BwdDepth++);

    // Expand the whole level; among the meets found, the shortest total is
    // Depth + (other side's depth of the meet node), which varies per meet,
    // so pick the minimum rather than stopping at the first one.
    std::vector<FrontierNode> NextFrontier;
    std::optional<uint64_t> Meet;
    unsigned MeetTotal = 0;
    Permutation Neighbor;
    for (const FrontierNode &Node : Frontier) {
      for (GenIndex G = 0; G != Actions.size(); ++G) {
        Node.Label.composeInto(Actions[G], Neighbor);
        uint64_t NeighborRank = rankPermutation(Neighbor);
        if (!Seen.insert(NeighborRank, Mark{Node.Rank, uint16_t(Depth),
                                            uint8_t(G), 1}))
          continue;
        if (const Mark *M = Other.find(NeighborRank)) {
          unsigned Total = Depth + M->Depth;
          if (!Meet || Total < MeetTotal) {
            Meet = NeighborRank;
            MeetTotal = Total;
          }
        }
        NextFrontier.push_back({Neighbor, NeighborRank});
      }
    }
    if (Meet) {
      std::vector<GenIndex> Hops = forwardHops(FwdSeen, *Meet);
      for (GenIndex G : backwardHops(BwdSeen, *Meet))
        Hops.push_back(G);
      GeneratorPath Path(std::move(Hops));
      assert(Path.connects(Net, Src, Dst) && "reconstructed path is broken");
      return Path;
    }
    Frontier = std::move(NextFrontier);
  }
  return std::nullopt;
}

} // namespace

std::optional<GeneratorPath> scg::solveBag(const SuperCayleyGraph &Net,
                                           const Permutation &Src,
                                           const Permutation &Dst,
                                           unsigned MaxDepth) {
  assert(Src.size() == Net.numSymbols() && Dst.size() == Net.numSymbols() &&
         "label size mismatch");
  if (Src == Dst)
    return GeneratorPath();
  // The domain is all of S_k: for k <= 9 a flat rank-indexed mark table
  // (<= 6 MB per direction) beats hashing; beyond that the flat table would
  // dominate memory, so fall back to rank-keyed hash maps.
  if (Net.numSymbols() <= 9)
    return solveBagImpl<DenseMarks>(Net, Src, Dst, MaxDepth);
  return solveBagImpl<HashMarks>(Net, Src, Dst, MaxDepth);
}

std::optional<unsigned> scg::bagDistance(const SuperCayleyGraph &Net,
                                         const Permutation &Src,
                                         const Permutation &Dst,
                                         unsigned MaxDepth) {
  std::optional<GeneratorPath> Path = solveBag(Net, Src, Dst, MaxDepth);
  if (!Path)
    return std::nullopt;
  return Path->length();
}
