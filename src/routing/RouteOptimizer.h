//===- routing/RouteOptimizer.h - Peephole path simplification -*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Peephole simplification of generator paths. Lifted routes (Theorems
/// 1-3) concatenate per-dimension templates, which often leaves adjacent
/// inverse pairs -- the trailing B^-1 of one dimension against the leading
/// B of the next when consecutive star hops touch the same box (e.g.
/// "... S2 S2 ..." on a macro-star). Cancelling them never changes the
/// endpoint and strictly shortens the path; on complete-rotation hosts,
/// adjacent rotations additionally fold into a single R^{a+b} link.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_ROUTING_ROUTEOPTIMIZER_H
#define SCG_ROUTING_ROUTEOPTIMIZER_H

#include "routing/Path.h"

namespace scg {

/// Returns an endpoint-equivalent path with adjacent inverse pairs
/// cancelled and adjacent same-family rotations folded (when the folded
/// rotation is a link of \p Net). Idempotent.
GeneratorPath simplifyPath(const SuperCayleyGraph &Net,
                           const GeneratorPath &Path);

} // namespace scg

#endif // SCG_ROUTING_ROUTEOPTIMIZER_H
