//===- routing/FaultRouter.h - Containers + fault-tolerant routing -*-C++-*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault-tolerant routing through node-disjoint path containers. The
/// paper inherits the transposition network's "fault-tolerant robust
/// network" pitch [12]; this module makes it operational: a container of
/// internally node-disjoint parallel paths between a pair survives any
/// fault set that leaves one path intact, and an adaptive router that
/// fails over across the container delivers exactly as long as that holds.
///
/// Two constructions feed the containers:
///
///  * Generator-based (star family, graph-free): by vertex-transitivity a
///    route from Src is a word over the generators, so the k-1 paths leave
///    Src through its k-1 distinct first generators and then steer to Dst
///    by deterministic best-first search whose heuristic is the *exact*
///    closed-form star distance (routing/StarRouter.h). With nothing in
///    the way the search walks the greedy route straight down (the
///    heuristic never misleads); already-claimed nodes of earlier paths
///    are avoided, which is what makes the paths internally disjoint by
///    construction. No adjacency is ever materialized -- containers at
///    k = 12 (479M nodes) cost microseconds and O(k * d) memory.
///
///  * Max-flow (every family, explicit graph): graph/Containers.h's
///    unit-vertex-capacity augmenting-path construction, exact on all ten
///    classes (directed included) and the differential oracle the star
///    construction is cross-validated against in tests.
///
/// The adaptive router walks the shortest container path greedily, probes
/// each next hop against a FaultSet (link or node failures), and on the
/// first dead hop backtracks to the source and tries the next surviving
/// path -- the classic source-adaptive failover discipline. It reports
/// traversed hops including backtracking, so the hop-count overhead of
/// fault tolerance vs the fault-free route is a measurement, not a guess.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_ROUTING_FAULTROUTER_H
#define SCG_ROUTING_FAULTROUTER_H

#include "graph/Containers.h"
#include "graph/Faults.h"
#include "networks/Explicit.h"

#include <vector>

namespace scg {

/// A container between two labels of the star graph, graph-free form:
/// each path is the full label sequence Src, ..., Dst.
struct StarContainer {
  std::vector<std::vector<Permutation>> Paths;
  /// True when all k-1 paths were built (the star graph is
  /// (k-1)-connected, so a maximum container always exists; the
  /// deterministic search can in principle paint itself into a corner, in
  /// which case callers fall back to max flow -- no sampled pair at
  /// k <= 6 does, which tests pin).
  bool Complete = false;
};

/// Builds the generator-based container between \p Src and \p Dst in the
/// star graph on their symbols: k-1 internally node-disjoint paths, one
/// per first generator, each of length at most d(Src, Dst) + 8. Purely
/// label-space -- no graph, no tables. Requires Src != Dst.
StarContainer buildStarContainer(const Permutation &Src,
                                 const Permutation &Dst);

/// A container in NodeId space, ready to route against a FaultSet.
struct PathContainer {
  NodeId Src = 0, Dst = 0;
  /// Internally node-disjoint paths, each Src..Dst, sorted shortest
  /// first; Paths[0] is a fault-free shortest route.
  std::vector<std::vector<NodeId>> Paths;
  enum class Method {
    StarGenerator, ///< graph-free generator construction.
    MaxFlow        ///< unit-capacity augmenting paths on the graph.
  };
  Method Construction = Method::MaxFlow;

  unsigned width() const { return unsigned(Paths.size()); }
  /// Hops of the shortest (fault-free) route.
  unsigned shortestLength() const {
    return Paths.empty() ? 0 : unsigned(Paths.front().size() - 1);
  }
};

/// Outcome of one adaptive routing attempt under faults.
struct FaultRouteResult {
  bool Delivered = false;
  /// Hops actually traversed: every failed attempt costs the hops walked
  /// to the dead link and the same hops back to the source, then the
  /// delivered path costs its length.
  unsigned HopsTraversed = 0;
  unsigned RouteLength = 0;  ///< hops of the delivering path (0 if none).
  unsigned FaultFreeHops = 0; ///< container's shortest-path length.
  unsigned PathsTried = 0;
};

/// Container construction + adaptive failover routing over one
/// materialized network. Construction dispatches per family: the star
/// graph gets the generator-based build (max-flow fallback if incomplete),
/// everything else max flow. Stateless between calls; the caller caches
/// containers (they depend only on the pair, not on the fault set).
class FaultRouter {
public:
  /// \p Net must outlive the router.
  explicit FaultRouter(const ExplicitScg &Net);

  const ExplicitScg &network() const { return Net; }
  const Graph &graph() const { return G; }

  /// Builds the container for \p Src -> \p Dst (fault-free topology).
  PathContainer buildContainer(NodeId Src, NodeId Dst) const;

  /// Routes across \p C under \p Faults: tries paths shortest-first,
  /// backtracking on the first failed hop of each, and delivers on the
  /// first fully intact path. Delivers if and only if some container path
  /// survives (and neither endpoint node has failed).
  FaultRouteResult route(const PathContainer &C, const FaultSet &Faults) const;

private:
  const ExplicitScg &Net;
  Graph G;
  bool StarFamily;
};

} // namespace scg

#endif // SCG_ROUTING_FAULTROUTER_H
