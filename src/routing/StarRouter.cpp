//===- routing/StarRouter.cpp - Optimal star-graph routing ---------------===//

#include "routing/StarRouter.h"

#include <cassert>

using namespace scg;

/// Greedily sorts \p C to the identity by right-multiplying star generators;
/// appends the dimension of every move to \p Dims. After return,
/// C o T_{Dims[0]} o ... o T_{Dims.back()} = identity.
static void sortToIdentity(Permutation C, std::vector<unsigned> &Dims) {
  unsigned K = C.size();
  auto ApplyT = [&C](unsigned J) {
    // Right multiplication by T_J exchanges the entries at positions 0 and
    // J-1 of the one-line word.
    std::vector<uint8_t> Word = C.oneLineVector();
    std::swap(Word[0], Word[J - 1]);
    C = Permutation::fromOneLine(std::move(Word));
  };

  while (true) {
    uint8_t Front = C[0];
    if (Front != 0) {
      // Send the front symbol to its home position (symbol s lives at
      // position s); this is dimension s+1 in the paper's 1-based indexing.
      unsigned J = unsigned(Front) + 1;
      Dims.push_back(J);
      ApplyT(J);
      continue;
    }
    // Front is home: open the next nontrivial cycle, if any.
    unsigned P = 1;
    while (P != K && C[P] == P)
      ++P;
    if (P == K)
      return; // Identity reached.
    Dims.push_back(P + 1);
    ApplyT(P + 1);
  }
}

std::vector<unsigned> scg::starWordForPermutation(const Permutation &P) {
  // Sorting C = P^-1 to the identity yields a word whose product is
  // C^-1 = P.
  std::vector<unsigned> Dims;
  sortToIdentity(P.inverse(), Dims);
  assert(Dims.size() == starDistance(P) && "greedy route is not optimal");
  return Dims;
}

std::vector<unsigned> scg::starRouteDimensions(const Permutation &Src,
                                               const Permutation &Dst) {
  return starWordForPermutation(Src.inverse().compose(Dst));
}

unsigned scg::starDistance(const Permutation &P) {
  unsigned Displaced = P.numDisplaced();
  unsigned Cycles = P.nontrivialCycles().size();
  if (Displaced == 0)
    return 0;
  bool FrontDisplaced = (P[0] != 0);
  return Displaced + Cycles - (FrontDisplaced ? 2 : 0);
}

unsigned scg::starDistance(const Permutation &Src, const Permutation &Dst) {
  return starDistance(Src.inverse().compose(Dst));
}
