//===- routing/Path.h - Generator-labeled paths ----------------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A routing path in a (super) Cayley graph is a word over the generator
/// set: traversing the path from node U visits U o g1, U o g1 o g2, ...
/// The net effect of the path is the product g1 g2 ... gm, independent of
/// the start node -- which is why one path template serves every source in
/// a vertex-transitive network (the heart of Theorems 1-5).
///
//===----------------------------------------------------------------------===//

#ifndef SCG_ROUTING_PATH_H
#define SCG_ROUTING_PATH_H

#include "core/SuperCayleyGraph.h"

#include <string>
#include <vector>

namespace scg {

/// A word over a network's generator set.
class GeneratorPath {
public:
  GeneratorPath() = default;
  explicit GeneratorPath(std::vector<GenIndex> Hops) : Hops(std::move(Hops)) {}

  unsigned length() const { return Hops.size(); }
  bool empty() const { return Hops.empty(); }
  void append(GenIndex G) { Hops.push_back(G); }

  const std::vector<GenIndex> &hops() const { return Hops; }

  /// Net effect: the product of the hop actions in order (identity for the
  /// empty path).
  Permutation netEffect(const SuperCayleyGraph &Net) const;

  /// The endpoint when traversing from \p Start.
  Permutation endpoint(const SuperCayleyGraph &Net,
                       const Permutation &Start) const;

  /// Every node visited, starting with \p Start (length() + 1 entries).
  std::vector<Permutation> trace(const SuperCayleyGraph &Net,
                                 const Permutation &Start) const;

  /// True if traversing from \p Start ends at \p End.
  bool connects(const SuperCayleyGraph &Net, const Permutation &Start,
                const Permutation &End) const;

  /// Renders as generator names, e.g. "S2 T3 S2".
  std::string str(const SuperCayleyGraph &Net) const;

private:
  std::vector<GenIndex> Hops;
};

} // namespace scg

#endif // SCG_ROUTING_PATH_H
