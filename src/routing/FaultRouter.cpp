//===- routing/FaultRouter.cpp - Containers + fault-tolerant routing ------===//

#include "routing/FaultRouter.h"

#include "routing/StarRouter.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

using namespace scg;

namespace {

using PermSet = std::unordered_set<Permutation, PermutationHash>;

/// One star hop: right-compose with T_Dim, i.e. swap one-line positions 1
/// and Dim (1-based). Allocation-free for inline sizes; handles spilled
/// words (k > 16) so the graph-free construction scales past the explicit
/// regime.
Permutation starHop(const Permutation &U, unsigned Dim) {
  assert(Dim >= 2 && Dim <= U.size() && "star dimension out of range");
  uint8_t Word[255];
  std::memcpy(Word, U.oneLine().data(), U.size());
  std::swap(Word[0], Word[Dim - 1]);
  return Permutation::fromWord(Word, U.size());
}

struct OpenEntry {
  unsigned F; ///< g + h with h the exact star distance to the goal.
  unsigned G; ///< hops from the segment start.
  Permutation Node;
};

/// Heap order for the best-first search: smallest f first, then *largest*
/// g -- with an exact heuristic every node on a shortest path has f = d,
/// so preferring depth walks one such path straight down without fanning
/// out -- then lexicographically smallest label, for full determinism.
struct OpenOrder {
  bool operator()(const OpenEntry &A, const OpenEntry &B) const {
    if (A.F != B.F)
      return A.F > B.F;
    if (A.G != B.G)
      return A.G < B.G;
    return B.Node < A.Node;
  }
};

/// Safety valve for adversarially obstructed searches; far above anything
/// the k <= 6 exhaustive tests encounter, and an incomplete container just
/// means the max-flow fallback runs instead.
constexpr size_t MaxSearchPops = 100000;

/// A* from \p Start to \p Goal in the star graph on implicit labels,
/// barred from every node in \p Avoid (the goal is always admissible) and
/// from paths longer than \p MaxLen. The heuristic is the exact closed
/// form starDistance, so the first goal expansion is an optimal avoiding
/// path. Returns the node sequence Start..Goal, or nullopt when no
/// avoiding path of length <= MaxLen exists (or the pop cap trips).
std::optional<std::vector<Permutation>>
starAvoidingPath(const Permutation &Start, const Permutation &Goal,
                 const PermSet &Avoid, unsigned MaxLen) {
  if (Start == Goal)
    return std::vector<Permutation>{Start};
  unsigned K = Start.size();
  unsigned H0 = starDistance(Start, Goal);
  if (H0 > MaxLen)
    return std::nullopt;

  std::unordered_map<Permutation, unsigned, PermutationHash> BestG;
  std::unordered_map<Permutation, Permutation, PermutationHash> Parent;
  std::priority_queue<OpenEntry, std::vector<OpenEntry>, OpenOrder> Open;
  BestG.emplace(Start, 0);
  Open.push({H0, 0, Start});
  size_t Pops = 0;
  while (!Open.empty()) {
    OpenEntry Top = Open.top();
    Open.pop();
    if (BestG.find(Top.Node)->second != Top.G)
      continue; // stale entry; a cheaper route to this node was found.
    if (Top.Node == Goal) {
      std::vector<Permutation> Path{Goal};
      for (Permutation Cur = Goal; Cur != Start;) {
        Cur = Parent.at(Cur);
        Path.push_back(Cur);
      }
      std::reverse(Path.begin(), Path.end());
      return Path;
    }
    if (++Pops > MaxSearchPops)
      return std::nullopt;
    for (unsigned Dim = 2; Dim <= K; ++Dim) {
      Permutation Next = starHop(Top.Node, Dim);
      if (Next != Goal && Avoid.count(Next))
        continue;
      unsigned NextG = Top.G + 1;
      unsigned H = starDistance(Next, Goal);
      if (NextG + H > MaxLen)
        continue;
      auto [It, Inserted] = BestG.try_emplace(Next, NextG);
      if (!Inserted) {
        if (It->second <= NextG)
          continue;
        It->second = NextG;
      }
      Parent.insert_or_assign(Next, Top.Node);
      Open.push({NextG + H, NextG, Next});
    }
  }
  return std::nullopt;
}

void sortShortestFirst(std::vector<std::vector<Permutation>> &Paths) {
  std::stable_sort(Paths.begin(), Paths.end(),
                   [](const std::vector<Permutation> &A,
                      const std::vector<Permutation> &B) {
                     return A.size() < B.size();
                   });
}

} // namespace

StarContainer scg::buildStarContainer(const Permutation &Src,
                                      const Permutation &Dst) {
  assert(Src.size() == Dst.size() && "label size mismatch");
  assert(Src != Dst && "container endpoints must differ");
  unsigned K = Src.size();
  StarContainer Container;
  if (K < 2)
    return Container;
  unsigned Dist = starDistance(Src, Dst);

  // The k-1 first hops, one per generator; pairwise distinct because the
  // generators are.
  std::vector<Permutation> FirstHops;
  FirstHops.reserve(K - 1);
  for (unsigned Dim = 2; Dim <= K; ++Dim)
    FirstHops.push_back(starHop(Src, Dim));

  // Base order: shortest unconstrained continuation first, ties in
  // generator order. Along a shortest star path the distance from Src is
  // strictly increasing, so no shortest path revisits a neighbor of Src;
  // the first segment built is therefore never obstructed by the
  // reservations and Paths[0] ends up a true shortest route.
  std::vector<unsigned> Order(K - 1);
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return starDistance(FirstHops[A], Dst) < starDistance(FirstHops[B], Dst);
  });

  // Greedy sequential claiming can dead-end even though a maximum
  // container exists (the search is per-path, not global); rotating the
  // build order re-deals the corridors. No pair at k <= 6 needs more than
  // the base order (tests sample this), but completeness is not
  // guaranteed -- callers fall back to max flow on Complete == false.
  for (unsigned Rotation = 0; Rotation != K - 1; ++Rotation) {
    std::vector<std::vector<Permutation>> Paths;
    PermSet Avoid; // committed internals + reserved first hops + Src.
    Avoid.insert(Src);
    for (const Permutation &Hop : FirstHops)
      Avoid.insert(Hop);
    bool Failed = false;
    for (unsigned I = 0; I != K - 1; ++I) {
      const Permutation &Hop = FirstHops[Order[(I + Rotation) % (K - 1)]];
      Avoid.erase(Hop); // this path's own entry corridor.
      if (Hop == Dst) {
        Paths.push_back({Src, Dst});
        continue;
      }
      // Dist + 7 on the segment keeps every path within Dist + 8 total,
      // comfortably above the worst detour the avoid sets force.
      std::optional<std::vector<Permutation>> Segment =
          starAvoidingPath(Hop, Dst, Avoid, Dist + 7);
      if (!Segment) {
        Failed = true;
        break;
      }
      std::vector<Permutation> Path{Src};
      Path.insert(Path.end(), Segment->begin(), Segment->end());
      // Commit the internals (everything but Dst, including Hop itself).
      for (size_t P = 0; P + 1 < Segment->size(); ++P)
        Avoid.insert((*Segment)[P]);
      Paths.push_back(std::move(Path));
    }
    if (Paths.size() > Container.Paths.size())
      Container.Paths = std::move(Paths); // best partial so far.
    if (!Failed) {
      Container.Complete = true;
      break;
    }
  }
  sortShortestFirst(Container.Paths);
  return Container;
}

FaultRouter::FaultRouter(const ExplicitScg &Net)
    : Net(Net), G(Net.toGraph()),
      StarFamily(Net.network().kind() == NetworkKind::Star) {}

PathContainer FaultRouter::buildContainer(NodeId Src, NodeId Dst) const {
  assert(Src != Dst && "container endpoints must differ");
  PathContainer Container;
  Container.Src = Src;
  Container.Dst = Dst;
  if (StarFamily) {
    StarContainer Star = buildStarContainer(Net.label(Src), Net.label(Dst));
    if (Star.Complete) {
      Container.Construction = PathContainer::Method::StarGenerator;
      Container.Paths.reserve(Star.Paths.size());
      for (const std::vector<Permutation> &Labels : Star.Paths) {
        std::vector<NodeId> Path;
        Path.reserve(Labels.size());
        for (const Permutation &Label : Labels)
          Path.push_back(Net.rankOf(Label));
        Container.Paths.push_back(std::move(Path));
      }
      return Container;
    }
  }
  Container.Construction = PathContainer::Method::MaxFlow;
  Container.Paths = nodeDisjointPaths(G, Src, Dst);
  return Container;
}

FaultRouteResult FaultRouter::route(const PathContainer &C,
                                    const FaultSet &Faults) const {
  FaultRouteResult Result;
  Result.FaultFreeHops = C.shortestLength();
  // A dead endpoint is not routable at all; no hops are spent finding out.
  if (Faults.nodeFailed(C.Src) || Faults.nodeFailed(C.Dst))
    return Result;
  for (const std::vector<NodeId> &Path : C.Paths) {
    ++Result.PathsTried;
    unsigned Walked = 0;
    bool Intact = true;
    for (size_t Hop = 0; Hop + 1 < Path.size(); ++Hop) {
      NodeId From = Path[Hop], To = Path[Hop + 1];
      if (Faults.linkFailed(From, To) || Faults.nodeFailed(To)) {
        Intact = false;
        break;
      }
      ++Walked;
    }
    if (Intact) {
      Result.Delivered = true;
      Result.HopsTraversed += Walked;
      Result.RouteLength = unsigned(Path.size() - 1);
      return Result;
    }
    // The probe walked to the dead hop and backtracked to the source.
    Result.HopsTraversed += 2 * Walked;
  }
  return Result;
}
