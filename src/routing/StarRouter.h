//===- routing/StarRouter.h - Optimal star-graph routing -------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shortest-path routing in the k-star graph (Akers-Krishnamurthy [2]).
/// Routing from U to V is sorting the relative permutation P = U^-1 o V:
/// find dimensions j1, ..., jm with T_{j1} o T_{j2} o ... o T_{jm} = P,
/// since then U o T_{j1} o ... o T_{jm} = V. In BAG terms this exchanges
/// the outside ball with balls in the single box until every ball is home.
/// The greedy send-the-front-symbol-home rule is optimal, and the
/// closed-form distance
///   d(P) = m + c - 2 * [P displaces position 1]
/// (m displaced symbols, c nontrivial cycles) matches it; both are
/// verified against BFS in the tests.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_ROUTING_STARROUTER_H
#define SCG_ROUTING_STARROUTER_H

#include "perm/Permutation.h"

#include <vector>

namespace scg {

/// Returns star dimensions (values j in 2..k, meaning generator T_j) of a
/// shortest word with T_{j1} o T_{j2} o ... o T_{jm} = \p P. Empty when
/// \p P is the identity.
std::vector<unsigned> starWordForPermutation(const Permutation &P);

/// Returns the star dimensions of a shortest route from \p Src to \p Dst
/// (a word for Src^-1 o Dst).
std::vector<unsigned> starRouteDimensions(const Permutation &Src,
                                          const Permutation &Dst);

/// Closed-form star-graph distance of the relative permutation \p P.
unsigned starDistance(const Permutation &P);

/// Star-graph distance between two labels.
unsigned starDistance(const Permutation &Src, const Permutation &Dst);

} // namespace scg

#endif // SCG_ROUTING_STARROUTER_H
