//===- perm/SJT.h - Steinhaus-Johnson-Trotter enumeration ------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steinhaus-Johnson-Trotter (plain changes) enumeration of S_k: every
/// consecutive pair of permutations differs by one adjacent transposition.
/// This is a Hamiltonian path in the bubble-sort graph and the backbone of
/// the mesh -> transposition-network embedding of Corollary 6: rows of the
/// (k-1)! x k mesh are S_{k-1} in SJT order, columns are the insertion slot
/// of symbol k (see embedding/MeshEmbeddings.h).
///
//===----------------------------------------------------------------------===//

#ifndef SCG_PERM_SJT_H
#define SCG_PERM_SJT_H

#include "perm/Permutation.h"

namespace scg {

/// Iterator-style generator of S_k in Steinhaus-Johnson-Trotter order.
///
/// Usage:
/// \code
///   SjtEnumerator E(4);
///   do { use(E.current()); } while (E.advance());
/// \endcode
class SjtEnumerator {
public:
  /// Starts the enumeration at the identity permutation on \p K symbols.
  explicit SjtEnumerator(unsigned K);

  /// Returns the current permutation.
  const Permutation &current() const { return Current; }

  /// Advances to the next permutation; returns false when the enumeration is
  /// exhausted (the current permutation is the last one).
  bool advance();

  /// Returns the (0-based) position of the left element of the adjacent
  /// transposition performed by the most recent successful advance().
  /// Undefined before the first advance.
  unsigned lastSwapPosition() const { return LastSwap; }

private:
  Permutation Current;
  std::vector<int> Direction; // per symbol: -1 left, +1 right.
  unsigned LastSwap = 0;
};

/// Returns all of S_k in SJT order (k! entries); asserts k <= 10.
std::vector<Permutation> sjtOrder(unsigned K);

} // namespace scg

#endif // SCG_PERM_SJT_H
