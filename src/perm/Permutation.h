//===- perm/Permutation.h - Dense permutations on k symbols ----*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense permutations of {0, ..., k-1}, the label algebra underlying every
/// super Cayley graph in the paper. A node label "u_1 u_2 ... u_k" from the
/// paper (positions and symbols 1-based) is stored 0-based: entry(P) is the
/// symbol at position P. Generators are themselves permutations of positions
/// acting by right composition: applying generator Sigma to label U yields
/// V with V[P] = U[Sigma[P]], i.e. V = U o Sigma (see DESIGN.md section 1).
///
//===----------------------------------------------------------------------===//

#ifndef SCG_PERM_PERMUTATION_H
#define SCG_PERM_PERMUTATION_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace scg {

/// A permutation of {0, ..., k-1} in one-line notation.
///
/// Supports k up to 255 (symbols are stored as uint8_t); the explicit graph
/// algorithms in this project only enumerate up to k = 12 anyway since a
/// super Cayley graph has k! nodes.
class Permutation {
public:
  /// Constructs the empty (k = 0) permutation.
  Permutation() = default;

  /// Constructs the identity permutation on \p K symbols.
  static Permutation identity(unsigned K);

  /// Constructs a permutation from one-line notation; \p OneLine must contain
  /// each of 0..size-1 exactly once (asserted).
  static Permutation fromOneLine(std::vector<uint8_t> OneLine);

  /// Parses "3 1 2" style 1-based one-line notation (the paper's convention);
  /// returns the empty permutation on malformed input.
  static Permutation parseOneBased(const std::string &Text);

  /// Returns the number of symbols k.
  unsigned size() const { return Entries.size(); }

  /// Returns the symbol at (0-based) position \p Pos.
  uint8_t operator[](unsigned Pos) const {
    assert(Pos < Entries.size() && "position out of range");
    return Entries[Pos];
  }

  /// Returns this o Rhs: (this o Rhs)[P] = this[Rhs[P]]. When \p Rhs is a
  /// generator acting on positions, this is one hop along that generator.
  Permutation compose(const Permutation &Rhs) const;

  /// Returns the inverse permutation.
  Permutation inverse() const;

  /// Applies generator \p Sigma (a permutation of positions) to this label:
  /// shorthand for compose(Sigma).
  Permutation applyGenerator(const Permutation &Sigma) const {
    return compose(Sigma);
  }

  /// Returns the position of symbol \p Symbol (the inverse image).
  unsigned positionOf(uint8_t Symbol) const;

  /// Returns true if this is the identity.
  bool isIdentity() const;

  /// Returns the cycles of length >= 2, each cycle listed as the sequence of
  /// symbols it moves, canonicalized to start at the smallest symbol, cycles
  /// sorted by their smallest symbol.
  std::vector<std::vector<uint8_t>> nontrivialCycles() const;

  /// Returns the number of symbols s with perm[s] != s.
  unsigned numDisplaced() const;

  /// Returns +1 or -1, the sign of the permutation.
  int sign() const;

  /// Renders 1-based one-line notation, e.g. "3 1 2".
  std::string str() const;

  /// Renders the ball-arrangement-game view with \p N balls per box:
  /// "0 | 1 2 | 4 3" (outside ball, then l boxes). Requires size == l*n+1.
  std::string strBoxes(unsigned N) const;

  bool operator==(const Permutation &Rhs) const = default;

  /// Lexicographic order on one-line notation (for deterministic sorting).
  bool operator<(const Permutation &Rhs) const {
    return Entries < Rhs.Entries;
  }

  /// Raw access for algorithms that need the whole word at once.
  const std::vector<uint8_t> &oneLine() const { return Entries; }

private:
  std::vector<uint8_t> Entries;
};

/// Hash functor so permutations can key unordered containers.
struct PermutationHash {
  size_t operator()(const Permutation &P) const {
    // FNV-1a over the one-line word.
    size_t H = 1469598103934665603ULL;
    for (uint8_t E : P.oneLine()) {
      H ^= E;
      H *= 1099511628211ULL;
    }
    return H;
  }
};

} // namespace scg

#endif // SCG_PERM_PERMUTATION_H
