//===- perm/Permutation.h - Dense permutations on k symbols ----*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense permutations of {0, ..., k-1}, the label algebra underlying every
/// super Cayley graph in the paper. A node label "u_1 u_2 ... u_k" from the
/// paper (positions and symbols 1-based) is stored 0-based: entry(P) is the
/// symbol at position P. Generators are themselves permutations of positions
/// acting by right composition: applying generator Sigma to label U yields
/// V with V[P] = U[Sigma[P]], i.e. V = U o Sigma (see DESIGN.md section 1).
///
/// Storage is a 16-byte small buffer: every label the rank-space kernels
/// (compose, rank, unrank, BFS hops) ever touch has k <= 16, lives inline,
/// and is zero-padded past size() so equality and hashing are two aligned
/// 64-bit loads. Larger k (the symbolic schedule algebra and group-order
/// certificates go up to k = 65) spills to a heap word; none of those paths
/// are hot. See DESIGN.md section 7 for the invariants.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_PERM_PERMUTATION_H
#define SCG_PERM_PERMUTATION_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace scg {

/// A permutation of {0, ..., k-1} in one-line notation.
///
/// Supports k up to 255 (symbols are stored as uint8_t). Labels with
/// k <= InlineCapacity = 16 are stored inline and are allocation-free to
/// create, copy, compose, and hash -- the explicit graph algorithms only
/// enumerate up to k = 10 (k! nodes) and the benches route symbolically up
/// to k = 13, so the entire hot path stays in registers and L1.
class Permutation {
public:
  /// Inline small-buffer capacity; beyond it the word lives on the heap.
  static constexpr unsigned InlineCapacity = 16;

  /// Constructs the empty (k = 0) permutation.
  Permutation() = default;

  Permutation(const Permutation &Rhs) { copyFrom(Rhs); }
  Permutation &operator=(const Permutation &Rhs) {
    if (this != &Rhs) {
      destroy();
      copyFrom(Rhs);
    }
    return *this;
  }
  Permutation(Permutation &&Rhs) noexcept { moveFrom(Rhs); }
  Permutation &operator=(Permutation &&Rhs) noexcept {
    if (this != &Rhs) {
      destroy();
      moveFrom(Rhs);
    }
    return *this;
  }
  ~Permutation() { destroy(); }

  /// Constructs the identity permutation on \p K symbols.
  static Permutation identity(unsigned K);

  /// Constructs a permutation from one-line notation; \p OneLine must contain
  /// each of 0..size-1 exactly once (asserted).
  static Permutation fromOneLine(std::vector<uint8_t> OneLine);

  /// Constructs from a raw one-line word of \p K symbols. The kernel-layer
  /// entry point (unranking, chunked enumeration): no container round trip.
  /// \p Word must be a permutation of 0..K-1 (asserted).
  static Permutation fromWord(const uint8_t *Word, unsigned K);

  /// Parses "3 1 2" style 1-based one-line notation (the paper's convention);
  /// returns the empty permutation on malformed input.
  static Permutation parseOneBased(const std::string &Text);

  /// Returns the number of symbols k.
  unsigned size() const { return Size; }

  /// Returns the symbol at (0-based) position \p Pos.
  uint8_t operator[](unsigned Pos) const {
    assert(Pos < Size && "position out of range");
    return data()[Pos];
  }

  /// Returns this o Rhs: (this o Rhs)[P] = this[Rhs[P]]. When \p Rhs is a
  /// generator acting on positions, this is one hop along that generator.
  Permutation compose(const Permutation &Rhs) const {
    Permutation Result;
    composeInto(Rhs, Result);
    return Result;
  }

  /// Computes this o Rhs into \p Out. Allocation-free for inline sizes
  /// (k <= 16), and \p Out may alias this or \p Rhs: one graph hop is a
  /// single in-place word permute.
  void composeInto(const Permutation &Rhs, Permutation &Out) const {
    assert(Size == Rhs.Size && "size mismatch in composition");
    if (isInline()) {
      const uint8_t *A = Inline, *B = Rhs.Inline;
      uint8_t Tmp[InlineCapacity] = {};
      for (unsigned P = 0; P != Size; ++P)
        Tmp[P] = A[B[P]];
      Out.destroy();
      std::memcpy(Out.Inline, Tmp, InlineCapacity);
      Out.Size = Size;
      return;
    }
    composeIntoSlow(Rhs, Out);
  }

  /// Returns the inverse permutation.
  Permutation inverse() const;

  /// Applies generator \p Sigma (a permutation of positions) to this label:
  /// shorthand for compose(Sigma).
  Permutation applyGenerator(const Permutation &Sigma) const {
    return compose(Sigma);
  }

  /// Returns the position of symbol \p Symbol (the inverse image).
  unsigned positionOf(uint8_t Symbol) const;

  /// Returns true if this is the identity.
  bool isIdentity() const;

  /// Returns the cycles of length >= 2, each cycle listed as the sequence of
  /// symbols it moves, canonicalized to start at the smallest symbol, cycles
  /// sorted by their smallest symbol.
  std::vector<std::vector<uint8_t>> nontrivialCycles() const;

  /// Returns the number of symbols s with perm[s] != s.
  unsigned numDisplaced() const;

  /// Returns +1 or -1, the sign of the permutation.
  int sign() const;

  /// Renders 1-based one-line notation, e.g. "3 1 2".
  std::string str() const;

  /// Renders the ball-arrangement-game view with \p N balls per box:
  /// "0 | 1 2 | 4 3" (outside ball, then l boxes). Requires size == l*n+1.
  std::string strBoxes(unsigned N) const;

  /// Equality: word-at-a-time for inline sizes (the zero-padding invariant
  /// makes two 64-bit compares sufficient), memcmp for spilled ones.
  bool operator==(const Permutation &Rhs) const {
    if (Size != Rhs.Size)
      return false;
    if (isInline())
      return loWord() == Rhs.loWord() && hiWord() == Rhs.hiWord();
    return std::memcmp(Heap, Rhs.Heap, Size) == 0;
  }

  /// Lexicographic order on one-line notation (for deterministic sorting).
  bool operator<(const Permutation &Rhs) const {
    unsigned Common = Size < Rhs.Size ? Size : Rhs.Size;
    int Cmp = std::memcmp(data(), Rhs.data(), Common);
    return Cmp != 0 ? Cmp < 0 : Size < Rhs.Size;
  }

  /// Raw access for algorithms that need the whole word at once.
  std::span<const uint8_t> oneLine() const { return {data(), Size}; }

  /// The one-line word as an owning vector (for callers that store words in
  /// containers; prefer oneLine() on hot paths).
  std::vector<uint8_t> oneLineVector() const {
    return {data(), data() + Size};
  }

  /// True when the word is stored inline (k <= 16) -- the allocation-free
  /// regime every rank-space kernel operates in.
  bool isInline() const { return Size <= InlineCapacity; }

  /// The low/high 64-bit halves of the zero-padded inline word, for
  /// word-at-a-time hashing and equality. Inline sizes only.
  uint64_t loWord() const {
    assert(isInline() && "word access requires inline storage");
    uint64_t W;
    std::memcpy(&W, Inline, 8);
    return W;
  }
  uint64_t hiWord() const {
    assert(isInline() && "word access requires inline storage");
    uint64_t W;
    std::memcpy(&W, Inline + 8, 8);
    return W;
  }

private:
  const uint8_t *data() const { return isInline() ? Inline : Heap; }
  uint8_t *data() { return isInline() ? Inline : Heap; }

  /// Makes this a permutation of \p K symbols with uninitialized entries
  /// (inline tail zeroed); returns the writable word.
  uint8_t *resizeUninit(unsigned K);

  void destroy() {
    if (!isInline())
      delete[] Heap;
  }
  void copyFrom(const Permutation &Rhs) {
    Size = Rhs.Size;
    if (Rhs.isInline())
      std::memcpy(Inline, Rhs.Inline, InlineCapacity);
    else {
      Heap = new uint8_t[Size];
      std::memcpy(Heap, Rhs.Heap, Size);
    }
  }
  void moveFrom(Permutation &Rhs) noexcept {
    Size = Rhs.Size;
    if (Rhs.isInline())
      std::memcpy(Inline, Rhs.Inline, InlineCapacity);
    else {
      Heap = Rhs.Heap;
      Rhs.Size = 0;
      std::memset(Rhs.Inline, 0, InlineCapacity);
    }
  }

  void composeIntoSlow(const Permutation &Rhs, Permutation &Out) const;

  /// Inline words are zero-padded past Size (invariant maintained by every
  /// mutator) so equality/hashing can compare whole 64-bit words; spilled
  /// words are exact-size heap blocks.
  union {
    alignas(8) uint8_t Inline[InlineCapacity] = {};
    uint8_t *Heap;
  };
  uint8_t Size = 0;
};

static_assert(sizeof(Permutation) <= 24, "labels must stay register-friendly");

/// Hash functor so permutations can key unordered containers: two 64-bit
/// loads mixed with a splitmix64-style finalizer for inline words, an FNV
/// byte loop for the (cold) spilled ones.
struct PermutationHash {
  size_t operator()(const Permutation &P) const {
    uint64_t H;
    if (P.isInline()) {
      H = P.loWord() * 0x9e3779b97f4a7c15ULL;
      H ^= P.hiWord() + 0xbf58476d1ce4e5b9ULL + (H << 6) + (H >> 2);
      H ^= uint64_t(P.size()) << 56;
    } else {
      H = 1469598103934665603ULL;
      for (uint8_t E : P.oneLine()) {
        H ^= E;
        H *= 1099511628211ULL;
      }
    }
    H ^= H >> 30;
    H *= 0xbf58476d1ce4e5b9ULL;
    H ^= H >> 27;
    H *= 0x94d049bb133111ebULL;
    H ^= H >> 31;
    return static_cast<size_t>(H);
  }
};

} // namespace scg

#endif // SCG_PERM_PERMUTATION_H
