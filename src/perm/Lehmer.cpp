//===- perm/Lehmer.cpp - Lehmer codes and permutation ranking ------------===//

#include "perm/Lehmer.h"

#include <cassert>

using namespace scg;

uint64_t scg::factorial(unsigned K) {
  assert(K <= 20 && "k! overflows uint64_t beyond k = 20");
  uint64_t Result = 1;
  for (unsigned I = 2; I <= K; ++I)
    Result *= I;
  return Result;
}

std::vector<uint8_t> scg::lehmerCode(const Permutation &P) {
  unsigned K = P.size();
  std::vector<uint8_t> Code(K, 0);
  for (unsigned I = 0; I != K; ++I) {
    unsigned Smaller = 0;
    for (unsigned J = I + 1; J != K; ++J)
      if (P[J] < P[I])
        ++Smaller;
    Code[I] = static_cast<uint8_t>(Smaller);
  }
  return Code;
}

Permutation scg::fromLehmerCode(const std::vector<uint8_t> &Code) {
  unsigned K = Code.size();
  // Remaining symbols in increasing order; c_i selects the c_i-th remaining.
  std::vector<uint8_t> Remaining;
  Remaining.reserve(K);
  for (unsigned I = 0; I != K; ++I)
    Remaining.push_back(static_cast<uint8_t>(I));
  std::vector<uint8_t> OneLine;
  OneLine.reserve(K);
  for (unsigned I = 0; I != K; ++I) {
    assert(Code[I] < Remaining.size() && "Lehmer digit out of range");
    OneLine.push_back(Remaining[Code[I]]);
    Remaining.erase(Remaining.begin() + Code[I]);
  }
  return Permutation::fromOneLine(std::move(OneLine));
}

uint64_t scg::rankPermutation(const Permutation &P) {
  unsigned K = P.size();
  std::vector<uint8_t> Code = lehmerCode(P);
  uint64_t Rank = 0;
  for (unsigned I = 0; I != K; ++I)
    Rank = Rank * (K - I) + Code[I];
  return Rank;
}

Permutation scg::unrankPermutation(uint64_t Rank, unsigned K) {
  assert(Rank < factorial(K) && "rank out of range");
  std::vector<uint8_t> Code(K, 0);
  for (unsigned I = K; I != 0; --I) {
    unsigned Radix = K - I + 1; // digit I-1 has radix K - (I-1).
    Code[I - 1] = static_cast<uint8_t>(Rank % Radix);
    Rank /= Radix;
  }
  return fromLehmerCode(Code);
}
