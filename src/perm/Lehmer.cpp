//===- perm/Lehmer.cpp - Lehmer codes and permutation ranking ------------===//

#include "perm/Lehmer.h"

#include <array>
#include <bit>
#include <cassert>

using namespace scg;

namespace {

/// 0! .. 20!, the whole range representable in 64 bits.
constexpr std::array<uint64_t, 21> Factorials = [] {
  std::array<uint64_t, 21> T{};
  T[0] = 1;
  for (unsigned I = 1; I != T.size(); ++I)
    T[I] = T[I - 1] * I;
  return T;
}();

/// Isolates the \p Index-th (0-based, from the LSB) set bit of \p Mask.
/// \p Mask must have more than \p Index set bits. Each clear-lowest step is
/// one and/sub, so selecting digit c costs c single-cycle ops (c < 16).
inline uint32_t selectBit(uint32_t Mask, unsigned Index) {
  for (; Index != 0; --Index)
    Mask &= Mask - 1; // clear lowest set bit.
  return Mask & (~Mask + 1u);
}

} // namespace

uint64_t scg::factorial(unsigned K) {
  assert(K <= 20 && "k! overflows uint64_t beyond k = 20");
  return Factorials[K];
}

std::vector<uint8_t> scg::lehmerCode(const Permutation &P) {
  // Generic any-k form: c_i = |{j > i : P[j] < P[i]}|. Quadratic, but this
  // is the symbolic-analysis entry point (k up to 255), not the rank kernel.
  unsigned K = P.size();
  std::vector<uint8_t> Code(K, 0);
  for (unsigned I = 0; I != K; ++I) {
    unsigned Count = 0;
    for (unsigned J = I + 1; J != K; ++J)
      Count += P[J] < P[I];
    Code[I] = static_cast<uint8_t>(Count);
  }
  return Code;
}

Permutation scg::fromLehmerCode(const std::vector<uint8_t> &Code) {
  unsigned K = Code.size();
  assert(K <= 255 && "symbols are stored as uint8_t");
  std::vector<uint8_t> Pool(K);
  for (unsigned I = 0; I != K; ++I)
    Pool[I] = static_cast<uint8_t>(I);
  std::vector<uint8_t> Word(K);
  for (unsigned I = 0; I != K; ++I) {
    assert(Code[I] < K - I && "Lehmer digit out of range");
    Word[I] = Pool[Code[I]];
    Pool.erase(Pool.begin() + Code[I]);
  }
  return Permutation::fromWord(Word.data(), K);
}

uint64_t scg::rankPermutation(const Permutation &P) {
  unsigned K = P.size();
  assert(K <= Permutation::InlineCapacity &&
         "rank kernel covers the inline (enumerable) regime only");
  // c_i = |{j > i : P[j] < P[i]}| = number of not-yet-seen symbols smaller
  // than P[i]; track "not yet seen" as a bitmask and popcount a prefix.
  uint32_t Remaining = (K == 0) ? 0 : (~0u >> (32 - K));
  uint64_t Rank = 0;
  for (unsigned I = 0; I != K; ++I) {
    uint32_t Bit = 1u << P[I];
    Rank += uint64_t(std::popcount(Remaining & (Bit - 1u))) *
            Factorials[K - 1 - I];
    Remaining ^= Bit;
  }
  return Rank;
}

Permutation scg::unrankPermutation(uint64_t Rank, unsigned K) {
  assert(K <= Permutation::InlineCapacity &&
         "unrank kernel covers the inline (enumerable) regime only");
  assert(Rank < factorial(K) && "rank out of range");
  // Digits low-to-high (small radices), then symbols high-to-low by
  // select-bit against the remaining-symbol mask.
  uint8_t Code[Permutation::InlineCapacity];
  for (unsigned I = K; I != 0; --I) {
    unsigned Radix = K - I + 1; // digit I-1 has radix K - (I-1).
    Code[I - 1] = static_cast<uint8_t>(Rank % Radix);
    Rank /= Radix;
  }
  uint32_t Remaining = (K == 0) ? 0 : (~0u >> (32 - K));
  uint8_t Word[Permutation::InlineCapacity];
  for (unsigned I = 0; I != K; ++I) {
    uint32_t Bit = selectBit(Remaining, Code[I]);
    Word[I] = static_cast<uint8_t>(std::countr_zero(Bit));
    Remaining ^= Bit;
  }
  return Permutation::fromWord(Word, K);
}
