//===- perm/Lehmer.h - Lehmer codes and permutation ranking ----*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lehmer codes and the factorial number system. Ranking gives every node of
/// a k!-node super Cayley graph a dense integer id in [0, k!), which is what
/// the explicit-graph builder, the simulator, and the embedding metrics use
/// instead of hashing permutations. The Lehmer code itself doubles as the
/// mixed-radix coordinate system of the 2x3x...xk mesh embedding
/// (Corollary 7 / [11]).
///
/// The rank/unrank kernels are allocation-free and table-driven: factorials
/// come from a precomputed table, and the "symbols remaining" set is a
/// 16-bit mask, so each Lehmer digit is one masked popcount (ranking) or one
/// select-bit (unranking) instead of the textbook O(k) scan per digit.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_PERM_LEHMER_H
#define SCG_PERM_LEHMER_H

#include "perm/Permutation.h"

#include <cstdint>

namespace scg {

/// Returns k! as a 64-bit value; asserts k <= 20 (the last k where k! fits).
/// A table lookup, valid in constant expressions.
uint64_t factorial(unsigned K);

/// Returns the Lehmer code (c_0, ..., c_{k-1}) of \p P, where c_i counts the
/// entries to the right of position i that are smaller than P[i]. Always
/// c_i < k - i, and c_{k-1} = 0.
std::vector<uint8_t> lehmerCode(const Permutation &P);

/// Inverse of lehmerCode.
Permutation fromLehmerCode(const std::vector<uint8_t> &Code);

/// Ranks \p P into [0, k!) lexicographically (identity has rank 0).
/// Allocation-free: one masked popcount per symbol.
uint64_t rankPermutation(const Permutation &P);

/// Inverse of rankPermutation for permutations on \p K symbols.
/// Allocation-free (the result is an inline-storage value).
Permutation unrankPermutation(uint64_t Rank, unsigned K);

} // namespace scg

#endif // SCG_PERM_LEHMER_H
