//===- perm/SJT.cpp - Steinhaus-Johnson-Trotter enumeration --------------===//

#include "perm/SJT.h"

#include "perm/Lehmer.h"

#include <algorithm>
#include <cassert>

using namespace scg;

SjtEnumerator::SjtEnumerator(unsigned K)
    : Current(Permutation::identity(K)), Direction(K, -1) {}

bool SjtEnumerator::advance() {
  unsigned K = Current.size();
  // Find the largest mobile symbol: a symbol whose direction points at a
  // smaller adjacent symbol.
  std::span<const uint8_t> Line = Current.oneLine();
  int BestSymbol = -1;
  unsigned BestPos = 0;
  for (unsigned Pos = 0; Pos != K; ++Pos) {
    uint8_t Sym = Line[Pos];
    int Dir = Direction[Sym];
    int Target = static_cast<int>(Pos) + Dir;
    if (Target < 0 || Target >= static_cast<int>(K))
      continue;
    if (Line[Target] < Sym && Sym > BestSymbol) {
      BestSymbol = Sym;
      BestPos = Pos;
    }
  }
  if (BestSymbol < 0)
    return false;

  int Dir = Direction[BestSymbol];
  unsigned NewPos = BestPos + Dir;
  std::vector<uint8_t> Next(Line.begin(), Line.end());
  std::swap(Next[BestPos], Next[NewPos]);
  Current = Permutation::fromOneLine(std::move(Next));
  LastSwap = std::min(BestPos, NewPos);

  // Reverse the direction of all symbols larger than the moved one.
  for (unsigned Sym = BestSymbol + 1; Sym != K; ++Sym)
    Direction[Sym] = -Direction[Sym];
  return true;
}

std::vector<Permutation> scg::sjtOrder(unsigned K) {
  assert(K <= 10 && "sjtOrder materializes k! permutations");
  std::vector<Permutation> Result;
  Result.reserve(factorial(K));
  SjtEnumerator E(K);
  do {
    Result.push_back(E.current());
  } while (E.advance());
  assert(Result.size() == factorial(K) && "SJT enumeration incomplete");
  return Result;
}
