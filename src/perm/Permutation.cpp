//===- perm/Permutation.cpp - Dense permutations on k symbols ------------===//

#include "perm/Permutation.h"

#include "support/Format.h"

#include <algorithm>
#include <sstream>

using namespace scg;

Permutation Permutation::identity(unsigned K) {
  Permutation P;
  P.Entries.resize(K);
  for (unsigned I = 0; I != K; ++I)
    P.Entries[I] = static_cast<uint8_t>(I);
  return P;
}

Permutation Permutation::fromOneLine(std::vector<uint8_t> OneLine) {
  assert(OneLine.size() < 256 && "permutation too large for uint8_t symbols");
#ifndef NDEBUG
  std::vector<bool> Seen(OneLine.size(), false);
  for (uint8_t E : OneLine) {
    assert(E < OneLine.size() && "symbol out of range");
    assert(!Seen[E] && "duplicate symbol in one-line notation");
    Seen[E] = true;
  }
#endif
  Permutation P;
  P.Entries = std::move(OneLine);
  return P;
}

Permutation Permutation::parseOneBased(const std::string &Text) {
  std::istringstream IS(Text);
  std::vector<uint8_t> OneLine;
  long Value;
  while (IS >> Value) {
    if (Value < 1 || Value > 255)
      return Permutation();
    OneLine.push_back(static_cast<uint8_t>(Value - 1));
  }
  // Validate: must be a permutation of 0..size-1.
  std::vector<bool> Seen(OneLine.size(), false);
  for (uint8_t E : OneLine) {
    if (E >= OneLine.size() || Seen[E])
      return Permutation();
    Seen[E] = true;
  }
  return fromOneLine(std::move(OneLine));
}

Permutation Permutation::compose(const Permutation &Rhs) const {
  assert(size() == Rhs.size() && "size mismatch in composition");
  Permutation Result;
  Result.Entries.resize(size());
  for (unsigned P = 0; P != size(); ++P)
    Result.Entries[P] = Entries[Rhs.Entries[P]];
  return Result;
}

Permutation Permutation::inverse() const {
  Permutation Result;
  Result.Entries.resize(size());
  for (unsigned P = 0; P != size(); ++P)
    Result.Entries[Entries[P]] = static_cast<uint8_t>(P);
  return Result;
}

unsigned Permutation::positionOf(uint8_t Symbol) const {
  for (unsigned P = 0; P != size(); ++P)
    if (Entries[P] == Symbol)
      return P;
  assert(false && "symbol not present");
  return size();
}

bool Permutation::isIdentity() const {
  for (unsigned P = 0; P != size(); ++P)
    if (Entries[P] != P)
      return false;
  return true;
}

std::vector<std::vector<uint8_t>> Permutation::nontrivialCycles() const {
  std::vector<std::vector<uint8_t>> Cycles;
  std::vector<bool> Visited(size(), false);
  for (unsigned Start = 0; Start != size(); ++Start) {
    if (Visited[Start] || Entries[Start] == Start)
      continue;
    std::vector<uint8_t> Cycle;
    unsigned Cur = Start;
    while (!Visited[Cur]) {
      Visited[Cur] = true;
      Cycle.push_back(static_cast<uint8_t>(Cur));
      Cur = Entries[Cur];
    }
    Cycles.push_back(std::move(Cycle));
  }
  return Cycles;
}

unsigned Permutation::numDisplaced() const {
  unsigned Count = 0;
  for (unsigned P = 0; P != size(); ++P)
    if (Entries[P] != P)
      ++Count;
  return Count;
}

int Permutation::sign() const {
  // Parity = (-1)^(k - number of cycles including fixed points).
  unsigned NumCycles = 0;
  std::vector<bool> Visited(size(), false);
  for (unsigned Start = 0; Start != size(); ++Start) {
    if (Visited[Start])
      continue;
    ++NumCycles;
    unsigned Cur = Start;
    while (!Visited[Cur]) {
      Visited[Cur] = true;
      Cur = Entries[Cur];
    }
  }
  return ((size() - NumCycles) % 2 == 0) ? 1 : -1;
}

std::string Permutation::str() const {
  std::vector<unsigned> OneBased;
  OneBased.reserve(size());
  for (uint8_t E : Entries)
    OneBased.push_back(E + 1u);
  return join(OneBased, " ");
}

std::string Permutation::strBoxes(unsigned N) const {
  assert(N != 0 && (size() - 1) % N == 0 &&
         "label length must be l*n+1 for the boxes view");
  std::ostringstream OS;
  OS << unsigned(Entries[0]) + 1;
  for (unsigned P = 1; P != size(); ++P) {
    OS << (((P - 1) % N == 0) ? " | " : " ");
    OS << unsigned(Entries[P]) + 1;
  }
  return OS.str();
}
