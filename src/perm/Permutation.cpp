//===- perm/Permutation.cpp - Dense permutations on k symbols ------------===//

#include "perm/Permutation.h"

#include "support/Format.h"

#include <algorithm>
#include <bitset>
#include <sstream>

using namespace scg;

#ifndef NDEBUG
/// Debug-only: \p Word holds each of 0..K-1 exactly once.
static bool isPermutationWord(const uint8_t *Word, unsigned K) {
  std::bitset<256> Seen;
  for (unsigned I = 0; I != K; ++I) {
    if (Word[I] >= K || Seen[Word[I]])
      return false;
    Seen[Word[I]] = true;
  }
  return true;
}
#endif

uint8_t *Permutation::resizeUninit(unsigned K) {
  assert(K <= 255 && "symbols are stored as uint8_t");
  destroy();
  Size = static_cast<uint8_t>(K);
  if (isInline()) {
    std::memset(Inline, 0, InlineCapacity);
    return Inline;
  }
  Heap = new uint8_t[K];
  return Heap;
}

void Permutation::composeIntoSlow(const Permutation &Rhs,
                                  Permutation &Out) const {
  // Spilled sizes: compose through a temporary so Out may alias an operand.
  Permutation Result;
  uint8_t *Word = Result.resizeUninit(Size);
  const uint8_t *A = data(), *B = Rhs.data();
  for (unsigned P = 0; P != Size; ++P)
    Word[P] = A[B[P]];
  Out = std::move(Result);
}

Permutation Permutation::identity(unsigned K) {
  Permutation P;
  uint8_t *Word = P.resizeUninit(K);
  for (unsigned I = 0; I != K; ++I)
    Word[I] = static_cast<uint8_t>(I);
  return P;
}

Permutation Permutation::fromWord(const uint8_t *Word, unsigned K) {
  assert(isPermutationWord(Word, K) && "word is not a permutation of 0..K-1");
  Permutation P;
  uint8_t *Dst = P.resizeUninit(K);
  if (K != 0)
    std::memcpy(Dst, Word, K);
  return P;
}

Permutation Permutation::fromOneLine(std::vector<uint8_t> OneLine) {
  return fromWord(OneLine.data(), OneLine.size());
}

Permutation Permutation::parseOneBased(const std::string &Text) {
  std::istringstream IS(Text);
  std::vector<uint8_t> OneLine;
  long Value;
  while (IS >> Value) {
    if (Value < 1 || Value > 255)
      return Permutation();
    OneLine.push_back(static_cast<uint8_t>(Value - 1));
  }
  // Validate: must be a permutation of 0..size-1.
  if (OneLine.size() > 255)
    return Permutation();
  std::bitset<256> Seen;
  for (uint8_t E : OneLine) {
    if (E >= OneLine.size() || Seen[E])
      return Permutation();
    Seen[E] = true;
  }
  return fromOneLine(std::move(OneLine));
}

Permutation Permutation::inverse() const {
  Permutation Result;
  uint8_t *Word = Result.resizeUninit(Size);
  const uint8_t *Src = data();
  for (unsigned P = 0; P != Size; ++P)
    Word[Src[P]] = static_cast<uint8_t>(P);
  return Result;
}

unsigned Permutation::positionOf(uint8_t Symbol) const {
  const uint8_t *Word = data();
  for (unsigned P = 0; P != Size; ++P)
    if (Word[P] == Symbol)
      return P;
  assert(false && "symbol not present");
  return Size;
}

bool Permutation::isIdentity() const { return *this == identity(Size); }

std::vector<std::vector<uint8_t>> Permutation::nontrivialCycles() const {
  const uint8_t *Word = data();
  std::vector<std::vector<uint8_t>> Cycles;
  std::bitset<256> Visited;
  for (unsigned Start = 0; Start != Size; ++Start) {
    if (Visited[Start] || Word[Start] == Start)
      continue;
    std::vector<uint8_t> Cycle;
    unsigned Cur = Start;
    while (!Visited[Cur]) {
      Visited[Cur] = true;
      Cycle.push_back(static_cast<uint8_t>(Cur));
      Cur = Word[Cur];
    }
    Cycles.push_back(std::move(Cycle));
  }
  return Cycles;
}

unsigned Permutation::numDisplaced() const {
  const uint8_t *Word = data();
  unsigned Count = 0;
  for (unsigned P = 0; P != Size; ++P)
    if (Word[P] != P)
      ++Count;
  return Count;
}

int Permutation::sign() const {
  // Parity = (-1)^(k - number of cycles including fixed points).
  const uint8_t *Word = data();
  unsigned NumCycles = 0;
  std::bitset<256> Visited;
  for (unsigned Start = 0; Start != Size; ++Start) {
    if (Visited[Start])
      continue;
    ++NumCycles;
    unsigned Cur = Start;
    while (!Visited[Cur]) {
      Visited[Cur] = true;
      Cur = Word[Cur];
    }
  }
  return ((Size - NumCycles) % 2 == 0) ? 1 : -1;
}

std::string Permutation::str() const {
  const uint8_t *Word = data();
  std::vector<unsigned> OneBased;
  OneBased.reserve(Size);
  for (unsigned P = 0; P != Size; ++P)
    OneBased.push_back(Word[P] + 1u);
  return join(OneBased, " ");
}

std::string Permutation::strBoxes(unsigned N) const {
  assert(N != 0 && (Size - 1) % N == 0 &&
         "label length must be l*n+1 for the boxes view");
  const uint8_t *Word = data();
  std::ostringstream OS;
  OS << unsigned(Word[0]) + 1;
  for (unsigned P = 1; P != Size; ++P) {
    OS << (((P - 1) % N == 0) ? " | " : " ");
    OS << unsigned(Word[P]) + 1;
  }
  return OS.str();
}
