//===- perm/GroupOrder.cpp - Schreier-Sims group order --------------------===//

#include "perm/GroupOrder.h"

#include <cassert>
#include <deque>

using namespace scg;

StabilizerChain::StabilizerChain(const std::vector<Permutation> &Generators)
    : Degree(Generators.empty() ? 0 : Generators.front().size()) {
  for (const Permutation &G : Generators) {
    assert(G.size() == Degree && "mixed degrees in generator list");
    if (G.isIdentity())
      continue;
    ensureBaseCovers(G);
    StrongGens.push_back(G);
  }
  if (!Levels.empty())
    schreierSims(0);
}

void StabilizerChain::ensureBaseCovers(const Permutation &P) {
  for (unsigned B : Base)
    if (P[B] != B)
      return;
  unsigned Moved = 0;
  while (P[Moved] == Moved)
    ++Moved;
  Base.push_back(Moved);
  Levels.emplace_back();
  Levels.back().BasePoint = Moved;
}

std::vector<const Permutation *>
StabilizerChain::levelGenerators(unsigned LevelIdx) const {
  // Cumulative strong generating set: level i uses every strong generator
  // fixing the first i base points, which keeps <S_0> >= <S_1> >= ...
  // nested by construction.
  std::vector<const Permutation *> Gens;
  for (const Permutation &G : StrongGens) {
    bool Fixes = true;
    for (unsigned I = 0; I != LevelIdx && Fixes; ++I)
      Fixes = (G[Base[I]] == Base[I]);
    if (Fixes)
      Gens.push_back(&G);
  }
  return Gens;
}

void StabilizerChain::rebuildTransversal(unsigned LevelIdx) {
  unsigned BasePoint = Levels[LevelIdx].BasePoint;
  std::vector<const Permutation *> Gens = levelGenerators(LevelIdx);
  std::unordered_map<unsigned, Permutation> T;
  T.emplace(BasePoint, Permutation::identity(Degree));
  std::deque<unsigned> Queue{BasePoint};
  while (!Queue.empty()) {
    unsigned P = Queue.front();
    Queue.pop_front();
    for (const Permutation *S : Gens) {
      unsigned Q = (*S)[P];
      if (T.count(Q))
        continue;
      T.emplace(Q, S->compose(T.at(P)));
      Queue.push_back(Q);
    }
  }
  Levels[LevelIdx].Transversal = std::move(T);
}

std::pair<Permutation, unsigned>
StabilizerChain::strip(Permutation P, unsigned FromLevel) const {
  for (unsigned I = FromLevel; I != Levels.size(); ++I) {
    unsigned Image = P[Levels[I].BasePoint];
    auto It = Levels[I].Transversal.find(Image);
    if (It == Levels[I].Transversal.end())
      return {std::move(P), I};
    P = It->second.inverse().compose(P);
  }
  return {std::move(P), static_cast<unsigned>(Levels.size())};
}

void StabilizerChain::schreierSims(unsigned LevelIdx) {
  // Holt's recursive closure: on return, every level >= LevelIdx has its
  // transversal computed and all its Schreier generators sift to the
  // identity through the deeper chain.
  while (true) {
    rebuildTransversal(LevelIdx);
    std::vector<const Permutation *> Gens = levelGenerators(LevelIdx);
    // Iterate over a snapshot: the loop exits as soon as it adds anything.
    std::vector<std::pair<unsigned, Permutation>> Orbit(
        Levels[LevelIdx].Transversal.begin(),
        Levels[LevelIdx].Transversal.end());

    bool Added = false;
    for (const auto &[P, U] : Orbit) {
      for (const Permutation *S : Gens) {
        unsigned Q = (*S)[P];
        Permutation Schreier = Levels[LevelIdx]
                                   .Transversal.at(Q)
                                   .inverse()
                                   .compose(*S)
                                   .compose(U);
        if (Schreier.isIdentity())
          continue;
        auto [Residue, StopLevel] =
            strip(std::move(Schreier), LevelIdx + 1);
        if (Residue.isIdentity())
          continue;
        ensureBaseCovers(Residue);
        StrongGens.push_back(std::move(Residue));
        // Re-close the deeper levels the new generator participates in,
        // deepest first, then rescan this level (the generator fixes
        // b_0..b_{LevelIdx}, so it joined S_{LevelIdx} too and may have
        // grown this orbit).
        for (unsigned J = std::min<size_t>(StopLevel, Levels.size() - 1);
             J > LevelIdx; --J)
          schreierSims(J);
        Added = true;
        break;
      }
      if (Added)
        break;
    }
    if (!Added)
      return;
  }
}

std::vector<size_t> StabilizerChain::orbitSizes() const {
  std::vector<size_t> Sizes;
  for (const Level &L : Levels)
    Sizes.push_back(L.Transversal.size());
  return Sizes;
}

uint64_t StabilizerChain::order() const {
  assert(Degree <= 20 && "order may overflow uint64_t beyond degree 20");
  uint64_t Order = 1;
  for (const Level &L : Levels)
    Order *= L.Transversal.size();
  return Order;
}

bool StabilizerChain::contains(const Permutation &P) const {
  assert(P.size() == Degree || Degree == 0);
  if (P.isIdentity())
    return true;
  auto [Residue, LevelIdx] = strip(P, 0);
  (void)LevelIdx;
  return Residue.isIdentity();
}

uint64_t
scg::permutationGroupOrder(const std::vector<Permutation> &Generators) {
  return StabilizerChain(Generators).order();
}

bool scg::generatesSymmetricGroup(
    const std::vector<Permutation> &Generators) {
  if (Generators.empty())
    return false;
  unsigned K = Generators.front().size();
  if (K <= 1)
    return true;
  StabilizerChain Chain(Generators);
  // |G| = k! iff the chain has k-1 levels with orbit sizes k, k-1, ..., 2.
  // (Orbit i excludes the i earlier base points, so |orbit_i| <= k - i,
  // and the product of the orbit sizes is |G|; equality everywhere is
  // exactly order k!.) This avoids computing k! itself, which overflows
  // beyond k = 20.
  if (Chain.chainLength() != K - 1)
    return false;
  std::vector<size_t> Sizes = Chain.orbitSizes();
  for (unsigned I = 0; I != Sizes.size(); ++I)
    if (Sizes[I] != K - I)
      return false;
  return true;
}
