//===- comm/Simulator.cpp - Packet-level simulator (step + event) --------===//
//
// Two engines, one semantics. The step engine is the original globally
// synchronous loop. The event engine reproduces its results exactly while
// touching only scheduled work; the correspondence argument is spelled out
// inline at each point where the engines could diverge (queue sampling,
// multi-flit occupancy accounting, the MaxSteps cap, stalled traffic).
//
//===----------------------------------------------------------------------===//

#include "comm/Simulator.h"

#include "comm/SimObserver.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace scg;

std::string scg::commModelName(CommModel Model) {
  switch (Model) {
  case CommModel::AllPort:
    return "all-port";
  case CommModel::SinglePort:
    return "single-port";
  case CommModel::SingleDimension:
    return "single-dimension";
  }
  assert(false && "unknown model");
  return "?";
}

std::string scg::simEngineName(SimEngine Engine) {
  switch (Engine) {
  case SimEngine::Step:
    return "step";
  case SimEngine::Event:
    return "event";
  }
  assert(false && "unknown engine");
  return "?";
}

NetworkSimulator::NetworkSimulator(const ExplicitScg &Net, CommModel Model)
    : Net(Net), Model(Model),
      Queues(size_t(Net.numNodes()) * Net.degree()),
      Busy(size_t(Net.numNodes()) * Net.degree()),
      PortPointer(Net.numNodes(), 0), NodeBusyUntil(Net.numNodes(), 0) {
  for (GenIndex G = 0; G != Net.degree(); ++G)
    DimensionCycle.push_back(G);
}

std::pair<uint32_t, uint32_t>
NetworkSimulator::appendRoute(std::span<const GenIndex> Route) {
  assert(RoutePool.size() + Route.size() <= ~uint32_t(0) &&
         "route pool exceeds 32-bit indexing");
  uint32_t Begin = uint32_t(RoutePool.size());
  RoutePool.insert(RoutePool.end(), Route.begin(), Route.end());
  return {Begin, uint32_t(Route.size())};
}

void NetworkSimulator::injectPacket(NodeId Src, std::vector<GenIndex> Route,
                                    unsigned FlitCount) {
  assert(Src < Net.numNodes() && "source out of range");
  assert(FlitCount >= 1 && "a message carries at least one flit");
  auto [Begin, Len] = appendRoute(Route);
  Packets.push_back({Src, 0, FlitCount, Begin, Len});
  uint32_t Id = Packets.size() - 1;
  if (Len == 0) {
    // Already at its destination: delivered traffic, even though there is
    // nothing to simulate.
    ++DeliveredAtInject;
    return;
  }
  Queues[queueIndex(Src, RoutePool[Begin])].push_back(Id);
  ++Pending;
}

uint32_t NetworkSimulator::scheduleInjection(uint64_t Step, NodeId Src,
                                             std::vector<GenIndex> Route,
                                             unsigned FlitCount) {
  assert(Src < Net.numNodes() && "source out of range");
  assert(FlitCount >= 1 && "a message carries at least one flit");
  auto [Begin, Len] = appendRoute(Route);
  Packets.push_back({Src, 0, FlitCount, Begin, Len});
  uint32_t Id = Packets.size() - 1;
  Injections.push_back({Step, Id});
  return Id;
}

uint32_t NetworkSimulator::addSharedRoute(std::span<const GenIndex> Route) {
  auto [Begin, Len] = appendRoute(Route);
  SharedRoutes.push_back({Begin, Len});
  return uint32_t(SharedRoutes.size() - 1);
}

uint32_t NetworkSimulator::scheduleInjectionShared(uint64_t Step, NodeId Src,
                                                   uint32_t RouteHandle,
                                                   unsigned FlitCount) {
  assert(Src < Net.numNodes() && "source out of range");
  assert(FlitCount >= 1 && "a message carries at least one flit");
  assert(RouteHandle < SharedRoutes.size() && "unknown shared route");
  auto [Begin, Len] = SharedRoutes[RouteHandle];
  Packets.push_back({Src, 0, FlitCount, Begin, Len});
  uint32_t Id = Packets.size() - 1;
  Injections.push_back({Step, Id});
  return Id;
}

void NetworkSimulator::setDimensionCycle(std::vector<GenIndex> Cycle) {
  assert(!Cycle.empty() && "dimension cycle must be nonempty");
  DimensionCycle = std::move(Cycle);
}

void NetworkSimulator::addObserver(SimObserver *Observer) {
  assert(Observer && "null observer");
  Observers.push_back(Observer);
}

void NetworkSimulator::enqueueOrDeliver(uint32_t Id, SimulationResult &Result,
                                        std::vector<uint32_t> *DeliveredOut) {
  Packet &P = Packets[Id];
  if (P.NextHop == P.RouteLen) {
    ++Result.Delivered;
    --Pending;
    if (DeliveredOut)
      DeliveredOut->push_back(Id);
    return;
  }
  Queues[queueIndex(P.At, routeHop(P, P.NextHop))].push_back(Id);
}

SimulationResult NetworkSimulator::run(uint64_t MaxSteps) {
  // Scheduled injections enter their queues in (step, call order); the sort
  // is stable so same-step packets keep their scheduling order.
  std::stable_sort(Injections.begin(), Injections.end(),
                   [](const TimedInjection &A, const TimedInjection &B) {
                     return A.Step < B.Step;
                   });
  // One dispatch on entry: the uninstrumented loops contain no observer
  // code at all, so observability is free when no observer is attached.
  const bool Observed = !Observers.empty() || AlwaysInstrument;
  if (Engine == SimEngine::Event)
    return Observed ? runEventImpl<true>(MaxSteps)
                    : runEventImpl<false>(MaxSteps);
  // Collection is decided by whether a hook is registered, not by
  // forceInstrumentation: with no observer there is nothing to collect,
  // so the forced mode exercises the dispatch and lands on the same
  // pristine instantiation (which is the zero-overhead claim itself).
  return Observers.empty() ? runImpl<false>(MaxSteps)
                           : runImpl<true>(MaxSteps);
}

//===----------------------------------------------------------------------===//
// Step engine: the globally synchronous reference loop
//===----------------------------------------------------------------------===//

template <bool Collect>
SimulationResult NetworkSimulator::runImpl(uint64_t MaxSteps) {
  SimulationResult Result;
  Result.Delivered = DeliveredAtInject;
  unsigned Degree = Net.degree();
  std::vector<uint32_t> Moved;

  // Collection is a compile-time parameter: with no observer attached the
  // dispatch selects the Collect = false instantiation, whose hot loop
  // contains no observer code at all -- zero-overhead observability is
  // structural, not a measured budget (the forceInstrumentation benchmark
  // mode verifies the dispatch itself stays free).
  StepEvents Events;
  if constexpr (Collect) {
    Events.Model = Model;
    for (SimObserver *O : Observers)
      O->onRunBegin(*this);
  }

  // Closed-loop admission state: deferred injections retried FIFO each
  // step, and a per-node "already blocked this step" stamp -- admissions
  // only deepen queues within a step, so one failed depth test per node
  // per step is exact, not an approximation.
  std::deque<TimedInjection> Deferred;
  constexpr uint64_t NeverStep = ~uint64_t(0);
  std::vector<uint64_t> BlockedAt(ClosedLoopMaxQueue ? Net.numNodes() : 0,
                                  NeverStep);
  auto NodeQueueDepth = [&](NodeId U) {
    size_t Depth = 0;
    for (GenIndex G = 0; G != Net.degree(); ++G)
      Depth += Queues[queueIndex(U, G)].size();
    return Depth;
  };

  size_t InjCursor = 0;
  while ((Pending != 0 || InjCursor != Injections.size() ||
          !Deferred.empty()) &&
         Result.Steps != MaxSteps) {
    uint64_t Step = Result.Steps++;
    Moved.clear();
    if constexpr (Collect) {
      Events.clear();
      Events.Step = Step;
    }

    // Scheduled injections enter their queues at the start of their step,
    // before the occupancy sample, so they are visible exactly like pre-run
    // injections are at step 0. Zero-hop injections deliver on the spot.
    // Under closed loop an injection whose source node is at the queue
    // depth limit is deferred instead; deferred injections retry first
    // (they were scheduled earliest), in FIFO order.
    auto TryAdmit = [&](const TimedInjection &Inj) {
      const Packet &P = Packets[Inj.Id];
      if (ClosedLoopMaxQueue && P.RouteLen != 0) {
        if (BlockedAt[P.At] == Step ||
            NodeQueueDepth(P.At) >= ClosedLoopMaxQueue) {
          BlockedAt[P.At] = Step;
          return false;
        }
      }
      if (Step != Inj.Step) {
        ++Result.DeferredInjections;
        Result.DeferredSteps += Step - Inj.Step;
      }
      if (P.RouteLen == 0) {
        ++Result.Delivered;
        if constexpr (Collect)
          Events.Deliveries.push_back(Inj.Id);
        return true;
      }
      Queues[queueIndex(P.At, routeHop(P, 0))].push_back(Inj.Id);
      ++Pending;
      return true;
    };
    for (size_t I = 0, E = Deferred.size(); I != E; ++I) {
      TimedInjection Inj = Deferred.front();
      Deferred.pop_front();
      if (!TryAdmit(Inj))
        Deferred.push_back(Inj);
    }
    while (InjCursor != Injections.size() &&
           Injections[InjCursor].Step <= Step) {
      const TimedInjection &Inj = Injections[InjCursor++];
      if (!TryAdmit(Inj))
        Deferred.push_back(Inj);
    }

    // Sample queue occupancy before transmissions so the initial burst is
    // visible in MaxQueueLength.
    for (const auto &Queue : Queues) {
      Result.MaxQueueLength =
          std::max<uint64_t>(Result.MaxQueueLength, Queue.size());
      if constexpr (Collect) {
        Events.QueuedPackets += Queue.size();
        Events.MaxQueueDepth =
            std::max<uint64_t>(Events.MaxQueueDepth, Queue.size());
      }
    }

    // Phase 0: account in-flight multi-flit occupancy and complete the
    // transmissions whose last flit lands this step.
    for (size_t Q = 0; Q != Busy.size(); ++Q) {
      InFlight &F = Busy[Q];
      if (!F.Active || F.DoneStep < Step)
        continue;
      // The link is occupied this step by a transmission selected at an
      // earlier step (its selection step was counted at selection time).
      ++Result.BusyLinkSteps;
      if constexpr (Collect)
        Events.Active.push_back({NodeId(Q / Degree), GenIndex(Q % Degree),
                                 F.Id, Packets[F.Id].Flits, false});
      if (F.DoneStep != Step)
        continue;
      // The link stays occupied through this arrival step (SelectLink
      // checks DoneStep >= Step), so do not clear Active here; the next
      // selection simply overwrites the record.
      Packet &P = Packets[F.Id];
      GenIndex Link = routeHop(P, P.NextHop);
      P.At = Net.next(P.At, Link);
      ++P.NextHop;
      Moved.push_back(F.Id);
      ++Result.Transmissions;
    }

    // Phase 1: select one packet per permitted, idle link.
    auto SelectLink = [&](NodeId Node, GenIndex Link) {
      size_t Q = queueIndex(Node, Link);
      if (Busy[Q].Active && Busy[Q].DoneStep >= Step)
        return false; // mid-message: the link is occupied.
      auto &Queue = Queues[Q];
      if (Queue.empty())
        return false;
      uint32_t Id = Queue.front();
      Packet &P = Packets[Id];
      assert(P.At == Node && routeHop(P, P.NextHop) == Link &&
             "queue corruption");
      // The link is occupied from this step on (one step for a unit
      // packet, Flits steps for a store-and-forward message).
      ++Result.BusyLinkSteps;
      if constexpr (Collect)
        Events.Active.push_back({Node, Link, Id, P.Flits, true});
      if (P.Flits > 1) {
        // Occupy the link for Flits steps; arrival in phase 0 of step
        // Step + Flits - 1, node port free again at Step + Flits.
        Queue.pop_front();
        Busy[Q] = {Id, Step + P.Flits - 1, true};
        NodeBusyUntil[Node] = Step + P.Flits;
        return true;
      }
      Queue.pop_front();
      P.At = Net.next(Node, Link);
      ++P.NextHop;
      Moved.push_back(Id);
      ++Result.Transmissions;
      return true;
    };

    switch (Model) {
    case CommModel::AllPort:
      for (NodeId Node = 0; Node != Net.numNodes(); ++Node)
        for (GenIndex G = 0; G != Degree; ++G)
          SelectLink(Node, G);
      break;
    case CommModel::SinglePort:
      for (NodeId Node = 0; Node != Net.numNodes(); ++Node) {
        // A port mid-way through a multi-flit transmission transmits
        // nothing else until the occupancy ends.
        if (NodeBusyUntil[Node] > Step)
          continue;
        // Round-robin over links so no queue starves.
        for (unsigned Offset = 0; Offset != Degree; ++Offset) {
          GenIndex G = (PortPointer[Node] + Offset) % Degree;
          if (SelectLink(Node, G)) {
            PortPointer[Node] = (G + 1) % Degree;
            break;
          }
        }
      }
      break;
    case CommModel::SingleDimension: {
      GenIndex G = DimensionCycle[Step % DimensionCycle.size()];
      if constexpr (Collect) {
        Events.ScheduledLink = G;
        Events.HasScheduledLink = true;
      }
      for (NodeId Node = 0; Node != Net.numNodes(); ++Node)
        SelectLink(Node, G);
      break;
    }
    }

    // Phase 2: re-enqueue or deliver the moved packets. Two-phase keeps a
    // packet from hopping twice in one step.
    for (uint32_t Id : Moved)
      enqueueOrDeliver(Id, Result, Collect ? &Events.Deliveries : nullptr);

    if constexpr (Collect) {
      Events.Arrivals = Moved;
      for (SimObserver *O : Observers)
        O->onStep(*this, Events);
    }
  }

  Result.Completed =
      (Pending == 0 && InjCursor == Injections.size() && Deferred.empty());
  uint64_t LinkSteps = uint64_t(Net.numNodes()) * Degree * Result.Steps;
  Result.LinkUtilization =
      LinkSteps ? double(Result.BusyLinkSteps) / double(LinkSteps) : 0.0;
  // Engine-work diagnostic, computed analytically so the hot loop carries
  // no counter: every step scans all queues (occupancy sample) and all
  // in-flight slots, plus the selection sweep (per link under all-port,
  // per node otherwise).
  uint64_t QCount = uint64_t(Net.numNodes()) * Degree;
  Result.TouchedWork =
      Result.Steps * (2 * QCount + (Model == CommModel::AllPort
                                        ? QCount
                                        : uint64_t(Net.numNodes())));
  if constexpr (Collect) {
    for (SimObserver *O : Observers)
      O->onRunEnd(*this, Result);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Event engine: sharded calendar queues
//===----------------------------------------------------------------------===//
//
// Work is scheduled as (step, id) wake-ups in per-shard binary min-heaps:
//
//   entity wakes   "this queue (all-port / single-dimension) or this node
//                  (single-port) may be able to transmit at step t"
//   link wakes     "the multi-flit transmission on this link arrives (or,
//                  observed, occupies the link) at step t"
//
// The main loop jumps to the globally earliest wake, so steps where
// nothing can happen cost nothing; the step engine's per-step full scans
// are replaced by O(work at that step). Wake-ups may be spurious (a queue
// scheduled before its link went busy); processing re-derives everything
// from simulator state, so spurious wakes reschedule and cannot change
// results.
//
// Sharding: nodes are split into fixed contiguous ranges (a function of
// the node count only). Every queue, heap slot, and wake array entry is
// owned by exactly one shard. A processed step runs as
//
//   (main)   scheduled injections, in global call order
//   phase A  per shard: pop link wakes then entity wakes == t (each heap
//            pops in ascending id order, reproducing the step engine's
//            scan order)
//   phase B  per shard: scan every shard's moved lists in global order,
//            enqueue/deliver the packets that now sit on *my* nodes
//
// with barriers between, so cross-shard hand-off happens only through the
// moved lists and each destination queue receives its pushes in the exact
// order the step engine would have produced. Results are therefore
// byte-identical at every shard and thread count.
//===----------------------------------------------------------------------===//

namespace {

/// Min-heap of (step, id) wake-ups; pops in ascending (step, id) order,
/// which is exactly the step engine's scan order within one step.
using WakeHeap =
    std::priority_queue<std::pair<uint64_t, uint32_t>,
                        std::vector<std::pair<uint64_t, uint32_t>>,
                        std::greater<std::pair<uint64_t, uint32_t>>>;

constexpr uint64_t NoStep = ~uint64_t(0);

} // namespace

template <bool Observed>
SimulationResult NetworkSimulator::runEventImpl(uint64_t MaxSteps) {
  SimulationResult Result;
  Result.Delivered = DeliveredAtInject;
  const unsigned Degree = Net.degree();
  const NodeId N = Net.numNodes();
  const size_t QCount = size_t(N) * Degree;

  StepEvents Events;
  const bool Collect = Observed && !Observers.empty();
  if constexpr (Observed) {
    Events.Model = Model;
    for (SimObserver *O : Observers)
      O->onRunBegin(*this);
  }

  // Shard layout: fixed contiguous node ranges, a function of the node
  // count only -- never of the thread count -- so results are identical at
  // every SCG_THREADS setting.
  unsigned ShardCount = EventShards ? EventShards : effectiveThreadCount();
  ShardCount = std::max(1u, std::min<unsigned>(ShardCount, std::max<NodeId>(N, 1)));
  const NodeId NodesPerShard = N ? (N + ShardCount - 1) / ShardCount : 1;
  auto ShardOfNode = [&](NodeId U) { return unsigned(U / NodesPerShard); };

  // Entity granularity: per node under single-port (one selection per node
  // per step, round-robin over its queues), per queue otherwise.
  const bool PerNodeEntity = Model == CommModel::SinglePort;
  const size_t EntityCount = PerNodeEntity ? N : QCount;

  struct Shard {
    WakeHeap Entity;
    WakeHeap Link;
    // Per-step scratch, cleared after every processed step.
    std::vector<uint32_t> Arr; ///< phase-0 arrivals (multi-flit completions).
    std::vector<uint32_t> Sel; ///< phase-1 unit-packet moves.
    std::vector<LinkActivity> Active0, Active1; ///< observed link activity.
    uint64_t DeliveredDelta = 0;
    // Cumulative counters, reduced once at the end.
    uint64_t Transmissions = 0;
    uint64_t BusyLinkSteps = 0;
    uint64_t Work = 0;
    // MaxQueueLength bookkeeping: pushes land in PendingMax and are folded
    // into CommittedMax only once a later step runs -- mirroring the step
    // engine, which samples queues at the *start* of each step and so
    // never sees pushes made during the final step before a MaxSteps cap.
    uint64_t PendingMax = 0;
    uint64_t CommittedMax = 0;
    // Observed-mode occupancy sampling (pre-step, like the step engine).
    uint64_t QueuedCount = 0;
    uint64_t SampledQueued = 0;
    uint64_t CurMaxDepth = 0;
    uint64_t SampledMaxDepth = 0;
    std::vector<uint64_t> DepthCount; ///< queues at each nonzero length.
  };
  std::vector<Shard> Shards(ShardCount);

  // Wake bookkeeping: the earliest scheduled wake per entity/link, NoStep
  // when none. Heap entries whose step no longer matches are stale and
  // skipped on pop (the lazy-deletion idiom).
  std::vector<uint64_t> EntityWake(EntityCount, NoStep);
  std::vector<uint64_t> LinkWakeAt(QCount, NoStep);
  // Selection step of the in-flight transmission per link (NoStep = none):
  // occupancy is accounted in bulk at arrival (or at the cap), so
  // BusyLinkSteps never depends on whether occupancy steps were observed.
  std::vector<uint64_t> FlightSelStep(QCount, NoStep);
  // Per-node queued-packet totals: needed by single-port selection and by
  // closed-loop admission (queue-depth throttling).
  const bool TrackNodeQueued = PerNodeEntity || ClosedLoopMaxQueue != 0;
  std::vector<uint32_t> NodeQueued(TrackNodeQueued ? N : 0, 0);

  // Single-dimension schedule: positions of each generator in the cycle,
  // for jumping straight to the next step a queue's link is permitted.
  const uint64_t CycleLen = DimensionCycle.size();
  std::vector<std::vector<uint64_t>> CyclePos;
  if (Model == CommModel::SingleDimension) {
    CyclePos.resize(Degree);
    for (uint64_t I = 0; I != CycleLen; ++I)
      if (DimensionCycle[I] < Degree)
        CyclePos[DimensionCycle[I]].push_back(I);
  }
  auto NextScheduledStep = [&](GenIndex G, uint64_t From) -> uint64_t {
    const std::vector<uint64_t> &Pos = CyclePos[G];
    if (Pos.empty())
      return NoStep; // generator never scheduled: this traffic stalls.
    uint64_t Base = From - From % CycleLen, Phase = From % CycleLen;
    auto It = std::lower_bound(Pos.begin(), Pos.end(), Phase);
    return It != Pos.end() ? Base + *It : Base + CycleLen + Pos.front();
  };

  auto ScheduleEntity = [&](size_t E, uint64_t T) {
    if (T >= EntityWake[E])
      return; // an earlier (or equal) wake is already scheduled.
    EntityWake[E] = T;
    NodeId Node = PerNodeEntity ? NodeId(E) : NodeId(E / Degree);
    Shards[ShardOfNode(Node)].Entity.push({T, uint32_t(E)});
  };
  auto ScheduleLink = [&](size_t Q, uint64_t T) {
    if (T >= LinkWakeAt[Q])
      return;
    LinkWakeAt[Q] = T;
    Shards[ShardOfNode(NodeId(Q / Degree))].Link.push({T, uint32_t(Q)});
  };
  /// Schedules the owner entity of queue \p Q to try transmitting at the
  /// first permitted step >= \p From.
  auto WakeForQueue = [&](size_t Q, uint64_t From) {
    switch (Model) {
    case CommModel::AllPort:
      ScheduleEntity(Q, From);
      break;
    case CommModel::SinglePort:
      ScheduleEntity(Q / Degree, From);
      break;
    case CommModel::SingleDimension: {
      uint64_t T = NextScheduledStep(GenIndex(Q % Degree), From);
      if (T != NoStep)
        ScheduleEntity(Q, T);
      break;
    }
    }
  };

  // Observed-mode current-max-depth tracking (an exact histogram over
  // nonzero queue lengths, so Events.MaxQueueDepth matches the step
  // engine's full scan without one).
  auto DepthAdd = [&](Shard &S, size_t Len) {
    if (Len >= S.DepthCount.size())
      S.DepthCount.resize(Len + 1, 0);
    if (Len > 1)
      --S.DepthCount[Len - 1];
    ++S.DepthCount[Len];
    S.CurMaxDepth = std::max<uint64_t>(S.CurMaxDepth, Len);
  };
  auto DepthRemove = [&](Shard &S, size_t Len) {
    --S.DepthCount[Len];
    if (Len > 1)
      ++S.DepthCount[Len - 1];
    while (S.CurMaxDepth && S.DepthCount[S.CurMaxDepth] == 0)
      --S.CurMaxDepth;
  };

  /// Appends \p Id to queue \p Q and schedules its owner from \p From.
  auto PushQueue = [&](size_t Q, uint32_t Id, uint64_t From) {
    Queues[Q].push_back(Id);
    size_t Len = Queues[Q].size();
    Shard &S = Shards[ShardOfNode(NodeId(Q / Degree))];
    S.PendingMax = std::max<uint64_t>(S.PendingMax, Len);
    ++S.QueuedCount;
    if (TrackNodeQueued)
      ++NodeQueued[Q / Degree];
    if constexpr (Observed) {
      if (Collect)
        DepthAdd(S, Len);
    }
    WakeForQueue(Q, From);
  };
  auto PopFront = [&](size_t Q, Shard &S) {
    size_t Len = Queues[Q].size();
    Queues[Q].pop_front();
    --S.QueuedCount;
    if (TrackNodeQueued)
      --NodeQueued[Q / Degree];
    if constexpr (Observed) {
      if (Collect)
        DepthRemove(S, Len);
    }
  };

  // Initial wake scan: one pass over the pre-run injected queues. This is
  // the only full O(nodes * degree) sweep the engine ever does.
  for (size_t Q = 0; Q != QCount; ++Q) {
    size_t Len = Queues[Q].size();
    if (!Len)
      continue;
    Shard &S = Shards[ShardOfNode(NodeId(Q / Degree))];
    S.PendingMax = std::max<uint64_t>(S.PendingMax, Len);
    S.QueuedCount += Len;
    if (TrackNodeQueued)
      NodeQueued[Q / Degree] += Len;
    if constexpr (Observed) {
      if (Collect)
        for (size_t L = 1; L <= Len; ++L)
          DepthAdd(S, L);
    }
    WakeForQueue(Q, 0);
  }

  /// Selects the front of queue \p Q for transmission at step \p T exactly
  /// as the step engine's SelectLink selected path. Returns true when the
  /// selected message is multi-flit (the link is now in flight).
  auto SelectFrom = [&](size_t Q, uint64_t T, Shard &S) {
    uint32_t Id = Queues[Q].front();
    Packet &P = Packets[Id];
    NodeId Node = NodeId(Q / Degree);
    GenIndex Link = GenIndex(Q % Degree);
    assert(P.At == Node && routeHop(P, P.NextHop) == Link &&
           "queue corruption");
    ++S.BusyLinkSteps; // the selection step itself.
    if constexpr (Observed) {
      if (Collect)
        S.Active1.push_back({Node, Link, Id, P.Flits, true});
    }
    PopFront(Q, S);
    if (P.Flits > 1) {
      Busy[Q] = {Id, T + P.Flits - 1, true};
      FlightSelStep[Q] = T;
      NodeBusyUntil[Node] = T + P.Flits;
      // Unobserved, only the arrival matters; observed, the link must wake
      // every occupancy step so observers see the continuing activity.
      ScheduleLink(Q, Collect ? T + 1 : T + P.Flits - 1);
      return true;
    }
    P.At = Net.next(Node, Link);
    ++P.NextHop;
    S.Sel.push_back(Id);
    ++S.Transmissions;
    return false;
  };

  /// Phase A for one shard: link wakes (the step engine's phase 0) then
  /// entity wakes (phase 1), each popped in ascending id order.
  auto PhaseA = [&](Shard &S, uint64_t T) {
    if constexpr (Observed) {
      if (Collect) {
        S.SampledQueued = S.QueuedCount;
        S.SampledMaxDepth = S.CurMaxDepth;
      }
    }
    while (!S.Link.empty() && S.Link.top().first == T) {
      size_t Q = S.Link.top().second;
      S.Link.pop();
      if (LinkWakeAt[Q] != T)
        continue; // stale entry superseded by an earlier wake.
      LinkWakeAt[Q] = NoStep;
      ++S.Work;
      InFlight &F = Busy[Q];
      if (!F.Active || F.DoneStep < T)
        continue;
      if constexpr (Observed) {
        if (Collect)
          S.Active0.push_back({NodeId(Q / Degree), GenIndex(Q % Degree),
                               F.Id, Packets[F.Id].Flits, false});
      }
      if (F.DoneStep != T) {
        ScheduleLink(Q, T + 1); // observed occupancy chain, no accounting.
        continue;
      }
      // Arrival: the last flit lands. Occupancy steps after selection are
      // accounted here in one add (the step engine added 1 per step).
      Packet &P = Packets[F.Id];
      GenIndex Link = routeHop(P, P.NextHop);
      P.At = Net.next(P.At, Link);
      ++P.NextHop;
      S.Arr.push_back(F.Id);
      ++S.Transmissions;
      S.BusyLinkSteps += T - FlightSelStep[Q];
      FlightSelStep[Q] = NoStep;
      // The link stays occupied through the arrival step; queued traffic
      // may transmit again from T + 1 (node port likewise frees at T + 1).
      if (!Queues[Q].empty())
        WakeForQueue(Q, T + 1);
    }

    while (!S.Entity.empty() && S.Entity.top().first == T) {
      size_t E = S.Entity.top().second;
      S.Entity.pop();
      if (EntityWake[E] != T)
        continue;
      EntityWake[E] = NoStep;
      ++S.Work;
      if (!PerNodeEntity) {
        size_t Q = E;
        if (Busy[Q].Active && Busy[Q].DoneStep >= T) {
          // Mid-message: first possible transmission is DoneStep + 1.
          if (!Queues[Q].empty())
            WakeForQueue(Q, Busy[Q].DoneStep + 1);
          continue;
        }
        if (Queues[Q].empty())
          continue; // spurious (queue drained since scheduling).
        bool Multi = SelectFrom(Q, T, S);
        if (!Queues[Q].empty())
          WakeForQueue(Q, Multi ? Busy[Q].DoneStep + 1 : T + 1);
        continue;
      }
      // Single-port: one selection per node per step, round-robin so no
      // queue starves -- the step engine's loop verbatim.
      NodeId Node = NodeId(E);
      if (NodeBusyUntil[Node] > T) {
        if (NodeQueued[Node])
          ScheduleEntity(Node, NodeBusyUntil[Node]);
        continue;
      }
      for (unsigned Offset = 0; Offset != Degree; ++Offset) {
        GenIndex G = (PortPointer[Node] + Offset) % Degree;
        size_t Q = queueIndex(Node, G);
        if (Busy[Q].Active && Busy[Q].DoneStep >= T)
          continue;
        if (Queues[Q].empty())
          continue;
        bool Multi = SelectFrom(Q, T, S);
        PortPointer[Node] = (G + 1) % Degree;
        if (NodeQueued[Node])
          ScheduleEntity(Node, Multi ? NodeBusyUntil[Node] : T + 1);
        break;
      }
    }
  };

  /// Phase B for one shard: walk every shard's moved lists in the step
  /// engine's global order (all arrivals by queue id, then all selections
  /// by node id) and enqueue/deliver the packets now sitting on my nodes.
  auto PhaseB = [&](Shard &Me, unsigned MyIdx, uint64_t T) {
    auto Handle = [&](uint32_t Id) {
      Packet &P = Packets[Id];
      if (ShardOfNode(P.At) != MyIdx)
        return;
      if (P.NextHop == P.RouteLen) {
        ++Me.DeliveredDelta;
        return;
      }
      PushQueue(queueIndex(P.At, routeHop(P, P.NextHop)), Id, T + 1);
    };
    for (const Shard &Src : Shards)
      for (uint32_t Id : Src.Arr)
        Handle(Id);
    for (const Shard &Src : Shards)
      for (uint32_t Id : Src.Sel)
        Handle(Id);
  };

  ThreadPool &Pool = ThreadPool::global();
  const bool Parallel = ShardCount > 1;
  size_t InjCursor = 0;
  uint64_t LastProcessed = NoStep;
  uint64_t MainWork = 0;
  bool Capped = false;

  // Closed-loop admission state, mirroring the step engine exactly: the
  // step engine retries a blocked injection at *every* step, but queue
  // depths only change at steps where the event engine has scheduled work
  // -- so retrying at each processed step admits at the identical step.
  // The one divergence risk is a deferred injection with no other wake
  // pending (queues drained, or depths frozen until a distant wake):
  // NextWake therefore offers LastProcessed + 1 as a candidate whenever
  // Deferred is nonempty, grinding step-by-step like the step engine
  // would until admission succeeds or the cap lands.
  std::deque<TimedInjection> Deferred;
  constexpr uint64_t NeverStep = ~uint64_t(0);
  std::vector<uint64_t> BlockedAt(ClosedLoopMaxQueue ? N : 0, NeverStep);

  auto NextWake = [&]() {
    uint64_t T =
        InjCursor != Injections.size() ? Injections[InjCursor].Step : NoStep;
    if (!Deferred.empty())
      T = std::min(T, LastProcessed == NoStep ? 0 : LastProcessed + 1);
    for (const Shard &S : Shards) {
      if (!S.Entity.empty())
        T = std::min(T, S.Entity.top().first);
      if (!S.Link.empty())
        T = std::min(T, S.Link.top().first);
    }
    return T;
  };

  while (Pending != 0 || InjCursor != Injections.size() ||
         !Deferred.empty()) {
    uint64_t T = NextWake();
    if (T >= MaxSteps) {
      // Cap reached (or traffic is permanently stalled, e.g. a generator
      // missing from the dimension cycle): the step engine would grind
      // empty steps to the cap.
      Capped = true;
      break;
    }

    // Committing here makes pushes from earlier steps visible, matching
    // the step engine's start-of-step queue sample: any push is sampled
    // iff at least one later step runs.
    for (Shard &S : Shards) {
      S.CommittedMax = std::max(S.CommittedMax, S.PendingMax);
      S.PendingMax = 0;
    }
    if constexpr (Observed) {
      if (Collect) {
        Events.clear();
        Events.Step = T;
      }
    }

    // Scheduled injections, applied on the main thread in global call
    // order (each push still lands in its owner shard's bookkeeping).
    // Closed-loop admission is the step engine's verbatim: deferred
    // injections retry first in FIFO order, then newly scheduled ones; a
    // per-node per-step blocked stamp keeps retries O(1) (admissions only
    // deepen queues within a step, so a failed depth test stays failed).
    auto TryAdmit = [&](const TimedInjection &Inj) {
      const Packet &P = Packets[Inj.Id];
      ++MainWork;
      if (ClosedLoopMaxQueue && P.RouteLen != 0) {
        if (BlockedAt[P.At] == T || NodeQueued[P.At] >= ClosedLoopMaxQueue) {
          BlockedAt[P.At] = T;
          return false;
        }
      }
      if (T != Inj.Step) {
        ++Result.DeferredInjections;
        Result.DeferredSteps += T - Inj.Step;
      }
      if (P.RouteLen == 0) {
        ++Result.Delivered;
        if constexpr (Observed) {
          if (Collect)
            Events.Deliveries.push_back(Inj.Id);
        }
        return true;
      }
      PushQueue(queueIndex(P.At, routeHop(P, 0)), Inj.Id, T);
      ++Pending;
      return true;
    };
    for (size_t I = 0, E = Deferred.size(); I != E; ++I) {
      TimedInjection Inj = Deferred.front();
      Deferred.pop_front();
      if (!TryAdmit(Inj))
        Deferred.push_back(Inj);
    }
    while (InjCursor != Injections.size() &&
           Injections[InjCursor].Step <= T) {
      const TimedInjection &Inj = Injections[InjCursor++];
      if (!TryAdmit(Inj))
        Deferred.push_back(Inj);
    }
    // Injections are visible to this step's sample in the step engine.
    for (Shard &S : Shards) {
      S.CommittedMax = std::max(S.CommittedMax, S.PendingMax);
      S.PendingMax = 0;
    }

    if (Parallel) {
      Pool.parallelFor(0, ShardCount,
                       [&](uint64_t I) { PhaseA(Shards[I], T); },
                       /*ChunkSize=*/1);
      Pool.parallelFor(0, ShardCount,
                       [&](uint64_t I) { PhaseB(Shards[I], unsigned(I), T); },
                       /*ChunkSize=*/1);
    } else {
      PhaseA(Shards[0], T);
      PhaseB(Shards[0], 0, T);
    }

    uint64_t DeliveredNow = 0;
    for (Shard &S : Shards) {
      DeliveredNow += S.DeliveredDelta;
      S.DeliveredDelta = 0;
    }
    Pending -= DeliveredNow;
    Result.Delivered += DeliveredNow;

    if constexpr (Observed) {
      if (Collect) {
        if (Model == CommModel::SingleDimension) {
          Events.ScheduledLink = DimensionCycle[T % CycleLen];
          Events.HasScheduledLink = true;
        }
        for (const Shard &S : Shards) {
          Events.QueuedPackets += S.SampledQueued;
          Events.MaxQueueDepth =
              std::max(Events.MaxQueueDepth, S.SampledMaxDepth);
          Events.Active.insert(Events.Active.end(), S.Active0.begin(),
                               S.Active0.end());
        }
        for (const Shard &S : Shards)
          Events.Active.insert(Events.Active.end(), S.Active1.begin(),
                               S.Active1.end());
        for (const Shard &S : Shards)
          Events.Arrivals.insert(Events.Arrivals.end(), S.Arr.begin(),
                                 S.Arr.end());
        for (const Shard &S : Shards)
          Events.Arrivals.insert(Events.Arrivals.end(), S.Sel.begin(),
                                 S.Sel.end());
        for (uint32_t Id : Events.Arrivals)
          if (Packets[Id].NextHop == Packets[Id].RouteLen)
            Events.Deliveries.push_back(Id);
        for (SimObserver *O : Observers)
          O->onStep(*this, Events);
      }
    }
    for (Shard &S : Shards) {
      S.Arr.clear();
      S.Sel.clear();
      S.Active0.clear();
      S.Active1.clear();
    }
    LastProcessed = T;
  }

  if (Capped) {
    Result.Steps = MaxSteps;
    Result.Completed = false;
    // The step engine ran the steps in (LastProcessed, MaxSteps) empty; if
    // any exist, their queue samples saw the last step's pushes.
    if (MaxSteps > (LastProcessed == NoStep ? 0 : LastProcessed + 1))
      for (Shard &S : Shards) {
        S.CommittedMax = std::max(S.CommittedMax, S.PendingMax);
        S.PendingMax = 0;
      }
    // In-flight messages occupy their links through every executed step.
    for (size_t Q = 0; Q != QCount; ++Q)
      if (FlightSelStep[Q] != NoStep)
        Shards[ShardOfNode(NodeId(Q / Degree))].BusyLinkSteps +=
            (MaxSteps - 1) - FlightSelStep[Q];
  } else {
    Result.Steps = LastProcessed == NoStep ? 0 : LastProcessed + 1;
    Result.Completed = true;
  }

  for (const Shard &S : Shards) {
    Result.Transmissions += S.Transmissions;
    Result.BusyLinkSteps += S.BusyLinkSteps;
    Result.MaxQueueLength = std::max(Result.MaxQueueLength, S.CommittedMax);
    Result.TouchedWork += S.Work;
  }
  Result.TouchedWork += MainWork;
  uint64_t LinkSteps = uint64_t(N) * Degree * Result.Steps;
  Result.LinkUtilization =
      LinkSteps ? double(Result.BusyLinkSteps) / double(LinkSteps) : 0.0;
  if constexpr (Observed) {
    for (SimObserver *O : Observers)
      O->onRunEnd(*this, Result);
  }
  return Result;
}
