//===- comm/Simulator.cpp - Synchronous packet-level simulator -----------===//

#include "comm/Simulator.h"

#include "comm/SimObserver.h"

#include <algorithm>
#include <cassert>

using namespace scg;

std::string scg::commModelName(CommModel Model) {
  switch (Model) {
  case CommModel::AllPort:
    return "all-port";
  case CommModel::SinglePort:
    return "single-port";
  case CommModel::SingleDimension:
    return "single-dimension";
  }
  assert(false && "unknown model");
  return "?";
}

NetworkSimulator::NetworkSimulator(const ExplicitScg &Net, CommModel Model)
    : Net(Net), Model(Model),
      Queues(size_t(Net.numNodes()) * Net.degree()),
      Busy(size_t(Net.numNodes()) * Net.degree()),
      PortPointer(Net.numNodes(), 0), NodeBusyUntil(Net.numNodes(), 0) {
  for (GenIndex G = 0; G != Net.degree(); ++G)
    DimensionCycle.push_back(G);
}

void NetworkSimulator::injectPacket(NodeId Src, std::vector<GenIndex> Route,
                                    unsigned FlitCount) {
  assert(Src < Net.numNodes() && "source out of range");
  assert(FlitCount >= 1 && "a message carries at least one flit");
  Packets.push_back({Src, 0, FlitCount, std::move(Route)});
  uint32_t Id = Packets.size() - 1;
  const Packet &P = Packets.back();
  if (P.Route.empty()) {
    // Already at its destination: delivered traffic, even though there is
    // nothing to simulate.
    ++DeliveredAtInject;
    return;
  }
  Queues[queueIndex(Src, P.Route.front())].push_back(Id);
  ++Pending;
}

void NetworkSimulator::setDimensionCycle(std::vector<GenIndex> Cycle) {
  assert(!Cycle.empty() && "dimension cycle must be nonempty");
  DimensionCycle = std::move(Cycle);
}

void NetworkSimulator::addObserver(SimObserver *Observer) {
  assert(Observer && "null observer");
  Observers.push_back(Observer);
}

void NetworkSimulator::enqueueOrDeliver(uint32_t Id, SimulationResult &Result,
                                        std::vector<uint32_t> *DeliveredOut) {
  Packet &P = Packets[Id];
  if (P.NextHop == P.Route.size()) {
    ++Result.Delivered;
    --Pending;
    if (DeliveredOut)
      DeliveredOut->push_back(Id);
    return;
  }
  Queues[queueIndex(P.At, P.Route[P.NextHop])].push_back(Id);
}

SimulationResult NetworkSimulator::run(uint64_t MaxSteps) {
  // One dispatch on entry: the uninstrumented loop contains no observer
  // code at all, so observability is free when no observer is attached.
  if (Observers.empty() && !AlwaysInstrument)
    return runImpl<false>(MaxSteps);
  return runImpl<true>(MaxSteps);
}

template <bool Observed>
SimulationResult NetworkSimulator::runImpl(uint64_t MaxSteps) {
  SimulationResult Result;
  Result.Delivered = DeliveredAtInject;
  unsigned Degree = Net.degree();
  std::vector<uint32_t> Moved;

  // Event collection is skipped when the instrumented loop runs with no
  // observer attached (the forceInstrumentation benchmark mode): what
  // remains is exactly the per-step hook overhead being measured.
  StepEvents Events;
  const bool Collect = Observed && !Observers.empty();
  if constexpr (Observed) {
    Events.Model = Model;
    for (SimObserver *O : Observers)
      O->onRunBegin(*this);
  }

  while (Pending != 0 && Result.Steps != MaxSteps) {
    uint64_t Step = Result.Steps++;
    Moved.clear();
    if constexpr (Observed) {
      if (Collect) {
        Events.clear();
        Events.Step = Step;
      }
    }

    // Sample queue occupancy before transmissions so the initial burst is
    // visible in MaxQueueLength.
    for (const auto &Queue : Queues) {
      Result.MaxQueueLength =
          std::max<uint64_t>(Result.MaxQueueLength, Queue.size());
      if constexpr (Observed) {
        if (Collect) {
          Events.QueuedPackets += Queue.size();
          Events.MaxQueueDepth =
              std::max<uint64_t>(Events.MaxQueueDepth, Queue.size());
        }
      }
    }

    // Phase 0: account in-flight multi-flit occupancy and complete the
    // transmissions whose last flit lands this step.
    for (size_t Q = 0; Q != Busy.size(); ++Q) {
      InFlight &F = Busy[Q];
      if (!F.Active || F.DoneStep < Step)
        continue;
      // The link is occupied this step by a transmission selected at an
      // earlier step (its selection step was counted at selection time).
      ++Result.BusyLinkSteps;
      if constexpr (Observed) {
        if (Collect)
          Events.Active.push_back({NodeId(Q / Degree), GenIndex(Q % Degree),
                                   F.Id, Packets[F.Id].Flits, false});
      }
      if (F.DoneStep != Step)
        continue;
      // The link stays occupied through this arrival step (SelectLink
      // checks DoneStep >= Step), so do not clear Active here; the next
      // selection simply overwrites the record.
      Packet &P = Packets[F.Id];
      GenIndex Link = P.Route[P.NextHop];
      P.At = Net.next(P.At, Link);
      ++P.NextHop;
      Moved.push_back(F.Id);
      ++Result.Transmissions;
    }

    // Phase 1: select one packet per permitted, idle link.
    auto SelectLink = [&](NodeId Node, GenIndex Link) {
      size_t Q = queueIndex(Node, Link);
      if (Busy[Q].Active && Busy[Q].DoneStep >= Step)
        return false; // mid-message: the link is occupied.
      auto &Queue = Queues[Q];
      if (Queue.empty())
        return false;
      uint32_t Id = Queue.front();
      Packet &P = Packets[Id];
      assert(P.At == Node && P.Route[P.NextHop] == Link &&
             "queue corruption");
      // The link is occupied from this step on (one step for a unit
      // packet, Flits steps for a store-and-forward message).
      ++Result.BusyLinkSteps;
      if constexpr (Observed) {
        if (Collect)
          Events.Active.push_back({Node, Link, Id, P.Flits, true});
      }
      if (P.Flits > 1) {
        // Occupy the link for Flits steps; arrival in phase 0 of step
        // Step + Flits - 1, node port free again at Step + Flits.
        Queue.pop_front();
        Busy[Q] = {Id, Step + P.Flits - 1, true};
        NodeBusyUntil[Node] = Step + P.Flits;
        return true;
      }
      Queue.pop_front();
      P.At = Net.next(Node, Link);
      ++P.NextHop;
      Moved.push_back(Id);
      ++Result.Transmissions;
      return true;
    };

    switch (Model) {
    case CommModel::AllPort:
      for (NodeId Node = 0; Node != Net.numNodes(); ++Node)
        for (GenIndex G = 0; G != Degree; ++G)
          SelectLink(Node, G);
      break;
    case CommModel::SinglePort:
      for (NodeId Node = 0; Node != Net.numNodes(); ++Node) {
        // A port mid-way through a multi-flit transmission transmits
        // nothing else until the occupancy ends.
        if (NodeBusyUntil[Node] > Step)
          continue;
        // Round-robin over links so no queue starves.
        for (unsigned Offset = 0; Offset != Degree; ++Offset) {
          GenIndex G = (PortPointer[Node] + Offset) % Degree;
          if (SelectLink(Node, G)) {
            PortPointer[Node] = (G + 1) % Degree;
            break;
          }
        }
      }
      break;
    case CommModel::SingleDimension: {
      GenIndex G = DimensionCycle[Step % DimensionCycle.size()];
      if constexpr (Observed) {
        if (Collect) {
          Events.ScheduledLink = G;
          Events.HasScheduledLink = true;
        }
      }
      for (NodeId Node = 0; Node != Net.numNodes(); ++Node)
        SelectLink(Node, G);
      break;
    }
    }

    // Phase 2: re-enqueue or deliver the moved packets. Two-phase keeps a
    // packet from hopping twice in one step.
    for (uint32_t Id : Moved)
      enqueueOrDeliver(Id, Result, Collect ? &Events.Deliveries : nullptr);

    if constexpr (Observed) {
      if (Collect) {
        Events.Arrivals = Moved;
        for (SimObserver *O : Observers)
          O->onStep(*this, Events);
      }
    }
  }

  Result.Completed = (Pending == 0);
  uint64_t LinkSteps = uint64_t(Net.numNodes()) * Degree * Result.Steps;
  Result.LinkUtilization =
      LinkSteps ? double(Result.BusyLinkSteps) / double(LinkSteps) : 0.0;
  if constexpr (Observed) {
    for (SimObserver *O : Observers)
      O->onRunEnd(*this, Result);
  }
  return Result;
}
