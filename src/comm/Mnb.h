//===- comm/Mnb.h - Multinode broadcast (Corollary 2) ----------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multinode broadcast task: every node broadcasts one packet to every
/// other node. Executed over the translation-invariant BFS broadcast tree
/// under the all-port model (DESIGN.md substitution 1 for the strictly
/// optimal schedules of [8]/[15]); completion time is reported against the
/// receive-bound lower bound ceil((N-1)/degree) that the paper's optimality
/// argument uses, so Corollary 2's Theta claims show up as bounded ratios.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_COMM_MNB_H
#define SCG_COMM_MNB_H

#include "comm/BroadcastTree.h"

namespace scg {

/// Result of a multinode-broadcast simulation.
struct MnbResult {
  uint64_t Steps = 0;        ///< completion time (all-port).
  uint64_t Deliveries = 0;   ///< N * (N - 1) on success.
  uint64_t LowerBound = 0;   ///< ceil((N-1) / degree).
  double Ratio = 0.0;        ///< Steps / LowerBound.
  double LinkUtilization = 0.0;
};

/// Simulates the MNB on \p Net under the all-port model, every node
/// broadcasting along the shared relative tree \p Tree.
MnbResult simulateMnb(const ExplicitScg &Net, const BroadcastTree &Tree);

/// Simulates the MNB under the single-dimension communication model of
/// Section 3: at step t only the links of generator Cycle[t % size] fire
/// (all generators round-robin when \p Cycle is empty). The lower bound
/// becomes N-1 (one in-link per node per step); [15]'s strictly optimal
/// star algorithm achieves k!-1, and this tree-based schedule lands within
/// a small constant of it (DESIGN.md substitution 1).
MnbResult simulateMnbSdc(const ExplicitScg &Net, const BroadcastTree &Tree,
                         std::vector<GenIndex> Cycle = {});

/// Simulates the MNB with sources striped across several rotated trees
/// (source s broadcasts along Trees[s mod Trees.size()]) under the
/// all-port model: the multi-spanning-tree load-balancing idea behind the
/// optimal algorithms of [8]. With diverse trees the per-link load
/// flattens and the completion ratio drops toward 1.
MnbResult simulateMnbStriped(const ExplicitScg &Net,
                             const std::vector<BroadcastTree> &Trees);

/// The receive-bound lower bound for an N-node degree-d network.
uint64_t mnbLowerBound(uint64_t NumNodes, unsigned Degree);

/// The SDC receive-bound: N - 1.
uint64_t mnbSdcLowerBound(uint64_t NumNodes);

} // namespace scg

#endif // SCG_COMM_MNB_H
