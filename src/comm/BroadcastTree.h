//===- comm/BroadcastTree.h - Translation-invariant trees ------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A breadth-first spanning tree of a super Cayley graph rooted at the
/// identity, stored in relative form: for every relative rank w (the rank
/// of s^-1 u for source s, node u), the child links to forward on. Vertex
/// symmetry makes one tree serve every source -- the same principle behind
/// the spanning-tree broadcast algorithms the paper emulates ([8], [15]) --
/// which is what lets the MNB simulation carry only (relative rank) tokens.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_COMM_BROADCASTTREE_H
#define SCG_COMM_BROADCASTTREE_H

#include "networks/Explicit.h"

namespace scg {

/// BFS spanning tree in relative coordinates.
class BroadcastTree {
public:
  /// Builds the BFS tree of \p Net from the identity node. Different
  /// \p Rotation values bias the per-node generator priority differently,
  /// yielding structurally distinct trees whose edge-label distributions
  /// complement each other -- the ingredient of the multi-tree MNB of [8]
  /// (see simulateMnbStriped).
  explicit BroadcastTree(const ExplicitScg &Net, unsigned Rotation = 0);

  /// Depth of relative node \p W.
  uint32_t depth(NodeId W) const { return Depth[W]; }

  /// Tree height (= eccentricity of the root = network diameter for
  /// vertex-transitive graphs).
  uint32_t height() const { return Height; }

  /// Links on which a node holding a token at relative rank \p W forwards.
  const std::vector<GenIndex> &children(NodeId W) const {
    return Children[W];
  }

  /// The tree path (generator indices) from the root to relative node
  /// \p W; empty for the root itself.
  std::vector<GenIndex> pathFromRoot(NodeId W) const;

  /// Total tree edges (numNodes - 1 when connected).
  uint64_t numEdges() const { return EdgeCount; }

private:
  std::vector<uint32_t> Depth;
  std::vector<std::vector<GenIndex>> Children;
  std::vector<NodeId> Parent;
  std::vector<GenIndex> ParentLink;
  uint32_t Height = 0;
  uint64_t EdgeCount = 0;
};

} // namespace scg

#endif // SCG_COMM_BROADCASTTREE_H
