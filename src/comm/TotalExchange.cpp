//===- comm/TotalExchange.cpp - Total exchange (Corollary 3) -------------===//

#include "comm/TotalExchange.h"

#include "emulation/ScgRouter.h"
#include "graph/Bfs.h"

#include <cassert>

using namespace scg;

uint64_t scg::teLowerBound(const ExplicitScg &Net) {
  // Vertex transitivity: one BFS gives every node's distance sum. Total
  // packet-hops N * sum over N * degree link capacity per step.
  BfsResult R = bfsExplicit(Net, 0);
  assert(R.NumReached == Net.numNodes() && "network is disconnected");
  return (R.DistanceSum + Net.degree() - 1) / Net.degree();
}

TeResult scg::simulateTotalExchange(const ExplicitScg &Net,
                                    CommModel Model) {
  uint64_t N = Net.numNodes();
  assert(N <= 720 && "total exchange is quadratic in N; keep k <= 6");
  const SuperCayleyGraph &Host = Net.network();
  Permutation Identity = Permutation::identity(Host.numSymbols());

  // Routes depend only on the relative permutation: precompute N-1 words.
  std::vector<std::vector<GenIndex>> RouteByRel(N);
  uint64_t HopTotal = 0;
  for (NodeId Rel = 1; Rel != N; ++Rel) {
    RouteByRel[Rel] =
        routeViaStarEmulation(Host, Identity, Net.label(Rel)).hops();
    HopTotal += RouteByRel[Rel].size();
  }

  NetworkSimulator Sim(Net, Model);
  for (NodeId S = 0; S != N; ++S)
    for (NodeId Rel = 1; Rel != N; ++Rel)
      Sim.injectPacket(S, RouteByRel[Rel]);

  SimulationResult Run = Sim.run(/*MaxSteps=*/N * 64);
  assert(Run.Completed && "total exchange did not complete");

  TeResult Result;
  Result.Steps = Run.Steps;
  Result.Packets = N * (N - 1);
  Result.LowerBound = teLowerBound(Net);
  Result.Ratio = Result.LowerBound
                     ? double(Result.Steps) / double(Result.LowerBound)
                     : 0.0;
  Result.LinkUtilization = Run.LinkUtilization;
  Result.AverageRouteLength = double(HopTotal) / double(N - 1);
  return Result;
}
