//===- comm/PermutationRouting.cpp - Permutation traffic -----------------===//

#include "comm/PermutationRouting.h"

#include "emulation/ScgRouter.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <map>

using namespace scg;

TrafficPattern scg::randomTraffic(const ExplicitScg &Net, uint64_t Seed) {
  // Fisher-Yates with the deterministic RNG.
  TrafficPattern Pattern(Net.numNodes());
  for (NodeId U = 0; U != Net.numNodes(); ++U)
    Pattern[U] = U;
  SplitMix64 Rng(Seed);
  for (NodeId U = Net.numNodes(); U-- > 1;)
    std::swap(Pattern[U], Pattern[Rng.nextBelow(U + 1)]);
  return Pattern;
}

TrafficPattern scg::reversalTraffic(const ExplicitScg &Net) {
  TrafficPattern Pattern(Net.numNodes());
  for (NodeId U = 0; U != Net.numNodes(); ++U)
    Pattern[U] = Net.numNodes() - 1 - U;
  return Pattern;
}

TrafficPattern scg::translationTraffic(const ExplicitScg &Net, GenIndex G) {
  assert(G < Net.degree() && "generator out of range");
  TrafficPattern Pattern(Net.numNodes());
  for (NodeId U = 0; U != Net.numNodes(); ++U)
    Pattern[U] = Net.next(U, G);
  return Pattern;
}

PermutationRoutingResult
scg::simulatePermutationRouting(const ExplicitScg &Net,
                                const TrafficPattern &Pattern,
                                CommModel Model,
                                const std::vector<SimObserver *> &Observers) {
  assert(Pattern.size() == Net.numNodes() && "pattern must cover all nodes");
  const SuperCayleyGraph &Host = Net.network();

  PermutationRoutingResult Result;
  NetworkSimulator Sim(Net, Model);
  for (SimObserver *O : Observers)
    Sim.addObserver(O);
  std::map<std::pair<NodeId, GenIndex>, uint64_t> Load;
  uint64_t HopTotal = 0;
  unsigned Longest = 0;
  uint64_t Injected = 0;
  for (NodeId U = 0; U != Net.numNodes(); ++U) {
    if (Pattern[U] == U)
      continue;
    GeneratorPath Path =
        routeViaStarEmulation(Host, Net.label(U), Net.label(Pattern[U]));
    NodeId At = U;
    for (GenIndex G : Path.hops()) {
      Result.MaxLinkLoad = std::max(Result.MaxLinkLoad, ++Load[{At, G}]);
      At = Net.next(At, G);
    }
    HopTotal += Path.length();
    Longest = std::max(Longest, Path.length());
    Sim.injectPacket(U, Path.hops());
    ++Injected;
  }

  SimulationResult Run =
      Sim.run(/*MaxSteps=*/uint64_t(Net.numNodes()) * Net.degree() * 8);
  assert(Run.Completed && "permutation routing did not complete");
  Result.Steps = Run.Steps;
  Result.LowerBound = std::max<uint64_t>(Longest, Result.MaxLinkLoad);
  Result.Ratio = Result.LowerBound
                     ? double(Result.Steps) / double(Result.LowerBound)
                     : 0.0;
  Result.AverageRouteLength =
      Injected ? double(HopTotal) / double(Injected) : 0.0;
  return Result;
}

std::vector<PermutationRoutingResult>
scg::simulatePermutationRoutingBatch(const ExplicitScg &Net,
                                     const std::vector<TrafficPattern> &Patterns,
                                     CommModel Model) {
  // Each pattern gets its own NetworkSimulator and load map; the shared
  // ExplicitScg is read-only after construction, so instances are
  // independent. One chunk per pattern: a whole simulation is coarse work.
  std::vector<PermutationRoutingResult> Results(Patterns.size());
  ThreadPool::global().parallelFor(
      0, Patterns.size(),
      [&](uint64_t I) {
        Results[I] = simulatePermutationRouting(Net, Patterns[I], Model);
      },
      /*ChunkSize=*/1);
  return Results;
}
