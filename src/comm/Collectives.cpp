//===- comm/Collectives.cpp - Broadcast, scatter, gather -----------------===//

#include "comm/Collectives.h"

#include <cassert>
#include <deque>

using namespace scg;

CollectiveResult scg::simulateBroadcast(const ExplicitScg &Net,
                                        const BroadcastTree &Tree,
                                        CommModel Model) {
  assert(Model != CommModel::SingleDimension &&
         "SDC broadcast: use simulateMnbSdc for the SDC collective");
  uint64_t N = Net.numNodes();
  unsigned Degree = Net.degree();

  // Token queues per (node, link); the source is node 0 = the identity,
  // so relative and absolute coordinates coincide.
  std::vector<std::deque<NodeId>> Queues(size_t(N) * Degree);
  uint64_t Pending = 0;
  for (GenIndex G : Tree.children(0)) {
    Queues[G].push_back(0);
    ++Pending;
  }

  CollectiveResult Result;
  Result.LowerBound = Tree.height();
  struct Arrival {
    NodeId At;
  };
  std::vector<NodeId> Arrivals;
  while (Pending != 0) {
    ++Result.Steps;
    Arrivals.clear();
    for (NodeId U = 0; U != N; ++U) {
      unsigned Budget = (Model == CommModel::SinglePort) ? 1 : Degree;
      for (GenIndex G = 0; G != Degree && Budget != 0; ++G) {
        auto &Queue = Queues[size_t(U) * Degree + G];
        if (Queue.empty())
          continue;
        Queue.pop_front();
        --Pending;
        --Budget;
        Arrivals.push_back(Net.next(U, G));
      }
    }
    for (NodeId At : Arrivals)
      for (GenIndex G : Tree.children(At)) {
        Queues[size_t(At) * Degree + G].push_back(At);
        ++Pending;
      }
  }
  Result.Ratio = Result.LowerBound
                     ? double(Result.Steps) / double(Result.LowerBound)
                     : 0.0;
  return Result;
}

CollectiveResult scg::simulateScatter(const ExplicitScg &Net,
                                      const BroadcastTree &Tree,
                                      CommModel Model) {
  NetworkSimulator Sim(Net, Model);
  for (NodeId W = 1; W != Net.numNodes(); ++W)
    Sim.injectPacket(0, Tree.pathFromRoot(W));
  SimulationResult Run =
      Sim.run(/*MaxSteps=*/uint64_t(Net.numNodes()) * Net.degree() * 4);
  assert(Run.Completed && "scatter did not complete");

  CollectiveResult Result;
  Result.Steps = Run.Steps;
  Result.LowerBound =
      Model == CommModel::SinglePort
          ? Net.numNodes() - 1
          : (Net.numNodes() - 1 + Net.degree() - 1) / Net.degree();
  Result.Ratio = double(Result.Steps) / double(Result.LowerBound);
  return Result;
}

CollectiveResult scg::simulateAllReduce(const ExplicitScg &Net,
                                        const BroadcastTree &Tree,
                                        CommModel Model) {
  CollectiveResult Gather = simulateGather(Net, Tree, Model);
  CollectiveResult Broadcast = simulateBroadcast(Net, Tree, Model);
  CollectiveResult Result;
  Result.Steps = Gather.Steps + Broadcast.Steps;
  Result.LowerBound = Gather.LowerBound + Broadcast.LowerBound;
  Result.Ratio = Result.LowerBound
                     ? double(Result.Steps) / double(Result.LowerBound)
                     : 0.0;
  return Result;
}

CollectiveResult scg::simulateGather(const ExplicitScg &Net,
                                     const BroadcastTree &Tree,
                                     CommModel Model) {
  assert(Net.network().isUndirected() &&
         "gather reverses tree links; the network must be undirected");
  const GeneratorSet &Gens = Net.network().generators();
  NetworkSimulator Sim(Net, Model);
  for (NodeId W = 1; W != Net.numNodes(); ++W) {
    std::vector<GenIndex> Down = Tree.pathFromRoot(W);
    std::vector<GenIndex> Up;
    Up.reserve(Down.size());
    for (auto It = Down.rbegin(); It != Down.rend(); ++It)
      Up.push_back(*Gens.inverseOf(*It));
    Sim.injectPacket(W, std::move(Up));
  }
  SimulationResult Run =
      Sim.run(/*MaxSteps=*/uint64_t(Net.numNodes()) * Net.degree() * 4);
  assert(Run.Completed && "gather did not complete");

  CollectiveResult Result;
  Result.Steps = Run.Steps;
  Result.LowerBound =
      (Net.numNodes() - 1 + Net.degree() - 1) / Net.degree();
  Result.Ratio = double(Result.Steps) / double(Result.LowerBound);
  return Result;
}
