//===- comm/SimObserver.cpp - Simulator observability hooks --------------===//

#include "comm/SimObserver.h"

#include <algorithm>
#include <sstream>

using namespace scg;

SimObserver::~SimObserver() = default;

void SimObserver::onRunBegin(const NetworkSimulator &) {}

void SimObserver::onStep(const NetworkSimulator &, const StepEvents &) {}

void SimObserver::onRunEnd(const NetworkSimulator &,
                           const SimulationResult &) {}

//===----------------------------------------------------------------------===//
// MetricsObserver
//===----------------------------------------------------------------------===//

MetricsObserver::MetricsObserver(MetricsRegistry &Registry)
    : Registry(Registry),
      Transmissions(Registry.counter("sim.transmissions")),
      BusyLinkSteps(Registry.counter("sim.busy_link_steps")),
      Arrivals(Registry.counter("sim.arrivals")),
      Deliveries(Registry.counter("sim.deliveries")),
      QueuedPackets(Registry.gauge("sim.queued_packets")),
      ActiveLinks(Registry.gauge("sim.active_links")),
      MaxQueueDepth(Registry.gauge("sim.max_queue_depth")) {}

void MetricsObserver::onRunBegin(const NetworkSimulator &) {}

void MetricsObserver::onStep(const NetworkSimulator &,
                             const StepEvents &Events) {
  uint64_t Started = 0;
  for (const LinkActivity &A : Events.Active)
    Started += A.Started;
  Transmissions.add(Started);
  BusyLinkSteps.add(Events.Active.size());
  Arrivals.add(Events.Arrivals.size());
  Deliveries.add(Events.Deliveries.size());
  QueuedPackets.set(double(Events.QueuedPackets));
  ActiveLinks.set(double(Events.Active.size()));
  MaxQueueDepth.set(double(Events.MaxQueueDepth));
  Registry.sample(Events.Step);
}

//===----------------------------------------------------------------------===//
// ModelInvariantChecker
//===----------------------------------------------------------------------===//

void ModelInvariantChecker::onRunBegin(const NetworkSimulator &Sim) {
  size_t Links = size_t(Sim.net().numNodes()) * Sim.net().degree();
  LinkStamp.assign(Links, 0);
  LinkCount.assign(Links, 0);
  NodeStamp.assign(Sim.net().numNodes(), 0);
  NodeCount.assign(Sim.net().numNodes(), 0);
}

void ModelInvariantChecker::onStep(const NetworkSimulator &Sim,
                                   const StepEvents &Events) {
  // Stamps distinguish steps without clearing; step S uses stamp S + 1 so
  // the zero-initialized arrays never alias step 0.
  uint64_t Stamp = Events.Step + 1;
  unsigned Degree = Sim.net().degree();
  auto Flag = [&](const std::string &What) {
    Violations.push_back({Events.Step, What});
  };

  for (const LinkActivity &A : Events.Active) {
    size_t L = size_t(A.Node) * Degree + A.Link;
    if (LinkStamp[L] != Stamp) {
      LinkStamp[L] = Stamp;
      LinkCount[L] = 0;
    }
    if (++LinkCount[L] > 1)
      Flag("link (" + std::to_string(A.Node) + ", g" +
           std::to_string(A.Link) + ") carries " +
           std::to_string(LinkCount[L]) + " messages in one step");

    if (Sim.model() == CommModel::SinglePort) {
      if (NodeStamp[A.Node] != Stamp) {
        NodeStamp[A.Node] = Stamp;
        NodeCount[A.Node] = 0;
      }
      if (++NodeCount[A.Node] > 1)
        Flag("single-port node " + std::to_string(A.Node) + " has " +
             std::to_string(NodeCount[A.Node]) +
             " active links in one step");
    }

    if (Sim.model() == CommModel::SingleDimension && A.Started &&
        (!Events.HasScheduledLink || A.Link != Events.ScheduledLink))
      Flag("single-dimension transmission started on g" +
           std::to_string(A.Link) + " but the schedule selected g" +
           std::to_string(Events.ScheduledLink));
  }
}

std::string ModelInvariantChecker::report() const {
  if (clean())
    return "clean";
  std::ostringstream OS;
  size_t Shown = std::min<size_t>(Violations.size(), 20);
  OS << Violations.size() << " violation(s):\n";
  for (size_t I = 0; I != Shown; ++I)
    OS << "  step " << Violations[I].Step << ": " << Violations[I].What
       << "\n";
  if (Shown != Violations.size())
    OS << "  ... " << (Violations.size() - Shown) << " more\n";
  return OS.str();
}
