//===- comm/Mnb.cpp - Multinode broadcast (Corollary 2) ------------------===//

#include "comm/Mnb.h"

#include <cassert>
#include <deque>
#include <functional>

using namespace scg;

uint64_t scg::mnbLowerBound(uint64_t NumNodes, unsigned Degree) {
  assert(Degree != 0 && "degenerate network");
  return (NumNodes - 1 + Degree - 1) / Degree;
}

uint64_t scg::mnbSdcLowerBound(uint64_t NumNodes) { return NumNodes - 1; }

namespace {

/// Shared MNB engine: per step, a link (u, g) fires iff \p LinkActive says
/// so; each firing link moves one relative-rank token and the arrival
/// replicates onto its tree children.
MnbResult runMnb(const ExplicitScg &Net, const BroadcastTree &Tree,
                 uint64_t LowerBound,
                 const std::function<bool(uint64_t, GenIndex)> &LinkActive) {
  uint64_t N = Net.numNodes();
  unsigned Degree = Net.degree();
  MnbResult Result;
  Result.LowerBound = LowerBound;

  std::vector<std::deque<NodeId>> Queues(size_t(N) * Degree);
  uint64_t Pending = 0;
  for (NodeId S = 0; S != N; ++S)
    for (GenIndex G : Tree.children(0)) {
      Queues[size_t(S) * Degree + G].push_back(0);
      ++Pending;
    }

  uint64_t Transmissions = 0;
  struct Arrival {
    NodeId At;
    NodeId Rel;
  };
  std::vector<Arrival> Arrivals;
  while (Pending != 0) {
    uint64_t Step = Result.Steps++;
    Arrivals.clear();
    for (GenIndex G = 0; G != Degree; ++G) {
      if (!LinkActive(Step, G))
        continue;
      for (NodeId U = 0; U != N; ++U) {
        auto &Queue = Queues[size_t(U) * Degree + G];
        if (Queue.empty())
          continue;
        NodeId W = Queue.front();
        Queue.pop_front();
        --Pending;
        ++Transmissions;
        Arrivals.push_back({Net.next(U, G), Net.next(W, G)});
      }
    }
    // Deliver and replicate after the transmission phase so a token moves
    // at most one hop per step.
    for (const Arrival &A : Arrivals) {
      ++Result.Deliveries;
      for (GenIndex G : Tree.children(A.Rel)) {
        Queues[size_t(A.At) * Degree + G].push_back(A.Rel);
        ++Pending;
      }
    }
  }

  assert(Result.Deliveries == N * (N - 1) && "MNB did not reach everyone");
  Result.Ratio = Result.LowerBound
                     ? double(Result.Steps) / double(Result.LowerBound)
                     : 0.0;
  Result.LinkUtilization =
      Result.Steps
          ? double(Transmissions) / double(N * Degree * Result.Steps)
          : 0.0;
  return Result;
}

} // namespace

MnbResult scg::simulateMnb(const ExplicitScg &Net,
                           const BroadcastTree &Tree) {
  return runMnb(Net, Tree, mnbLowerBound(Net.numNodes(), Net.degree()),
                [](uint64_t, GenIndex) { return true; });
}

MnbResult scg::simulateMnbStriped(const ExplicitScg &Net,
                                  const std::vector<BroadcastTree> &Trees) {
  assert(!Trees.empty() && "need at least one tree");
  uint64_t N = Net.numNodes();
  unsigned Degree = Net.degree();
  MnbResult Result;
  Result.LowerBound = mnbLowerBound(N, Degree);

  // Queue entry: (relative rank, tree index) of the transmitting token.
  struct Token {
    NodeId Rel;
    uint32_t Tree;
  };
  std::vector<std::deque<Token>> Queues(size_t(N) * Degree);
  uint64_t Pending = 0;
  for (NodeId S = 0; S != N; ++S) {
    uint32_t T = S % Trees.size();
    for (GenIndex G : Trees[T].children(0)) {
      Queues[size_t(S) * Degree + G].push_back({0, T});
      ++Pending;
    }
  }

  uint64_t Transmissions = 0;
  struct Arrival {
    NodeId At;
    Token Tok;
  };
  std::vector<Arrival> Arrivals;
  while (Pending != 0) {
    ++Result.Steps;
    Arrivals.clear();
    for (NodeId U = 0; U != N; ++U)
      for (GenIndex G = 0; G != Degree; ++G) {
        auto &Queue = Queues[size_t(U) * Degree + G];
        if (Queue.empty())
          continue;
        Token Tok = Queue.front();
        Queue.pop_front();
        --Pending;
        ++Transmissions;
        Arrivals.push_back({Net.next(U, G), {Net.next(Tok.Rel, G), Tok.Tree}});
      }
    for (const Arrival &A : Arrivals) {
      ++Result.Deliveries;
      for (GenIndex G : Trees[A.Tok.Tree].children(A.Tok.Rel)) {
        Queues[size_t(A.At) * Degree + G].push_back(A.Tok);
        ++Pending;
      }
    }
  }

  assert(Result.Deliveries == N * (N - 1) && "MNB did not reach everyone");
  Result.Ratio = double(Result.Steps) / double(Result.LowerBound);
  Result.LinkUtilization =
      double(Transmissions) / double(N * Degree * Result.Steps);
  return Result;
}

MnbResult scg::simulateMnbSdc(const ExplicitScg &Net,
                              const BroadcastTree &Tree,
                              std::vector<GenIndex> Cycle) {
  if (Cycle.empty())
    for (GenIndex G = 0; G != Net.degree(); ++G)
      Cycle.push_back(G);
  return runMnb(Net, Tree, mnbSdcLowerBound(Net.numNodes()),
                [Cycle = std::move(Cycle)](uint64_t Step, GenIndex G) {
                  return Cycle[Step % Cycle.size()] == G;
                });
}
