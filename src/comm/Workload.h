//===- comm/Workload.h - Synthetic traffic workloads -----------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic steady-state traffic for the network simulator: the standard
/// interconnect-evaluation workloads (uniform random, hotspot, transpose,
/// bit-reversal, bursty on/off arrivals), generated as timed injection
/// events at a configurable per-node injection rate, plus the open-loop
/// driver simulateTrafficLoad() that offers a workload to a network and
/// reports delivered throughput, latency percentiles, and queue occupancy.
/// This is the methodology behind the saturation curves in
/// BENCH_traffic.json (throughput-vs-offered-load and latency-vs-load per
/// family x model); the paper itself only evaluates one-shot permutation
/// traffic, so this is the repo's extension to "heavy traffic".
///
/// All generators are seeded and deterministic: one SplitMix64 stream per
/// source node (derived from the spec seed), stepped in a fixed order, so
/// a trace is a pure function of (network, spec, horizon) on every
/// platform and thread count.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_COMM_WORKLOAD_H
#define SCG_COMM_WORKLOAD_H

#include "comm/Simulator.h"

namespace scg {

class MetricsRegistry;
class SimObserver;

/// The synthetic traffic patterns.
enum class WorkloadKind {
  UniformRandom, ///< destination uniform over the other nodes.
  Hotspot,       ///< a configured fraction targets one hot node.
  Transpose,     ///< u -> rank of label(u)^-1 (the permutation-matrix
                 ///< transpose; an involution, fixed points allowed).
  BitReversal,   ///< u -> reverse of u's rank bits (mod node count).
  BurstyUniform, ///< uniform destinations, on/off (Markov) arrivals.
};

/// Returns a display name ("uniform", "hotspot", ...).
std::string workloadKindName(WorkloadKind Kind);

/// Parameters of a workload. InjectionRate is the per-node packet
/// injection probability per step (offered load in packets/node/step);
/// under BurstyUniform it is still the *long-run* rate -- bursts inject at
/// rate InjectionRate / BurstDutyCycle while on.
struct WorkloadSpec {
  WorkloadKind Kind = WorkloadKind::UniformRandom;
  double InjectionRate = 0.01;
  uint64_t Seed = 0;
  double HotspotFraction = 0.5;  ///< Hotspot: fraction aimed at the hot node.
  NodeId HotspotNode = 0;        ///< Hotspot: the hot node.
  double BurstDutyCycle = 0.25;  ///< BurstyUniform: long-run fraction on.
  double MeanBurstLength = 8.0;  ///< BurstyUniform: mean on-period steps.
  unsigned FlitCount = 1;        ///< flits per injected message.
};

/// One timed injection: node Src sends one message to Dst at step Step.
struct TrafficEvent {
  uint64_t Step;
  NodeId Src;
  NodeId Dst;
};

/// Deterministic generator of TrafficEvent traces.
class WorkloadGenerator {
public:
  WorkloadGenerator(const ExplicitScg &Net, const WorkloadSpec &Spec);

  /// Generates the trace for steps [0, Steps), sorted by (Step, Src).
  std::vector<TrafficEvent> generate(uint64_t Steps) const;

  /// The closed-form transpose destination of \p U (exposed for tests).
  static NodeId transposeDestination(const ExplicitScg &Net, NodeId U);

  /// The closed-form bit-reversal destination of \p U among \p Count nodes
  /// (reverse the low bit_width(Count-1) bits, then reduce mod Count).
  static NodeId bitReversalDestination(NodeId U, NodeId Count);

private:
  const ExplicitScg &Net;
  WorkloadSpec Spec;
  std::vector<NodeId> FixedDest; ///< per-source map (transpose/bit-reversal).
};

/// Options of the traffic driver.
struct TrafficLoadOptions {
  SimEngine Engine = SimEngine::Event; ///< load sweeps want the event core.
  unsigned Shards = 1;                 ///< setEventShards value.
  MetricsRegistry *Registry = nullptr; ///< optional traffic.* metrics sink.
  std::vector<SimObserver *> Observers; ///< extra observers to attach.
  /// Batched route setup (the default): dedupe all (src, dst) pairs to
  /// their relative labels (Cayley symmetry: at most numNodes distinct),
  /// compute one route per label via QueryEngine::routeBatchRelative over
  /// the global ThreadPool, and let every injection share its label's
  /// route through the simulator's flat route arena. False selects the
  /// legacy serial per-pair loop; traces and results are byte-identical
  /// either way (the batched path only changes setup time and memory).
  bool BatchedSetup = true;
  /// Nonzero makes the source closed-loop: an injection whose source node
  /// already has this many packets queued is deferred until the depth
  /// drops (see NetworkSimulator::setClosedLoop). Zero is open-loop.
  uint64_t ClosedLoopMaxQueue = 0;
};

/// What simulateTrafficLoad measured. Latency of a delivered packet is
/// (delivery step - injection step + 1), i.e. a 1-hop packet that transmits
/// in its injection step has latency 1; zero-hop packets (transpose fixed
/// points) have latency 0. Latency statistics are over delivered packets
/// only -- packets still queued at the horizon are counted in Offered but
/// not Delivered, which is what makes the driver open-loop.
struct TrafficLoadResult {
  SimulationResult Sim;
  uint64_t Offered = 0;       ///< messages injected over the horizon.
  double OfferedRate = 0.0;   ///< Offered / (nodes * steps).
  double DeliveredRate = 0.0; ///< Sim.Delivered / (nodes * steps).
  double MeanHops = 0.0;      ///< mean route length of delivered packets.
  double MeanLatency = 0.0;
  uint64_t P50Latency = 0;
  uint64_t P99Latency = 0;
  double MeanQueued = 0.0; ///< mean queued packets over active steps.
  /// Setup telemetry. DistinctLabels and DedupFactor are deterministic
  /// (pure functions of the trace); SetupSeconds is wall-clock time of the
  /// route-setup phase and is the ONLY field excluded from the
  /// determinism contract.
  uint64_t DistinctLabels = 0; ///< distinct relative labels routed.
  double DedupFactor = 0.0;    ///< Offered / DistinctLabels (0 if none).
  double SetupSeconds = 0.0;   ///< wall-clock route-setup time.
};

/// Offers \p Spec traffic to \p Net under \p Model for \p Steps steps
/// (routes are the lifted optimal star routes, as in permutation routing)
/// and reports what was delivered. Deterministic for fixed inputs,
/// including across engines, shard counts, and thread counts.
TrafficLoadResult simulateTrafficLoad(const ExplicitScg &Net, CommModel Model,
                                      const WorkloadSpec &Spec,
                                      uint64_t Steps,
                                      const TrafficLoadOptions &Options = {});

/// Every metric name simulateTrafficLoad publishes, in publication order.
/// Pins the names against silent renames: MetricsTest round-trips each
/// through a registry and the JSON writer.
std::vector<std::string> trafficMetricNames();

} // namespace scg

#endif // SCG_COMM_WORKLOAD_H
