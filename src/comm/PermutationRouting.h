//===- comm/PermutationRouting.h - Permutation traffic ---------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Permutation routing: every node u sends one packet to pi(u) for a
/// permutation pi of the nodes -- the canonical "hard" unicast pattern
/// between the single-packet case and the total exchange of Corollary 3.
/// Routes are the lifted optimal star routes of Theorems 1-3; completion
/// is reported against max(dilation-bound, per-link-load) lower bounds.
/// Includes the two named patterns used in the benches: a pseudo-random
/// permutation and the "reversal" pattern u -> complement-rank(u), plus
/// translation traffic u -> u o g (which Cayley symmetry routes with
/// perfectly uniform load -- the "traffic ... is uniform within a
/// constant factor" remark at the end of Section 1).
///
//===----------------------------------------------------------------------===//

#ifndef SCG_COMM_PERMUTATIONROUTING_H
#define SCG_COMM_PERMUTATIONROUTING_H

#include "comm/Simulator.h"

namespace scg {

/// Destination map over node ids: Dest[u] is u's target (a permutation of
/// 0..N-1).
using TrafficPattern = std::vector<NodeId>;

/// Pseudo-random permutation of the nodes of \p Net.
TrafficPattern randomTraffic(const ExplicitScg &Net, uint64_t Seed);

/// Rank-reversal pattern: u -> N-1-u.
TrafficPattern reversalTraffic(const ExplicitScg &Net);

/// Translation pattern: u -> (label of u) composed with \p G's action.
TrafficPattern translationTraffic(const ExplicitScg &Net, GenIndex G);

/// Result of routing one traffic pattern.
struct PermutationRoutingResult {
  uint64_t Steps = 0;
  uint64_t LowerBound = 0; ///< max(longest route, max per-link load).
  double Ratio = 0.0;
  double AverageRouteLength = 0.0;
  uint64_t MaxLinkLoad = 0;
};

class SimObserver;

/// Routes \p Pattern on \p Net under \p Model via lifted star routes;
/// requires supportsStarEmulation(Net.network()). Any \p Observers are
/// attached to the underlying NetworkSimulator for the run (results are
/// unaffected; see comm/SimObserver.h).
PermutationRoutingResult
simulatePermutationRouting(const ExplicitScg &Net,
                           const TrafficPattern &Pattern,
                           CommModel Model = CommModel::AllPort,
                           const std::vector<SimObserver *> &Observers = {});

/// Routes many independent traffic patterns over the same network, one
/// simulator instance per pattern, in parallel on the global ThreadPool
/// (SCG_THREADS=1 forces serial). Results[i] corresponds to Patterns[i] and
/// is identical to calling simulatePermutationRouting on it alone.
std::vector<PermutationRoutingResult>
simulatePermutationRoutingBatch(const ExplicitScg &Net,
                                const std::vector<TrafficPattern> &Patterns,
                                CommModel Model = CommModel::AllPort);

} // namespace scg

#endif // SCG_COMM_PERMUTATIONROUTING_H
