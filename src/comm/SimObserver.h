//===- comm/SimObserver.h - Simulator observability hooks ------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability hooks for NetworkSimulator: a per-step event record
/// (link activity, hop arrivals, deliveries, queue depths), an abstract
/// SimObserver receiving it, and two standard observers --
///
///   MetricsObserver        feeds a support/Metrics.h MetricsRegistry with
///                          named counters/gauges sampled every step
///   ModelInvariantChecker  asserts the defining constraint of the
///                          configured CommModel every step (see below)
///
/// The hooks cost nothing when unused: run() dispatches to an
/// uninstrumented loop unless an observer is attached, and results are
/// byte-identical either way (pinned by tests/SimObserverTest.cpp).
///
/// Per-model invariants checked every step:
///
///   all-port          at most one message per directed link (this one is
///                     model-independent and always checked)
///   single-port       at most one *active* outgoing link per node, where
///                     a link mid-way through a multi-flit store-and-
///                     forward transmission counts as active for every one
///                     of its FlitCount occupancy steps
///   single-dimension  transmissions only start on the generator the
///                     dimension cycle schedules for the step
///
//===----------------------------------------------------------------------===//

#ifndef SCG_COMM_SIMOBSERVER_H
#define SCG_COMM_SIMOBSERVER_H

#include "comm/Simulator.h"
#include "support/Metrics.h"

#include <string>
#include <vector>

namespace scg {

/// One directed link carrying (part of) a message during a step.
struct LinkActivity {
  NodeId Node;     ///< transmitting node (source endpoint of the link).
  GenIndex Link;   ///< generator index of the directed link.
  uint32_t Packet; ///< id of the occupying packet/message.
  unsigned Flits;  ///< message length in flits.
  bool Started;    ///< true if the transmission began this step; false for
                   ///< the later occupancy steps of a multi-flit message.
};

/// Everything that happened in one simulator step. The record is built
/// only when at least one observer is attached and is reused across steps
/// (clear(), not reallocation).
struct StepEvents {
  uint64_t Step = 0;
  CommModel Model = CommModel::AllPort;
  GenIndex ScheduledLink = 0;    ///< single-dimension: this step's generator.
  bool HasScheduledLink = false; ///< true only under single-dimension.
  std::vector<LinkActivity> Active; ///< links occupied this step.
  std::vector<uint32_t> Arrivals;   ///< packets that completed a hop.
  std::vector<uint32_t> Deliveries; ///< packets delivered this step.
  uint64_t QueuedPackets = 0;       ///< total queued, sampled pre-step.
  uint64_t MaxQueueDepth = 0;       ///< deepest per-link queue, pre-step.

  void clear() {
    HasScheduledLink = false;
    Active.clear();
    Arrivals.clear();
    Deliveries.clear();
    QueuedPackets = 0;
    MaxQueueDepth = 0;
  }
};

/// Abstract step hook. Attach with NetworkSimulator::addObserver (non-
/// owning; the observer must outlive run()). Default implementations do
/// nothing, so observers override only what they need.
class SimObserver {
public:
  virtual ~SimObserver();

  /// Called once when run() starts, before the first step.
  virtual void onRunBegin(const NetworkSimulator &Sim);

  /// Called at the end of every step with that step's event record.
  virtual void onStep(const NetworkSimulator &Sim, const StepEvents &Events);

  /// Called once when run() returns, with the final result.
  virtual void onRunEnd(const NetworkSimulator &Sim,
                        const SimulationResult &Result);
};

/// Feeds a MetricsRegistry from the step stream and samples it every step.
/// Counters: sim.transmissions (message-hops started), sim.busy_link_steps,
/// sim.arrivals, sim.deliveries. Gauges: sim.queued_packets,
/// sim.active_links, sim.max_queue_depth.
class MetricsObserver final : public SimObserver {
public:
  explicit MetricsObserver(MetricsRegistry &Registry);

  void onRunBegin(const NetworkSimulator &Sim) override;
  void onStep(const NetworkSimulator &Sim, const StepEvents &Events) override;

private:
  MetricsRegistry &Registry;
  Metric &Transmissions;
  Metric &BusyLinkSteps;
  Metric &Arrivals;
  Metric &Deliveries;
  Metric &QueuedPackets;
  Metric &ActiveLinks;
  Metric &MaxQueueDepth;
};

/// Checks the defining constraint of the simulator's CommModel every step
/// (see the file comment for the exact rules) and records violations. The
/// standing correctness harness for scheduling changes: attach one, run,
/// assert clean().
class ModelInvariantChecker final : public SimObserver {
public:
  struct Violation {
    uint64_t Step;
    std::string What;
  };

  bool clean() const { return Violations.empty(); }
  const std::vector<Violation> &violations() const { return Violations; }

  /// Human-readable report: "clean" or one line per violation (capped).
  std::string report() const;

  void onRunBegin(const NetworkSimulator &Sim) override;
  void onStep(const NetworkSimulator &Sim, const StepEvents &Events) override;

private:
  std::vector<Violation> Violations;
  // Stamped per-step occupancy counts so no per-step clearing is needed.
  std::vector<uint64_t> LinkStamp;
  std::vector<unsigned> LinkCount;
  std::vector<uint64_t> NodeStamp;
  std::vector<unsigned> NodeCount;
};

} // namespace scg

#endif // SCG_COMM_SIMOBSERVER_H
