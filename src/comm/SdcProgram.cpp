//===- comm/SdcProgram.cpp - Algorithm-level SDC emulation    ----------===//

#include "comm/SdcProgram.h"

#include "core/Generator.h"
#include "emulation/SdcEmulation.h"
#include "support/Format.h"

#include <cassert>

using namespace scg;

SdcStarProgram scg::makeRandomSdcProgram(unsigned K, unsigned Steps,
                                         uint64_t Seed) {
  assert(K >= 2 && "need at least one dimension");
  SplitMix64 Rng(Seed);
  SdcStarProgram Program;
  Program.Dims.reserve(Steps);
  for (unsigned S = 0; S != Steps; ++S)
    Program.Dims.push_back(2 + Rng.nextBelow(K - 1));
  return Program;
}

Permutation scg::sdcProgramEffect(unsigned K,
                                  const SdcStarProgram &Program) {
  Permutation Effect = Permutation::identity(K);
  for (unsigned Dim : Program.Dims)
    Effect = Effect.compose(makeTransposition(K, Dim).Sigma);
  return Effect;
}

std::vector<GenIndex>
scg::translateSdcProgram(const SuperCayleyGraph &Host,
                         const SdcStarProgram &Program) {
  std::vector<GenIndex> Seq;
  for (unsigned Dim : Program.Dims) {
    GeneratorPath Path = starDimensionPath(Host, Dim);
    Seq.insert(Seq.end(), Path.hops().begin(), Path.hops().end());
  }
  return Seq;
}

SdcProgramRun scg::runSdcProgram(const ExplicitScg &Host,
                                 const SdcStarProgram &Program) {
  const SuperCayleyGraph &Net = Host.network();
  std::vector<GenIndex> Seq = translateSdcProgram(Net, Program);

  SdcProgramRun Run;
  Run.StarSteps = Program.Dims.size();
  if (Seq.empty()) {
    Run.LockStep = Run.PlacementOk = true;
    return Run;
  }

  // Simulate: one datum per node, the translated sequence both as every
  // datum's route and as the dimension schedule. Every active step moves
  // every datum exactly one hop, so the run must be contention-free.
  NetworkSimulator Sim(Host, CommModel::SingleDimension);
  Sim.setDimensionCycle(Seq);
  for (NodeId U = 0; U != Host.numNodes(); ++U)
    Sim.injectPacket(U, Seq);
  SimulationResult Result = Sim.run(/*MaxSteps=*/Seq.size() + 1);
  Run.HostSteps = Result.Steps;
  Run.Slowdown = double(Run.HostSteps) / double(Run.StarSteps);
  Run.LockStep = Result.Completed && Result.Steps == Seq.size() &&
                 Result.MaxQueueLength <= 1;

  // Placement check: walking the sequence from any node must land on
  // node o effect; spot-check a spread of sources.
  Permutation Effect =
      sdcProgramEffect(Net.numSymbols(), Program);
  Run.PlacementOk = true;
  for (NodeId U = 0; U < Host.numNodes();
       U += std::max<NodeId>(1, Host.numNodes() / 17)) {
    NodeId At = U;
    for (GenIndex G : Seq)
      At = Host.next(At, G);
    if (Host.label(At) != Host.label(U).compose(Effect)) {
      Run.PlacementOk = false;
      break;
    }
  }
  return Run;
}
