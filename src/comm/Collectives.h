//===- comm/Collectives.h - Broadcast, scatter, gather ---------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The remaining prototype communication tasks of the [4]/[10] taxonomy
/// the paper draws MNB/TE from: single-node broadcast (one source to all),
/// scatter (one source, personalized packets to all) and its converse
/// gather, and all-reduce (gather + broadcast). Each runs on the
/// translation-invariant BFS tree over the packet simulator and is
/// reported against its universal lower bound:
///
///   broadcast  >= tree height (= diameter, all-port) / ceil(log) rounds
///   scatter    >= ceil((N-1)/degree)   (source's send capacity)
///   gather     >= ceil((N-1)/degree)   (sink's receive capacity)
///
//===----------------------------------------------------------------------===//

#ifndef SCG_COMM_COLLECTIVES_H
#define SCG_COMM_COLLECTIVES_H

#include "comm/BroadcastTree.h"
#include "comm/Simulator.h"

namespace scg {

/// Outcome of a collective run.
struct CollectiveResult {
  uint64_t Steps = 0;
  uint64_t LowerBound = 0;
  double Ratio = 0.0;
};

/// Broadcast from node 0 along \p Tree under \p Model. Under the all-port
/// model a node forwards to all children in one step, so completion is
/// exactly the tree height.
CollectiveResult simulateBroadcast(const ExplicitScg &Net,
                                   const BroadcastTree &Tree,
                                   CommModel Model = CommModel::AllPort);

/// Scatter from node 0: one personalized packet per destination, routed
/// along the tree paths.
CollectiveResult simulateScatter(const ExplicitScg &Net,
                                 const BroadcastTree &Tree,
                                 CommModel Model = CommModel::AllPort);

/// Gather to node 0: every node sends one packet to the root along the
/// reversed tree path. Requires an undirected network (reverse links).
CollectiveResult simulateGather(const ExplicitScg &Net,
                                const BroadcastTree &Tree,
                                CommModel Model = CommModel::AllPort);

/// All-reduce as gather-then-broadcast (the reduction value must reach
/// the root before redistribution, so the phases are sequential); steps
/// and bounds are the sums of the two phases.
CollectiveResult simulateAllReduce(const ExplicitScg &Net,
                                   const BroadcastTree &Tree,
                                   CommModel Model = CommModel::AllPort);

} // namespace scg

#endif // SCG_COMM_COLLECTIVES_H
