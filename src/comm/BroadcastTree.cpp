//===- comm/BroadcastTree.cpp - Translation-invariant trees --------------===//

#include "comm/BroadcastTree.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

using namespace scg;

BroadcastTree::BroadcastTree(const ExplicitScg &Net, unsigned Rotation)
    : Depth(Net.numNodes(), std::numeric_limits<uint32_t>::max()),
      Children(Net.numNodes()), Parent(Net.numNodes(), 0),
      ParentLink(Net.numNodes(), 0) {
  std::deque<NodeId> Queue;
  Depth[0] = 0;
  Queue.push_back(0);
  while (!Queue.empty()) {
    NodeId W = Queue.front();
    Queue.pop_front();
    // Rotate the generator order per node so tree-edge labels spread evenly
    // across the links; the per-link MNB load is the number of tree edges
    // with a given label, so balance here is completion time there.
    for (unsigned Offset = 0; Offset != Net.degree(); ++Offset) {
      GenIndex G = (W + Rotation + Offset) % Net.degree();
      NodeId V = Net.next(W, G);
      if (Depth[V] != std::numeric_limits<uint32_t>::max())
        continue;
      Depth[V] = Depth[W] + 1;
      Height = std::max(Height, Depth[V]);
      Children[W].push_back(G);
      Parent[V] = W;
      ParentLink[V] = G;
      ++EdgeCount;
      Queue.push_back(V);
    }
  }
  assert(EdgeCount + 1 == Net.numNodes() && "network is disconnected");
}

std::vector<GenIndex> BroadcastTree::pathFromRoot(NodeId W) const {
  std::vector<GenIndex> Reversed;
  while (Depth[W] != 0) {
    Reversed.push_back(ParentLink[W]);
    W = Parent[W];
  }
  return {Reversed.rbegin(), Reversed.rend()};
}
