//===- comm/SdcProgram.h - Algorithm-level SDC emulation    --*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Theorem 1 at algorithm granularity. An SDC algorithm skeleton for the
/// k-star is a sequence of dimensions: at step t every node forwards its
/// datum along its dimension Dims[t] link, so the program's data movement
/// is the permutation T_{Dims[0]} o T_{Dims[1]} o ... (every datum from
/// node U ends at U composed with that product). Emulating the program on
/// a super Cayley graph replaces each step by the host word of
/// starDimensionPath; the net effects agree by construction, and because
/// at every emulated step each node forwards exactly one datum on the one
/// active generator, the host run is contention-free and finishes in
/// exactly sum-of-path-lengths steps -- the slowdown of Theorems 1-3,
/// now measured end-to-end through the packet simulator.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_COMM_SDCPROGRAM_H
#define SCG_COMM_SDCPROGRAM_H

#include "comm/Simulator.h"
#include "routing/Path.h"

namespace scg {

/// A star-graph SDC algorithm skeleton: one dimension (2..k) per step.
struct SdcStarProgram {
  std::vector<unsigned> Dims;
};

/// Generates a pseudo-random \p Steps-step program for the k-star.
SdcStarProgram makeRandomSdcProgram(unsigned K, unsigned Steps,
                                    uint64_t Seed);

/// The program's data-movement permutation: a datum starting at node U
/// ends at U o effect.
Permutation sdcProgramEffect(unsigned K, const SdcStarProgram &Program);

/// Translates the program into the host's generator sequence (one entry
/// per host SDC step); requires supportsStarEmulation(Host).
std::vector<GenIndex> translateSdcProgram(const SuperCayleyGraph &Host,
                                          const SdcStarProgram &Program);

/// Result of executing a translated program on the simulator.
struct SdcProgramRun {
  uint64_t StarSteps = 0;  ///< program length.
  uint64_t HostSteps = 0;  ///< simulated steps on the host.
  double Slowdown = 0.0;   ///< HostSteps / StarSteps.
  bool LockStep = false;   ///< every datum advanced every step (max queue 1,
                           ///< no contention).
  bool PlacementOk = false; ///< final placement matches the star effect.
};

/// Runs the program on \p Host under the single-dimension model: one datum
/// per node, the translated generator cycle as the dimension schedule.
/// Verifies contention-freedom and placement correctness.
SdcProgramRun runSdcProgram(const ExplicitScg &Host,
                            const SdcStarProgram &Program);

} // namespace scg

#endif // SCG_COMM_SDCPROGRAM_H
