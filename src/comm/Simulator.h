//===- comm/Simulator.h - Synchronous packet-level simulator ---*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A synchronous packet-level network simulator over an explicit super
/// Cayley graph, implementing the paper's three communication models:
///
///   all-port          every directed link moves one packet per step
///   single-port       every node transmits on at most one link per step
///   single-dimension  all nodes use links of one generator per step (the
///                     SDC model of Section 3), cycling a dimension
///                     schedule
///
/// Packets carry fixed source routes (generator words). Per-link FIFO
/// queues, two-phase step execution (select transmissions, then apply), and
/// completion/utilization statistics.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_COMM_SIMULATOR_H
#define SCG_COMM_SIMULATOR_H

#include "networks/Explicit.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace scg {

/// The communication models of Sections 3 and 4.
enum class CommModel { AllPort, SinglePort, SingleDimension };

/// Returns a display name ("all-port", ...).
std::string commModelName(CommModel Model);

/// Outcome of a simulation run.
struct SimulationResult {
  bool Completed = false; ///< all packets delivered within the step cap.
  uint64_t Steps = 0;     ///< steps executed until completion (or cap).
  uint64_t Delivered = 0; ///< packets delivered, including zero-hop packets
                          ///< injected with an empty route.
  /// Message-hops: one per (message, link) transmission regardless of the
  /// message's flit count. A 3-flit message crossing 2 links contributes 2.
  uint64_t Transmissions = 0;
  /// Link occupancy in link-steps: a FlitCount-flit message-hop holds its
  /// link for FlitCount steps and contributes all of them. This, not
  /// Transmissions, is what utilization is computed from.
  uint64_t BusyLinkSteps = 0;
  uint64_t MaxQueueLength = 0;
  double LinkUtilization = 0.0; ///< BusyLinkSteps / (links * steps).
};

class SimObserver;
struct StepEvents;

/// The simulator. Inject packets, then run(). Optionally attach
/// SimObservers (comm/SimObserver.h) first; with none attached run()
/// executes an uninstrumented loop, so observability is free when off and
/// results are identical either way.
class NetworkSimulator {
public:
  NetworkSimulator(const ExplicitScg &Net, CommModel Model);

  const ExplicitScg &net() const { return Net; }
  CommModel model() const { return Model; }

  /// Injects a packet at \p Src that will follow \p Route hop by hop.
  /// \p FlitCount > 1 models a store-and-forward message: each link
  /// transmission occupies the link for FlitCount consecutive steps (the
  /// whole message is buffered per hop). Pipelined (cut-through/wormhole)
  /// transfers are modeled by injecting FlitCount unit packets instead.
  void injectPacket(NodeId Src, std::vector<GenIndex> Route,
                    unsigned FlitCount = 1);

  /// For the single-dimension model: the generator used at step t is
  /// Cycle[t % Cycle.size()]. Defaults to cycling all generators in order.
  void setDimensionCycle(std::vector<GenIndex> Cycle);

  /// Attaches a step observer (non-owning; must outlive run()). Observers
  /// fire in attachment order at the end of every step.
  void addObserver(SimObserver *Observer);

  /// Benchmark knob: forces run() through the instrumented loop even with
  /// no observer attached, so the perf-smoke lane can measure the hook
  /// overhead of the disabled observability layer (asserted <= 2% by
  /// bench_pipelining --smoke). Results are unaffected.
  void forceInstrumentation(bool On) { AlwaysInstrument = On; }

  /// Runs until every packet is delivered or \p MaxSteps elapse.
  SimulationResult run(uint64_t MaxSteps);

private:
  struct Packet {
    NodeId At;
    uint32_t NextHop;
    unsigned Flits;
    std::vector<GenIndex> Route;
  };

  /// In-flight multi-flit transmission on one link.
  struct InFlight {
    uint32_t Id = 0;
    uint64_t DoneStep = 0;
    bool Active = false;
  };

  /// Queue index of (node, link).
  size_t queueIndex(NodeId Node, GenIndex Link) const {
    return size_t(Node) * Net.degree() + Link;
  }

  /// Enqueues packet \p Id at its current node for its next hop; delivers
  /// it instead when the route is exhausted (recording the id in
  /// \p DeliveredOut when the caller is collecting events).
  void enqueueOrDeliver(uint32_t Id, SimulationResult &Result,
                        std::vector<uint32_t> *DeliveredOut);

  /// The step loop. Instantiated twice: Observed = false is the pristine
  /// hot loop (no event collection, no hook checks); Observed = true adds
  /// the observer machinery. run() dispatches once on entry.
  template <bool Observed> SimulationResult runImpl(uint64_t MaxSteps);

  const ExplicitScg &Net;
  CommModel Model;
  std::vector<Packet> Packets;
  std::vector<std::deque<uint32_t>> Queues;
  std::vector<InFlight> Busy; ///< per-link multi-flit transmission state.
  std::vector<GenIndex> DimensionCycle;
  std::vector<GenIndex> PortPointer; ///< round-robin state per node.
  /// Single-port rule for store-and-forward messages: a node whose port is
  /// mid-way through a multi-flit transmission may not start another until
  /// the occupancy ends. NodeBusyUntil[u] is the first step u is free
  /// again (selection step + FlitCount); 0 = never busy. Maintained for
  /// every model, consulted only under CommModel::SinglePort.
  std::vector<uint64_t> NodeBusyUntil;
  uint64_t Pending = 0;
  uint64_t DeliveredAtInject = 0; ///< zero-hop packets, delivered on inject.
  std::vector<SimObserver *> Observers;
  bool AlwaysInstrument = false;
};

} // namespace scg

#endif // SCG_COMM_SIMULATOR_H
