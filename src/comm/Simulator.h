//===- comm/Simulator.h - Packet-level simulator (step + event) *- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A packet-level network simulator over an explicit super Cayley graph,
/// implementing the paper's three communication models:
///
///   all-port          every directed link moves one packet per step
///   single-port       every node transmits on at most one link per step
///   single-dimension  all nodes use links of one generator per step (the
///                     SDC model of Section 3), cycling a dimension
///                     schedule
///
/// Packets carry fixed source routes (generator words). Per-link FIFO
/// queues, two-phase step execution (select transmissions, then apply), and
/// completion/utilization statistics.
///
/// Two interchangeable engines execute the same semantics:
///
///   SimEngine::Step   the original globally synchronous loop: every step
///                     scans all queues and links. Cost per step is
///                     O(nodes * degree) even when nothing is in flight.
///   SimEngine::Event  a calendar-queue core that only touches nodes/links
///                     with pending work and fast-forwards over empty
///                     steps. Results (Steps, Delivered, Transmissions,
///                     BusyLinkSteps, MaxQueueLength, LinkUtilization) are
///                     byte-identical to the step engine -- pinned by
///                     tests/EventCoreDifferentialTest.cpp -- but cost is
///                     proportional to actual activity, which is what makes
///                     steady-state load sweeps (comm/Workload.h) feasible.
///
/// The event engine can additionally shard per-node state across the
/// global ThreadPool (setEventShards): shard boundaries are a fixed
/// function of the node count, every queue/heap is owned by exactly one
/// shard, and each step runs as two deterministic phases with barriers, so
/// parallel runs are byte-identical to serial ones at every thread count.
///
/// Traffic can be injected up front (injectPacket) or scheduled for a
/// future step (scheduleInjection), which is how the open-loop workload
/// driver offers load at a configurable injection rate.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_COMM_SIMULATOR_H
#define SCG_COMM_SIMULATOR_H

#include "networks/Explicit.h"

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace scg {

/// The communication models of Sections 3 and 4.
enum class CommModel { AllPort, SinglePort, SingleDimension };

/// Returns a display name ("all-port", ...).
std::string commModelName(CommModel Model);

/// The two execution engines (identical results, different cost model).
enum class SimEngine { Step, Event };

/// Returns a display name ("step", "event").
std::string simEngineName(SimEngine Engine);

/// Outcome of a simulation run.
struct SimulationResult {
  bool Completed = false; ///< all packets delivered within the step cap.
  uint64_t Steps = 0;     ///< steps executed until completion (or cap).
  uint64_t Delivered = 0; ///< packets delivered, including zero-hop packets
                          ///< injected with an empty route.
  /// Message-hops: one per (message, link) transmission regardless of the
  /// message's flit count. A 3-flit message crossing 2 links contributes 2.
  uint64_t Transmissions = 0;
  /// Link occupancy in link-steps: a FlitCount-flit message-hop holds its
  /// link for FlitCount steps and contributes all of them. This, not
  /// Transmissions, is what utilization is computed from.
  uint64_t BusyLinkSteps = 0;
  uint64_t MaxQueueLength = 0;
  double LinkUtilization = 0.0; ///< BusyLinkSteps / (links * steps).
  /// Engine-work diagnostic: queue/link slots the engine examined. This is
  /// the one field that is *engine-dependent by design* (the step engine
  /// scans everything every step, the event engine only touches scheduled
  /// work), so it is excluded from engine-identity comparisons. The
  /// sparse-traffic speedup of the event core is this ratio.
  uint64_t TouchedWork = 0;
  /// Closed-loop admission control (setClosedLoop): scheduled injections
  /// that were admitted later than their scheduled step, and the total
  /// admission delay in steps summed over them. Both zero under open loop,
  /// and byte-identical across engines/shards/threads like every other
  /// result field (injections still deferred when the run ends are counted
  /// in neither).
  uint64_t DeferredInjections = 0;
  uint64_t DeferredSteps = 0;
};

class SimObserver;
struct StepEvents;

/// The simulator. Inject packets, then run(). Optionally attach
/// SimObservers (comm/SimObserver.h) first; with none attached run()
/// executes an uninstrumented loop, so observability is free when off and
/// results are identical either way.
class NetworkSimulator {
public:
  NetworkSimulator(const ExplicitScg &Net, CommModel Model);

  const ExplicitScg &net() const { return Net; }
  CommModel model() const { return Model; }

  /// Selects the execution engine (default SimEngine::Step, the historical
  /// behavior). Results are byte-identical either way; see the file
  /// comment for the cost trade-off.
  void setEngine(SimEngine E) { Engine = E; }
  SimEngine engine() const { return Engine; }

  /// Event engine only: shards per-node state into \p Shards fixed,
  /// contiguous node ranges executed in parallel on the global ThreadPool
  /// with two barriers per processed step. 1 (the default) runs serially;
  /// 0 resolves to the effective thread count. Results are byte-identical
  /// at every shard and thread count (fixed shard boundaries, per-shard
  /// calendar queues, and phase-2 pushes applied in global step order by
  /// the owning shard).
  void setEventShards(unsigned Shards) { EventShards = Shards; }

  /// Injects a packet at \p Src that will follow \p Route hop by hop.
  /// \p FlitCount > 1 models a store-and-forward message: each link
  /// transmission occupies the link for FlitCount consecutive steps (the
  /// whole message is buffered per hop). Pipelined (cut-through/wormhole)
  /// transfers are modeled by injecting FlitCount unit packets instead.
  void injectPacket(NodeId Src, std::vector<GenIndex> Route,
                    unsigned FlitCount = 1);

  /// Schedules a packet to be injected at the start of step \p Step (so it
  /// is eligible to transmit during that step). Open-loop traffic at a
  /// configurable injection rate is built from these. Returns the packet
  /// id, which identifies the packet in StepEvents::Deliveries. Packets
  /// scheduled for the same step are injected in call order.
  uint32_t scheduleInjection(uint64_t Step, NodeId Src,
                             std::vector<GenIndex> Route,
                             unsigned FlitCount = 1);

  /// Registers \p Route once in the simulator's flat route pool and
  /// returns a handle; any number of injections can then share it via
  /// scheduleInjectionShared. On a vertex-transitive network a route is a
  /// function of the relative label only, so the batched traffic setup
  /// stores one route per distinct label here instead of one owned
  /// std::vector per packet.
  uint32_t addSharedRoute(std::span<const GenIndex> Route);

  /// scheduleInjection following the previously registered shared route
  /// \p RouteHandle (an addSharedRoute return value). Returns the packet
  /// id; ids are shared with the owned-route overload and stay contiguous
  /// in call order.
  uint32_t scheduleInjectionShared(uint64_t Step, NodeId Src,
                                   uint32_t RouteHandle,
                                   unsigned FlitCount = 1);

  /// Closed-loop admission control for scheduled injections: when
  /// \p MaxNodeQueue is nonzero, an injection is admitted at the first
  /// step >= its scheduled step at which the total queued packets across
  /// its source node's output queues is below the limit; otherwise it is
  /// deferred and retried (FIFO among deferred injections, which are
  /// always retried before that step's newly scheduled ones). Zero-hop
  /// packets occupy no queue and are never throttled. 0 (the default)
  /// restores open-loop behavior. Results remain byte-identical across
  /// engines, shard counts, and thread counts: admission decisions are
  /// made on the main thread in a deterministic order, and queue depths
  /// only change at steps both engines process.
  void setClosedLoop(uint64_t MaxNodeQueue) {
    ClosedLoopMaxQueue = MaxNodeQueue;
  }

  /// For the single-dimension model: the generator used at step t is
  /// Cycle[t % Cycle.size()]. Defaults to cycling all generators in order.
  void setDimensionCycle(std::vector<GenIndex> Cycle);

  /// Attaches a step observer (non-owning; must outlive run()). Observers
  /// fire in attachment order at the end of every step. Under the event
  /// engine, steps with no scheduled work are fast-forwarded and fire no
  /// onStep (there is nothing to report: no link is busy, no packet
  /// moves, queue contents are unchanged).
  void addObserver(SimObserver *Observer);

  /// Benchmark knob: forces run() through the instrumented loop even with
  /// no observer attached, so the perf-smoke lane can measure the hook
  /// overhead of the disabled observability layer (asserted <= 2% by
  /// bench_pipelining --smoke). Results are unaffected.
  void forceInstrumentation(bool On) { AlwaysInstrument = On; }

  /// Runs until every packet (including scheduled injections) is delivered
  /// or \p MaxSteps elapse.
  SimulationResult run(uint64_t MaxSteps);

private:
  /// Packets hold views into RoutePool (begin + length) instead of owned
  /// vectors: shared routes are registered once and referenced by every
  /// packet on the same relative label, and per-packet state is a flat
  /// 16-byte record with no heap indirection on the hot path.
  struct Packet {
    NodeId At;
    uint32_t NextHop;
    unsigned Flits;
    uint32_t RouteBegin; ///< first hop's index in RoutePool.
    uint32_t RouteLen;   ///< number of hops.
  };

  /// In-flight multi-flit transmission on one link.
  struct InFlight {
    uint32_t Id = 0;
    uint64_t DoneStep = 0;
    bool Active = false;
  };

  /// A scheduled future injection: Packets[Id] enters its first queue at
  /// the start of step Step.
  struct TimedInjection {
    uint64_t Step;
    uint32_t Id;
  };

  /// Queue index of (node, link).
  size_t queueIndex(NodeId Node, GenIndex Link) const {
    return size_t(Node) * Net.degree() + Link;
  }

  /// Enqueues packet \p Id at its current node for its next hop; delivers
  /// it instead when the route is exhausted (recording the id in
  /// \p DeliveredOut when the caller is collecting events).
  void enqueueOrDeliver(uint32_t Id, SimulationResult &Result,
                        std::vector<uint32_t> *DeliveredOut);

  /// The step-engine loop. Instantiated twice: Collect = false is the
  /// pristine hot loop (no event collection, no hook checks, selected
  /// whenever no observer is attached); Collect = true adds the observer
  /// machinery. run() dispatches once on entry, so zero-overhead
  /// observability is structural.
  template <bool Collect> SimulationResult runImpl(uint64_t MaxSteps);

  /// The event-engine loop (calendar queues, sharded). Same Observed
  /// dispatch contract as runImpl.
  template <bool Observed> SimulationResult runEventImpl(uint64_t MaxSteps);

  /// Appends \p Route to RoutePool and returns (begin, length).
  std::pair<uint32_t, uint32_t> appendRoute(std::span<const GenIndex> Route);

  /// Hop \p Hop of packet \p P.
  GenIndex routeHop(const Packet &P, uint32_t Hop) const {
    return RoutePool[size_t(P.RouteBegin) + Hop];
  }

  const ExplicitScg &Net;
  CommModel Model;
  SimEngine Engine = SimEngine::Step;
  unsigned EventShards = 1;
  uint64_t ClosedLoopMaxQueue = 0; ///< 0 = open loop (no admission control).
  std::vector<GenIndex> RoutePool; ///< every route, flat; packets index in.
  /// Shared routes by handle: (begin, length) into RoutePool.
  std::vector<std::pair<uint32_t, uint32_t>> SharedRoutes;
  std::vector<Packet> Packets;
  std::vector<std::deque<uint32_t>> Queues;
  std::vector<InFlight> Busy; ///< per-link multi-flit transmission state.
  std::vector<TimedInjection> Injections; ///< future injections, by Step.
  std::vector<GenIndex> DimensionCycle;
  std::vector<GenIndex> PortPointer; ///< round-robin state per node.
  /// Single-port rule for store-and-forward messages: a node whose port is
  /// mid-way through a multi-flit transmission may not start another until
  /// the occupancy ends. NodeBusyUntil[u] is the first step u is free
  /// again (selection step + FlitCount); 0 = never busy. Maintained for
  /// every model, consulted only under CommModel::SinglePort.
  std::vector<uint64_t> NodeBusyUntil;
  uint64_t Pending = 0;
  uint64_t DeliveredAtInject = 0; ///< zero-hop packets, delivered on inject.
  std::vector<SimObserver *> Observers;
  bool AlwaysInstrument = false;
};

} // namespace scg

#endif // SCG_COMM_SIMULATOR_H
