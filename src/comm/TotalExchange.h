//===- comm/TotalExchange.h - Total exchange (Corollary 3) -----*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The total exchange task: every node sends a distinct packet to every
/// other node. Packets are source-routed (optimal star routes, lifted
/// through the emulation templates on super Cayley graph hosts) and run
/// under the all-port model; completion time is reported against the
/// bandwidth lower bound ceil(N * avgDistance / degree) from the proof of
/// Corollary 3.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_COMM_TOTALEXCHANGE_H
#define SCG_COMM_TOTALEXCHANGE_H

#include "comm/Simulator.h"

namespace scg {

/// Result of a total-exchange simulation.
struct TeResult {
  uint64_t Steps = 0;
  uint64_t Packets = 0;     ///< N * (N - 1).
  uint64_t LowerBound = 0;  ///< ceil(sum of all distances / (N * degree)).
  double Ratio = 0.0;
  double LinkUtilization = 0.0;
  double AverageRouteLength = 0.0;
};

/// Simulates the TE on \p Net under \p Model. Routes use the optimal star
/// route lifted through the host's emulation templates (plain star routes
/// on the star graph itself); requires supportsStarEmulation(). N <= 720
/// is asserted (the task is quadratic in N).
TeResult simulateTotalExchange(const ExplicitScg &Net,
                               CommModel Model = CommModel::AllPort);

/// The bandwidth lower bound: total packet-hops over link capacity.
uint64_t teLowerBound(const ExplicitScg &Net);

} // namespace scg

#endif // SCG_COMM_TOTALEXCHANGE_H
