//===- comm/Workload.cpp - Synthetic traffic workloads --------------------===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "comm/Workload.h"

#include "comm/SimObserver.h"
#include "emulation/ScgRouter.h"
#include "query/QueryEngine.h"
#include "support/Format.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <numeric>

using namespace scg;

std::string scg::workloadKindName(WorkloadKind Kind) {
  switch (Kind) {
  case WorkloadKind::UniformRandom:
    return "uniform";
  case WorkloadKind::Hotspot:
    return "hotspot";
  case WorkloadKind::Transpose:
    return "transpose";
  case WorkloadKind::BitReversal:
    return "bit-reversal";
  case WorkloadKind::BurstyUniform:
    return "bursty";
  }
  assert(false && "unknown workload kind");
  return "?";
}

NodeId WorkloadGenerator::transposeDestination(const ExplicitScg &Net,
                                               NodeId U) {
  return Net.rankOf(Net.label(U).inverse());
}

NodeId WorkloadGenerator::bitReversalDestination(NodeId U, NodeId Count) {
  assert(Count != 0 && U < Count && "node out of range");
  unsigned Bits = 0;
  while ((NodeId(1) << Bits) < Count)
    ++Bits;
  NodeId Rev = 0;
  for (unsigned B = 0; B != Bits; ++B)
    if (U & (NodeId(1) << B))
      Rev |= NodeId(1) << (Bits - 1 - B);
  return Rev % Count;
}

WorkloadGenerator::WorkloadGenerator(const ExplicitScg &Net,
                                     const WorkloadSpec &Spec)
    : Net(Net), Spec(Spec) {
  assert(Net.numNodes() >= 2 && "workloads need at least two nodes");
  assert(Spec.InjectionRate >= 0.0 && "negative injection rate");
  if (Spec.Kind == WorkloadKind::Transpose) {
    for (NodeId U = 0; U != Net.numNodes(); ++U)
      FixedDest.push_back(transposeDestination(Net, U));
  } else if (Spec.Kind == WorkloadKind::BitReversal) {
    for (NodeId U = 0; U != Net.numNodes(); ++U)
      FixedDest.push_back(bitReversalDestination(U, Net.numNodes()));
  }
}

namespace {

/// Uniform [0, 1) from the top 53 bits of one SplitMix64 draw; bit-exact
/// on every platform, unlike std::uniform_real_distribution.
double nextU01(SplitMix64 &R) {
  return double(R.next() >> 11) * 0x1.0p-53;
}

/// Uniform destination over the nodes other than \p Src.
NodeId uniformOther(SplitMix64 &R, NodeId Src, NodeId Count) {
  NodeId D = NodeId(R.nextBelow(Count - 1));
  return D >= Src ? D + 1 : D;
}

} // namespace

std::vector<TrafficEvent> WorkloadGenerator::generate(uint64_t Steps) const {
  const NodeId Count = Net.numNodes();
  // One stream per source node, all advanced in the same step-major order,
  // so the trace never depends on how it is consumed. Per-node seeds are
  // SplitMix64 *outputs*, not raw states: states spaced by the generator's
  // own golden-ratio increment would make every node replay its neighbor's
  // sequence one draw behind, synchronizing injections into waves.
  std::vector<SplitMix64> Streams;
  Streams.reserve(Count);
  SplitMix64 SeedStream(Spec.Seed);
  for (NodeId U = 0; U != Count; ++U)
    Streams.emplace_back(SeedStream.next());

  const bool Bursty = Spec.Kind == WorkloadKind::BurstyUniform;
  // Bursty arrivals: a two-state Markov source per node. Mean on-period
  // MeanBurstLength, mean off-period chosen so the long-run on-fraction is
  // BurstDutyCycle; while on, inject at InjectionRate / BurstDutyCycle so
  // the long-run offered rate still equals InjectionRate.
  double Duty = Spec.BurstDutyCycle;
  double OnExit = 0.0, OffExit = 0.0, OnRate = 0.0;
  std::vector<uint8_t> On;
  if (Bursty) {
    assert(Duty > 0.0 && Duty <= 1.0 && "duty cycle out of range");
    assert(Spec.MeanBurstLength >= 1.0 && "mean burst below one step");
    OnExit = 1.0 / Spec.MeanBurstLength;
    double MeanOff = Spec.MeanBurstLength * (1.0 - Duty) / Duty;
    OffExit = MeanOff > 0.0 ? 1.0 / MeanOff : 1.0;
    OnRate = std::min(1.0, Spec.InjectionRate / Duty);
    On.resize(Count);
    for (NodeId U = 0; U != Count; ++U)
      On[U] = nextU01(Streams[U]) < Duty ? 1 : 0;
  }

  std::vector<TrafficEvent> Trace;
  for (uint64_t Step = 0; Step != Steps; ++Step) {
    for (NodeId U = 0; U != Count; ++U) {
      SplitMix64 &R = Streams[U];
      bool Inject;
      if (Bursty) {
        Inject = On[U] && nextU01(R) < OnRate;
        // State transition drawn every step, after the arrival draw.
        if (On[U])
          On[U] = nextU01(R) < OnExit ? 0 : 1;
        else
          On[U] = nextU01(R) < OffExit ? 1 : 0;
        if (!Inject)
          continue;
      } else {
        if (nextU01(R) >= Spec.InjectionRate)
          continue;
      }
      NodeId Dst = 0;
      switch (Spec.Kind) {
      case WorkloadKind::UniformRandom:
      case WorkloadKind::BurstyUniform:
        Dst = uniformOther(R, U, Count);
        break;
      case WorkloadKind::Hotspot:
        if (nextU01(R) < Spec.HotspotFraction && Spec.HotspotNode != U)
          Dst = Spec.HotspotNode;
        else
          Dst = uniformOther(R, U, Count);
        break;
      case WorkloadKind::Transpose:
      case WorkloadKind::BitReversal:
        Dst = FixedDest[U];
        break;
      }
      Trace.push_back({Step, U, Dst});
    }
  }
  return Trace;
}

namespace {

/// Records the delivery step of every packet id it sees.
class DeliveryRecorder final : public SimObserver {
public:
  explicit DeliveryRecorder(size_t PacketCount)
      : DeliverStep(PacketCount, ~uint64_t(0)) {}

  void onStep(const NetworkSimulator &, const StepEvents &Events) override {
    for (uint32_t Id : Events.Deliveries)
      if (Id < DeliverStep.size())
        DeliverStep[Id] = Events.Step;
  }

  std::vector<uint64_t> DeliverStep;
};

/// Averages Events.QueuedPackets over the steps the engine reports (the
/// event core fast-forwards empty steps, so this is "over active steps").
class OccupancyRecorder final : public SimObserver {
public:
  void onStep(const NetworkSimulator &, const StepEvents &Events) override {
    QueuedSum += Events.QueuedPackets;
    ++ActiveSteps;
  }
  uint64_t QueuedSum = 0;
  uint64_t ActiveSteps = 0;
};

} // namespace

TrafficLoadResult scg::simulateTrafficLoad(const ExplicitScg &Net,
                                           CommModel Model,
                                           const WorkloadSpec &Spec,
                                           uint64_t Steps,
                                           const TrafficLoadOptions &Options) {
  const NodeId Count = Net.numNodes();
  WorkloadGenerator Gen(Net, Spec);
  std::vector<TrafficEvent> Trace = Gen.generate(Steps);

  NetworkSimulator Sim(Net, Model);
  Sim.setEngine(Options.Engine);
  Sim.setEventShards(Options.Shards);
  if (Options.ClosedLoopMaxQueue)
    Sim.setClosedLoop(Options.ClosedLoopMaxQueue);

  // Route setup. Routes are the lifted optimal star routes (as in
  // permutation routing), and by Cayley symmetry a route depends only on
  // the relative label Rel = label(src)^-1 o label(dst) -- left
  // translation is an automorphism -- so the N^2 possible pairs collapse
  // to at most numNodes distinct labels. Both paths below dedupe on that
  // label (node ids ARE Lehmer ranks, so a flat slot vector indexes the
  // dedup); they differ only in how the distinct routes are computed and
  // stored, never in the trace they schedule.
  const SuperCayleyGraph &Host = Net.network();
  std::vector<uint64_t> InjectStep;
  std::vector<unsigned> Hops;
  InjectStep.reserve(Trace.size());
  Hops.reserve(Trace.size());

  TrafficLoadResult Result;
  auto SetupBegin = std::chrono::steady_clock::now();

  // Per-node labels and inverses, computed once instead of per event.
  std::vector<Permutation> Labels;
  Labels.reserve(Count);
  for (NodeId U = 0; U != Count; ++U)
    Labels.push_back(Net.label(U));
  std::vector<Permutation> InvLabels;
  InvLabels.reserve(Count);
  for (NodeId U = 0; U != Count; ++U)
    InvLabels.push_back(Labels[U].inverse());

  // Dedup pass: map each event to the slot of its relative label. Slot 0
  // is reserved for the identity label (src == dst, zero-hop).
  constexpr uint32_t NoSlot = ~uint32_t(0);
  std::vector<uint32_t> LabelSlot(Count, NoSlot);
  std::vector<Permutation> Rels;
  std::vector<uint32_t> EventSlot;
  EventSlot.reserve(Trace.size());
  for (const TrafficEvent &E : Trace) {
    if (E.Src == E.Dst) {
      EventSlot.push_back(NoSlot);
      continue;
    }
    Permutation Rel = InvLabels[E.Src].compose(Labels[E.Dst]);
    uint32_t &Slot = LabelSlot[Net.rankOf(Rel)];
    if (Slot == NoSlot) {
      Slot = uint32_t(Rels.size());
      Rels.push_back(std::move(Rel));
    }
    EventSlot.push_back(Slot);
  }
  Result.DistinctLabels = Rels.size();

  if (Options.BatchedSetup) {
    // Batched: one QueryEngine batch over the global ThreadPool computes
    // every distinct route into a flat arena (chunk boundaries are a
    // function of the batch length only, so the arena is byte-identical
    // at every thread count). The engine's cache is disabled: the driver
    // already deduped, so caching could only add shard-lock traffic.
    QueryEngineOptions QOpts;
    QOpts.CacheCapacity = 0;
    QueryEngine Engine(Host, QOpts);
    RouteArena Arena = Engine.routeBatchRelative(Rels);
#ifndef NDEBUG
    // The batched routes must equal the legacy scalar ones hop for hop
    // (both expand starWordForPermutation(Rel) through the Theorem 1-3
    // dimension templates; this pins that neither side drifts).
    for (size_t I = 0; I != Rels.size(); ++I) {
      std::vector<GenIndex> Legacy =
          routeViaStarEmulation(Host,
                                Permutation::identity(Host.numSymbols()),
                                Rels[I])
              .hops();
      std::span<const GenIndex> Batched = Arena.route(I);
      assert(std::equal(Batched.begin(), Batched.end(), Legacy.begin(),
                        Legacy.end()) &&
             "batched route differs from legacy scalar route");
    }
#endif
    // Register each distinct route once; every injection shares its
    // label's pool segment instead of copying the hop vector.
    std::vector<uint32_t> Handles;
    Handles.reserve(Rels.size());
    for (size_t I = 0; I != Rels.size(); ++I)
      Handles.push_back(Sim.addSharedRoute(Arena.route(I)));
    const std::vector<GenIndex> ZeroHop;
    for (size_t I = 0; I != Trace.size(); ++I) {
      const TrafficEvent &E = Trace[I];
      uint32_t Slot = EventSlot[I];
      uint32_t Id = Slot == NoSlot
                        ? Sim.scheduleInjection(E.Step, E.Src, ZeroHop,
                                                Spec.FlitCount)
                        : Sim.scheduleInjectionShared(E.Step, E.Src,
                                                      Handles[Slot],
                                                      Spec.FlitCount);
      assert(Id == InjectStep.size() && "packet ids not contiguous");
      (void)Id;
      InjectStep.push_back(E.Step);
      Hops.push_back(Slot == NoSlot ? 0 : Arena.length(Slot));
    }
  } else {
    // Legacy serial path: one scalar routeViaStarEmulation call per
    // distinct label (historically keyed by (src, dst) -- the label
    // re-key dedupes N^2 -> N without changing a single route).
    std::vector<std::vector<GenIndex>> Routes;
    Routes.reserve(Rels.size());
    for (const Permutation &Rel : Rels)
      Routes.push_back(
          routeViaStarEmulation(Host,
                                Permutation::identity(Host.numSymbols()),
                                Rel)
              .hops());
    const std::vector<GenIndex> ZeroHop;
    for (size_t I = 0; I != Trace.size(); ++I) {
      const TrafficEvent &E = Trace[I];
      uint32_t Slot = EventSlot[I];
      const std::vector<GenIndex> &Route =
          Slot == NoSlot ? ZeroHop : Routes[Slot];
      uint32_t Id =
          Sim.scheduleInjection(E.Step, E.Src, Route, Spec.FlitCount);
      assert(Id == InjectStep.size() && "packet ids not contiguous");
      (void)Id;
      InjectStep.push_back(E.Step);
      Hops.push_back(unsigned(Route.size()));
    }
  }
  Result.SetupSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    SetupBegin)
          .count();
  Result.DedupFactor = Result.DistinctLabels
                           ? double(Trace.size()) / double(Result.DistinctLabels)
                           : 0.0;

  DeliveryRecorder Recorder(Trace.size());
  OccupancyRecorder Occupancy;
  Sim.addObserver(&Recorder);
  Sim.addObserver(&Occupancy);
  for (SimObserver *O : Options.Observers)
    Sim.addObserver(O);

  Result.Sim = Sim.run(Steps);
  Result.Offered = Trace.size();
  double NodeSteps = double(Count) * double(Steps ? Steps : 1);
  Result.OfferedRate = double(Result.Offered) / NodeSteps;
  Result.DeliveredRate = double(Result.Sim.Delivered) / NodeSteps;

  std::vector<uint64_t> Latencies;
  uint64_t HopSum = 0;
  uint64_t LatencySum = 0;
  for (size_t I = 0; I != Trace.size(); ++I) {
    if (Recorder.DeliverStep[I] == ~uint64_t(0))
      continue; // still in the network at the horizon.
    uint64_t Latency =
        Hops[I] ? Recorder.DeliverStep[I] - InjectStep[I] + 1 : 0;
    Latencies.push_back(Latency);
    LatencySum += Latency;
    HopSum += Hops[I];
  }
  if (!Latencies.empty()) {
    Result.MeanHops = double(HopSum) / double(Latencies.size());
    Result.MeanLatency = double(LatencySum) / double(Latencies.size());
    std::sort(Latencies.begin(), Latencies.end());
    Result.P50Latency = Latencies[(Latencies.size() - 1) * 50 / 100];
    Result.P99Latency = Latencies[(Latencies.size() - 1) * 99 / 100];
  }
  if (Occupancy.ActiveSteps)
    Result.MeanQueued =
        double(Occupancy.QueuedSum) / double(Occupancy.ActiveSteps);

  if (MetricsRegistry *Reg = Options.Registry) {
    Reg->counter("traffic.offered").add(Result.Offered);
    Reg->counter("traffic.delivered").add(Result.Sim.Delivered);
    Reg->gauge("traffic.offered_rate").set(Result.OfferedRate);
    Reg->gauge("traffic.delivered_rate").set(Result.DeliveredRate);
    Reg->gauge("traffic.mean_latency").set(Result.MeanLatency);
    Reg->gauge("traffic.p50_latency").set(double(Result.P50Latency));
    Reg->gauge("traffic.p99_latency").set(double(Result.P99Latency));
    Reg->gauge("traffic.mean_queued").set(Result.MeanQueued);
    Reg->gauge("traffic.max_queue_length")
        .set(double(Result.Sim.MaxQueueLength));
    Reg->counter("traffic.setup.events").add(Result.Offered);
    Reg->counter("traffic.setup.distinct_labels").add(Result.DistinctLabels);
    Reg->counter("traffic.setup.route_hops")
        .add(std::accumulate(Hops.begin(), Hops.end(), uint64_t(0)));
    Reg->gauge("traffic.setup.dedup_factor").set(Result.DedupFactor);
    Reg->gauge("traffic.setup.batched").set(Options.BatchedSetup ? 1.0 : 0.0);
    Reg->gauge("traffic.closedloop.max_queue")
        .set(double(Options.ClosedLoopMaxQueue));
    Reg->counter("traffic.closedloop.deferred_injections")
        .add(Result.Sim.DeferredInjections);
    Reg->counter("traffic.closedloop.deferred_steps")
        .add(Result.Sim.DeferredSteps);
  }
  return Result;
}

std::vector<std::string> scg::trafficMetricNames() {
  return {"traffic.offered",
          "traffic.delivered",
          "traffic.offered_rate",
          "traffic.delivered_rate",
          "traffic.mean_latency",
          "traffic.p50_latency",
          "traffic.p99_latency",
          "traffic.mean_queued",
          "traffic.max_queue_length",
          "traffic.setup.events",
          "traffic.setup.distinct_labels",
          "traffic.setup.route_hops",
          "traffic.setup.dedup_factor",
          "traffic.setup.batched",
          "traffic.closedloop.max_queue",
          "traffic.closedloop.deferred_injections",
          "traffic.closedloop.deferred_steps"};
}
