//===- comm/Workload.cpp - Synthetic traffic workloads --------------------===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "comm/Workload.h"

#include "comm/SimObserver.h"
#include "emulation/ScgRouter.h"
#include "support/Format.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace scg;

std::string scg::workloadKindName(WorkloadKind Kind) {
  switch (Kind) {
  case WorkloadKind::UniformRandom:
    return "uniform";
  case WorkloadKind::Hotspot:
    return "hotspot";
  case WorkloadKind::Transpose:
    return "transpose";
  case WorkloadKind::BitReversal:
    return "bit-reversal";
  case WorkloadKind::BurstyUniform:
    return "bursty";
  }
  assert(false && "unknown workload kind");
  return "?";
}

NodeId WorkloadGenerator::transposeDestination(const ExplicitScg &Net,
                                               NodeId U) {
  return Net.rankOf(Net.label(U).inverse());
}

NodeId WorkloadGenerator::bitReversalDestination(NodeId U, NodeId Count) {
  assert(Count != 0 && U < Count && "node out of range");
  unsigned Bits = 0;
  while ((NodeId(1) << Bits) < Count)
    ++Bits;
  NodeId Rev = 0;
  for (unsigned B = 0; B != Bits; ++B)
    if (U & (NodeId(1) << B))
      Rev |= NodeId(1) << (Bits - 1 - B);
  return Rev % Count;
}

WorkloadGenerator::WorkloadGenerator(const ExplicitScg &Net,
                                     const WorkloadSpec &Spec)
    : Net(Net), Spec(Spec) {
  assert(Net.numNodes() >= 2 && "workloads need at least two nodes");
  assert(Spec.InjectionRate >= 0.0 && "negative injection rate");
  if (Spec.Kind == WorkloadKind::Transpose) {
    for (NodeId U = 0; U != Net.numNodes(); ++U)
      FixedDest.push_back(transposeDestination(Net, U));
  } else if (Spec.Kind == WorkloadKind::BitReversal) {
    for (NodeId U = 0; U != Net.numNodes(); ++U)
      FixedDest.push_back(bitReversalDestination(U, Net.numNodes()));
  }
}

namespace {

/// Uniform [0, 1) from the top 53 bits of one SplitMix64 draw; bit-exact
/// on every platform, unlike std::uniform_real_distribution.
double nextU01(SplitMix64 &R) {
  return double(R.next() >> 11) * 0x1.0p-53;
}

/// Uniform destination over the nodes other than \p Src.
NodeId uniformOther(SplitMix64 &R, NodeId Src, NodeId Count) {
  NodeId D = NodeId(R.nextBelow(Count - 1));
  return D >= Src ? D + 1 : D;
}

} // namespace

std::vector<TrafficEvent> WorkloadGenerator::generate(uint64_t Steps) const {
  const NodeId Count = Net.numNodes();
  // One stream per source node, all advanced in the same step-major order,
  // so the trace never depends on how it is consumed. Per-node seeds are
  // SplitMix64 *outputs*, not raw states: states spaced by the generator's
  // own golden-ratio increment would make every node replay its neighbor's
  // sequence one draw behind, synchronizing injections into waves.
  std::vector<SplitMix64> Streams;
  Streams.reserve(Count);
  SplitMix64 SeedStream(Spec.Seed);
  for (NodeId U = 0; U != Count; ++U)
    Streams.emplace_back(SeedStream.next());

  const bool Bursty = Spec.Kind == WorkloadKind::BurstyUniform;
  // Bursty arrivals: a two-state Markov source per node. Mean on-period
  // MeanBurstLength, mean off-period chosen so the long-run on-fraction is
  // BurstDutyCycle; while on, inject at InjectionRate / BurstDutyCycle so
  // the long-run offered rate still equals InjectionRate.
  double Duty = Spec.BurstDutyCycle;
  double OnExit = 0.0, OffExit = 0.0, OnRate = 0.0;
  std::vector<uint8_t> On;
  if (Bursty) {
    assert(Duty > 0.0 && Duty <= 1.0 && "duty cycle out of range");
    assert(Spec.MeanBurstLength >= 1.0 && "mean burst below one step");
    OnExit = 1.0 / Spec.MeanBurstLength;
    double MeanOff = Spec.MeanBurstLength * (1.0 - Duty) / Duty;
    OffExit = MeanOff > 0.0 ? 1.0 / MeanOff : 1.0;
    OnRate = std::min(1.0, Spec.InjectionRate / Duty);
    On.resize(Count);
    for (NodeId U = 0; U != Count; ++U)
      On[U] = nextU01(Streams[U]) < Duty ? 1 : 0;
  }

  std::vector<TrafficEvent> Trace;
  for (uint64_t Step = 0; Step != Steps; ++Step) {
    for (NodeId U = 0; U != Count; ++U) {
      SplitMix64 &R = Streams[U];
      bool Inject;
      if (Bursty) {
        Inject = On[U] && nextU01(R) < OnRate;
        // State transition drawn every step, after the arrival draw.
        if (On[U])
          On[U] = nextU01(R) < OnExit ? 0 : 1;
        else
          On[U] = nextU01(R) < OffExit ? 1 : 0;
        if (!Inject)
          continue;
      } else {
        if (nextU01(R) >= Spec.InjectionRate)
          continue;
      }
      NodeId Dst;
      switch (Spec.Kind) {
      case WorkloadKind::UniformRandom:
      case WorkloadKind::BurstyUniform:
        Dst = uniformOther(R, U, Count);
        break;
      case WorkloadKind::Hotspot:
        if (nextU01(R) < Spec.HotspotFraction && Spec.HotspotNode != U)
          Dst = Spec.HotspotNode;
        else
          Dst = uniformOther(R, U, Count);
        break;
      case WorkloadKind::Transpose:
      case WorkloadKind::BitReversal:
        Dst = FixedDest[U];
        break;
      }
      Trace.push_back({Step, U, Dst});
    }
  }
  return Trace;
}

namespace {

/// Records the delivery step of every packet id it sees.
class DeliveryRecorder final : public SimObserver {
public:
  explicit DeliveryRecorder(size_t PacketCount)
      : DeliverStep(PacketCount, ~uint64_t(0)) {}

  void onStep(const NetworkSimulator &, const StepEvents &Events) override {
    for (uint32_t Id : Events.Deliveries)
      if (Id < DeliverStep.size())
        DeliverStep[Id] = Events.Step;
  }

  std::vector<uint64_t> DeliverStep;
};

/// Averages Events.QueuedPackets over the steps the engine reports (the
/// event core fast-forwards empty steps, so this is "over active steps").
class OccupancyRecorder final : public SimObserver {
public:
  void onStep(const NetworkSimulator &, const StepEvents &Events) override {
    QueuedSum += Events.QueuedPackets;
    ++ActiveSteps;
  }
  uint64_t QueuedSum = 0;
  uint64_t ActiveSteps = 0;
};

} // namespace

TrafficLoadResult scg::simulateTrafficLoad(const ExplicitScg &Net,
                                           CommModel Model,
                                           const WorkloadSpec &Spec,
                                           uint64_t Steps,
                                           const TrafficLoadOptions &Options) {
  const NodeId Count = Net.numNodes();
  WorkloadGenerator Gen(Net, Spec);
  std::vector<TrafficEvent> Trace = Gen.generate(Steps);

  NetworkSimulator Sim(Net, Model);
  Sim.setEngine(Options.Engine);
  Sim.setEventShards(Options.Shards);

  // Routes are the lifted optimal star routes (as in permutation routing);
  // the (src, dst) cache matters because steady-state traffic revisits
  // pairs, and route computation dominates trace setup at k = 6.
  std::unordered_map<uint64_t, std::vector<GenIndex>> RouteCache;
  const SuperCayleyGraph &Host = Net.network();
  std::vector<uint64_t> InjectStep;
  std::vector<unsigned> Hops;
  InjectStep.reserve(Trace.size());
  Hops.reserve(Trace.size());
  for (const TrafficEvent &E : Trace) {
    uint64_t Key = uint64_t(E.Src) * Count + E.Dst;
    auto It = RouteCache.find(Key);
    if (It == RouteCache.end()) {
      std::vector<GenIndex> Route;
      if (E.Src != E.Dst)
        Route = routeViaStarEmulation(Host, Net.label(E.Src),
                                      Net.label(E.Dst))
                    .hops();
      It = RouteCache.emplace(Key, std::move(Route)).first;
    }
    uint32_t Id =
        Sim.scheduleInjection(E.Step, E.Src, It->second, Spec.FlitCount);
    assert(Id == InjectStep.size() && "packet ids not contiguous");
    (void)Id;
    InjectStep.push_back(E.Step);
    Hops.push_back(unsigned(It->second.size()));
  }

  DeliveryRecorder Recorder(Trace.size());
  OccupancyRecorder Occupancy;
  Sim.addObserver(&Recorder);
  Sim.addObserver(&Occupancy);
  for (SimObserver *O : Options.Observers)
    Sim.addObserver(O);

  TrafficLoadResult Result;
  Result.Sim = Sim.run(Steps);
  Result.Offered = Trace.size();
  double NodeSteps = double(Count) * double(Steps ? Steps : 1);
  Result.OfferedRate = double(Result.Offered) / NodeSteps;
  Result.DeliveredRate = double(Result.Sim.Delivered) / NodeSteps;

  std::vector<uint64_t> Latencies;
  uint64_t HopSum = 0;
  uint64_t LatencySum = 0;
  for (size_t I = 0; I != Trace.size(); ++I) {
    if (Recorder.DeliverStep[I] == ~uint64_t(0))
      continue; // still in the network at the horizon.
    uint64_t Latency =
        Hops[I] ? Recorder.DeliverStep[I] - InjectStep[I] + 1 : 0;
    Latencies.push_back(Latency);
    LatencySum += Latency;
    HopSum += Hops[I];
  }
  if (!Latencies.empty()) {
    Result.MeanHops = double(HopSum) / double(Latencies.size());
    Result.MeanLatency = double(LatencySum) / double(Latencies.size());
    std::sort(Latencies.begin(), Latencies.end());
    Result.P50Latency = Latencies[(Latencies.size() - 1) * 50 / 100];
    Result.P99Latency = Latencies[(Latencies.size() - 1) * 99 / 100];
  }
  if (Occupancy.ActiveSteps)
    Result.MeanQueued =
        double(Occupancy.QueuedSum) / double(Occupancy.ActiveSteps);

  if (MetricsRegistry *Reg = Options.Registry) {
    Reg->counter("traffic.offered").add(Result.Offered);
    Reg->counter("traffic.delivered").add(Result.Sim.Delivered);
    Reg->gauge("traffic.offered_rate").set(Result.OfferedRate);
    Reg->gauge("traffic.delivered_rate").set(Result.DeliveredRate);
    Reg->gauge("traffic.mean_latency").set(Result.MeanLatency);
    Reg->gauge("traffic.p50_latency").set(double(Result.P50Latency));
    Reg->gauge("traffic.p99_latency").set(double(Result.P99Latency));
    Reg->gauge("traffic.mean_queued").set(Result.MeanQueued);
    Reg->gauge("traffic.max_queue_length")
        .set(double(Result.Sim.MaxQueueLength));
  }
  return Result;
}
