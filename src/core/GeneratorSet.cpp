//===- core/GeneratorSet.cpp - Deduplicated sets of generators -----------===//

#include "core/GeneratorSet.h"

using namespace scg;

GenIndex GeneratorSet::add(Generator G) {
  assert((Gens.empty() || G.Sigma.size() == numSymbols()) &&
         "all generators in a set must act on the same number of symbols");
  assert(!G.Sigma.isIdentity() && "the identity is not a generator");
  auto Range = ByAction.equal_range(G.Sigma);
  for (auto It = Range.first; It != Range.second; ++It)
    if (Gens[It->second].Name == G.Name)
      return It->second;
  GenIndex Index = Gens.size();
  ByAction.emplace(G.Sigma, Index);
  Gens.push_back(std::move(G));
  return Index;
}

std::optional<GenIndex>
GeneratorSet::findByName(const std::string &Name) const {
  for (GenIndex I = 0; I != Gens.size(); ++I)
    if (Gens[I].Name == Name)
      return I;
  return std::nullopt;
}

std::optional<GenIndex>
GeneratorSet::findByAction(const Permutation &Sigma) const {
  auto Range = ByAction.equal_range(Sigma);
  if (Range.first == Range.second)
    return std::nullopt;
  // Prefer the earliest-added link for determinism.
  GenIndex Best = Range.first->second;
  for (auto It = Range.first; It != Range.second; ++It)
    Best = std::min(Best, It->second);
  return Best;
}

std::optional<GenIndex> GeneratorSet::findLink(const Generator &G) const {
  auto Range = ByAction.equal_range(G.Sigma);
  std::optional<GenIndex> AnyMatch;
  for (auto It = Range.first; It != Range.second; ++It) {
    if (Gens[It->second].Name == G.Name)
      return It->second;
    if (!AnyMatch || It->second < *AnyMatch)
      AnyMatch = It->second;
  }
  return AnyMatch;
}

std::optional<GenIndex> GeneratorSet::inverseOf(GenIndex I) const {
  return findByAction(Gens[I].Sigma.inverse());
}

bool GeneratorSet::isSymmetric() const {
  for (GenIndex I = 0; I != Gens.size(); ++I)
    if (!inverseOf(I))
      return false;
  return true;
}
