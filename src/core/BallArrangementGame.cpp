//===- core/BallArrangementGame.cpp - The BAG of Section 2 ---------------===//

#include "core/BallArrangementGame.h"

#include <cassert>

using namespace scg;

BallArrangementGame::BallArrangementGame(const SuperCayleyGraph &Network,
                                         Permutation Start)
    : Net(Network), Config(std::move(Start)) {
  assert(Config.size() == Net.numSymbols() &&
         "configuration size must match the game");
}

unsigned BallArrangementGame::ballColor(unsigned Symbol) const {
  assert(Symbol >= 1 && Symbol <= Net.numSymbols() && "symbol out of range");
  if (Symbol == 1)
    return 0;
  return (Symbol - 2) / Net.ballsPerBox() + 1;
}

unsigned BallArrangementGame::numMisplacedBalls() const {
  unsigned Count = 0;
  unsigned K = Net.numSymbols();
  for (unsigned Pos = 0; Pos != K; ++Pos) {
    unsigned Symbol = Config[Pos] + 1; // 1-based ball number.
    unsigned Color = ballColor(Symbol);
    // Position 0 is outside the boxes (color 0 slot); position P >= 1 sits
    // in box (P-1)/n + 1.
    unsigned Box = (Pos == 0) ? 0 : (Pos - 1) / Net.ballsPerBox() + 1;
    if (Color != Box)
      ++Count;
  }
  return Count;
}

void BallArrangementGame::play(GenIndex I) {
  assert(I < Net.degree() && "move index out of range");
  Config = Net.neighbor(Config, I);
  History.push_back(I);
}

bool BallArrangementGame::undo() {
  if (History.empty())
    return false;
  GenIndex Last = History.back();
  std::optional<GenIndex> Inv = Net.generators().inverseOf(Last);
  assert(Inv && "cannot undo: inverse generator not in the set");
  Config = Net.neighbor(Config, *Inv);
  History.pop_back();
  return true;
}

std::string BallArrangementGame::render() const {
  return Config.strBoxes(Net.ballsPerBox());
}
