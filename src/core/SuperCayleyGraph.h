//===- core/SuperCayleyGraph.h - The ten SCG classes of the paper -*-C++-*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The super Cayley graph descriptor: a network kind, the parameters (l, n),
/// and the generator set that defines the (directed) Cayley graph on S_k,
/// k = l*n + 1. Covers the ten classes of Section 2.2 plus the three
/// classic permutation networks (star, bubble-sort, transposition network)
/// the paper compares against and embeds.
///
/// Nodes are never materialized here: the descriptor answers neighbor
/// queries on permutations and reports degree/size analytically. The
/// explicit adjacency builder lives in networks/Explicit.h.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_CORE_SUPERCAYLEYGRAPH_H
#define SCG_CORE_SUPERCAYLEYGRAPH_H

#include "core/GeneratorSet.h"

#include <cstdint>
#include <string>

namespace scg {

/// The network classes implemented by this library. The first three are the
/// classic comparison topologies; the remaining ten are the super Cayley
/// graph classes enumerated in Section 2.2 of the paper (macro-star networks
/// are super Cayley graphs too, per [21]).
enum class NetworkKind {
  Star,           ///< k-star: T_i, i = 2..k.
  BubbleSort,     ///< adjacent transpositions A_i, i = 1..k-1.
  Transposition,  ///< k-TN: all T_{i,j} [12].
  TranspositionTree, ///< Cayley graph of a transposition tree [2]; star
                     ///< and bubble-sort are the extreme trees.
  Rotator,        ///< k-rotator: I_i, i = 2..k (directed) [6].
  InsertionSelection,   ///< IS(k): I_i and I_i^-1, i = 2..k.
  MacroStar,            ///< MS(l,n): T nucleus, S super [21].
  RotationStar,         ///< RS(l,n): T nucleus, R and R^-1 super.
  CompleteRotationStar, ///< complete-RS(l,n): T nucleus, R^i super.
  MacroRotator,            ///< MR(l,n): I nucleus, S super (directed).
  RotationRotator,         ///< RR(l,n): I nucleus, R/R^-1 super (directed).
  CompleteRotationRotator, ///< complete-RR(l,n): I nucleus, all R^i
                           ///< (directed).
  MacroIS,            ///< MIS(l,n): I and I^-1 nucleus, S super.
  RotationIS,         ///< RIS(l,n): I/I^-1 nucleus, R/R^-1 super.
  CompleteRotationIS, ///< complete-RIS(l,n): I/I^-1 nucleus, all R^i super.
};

/// Returns the display name of \p Kind ("MS", "complete-RS", ...).
std::string networkKindName(NetworkKind Kind);

/// True for the three rotator-style classes whose generator sets are not
/// closed under inverses (directed Cayley graphs).
bool isDirectedKind(NetworkKind Kind);

/// A super Cayley graph (or classic permutation network) descriptor.
class SuperCayleyGraph {
public:
  /// Builds an l-level super Cayley graph of class \p Kind with \p L boxes
  /// of \p N balls each (k = l*n + 1). For the single-level classes (Star,
  /// BubbleSort, Transposition, InsertionSelection) use the k-based named
  /// constructors below instead.
  static SuperCayleyGraph create(NetworkKind Kind, unsigned L, unsigned N);

  /// k-dimensional star graph.
  static SuperCayleyGraph star(unsigned K);
  /// k-dimensional bubble-sort graph.
  static SuperCayleyGraph bubbleSort(unsigned K);
  /// k-dimensional transposition network.
  static SuperCayleyGraph transpositionNetwork(unsigned K);
  /// k-dimensional rotator graph (directed).
  static SuperCayleyGraph rotator(unsigned K);
  /// Cayley graph of an arbitrary transposition tree on \p K vertices:
  /// one generator T_{i,j} per tree edge (1-based vertex pairs). The
  /// Akers-Krishnamurthy model [2] the super Cayley graphs refine; the
  /// star graph is the star tree and the bubble-sort graph the path.
  /// Asserts \p Edges forms a spanning tree.
  static SuperCayleyGraph
  transpositionTree(unsigned K,
                    const std::vector<std::pair<unsigned, unsigned>> &Edges);
  /// k-dimensional insertion-selection network.
  static SuperCayleyGraph insertionSelection(unsigned K);

  NetworkKind kind() const { return Kind; }
  /// Number of boxes l (1 for single-level networks).
  unsigned numBoxes() const { return L; }
  /// Balls per box n (k-1 for single-level networks).
  unsigned ballsPerBox() const { return N; }
  /// Number of symbols k = l*n + 1.
  unsigned numSymbols() const { return K; }
  /// Number of nodes k!.
  uint64_t numNodes() const;
  /// Out-degree = number of distinct generators.
  unsigned degree() const { return Gens.size(); }
  /// True if the generator set is closed under inverses. Usually
  /// !isDirectedKind(kind()), except that the rotator classes with n = 1
  /// happen to be symmetric (their only insertion I_2 is an involution).
  bool isUndirected() const { return Symmetric; }

  /// Display name including parameters, e.g. "MS(4,3)" or "star(7)".
  std::string name() const;

  const GeneratorSet &generators() const { return Gens; }

  /// Returns the neighbor of \p U along generator \p I.
  Permutation neighbor(const Permutation &U, GenIndex I) const {
    return U.applyGenerator(Gens[I].Sigma);
  }

  /// Computes the neighbor of \p U along generator \p I into \p V without
  /// allocating: one hop is a single in-place composition. \p V may alias
  /// \p U, so `Net.neighborInto(Cur, G, Cur)` walks a path in place.
  void neighborInto(const Permutation &U, GenIndex I, Permutation &V) const {
    U.composeInto(Gens[I].Sigma, V);
  }

  /// Returns all out-neighbors of \p U in generator order.
  std::vector<Permutation> neighbors(const Permutation &U) const;

private:
  SuperCayleyGraph(NetworkKind Kind, unsigned L, unsigned N, GeneratorSet G)
      : Kind(Kind), L(L), N(N), K(L * N + 1), Gens(std::move(G)),
        Symmetric(Gens.isSymmetric()) {}

  NetworkKind Kind;
  unsigned L; ///< boxes.
  unsigned N; ///< balls per box.
  unsigned K; ///< symbols, l*n + 1.
  GeneratorSet Gens;
  bool Symmetric;
};

} // namespace scg

#endif // SCG_CORE_SUPERCAYLEYGRAPH_H
