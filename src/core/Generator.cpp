//===- core/Generator.cpp - Nucleus and super generators -----------------===//

#include "core/Generator.h"

#include <cassert>

using namespace scg;

Generator Generator::inverted() const {
  Generator Result;
  Result.Sigma = Sigma.inverse();
  Result.Kind = Kind;
  // Name convention: a trailing prime marks the inverse action.
  if (!Name.empty() && Name.back() == '\'')
    Result.Name = Name.substr(0, Name.size() - 1);
  else
    Result.Name = Name + "'";
  return Result;
}

bool Generator::isInvolution() const {
  return Sigma.compose(Sigma).isIdentity();
}

/// Builds the one-line word of the identity on \p K positions.
static std::vector<uint8_t> identityWord(unsigned K) {
  std::vector<uint8_t> Word(K);
  for (unsigned P = 0; P != K; ++P)
    Word[P] = static_cast<uint8_t>(P);
  return Word;
}

Generator scg::makeTransposition(unsigned K, unsigned I) {
  assert(I >= 2 && I <= K && "T_i requires 2 <= i <= k");
  std::vector<uint8_t> Word = identityWord(K);
  std::swap(Word[0], Word[I - 1]);
  return {"T" + std::to_string(I), Permutation::fromOneLine(std::move(Word)),
          GeneratorKind::Nucleus};
}

Generator scg::makePairTransposition(unsigned K, unsigned I, unsigned J) {
  assert(I >= 1 && I < J && J <= K && "T_{i,j} requires 1 <= i < j <= k");
  std::vector<uint8_t> Word = identityWord(K);
  std::swap(Word[I - 1], Word[J - 1]);
  return {"T" + std::to_string(I) + "," + std::to_string(J),
          Permutation::fromOneLine(std::move(Word)), GeneratorKind::Nucleus};
}

Generator scg::makeAdjacentTransposition(unsigned K, unsigned I) {
  assert(I >= 1 && I + 1 <= K && "A_i requires 1 <= i <= k-1");
  std::vector<uint8_t> Word = identityWord(K);
  std::swap(Word[I - 1], Word[I]);
  return {"A" + std::to_string(I), Permutation::fromOneLine(std::move(Word)),
          GeneratorKind::Nucleus};
}

Generator scg::makeSwap(unsigned K, unsigned N, unsigned I) {
  assert(N >= 1 && (K - 1) % N == 0 && "K must equal l*n + 1");
  [[maybe_unused]] unsigned L = (K - 1) / N;
  assert(I >= 2 && I <= L && "S_{n,i} requires 2 <= i <= l");
  std::vector<uint8_t> Word = identityWord(K);
  for (unsigned Q = 0; Q != N; ++Q)
    std::swap(Word[1 + Q], Word[(I - 1) * N + 1 + Q]);
  return {"S" + std::to_string(I), Permutation::fromOneLine(std::move(Word)),
          GeneratorKind::Super};
}

Generator scg::makeInsertion(unsigned K, unsigned I) {
  assert(I >= 2 && I <= K && "I_i requires 2 <= i <= k");
  std::vector<uint8_t> Word = identityWord(K);
  // V[p] = U[p+1] for p < I-1, V[I-1] = U[0]: cyclic left shift of the
  // leftmost I symbols.
  for (unsigned P = 0; P + 1 < I; ++P)
    Word[P] = static_cast<uint8_t>(P + 1);
  Word[I - 1] = 0;
  return {"I" + std::to_string(I), Permutation::fromOneLine(std::move(Word)),
          GeneratorKind::Nucleus};
}

Generator scg::makeSelection(unsigned K, unsigned I) {
  assert(I >= 2 && I <= K && "I_i^-1 requires 2 <= i <= k");
  std::vector<uint8_t> Word = identityWord(K);
  // V[0] = U[I-1], V[p] = U[p-1] for 1 <= p <= I-1: cyclic right shift.
  Word[0] = static_cast<uint8_t>(I - 1);
  for (unsigned P = 1; P != I; ++P)
    Word[P] = static_cast<uint8_t>(P - 1);
  return {"I" + std::to_string(I) + "'",
          Permutation::fromOneLine(std::move(Word)), GeneratorKind::Nucleus};
}

Generator scg::makeRotation(unsigned K, unsigned N, int I) {
  assert(N >= 1 && (K - 1) % N == 0 && "K must equal l*n + 1");
  unsigned L = (K - 1) / N;
  unsigned E = static_cast<unsigned>(((I % static_cast<int>(L)) + L) % L);
  assert(E != 0 && "R^0 is the identity, not a generator");
  unsigned Shift = E * N;
  std::vector<uint8_t> Word(K);
  Word[0] = 0;
  // Right shift of the K-1 rightmost symbols by Shift:
  // V[1+q] = U[1 + ((q - Shift) mod (K-1))].
  unsigned Tail = K - 1;
  for (unsigned Q = 0; Q != Tail; ++Q)
    Word[1 + Q] = static_cast<uint8_t>(1 + (Q + Tail - Shift % Tail) % Tail);
  std::string Name = (E == 1) ? "R" : ("R^" + std::to_string(E));
  return {std::move(Name), Permutation::fromOneLine(std::move(Word)),
          GeneratorKind::Super};
}

Generator scg::makeBringBoxSwap(unsigned K, unsigned N, unsigned I) {
  return makeSwap(K, N, I);
}

Generator scg::makeBringBoxRotation(unsigned K, unsigned N, unsigned I) {
  assert(I >= 2 && "box 1 is already leftmost");
  return makeRotation(K, N, -static_cast<int>(I - 1));
}
