//===- core/BallArrangementGame.h - The BAG of Section 2 -------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ball-arrangement game (BAG) of Section 2: l boxes, k = n*l + 1 balls
/// (one outside ball), moves drawn from a generator set. A configuration is
/// a permutation: position 1 holds the outside ball, positions
/// (i-1)n+2 .. in+1 hold box i. Ball s (1-based symbol) has color 0 if
/// s = 1 and color ceil((s-1)/n) otherwise; the game is solved when every
/// color-i ball sits in box i in proper order, i.e. the configuration is the
/// identity permutation.
///
/// The class is a thin, replayable wrapper over a SuperCayleyGraph: playing
/// move g from configuration U goes to U o g, which is exactly traversing
/// the corresponding Cayley-graph link. Solving the game from U to the
/// identity is routing from U to the identity node.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_CORE_BALLARRANGEMENTGAME_H
#define SCG_CORE_BALLARRANGEMENTGAME_H

#include "core/SuperCayleyGraph.h"

namespace scg {

/// A replayable ball-arrangement game over a super Cayley graph's moves.
class BallArrangementGame {
public:
  /// Starts a game on \p Network from configuration \p Start.
  BallArrangementGame(const SuperCayleyGraph &Network, Permutation Start);

  /// Returns the current configuration.
  const Permutation &configuration() const { return Config; }

  /// Returns the color of the ball with 1-based symbol \p Symbol:
  /// 0 for the special ball, otherwise the box index 1..l it belongs to.
  unsigned ballColor(unsigned Symbol) const;

  /// True when every ball is home (configuration is the identity).
  bool isSolved() const { return Config.isIdentity(); }

  /// Number of balls whose current box differs from their color (the
  /// outside ball counts as misplaced unless it is ball 1). A crude
  /// progress measure; reaches 0 only at or near the solved state.
  unsigned numMisplacedBalls() const;

  /// Plays move \p I (an index into the network's generator set).
  void play(GenIndex I);

  /// Undoes the last played move; requires the generator set to contain the
  /// inverse action (true for all undirected networks). Returns false if no
  /// move to undo.
  bool undo();

  /// The moves played so far, oldest first.
  const std::vector<GenIndex> &history() const { return History; }

  /// Renders the configuration with box separators, e.g. "1 | 3 2 | 4 5".
  std::string render() const;

  const SuperCayleyGraph &network() const { return Net; }

private:
  const SuperCayleyGraph &Net;
  Permutation Config;
  std::vector<GenIndex> History;
};

} // namespace scg

#endif // SCG_CORE_BALLARRANGEMENTGAME_H
