//===- core/SuperCayleyGraph.cpp - The ten SCG classes of the paper ------===//

#include "core/SuperCayleyGraph.h"

#include "perm/Lehmer.h"

#include <cassert>

using namespace scg;

std::string scg::networkKindName(NetworkKind Kind) {
  switch (Kind) {
  case NetworkKind::Star:
    return "star";
  case NetworkKind::BubbleSort:
    return "bubble-sort";
  case NetworkKind::Transposition:
    return "TN";
  case NetworkKind::TranspositionTree:
    return "T-tree";
  case NetworkKind::Rotator:
    return "rotator";
  case NetworkKind::InsertionSelection:
    return "IS";
  case NetworkKind::MacroStar:
    return "MS";
  case NetworkKind::RotationStar:
    return "RS";
  case NetworkKind::CompleteRotationStar:
    return "complete-RS";
  case NetworkKind::MacroRotator:
    return "MR";
  case NetworkKind::RotationRotator:
    return "RR";
  case NetworkKind::CompleteRotationRotator:
    return "complete-RR";
  case NetworkKind::MacroIS:
    return "MIS";
  case NetworkKind::RotationIS:
    return "RIS";
  case NetworkKind::CompleteRotationIS:
    return "complete-RIS";
  }
  assert(false && "unknown network kind");
  return "?";
}

bool scg::isDirectedKind(NetworkKind Kind) {
  switch (Kind) {
  case NetworkKind::Rotator:
  case NetworkKind::MacroRotator:
  case NetworkKind::RotationRotator:
  case NetworkKind::CompleteRotationRotator:
    return true;
  default:
    return false;
  }
}

/// Adds the nucleus generators of \p Kind for boxes of size \p N, acting on
/// \p K symbols: T_i for the star-nucleus classes, I_i (and I_i^-1 for the
/// IS-nucleus classes) for the rotator/IS classes, i = 2..n+1.
static void addNucleus(GeneratorSet &Gens, NetworkKind Kind, unsigned K,
                       unsigned N) {
  for (unsigned I = 2; I <= N + 1; ++I) {
    switch (Kind) {
    case NetworkKind::MacroStar:
    case NetworkKind::RotationStar:
    case NetworkKind::CompleteRotationStar:
      Gens.add(makeTransposition(K, I));
      break;
    case NetworkKind::MacroRotator:
    case NetworkKind::RotationRotator:
    case NetworkKind::CompleteRotationRotator:
      Gens.add(makeInsertion(K, I));
      break;
    case NetworkKind::MacroIS:
    case NetworkKind::RotationIS:
    case NetworkKind::CompleteRotationIS:
      Gens.add(makeInsertion(K, I));
      Gens.add(makeSelection(K, I));
      break;
    default:
      assert(false && "not a multi-level super Cayley graph kind");
    }
  }
}

/// Adds the super generators of \p Kind: swaps S_i for the macro classes,
/// R and R^-1 for the rotation classes, all R^i for the complete-rotation
/// classes.
static void addSuper(GeneratorSet &Gens, NetworkKind Kind, unsigned K,
                     unsigned L, unsigned N) {
  switch (Kind) {
  case NetworkKind::MacroStar:
  case NetworkKind::MacroRotator:
  case NetworkKind::MacroIS:
    for (unsigned I = 2; I <= L; ++I)
      Gens.add(makeSwap(K, N, I));
    break;
  case NetworkKind::RotationStar:
  case NetworkKind::RotationRotator:
  case NetworkKind::RotationIS:
    Gens.add(makeRotation(K, N, 1));
    if (L > 2) // R^-1 = R when l = 2.
      Gens.add(makeRotation(K, N, -1));
    break;
  case NetworkKind::CompleteRotationStar:
  case NetworkKind::CompleteRotationRotator:
  case NetworkKind::CompleteRotationIS:
    for (unsigned I = 1; I != L; ++I)
      Gens.add(makeRotation(K, N, static_cast<int>(I)));
    break;
  default:
    assert(false && "not a multi-level super Cayley graph kind");
  }
}

SuperCayleyGraph SuperCayleyGraph::create(NetworkKind Kind, unsigned L,
                                          unsigned N) {
  assert(L >= 2 && N >= 1 && "a super Cayley graph needs l >= 2 boxes");
  unsigned K = L * N + 1;
  GeneratorSet Gens;
  addNucleus(Gens, Kind, K, N);
  addSuper(Gens, Kind, K, L, N);
  return SuperCayleyGraph(Kind, L, N, std::move(Gens));
}

SuperCayleyGraph SuperCayleyGraph::star(unsigned K) {
  assert(K >= 2 && "a star graph needs k >= 2");
  GeneratorSet Gens;
  for (unsigned I = 2; I <= K; ++I)
    Gens.add(makeTransposition(K, I));
  return SuperCayleyGraph(NetworkKind::Star, 1, K - 1, std::move(Gens));
}

SuperCayleyGraph SuperCayleyGraph::bubbleSort(unsigned K) {
  assert(K >= 2 && "a bubble-sort graph needs k >= 2");
  GeneratorSet Gens;
  for (unsigned I = 1; I + 1 <= K; ++I)
    Gens.add(makeAdjacentTransposition(K, I));
  return SuperCayleyGraph(NetworkKind::BubbleSort, 1, K - 1, std::move(Gens));
}

SuperCayleyGraph SuperCayleyGraph::transpositionNetwork(unsigned K) {
  assert(K >= 2 && "a transposition network needs k >= 2");
  GeneratorSet Gens;
  for (unsigned I = 1; I != K; ++I)
    for (unsigned J = I + 1; J <= K; ++J)
      Gens.add(makePairTransposition(K, I, J));
  return SuperCayleyGraph(NetworkKind::Transposition, 1, K - 1,
                          std::move(Gens));
}

SuperCayleyGraph SuperCayleyGraph::transpositionTree(
    unsigned K, const std::vector<std::pair<unsigned, unsigned>> &Edges) {
  assert(K >= 2 && Edges.size() == K - 1 && "a tree on k vertices has k-1 edges");
  // Union-find acyclicity/connectivity check.
  std::vector<unsigned> Root(K);
  for (unsigned I = 0; I != K; ++I)
    Root[I] = I;
  auto Find = [&Root](unsigned X) {
    while (Root[X] != X)
      X = Root[X] = Root[Root[X]];
    return X;
  };
  GeneratorSet Gens;
  for (auto [I, J] : Edges) {
    assert(I >= 1 && J >= 1 && I <= K && J <= K && I != J &&
           "tree edge out of range");
    unsigned A = Find(I - 1), B = Find(J - 1);
    assert(A != B && "transposition tree contains a cycle");
    Root[A] = B;
    Gens.add(makePairTransposition(K, std::min(I, J), std::max(I, J)));
  }
  return SuperCayleyGraph(NetworkKind::TranspositionTree, 1, K - 1,
                          std::move(Gens));
}

SuperCayleyGraph SuperCayleyGraph::rotator(unsigned K) {
  assert(K >= 2 && "a rotator graph needs k >= 2");
  GeneratorSet Gens;
  for (unsigned I = 2; I <= K; ++I)
    Gens.add(makeInsertion(K, I));
  return SuperCayleyGraph(NetworkKind::Rotator, 1, K - 1, std::move(Gens));
}

SuperCayleyGraph SuperCayleyGraph::insertionSelection(unsigned K) {
  assert(K >= 2 && "an IS network needs k >= 2");
  GeneratorSet Gens;
  for (unsigned I = 2; I <= K; ++I) {
    Gens.add(makeInsertion(K, I));
    Gens.add(makeSelection(K, I)); // I_2^-1 equals I_2 in action but stays
                                   // a parallel link (paper degree count).
  }
  return SuperCayleyGraph(NetworkKind::InsertionSelection, 1, K - 1,
                          std::move(Gens));
}

uint64_t SuperCayleyGraph::numNodes() const { return factorial(K); }

std::string SuperCayleyGraph::name() const {
  switch (Kind) {
  case NetworkKind::Star:
  case NetworkKind::BubbleSort:
  case NetworkKind::Transposition:
  case NetworkKind::TranspositionTree:
  case NetworkKind::Rotator:
  case NetworkKind::InsertionSelection:
    return networkKindName(Kind) + "(" + std::to_string(K) + ")";
  default:
    return networkKindName(Kind) + "(" + std::to_string(L) + "," +
           std::to_string(N) + ")";
  }
}

std::vector<Permutation>
SuperCayleyGraph::neighbors(const Permutation &U) const {
  assert(U.size() == K && "label size must match the network");
  std::vector<Permutation> Result;
  Result.reserve(Gens.size());
  for (GenIndex I = 0; I != Gens.size(); ++I)
    Result.push_back(neighbor(U, I));
  return Result;
}
