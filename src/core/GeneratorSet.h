//===- core/GeneratorSet.h - Deduplicated sets of generators ---*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ordered, deduplicated collection of generators. The set is the
/// connection set of a Cayley graph: each member is one outgoing link (one
/// physical channel) of every node; the paper defines the in-/out-degree as
/// "the number of generators in its definition". Deduplication is by
/// (action, name): adding the same generator twice is a no-op (e.g. R^-1 in
/// RS(2,n) normalizes to R), but two *differently named* generators with
/// equal actions -- I_2 and I_2^-1 in the IS-nucleus networks, which happen
/// to be the same involution -- stay as parallel links with independent
/// capacity, which is the resource model Theorem 5's schedule requires.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_CORE_GENERATORSET_H
#define SCG_CORE_GENERATORSET_H

#include "core/Generator.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace scg {

/// Index of a generator within a GeneratorSet.
using GenIndex = unsigned;

/// The connection set of a (super) Cayley graph.
class GeneratorSet {
public:
  /// Adds \p G unless a generator with the same action and name is already
  /// present; returns the index of the (possibly pre-existing) generator.
  GenIndex add(Generator G);

  /// Number of distinct generators (= in-/out-degree of the Cayley graph).
  unsigned size() const { return Gens.size(); }

  const Generator &operator[](GenIndex I) const {
    assert(I < Gens.size() && "generator index out of range");
    return Gens[I];
  }

  /// Finds a generator by display name.
  std::optional<GenIndex> findByName(const std::string &Name) const;

  /// Finds a generator by its action; when parallel links share the action,
  /// the first added one is returned.
  std::optional<GenIndex> findByAction(const Permutation &Sigma) const;

  /// Finds the link matching \p G: exact (action, name) match if present,
  /// otherwise any link with the same action.
  std::optional<GenIndex> findLink(const Generator &G) const;

  /// Returns the index of the inverse of generator \p I, if the inverse
  /// action is in the set.
  std::optional<GenIndex> inverseOf(GenIndex I) const;

  /// True if every generator's inverse is in the set; then the Cayley graph
  /// is undirected (each directed link pairs with its reverse).
  bool isSymmetric() const;

  /// Number of symbols k all generators act on (0 if empty).
  unsigned numSymbols() const {
    return Gens.empty() ? 0 : Gens.front().Sigma.size();
  }

  std::vector<Generator>::const_iterator begin() const { return Gens.begin(); }
  std::vector<Generator>::const_iterator end() const { return Gens.end(); }

private:
  std::vector<Generator> Gens;
  std::unordered_multimap<Permutation, GenIndex, PermutationHash> ByAction;
};

} // namespace scg

#endif // SCG_CORE_GENERATORSET_H
