//===- core/NetworkSpec.cpp - Parse network spec strings ------------------===//

#include "core/NetworkSpec.h"

#include <cctype>

using namespace scg;

namespace {

/// Parses "name(a)" or "name(a,b)"; returns false on malformed input.
bool splitSpec(const std::string &Spec, std::string &Name, unsigned &A,
               bool &HasB, unsigned &B) {
  size_t Open = Spec.find('(');
  if (Open == std::string::npos || Spec.back() != ')')
    return false;
  Name = Spec.substr(0, Open);
  std::string Args = Spec.substr(Open + 1, Spec.size() - Open - 2);
  size_t Comma = Args.find(',');
  auto ParseNumber = [](const std::string &Text, unsigned &Out) {
    if (Text.empty())
      return false;
    unsigned Value = 0;
    for (char C : Text) {
      if (!std::isdigit(static_cast<unsigned char>(C)))
        return false;
      Value = Value * 10 + unsigned(C - '0');
      if (Value > 1000000)
        return false;
    }
    Out = Value;
    return true;
  };
  if (Comma == std::string::npos) {
    HasB = false;
    return ParseNumber(Args, A);
  }
  HasB = true;
  return ParseNumber(Args.substr(0, Comma), A) &&
         ParseNumber(Args.substr(Comma + 1), B);
}

} // namespace

std::optional<SuperCayleyGraph>
scg::parseNetworkSpec(const std::string &Spec) {
  std::string Name;
  unsigned A = 0, B = 0;
  bool HasB = false;
  if (!splitSpec(Spec, Name, A, HasB, B))
    return std::nullopt;

  if (!HasB) {
    if (A < 2)
      return std::nullopt;
    if (Name == "star")
      return SuperCayleyGraph::star(A);
    if (Name == "bubble-sort")
      return SuperCayleyGraph::bubbleSort(A);
    if (Name == "TN")
      return SuperCayleyGraph::transpositionNetwork(A);
    if (Name == "rotator")
      return SuperCayleyGraph::rotator(A);
    if (Name == "IS")
      return SuperCayleyGraph::insertionSelection(A);
    return std::nullopt;
  }

  if (A < 2 || B < 1)
    return std::nullopt;
  struct Entry {
    const char *Name;
    NetworkKind Kind;
  };
  static const Entry Table[] = {
      {"MS", NetworkKind::MacroStar},
      {"RS", NetworkKind::RotationStar},
      {"complete-RS", NetworkKind::CompleteRotationStar},
      {"MR", NetworkKind::MacroRotator},
      {"RR", NetworkKind::RotationRotator},
      {"complete-RR", NetworkKind::CompleteRotationRotator},
      {"MIS", NetworkKind::MacroIS},
      {"RIS", NetworkKind::RotationIS},
      {"complete-RIS", NetworkKind::CompleteRotationIS},
  };
  for (const Entry &E : Table)
    if (Name == E.Name)
      return SuperCayleyGraph::create(E.Kind, A, B);
  return std::nullopt;
}
