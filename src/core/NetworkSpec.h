//===- core/NetworkSpec.h - Parse network spec strings ---------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Round-trips the display names of SuperCayleyGraph::name(): parses spec
/// strings like "MS(4,3)", "complete-RIS(3,2)", "star(7)", or "IS(6)"
/// back into network descriptors. Used by the command-line explorer and
/// handy for config-driven experiments.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_CORE_NETWORKSPEC_H
#define SCG_CORE_NETWORKSPEC_H

#include "core/SuperCayleyGraph.h"

#include <optional>
#include <string>

namespace scg {

/// Parses \p Spec ("<kind>(<k>)" for single-level networks,
/// "<kind>(<l>,<n>)" for the box classes); returns nullopt on malformed
/// input. Accepts every name networkKindName produces except
/// "T-tree" (which needs its edge list).
std::optional<SuperCayleyGraph> parseNetworkSpec(const std::string &Spec);

} // namespace scg

#endif // SCG_CORE_NETWORKSPEC_H
