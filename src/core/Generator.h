//===- core/Generator.h - Nucleus and super generators ---------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generator zoo of Section 2 of the paper. Every generator is a
/// permutation Sigma of positions {1..k} (stored 0-based) acting on a node
/// label U by right composition V = U o Sigma, together with a display name
/// and a nucleus/super classification from the ball-arrangement game:
///
///   - nucleus generators permute the leftmost n+1 symbols (the outside ball
///     plus the leftmost box): T_i, I_i, I_i^-1;
///   - super generators permute whole super-symbols (boxes): S_{n,i}, R^i.
///
/// Paper-facing factories below take the paper's 1-based indices.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_CORE_GENERATOR_H
#define SCG_CORE_GENERATOR_H

#include "perm/Permutation.h"

#include <string>

namespace scg {

/// Whether a generator moves balls in the leftmost box (nucleus) or moves
/// whole boxes (super), per Section 2.1 of the paper.
enum class GeneratorKind { Nucleus, Super };

/// A named link type of a super Cayley graph.
struct Generator {
  std::string Name;  ///< Display name, e.g. "T3", "S2", "R^2", "I4", "I4'".
  Permutation Sigma; ///< Action on positions (right composition).
  GeneratorKind Kind = GeneratorKind::Nucleus;

  /// Returns the generator applying the inverse action (name decorated).
  Generator inverted() const;

  /// True if the action is an involution (its own inverse), in which case
  /// this generator and its inverse are the same physical link.
  bool isInvolution() const;
};

/// Star-graph transposition generator T_i (paper Def. in [21]): swaps the
/// symbols at positions 1 and \p I, for 2 <= I <= K.
Generator makeTransposition(unsigned K, unsigned I);

/// Transposition-network generator T_{i,j} [12]: swaps the symbols at
/// positions \p I and \p J, for 1 <= I < J <= K.
Generator makePairTransposition(unsigned K, unsigned I, unsigned J);

/// Bubble-sort generator A_i: swaps positions \p I and I+1, 1 <= I <= K-1.
Generator makeAdjacentTransposition(unsigned K, unsigned I);

/// Swap super generator S_{n,i} [21]: exchanges super-symbol 1 (positions
/// 2..n+1) with super-symbol \p I (positions (I-1)n+2..In+1), 2 <= I <= l,
/// where K = l*n + 1.
Generator makeSwap(unsigned K, unsigned N, unsigned I);

/// Insertion generator I_i (Definition 1): cyclically shifts the leftmost
/// \p I symbols left by one, 2 <= I <= K.
Generator makeInsertion(unsigned K, unsigned I);

/// Selection generator I_i^-1 (Definition 2): cyclically shifts the leftmost
/// \p I symbols right by one, 2 <= I <= K.
Generator makeSelection(unsigned K, unsigned I);

/// Rotation generator R^i_n (Definition 3): cyclically shifts the rightmost
/// K-1 symbols right by n*i positions; exponent \p I is taken mod l where
/// K = l*n + 1. R^0 is the identity and is rejected (asserted).
Generator makeRotation(unsigned K, unsigned N, int I);

/// Returns the super generator B_i that brings super-symbol \p I to the
/// leftmost box position (Theorem 4): S_i for swap-based networks and
/// R^{-(i-1)} for rotation-based ones.
Generator makeBringBoxSwap(unsigned K, unsigned N, unsigned I);
Generator makeBringBoxRotation(unsigned K, unsigned N, unsigned I);

} // namespace scg

#endif // SCG_CORE_GENERATOR_H
