//===- embedding/StarEmbeddings.cpp - Star -> SCG embeddings -------------===//

#include "embedding/StarEmbeddings.h"

#include "emulation/SdcEmulation.h"
#include "perm/Lehmer.h"

#include <cassert>

using namespace scg;

Embedding scg::embedStarInto(const SuperCayleyGraph &Star,
                             const SuperCayleyGraph &Host) {
  assert(Star.kind() == NetworkKind::Star && "guest must be a star graph");
  return templateEmbedding(PathTemplateMap::create(Star, Host));
}

uint64_t scg::starDimensionCongestion(const SuperCayleyGraph &Host,
                                      unsigned Dim) {
  unsigned K = Host.numSymbols();
  assert(K <= 9 && "exact congestion enumerates k! sources");
  GeneratorPath Template = starDimensionPath(Host, Dim);
  // Route the dimension-Dim link of every node U (both directions are the
  // same template since T_Dim is an involution and the path is symmetric in
  // its effect; we route from every U, which covers both directions).
  uint64_t Congestion = 0;
  uint64_t N = factorial(K);
  unsigned Degree = Host.degree();
  // The template is walked from every element of S_k, so link usage covers
  // the full N x degree domain: count in a flat rank-indexed table.
  std::vector<uint32_t> LinkUse(N * Degree, 0);
  for (uint64_t Rank = 0; Rank != N; ++Rank) {
    Permutation Cur = unrankPermutation(Rank, K);
    for (GenIndex G : Template.hops()) {
      uint64_t Key = rankPermutation(Cur) * Degree + G;
      Congestion = std::max<uint64_t>(Congestion, ++LinkUse[Key]);
      Host.neighborInto(Cur, G, Cur);
    }
  }
  return Congestion;
}

uint64_t scg::paperStarCongestionBound(const SuperCayleyGraph &Host) {
  switch (Host.kind()) {
  case NetworkKind::InsertionSelection:
    return 1;
  case NetworkKind::MacroStar:
  case NetworkKind::CompleteRotationStar:
  case NetworkKind::MacroIS:
  case NetworkKind::CompleteRotationIS:
    return std::max<uint64_t>(2 * Host.ballsPerBox(), Host.numBoxes());
  default:
    assert(false && "the paper states no congestion bound for this kind");
    return 0;
  }
}

unsigned scg::paperStarDilationBound(const SuperCayleyGraph &Host) {
  return paperSdcSlowdownBound(Host);
}
