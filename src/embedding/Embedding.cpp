//===- embedding/Embedding.cpp - Embedding framework + metrics -----------===//

#include "embedding/Embedding.h"

#include "perm/Lehmer.h"

#include <cassert>
#include <unordered_map>

using namespace scg;

EmbeddingMetrics scg::measureEmbedding(const Graph &Guest,
                                       const Embedding &E) {
  assert(E.Host && "embedding must name a host");
  assert(E.NodeMap.size() == Guest.numNodes() &&
         "node map must cover the guest");
  const SuperCayleyGraph &Host = *E.Host;
  EmbeddingMetrics Metrics;
  Metrics.Valid = true;

  // Load: multiplicity of host labels.
  std::unordered_map<Permutation, unsigned, PermutationHash> Multiplicity;
  for (const Permutation &P : E.NodeMap) {
    assert(P.size() == Host.numSymbols() && "label size mismatch");
    Metrics.Load = std::max(Metrics.Load, ++Multiplicity[P]);
  }
  Metrics.Expansion =
      Guest.numNodes()
          ? double(Host.numNodes()) / double(Guest.numNodes())
          : 0.0;

  // Dilation and congestion over all directed guest edges.
  std::unordered_map<uint64_t, uint32_t> LinkUse;
  unsigned Degree = Host.degree();
  uint64_t EdgeCount = 0, HopTotal = 0;
  for (NodeId U = 0; U != Guest.numNodes(); ++U) {
    for (NodeId V : Guest.neighbors(U)) {
      GeneratorPath Path = E.Route(U, V);
      if (!Path.connects(Host, E.NodeMap[U], E.NodeMap[V])) {
        Metrics.Valid = false;
        continue;
      }
      ++EdgeCount;
      HopTotal += Path.length();
      Metrics.Dilation = std::max(Metrics.Dilation, Path.length());
      Permutation Cur = E.NodeMap[U];
      for (GenIndex G : Path.hops()) {
        uint64_t Key = rankPermutation(Cur) * Degree + G;
        Metrics.Congestion = std::max<uint64_t>(Metrics.Congestion,
                                                ++LinkUse[Key]);
        Cur = Host.neighbor(Cur, G);
      }
    }
  }
  Metrics.AverageRouteLength =
      EdgeCount ? double(HopTotal) / double(EdgeCount) : 0.0;
  return Metrics;
}

std::vector<Permutation> scg::identityNodeMap(unsigned K) {
  assert(K <= 9 && "identity node map materializes k! labels");
  uint64_t N = factorial(K);
  std::vector<Permutation> Map;
  Map.reserve(N);
  for (uint64_t Rank = 0; Rank != N; ++Rank)
    Map.push_back(unrankPermutation(Rank, K));
  return Map;
}
