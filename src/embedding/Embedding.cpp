//===- embedding/Embedding.cpp - Embedding framework + metrics -----------===//

#include "embedding/Embedding.h"

#include "perm/Lehmer.h"

#include <cassert>
#include <unordered_map>

using namespace scg;

namespace {

/// Host-side usage counters for load and congestion. The domains are all of
/// S_k (node ranks) and S_k x degree (directed links), so for small k both
/// live in flat rank-indexed vectors -- no hashing on the per-hop path. For
/// hosts too large to afford k!-sized tables, rank-keyed hash maps back the
/// same interface.
class HostUseCounters {
public:
  HostUseCounters(uint64_t NumNodes, unsigned Degree)
      : Dense(NumNodes <= 362880 /* 9! */) {
    if (Dense) {
      NodeUse.assign(NumNodes, 0);
      LinkUse.assign(NumNodes * Degree, 0);
    }
  }

  uint32_t bumpNode(uint64_t Rank) {
    return Dense ? ++NodeUse[Rank] : ++NodeMap[Rank];
  }
  uint32_t bumpLink(uint64_t LinkKey) {
    return Dense ? ++LinkUse[LinkKey] : ++LinkMap[LinkKey];
  }

private:
  bool Dense;
  std::vector<uint32_t> NodeUse, LinkUse;
  std::unordered_map<uint64_t, uint32_t> NodeMap, LinkMap;
};

} // namespace

EmbeddingMetrics scg::measureEmbedding(const Graph &Guest,
                                       const Embedding &E) {
  assert(E.Host && "embedding must name a host");
  assert(E.NodeMap.size() == Guest.numNodes() &&
         "node map must cover the guest");
  const SuperCayleyGraph &Host = *E.Host;
  EmbeddingMetrics Metrics;
  Metrics.Valid = true;

  unsigned Degree = Host.degree();
  HostUseCounters Use(Host.numNodes(), Degree);

  // Load: multiplicity of host labels, by rank.
  for (const Permutation &P : E.NodeMap) {
    assert(P.size() == Host.numSymbols() && "label size mismatch");
    Metrics.Load = std::max(Metrics.Load, Use.bumpNode(rankPermutation(P)));
  }
  Metrics.Expansion =
      Guest.numNodes()
          ? double(Host.numNodes()) / double(Guest.numNodes())
          : 0.0;

  // Dilation and congestion over all directed guest edges.
  uint64_t EdgeCount = 0, HopTotal = 0;
  for (NodeId U = 0; U != Guest.numNodes(); ++U) {
    for (NodeId V : Guest.neighbors(U)) {
      GeneratorPath Path = E.Route(U, V);
      if (!Path.connects(Host, E.NodeMap[U], E.NodeMap[V])) {
        Metrics.Valid = false;
        continue;
      }
      ++EdgeCount;
      HopTotal += Path.length();
      Metrics.Dilation = std::max(Metrics.Dilation, Path.length());
      Permutation Cur = E.NodeMap[U];
      for (GenIndex G : Path.hops()) {
        uint64_t Key = rankPermutation(Cur) * Degree + G;
        Metrics.Congestion =
            std::max<uint64_t>(Metrics.Congestion, Use.bumpLink(Key));
        Host.neighborInto(Cur, G, Cur);
      }
    }
  }
  Metrics.AverageRouteLength =
      EdgeCount ? double(HopTotal) / double(EdgeCount) : 0.0;
  return Metrics;
}

std::vector<Permutation> scg::identityNodeMap(unsigned K) {
  assert(K <= 9 && "identity node map materializes k! labels");
  uint64_t N = factorial(K);
  std::vector<Permutation> Map;
  Map.reserve(N);
  for (uint64_t Rank = 0; Rank != N; ++Rank)
    Map.push_back(unrankPermutation(Rank, K));
  return Map;
}
